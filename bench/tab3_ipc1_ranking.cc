/**
 * @file
 * Table 3: the IPC-1 championship re-ranking.  The eight submitted
 * instruction prefetchers are scored by geometric-mean speedup over the
 * no-prefetcher baseline on the IPC-1 configuration (coupled front-end,
 * ideal target predictor, 50%% warm-up), once on the "competition"
 * traces (original conversion) and once on the fixed traces (all
 * improvements except mem-footprint, per the paper's footnote 4).
 *
 * Paper shape to reproduce: larger speedups on the fixed traces and a
 * mid-pack reshuffle of the ranking.
 */

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <vector>

#include "common/env.hh"
#include "common/stats.hh"
#include "experiments/bench_main.hh"
#include "experiments/experiment.hh"
#include "ipref/instr_prefetcher.hh"
#include "synth/suites.hh"

int
main()
{
    using namespace trb;

    // The title carries only one newline historically, so it is printed
    // by the body; runBench gets an empty title.
    return runBench("tab3", "", [&] {
    // Temporal prefetchers need history reuse: this experiment defaults
    // to longer traces than the figures (override with TRB_TRACE_LEN).
    std::uint64_t len = traceLengthFromEnv(200000);
    auto suite = ipc1Suite(len);
    CoreParams params = ipc1Config();
    constexpr double kWarmup = 0.5;

    const auto &names = ipc1PrefetcherNames();
    // speedups[setIndex][prefetcher] = per-trace IPC ratios.  The maps
    // are fully populated (and the per-trace vectors pre-sized) before
    // the parallel loop, so concurrent tasks only assign distinct
    // elements -- no rehash, no append, deterministic merge.
    const std::size_t count = suiteCount(suite);
    std::map<std::string, std::vector<double>> speedups[2];
    for (int v = 0; v < 2; ++v)
        for (const std::string &name : names)
            speedups[v][name].assign(
                count, std::numeric_limits<double>::quiet_NaN());
    const ImprovementSet sets[2] = {kImpNone, kIpc1Imps};
    const char *set_names[2] = {"Competition traces", "Fixed traces"};

    forEachTrace(suite, [&](std::size_t i, const TraceSpec &,
                            const CvpTrace &cvp) {
        for (int v = 0; v < 2; ++v) {
            Cvp2ChampSim conv(sets[v]);
            ChampSimTrace trace = conv.convert(cvp);
            SimStats base = simulate(ChampSimView(trace),
                                     {.params = params,
                                      .warmupFraction = kWarmup}).stats;
            for (const std::string &name : names) {
                auto pf = makeInstrPrefetcher(name);
                SimStats s = simulate(ChampSimView(trace),
                                      {.params = params,
                                       .warmupFraction = kWarmup,
                                       .ipref = pf.get()}).stats;
                speedups[v].at(name)[i] = s.ipc() / base.ipc();
            }
        }
    });

    std::printf("Table 3: IPC-1 ranking, geomean speedup over "
                "no-prefetcher\n");
    for (int v = 0; v < 2; ++v) {
        std::vector<std::pair<double, std::string>> ranking;
        for (const std::string &name : names)
            ranking.emplace_back(
                geomean(finiteValues(speedups[v][name])), name);
        std::sort(ranking.rbegin(), ranking.rend());
        std::printf("\n%s\n%-6s %-12s %-8s\n", set_names[v], "rank",
                    "prefetcher", "speedup");
        for (std::size_t r = 0; r < ranking.size(); ++r)
            std::printf("%-6zu %-12s %.4f\n", r + 1,
                        ranking[r].second.c_str(), ranking[r].first);
    }
    });
}
