/**
 * @file
 * Component microbenchmarks (google-benchmark): throughput of the
 * building blocks -- synthetic trace generation, CVP-1 (de)serialisation,
 * the converter under both personalities, predictor lookups, cache
 * accesses and the whole core model.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "cache/hierarchy.hh"
#include "convert/cvp2champsim.hh"
#include "obs/bench_record.hh"
#include "obs/metrics.hh"
#include "pipeline/o3core.hh"
#include "resil/failure.hh"
#include "sim/simulator.hh"
#include "synth/generator.hh"
#include "trace/cvp_trace.hh"
#include "uarch/btb.hh"
#include "uarch/ittage.hh"
#include "uarch/tage.hh"

namespace
{

using namespace trb;

void
BM_TraceGeneration(benchmark::State &state)
{
    WorkloadParams p = computeIntParams(1);
    TraceGenerator gen(p);
    for (auto _ : state) {
        CvpTrace t = gen.generate(static_cast<std::uint64_t>(state.range(0)));
        benchmark::DoNotOptimize(t.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(10000);

void
BM_CvpSerialize(benchmark::State &state)
{
    CvpTrace t = TraceGenerator(computeIntParams(2)).generate(10000);
    for (auto _ : state) {
        std::vector<std::uint8_t> buf;
        buf.reserve(1 << 20);
        for (const CvpRecord &rec : t)
            serializeCvpRecord(rec, buf);
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_CvpSerialize);

void
BM_Convert(benchmark::State &state)
{
    CvpTrace t = TraceGenerator(computeIntParams(3)).generate(10000);
    ImprovementSet imps = state.range(0) ? kAllImps : kImpNone;
    for (auto _ : state) {
        Cvp2ChampSim conv(imps);
        ChampSimTrace out = conv.convert(t);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_Convert)->Arg(0)->Arg(1);

void
BM_TagePredict(benchmark::State &state)
{
    TageScL tage;
    Rng rng(5);
    Addr pc = 0x400000;
    for (auto _ : state) {
        bool taken = rng.chance(0.7);
        benchmark::DoNotOptimize(tage.predict(pc));
        tage.update(pc, taken);
        pc = 0x400000 + (pc * 29 + 64) % 16384;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagePredict);

void
BM_IttagePredict(benchmark::State &state)
{
    Ittage it;
    Rng rng(7);
    for (auto _ : state) {
        Addr target = 0x500000 + 64 * rng.below(8);
        benchmark::DoNotOptimize(it.predict(0x400100));
        it.update(0x400100, target);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IttagePredict);

void
BM_BtbLookup(benchmark::State &state)
{
    Btb btb;
    for (Addr pc = 0; pc < 4096 * 4; pc += 4)
        btb.update(0x400000 + pc, pc, BranchType::DirectJump);
    Addr pc = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(btb.lookup(0x400000 + pc));
        pc = (pc + 4) % (4096 * 4);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtbLookup);

void
BM_HierarchyAccess(benchmark::State &state)
{
    MemoryHierarchy mh{HierarchyParams{}};
    Rng rng(9);
    Cycle now = 0;
    for (auto _ : state) {
        Addr a = 0x10000000 + 64 * rng.below(32768);
        benchmark::DoNotOptimize(
            mh.access(AccessKind::Load, a, 0x400000, now));
        now += 3;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyAccess);

void
BM_CoreSimulation(benchmark::State &state)
{
    CvpTrace cvp = TraceGenerator(serverParams(11)).generate(20000);
    Cvp2ChampSim conv(kAllImps);
    ChampSimTrace trace = conv.convert(cvp);
    for (auto _ : state) {
        O3Core core(modernConfig());
        SimStats s = core.run(trace);
        benchmark::DoNotOptimize(s.cycles);
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_CoreSimulation);

void
BM_CoreSimulationTraced(benchmark::State &state)
{
    CvpTrace cvp = TraceGenerator(serverParams(11)).generate(20000);
    Cvp2ChampSim conv(kAllImps);
    ChampSimTrace trace = conv.convert(cvp);
    obs::PipelineTracer tracer(4096);
    for (auto _ : state) {
        O3Core core(modernConfig());
        core.setTracer(&tracer);
        SimStats s = core.run(trace);
        benchmark::DoNotOptimize(s.cycles);
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_CoreSimulationTraced);

void
BM_CoreSimulationCancelPoll(benchmark::State &state)
{
    // The serving daemon's configuration: a cancel token attached but
    // never fired.  Compare against BM_CoreSimulation to price the
    // hot-loop poll (one masked test per record, one relaxed load per
    // kCancelPollInterval records).
    CvpTrace cvp = TraceGenerator(serverParams(11)).generate(20000);
    Cvp2ChampSim conv(kAllImps);
    ChampSimTrace trace = conv.convert(cvp);
    resil::CancelToken token;
    for (auto _ : state) {
        O3Core core(modernConfig());
        core.setCancelToken(&token);
        SimStats s = core.run(trace);
        benchmark::DoNotOptimize(s.cycles);
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_CoreSimulationCancelPoll);

// --- Contended metrics updates: the three concurrency strategies. ---
//
// The experiment harness updates the metrics registry from every worker
// thread.  These benchmarks compare the write-side cost of the three
// options trb::obs offers under 1/4/8 threads hammering the same
// registry: a single internal mutex, 16-way sharding by path hash, and
// per-thread buffering with one flush at the end.

void
BM_MetricsLockedAdd(benchmark::State &state)
{
    static obs::MetricsRegistry registry;
    const std::string path =
        "bench.locked.t" + std::to_string(state.thread_index());
    for (auto _ : state)
        registry.addCounter(path, 1);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsLockedAdd)->Threads(1)->Threads(4)->Threads(8);

void
BM_MetricsShardedAdd(benchmark::State &state)
{
    static obs::ShardedMetricsRegistry registry;
    const std::string path =
        "bench.sharded.t" + std::to_string(state.thread_index());
    for (auto _ : state)
        registry.addCounter(path, 1);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsShardedAdd)->Threads(1)->Threads(4)->Threads(8);

void
BM_MetricsThreadBuffer(benchmark::State &state)
{
    static obs::MetricsRegistry registry;
    const std::string path =
        "bench.buffered.t" + std::to_string(state.thread_index());
    // One buffer per benchmark thread, flushed once per iteration batch
    // -- the same shape as one harness task flushing at task end.
    obs::ThreadMetricsBuffer buffer(registry);
    for (auto _ : state)
        buffer.add(path, 1);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsThreadBuffer)->Threads(1)->Threads(4)->Threads(8);

} // namespace

// BENCHMARK_MAIN(), plus the observability tail every binary honours:
// finish(), then the BENCH run manifest (google-benchmark owns its own
// timing loops, so the manifest's wall clock covers the whole run).
int
main(int argc, char **argv)
{
    const auto start = std::chrono::steady_clock::now();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    trb::obs::finish();
    trb::obs::writeBenchRecord(
        "micro_components",
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
    return trb::resil::harnessExitCode();
}
