/**
 * @file
 * Figure 3: slowdown caused by the branch-regs and flag-reg improvements
 * versus the trace's branch MPKI.  Traces are sorted by increasing
 * baseline branch MPKI (the paper's dashed line); the expected shape is
 * slowdown growing with MPKI.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/env.hh"
#include "experiments/bench_main.hh"
#include "experiments/experiment.hh"
#include "store/store.hh"
#include "synth/suites.hh"

int
main()
{
    using namespace trb;

    return runBench("fig3",
                    "Figure 3: slowdown of branch-regs and flag-reg vs "
                    "branch MPKI (sorted by MPKI)",
                    [&] {
    std::uint64_t len = traceLengthFromEnv(60000);
    auto suite = cvp1PublicSuite(len);
    CoreParams params = modernConfig();

    struct Row
    {
        std::string name;
        double mpki;
        double branchRegsSlowdown;
        double flagRegSlowdown;
    };
    // Index-addressed slots: the parallel harness runs the callback
    // concurrently, so each trace writes rows[i] instead of appending.
    std::vector<Row> rows(suiteCount(suite));

    const bool storing = store::Store::global() != nullptr;
    forEachTrace(suite, [&](std::size_t i, const TraceSpec &spec,
                            const CvpTrace &cvp) {
        store::Digest digest;
        if (storing)
            digest = store::digestCvpTrace(cvp);
        const store::Digest *dp = storing ? &digest : nullptr;
        SimStats base = simulate(cvp, {.imps = kImpNone, .params = params,
                                       .cvpDigest = dp}).stats;
        SimStats br = simulate(cvp, {.imps = kImpBranchRegs,
                                     .params = params,
                                     .cvpDigest = dp}).stats;
        SimStats fr = simulate(cvp, {.imps = kImpFlagReg, .params = params,
                                     .cvpDigest = dp}).stats;
        rows[i] = {spec.name, base.branchMpki(),
                   100.0 * (base.ipc() / br.ipc() - 1.0),
                   100.0 * (base.ipc() / fr.ipc() - 1.0)};
    });

    // Quarantined traces never wrote their slot; drop the empty rows.
    rows.erase(std::remove_if(rows.begin(), rows.end(),
                              [](const Row &r) { return r.name.empty(); }),
               rows.end());
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.mpki < b.mpki; });

    std::printf("%-18s %10s %15s %15s\n", "trace", "brMPKI",
                "branch-regs(%)", "flag-reg(%)");
    double corr_n = 0, slow_lo = 0, slow_hi = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::printf("%-18s %10.2f %+15.2f %+15.2f\n", r.name.c_str(),
                    r.mpki, r.branchRegsSlowdown, r.flagRegSlowdown);
        if (i < rows.size() / 4)
            slow_lo += r.flagRegSlowdown;
        if (i >= rows.size() - rows.size() / 4)
            slow_hi += r.flagRegSlowdown;
        corr_n += 1;
    }
    if (!rows.empty()) {
        double q = static_cast<double>(rows.size() / 4);
        std::printf("\nflag-reg slowdown, lowest-MPKI quartile: %+0.2f%%  "
                    "highest-MPKI quartile: %+0.2f%%\n",
                    slow_lo / q, slow_hi / q);
    }
                    });
}
