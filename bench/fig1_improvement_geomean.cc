/**
 * @file
 * Figure 1: IPC variation of the geometric-mean IPC across the CVP-1
 * public traces for each converter improvement (and the Memory / Branch
 * / All groups) relative to the original cvp2champsim conversion.
 *
 * Paper shape to reproduce: base-update and call-stack positive,
 * flag-reg and branch-regs strongly negative, mem-regs/mem-footprint
 * negligible, All a few percent negative.
 *
 * Scale with TRB_TRACE_LEN (instructions/trace, default 60000) and
 * TRB_SUITE_SCALE (fraction of the 135-trace suite).
 */

#include <cstdio>

#include "common/env.hh"
#include "common/stats.hh"
#include "common/strings.hh"
#include "experiments/bench_main.hh"
#include "experiments/experiment.hh"
#include "synth/suites.hh"

int
main()
{
    using namespace trb;

    std::uint64_t len = traceLengthFromEnv(60000);
    auto suite = cvp1PublicSuite(len);
    return runBench(
        "fig1",
        strprintf("Figure 1: geomean IPC variation per improvement "
                  "(CVP-1 public suite, %zu traces x %llu instructions)",
                  suite.size(), static_cast<unsigned long long>(len)),
        [&] {
            std::printf("%-15s %12s %14s\n", "improvement", "dIPC(geo)",
                        ">5% traces");
            std::printf("%-15s %12s %14s\n", "-----------", "---------",
                        "----------");

            std::vector<SimStats> baseline;
            auto series = runImprovementSweep(suite, figureOneSets(),
                                              modernConfig(), &baseline);
            for (const DeltaSeries &s : series)
                std::printf("%-15s %+11.2f%% %10u/%zu\n",
                            s.setName.c_str(), s.geomeanDeltaPercent(),
                            s.countAbove(5.0), s.ratio.size());

            std::vector<double> ipcs;
            for (const SimStats &b : baseline)
                if (b.cycles)   // quarantined traces leave zero stats
                    ipcs.push_back(b.ipc());
            std::printf("\nbaseline geomean IPC %.3f\n", geomean(ipcs));
        });
}
