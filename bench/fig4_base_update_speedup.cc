/**
 * @file
 * Figure 4: speedup of the base-update improvement versus the fraction
 * of instructions that are writeback (base-updating) loads.  Traces are
 * sorted by that fraction (the paper's dashed line); the expected shape
 * is speedup growing with the fraction.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/env.hh"
#include "experiments/bench_main.hh"
#include "experiments/experiment.hh"
#include "store/store.hh"
#include "synth/suites.hh"

int
main()
{
    using namespace trb;

    return runBench("fig4",
                    "Figure 4: base-update speedup vs writeback-load density "
                    "(sorted by density)",
                    [&] {
    std::uint64_t len = traceLengthFromEnv(60000);
    auto suite = cvp1PublicSuite(len);
    CoreParams params = modernConfig();

    struct Row
    {
        std::string name;
        double wbLoadPct;
        double speedup;
    };
    // Index-addressed slots: the parallel harness runs the callback
    // concurrently, so each trace writes rows[i] instead of appending.
    std::vector<Row> rows(suiteCount(suite));

    const bool storing = store::Store::global() != nullptr;
    forEachTrace(suite, [&](std::size_t i, const TraceSpec &spec,
                            const CvpTrace &cvp) {
        store::Digest digest;
        if (storing)
            digest = store::digestCvpTrace(cvp);
        const store::Digest *dp = storing ? &digest : nullptr;
        SimStats base = simulate(cvp, {.imps = kImpNone, .params = params,
                                       .cvpDigest = dp}).stats;
        SimStats bu = simulate(cvp, {.imps = kImpBaseUpdate,
                                     .params = params,
                                     .cvpDigest = dp}).stats;
        rows[i] = {spec.name, 100.0 * writebackLoadFraction(cvp),
                   100.0 * (bu.ipc() / base.ipc() - 1.0)};
    });

    // Quarantined traces never wrote their slot; drop the empty rows.
    rows.erase(std::remove_if(rows.begin(), rows.end(),
                              [](const Row &r) { return r.name.empty(); }),
               rows.end());
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.wbLoadPct < b.wbLoadPct;
    });

    std::printf("%-18s %14s %12s\n", "trace", "wb-loads(%)",
                "speedup(%)");
    double lo = 0, hi = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::printf("%-18s %14.2f %+12.2f\n", r.name.c_str(), r.wbLoadPct,
                    r.speedup);
        if (i < rows.size() / 4)
            lo += r.speedup;
        if (i >= rows.size() - rows.size() / 4)
            hi += r.speedup;
    }
    if (!rows.empty()) {
        double q = static_cast<double>(rows.size() / 4);
        std::printf("\nspeedup, lowest-density quartile: %+0.2f%%  "
                    "highest-density quartile: %+0.2f%%\n",
                    lo / q, hi / q);
    }
                    });
}
