/**
 * @file
 * Figure 2: per-trace IPC variation for every improvement, each series
 * sorted from highest IPC increase to highest decrease (the paper's
 * S-curves).  Printed as one row per rank with one column per
 * improvement, so the series can be plotted directly.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/env.hh"
#include "experiments/bench_main.hh"
#include "experiments/experiment.hh"
#include "synth/suites.hh"

int
main()
{
    using namespace trb;

    return runBench("fig2",
                    "Figure 2: per-trace IPC variation (%), each column "
                    "sorted descending",
                    [&] {
    std::uint64_t len = traceLengthFromEnv(60000);
    auto suite = cvp1PublicSuite(len);
    auto series = runImprovementSweep(suite, figureOneSets(),
                                      modernConfig());

    std::printf("%-6s", "rank");
    for (const DeltaSeries &s : series)
        std::printf(" %13s", s.setName.c_str());
    std::printf("\n");

    // NaN ratios mark quarantined traces: skip them (every series loses
    // the same traces, so the columns stay aligned).
    std::vector<std::vector<double>> sorted(series.size());
    for (std::size_t k = 0; k < series.size(); ++k) {
        for (double r : series[k].ratio)
            if (std::isfinite(r))
                sorted[k].push_back(100.0 * (r - 1.0));
        std::sort(sorted[k].rbegin(), sorted[k].rend());
    }

    std::size_t n = sorted.empty() ? 0 : sorted[0].size();
    for (std::size_t i = 0; i < n; ++i) {
        std::printf("%-6zu", i + 1);
        for (std::size_t k = 0; k < series.size(); ++k)
            std::printf(" %+12.2f%%", sorted[k][i]);
        std::printf("\n");
    }
                    });
}
