/**
 * @file
 * Table 2: characterisation of the 50 IPC-1 traces under the fully
 * improved conversion on the modern (develop-branch-style)
 * configuration: IPC, branch MPKI (overall / direction / target), and
 * L1I/L1D/L2/LLC MPKI per trace.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.hh"
#include "experiments/bench_main.hh"
#include "experiments/experiment.hh"
#include "synth/suites.hh"

int
main()
{
    using namespace trb;

    return runBench("tab2",
                    "Table 2: IPC-1 trace characterisation with the "
                    "improved converter (All_imps)",
                    [&] {
    std::uint64_t len = traceLengthFromEnv(60000);
    auto suite = ipc1Suite(len);
    CoreParams params = modernConfig();

    std::printf("%-20s %6s | %8s %10s %7s | %7s %7s %7s %7s\n", "trace",
                "IPC", "brMPKI", "direction", "target", "L1I", "L1D",
                "L2", "LLC");

    // Traces simulate concurrently, so rows are formatted into
    // index-addressed slots and printed in table order after the join.
    std::vector<std::string> lines(suiteCount(suite));
    forEachTrace(suite, [&](std::size_t i, const TraceSpec &spec,
                            const CvpTrace &cvp) {
        // The paper runs whole (30M-instruction) traces without
        // warm-up; our synthetic traces are ~500x shorter, so half the
        // trace warms the structures to avoid cold-miss inflation.
        SimStats s = simulate(cvp, {.imps = kAllImps,
                                    .params = params,
                                    .warmupFraction = 0.5}).stats;
        char buf[160];
        std::snprintf(
            buf, sizeof(buf),
            "%-20s %6.2f | %8.2f %10.2f %7.2f | %7.1f %7.1f %7.1f %7.1f",
            spec.name.c_str(), s.ipc(), s.branchMpki(), s.directionMpki(),
            s.targetMpki(), s.l1iMpki(), s.l1dMpki(), s.l2Mpki(),
            s.llcMpki());
        lines[i] = buf;
    });
    for (const std::string &line : lines)
        if (!line.empty())   // quarantined traces never wrote their slot
            std::printf("%s\n", line.c_str());
                    });
}
