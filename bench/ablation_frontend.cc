/**
 * @file
 * Ablation study over the design choices the paper's methodology fixes:
 *
 *  1. direction predictor class (TAGE-SC-L vs gshare vs bimodal),
 *  2. decoupled (FDIP-style) vs coupled front-end -- the §4.4 discussion
 *     of Ishii et al.'s observation,
 *  3. the §3.2.2 ChampSim deduction patch: running branch-regs-converted
 *     traces under the *original* deduction rules misclassifies
 *     GPR-sourced conditionals as indirect jumps (the bug the patch
 *     exists to fix).
 *
 * Run on a small slice of the public suite; scale with TRB_TRACE_LEN /
 * TRB_SUITE_SCALE.
 */

#include <cstdio>
#include <limits>
#include <vector>

#include "common/env.hh"
#include "common/stats.hh"
#include "common/strings.hh"
#include "experiments/bench_main.hh"
#include "experiments/experiment.hh"
#include "synth/suites.hh"

namespace
{

using namespace trb;

/** Geomean IPC of the suite under one configuration/conversion. */
double
suiteIpc(const std::vector<TraceSpec> &suite, ImprovementSet imps,
         const CoreParams &params, std::vector<double> *misp = nullptr)
{
    // Index-addressed slots: the harness may run traces concurrently.
    // NaN prefill marks quarantined traces; aggregates skip them.
    constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
    std::vector<double> ipcs(suiteCount(suite), kNaN);
    if (misp)
        misp->assign(ipcs.size(), kNaN);
    forEachTrace(suite, [&](std::size_t i, const TraceSpec &,
                            const CvpTrace &cvp) {
        SimStats s = simulate(cvp, {.imps = imps, .params = params}).stats;
        ipcs[i] = s.ipc();
        if (misp)
            (*misp)[i] = s.branchMpki();
    });
    return geomean(finiteValues(ipcs));
}

} // namespace

int
main()
{
    using namespace trb;

    std::uint64_t len = traceLengthFromEnv(60000);
    auto full = cvp1PublicSuite(len);
    // Every 5th trace: the ablation needs trends, not the full census.
    std::vector<TraceSpec> suite;
    for (std::size_t i = 0; i < full.size(); i += 5)
        suite.push_back(full[i]);

    return runBench(
        "ablation_frontend",
        strprintf("Ablation: front-end design choices "
                  "(%zu traces x %llu instructions, All_imps traces)",
                  suite.size(), static_cast<unsigned long long>(len)),
        [&] {
    // --- 1. Direction predictor class. ---
    std::printf("1. direction predictor (geomean IPC / branch MPKI):\n");
    for (DirPredKind kind : {DirPredKind::TageScL, DirPredKind::Gshare,
                             DirPredKind::Bimodal}) {
        CoreParams p = modernConfig();
        p.dirPred = kind;
        std::vector<double> mpki;
        double ipc = suiteIpc(suite, kAllImps, p, &mpki);
        const char *name = kind == DirPredKind::TageScL ? "tage-sc-l"
                           : kind == DirPredKind::Gshare ? "gshare"
                                                         : "bimodal";
        std::printf("   %-10s IPC %.3f   branch MPKI %.2f\n", name, ipc,
                    mean(finiteValues(mpki)));
    }

    // --- 2. Decoupled vs coupled front-end. ---
    std::printf("\n2. front-end organisation:\n");
    {
        CoreParams fdip = modernConfig();
        CoreParams coupled = modernConfig();
        coupled.decoupledFrontEnd = false;
        double a = suiteIpc(suite, kAllImps, fdip);
        double b = suiteIpc(suite, kAllImps, coupled);
        std::printf("   decoupled (FDIP)  IPC %.3f\n", a);
        std::printf("   coupled           IPC %.3f   (FDIP gain %+.1f%%)\n",
                    b, 100.0 * (a / b - 1.0));
    }

    // --- 3. The Section 3.2.2 deduction patch. ---
    std::printf("\n3. branch-regs traces vs ChampSim deduction rules:\n");
    {
        CoreParams patched = modernConfig();
        CoreParams original = modernConfig();
        original.rules = DeductionRules::Original;
        double a = suiteIpc(suite, kImpBranchRegs, patched);
        double b = suiteIpc(suite, kImpBranchRegs, original);
        std::printf("   patched rules     IPC %.3f\n", a);
        std::printf("   original rules    IPC %.3f   "
                    "(misclassified conditionals cost %+.1f%%)\n",
                    b, 100.0 * (b / a - 1.0));
    }
        });
}
