/**
 * @file
 * Figure 5: the call-stack fix.  For the traces with the highest return
 * (RAS) target MPKI under the original converter, show the return MPKI
 * before and after the fix and the resulting IPC speedup.  Paper shape:
 * an order-of-magnitude return-MPKI drop on the affected subset and IPC
 * gains of several percent.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/env.hh"
#include "experiments/bench_main.hh"
#include "experiments/experiment.hh"
#include "store/store.hh"
#include "synth/suites.hh"

int
main()
{
    using namespace trb;

    return runBench("fig5",
                    "Figure 5: call-stack fix on the highest return-MPKI "
                    "traces (sorted descending)",
                    [&] {
    std::uint64_t len = traceLengthFromEnv(60000);
    auto suite = cvp1PublicSuite(len);
    CoreParams params = modernConfig();

    struct Row
    {
        std::string name;
        double rasMpkiOrig;
        double rasMpkiFixed;
        double speedup;
    };
    // Index-addressed slots: the parallel harness runs the callback
    // concurrently, so each trace writes rows[i] instead of appending.
    std::vector<Row> rows(suiteCount(suite));

    const bool storing = store::Store::global() != nullptr;
    forEachTrace(suite, [&](std::size_t i, const TraceSpec &spec,
                            const CvpTrace &cvp) {
        store::Digest digest;
        if (storing)
            digest = store::digestCvpTrace(cvp);
        const store::Digest *dp = storing ? &digest : nullptr;
        SimStats base = simulate(cvp, {.imps = kImpNone, .params = params,
                                       .cvpDigest = dp}).stats;
        SimStats fixed = simulate(cvp, {.imps = kImpCallStack,
                                        .params = params,
                                        .cvpDigest = dp}).stats;
        rows[i] = {spec.name, base.returnMpki(), fixed.returnMpki(),
                   100.0 * (fixed.ipc() / base.ipc() - 1.0)};
    });

    // Quarantined traces never wrote their slot; drop the empty rows.
    rows.erase(std::remove_if(rows.begin(), rows.end(),
                              [](const Row &r) { return r.name.empty(); }),
               rows.end());
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.rasMpkiOrig > b.rasMpkiOrig;
    });

    std::printf("%-18s %14s %14s %12s\n", "trace", "retMPKI(orig)",
                "retMPKI(fix)", "speedup(%)");
    std::size_t shown = std::min<std::size_t>(20, rows.size());
    for (std::size_t i = 0; i < shown; ++i) {
        const Row &r = rows[i];
        std::printf("%-18s %14.2f %14.2f %+12.2f\n", r.name.c_str(),
                    r.rasMpkiOrig, r.rasMpkiFixed, r.speedup);
    }
    std::printf("... (%zu further traces with return MPKI %.2f or "
                "below)\n",
                rows.size() - shown,
                shown < rows.size() ? rows[shown].rasMpkiOrig : 0.0);
                    });
}
