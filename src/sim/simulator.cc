#include "sim/simulator.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "convert/improvements.hh"
#include "lint/lint.hh"
#include "obs/profile.hh"

namespace trb
{

namespace
{

/**
 * Result-key schema version.  Bump whenever anything that influences a
 * SimStats value but is not spelled in the key changes (the core model
 * itself, the stat layout, the warm-up arithmetic, ...), or stale store
 * artifacts will silently serve old results.
 */
constexpr unsigned kSimKeyVersion = 1;

std::string
hexBits(double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(bits));
    return buf;
}

void
appendCacheKey(std::string &key, const char *tag, const CacheParams &c)
{
    key += tag;
    key += '=';
    key += std::to_string(c.sizeBytes);
    key += '/';
    key += std::to_string(c.ways);
    key += '/';
    key += std::to_string(c.latency);
    key += '/';
    key += std::to_string(static_cast<unsigned>(c.policy));
    key += ';';
}

/**
 * Canonical spelling of every CoreParams field.  Exhaustive on purpose:
 * a field missing here would alias two different configurations onto
 * one result artifact.
 */
std::string
coreParamsKey(const CoreParams &p)
{
    std::string key;
    key += "fw=" + std::to_string(p.fetchWidth);
    key += ";iw=" + std::to_string(p.issueWidth);
    key += ";rw=" + std::to_string(p.retireWidth);
    key += ";rob=" + std::to_string(p.robSize);
    key += ";fd=" + std::to_string(p.frontendDepth);
    key += ";mp=" + std::to_string(p.mispredictPenalty);
    key += ";drp=" + std::to_string(p.decodeRedirectPenalty);
    key += ";dfe=" + std::to_string(p.decoupledFrontEnd ? 1 : 0);
    key += ";ftq=" + std::to_string(p.ftqLookahead);
    key += ";it=" + std::to_string(p.idealTargets ? 1 : 0);
    key += ";rules=" + std::to_string(static_cast<int>(p.rules));
    key += ";dir=" + std::to_string(static_cast<int>(p.dirPred));
    key += ";btb=" + std::to_string(p.btbEntries);
    key += ";btbw=" + std::to_string(p.btbWays);
    key += ";ras=" + std::to_string(p.rasEntries);
    key += ';';
    appendCacheKey(key, "l1i", p.mem.l1i);
    appendCacheKey(key, "l1d", p.mem.l1d);
    appendCacheKey(key, "l2", p.mem.l2);
    appendCacheKey(key, "llc", p.mem.llc);
    key += "dram=" + std::to_string(p.mem.dramLatency);
    key += ";l1dpf=" + std::to_string(p.mem.l1dIpStride ? 1 : 0);
    key += ";l2pf=" + std::to_string(p.mem.l2NextLine ? 1 : 0);
    return key;
}

/** Key of a converted-trace artifact. */
std::string
traceKeyString(const store::Digest &cvp_digest, ImprovementSet imps)
{
    char imps_hex[11];
    std::snprintf(imps_hex, sizeof(imps_hex), "0x%x", imps);
    return std::string("trace;conv=") + std::to_string(kConverterVersion) +
           ";imps=" + imps_hex + ";cvp=" + cvp_digest.hex();
}

/** Key of a SimStats artifact; @p src identifies the simulated input. */
std::string
statsKeyString(const std::string &src, const SimRequest &req,
               const std::string &ipref_id)
{
    return std::string("stats;sim=") + std::to_string(kSimKeyVersion) +
           ";src=" + src + ";core=" + coreParamsKey(req.params) +
           ";warm=" + hexBits(req.warmupFraction) +
           ";ipref=" + ipref_id;
}

/** The store this request uses; nullptr when memoization is off. */
store::Store *
resolveStore(const SimRequest &req)
{
    if (!req.useStore)
        return nullptr;
    return req.store ? req.store : store::Store::global();
}

/** Result-keying identity of the request's prefetcher. */
std::string
resolveIprefId(const SimRequest &req)
{
    if (!req.iprefId.empty())
        return req.iprefId;
    return req.ipref ? req.ipref->name() : "";
}

/** The uncached tail: run the core model over @p trace. */
SimStats
runCore(ChampSimView trace, const SimRequest &req)
{
    obs::ScopeTimer timer("simulate");
    timer.setItems(trace.size());
    O3Core core(req.params, req.ipref);
    core.setCancelToken(req.cancel);
    auto warmup = static_cast<std::uint64_t>(
        req.warmupFraction * static_cast<double>(trace.size()));
    return core.run(trace, warmup);
}

/**
 * Stats-memoized core run: serve the SimStats from @p st if present,
 * else simulate and publish.  @p from_store reports a hit.
 */
SimStats
runCoreThroughStore(ChampSimView trace, const SimRequest &req,
                    store::Store *st, const std::string &stats_key,
                    bool &from_store)
{
    from_store = false;
    if (st) {
        std::vector<std::uint64_t> bits;
        SimStats stats;
        if (st->loadBits(stats_key, bits) &&
            SimStats::fromBits(bits, stats)) {
            from_store = true;
            return stats;
        }
    }
    SimStats stats = runCore(trace, req);
    if (st)
        st->putBits(stats_key, stats.toBits());
    return stats;
}

} // namespace

CoreParams
modernConfig()
{
    CoreParams p;
    p.decoupledFrontEnd = true;
    p.idealTargets = false;
    p.rules = DeductionRules::Patched;
    p.dirPred = DirPredKind::TageScL;
    p.btbEntries = 16384;
    p.rasEntries = 64;
    p.mem.l1dIpStride = true;
    p.mem.l2NextLine = true;
    return p;
}

CoreParams
ipc1Config()
{
    CoreParams p;
    p.decoupledFrontEnd = false;   // pre-FDIP ChampSim front-end
    p.idealTargets = true;         // the contest's ideal target predictor
    p.rules = DeductionRules::Patched;   // Section 3.2.2 patch applied
    p.dirPred = DirPredKind::TageScL;
    p.mem.l1dIpStride = true;
    p.mem.l2NextLine = false;
    return p;
}

SimResult
simulate(ChampSimView trace, const SimRequest &req)
{
    SimResult result;
    store::Store *st = resolveStore(req);
    if (!st) {
        result.stats = runCore(trace, req);
        return result;
    }
    std::string src = "cs:" + store::digestChampSimTrace(trace).hex();
    std::string stats_key = statsKeyString(src, req, resolveIprefId(req));
    result.stats = runCoreThroughStore(trace, req, st, stats_key,
                                       result.statsFromStore);
    return result;
}

SimResult
simulate(const CvpTrace &cvp, const SimRequest &req)
{
    SimResult result;
    store::Store *st = resolveStore(req);

    std::string trace_key;
    std::string stats_key;
    if (st) {
        store::Digest cvp_digest =
            req.cvpDigest ? *req.cvpDigest : store::digestCvpTrace(cvp);
        trace_key = traceKeyString(cvp_digest, req.imps);
        stats_key = statsKeyString(trace_key, req, resolveIprefId(req));

        // Fast path: the whole run is memoized.
        std::vector<std::uint64_t> bits;
        if (st->loadBits(stats_key, bits) &&
            SimStats::fromBits(bits, result.stats)) {
            result.statsFromStore = true;
            return result;
        }

        // Middle path: conversion is memoized; simulate the mmap'd
        // records without materialising a vector (unless lint wants
        // one -- lint-on-ingest re-checks served artifacts).
        store::TraceHandle handle;
        if (st->loadTrace(trace_key, handle)) {
            result.traceFromStore = true;
            if (lint::lintEnabledFromEnv()) {
                ChampSimTrace copy(handle.view().begin(),
                                   handle.view().end());
                obs::ScopeTimer timer("lint");
                timer.setItems(copy.size());
                lint::maybeLintConverted(improvementSetName(req.imps),
                                         cvp, copy);
            }
            result.stats = runCoreThroughStore(handle.view(), req, st,
                                               stats_key,
                                               result.statsFromStore);
            return result;
        }
    }

    Cvp2ChampSim conv(req.imps);
    ChampSimTrace trace = [&] {
        obs::ScopeTimer timer("convert");
        timer.setItems(cvp.size());
        return conv.convert(cvp);
    }();
    if (lint::lintEnabledFromEnv()) {
        obs::ScopeTimer timer("lint");
        timer.setItems(trace.size());
        lint::maybeLintConverted(improvementSetName(req.imps), cvp, trace);
    }
    if (st)
        st->putTrace(trace_key, trace);
    result.stats = runCoreThroughStore(trace, req, st, stats_key,
                                       result.statsFromStore);
    return result;
}

// The wrappers below are themselves the deprecated entry points.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

SimStats
simulateChampSim(const ChampSimTrace &trace, const CoreParams &params,
                 double warmupFraction, InstrPrefetcher *ipref)
{
    return simulate(ChampSimView(trace),
                    SimRequest{.params = params,
                               .warmupFraction = warmupFraction,
                               .ipref = ipref})
        .stats;
}

SimStats
simulateCvp(const CvpTrace &cvp, ImprovementSet imps,
            const CoreParams &params, double warmupFraction,
            InstrPrefetcher *ipref)
{
    return simulate(cvp, SimRequest{.imps = imps,
                                    .params = params,
                                    .warmupFraction = warmupFraction,
                                    .ipref = ipref})
        .stats;
}

#pragma GCC diagnostic pop

} // namespace trb
