#include "sim/simulator.hh"

#include <algorithm>

#include "convert/improvements.hh"
#include "lint/lint.hh"
#include "obs/profile.hh"

namespace trb
{

CoreParams
modernConfig()
{
    CoreParams p;
    p.decoupledFrontEnd = true;
    p.idealTargets = false;
    p.rules = DeductionRules::Patched;
    p.dirPred = DirPredKind::TageScL;
    p.btbEntries = 16384;
    p.rasEntries = 64;
    p.mem.l1dIpStride = true;
    p.mem.l2NextLine = true;
    return p;
}

CoreParams
ipc1Config()
{
    CoreParams p;
    p.decoupledFrontEnd = false;   // pre-FDIP ChampSim front-end
    p.idealTargets = true;         // the contest's ideal target predictor
    p.rules = DeductionRules::Patched;   // Section 3.2.2 patch applied
    p.dirPred = DirPredKind::TageScL;
    p.mem.l1dIpStride = true;
    p.mem.l2NextLine = false;
    return p;
}

SimStats
simulateChampSim(const ChampSimTrace &trace, const CoreParams &params,
                 double warmupFraction, InstrPrefetcher *ipref)
{
    obs::ScopeTimer timer("simulate");
    timer.setItems(trace.size());
    O3Core core(params, ipref);
    auto warmup = static_cast<std::uint64_t>(
        warmupFraction * static_cast<double>(trace.size()));
    return core.run(trace, warmup);
}

SimStats
simulateCvp(const CvpTrace &cvp, ImprovementSet imps,
            const CoreParams &params, double warmupFraction,
            InstrPrefetcher *ipref)
{
    Cvp2ChampSim conv(imps);
    ChampSimTrace trace = [&] {
        obs::ScopeTimer timer("convert");
        timer.setItems(cvp.size());
        return conv.convert(cvp);
    }();
    if (lint::lintEnabledFromEnv()) {
        obs::ScopeTimer timer("lint");
        timer.setItems(trace.size());
        lint::maybeLintConverted(improvementSetName(imps), cvp, trace);
    }
    return simulateChampSim(trace, params, warmupFraction, ipref);
}

} // namespace trb
