/**
 * @file
 * Simulator facade: the two configurations the paper evaluates on, and
 * one-call helpers that run a CVP-1 trace through conversion and the
 * core model.
 *
 *  - modernConfig(): the Section 4 setup -- decoupled front-end, 16K BTB,
 *    TAGE-SC-L + ITTAGE, ip-stride at L1D and next-line at L2, patched
 *    branch deduction rules.
 *  - ipc1Config(): the IPC-1 contest setup -- coupled front-end with an
 *    ideal branch-target predictor and a pluggable L1I prefetcher (the
 *    paper's Section 4.4 re-evaluation, which also carries the branch
 *    identification patch).
 *
 * Thread safety: both helpers are pure -- each call builds its own
 * converter and O3Core and touches no shared mutable state -- so the
 * experiment harness calls them concurrently from pool workers (see
 * docs/parallelism.md).  The one caveat is the optional @c ipref
 * argument: the prefetcher instance is mutated during simulation, so
 * concurrent calls must each pass their own instance (or share none).
 */

#ifndef TRB_SIM_SIMULATOR_HH
#define TRB_SIM_SIMULATOR_HH

#include <cstdint>
#include <memory>
#include <string>

#include "convert/cvp2champsim.hh"
#include "ipref/instr_prefetcher.hh"
#include "pipeline/core_params.hh"
#include "pipeline/o3core.hh"
#include "pipeline/sim_stats.hh"
#include "trace/cvp_trace.hh"

namespace trb
{

/** The paper's main-branch ChampSim configuration (Section 4). */
CoreParams modernConfig();

/** The IPC-1 contest configuration (Section 4.4). */
CoreParams ipc1Config();

/**
 * One full experiment step: convert @p cvp under @p imps and simulate.
 *
 * Deterministic: the result depends only on the arguments, never on
 * scheduling -- the property the parallel harness's bit-identical
 * output rests on.
 *
 * @param warmupFraction leading fraction of the *converted* trace whose
 *        statistics are discarded (the IPC-1 methodology warms up half)
 * @param ipref optional instruction prefetcher plugged into the L1I;
 *        mutated by the run, so never share one instance across
 *        concurrent calls
 */
SimStats simulateCvp(const CvpTrace &cvp, ImprovementSet imps,
                     const CoreParams &params, double warmupFraction = 0.0,
                     InstrPrefetcher *ipref = nullptr);

/** Simulate an already-converted ChampSim trace. */
SimStats simulateChampSim(const ChampSimTrace &trace,
                          const CoreParams &params,
                          double warmupFraction = 0.0,
                          InstrPrefetcher *ipref = nullptr);

} // namespace trb

#endif // TRB_SIM_SIMULATOR_HH
