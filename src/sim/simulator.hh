/**
 * @file
 * Simulator facade: the two configurations the paper evaluates on, and
 * the one-call entry point that runs a trace through conversion and the
 * core model.
 *
 *  - modernConfig(): the Section 4 setup -- decoupled front-end, 16K BTB,
 *    TAGE-SC-L + ITTAGE, ip-stride at L1D and next-line at L2, patched
 *    branch deduction rules.
 *  - ipc1Config(): the IPC-1 contest setup -- coupled front-end with an
 *    ideal branch-target predictor and a pluggable L1I prefetcher (the
 *    paper's Section 4.4 re-evaluation, which also carries the branch
 *    identification patch).
 *
 * Everything a run depends on travels in one SimRequest options struct,
 * designed for designated initializers:
 *
 *     SimResult r = simulate(cvp, {.imps = kImpAll,
 *                                  .params = modernConfig(),
 *                                  .warmupFraction = 0.5});
 *
 * When a store is active (TRB_STORE, or SimRequest::store), simulate()
 * transparently memoizes both pipeline stages: the converted trace
 * (served back zero-copy from an mmap) and the final SimStats (restored
 * from exact u64 bit patterns).  Hits are bit-identical to misses by
 * construction, so enabling the store never changes a result -- only how
 * fast it arrives.
 *
 * Thread safety: simulate() is pure -- each call builds its own
 * converter and O3Core and touches no shared mutable state -- so the
 * experiment harness calls it concurrently from pool workers (see
 * docs/parallelism.md).  The one caveat is the optional @c ipref: the
 * prefetcher instance is mutated during simulation, so concurrent calls
 * must each pass their own instance.  A *pre-trained* prefetcher also
 * breaks the "result is a function of the request" premise stats
 * caching rests on: pass `.useStore = false` for such runs.
 */

#ifndef TRB_SIM_SIMULATOR_HH
#define TRB_SIM_SIMULATOR_HH

#include <cstdint>
#include <memory>
#include <string>

#include "convert/cvp2champsim.hh"
#include "ipref/instr_prefetcher.hh"
#include "pipeline/core_params.hh"
#include "pipeline/o3core.hh"
#include "pipeline/sim_stats.hh"
#include "resil/cancel.hh"
#include "store/store.hh"
#include "trace/cvp_trace.hh"

namespace trb
{

/** The paper's main-branch ChampSim configuration (Section 4). */
CoreParams modernConfig();

/** The IPC-1 contest configuration (Section 4.4). */
CoreParams ipc1Config();

/**
 * Everything one simulation run depends on.  Field order is part of the
 * API: designated initializers must list fields in declaration order,
 * so new knobs are only ever appended.
 */
struct SimRequest
{
    /** Converter improvements applied during CVP conversion. */
    ImprovementSet imps = kImpNone;

    /** Core configuration (defaults equal modernConfig()). */
    CoreParams params{};

    /**
     * Leading fraction of the *converted* trace whose statistics are
     * discarded (the IPC-1 methodology warms up half).
     */
    double warmupFraction = 0.0;

    /**
     * Optional instruction prefetcher plugged into the L1I; mutated by
     * the run, so never share one instance across concurrent calls.
     */
    InstrPrefetcher *ipref = nullptr;

    /**
     * Identity of @c ipref for result keying; defaults to
     * ipref->name().  Only override when two prefetchers share a name
     * but behave differently (and see useStore for trained instances).
     */
    std::string iprefId;

    /** Explicit store; nullptr means "use Store::global() if any". */
    store::Store *store = nullptr;

    /**
     * Master store gate.  Set false when the request carries state the
     * key cannot see (e.g. a pre-trained prefetcher instance).
     */
    bool useStore = true;

    /**
     * Precomputed content digest of the CVP trace (an optimisation for
     * sweeps that simulate one trace many times); nullptr means
     * simulate() digests the trace itself when a store is active.
     */
    const store::Digest *cvpDigest = nullptr;

    /**
     * Optional cooperative cancellation token, polled by the core
     * model's hot loop (see O3Core::setCancelToken).  A fired token
     * aborts the run by throwing resil::CancelledError; no partial
     * result is returned or memoized.  Deliberately absent from the
     * store key: cancellation changes whether a result arrives, never
     * what it is.
     */
    const resil::CancelToken *cancel = nullptr;
};

/** A simulation result plus where its pieces came from. */
struct SimResult
{
    SimStats stats;

    /** The converted trace was served from the artifact store. */
    bool traceFromStore = false;

    /** The SimStats were served from the artifact store. */
    bool statsFromStore = false;
};

/**
 * One full experiment step: convert @p cvp under the request's
 * improvements and simulate.
 *
 * Deterministic: the result depends only on (cvp, req), never on
 * scheduling or store temperature -- the property both the parallel
 * harness's and the store's bit-identical-output contracts rest on.
 */
SimResult simulate(const CvpTrace &cvp, const SimRequest &req = {});

/**
 * Simulate an already-converted ChampSim trace.  The conversion-related
 * request fields (imps, cvpDigest) are ignored; stats memoization keys
 * on the record bytes themselves.
 */
SimResult simulate(ChampSimView trace, const SimRequest &req = {});

/**
 * @name Deprecated positional entry points
 * Thin wrappers kept for one release so out-of-tree callers migrate on
 * their own schedule; see DESIGN.md for the migration recipe.  They
 * forward to simulate() with an equivalent SimRequest (and therefore
 * also hit the store).
 * @{
 */
[[deprecated("use simulate(cvp, SimRequest{.imps=..., .params=...})")]]
SimStats simulateCvp(const CvpTrace &cvp, ImprovementSet imps,
                     const CoreParams &params, double warmupFraction = 0.0,
                     InstrPrefetcher *ipref = nullptr);

[[deprecated("use simulate(trace, SimRequest{.params=...})")]]
SimStats simulateChampSim(const ChampSimTrace &trace,
                          const CoreParams &params,
                          double warmupFraction = 0.0,
                          InstrPrefetcher *ipref = nullptr);
/** @} */

} // namespace trb

#endif // TRB_SIM_SIMULATOR_HH
