/**
 * @file
 * Suite definitions: the synthetic stand-ins for the 135 CVP-1 public
 * traces and the 50 IPC-1 championship traces.  Per-trace parameters are
 * jittered deterministically from the trace index so each suite spans the
 * behaviour ranges the paper reports (instruction footprints, branch
 * MPKIs, base-update densities, call-stack-bug density, memory
 * boundedness).
 */

#ifndef TRB_SYNTH_SUITES_HH
#define TRB_SYNTH_SUITES_HH

#include <cstdint>
#include <vector>

#include "synth/params.hh"

namespace trb
{

/**
 * The CVP-1 public suite: 135 traces (35 compute_int, 30 compute_fp,
 * 5 crypto, 65 srv).  A subset of the srv traces carries BLR-X30
 * indirect calls -- the trigger of the call-stack misclassification.
 *
 * @param length dynamic instructions per trace
 */
std::vector<TraceSpec> cvp1PublicSuite(std::uint64_t length);

/**
 * The IPC-1 suite: the 50 traces of Table 2 (8 client, 35 server,
 * 7 SPEC), with per-row parameters shaped after the table's
 * characterisation (L1I-MPKI ordering of the server traces, the
 * memory-bound gcc inputs, the branchy gobmk inputs, ...).
 */
std::vector<TraceSpec> ipc1Suite(std::uint64_t length);

} // namespace trb

#endif // TRB_SYNTH_SUITES_HH
