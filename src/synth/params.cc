#include "synth/params.hh"

namespace trb
{

WorkloadParams
computeIntParams(std::uint64_t seed)
{
    WorkloadParams p;
    p.seed = seed;
    p.numFunctions = 20;
    p.blocksPerFunction = 7;
    p.instsPerBlock = 8;
    p.callDensity = 0.10;
    p.indirectCallFrac = 0.10;
    p.condRandomFrac = 0.15;
    p.condLoopFrac = 0.35;
    p.condTakenBias = 0.94;
    p.fracLoad = 0.26;
    p.fracStore = 0.11;
    p.fracFp = 0.02;
    p.fracCmp = 0.12;
    p.baseUpdateFrac = 0.05;
    p.numStreams = 6;
    p.dataFootprintLines = 250;
    p.streamRandomFrac = 0.3;
    return p;
}

WorkloadParams
computeFpParams(std::uint64_t seed)
{
    WorkloadParams p;
    p.seed = seed;
    p.numFunctions = 12;
    p.blocksPerFunction = 6;
    p.instsPerBlock = 12;
    p.callDensity = 0.06;
    p.indirectCallFrac = 0.05;
    p.condRandomFrac = 0.03;
    p.condLoopFrac = 0.6;
    p.condTakenBias = 0.96;
    p.loopPeriodMin = 16;
    p.loopPeriodMax = 64;
    p.fracLoad = 0.28;
    p.fracStore = 0.12;
    p.fracFp = 0.30;
    p.fracCmp = 0.05;
    p.vecLoadFrac = 0.10;
    p.baseUpdateFrac = 0.06;
    p.numStreams = 8;
    p.dataFootprintLines = 1200;
    p.streamRandomFrac = 0.05;
    return p;
}

WorkloadParams
cryptoParams(std::uint64_t seed)
{
    WorkloadParams p;
    p.seed = seed;
    p.numFunctions = 6;
    p.blocksPerFunction = 5;
    p.instsPerBlock = 14;
    p.callDensity = 0.08;
    p.indirectCallFrac = 0.0;
    p.condRandomFrac = 0.01;
    p.condLoopFrac = 0.7;
    p.condTakenBias = 0.98;
    p.loopPeriodMin = 8;
    p.loopPeriodMax = 32;
    p.fracLoad = 0.18;
    p.fracStore = 0.08;
    p.fracFp = 0.04;
    p.fracSlowAlu = 0.10;
    p.fracCmp = 0.06;
    p.baseUpdateFrac = 0.04;
    p.numStreams = 3;
    p.dataFootprintLines = 64;
    p.streamRandomFrac = 0.0;
    p.depDensity = 0.8;
    return p;
}

WorkloadParams
serverParams(std::uint64_t seed)
{
    WorkloadParams p;
    p.seed = seed;
    p.numFunctions = 300;
    p.blocksPerFunction = 5;
    p.instsPerBlock = 5;
    p.callDensity = 0.28;
    p.indirectCallFrac = 0.22;
    p.indirectJumpFrac = 0.04;
    p.condRandomFrac = 0.02;
    p.condLoopFrac = 0.15;
    p.condTakenBias = 0.97;
    p.loopPeriodMin = 3;
    p.loopPeriodMax = 10;
    p.fracLoad = 0.25;
    p.fracStore = 0.12;
    p.fracFp = 0.01;
    p.fracCmp = 0.12;
    p.baseUpdateFrac = 0.08;
    p.numStreams = 10;
    p.dataFootprintLines = 500;
    p.streamRandomFrac = 0.3;
    p.maxCallDepth = 12;
    return p;
}

WorkloadParams
memoryBoundParams(std::uint64_t seed)
{
    WorkloadParams p;
    p.seed = seed;
    p.numFunctions = 15;
    p.blocksPerFunction = 5;
    p.instsPerBlock = 7;
    p.callDensity = 0.08;
    p.condRandomFrac = 0.05;
    p.condLoopFrac = 0.4;
    p.fracLoad = 0.34;
    p.fracStore = 0.10;
    p.fracCmp = 0.08;
    p.baseUpdateFrac = 0.05;
    p.numStreams = 4;
    p.dataFootprintLines = 120000;   // ~7.3 MiB per stream: beyond the LLC
    p.pointerChaseFrac = 0.6;
    p.streamRandomFrac = 0.3;
    p.loadToBranchFrac = 0.3;
    p.cmpReadsLoadFrac = 0.2;
    return p;
}

} // namespace trb
