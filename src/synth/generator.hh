/**
 * @file
 * Dynamic side of the synthetic workload generator: walks a SynthProgram
 * with architectural register values, a call stack, per-stream memory
 * cursors and per-branch pattern counters, and emits a value-consistent
 * CVP-1 trace.
 *
 * Value consistency is the load-bearing property: the improved converter
 * infers addressing modes by comparing effective addresses against the
 * values written to candidate base registers, so the generator maintains
 * real register values exactly where that inference looks (base registers,
 * function pointers, the link register) and fills everything else with
 * deterministic pseudo-random data.
 */

#ifndef TRB_SYNTH_GENERATOR_HH
#define TRB_SYNTH_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "synth/program.hh"
#include "trace/cvp_trace.hh"

namespace trb
{

/** Generates CVP-1 traces from workload parameters. */
class TraceGenerator
{
  public:
    explicit TraceGenerator(const WorkloadParams &params);

    /** Emit @p length dynamic instructions (fresh walk each call). */
    CvpTrace generate(std::uint64_t length);

    /** The static program backing this generator. */
    const SynthProgram &program() const { return program_; }

  private:
    struct Site
    {
        std::uint32_t fn = 0;
        std::uint32_t block = 0;
    };

    void emitSlot(const StaticInst &si);
    std::uint32_t pickCandidate(const Terminator &t);
    void emitTerminator(const Function &fn, const Block &blk);
    void emitMem(const StaticInst &si);
    void emitStackMem(const StaticInst &si);

    /** Append a record and apply its destination values to regVal_. */
    void push(const CvpRecord &rec);

    /** Emit a one-destination materialisation/sync ALU at @p pc. */
    void emitMovImm(Addr pc, RegId dst, std::uint64_t value);

    /** Deterministic data value stored at @p addr. */
    std::uint64_t loadValue(Addr addr) const;

    /** Next pointer in a chase stream containing @p addr. */
    Addr chaseNext(const Stream &st, Addr addr) const;

    /** Wrap @p addr into the stream's footprint. */
    static Addr wrap(const Stream &st, Addr addr);

    WorkloadParams params_;
    SynthProgram program_;
    Rng rng_;
    std::uint64_t valueSalt_;

    CvpTrace trace_;
    std::uint64_t target_ = 0;

    std::uint64_t regVal_[aarch64::kNumRegs] = {};
    std::vector<Addr> cursor_;              //!< per-stream position
    std::vector<std::uint32_t> loopCount_;  //!< per-pattern counters
    std::vector<Site> callStack_;           //!< walker return sites
    std::vector<std::uint64_t> shadowX30_;  //!< stacked link registers

    Site pos_;
    std::uint32_t slot_ = 0;
};

} // namespace trb

#endif // TRB_SYNTH_GENERATOR_HH
