/**
 * @file
 * Tunable parameters of the synthetic Aarch64-like workload generator.
 *
 * Each knob maps to a behaviour the paper's converter study depends on:
 * instruction footprint drives L1I MPKI, data footprint drives L1D/L2/LLC
 * MPKI, the base-update fractions drive the base-update improvement, the
 * BLR-X30 fraction triggers the call-stack misclassification, the
 * compare/CBZ mixes drive flag-reg and branch-regs, and so on.
 */

#ifndef TRB_SYNTH_PARAMS_HH
#define TRB_SYNTH_PARAMS_HH

#include <cstdint>
#include <string>

namespace trb
{

/** Full parameter set for one synthetic workload. */
struct WorkloadParams
{
    std::uint64_t seed = 1;

    /// @name Static program shape (instruction-footprint drivers)
    /// @{
    unsigned numFunctions = 24;        //!< distinct functions
    unsigned blocksPerFunction = 6;    //!< basic blocks per function
    unsigned instsPerBlock = 8;        //!< average non-terminator insts
    unsigned maxCallDepth = 12;        //!< call-stack depth bound
    /// @}

    /// @name Control flow
    /// @{
    double callDensity = 0.12;         //!< blocks ending in a call
    double indirectCallFrac = 0.15;    //!< calls that are BLR (indirect)
    double blrX30Frac = 0.0;           //!< indirect calls that are BLR X30
    double indirectJumpFrac = 0.03;    //!< non-call blocks ending in BR Xn
    double indirectRandomFrac = 0.15;  //!< indirect targets chosen randomly
                                       //!< (rest rotate predictably)
    double condTakenBias = 0.8;        //!< bias of biased branches
    double condLoopFrac = 0.4;         //!< conditionals with loop patterns
    double condRandomFrac = 0.12;      //!< data-dependent (hard) branches
    double condRegFrac = 0.35;         //!< CBZ/TBZ-style (GPR source)
    double loadToBranchFrac = 0.35;    //!< CBZ sources fed by a fresh load
    double cmpReadsLoadFrac = 0.35;    //!< compares fed by a fresh load
    unsigned loopPeriodMin = 4;        //!< shortest loop trip count
    unsigned loopPeriodMax = 24;       //!< longest loop trip count
    /// @}

    /// @name Instruction mix (fractions of block body instructions)
    /// @{
    double fracLoad = 0.26;
    double fracStore = 0.11;
    double fracFp = 0.08;
    double fracSlowAlu = 0.03;
    double fracCmp = 0.10;             //!< ALU with no destination register
    /// @}

    /// @name Memory behaviour
    /// @{
    double baseUpdateFrac = 0.06;      //!< loads/stores with pre/post index
    double preIndexFrac = 0.5;         //!< of base-update ops, pre (vs post)
    double loadPairFrac = 0.10;        //!< LDP/STP
    double vecLoadFrac = 0.03;         //!< LD2/LD3/LD4
    double prefetchFrac = 0.03;        //!< PRFM: load with no destination
    double dczvaFrac = 0.005;          //!< DC ZVA: 64-byte zeroing store
    double unalignedFrac = 0.005;       //!< accesses that cross a cacheline
    unsigned numStreams = 6;           //!< concurrent access streams
    std::uint64_t dataFootprintLines = 512;  //!< lines touched per stream
    double pointerChaseFrac = 0.0;     //!< loads feeding the next address
    double streamRandomFrac = 0.2;     //!< streams with random-in-footprint
    /// @}

    /// @name Dependency shape
    /// @{
    double depDensity = 0.6;           //!< ALU reads recently-written regs
    /// @}
};

/** A named workload: the unit the experiment suites are built from. */
struct TraceSpec
{
    std::string name;
    WorkloadParams params;
    std::uint64_t length = 50000;      //!< dynamic instructions to emit
};

/// @name Base presets the suites derive from.
/// @{

/** Integer compute: branchy, moderate footprints. */
WorkloadParams computeIntParams(std::uint64_t seed);

/** Floating point compute: FP-heavy, streaming memory, predictable. */
WorkloadParams computeFpParams(std::uint64_t seed);

/** Cryptography: small hot loops, long ALU chains, few misses. */
WorkloadParams cryptoParams(std::uint64_t seed);

/** Datacenter/server: huge instruction footprint, call-heavy. */
WorkloadParams serverParams(std::uint64_t seed);

/** Memory-bound pointer-chasing (spec_gcc_002/003-like). */
WorkloadParams memoryBoundParams(std::uint64_t seed);

/// @}

} // namespace trb

#endif // TRB_SYNTH_PARAMS_HH
