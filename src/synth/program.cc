#include "synth/program.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace trb
{

namespace
{

/// Register conventions of the synthetic ISA (Aarch64-flavoured).
constexpr RegId kDataRegs[] = {0, 1, 2, 3, 4, 5, 16, 17, 18, 19, 20,
                               21, 22, 23};
// Loads never write the counter registers, so compare chains built on
// them resolve at ALU speed (loop counters, flags tests).
constexpr RegId kLoadDstRegs[] = {0, 1, 2, 3, 16, 17, 18, 19, 20, 21,
                                  22, 23};
constexpr RegId kCounterRegs[] = {4, 5};
constexpr RegId kVecRegs[] = {32, 33, 34, 35, 36, 37, 38, 39, 40, 41, 42,
                              43, 44, 45, 46, 47};
constexpr RegId kFirstBaseReg = 8;
constexpr unsigned kNumBaseRegs = 8;
constexpr RegId kPtrRegs[] = {24, 25, 26, 27};
constexpr RegId kJumpReg = 28;

RegId
dataReg(Rng &rng)
{
    return kDataRegs[rng.below(std::size(kDataRegs))];
}

RegId
loadDstReg(Rng &rng)
{
    return kLoadDstRegs[rng.below(std::size(kLoadDstRegs))];
}

RegId
counterReg(Rng &rng)
{
    return kCounterRegs[rng.below(std::size(kCounterRegs))];
}

RegId
vecReg(Rng &rng)
{
    return kVecRegs[rng.below(std::size(kVecRegs))];
}

std::uint8_t
rollAccessSize(Rng &rng)
{
    double p = rng.uniform();
    if (p < 0.55)
        return 8;
    if (p < 0.85)
        return 4;
    if (p < 0.95)
        return 2;
    return 1;
}

/** Pick a source biased towards registers written earlier in the block. */
RegId
pickDepSource(Rng &rng, const std::vector<StaticInst> &insts, double density)
{
    if (!insts.empty() && rng.chance(density)) {
        // Walk back a few slots looking for a GPR-writing instruction.
        for (unsigned tries = 0; tries < 4; ++tries) {
            const StaticInst &cand = insts[rng.below(insts.size())];
            if (cand.numDst > 0 && cand.dst[0] < aarch64::kVecBase)
                return cand.dst[0];
        }
    }
    return dataReg(rng);
}

/** Index of the last load slot in the block, or -1. */
int
lastLoadSlot(const std::vector<StaticInst> &insts)
{
    for (int i = static_cast<int>(insts.size()) - 1; i >= 0; --i)
        if (insts[static_cast<std::size_t>(i)].kind == SlotKind::Load &&
            insts[static_cast<std::size_t>(i)].numDst > 0)
            return i;
    return -1;
}

} // namespace

SynthProgram
SynthProgram::build(const WorkloadParams &params)
{
    Rng rng(params.seed);
    SynthProgram prog;

    // --- Streams.  Stream 0 is the call stack (SP-based, special). ---
    Stream stack;
    stack.pattern = StreamPattern::Sequential;
    stack.baseReg = aarch64::kSp;
    stack.base = prog.stackBase;
    stack.strideBytes = 16;
    stack.footprintLines = 64;
    prog.streams.push_back(stack);

    unsigned num_streams = std::max(1u, params.numStreams);
    // Deterministic pattern quotas (a per-stream roll would let unlucky
    // seeds drop a pattern class the preset depends on entirely).
    std::vector<StreamPattern> patterns;
    unsigned n_chase = static_cast<unsigned>(
        params.pointerChaseFrac * num_streams + 0.5);
    unsigned n_random = static_cast<unsigned>(
        params.streamRandomFrac * num_streams + 0.5);
    if (params.pointerChaseFrac > 0.0 && n_chase == 0)
        n_chase = 1;
    if (params.streamRandomFrac > 0.0 && n_random == 0)
        n_random = 1;
    for (unsigned i = 0; i < num_streams; ++i) {
        if (i < n_chase)
            patterns.push_back(StreamPattern::PointerChase);
        else if (i < n_chase + n_random)
            patterns.push_back(StreamPattern::RandomInRange);
        else
            patterns.push_back(StreamPattern::Sequential);
    }
    for (unsigned i = num_streams; i > 1; --i)
        std::swap(patterns[i - 1], patterns[rng.below(i)]);

    for (unsigned i = 0; i < num_streams; ++i) {
        Stream st;
        st.pattern = patterns[i];
        st.baseReg = kFirstBaseReg + (i % kNumBaseRegs);
        std::uint64_t jitter = rng.range(50, 200);
        st.footprintLines =
            std::max<std::uint64_t>(4, params.dataFootprintLines * jitter /
                                           100);
        // Element-sized strides dominate (array walks); line-sized
        // strides are the rarer record-at-a-time pattern.
        double stride_roll = rng.uniform();
        st.strideBytes = stride_roll < 0.5 ? 8 : stride_roll < 0.8 ? 16
                                                                   : 64;
        st.base = 0x10000000ULL +
                  static_cast<Addr>(i) * (st.footprintLines + 4096) * 64 * 4;
        prog.streams.push_back(st);
    }

    // --- Functions: terminators first, then bodies. ---
    unsigned num_fns = std::max(1u, params.numFunctions);
    prog.functions.resize(num_fns);

    for (unsigned f = 0; f < num_fns; ++f) {
        Function &fn = prog.functions[f];
        unsigned nblocks = std::max<std::uint64_t>(
            1, rng.range(std::max(1u, params.blocksPerFunction / 2),
                         params.blocksPerFunction * 3 / 2));
        fn.blocks.resize(nblocks);

        if (f == 0 && num_fns >= 2) {
            // Function 0 is the dispatcher: every block calls out through
            // a wide function-pointer table, and the terminal block loops
            // back to the entry.  This guarantees the walk keeps
            // traversing the whole program (and exercising its
            // instruction footprint) instead of getting trapped in a
            // local cycle.
            nblocks = std::clamp(num_fns / 2u, 2u, 16u);
            fn.blocks.assign(nblocks, Block{});
            for (unsigned b = 0; b + 1 < nblocks; ++b) {
                Terminator &t = fn.blocks[b].term;
                if (b % 3 == 0) {
                    t.kind = TermKind::CallDirect;
                    t.calleeFn = static_cast<std::uint32_t>(
                        rng.range(1, num_fns - 1));
                } else {
                    t.kind = TermKind::CallIndirect;
                    t.ptrReg = kPtrRegs[rng.below(std::size(kPtrRegs))];
                    t.needsMat = true;
                    t.patternId = prog.numPatterns++;
                    unsigned ncand = static_cast<unsigned>(rng.range(
                        4, std::min<std::uint64_t>(12, num_fns - 1)));
                    for (unsigned c = 0; c < ncand; ++c)
                        t.candidates.push_back(static_cast<std::uint32_t>(
                            rng.range(1, num_fns - 1)));
                }
            }
            fn.blocks.back().term.kind = TermKind::Jump;
            fn.blocks.back().term.targetBlock = 0;
            fn.hasCalls = true;
            continue;
        }

        // Bound the product of nested loop trip counts so one function
        // activation cannot monopolise the trace.
        unsigned loop_budget = 96;
        for (unsigned b = 0; b < nblocks; ++b) {
            Terminator &t = fn.blocks[b].term;
            bool last = (b == nblocks - 1);
            if (last) {
                if (f == 0) {
                    // Single-function program: loop forever; the trace
                    // length bounds it.
                    t.kind = TermKind::Jump;
                    t.targetBlock = 0;
                } else {
                    t.kind = TermKind::Return;
                }
                continue;
            }

            double roll = rng.uniform();
            // Functions never call themselves: self recursion under a
            // loop explodes exponentially below the depth cap and lets
            // one 40-PC subtree monopolise the whole trace.  (Mutual
            // recursion across distinct functions stays allowed -- its
            // subtrees at least span diverse code.)
            bool can_call = num_fns >= 3;
            if (roll < params.callDensity && can_call) {
                double ind = rng.uniform();
                if (ind < params.indirectCallFrac * params.blrX30Frac) {
                    t.kind = TermKind::CallIndirectX30;
                    t.ptrReg = aarch64::kLinkReg;
                } else if (ind < params.indirectCallFrac) {
                    t.kind = TermKind::CallIndirect;
                    t.ptrReg = kPtrRegs[rng.below(std::size(kPtrRegs))];
                } else {
                    t.kind = TermKind::CallDirect;
                }
                auto pick_callee = [&]() {
                    for (;;) {
                        auto c = static_cast<std::uint32_t>(
                            rng.range(1, num_fns - 1));
                        if (c != f)
                            return c;
                    }
                };
                if (t.kind == TermKind::CallDirect) {
                    t.calleeFn = pick_callee();
                } else {
                    unsigned ncand = static_cast<unsigned>(rng.range(2, 4));
                    for (unsigned c = 0; c < ncand; ++c)
                        t.candidates.push_back(pick_callee());
                    t.needsMat = true;
                    t.patternId = prog.numPatterns++;
                }
            } else if (roll < params.callDensity + params.indirectJumpFrac) {
                t.kind = TermKind::IndirectJump;
                t.ptrReg = kJumpReg;
                t.needsMat = true;
                t.patternId = prog.numPatterns++;
                unsigned ncand = static_cast<unsigned>(rng.range(2, 4));
                for (unsigned c = 0; c < ncand; ++c)
                    t.candidates.push_back(static_cast<std::uint32_t>(
                        rng.range(b + 1, nblocks - 1)));
            } else if (roll < params.callDensity + params.indirectJumpFrac +
                                  0.08) {
                t.kind = TermKind::Jump;
                t.targetBlock = static_cast<std::uint32_t>(
                    rng.range(b + 1, nblocks - 1));
            } else if (roll < params.callDensity + params.indirectJumpFrac +
                                  0.08 + 0.55) {
                t.kind = TermKind::CondBranch;
                t.patternId = prog.numPatterns++;
                bool backward = b >= 1 && loop_budget >= 4 &&
                                rng.chance(params.condLoopFrac);
                if (backward) {
                    t.behavior = BranchBehavior::Loop;
                    unsigned period = static_cast<unsigned>(rng.range(
                        params.loopPeriodMin,
                        std::max(params.loopPeriodMin,
                                 params.loopPeriodMax)));
                    period = std::clamp(period, 2u, loop_budget);
                    t.targetBlock =
                        static_cast<std::uint32_t>(rng.range(1, b));
                    // Loops around call sites multiply down the call
                    // chain; keep them short so no nest monopolises the
                    // trace.
                    for (std::uint32_t lb = t.targetBlock; lb < b; ++lb) {
                        TermKind k = fn.blocks[lb].term.kind;
                        if (k == TermKind::CallDirect ||
                            k == TermKind::CallIndirect ||
                            k == TermKind::CallIndirectX30) {
                            period = std::min(period, 2u);
                            break;
                        }
                    }
                    loop_budget = std::max(1u, loop_budget / period);
                    t.loopPeriod = static_cast<std::uint16_t>(period);
                    t.viaReg = rng.chance(params.condRegFrac);
                } else {
                    t.targetBlock = static_cast<std::uint32_t>(
                        rng.range(b + 1, nblocks - 1));
                    t.viaReg = rng.chance(params.condRegFrac);
                    bool load_dep =
                        t.viaReg && rng.chance(params.loadToBranchFrac);
                    if (load_dep)
                        t.behavior = BranchBehavior::LoadDep;
                    else if (rng.chance(params.condRandomFrac))
                        t.behavior = BranchBehavior::Random;
                    else {
                        t.behavior = BranchBehavior::Biased;
                        t.takenProb = rng.chance(0.5)
                                          ? params.condTakenBias
                                          : 1.0 - params.condTakenBias;
                    }
                }
            } else {
                t.kind = TermKind::FallThrough;
            }

            if (t.kind == TermKind::CallDirect ||
                t.kind == TermKind::CallIndirect ||
                t.kind == TermKind::CallIndirectX30)
                fn.hasCalls = true;
        }
    }

    // --- Bodies. ---
    for (unsigned f = 0; f < num_fns; ++f) {
        Function &fn = prog.functions[f];

        // Each function touches a small subset of the data streams.
        std::vector<std::uint16_t> fn_streams;
        unsigned nstreams = static_cast<unsigned>(
            rng.range(1, std::min<std::uint64_t>(3, num_streams)));
        for (unsigned s = 0; s < nstreams; ++s)
            fn_streams.push_back(
                static_cast<std::uint16_t>(1 + rng.below(num_streams)));

        for (Block &blk : fn.blocks) {
            unsigned n = std::max<std::uint64_t>(
                1, rng.range(std::max(1u, params.instsPerBlock / 2),
                             params.instsPerBlock * 3 / 2));
            for (unsigned i = 0; i < n; ++i) {
                StaticInst si;
                double roll = rng.uniform();
                double acc = params.fracLoad;
                if (roll < acc) {
                    si.kind = SlotKind::Load;
                } else if (roll < (acc += params.fracStore)) {
                    si.kind = SlotKind::Store;
                } else if (roll < (acc += params.fracFp)) {
                    si.kind = rng.chance(0.2) ? SlotKind::FpCmp
                                              : SlotKind::Fp;
                } else if (roll < (acc += params.fracSlowAlu)) {
                    si.kind = SlotKind::SlowAlu;
                } else if (roll < (acc += params.fracCmp)) {
                    si.kind = SlotKind::Cmp;
                } else {
                    si.kind = SlotKind::Alu;
                }

                switch (si.kind) {
                  case SlotKind::Alu:
                  case SlotKind::SlowAlu:
                    si.numDst = 1;
                    si.dst[0] = dataReg(rng);
                    if (si.dst[0] == kCounterRegs[0] ||
                        si.dst[0] == kCounterRegs[1]) {
                        // Counter registers evolve as increments
                        // (i = i + 1): single-cycle loop-carried chains.
                        si.numSrc = 1;
                        si.src[0] = si.dst[0];
                    } else {
                        si.numSrc =
                            static_cast<std::uint8_t>(rng.range(1, 2));
                        for (unsigned s = 0; s < si.numSrc; ++s)
                            si.src[s] = pickDepSource(rng, blk.insts,
                                                      params.depDensity);
                    }
                    break;
                  case SlotKind::Cmp:
                    si.numSrc = 2;
                    // Compares split between cheap counter tests and
                    // tests of computed values (dependency chains).
                    si.src[0] = rng.chance(0.65)
                                    ? pickDepSource(rng, blk.insts,
                                                    params.depDensity)
                                    : counterReg(rng);
                    si.src[1] = counterReg(rng);
                    if (rng.chance(params.cmpReadsLoadFrac)) {
                        int l = lastLoadSlot(blk.insts);
                        if (l >= 0)
                            si.src[0] =
                                blk.insts[static_cast<std::size_t>(l)]
                                    .dst[0];
                    }
                    break;
                  case SlotKind::Fp:
                    si.numDst = 1;
                    si.dst[0] = vecReg(rng);
                    si.numSrc = 2;
                    si.src[0] = vecReg(rng);
                    si.src[1] = vecReg(rng);
                    break;
                  case SlotKind::FpCmp:
                    si.numSrc = 2;
                    si.src[0] = vecReg(rng);
                    si.src[1] = vecReg(rng);
                    break;
                  case SlotKind::Load:
                  case SlotKind::Store: {
                    si.streamId = fn_streams[rng.below(fn_streams.size())];
                    const Stream &st = prog.streams[si.streamId];
                    si.accessSize = rollAccessSize(rng);
                    bool is_load = si.kind == SlotKind::Load;
                    bool seq = st.pattern == StreamPattern::Sequential;

                    if (st.pattern == StreamPattern::PointerChase &&
                        is_load) {
                        // LDR Xb, [Xb]: the chase idiom.
                        si.mode = AddrMode::Offset;
                        si.accessSize = 8;
                        si.numSrc = 1;
                        si.src[0] = st.baseReg;
                        si.numDst = 1;
                        si.dst[0] = st.baseReg;
                        break;
                    }

                    double m = rng.uniform();
                    double acc2 = is_load ? params.prefetchFrac
                                          : params.dczvaFrac;
                    double vec_end =
                        acc2 + (is_load ? params.vecLoadFrac : 0.0);
                    double pair_end = vec_end + params.loadPairFrac;
                    if (m < acc2) {
                        si.mode = is_load ? AddrMode::Prefetch
                                          : AddrMode::Zva;
                        if (!is_load)
                            si.accessSize = 64;
                    } else if (m < vec_end) {
                        si.mode = AddrMode::Vector;
                        si.memRegs = static_cast<std::uint8_t>(
                            rng.range(2, 3));
                        si.accessSize = 8;
                    } else if (m < pair_end) {
                        si.mode = (seq && rng.chance(0.25))
                                      ? AddrMode::PairWb
                                      : AddrMode::Pair;
                        si.memRegs = 2;
                        si.accessSize = 8;
                    } else if (seq && rng.chance(params.baseUpdateFrac)) {
                        si.mode = rng.chance(params.preIndexFrac)
                                      ? AddrMode::PreIndex
                                      : AddrMode::PostIndex;
                    } else {
                        si.mode = AddrMode::Offset;
                        si.immOffset = static_cast<std::uint16_t>(
                            rng.below(64));
                        si.advance = seq && rng.chance(0.5);
                    }
                    // Line crossings happen while streaming through
                    // buffers (where the neighbouring line is touched
                    // soon anyway); random accesses stay line-contained.
                    if (seq &&
                        (si.mode == AddrMode::Offset ||
                         si.mode == AddrMode::Pair ||
                         si.mode == AddrMode::Vector) &&
                        si.accessSize >= 2 &&
                        rng.chance(params.unalignedFrac))
                        si.crossesLine = true;

                    // Register lists (data registers; base added by the
                    // generator's emission logic from the stream).
                    unsigned data_regs =
                        (si.mode == AddrMode::Prefetch ||
                         si.mode == AddrMode::Zva)
                            ? 0
                            : si.memRegs;
                    if (si.mode == AddrMode::Vector) {
                        for (unsigned r = 0; r < data_regs && r < 3; ++r)
                            si.dst[r] = vecReg(rng);
                        si.numDst = is_load
                                        ? static_cast<std::uint8_t>(
                                              std::min(3u, data_regs))
                                        : 0;
                        if (!is_load) {
                            si.numSrc = static_cast<std::uint8_t>(
                                std::min(3u, data_regs));
                            for (unsigned r = 0; r < si.numSrc; ++r)
                                si.src[r] = si.dst[r];
                            si.numDst = 0;
                        }
                    } else if (is_load) {
                        si.numDst = static_cast<std::uint8_t>(data_regs);
                        for (unsigned r = 0; r < data_regs && r < 3; ++r)
                            si.dst[r] = loadDstReg(rng);
                    } else {
                        si.numSrc = static_cast<std::uint8_t>(data_regs);
                        for (unsigned r = 0; r < data_regs && r < 3; ++r)
                            si.src[r] = dataReg(rng);
                    }
                    break;
                  }
                }
                blk.insts.push_back(si);
            }

            // Writeback loads feed a loop-carried accumulator (X7), the
            // way real reduction loops consume streamed data.  This keeps
            // L1-resident loops bound by the load-use chain whether or
            // not the base-register chain is split by the converter.
            for (std::size_t w = 0; w < blk.insts.size(); ++w) {
                const StaticInst &ld = blk.insts[w];
                bool wb_load =
                    ld.kind == SlotKind::Load &&
                    (ld.mode == AddrMode::PreIndex ||
                     ld.mode == AddrMode::PostIndex ||
                     ld.mode == AddrMode::PairWb) &&
                    ld.numDst > 0;
                if (!wb_load)
                    continue;
                StaticInst acc;
                acc.kind = SlotKind::Alu;
                acc.numDst = 1;
                acc.dst[0] = 7;   // the dedicated accumulator register
                acc.numSrc = 2;
                acc.src[0] = 7;
                acc.src[1] = ld.dst[0];
                blk.insts.insert(
                    blk.insts.begin() + static_cast<std::ptrdiff_t>(w + 1),
                    acc);
                ++w;
            }

            // Fix-ups the terminator needs from its block body.
            Terminator &t = blk.term;
            if (t.kind == TermKind::CondBranch) {
                if (t.behavior == BranchBehavior::LoadDep) {
                    int l = lastLoadSlot(blk.insts);
                    if (l < 0) {
                        // Guarantee a producing load.
                        StaticInst ld;
                        ld.kind = SlotKind::Load;
                        ld.streamId =
                            fn_streams[rng.below(fn_streams.size())];
                        if (prog.streams[ld.streamId].pattern ==
                            StreamPattern::PointerChase)
                            ld.streamId = fn_streams[0];
                        if (prog.streams[ld.streamId].pattern ==
                            StreamPattern::PointerChase) {
                            // All candidate streams chase: fall back to a
                            // plain biased branch instead.
                            t.behavior = BranchBehavior::Biased;
                            t.takenProb = params.condTakenBias;
                        } else {
                            ld.mode = AddrMode::Offset;
                            ld.accessSize = 8;
                            ld.numDst = 1;
                            ld.dst[0] = loadDstReg(rng);
                            blk.insts.push_back(ld);
                            l = static_cast<int>(blk.insts.size()) - 1;
                        }
                    }
                    if (t.behavior == BranchBehavior::LoadDep)
                        t.condSrcReg =
                            blk.insts[static_cast<std::size_t>(l)].dst[0];
                } else if (t.viaReg) {
                    t.condSrcReg = rng.chance(0.65)
                                       ? dataReg(rng)
                                       : counterReg(rng);
                } else {
                    // Flags-based conditional: make sure something sets
                    // the (unrecorded) flags nearby.
                    bool has_cmp = false;
                    for (const StaticInst &si : blk.insts)
                        if (si.kind == SlotKind::Cmp)
                            has_cmp = true;
                    if (!has_cmp) {
                        StaticInst cmp;
                        cmp.kind = SlotKind::Cmp;
                        cmp.numSrc = 2;
                        cmp.src[0] = counterReg(rng);
                        cmp.src[1] = counterReg(rng);
                        if (rng.chance(params.cmpReadsLoadFrac)) {
                            int l = lastLoadSlot(blk.insts);
                            if (l >= 0)
                                cmp.src[0] =
                                    blk.insts[static_cast<std::size_t>(l)]
                                        .dst[0];
                        }
                        blk.insts.push_back(cmp);
                    }
                }
            }
        }

        // Prologue/epilogue: non-leaf functions save and restore X30 on
        // the stack.  Half use writeback addressing (STR X30,[SP,#-16]! /
        // LDR X30,[SP],#16), half the explicit-adjust idiom
        // (SUB SP,SP,#16; STR X30,[SP] ... LDR X30,[SP]; ADD SP,SP,#16).
        if (fn.hasCalls) {
            bool writeback_style = rng.chance(0.25);
            auto &front = fn.blocks.front().insts;
            auto &back = fn.blocks.back().insts;

            StaticInst pro;
            pro.kind = SlotKind::Store;
            pro.streamId = 0;
            pro.accessSize = 8;
            pro.numSrc = 1;
            pro.src[0] = aarch64::kLinkReg;

            StaticInst epi;
            epi.kind = SlotKind::Load;
            epi.streamId = 0;
            epi.accessSize = 8;
            epi.numDst = 1;
            epi.dst[0] = aarch64::kLinkReg;

            if (writeback_style) {
                pro.mode = AddrMode::PreIndex;
                epi.mode = AddrMode::PostIndex;
                front.insert(front.begin(), pro);
                back.push_back(epi);
            } else {
                pro.mode = AddrMode::Offset;
                epi.mode = AddrMode::Offset;
                StaticInst sub;
                sub.kind = SlotKind::Alu;
                sub.spAdjust = -16;
                sub.numSrc = 1;
                sub.src[0] = aarch64::kSp;
                sub.numDst = 1;
                sub.dst[0] = aarch64::kSp;
                StaticInst add = sub;
                add.spAdjust = 16;
                front.insert(front.begin(), pro);
                front.insert(front.begin(), sub);
                back.push_back(epi);
                back.push_back(add);
            }
        }
    }

    // --- Block-entry normalisation. ---
    // Branch targets point at a block's first address.  Memory slots own
    // a reserved (conditionally-emitted) helper address before the access
    // itself, so a block that started with a memory slot would make taken
    // branches appear to land short of the next fetched instruction.
    // Guarantee every block leads with an always-emitted ALU (the frame
    // set-up `mov x29, sp` idiom).
    for (Function &fn : prog.functions) {
        for (Block &blk : fn.blocks) {
            if (!blk.insts.empty() && blk.insts.front().kind != SlotKind::Load
                && blk.insts.front().kind != SlotKind::Store)
                continue;
            StaticInst lead;
            lead.kind = SlotKind::Alu;
            lead.numDst = 1;
            lead.dst[0] = 29;   // the frame pointer: unused elsewhere
            lead.numSrc = 1;
            lead.src[0] = aarch64::kSp;
            blk.insts.insert(blk.insts.begin(), lead);
        }
    }

    // --- Address assignment. ---
    Addr pc = prog.codeBase;
    for (Function &fn : prog.functions) {
        fn.entry = pc;
        for (Block &blk : fn.blocks) {
            blk.firstPc = pc;
            for (StaticInst &si : blk.insts) {
                si.pc = pc;
                si.pcSlots = 1;
                if (si.kind == SlotKind::Load ||
                    si.kind == SlotKind::Store) {
                    // Reserve room for a sync/materialisation ALU before
                    // and an advance ADD after the access.
                    si.pcSlots = 2;
                    if (si.advance)
                        si.pcSlots = 3;
                }
                pc += 4 * si.pcSlots;
            }
            Terminator &t = blk.term;
            if (t.kind != TermKind::FallThrough) {
                if (t.needsMat) {
                    t.matPc = pc;
                    pc += 4;
                }
                t.pc = pc;
                pc += 4;
            }
        }
        // Small inter-function gap (alignment padding).
        pc = (pc + 63) & ~static_cast<Addr>(63);
    }

    return prog;
}

} // namespace trb
