#include "synth/suites.hh"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/rng.hh"

namespace trb
{

namespace
{

std::string
indexedName(const char *prefix, unsigned i)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s_%u", prefix, i);
    return buf;
}

/** Scale a double knob into [lo, hi] from a uniform roll. */
double
between(Rng &rng, double lo, double hi)
{
    return lo + (hi - lo) * rng.uniform();
}

/** The srv indices that carry BLR-X30 calls (call-stack bug triggers). */
bool
isBlrX30Trace(unsigned i)
{
    switch (i) {
      case 3: case 7: case 12: case 19: case 24: case 29: case 33:
      case 37: case 41: case 44: case 46: case 48: case 55: case 62:
        return true;
      default:
        return false;
    }
}

} // namespace

std::vector<TraceSpec>
cvp1PublicSuite(std::uint64_t length)
{
    std::vector<TraceSpec> suite;
    suite.reserve(135);
    unsigned global = 0;

    auto jitterCommon = [](WorkloadParams &p, Rng &rng) {
        // Spread the knobs the paper's per-trace figures sort by.
        {
            // Most traces carry few writeback loads; a few carry many
            // (the skew Fig. 4's x-axis shows).
            double u = rng.uniform();
            p.baseUpdateFrac = 0.001 + 0.03 * u * u * u;
        }
        p.preIndexFrac = between(rng, 0.3, 0.7);
        {
            double u = rng.uniform();
            p.condRandomFrac = 0.08 * u * u * u;   // skew: most traces tame
        }
        p.loadToBranchFrac = between(rng, 0.02, 0.20);
        p.cmpReadsLoadFrac = between(rng, 0.02, 0.15);
        p.fracCmp = between(rng, 0.05, 0.18);
        p.condRegFrac = between(rng, 0.2, 0.5);
        p.dataFootprintLines = static_cast<std::uint64_t>(
            static_cast<double>(p.dataFootprintLines) *
            between(rng, 0.25, 6.0));
        p.numFunctions = std::max(
            2u, static_cast<unsigned>(p.numFunctions *
                                      between(rng, 0.5, 2.5)));
    };

    for (unsigned i = 0; i < 35; ++i, ++global) {
        Rng rng(0xC0FFEE00ULL + global);
        WorkloadParams p = computeIntParams(1000 + global);
        jitterCommon(p, rng);
        if (i % 9 == 4)
            p.pointerChaseFrac = 0.3;   // a few latency-bound int codes
        suite.push_back({indexedName("compute_int", i), p, length});
    }
    for (unsigned i = 0; i < 30; ++i, ++global) {
        Rng rng(0xC0FFEE00ULL + global);
        WorkloadParams p = computeFpParams(1000 + global);
        jitterCommon(p, rng);
        p.condRandomFrac *= 0.4;        // FP codes stay predictable
        suite.push_back({indexedName("compute_fp", i), p, length});
    }
    for (unsigned i = 0; i < 5; ++i, ++global) {
        Rng rng(0xC0FFEE00ULL + global);
        WorkloadParams p = cryptoParams(1000 + global);
        {
            double u = rng.uniform();
            p.baseUpdateFrac = 0.001 + 0.03 * u * u * u;
        }
        p.dataFootprintLines = static_cast<std::uint64_t>(
            static_cast<double>(p.dataFootprintLines) *
            between(rng, 0.5, 2.0));
        suite.push_back({indexedName("crypto", i), p, length});
    }
    for (unsigned i = 0; i < 65; ++i, ++global) {
        Rng rng(0xC0FFEE00ULL + global);
        WorkloadParams p = serverParams(1000 + global);
        jitterCommon(p, rng);
        p.numFunctions = std::max(
            40u, static_cast<unsigned>(serverParams(0).numFunctions *
                                       between(rng, 0.4, 3.0)));
        p.indirectCallFrac = between(rng, 0.1, 0.35);
        p.condRandomFrac *= 0.3;   // server branches are predictable
        if (isBlrX30Trace(i)) {
            // Front-end-bound traces where the misclassified BLR X30
            // calls dominate (the paper's srv_3 / srv_62 shape).
            p.blrX30Frac = between(rng, 0.7, 1.0);
            p.indirectCallFrac = between(rng, 0.3, 0.45);
            p.callDensity = 0.5;
            p.indirectRandomFrac = 0.05;
            p.dataFootprintLines =
                std::max<std::uint64_t>(16, p.dataFootprintLines / 4);
            p.condRandomFrac *= 0.4;
        }
        suite.push_back({indexedName("srv", i), p, length});
    }
    return suite;
}

namespace
{

/** One IPC-1 row: scale factors applied to its base preset. */
struct Ipc1Row
{
    const char *name;
    char base;          //!< 'i'nt, 's'erver, 'm'emory-bound, 'f'p
    double fnScale;     //!< multiplies numFunctions (L1I-MPKI driver)
    double dataScale;   //!< multiplies dataFootprintLines
    double rnd;         //!< condRandomFrac (direction-MPKI driver)
    double chase;       //!< pointerChaseFrac
    double blrX30;      //!< BLR-X30 density (call-stack bug)
};

// Shaped after Table 2: server L1I MPKI grows monotonically down the
// list; 017-022 are also data-bound; 002/014/015/036/039 have tiny data
// footprints; the gcc_002/003 inputs are memory-bound pointer chasers.
constexpr Ipc1Row kIpc1Rows[] = {
    {"client_001", 'i', 2.0, 1.0, 0.18, 0.0, 0.0},
    {"client_002", 'i', 2.6, 0.8, 0.04, 0.0, 0.0},
    {"client_003", 'i', 2.7, 1.5, 0.16, 0.0, 0.0},
    {"client_004", 'i', 2.8, 1.0, 0.30, 0.0, 0.0},
    {"client_005", 'i', 3.2, 1.4, 0.20, 0.0, 0.0},
    {"client_006", 'i', 3.5, 1.6, 0.12, 0.0, 0.0},
    {"client_007", 'i', 4.5, 1.2, 0.14, 0.0, 0.0},
    {"client_008", 'i', 6.0, 1.4, 0.12, 0.0, 0.0},
    {"server_001", 's', 0.5, 1.0, 0.03, 0.0, 0.8},
    {"server_002", 's', 0.7, 0.02, 0.02, 0.0, 0.0},
    {"server_003", 's', 0.9, 2.0, 0.25, 0.0, 0.0},
    {"server_004", 's', 1.0, 2.5, 0.12, 0.0, 0.0},
    {"server_009", 's', 1.1, 2.5, 0.06, 0.0, 0.0},
    {"server_010", 's', 1.2, 2.2, 0.05, 0.0, 0.0},
    {"server_011", 's', 1.2, 1.8, 0.12, 0.0, 0.6},
    {"server_012", 's', 1.3, 1.8, 0.05, 0.0, 0.0},
    {"server_013", 's', 1.3, 1.8, 0.06, 0.0, 0.0},
    {"server_014", 's', 1.4, 0.03, 0.02, 0.0, 0.0},
    {"server_015", 's', 1.4, 0.01, 0.01, 0.0, 0.0},
    {"server_016", 's', 1.7, 1.6, 0.03, 0.0, 0.0},
    {"server_017", 's', 2.0, 40.0, 0.05, 0.5, 0.0},
    {"server_018", 's', 2.0, 40.0, 0.05, 0.5, 0.0},
    {"server_019", 's', 2.0, 42.0, 0.05, 0.5, 0.0},
    {"server_020", 's', 2.1, 44.0, 0.03, 0.5, 0.0},
    {"server_021", 's', 2.1, 45.0, 0.02, 0.5, 0.0},
    {"server_022", 's', 2.1, 45.0, 0.02, 0.5, 0.0},
    {"server_023", 's', 2.3, 1.8, 0.04, 0.0, 0.0},
    {"server_024", 's', 2.3, 1.8, 0.04, 0.0, 0.0},
    {"server_025", 's', 2.4, 1.7, 0.03, 0.0, 0.5},
    {"server_026", 's', 2.5, 1.9, 0.03, 0.0, 0.0},
    {"server_027", 's', 2.5, 1.8, 0.03, 0.0, 0.0},
    {"server_028", 's', 2.6, 2.4, 0.04, 0.0, 0.0},
    {"server_029", 's', 2.7, 2.4, 0.04, 0.0, 0.0},
    {"server_030", 's', 2.7, 2.3, 0.03, 0.0, 0.0},
    {"server_031", 's', 2.8, 2.2, 0.04, 0.0, 0.0},
    {"server_032", 's', 2.9, 2.0, 0.03, 0.0, 0.0},
    {"server_033", 's', 3.1, 1.0, 0.01, 0.0, 0.0},
    {"server_034", 's', 3.1, 0.9, 0.01, 0.0, 0.0},
    {"server_035", 's', 3.1, 1.1, 0.01, 0.2, 0.0},
    {"server_036", 's', 3.6, 0.02, 0.01, 0.0, 0.0},
    {"server_037", 's', 3.6, 0.7, 0.01, 0.0, 0.0},
    {"server_038", 's', 3.7, 0.7, 0.01, 0.0, 0.0},
    {"server_039", 's', 3.8, 0.03, 0.01, 0.0, 0.0},
    {"spec_gcc_001", 'i', 1.5, 1.0, 0.35, 0.0, 0.0},
    {"spec_gcc_002", 'm', 1.0, 1.0, 0.04, 0.7, 0.0},
    {"spec_gcc_003", 'm', 1.0, 1.2, 0.03, 0.8, 0.0},
    {"spec_gobmk_001", 'i', 1.3, 0.7, 0.38, 0.0, 0.0},
    {"spec_gobmk_002", 'i', 1.6, 0.3, 0.40, 0.0, 0.0},
    {"spec_perlbench_001", 'i', 1.2, 0.6, 0.10, 0.0, 0.0},
    {"spec_x264_001", 'f', 1.1, 0.5, 0.07, 0.0, 0.0},
};

} // namespace

std::vector<TraceSpec>
ipc1Suite(std::uint64_t length)
{
    std::vector<TraceSpec> suite;
    suite.reserve(std::size(kIpc1Rows));
    std::uint64_t seed = 77000;
    for (const Ipc1Row &row : kIpc1Rows) {
        WorkloadParams p;
        switch (row.base) {
          case 'i': p = computeIntParams(seed); break;
          case 's': p = serverParams(seed); break;
          case 'm': p = memoryBoundParams(seed); break;
          case 'f': p = computeFpParams(seed); break;
          default: p = computeIntParams(seed); break;
        }
        p.numFunctions = std::max(
            2u, static_cast<unsigned>(p.numFunctions * row.fnScale));
        if (std::string(row.name).rfind("client", 0) == 0) {
            // Client traces: big flat code footprints, little looping
            // (the Table 2 rows have L1I MPKI 10-35 at modest IPC).
            p.numFunctions *= 6;
            p.condLoopFrac = 0.15;
            p.callDensity = 0.30;
        }
        if (std::string(row.name).rfind("spec", 0) == 0)
            p.numFunctions *= 2;
        p.dataFootprintLines = std::max<std::uint64_t>(
            8, static_cast<std::uint64_t>(
                   static_cast<double>(p.dataFootprintLines) *
                   row.dataScale));
        p.condRandomFrac = row.rnd;
        if (row.chase > 0.0)
            p.pointerChaseFrac = row.chase;
        if (row.blrX30 > 0.0) {
            p.blrX30Frac = row.blrX30;
            p.indirectCallFrac = std::max(p.indirectCallFrac, 0.25);
        }
        suite.push_back({row.name, p, length});
        ++seed;
    }
    return suite;
}

} // namespace trb
