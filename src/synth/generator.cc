#include "synth/generator.hh"

#include "common/logging.hh"

namespace trb
{

TraceGenerator::TraceGenerator(const WorkloadParams &params)
    : params_(params), program_(SynthProgram::build(params)),
      rng_(params.seed ^ 0xd1ceb00cULL)
{
    std::uint64_t sm = params.seed + 0x5eedULL;
    valueSalt_ = splitmix64(sm);
}

std::uint64_t
TraceGenerator::loadValue(Addr addr) const
{
    std::uint64_t x = addr ^ valueSalt_;
    return splitmix64(x);
}

Addr
TraceGenerator::chaseNext(const Stream &st, Addr addr) const
{
    std::uint64_t idx = (addr - st.base) / kLineBytes;
    std::uint64_t next =
        (idx * 6364136223846793005ULL + 1442695040888963407ULL) %
        st.footprintLines;
    return st.base + next * kLineBytes;
}

Addr
TraceGenerator::wrap(const Stream &st, Addr addr)
{
    std::uint64_t span = st.footprintLines * kLineBytes;
    return st.base + (addr - st.base) % span;
}

void
TraceGenerator::push(const CvpRecord &rec)
{
    trace_.push_back(rec);
    for (unsigned i = 0; i < rec.numDst; ++i)
        regVal_[rec.dst[i] % aarch64::kNumRegs] = rec.dstValue[i];
}

void
TraceGenerator::emitMovImm(Addr pc, RegId dst, std::uint64_t value)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::Alu;
    rec.addDst(dst, value);
    push(rec);
}

CvpTrace
TraceGenerator::generate(std::uint64_t length)
{
    trace_.clear();
    trace_.reserve(length + 8);
    target_ = length;

    for (auto &v : regVal_)
        v = 0;
    regVal_[aarch64::kSp] = program_.stackBase;

    cursor_.assign(program_.streams.size(), 0);
    for (std::size_t s = 0; s < program_.streams.size(); ++s)
        cursor_[s] = program_.streams[s].base;
    cursor_[0] = program_.stackBase;

    loopCount_.assign(program_.numPatterns, 0);
    callStack_.clear();
    shadowX30_.clear();
    pos_ = Site{0, 0};
    slot_ = 0;

    while (trace_.size() < target_) {
        const Function &fn = program_.functions[pos_.fn];
        const Block &blk = fn.blocks[pos_.block];
        if (slot_ < blk.insts.size()) {
            emitSlot(blk.insts[slot_]);
            ++slot_;
        } else {
            emitTerminator(fn, blk);
        }
    }
    trace_.resize(length);
    return std::move(trace_);
}

void
TraceGenerator::emitSlot(const StaticInst &si)
{
    switch (si.kind) {
      case SlotKind::Alu:
      case SlotKind::SlowAlu:
      case SlotKind::Cmp: {
        CvpRecord rec;
        rec.pc = si.pc;
        rec.cls =
            si.kind == SlotKind::SlowAlu ? InstClass::SlowAlu
                                         : InstClass::Alu;
        for (unsigned i = 0; i < si.numSrc; ++i)
            rec.addSrc(si.src[i]);
        if (si.spAdjust != 0) {
            // SUB/ADD SP, SP, #imm: the stack-frame adjust idiom.
            rec.addDst(aarch64::kSp,
                       regVal_[aarch64::kSp] +
                           static_cast<std::int64_t>(si.spAdjust));
        } else {
            for (unsigned i = 0; i < si.numDst; ++i)
                rec.addDst(si.dst[i], rng_.next());
        }
        push(rec);
        break;
      }
      case SlotKind::Fp:
      case SlotKind::FpCmp: {
        CvpRecord rec;
        rec.pc = si.pc;
        rec.cls = InstClass::Fp;
        for (unsigned i = 0; i < si.numSrc; ++i)
            rec.addSrc(si.src[i]);
        for (unsigned i = 0; i < si.numDst; ++i)
            rec.addDst(si.dst[i], rng_.next());
        push(rec);
        break;
      }
      case SlotKind::Load:
      case SlotKind::Store:
        if (si.streamId == 0)
            emitStackMem(si);
        else
            emitMem(si);
        break;
    }
}

void
TraceGenerator::emitStackMem(const StaticInst &si)
{
    // X30 save/restore: either writeback form (STR X30,[SP,#-16]! /
    // LDR X30,[SP],#16) or plain form against a pre-adjusted SP.
    bool writeback = si.mode != AddrMode::Offset;
    CvpRecord rec;
    rec.cls = si.kind == SlotKind::Load ? InstClass::Load : InstClass::Store;
    rec.pc = si.pc + 4;   // slot 0 is the (unused) sync position
    rec.accessSize = 8;
    if (si.kind == SlotKind::Store) {
        Addr ea = writeback ? regVal_[aarch64::kSp] - 16
                            : regVal_[aarch64::kSp];
        rec.ea = ea;
        rec.addSrc(aarch64::kLinkReg);
        rec.addSrc(aarch64::kSp);
        if (writeback)
            rec.addDst(aarch64::kSp, ea);   // pre-index: new base == EA
        shadowX30_.push_back(regVal_[aarch64::kLinkReg]);
        push(rec);
    } else {
        trb_assert(!shadowX30_.empty(), "epilogue without prologue");
        Addr ea = regVal_[aarch64::kSp];
        rec.ea = ea;
        rec.addSrc(aarch64::kSp);
        if (writeback)
            rec.addDst(aarch64::kSp, ea + 16);  // post-index base first
        rec.addDst(aarch64::kLinkReg, shadowX30_.back());
        shadowX30_.pop_back();
        push(rec);
    }
}

void
TraceGenerator::emitMem(const StaticInst &si)
{
    const Stream &st = program_.streams[si.streamId];
    Addr &cur = cursor_[si.streamId];
    const bool is_load = si.kind == SlotKind::Load;
    const unsigned total =
        si.mode == AddrMode::Zva
            ? kLineBytes
            : static_cast<unsigned>(si.accessSize) * si.memRegs;

    // The chase idiom: LDR Xb, [Xb].
    if (st.pattern == StreamPattern::PointerChase && is_load &&
        si.numDst == 1 && si.dst[0] == st.baseReg) {
        if (regVal_[st.baseReg] != cur)
            emitMovImm(si.pc, st.baseReg, cur);
        CvpRecord rec;
        rec.pc = si.pc + 4;
        rec.cls = InstClass::Load;
        rec.ea = cur;
        rec.accessSize = 8;
        rec.addSrc(st.baseReg);
        Addr next = chaseNext(st, cur);
        rec.addDst(st.baseReg, next);
        cur = next;
        push(rec);
        return;
    }

    Addr ea = 0;
    Addr new_base = 0;
    bool writes_base = false;

    if (st.pattern == StreamPattern::RandomInRange) {
        ea = st.base + rng_.below(st.footprintLines) * kLineBytes;
        if (si.crossesLine && si.accessSize >= 2)
            ea += kLineBytes - si.accessSize / 2;
        else if (si.mode != AddrMode::Zva)
            ea += rng_.below(kLineBytes - std::min(total, 63u));
        if (si.mode == AddrMode::Zva)
            ea = lineAddr(ea);
        // Computed addressing: materialise the address first.
        emitMovImm(si.pc, st.baseReg, ea);
    } else {
        if (regVal_[st.baseReg] != cur)
            emitMovImm(si.pc, st.baseReg, cur);
        switch (si.mode) {
          case AddrMode::Offset:
          case AddrMode::Pair:
          case AddrMode::Vector:
            ea = cur + si.immOffset;
            break;
          case AddrMode::Prefetch:
            ea = wrap(st, cur + 8 * st.strideBytes);
            break;
          case AddrMode::Zva:
            ea = lineAddr(cur);
            break;
          case AddrMode::PreIndex:
            ea = wrap(st, cur + st.strideBytes);
            new_base = ea;          // written before the access: == EA
            writes_base = true;
            cur = ea;
            break;
          case AddrMode::PostIndex:
          case AddrMode::PairWb:
            ea = cur;
            new_base = wrap(st, cur + st.strideBytes);
            writes_base = true;
            cur = new_base;
            break;
        }
        if (si.crossesLine && si.accessSize >= 2)
            ea = lineAddr(ea) + kLineBytes - si.accessSize / 2;
    }

    // Natural alignment: compiled code keeps scalar and pair accesses
    // inside one line unless the slot is an engineered line-crosser.
    // Writeback modes are exempt: their address is tied to the base
    // register value chain (EA == new base for pre-indexing).
    if (!si.crossesLine && !writes_base && si.mode != AddrMode::Zva &&
        total > 0 && total < kLineBytes) {
        ea &= ~static_cast<Addr>(si.accessSize - 1);
        Addr off = ea % kLineBytes;
        if (off + total > kLineBytes)
            ea = lineAddr(ea) + (kLineBytes - total);
    }

    CvpRecord rec;
    rec.pc = si.pc + 4;
    rec.cls = is_load ? InstClass::Load : InstClass::Store;
    rec.ea = ea;
    rec.accessSize = si.accessSize;
    rec.addSrc(st.baseReg);
    if (is_load) {
        // Writeback loads list the base register first, the way the
        // CVP-1 tracer orders outputs (DESIGN.md discusses why this
        // ordering is load-bearing for the original converter's
        // behaviour).
        if (writes_base)
            rec.addDst(st.baseReg, new_base);
        for (unsigned i = 0; i < si.numDst; ++i)
            rec.addDst(si.dst[i],
                       loadValue(ea + i * si.accessSize));
    } else {
        for (unsigned i = 0; i < si.numSrc; ++i)
            rec.addSrc(si.src[i]);
        if (writes_base)
            rec.addDst(st.baseReg, new_base);
    }
    push(rec);

    if (si.advance && st.pattern == StreamPattern::Sequential) {
        Addr advanced = wrap(st, cur + st.strideBytes);
        CvpRecord add;
        add.pc = si.pc + 8;
        add.cls = InstClass::Alu;
        add.addSrc(st.baseReg);
        add.addDst(st.baseReg, advanced);
        cur = advanced;
        push(add);
    }
}

std::uint32_t
TraceGenerator::pickCandidate(const Terminator &t)
{
    // Most indirect branches rotate through their target table (a
    // history-predictable pattern, like real dispatch loops); a fraction
    // is data-dependent and effectively random.
    if (rng_.chance(params_.indirectRandomFrac))
        return t.candidates[rng_.below(t.candidates.size())];
    return t.candidates[loopCount_[t.patternId]++ % t.candidates.size()];
}

void
TraceGenerator::emitTerminator(const Function &fn, const Block &blk)
{
    const Terminator &t = blk.term;
    const Function *cur_fn = &fn;

    auto goTo = [&](std::uint32_t fn_idx, std::uint32_t block_idx) {
        pos_ = Site{fn_idx, block_idx};
        slot_ = 0;
    };
    auto nextBlock = [&] { goTo(pos_.fn, pos_.block + 1); };

    switch (t.kind) {
      case TermKind::FallThrough:
        nextBlock();
        return;

      case TermKind::CondBranch: {
        bool taken = false;
        switch (t.behavior) {
          case BranchBehavior::Biased:
            taken = rng_.chance(t.takenProb);
            break;
          case BranchBehavior::Loop: {
            std::uint32_t cnt = ++loopCount_[t.patternId];
            taken = (cnt % t.loopPeriod) != 0;
            break;
          }
          case BranchBehavior::Random:
            taken = rng_.chance(0.5);
            break;
          case BranchBehavior::LoadDep:
            taken = (regVal_[t.condSrcReg] & 1) != 0;
            break;
        }
        CvpRecord rec;
        rec.pc = t.pc;
        rec.cls = InstClass::CondBranch;
        rec.taken = taken;
        rec.target = cur_fn->blocks[t.targetBlock].firstPc;
        if (t.viaReg)
            rec.addSrc(t.condSrcReg);
        push(rec);
        if (taken)
            goTo(pos_.fn, t.targetBlock);
        else
            nextBlock();
        return;
      }

      case TermKind::Jump: {
        CvpRecord rec;
        rec.pc = t.pc;
        rec.cls = InstClass::UncondDirectBranch;
        rec.taken = true;
        rec.target = cur_fn->blocks[t.targetBlock].firstPc;
        push(rec);
        goTo(pos_.fn, t.targetBlock);
        return;
      }

      case TermKind::IndirectJump: {
        std::uint32_t choice = pickCandidate(t);
        Addr target = cur_fn->blocks[choice].firstPc;
        emitMovImm(t.matPc, t.ptrReg, target);
        CvpRecord rec;
        rec.pc = t.pc;
        rec.cls = InstClass::UncondIndirectBranch;
        rec.taken = true;
        rec.target = target;
        rec.addSrc(t.ptrReg);
        push(rec);
        goTo(pos_.fn, choice);
        return;
      }

      case TermKind::CallDirect:
      case TermKind::CallIndirect:
      case TermKind::CallIndirectX30: {
        if (callStack_.size() >= params_.maxCallDepth) {
            nextBlock();   // depth cap: skip the call entirely
            return;
        }
        std::uint32_t callee = t.kind == TermKind::CallDirect
                                   ? t.calleeFn
                                   : pickCandidate(t);
        Addr entry = program_.functions[callee].entry;
        Addr ret = t.pc + 4;

        CvpRecord rec;
        rec.pc = t.pc;
        rec.taken = true;
        rec.target = entry;
        if (t.kind == TermKind::CallDirect) {
            rec.cls = InstClass::UncondDirectBranch;
        } else {
            emitMovImm(t.matPc, t.ptrReg, entry);
            rec.cls = InstClass::UncondIndirectBranch;
            rec.addSrc(t.ptrReg);
        }
        rec.addDst(aarch64::kLinkReg, ret);
        callStack_.push_back(Site{pos_.fn, pos_.block + 1});
        push(rec);
        goTo(callee, 0);
        return;
      }

      case TermKind::Return: {
        trb_assert(!callStack_.empty(), "return with empty call stack");
        Site site = callStack_.back();
        callStack_.pop_back();
        Addr expected =
            program_.functions[site.fn].blocks[site.block].firstPc;
        Addr target = regVal_[aarch64::kLinkReg];
        trb_assert(target == expected,
                   "link register desync: ret target ", target,
                   " expected ", expected);
        CvpRecord rec;
        rec.pc = t.pc;
        rec.cls = InstClass::UncondIndirectBranch;
        rec.taken = true;
        rec.target = target;
        rec.addSrc(aarch64::kLinkReg);
        push(rec);
        goTo(site.fn, site.block);
        return;
      }
    }
}

} // namespace trb
