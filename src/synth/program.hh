/**
 * @file
 * Static program model for the synthetic workload generator.
 *
 * A SynthProgram is a call graph of functions made of basic blocks laid
 * out at stable addresses (4-byte Aarch64 slots).  The *static* side fixes
 * everything a real binary fixes -- instruction classes, register lists,
 * addressing modes, branch targets, per-branch behaviour patterns -- while
 * the *dynamic* side (generator.hh) walks it with architectural register
 * values, a call stack and per-stream memory cursors, emitting a
 * value-consistent CVP-1 trace.
 *
 * Some slots own more than one PC: memory accesses may be preceded by an
 * address-materialisation or base-register-resynchronisation ALU, and may
 * be followed by a base-advance ALU; indirect branches are preceded by a
 * target-materialisation ALU.  Those helper instructions have their own
 * reserved (static) addresses so the instruction footprint is stable even
 * when a helper is conditionally skipped.
 */

#ifndef TRB_SYNTH_PROGRAM_HH
#define TRB_SYNTH_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "synth/params.hh"

namespace trb
{

/** Kinds of non-terminator instructions a block slot can hold. */
enum class SlotKind : std::uint8_t
{
    Alu,        //!< writes a GPR
    Cmp,        //!< ALU with no destination (sets flags only)
    SlowAlu,    //!< multi-cycle integer op
    Fp,         //!< writes a SIMD register
    FpCmp,      //!< FP compare, no destination
    Load,
    Store,
};

/** Addressing behaviour of a memory slot. */
enum class AddrMode : std::uint8_t
{
    Offset,     //!< plain base+imm, no writeback
    PreIndex,   //!< base updated before the access (EA == new base)
    PostIndex,  //!< base updated after the access (EA == old base)
    Pair,       //!< LDP/STP, two registers, no writeback
    PairWb,     //!< LDP/STP with post-index writeback (three destinations)
    Vector,     //!< LD2/LD3/LD4 style multi-register
    Prefetch,   //!< PRFM: no destination register
    Zva,        //!< DC ZVA: 64-byte aligned zeroing store
};

/** Access pattern of a memory stream. */
enum class StreamPattern : std::uint8_t
{
    Sequential,     //!< monotonically advancing cursor (wraps at footprint)
    RandomInRange,  //!< uniform within the footprint (computed addressing)
    PointerChase,   //!< next address is the loaded value
};

/** One memory stream: footprint, stride and its dedicated base register. */
struct Stream
{
    StreamPattern pattern = StreamPattern::Sequential;
    RegId baseReg = 8;
    Addr base = 0;
    std::uint64_t strideBytes = 64;
    std::uint64_t footprintLines = 512;
};

/** A fixed instruction slot inside a basic block. */
struct StaticInst
{
    SlotKind kind = SlotKind::Alu;
    Addr pc = 0;                    //!< first reserved address
    std::uint8_t pcSlots = 1;       //!< reserved 4-byte addresses

    std::uint8_t numDst = 0;
    std::uint8_t numSrc = 0;
    RegId dst[3] = {};
    RegId src[3] = {};

    // Memory-slot fields.
    std::uint16_t streamId = 0;
    AddrMode mode = AddrMode::Offset;
    std::uint8_t accessSize = 8;    //!< bytes per transferred register
    std::uint8_t memRegs = 1;       //!< registers transferred from memory
    bool crossesLine = false;       //!< engineered to straddle cachelines
    bool advance = false;           //!< emit a base-advance ADD afterwards
    std::uint16_t immOffset = 0;    //!< static byte offset off the cursor
    std::int16_t spAdjust = 0;      //!< ALU slots: SP += spAdjust
};

/** How a conditional terminator decides its outcome. */
enum class BranchBehavior : std::uint8_t
{
    Biased,     //!< taken with a fixed probability
    Loop,       //!< taken period-1 times, then falls through
    Random,     //!< 50/50 -- unpredictable by construction
    LoadDep,    //!< low bit of a register written by a same-block load
};

/** Block terminator kinds. */
enum class TermKind : std::uint8_t
{
    FallThrough,    //!< no terminator instruction
    CondBranch,
    Jump,           //!< B: unconditional direct
    IndirectJump,   //!< BR Xn: switch-style, several candidate targets
    CallDirect,     //!< BL
    CallIndirect,   //!< BLR Xn through a function-pointer register
    CallIndirectX30,//!< BLR X30 -- the call-stack misclassification trigger
    Return,         //!< RET (reads X30, writes nothing)
};

/** A block terminator with its statically-chosen behaviour. */
struct Terminator
{
    TermKind kind = TermKind::FallThrough;
    Addr pc = 0;                    //!< address of the branch itself
    Addr matPc = 0;                 //!< address of the materialisation ALU
    bool needsMat = false;          //!< indirect kinds materialise a target

    std::uint32_t targetBlock = 0;  //!< CondBranch/Jump: block index
    std::vector<std::uint32_t> candidates;  //!< IndirectJump blocks /
                                            //!< indirect-call functions
    std::uint32_t calleeFn = 0;     //!< CallDirect target function

    BranchBehavior behavior = BranchBehavior::Biased;
    double takenProb = 0.5;         //!< Biased only
    std::uint16_t loopPeriod = 8;   //!< Loop only
    bool viaReg = false;            //!< CBZ/TBZ style (reads a GPR)
    RegId condSrcReg = 0;           //!< the GPR a viaReg conditional reads
    std::uint32_t patternId = 0;    //!< index into dynamic loop counters
    RegId ptrReg = 24;              //!< register indirect kinds read
};

/** A basic block: fixed slots plus one terminator. */
struct Block
{
    Addr firstPc = 0;
    std::vector<StaticInst> insts;
    Terminator term;
};

/** A function: entry address, blocks and whether it saves X30. */
struct Function
{
    Addr entry = 0;
    std::vector<Block> blocks;
    bool hasCalls = false;   //!< has a prologue/epilogue X30 save/restore
};

/**
 * The whole static program: functions, streams and the number of dynamic
 * branch-pattern slots handed out to terminators.
 */
struct SynthProgram
{
    std::vector<Function> functions;
    std::vector<Stream> streams;
    std::uint32_t numPatterns = 0;
    Addr codeBase = 0x400000;
    Addr stackBase = 0x7ff0000000;

    /** Build a static program from workload parameters (deterministic). */
    static SynthProgram build(const WorkloadParams &params);
};

} // namespace trb

#endif // TRB_SYNTH_PROGRAM_HH
