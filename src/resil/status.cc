#include "resil/status.hh"

#include <sstream>

#include "obs/metrics.hh"

namespace trb
{

const char *
errorClassName(ErrorClass cls)
{
    switch (cls) {
      case ErrorClass::Ok:
        return "ok";
      case ErrorClass::TruncatedInput:
        return "truncated_input";
      case ErrorClass::CorruptRecord:
        return "corrupt_record";
      case ErrorClass::IoError:
        return "io_error";
      case ErrorClass::BadMagic:
        return "bad_magic";
      case ErrorClass::Internal:
        return "internal";
      case ErrorClass::BadRequest:
        return "bad_request";
      case ErrorClass::Busy:
        return "busy";
      case ErrorClass::Timeout:
        return "timeout";
    }
    return "unknown";
}

Status::Status(ErrorClass cls, std::string msg)
    : cls_(cls), message_(std::move(msg))
{
    // Every constructed error shows up in the standard metrics export.
    obs::MetricsRegistry::global().addCounter(
        std::string("resil.errors.") + errorClassName(cls));
}

Status
Status::truncated(std::string msg)
{
    return Status(ErrorClass::TruncatedInput, std::move(msg));
}

Status
Status::corrupt(std::string msg)
{
    return Status(ErrorClass::CorruptRecord, std::move(msg));
}

Status
Status::ioError(std::string msg)
{
    return Status(ErrorClass::IoError, std::move(msg));
}

Status
Status::badMagic(std::string msg)
{
    return Status(ErrorClass::BadMagic, std::move(msg));
}

Status
Status::internal(std::string msg)
{
    return Status(ErrorClass::Internal, std::move(msg));
}

Status
Status::badRequest(std::string msg)
{
    return Status(ErrorClass::BadRequest, std::move(msg));
}

Status
Status::busy(std::string msg)
{
    return Status(ErrorClass::Busy, std::move(msg));
}

Status
Status::timeout(std::string msg)
{
    return Status(ErrorClass::Timeout, std::move(msg));
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    std::ostringstream os;
    os << errorClassName(cls_) << ": " << message_;
    bool open = false;
    auto sep = [&]() -> std::ostream & {
        os << (open ? ", " : " (");
        open = true;
        return os;
    };
    if (!path_.empty())
        sep() << path_;
    if (byteOffset_ != kNoPosition)
        sep() << "byte " << byteOffset_;
    if (recordIndex_ != kNoPosition)
        sep() << "record " << recordIndex_;
    if (!rule_.empty())
        sep() << "rule " << rule_;
    if (open)
        os << ")";
    return os.str();
}

} // namespace trb
