#include "resil/checkpoint.hh"

#include "common/env.hh"

#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace trb
{
namespace resil
{

namespace
{

std::string g_test_path;   //!< overrides TRB_CHECKPOINT when non-empty

/**
 * Pull the string value of @p key out of a single-line JSON object.
 * Tolerant by design: manifest lines are machine-written, and anything
 * unparseable (a half-flushed tail after a kill) is simply skipped.
 */
bool
jsonField(const std::string &line, const char *key, std::string &value)
{
    std::string needle = std::string("\"") + key + "\": \"";
    std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    at += needle.size();
    std::size_t end = line.find('"', at);
    if (end == std::string::npos)
        return false;
    value = line.substr(at, end - at);
    return true;
}

/** Parse the "bits": ["0x...", ...] array of a cell line. */
bool
jsonBits(const std::string &line, std::vector<std::uint64_t> &bits)
{
    std::size_t at = line.find("\"bits\": [");
    if (at == std::string::npos)
        return false;
    at += std::strlen("\"bits\": [");
    std::size_t end = line.find(']', at);
    if (end == std::string::npos)
        return false;
    bits.clear();
    while (at < end) {
        std::size_t open = line.find('"', at);
        if (open == std::string::npos || open >= end)
            break;
        std::size_t close = line.find('"', open + 1);
        if (close == std::string::npos || close > end)
            return false;
        std::string hex = line.substr(open + 1, close - open - 1);
        char *stop = nullptr;
        std::uint64_t v = std::strtoull(hex.c_str(), &stop, 16);
        if (stop == hex.c_str() || *stop != '\0')
            return false;
        bits.push_back(v);
        at = close + 1;
    }
    return true;
}

std::string
hexBits(std::uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

Checkpoint::~Checkpoint()
{
    if (out_)
        std::fclose(out_);
}

std::unique_ptr<Checkpoint>
Checkpoint::open(const std::string &path, const std::string &signature)
{
    auto ckpt = std::unique_ptr<Checkpoint>(new Checkpoint());

    bool resume = false;
    {
        std::ifstream in(path);
        std::string line;
        if (in && std::getline(in, line)) {
            std::string sig;
            if (line.find("\"trb_checkpoint\"") != std::string::npos &&
                jsonField(line, "signature", sig) && sig == signature) {
                resume = true;
                while (std::getline(in, line)) {
                    std::string cell;
                    std::vector<std::uint64_t> bits;
                    if (jsonField(line, "cell", cell) &&
                        jsonBits(line, bits))
                        ckpt->cells_.emplace(std::move(cell),
                                             std::move(bits));
                }
                ckpt->loaded_ = ckpt->cells_.size();
            } else {
                trb_warn("checkpoint manifest ", path,
                         " belongs to a different sweep; starting fresh");
            }
        }
    }

    ckpt->out_ = std::fopen(path.c_str(), resume ? "ab" : "wb");
    if (!ckpt->out_) {
        trb_warn("cannot open checkpoint manifest ", path,
                 " for writing; checkpointing disabled");
        return nullptr;
    }
    if (!resume) {
        std::fprintf(ckpt->out_,
                     "{\"trb_checkpoint\": 1, \"signature\": \"%s\"}\n",
                     signature.c_str());
        std::fflush(ckpt->out_);
    } else if (ckpt->loaded_ > 0) {
        trb_inform("resuming from checkpoint ", path, ": ",
                   ckpt->loaded_, " completed cell(s)");
    }
    return ckpt;
}

std::unique_ptr<Checkpoint>
Checkpoint::fromEnv(const std::string &signature)
{
    std::string path = g_test_path;
    if (path.empty()) {
        const char *value = env::raw("TRB_CHECKPOINT");
        if (!value || !*value)
            return nullptr;
        path = value;
    }
    return open(path, signature);
}

void
Checkpoint::setPathForTesting(const std::string &path)
{
    g_test_path = path;
}

bool
Checkpoint::lookup(const std::string &cell,
                   std::vector<std::uint64_t> &bits) const
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cells_.find(cell);
        if (it == cells_.end())
            return false;
        bits = it->second;
    }
    obs::MetricsRegistry::global().addCounter("resil.resumed_cells");
    return true;
}

void
Checkpoint::record(const std::string &cell,
                   const std::vector<std::uint64_t> &bits)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (cells_.count(cell))
        return;   // already durable; keep the manifest append-only
    cells_.emplace(cell, bits);
    if (!out_)
        return;
    std::string line = "{\"cell\": \"" + cell + "\", \"bits\": [";
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (i)
            line += ", ";
        line += "\"" + hexBits(bits[i]) + "\"";
    }
    line += "]}\n";
    std::fputs(line.c_str(), out_);
    std::fflush(out_);
}

} // namespace resil
} // namespace trb
