/**
 * @file
 * trb::resil -- the structured error model the robust I/O paths speak.
 *
 * A Status is either OK or one error of a small taxonomy
 * (TruncatedInput, CorruptRecord, IoError, BadMagic, Internal,
 * BadRequest, Busy, Timeout) carrying rich diagnostics: the offending path, the absolute byte offset, the
 * record index inside the stream, and the format rule that was violated.
 * Expected<T> is the value-or-Status sum type the non-fatal readers
 * return.
 *
 * The taxonomy is deliberately coarse: callers dispatch policy on the
 * class (IoError, Busy and Timeout are retryable, everything else
 * quarantines) and log the message for humans.  The serving layer
 * (trb::serve) uses the same classes on the wire: BadRequest rejects a
 * malformed request, Busy is the typed backpressure reply a client
 * backs off from, Timeout answers a request whose deadline expired or
 * whose simulation was cancelled.  Every constructed error also bumps the
 * resil.errors.<class> counter in the global metrics registry, so a
 * sweep's failure profile lands in the standard TRB_OBS_JSON export.
 */

#ifndef TRB_RESIL_STATUS_HH
#define TRB_RESIL_STATUS_HH

#include <cstdint>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace trb
{

/** What went wrong, at policy granularity. */
enum class ErrorClass : std::uint8_t
{
    Ok = 0,
    TruncatedInput,   //!< stream ended mid-record / short of its promise
    CorruptRecord,    //!< bytes present but violate the format rules
    IoError,          //!< open/read/write/close failure (retryable)
    BadMagic,         //!< not the expected file format at all
    Internal,         //!< a TraceRebase bug surfaced as data
    BadRequest,       //!< a malformed/unsupported request (trb::serve)
    Busy,             //!< bounded queue full; back off and resubmit
    Timeout,          //!< deadline expired / work cancelled (retryable)
};

/** Stable lower-case name of an error class ("truncated_input", ...). */
const char *errorClassName(ErrorClass cls);

/** Sentinel for "offset/index not known" in Status diagnostics. */
constexpr std::uint64_t kNoPosition = ~std::uint64_t{0};

/**
 * OK, or one classified error with diagnostics.  Build errors through
 * the named factories and chain the at()/rule() setters:
 *
 *     return Status::corrupt("invalid class byte 200")
 *         .at(path, offset, record_index)
 *         .rule("cvp.class-range");
 */
class Status
{
  public:
    /** Default-constructed Status is OK. */
    Status() = default;

    static Status truncated(std::string msg);
    static Status corrupt(std::string msg);
    static Status ioError(std::string msg);
    static Status badMagic(std::string msg);
    static Status internal(std::string msg);
    static Status badRequest(std::string msg);
    static Status busy(std::string msg);
    static Status timeout(std::string msg);

    /** Attach the offending file and position. */
    Status &
    at(std::string path, std::uint64_t byte_offset = kNoPosition,
       std::uint64_t record_index = kNoPosition)
    {
        path_ = std::move(path);
        byteOffset_ = byte_offset;
        recordIndex_ = record_index;
        return *this;
    }

    /** Attach the format rule that was violated ("cvp.header", ...). */
    Status &
    rule(std::string rule_id)
    {
        rule_ = std::move(rule_id);
        return *this;
    }

    bool ok() const { return cls_ == ErrorClass::Ok; }
    explicit operator bool() const { return ok(); }

    ErrorClass errorClass() const { return cls_; }
    const std::string &message() const { return message_; }
    const std::string &path() const { return path_; }
    std::uint64_t byteOffset() const { return byteOffset_; }
    std::uint64_t recordIndex() const { return recordIndex_; }
    const std::string &ruleViolated() const { return rule_; }

    /** Retryable errors: transient I/O, an overloaded server, or an
     *  expired deadline -- the condition clears on its own (or a fresh
     *  deadline applies); resubmitting is correct. */
    bool
    retryable() const
    {
        return cls_ == ErrorClass::IoError ||
               cls_ == ErrorClass::Busy || cls_ == ErrorClass::Timeout;
    }

    /**
     * One-line rendering:
     * "corrupt_record: invalid class byte (path, byte 123, record 4,
     *  rule cvp.class-range)".
     */
    std::string toString() const;

  private:
    Status(ErrorClass cls, std::string msg);

    ErrorClass cls_ = ErrorClass::Ok;
    std::string message_;
    std::string path_;
    std::uint64_t byteOffset_ = kNoPosition;
    std::uint64_t recordIndex_ = kNoPosition;
    std::string rule_;
};

/**
 * A value or the Status explaining its absence.  Intentionally tiny:
 * implicit construction from both sides keeps the reader code flat
 * (`return trace;` / `return Status::truncated(...)`).
 */
template <typename T>
class Expected
{
  public:
    /* implicit */ Expected(T value)
        : value_(std::move(value)), hasValue_(true)
    {}

    /* implicit */ Expected(Status status) : status_(std::move(status))
    {
        trb_assert(!status_.ok(),
                   "Expected constructed from an OK Status");
    }

    bool ok() const { return hasValue_; }
    explicit operator bool() const { return hasValue_; }

    /** The error; Status::ok() when a value is held. */
    const Status &status() const { return status_; }

    const T &
    value() const &
    {
        trb_assert(hasValue_, "Expected::value() on error: ",
                   status_.toString());
        return value_;
    }

    T &
    value() &
    {
        trb_assert(hasValue_, "Expected::value() on error: ",
                   status_.toString());
        return value_;
    }

    T &&
    value() &&
    {
        trb_assert(hasValue_, "Expected::value() on error: ",
                   status_.toString());
        return std::move(value_);
    }

  private:
    T value_{};
    Status status_;
    bool hasValue_ = false;
};

} // namespace trb

#endif // TRB_RESIL_STATUS_HH
