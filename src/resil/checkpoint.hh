/**
 * @file
 * Checkpoint -- a crash-safe manifest that lets a long sweep resume
 * from the last completed trace x improvement cell with bit-identical
 * results.
 *
 * The manifest (TRB_CHECKPOINT=<path>) is JSON-lines: a header object
 * carrying the sweep signature, then one object per completed cell
 * whose values are stored as hexadecimal uint64 *bit patterns* -- the
 * exact bits of the doubles and counters, so a resumed run reproduces
 * the uninterrupted run byte-for-byte at any TRB_JOBS setting:
 *
 *     {"trb_checkpoint": 1, "signature": "7f3a..."}
 *     {"cell": "t4.base", "bits": ["0x00000000000186a0", ...]}
 *     {"cell": "t4.s2", "bits": ["0x3ff0147ae147ae14"]}
 *
 * Each record() appends one line and flushes, so a SIGKILL loses at
 * most the cells whose lines never reached the file; a trailing
 * partial line is ignored on reload.  A signature mismatch (different
 * suite, sets, scale or core config) discards the stale manifest and
 * starts fresh rather than resuming into wrong results.  Cells served
 * from the manifest bump the resil.resumed_cells obs counter.
 */

#ifndef TRB_RESIL_CHECKPOINT_HH
#define TRB_RESIL_CHECKPOINT_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace trb
{
namespace resil
{

/** Append-only completed-cell manifest keyed by cell name. */
class Checkpoint
{
  public:
    ~Checkpoint();

    Checkpoint(const Checkpoint &) = delete;
    Checkpoint &operator=(const Checkpoint &) = delete;

    /**
     * Open (creating or resuming) the manifest at @p path for a sweep
     * identified by @p signature.  Returns nullptr (with a warning)
     * only if the file cannot be opened for writing.
     */
    static std::unique_ptr<Checkpoint> open(const std::string &path,
                                            const std::string &signature);

    /**
     * Manifest from TRB_CHECKPOINT (or the test override); nullptr when
     * no checkpointing was requested.
     */
    static std::unique_ptr<Checkpoint>
    fromEnv(const std::string &signature);

    /** Override TRB_CHECKPOINT for tests; empty string clears. */
    static void setPathForTesting(const std::string &path);

    /**
     * Fetch a completed cell's bits; true on hit (bumps
     * resil.resumed_cells).  Call once per cell.
     */
    bool lookup(const std::string &cell,
                std::vector<std::uint64_t> &bits) const;

    /** Append a completed cell and flush. */
    void record(const std::string &cell,
                const std::vector<std::uint64_t> &bits);

    /** Cells loaded from a pre-existing manifest. */
    std::size_t loadedCells() const { return loaded_; }

  private:
    Checkpoint() = default;

    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::vector<std::uint64_t>> cells_;
    std::size_t loaded_ = 0;
    std::FILE *out_ = nullptr;
};

} // namespace resil
} // namespace trb

#endif // TRB_RESIL_CHECKPOINT_HH
