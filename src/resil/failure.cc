#include "resil/failure.hh"

#include "common/env.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace trb
{
namespace resil
{

void
FailureReport::add(Quarantine q)
{
    obs::MetricsRegistry::global().addCounter("resil.quarantines");
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back(std::move(q));
}

bool
FailureReport::empty() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.empty();
}

std::size_t
FailureReport::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::vector<Quarantine>
FailureReport::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_;
}

void
FailureReport::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
}

void
FailureReport::writeJson(std::ostream &os) const
{
    std::vector<Quarantine> snapshot = entries();
    os << "{\"quarantined\": " << snapshot.size() << ", \"traces\": [";
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
        const Quarantine &q = snapshot[i];
        if (i)
            os << ", ";
        os << "{\"trace\": " << obs::jsonQuote(q.trace)
           << ", \"index\": " << q.index
           << ", \"attempts\": " << q.attempts << ", \"error_class\": "
           << obs::jsonQuote(errorClassName(q.status.errorClass()))
           << ", \"message\": " << obs::jsonQuote(q.status.message());
        if (q.status.byteOffset() != kNoPosition)
            os << ", \"byte_offset\": " << q.status.byteOffset();
        if (q.status.recordIndex() != kNoPosition)
            os << ", \"record_index\": " << q.status.recordIndex();
        if (!q.status.ruleViolated().empty())
            os << ", \"rule\": "
               << obs::jsonQuote(q.status.ruleViolated());
        os << "}";
    }
    os << "]}\n";
}

std::string
FailureReport::summary() const
{
    std::vector<Quarantine> snapshot = entries();
    std::ostringstream os;
    os << snapshot.size() << " trace(s) quarantined";
    for (const Quarantine &q : snapshot)
        os << "\n  " << q.trace << " (index " << q.index << ", "
           << q.attempts << " attempt(s)): " << q.status.toString();
    return os.str();
}

FailureReport &
FailureReport::global()
{
    static FailureReport report;
    return report;
}

bool
dumpGlobalReportIfRequested()
{
    const char *path = env::raw("TRB_FAILURE_REPORT");
    if (!path || !*path)
        return false;
    std::ofstream file(path);
    if (!file) {
        trb_warn("cannot write TRB_FAILURE_REPORT file ", path);
        return false;
    }
    FailureReport::global().writeJson(file);
    return true;
}

int
harnessExitCode()
{
    dumpGlobalReportIfRequested();
    return FailureReport::global().empty() ? 0 : 3;
}

} // namespace resil
} // namespace trb
