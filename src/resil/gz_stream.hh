/**
 * @file
 * GzInFile -- the zlib read path of every trace reader, wrapped for
 * robustness and fault injection.
 *
 * readFully() loops over short reads (gzread may legally return less
 * than asked), maps zlib failures onto the Status taxonomy (a data/CRC
 * error is CorruptRecord, an errno-level failure is IoError), and
 * tracks the absolute uncompressed offset for diagnostics.
 *
 * When TRB_FAULT is active, the stream consults its FaultPlan: opens
 * fail transiently (flaky), reads are shortened (short-read), the
 * stream ends early (truncate), and delivered bytes are corrupted
 * in place (bitflip, garbage) -- deterministically per path, whatever
 * the caller's chunking.
 */

#ifndef TRB_RESIL_GZ_STREAM_HH
#define TRB_RESIL_GZ_STREAM_HH

#include <cstdint>
#include <string>

#include "resil/fault.hh"
#include "resil/status.hh"

namespace trb
{
namespace resil
{

/** Robust, fault-injectable gz (or transparent raw) input stream. */
class GzInFile
{
  public:
    GzInFile() = default;
    ~GzInFile() { close(); }

    GzInFile(const GzInFile &) = delete;
    GzInFile &operator=(const GzInFile &) = delete;

    /**
     * Open @p path for reading.  Consults the global FaultInjector:
     * flaky-afflicted paths fail with a transient IoError first.
     */
    Status open(const std::string &path);

    bool isOpen() const { return file_ != nullptr; }
    const std::string &path() const { return path_; }

    /** Uncompressed bytes delivered so far. */
    std::uint64_t offset() const { return offset_; }

    /**
     * Read up to @p len bytes into @p buf; returns bytes delivered
     * (0 at end of stream) or -1 with status() set.  A single call may
     * deliver less than @p len; use readFully() unless partial reads
     * are wanted.
     */
    int read(void *buf, unsigned len);

    /**
     * Read exactly @p len bytes unless the stream ends: loops over
     * short reads, returns the bytes delivered (< len only at end of
     * stream) or -1 with status() set.
     */
    int readFully(void *buf, unsigned len);

    /** The error that made a read return -1; OK otherwise. */
    const Status &status() const { return status_; }

    void close();

  private:
    void *file_ = nullptr;   //!< gzFile, kept opaque here
    std::string path_;
    std::uint64_t offset_ = 0;
    FaultPlan plan_;
    std::uint64_t truncateAt_ = ~std::uint64_t{0};
    Status status_;
};

} // namespace resil
} // namespace trb

#endif // TRB_RESIL_GZ_STREAM_HH
