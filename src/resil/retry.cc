#include "resil/retry.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/env.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"

namespace trb
{
namespace resil
{

RetryPolicy
RetryPolicy::fromEnv()
{
    RetryPolicy policy;
    policy.maxAttempts = static_cast<unsigned>(
        std::max<std::uint64_t>(1, env::u64("TRB_RETRIES", 3)));
    return policy;
}

unsigned
backoffMs(const RetryPolicy &policy, unsigned n)
{
    unsigned delay = policy.baseDelayMs;
    for (unsigned i = 1; i < n && delay < policy.maxDelayMs; ++i)
        delay *= 2;
    return std::min(delay, policy.maxDelayMs);
}

void
noteRetry(const RetryPolicy &policy, unsigned attempt,
          const std::string &what, const Status &status)
{
    obs::MetricsRegistry::global().addCounter("resil.retries");
    unsigned delay = backoffMs(policy, attempt);
    trb_warn("transient failure on ", what, " (attempt ", attempt, "): ",
             status.toString(), "; retrying in ", delay, " ms");
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

} // namespace resil
} // namespace trb
