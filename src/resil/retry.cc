#include "resil/retry.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/env.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "resil/fault.hh"

namespace trb
{
namespace resil
{

RetryPolicy
RetryPolicy::fromEnv()
{
    RetryPolicy policy;
    policy.maxAttempts = static_cast<unsigned>(
        std::max<std::uint64_t>(1, env::u64("TRB_RETRIES", 3)));
    return policy;
}

unsigned
backoffMs(const RetryPolicy &policy, unsigned n)
{
    unsigned delay = policy.baseDelayMs;
    for (unsigned i = 1; i < n && delay < policy.maxDelayMs; ++i)
        delay *= 2;
    return std::min(delay, policy.maxDelayMs);
}

unsigned
backoffMs(const RetryPolicy &policy, const std::string &stream,
          unsigned n)
{
    const unsigned delay = backoffMs(policy, n);
    if (delay <= 1 || stream.empty())
        return delay;
    const unsigned floor = delay / 2;
    const std::uint64_t noise = streamNoise(0x626f /* "bo" */, n, stream);
    return floor +
           static_cast<unsigned>(noise % (delay - floor + 1));
}

void
noteRetry(const RetryPolicy &policy, unsigned attempt,
          const std::string &what, const Status &status)
{
    obs::MetricsRegistry::global().addCounter("resil.retries");
    unsigned delay = backoffMs(policy, what, attempt);
    trb_warn("transient failure on ", what, " (attempt ", attempt, "): ",
             status.toString(), "; retrying in ", delay, " ms");
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

} // namespace resil
} // namespace trb
