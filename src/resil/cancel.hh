/**
 * @file
 * Cooperative cancellation and deadlines for long-running simulations.
 *
 * A CancelToken is a one-way latch: once cancel()ed it stays cancelled.
 * Pollers (the O3Core hot loop, the serve dispatcher) test it with one
 * relaxed atomic load -- cheap enough to check every few thousand
 * retired instructions -- and bail out by throwing CancelledError,
 * which the owning layer translates into a typed `timeout` Status.
 *
 * A Deadline is an absolute point on the *monotonic* clock
 * (std::chrono::steady_clock): wall-clock jumps -- NTP steps, suspend
 * and resume -- can neither expire a request early nor grant it extra
 * time.  A default-constructed Deadline is unset and never expires.
 *
 * Neither primitive does any enforcement on its own: something (the
 * serve daemon's watchdog, a test) observes the Deadline and fires the
 * CancelToken; the work being cancelled only ever polls the token.
 */

#ifndef TRB_RESIL_CANCEL_HH
#define TRB_RESIL_CANCEL_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

namespace trb
{
namespace resil
{

/** Thrown by cancellation-aware loops when their token has fired. */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * One-way cancellation latch.  cancelled() is wait-free (one relaxed
 * load); cancel() may be called from any thread, any number of times
 * (the first reason wins).  Not copyable: share via pointer --
 * the serve daemon hands out shared_ptr<CancelToken> per request.
 */
class CancelToken
{
  public:
    CancelToken() = default;

    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Fire the latch.  The first caller's @p reason is kept. */
    void cancel(const std::string &reason);

    /** One relaxed load; safe on any hot path. */
    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

    /** Why the token fired; "" while not cancelled. */
    std::string reason() const;

    /** Throw CancelledError(reason) if the token has fired. */
    void throwIfCancelled() const;

    /**
     * The raw flag, for layers that must not depend on trb::resil
     * (par::ThreadPool::submit takes a `const std::atomic<bool> *`).
     */
    const std::atomic<bool> &flag() const { return cancelled_; }

  private:
    std::atomic<bool> cancelled_{false};
    mutable std::mutex mutex_;
    std::string reason_;   //!< guarded by mutex_
};

/**
 * An absolute expiry instant on the monotonic clock.  Value type:
 * copy freely.  Unset (default) deadlines never expire.
 */
class Deadline
{
  public:
    /** Unset: never expires. */
    Deadline() = default;

    /** The instant @p ms milliseconds from now. */
    static Deadline after(std::uint64_t ms);

    bool valid() const { return set_; }

    /** True once the instant has passed (never true when unset). */
    bool expired() const;

    /**
     * Milliseconds until expiry, clamped to >= 0; a large sentinel
     * (~292 million years) when unset.
     */
    std::int64_t remainingMs() const;

  private:
    bool set_ = false;
    std::chrono::steady_clock::time_point at_{};
};

} // namespace resil
} // namespace trb

#endif // TRB_RESIL_CANCEL_HH
