/**
 * @file
 * Deterministic fault injection for the trace I/O paths.
 *
 * TRB_FAULT selects the failure modes and their per-stream affliction
 * probabilities, e.g.
 *
 *     TRB_FAULT=truncate:0.1,bitflip:0.05,garbage:0.05,short-read:1.0
 *
 *  - truncate:<frac>    the stream ends early, mid-record
 *  - bitflip:<rate>     random bits flip throughout the stream
 *  - garbage:<rate>     a 64-byte run is overwritten with noise
 *  - short-read:<rate>  reads return fewer bytes than asked (never
 *                       corrupts data -- exercises partial-read loops)
 *  - flaky:<rate>       open/read fails with a *transient* IoError on
 *                       the first attempt(s), then succeeds -- the
 *                       retry/backoff path's test vehicle
 *
 * Connection-scoped kinds afflict the trb::serve *wire* instead of a
 * byte stream; the serve daemon resolves them per connection (keyed by
 * the connection name, "conn-<n>", so the afflicted set is
 * reproducible) and applies them to its reply frames:
 *
 *  - conn-reset:<rate>    the connection is hard-shut after a
 *                         plan-determined number of reply frames
 *  - conn-stall:<rate>    each reply frame is delayed by a
 *                         plan-determined number of milliseconds
 *  - partial-write:<rate> reply frames dribble out in tiny
 *                         plan-determined chunks (never corrupts
 *                         bytes -- exercises reassembly loops)
 *
 * Every decision -- whether a stream is afflicted, where the cut lands,
 * which bits flip -- is a pure function of (TRB_FAULT, TRB_FAULT_SEED,
 * stream name, byte position).  No global RNG sequence is consumed, so
 * injection is bit-identical for any TRB_JOBS value, any read chunking,
 * and any visit order; "the corrupted 10% of traces" is the same set on
 * every run.
 *
 * With TRB_FAULT unset the injector is disabled and the hot paths pay
 * one boolean test.
 */

#ifndef TRB_RESIL_FAULT_HH
#define TRB_RESIL_FAULT_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "resil/status.hh"

namespace trb
{
namespace resil
{

/** The injectable failure modes, in TRB_FAULT spelling order. */
enum class FaultKind : unsigned
{
    Truncate = 0,
    BitFlip,
    Garbage,
    ShortRead,
    Flaky,
    ConnReset,
    ConnStall,
    PartialWrite,
};
constexpr unsigned kNumFaultKinds = 8;

/** TRB_FAULT spelling of a kind ("truncate", "short-read", ...). */
const char *faultKindName(FaultKind kind);

/** Parsed TRB_FAULT configuration: affliction probability per kind. */
struct FaultSpec
{
    double rate[kNumFaultKinds] = {};

    bool
    any() const
    {
        for (double r : rate)
            if (r > 0.0)
                return true;
        return false;
    }

    /**
     * Parse "kind:rate,kind:rate,...".  Unknown kinds and rates outside
     * [0, 1] are errors (CorruptRecord class -- it is the user's spec
     * that is malformed, not a file).
     */
    static Expected<FaultSpec> parse(const std::string &text);
};

/** The faults resolved for one named stream, plus its noise seed. */
struct FaultPlan
{
    bool truncate = false;
    bool bitflip = false;
    bool garbage = false;
    bool shortRead = false;
    bool connReset = false;      //!< hard-shut the wire mid-service
    bool connStall = false;      //!< delay every outgoing frame
    bool partialWrite = false;   //!< dribble frames out in tiny chunks
    unsigned transientFailures = 0;   //!< flaky: failures before success
    std::uint64_t seed = 0;           //!< per-stream noise seed

    /** Any fault that damages the byte stream itself. */
    bool corrupting() const { return truncate || bitflip || garbage; }

    /** Any connection-scoped (wire) fault. */
    bool
    anyConnFault() const
    {
        return connReset || connStall || partialWrite;
    }

    bool
    anyFault() const
    {
        return corrupting() || shortRead || anyConnFault() ||
               transientFailures > 0;
    }

    /** Stream byte offset the truncate fault cuts at (plan-dependent). */
    std::uint64_t truncateOffsetFor(std::uint64_t stream_size) const;

    /** True if the byte at absolute @p offset gets a bit flipped. */
    bool flipsByteAt(std::uint64_t offset) const;

    /** Which bit (0..7) flips at @p offset (only if flipsByteAt). */
    unsigned flipBitAt(std::uint64_t offset) const;

    /** Start of the 64-byte garbage run (plan-dependent). */
    std::uint64_t garbageOffsetFor(std::uint64_t stream_size) const;

    /** Apply the corrupting faults to a whole in-memory stream. */
    void corruptBuffer(std::vector<std::uint8_t> &bytes) const;

    /** Apply bitflip/garbage to @p len bytes read at @p offset. */
    void corruptChunk(std::uint8_t *data, std::size_t len,
                      std::uint64_t offset) const;

    /** conn-reset: frames that go out before the wire is cut (1..4). */
    unsigned connResetAfterFrames() const;

    /** conn-stall: delay in ms before writing frame @p frame (1..16). */
    unsigned connStallMsFor(std::uint64_t frame) const;

    /** partial-write: chunk size in bytes for frame @p frame (1..7). */
    std::size_t partialWriteChunkFor(std::uint64_t frame) const;
};

/**
 * Deterministic per-name noise: a pure function of (seed, purpose,
 * name), shared by the injector's affliction draws and the retry
 * layer's backoff jitter.  Same inputs, same 64-bit value, forever.
 */
std::uint64_t streamNoise(std::uint64_t seed, unsigned purpose,
                          const std::string &name);

/**
 * The process-wide injector: TRB_FAULT / TRB_FAULT_SEED at first use,
 * overridable for tests.  plan() is pure; the only mutable state is the
 * per-stream attempt ledger behind the flaky fault.
 */
class FaultInjector
{
  public:
    static FaultInjector &global();

    /** Reconfigure (tests); also resets the flaky attempt ledger. */
    void configure(const FaultSpec &spec, std::uint64_t seed);

    /** Turn injection off (tests). */
    void disable();

    bool enabled() const { return enabled_; }

    /** Resolve the deterministic fault plan for @p name. */
    FaultPlan plan(const std::string &name) const;

    /**
     * Flaky bookkeeping: true if this (counted) attempt on @p name
     * should fail with a transient IoError.  The first
     * plan.transientFailures attempts fail; later ones succeed.
     */
    bool shouldFailTransiently(const std::string &name);

    /** Forget all attempt history (tests). */
    void resetAttempts();

  private:
    FaultInjector();

    bool enabled_ = false;
    FaultSpec spec_;
    std::uint64_t seed_ = 0;

    mutable std::mutex mutex_;
    std::unordered_map<std::string, unsigned> attempts_;
};

} // namespace resil
} // namespace trb

#endif // TRB_RESIL_FAULT_HH
