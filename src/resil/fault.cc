#include "resil/fault.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace trb
{
namespace resil
{

namespace
{

/** splitmix64 of a value (the common/rng.hh one advances a state). */
std::uint64_t
mix64(std::uint64_t x)
{
    std::uint64_t state = x;
    return splitmix64(state);
}

/** Derived per-plan hash stream: position/purpose k under a seed. */
std::uint64_t
planHash(std::uint64_t seed, std::uint64_t k)
{
    return mix64(seed + k * 0x9e3779b97f4a7c15ULL);
}


/** Uniform double in [0,1) from a hash value. */
double
hashUniform(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/** Per-byte bitflip intensity once a stream is afflicted: 1 in 128. */
constexpr std::uint64_t kFlipThreshold = ~std::uint64_t{0} / 128;

constexpr std::uint64_t kGarbageRun = 64;

/** Bytes spared from garbage runs so header faults stay bitflip's. */
constexpr std::uint64_t kGarbageSkip = 20;

} // namespace

std::uint64_t
streamNoise(std::uint64_t seed, unsigned purpose,
            const std::string &name)
{
    // FNV-1a over the name, folded with the seed and a purpose tag.
    std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
    h = (h ^ purpose) * 0x100000001b3ULL;
    for (char c : name)
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    // One splitmix pass scrambles the low bits FNV leaves weak.
    return mix64(h);
}

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Truncate:
        return "truncate";
      case FaultKind::BitFlip:
        return "bitflip";
      case FaultKind::Garbage:
        return "garbage";
      case FaultKind::ShortRead:
        return "short-read";
      case FaultKind::Flaky:
        return "flaky";
      case FaultKind::ConnReset:
        return "conn-reset";
      case FaultKind::ConnStall:
        return "conn-stall";
      case FaultKind::PartialWrite:
        return "partial-write";
    }
    return "unknown";
}

Expected<FaultSpec>
FaultSpec::parse(const std::string &text)
{
    FaultSpec spec;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        std::size_t colon = item.find(':');
        if (colon == std::string::npos)
            return Status::corrupt("TRB_FAULT entry '" + item +
                                   "' is not kind:rate");
        std::string kind = item.substr(0, colon);
        std::string rate_text = item.substr(colon + 1);
        char *end = nullptr;
        double rate = std::strtod(rate_text.c_str(), &end);
        if (end == rate_text.c_str() || *end != '\0' || rate < 0.0 ||
            rate > 1.0) {
            return Status::corrupt("TRB_FAULT rate '" + rate_text +
                                   "' for '" + kind +
                                   "' is not in [0, 1]");
        }
        bool known = false;
        for (unsigned k = 0; k < kNumFaultKinds; ++k) {
            if (kind == faultKindName(static_cast<FaultKind>(k))) {
                spec.rate[k] = rate;
                known = true;
                break;
            }
        }
        if (!known)
            return Status::corrupt("TRB_FAULT kind '" + kind +
                                   "' is not recognised");
    }
    return spec;
}

std::uint64_t
FaultPlan::truncateOffsetFor(std::uint64_t stream_size) const
{
    // Cut in the middle 10%..90%, so something survives but the
    // stream's promise is broken.
    double frac = 0.1 + 0.8 * hashUniform(planHash(seed, 1));
    return static_cast<std::uint64_t>(
        frac * static_cast<double>(stream_size));
}

bool
FaultPlan::flipsByteAt(std::uint64_t offset) const
{
    return planHash(seed, offset * 2 + 3) < kFlipThreshold;
}

unsigned
FaultPlan::flipBitAt(std::uint64_t offset) const
{
    return static_cast<unsigned>(planHash(seed, offset * 2 + 4) & 7);
}

std::uint64_t
FaultPlan::garbageOffsetFor(std::uint64_t stream_size) const
{
    if (stream_size <= kGarbageSkip + kGarbageRun)
        return kGarbageSkip;
    std::uint64_t span = stream_size - kGarbageSkip - kGarbageRun;
    return kGarbageSkip + planHash(seed, 7) % span;
}

void
FaultPlan::corruptBuffer(std::vector<std::uint8_t> &bytes) const
{
    if (truncate && !bytes.empty())
        bytes.resize(static_cast<std::size_t>(std::min<std::uint64_t>(
            bytes.size(), truncateOffsetFor(bytes.size()))));
    if (garbage && bytes.size() > kGarbageSkip) {
        std::uint64_t start = garbageOffsetFor(bytes.size());
        for (std::uint64_t i = 0;
             i < kGarbageRun && start + i < bytes.size(); ++i)
            bytes[static_cast<std::size_t>(start + i)] =
                static_cast<std::uint8_t>(
                    planHash(seed, start + i + 11));
    }
    if (bitflip) {
        for (std::size_t i = 0; i < bytes.size(); ++i)
            if (flipsByteAt(i))
                bytes[i] = static_cast<std::uint8_t>(
                    bytes[i] ^ (1u << flipBitAt(i)));
    }
}

void
FaultPlan::corruptChunk(std::uint8_t *data, std::size_t len,
                        std::uint64_t offset) const
{
    if (garbage) {
        // Streaming readers do not know the total size; anchor the run
        // just past the header so small fixtures are always hit.
        std::uint64_t start = kGarbageSkip + planHash(seed, 7) % 1024;
        for (std::size_t i = 0; i < len; ++i) {
            std::uint64_t pos = offset + i;
            if (pos >= start && pos < start + kGarbageRun)
                data[i] = static_cast<std::uint8_t>(
                    planHash(seed, pos + 11));
        }
    }
    if (bitflip) {
        for (std::size_t i = 0; i < len; ++i) {
            std::uint64_t pos = offset + i;
            if (flipsByteAt(pos))
                data[i] = static_cast<std::uint8_t>(
                    data[i] ^ (1u << flipBitAt(pos)));
        }
    }
}

unsigned
FaultPlan::connResetAfterFrames() const
{
    return 1 + static_cast<unsigned>(planHash(seed, 0x21) & 3);
}

unsigned
FaultPlan::connStallMsFor(std::uint64_t frame) const
{
    return 1 + static_cast<unsigned>(
                   planHash(seed, 0x31 + frame * 2) & 15);
}

std::size_t
FaultPlan::partialWriteChunkFor(std::uint64_t frame) const
{
    return 1 + static_cast<std::size_t>(
                   planHash(seed, 0x41 + frame * 2) % 7);
}

FaultInjector::FaultInjector()
{
    const char *text = env::raw("TRB_FAULT");
    if (!text || !*text)
        return;
    Expected<FaultSpec> parsed = FaultSpec::parse(text);
    if (!parsed.ok())
        trb_fatal(parsed.status().toString());
    spec_ = parsed.value();
    seed_ = env::u64("TRB_FAULT_SEED", 1);
    enabled_ = spec_.any();
    if (enabled_)
        trb_inform("fault injection enabled: TRB_FAULT=", text,
                   " seed=", seed_);
}

FaultInjector &
FaultInjector::global()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::configure(const FaultSpec &spec, std::uint64_t seed)
{
    std::lock_guard<std::mutex> lock(mutex_);
    spec_ = spec;
    seed_ = seed;
    enabled_ = spec.any();
    attempts_.clear();
}

void
FaultInjector::disable()
{
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_ = false;
    spec_ = FaultSpec{};
    attempts_.clear();
}

FaultPlan
FaultInjector::plan(const std::string &name) const
{
    FaultPlan plan;
    if (!enabled_)
        return plan;
    plan.seed = streamNoise(seed_, 0xf0, name);
    auto afflicted = [&](FaultKind kind) {
        double rate = spec_.rate[static_cast<unsigned>(kind)];
        if (rate <= 0.0)
            return false;
        return hashUniform(streamNoise(
                   seed_, static_cast<unsigned>(kind) + 1, name)) < rate;
    };
    plan.truncate = afflicted(FaultKind::Truncate);
    plan.bitflip = afflicted(FaultKind::BitFlip);
    plan.garbage = afflicted(FaultKind::Garbage);
    plan.shortRead = afflicted(FaultKind::ShortRead);
    plan.connReset = afflicted(FaultKind::ConnReset);
    plan.connStall = afflicted(FaultKind::ConnStall);
    plan.partialWrite = afflicted(FaultKind::PartialWrite);
    if (afflicted(FaultKind::Flaky)) {
        // 1 or 2 transient failures, below the default TRB_RETRIES=3.
        plan.transientFailures =
            1 + static_cast<unsigned>(planHash(plan.seed, 0x5a) & 1);
    }
    return plan;
}

bool
FaultInjector::shouldFailTransiently(const std::string &name)
{
    if (!enabled_)
        return false;
    FaultPlan p = plan(name);
    if (p.transientFailures == 0)
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    unsigned attempt = attempts_[name]++;
    return attempt < p.transientFailures;
}

void
FaultInjector::resetAttempts()
{
    std::lock_guard<std::mutex> lock(mutex_);
    attempts_.clear();
}

} // namespace resil
} // namespace trb
