/**
 * @file
 * Bounded retry with exponential backoff for transient (IoError-class)
 * failures.  Everything else -- corruption, truncation, bad magic --
 * fails immediately: retrying deterministic damage only wastes time.
 *
 * TRB_RETRIES caps the total attempts (default 3); backoff starts at
 * one millisecond and doubles per retry, capped at 100 ms so a fully
 * faulted suite cannot stall a sweep.  Each retry bumps the
 * resil.retries obs counter.
 */

#ifndef TRB_RESIL_RETRY_HH
#define TRB_RESIL_RETRY_HH

#include <string>

#include "resil/status.hh"

namespace trb
{
namespace resil
{

/** Attempt and backoff bounds for withRetries(). */
struct RetryPolicy
{
    unsigned maxAttempts = 3;      //!< total attempts, not retries
    unsigned baseDelayMs = 1;      //!< first backoff; doubles per retry
    unsigned maxDelayMs = 100;     //!< backoff ceiling

    /** TRB_RETRIES (>= 1); backoff bounds are fixed. */
    static RetryPolicy fromEnv();
};

/** Backoff before (1-based) retry @p n under @p policy, in ms. */
unsigned backoffMs(const RetryPolicy &policy, unsigned n);

/**
 * Jittered backoff: the plain schedule spread deterministically over
 * [delay/2, delay] as a pure function of (@p stream, @p n) -- the same
 * recipe as the fault injector, so it is reproducible and consumes no
 * RNG state.  Concurrent retriers with distinct stream names (one per
 * client/connection) desynchronise instead of thundering-herding in
 * lockstep.  An empty @p stream falls back to the plain schedule.
 */
unsigned backoffMs(const RetryPolicy &policy, const std::string &stream,
                   unsigned n);

/** Sleep and account one retry of @p what (resil.retries counter). */
void noteRetry(const RetryPolicy &policy, unsigned attempt,
               const std::string &what, const Status &status);

/**
 * Run @p fn (returning an Expected<T>) up to policy.maxAttempts times,
 * retrying only retryable (IoError) failures with exponential backoff.
 * Returns the first success or the last failure.
 */
template <typename F>
auto
withRetries(const RetryPolicy &policy, const std::string &what, F fn)
    -> decltype(fn())
{
    unsigned attempts = policy.maxAttempts == 0 ? 1 : policy.maxAttempts;
    for (unsigned attempt = 1;; ++attempt) {
        auto result = fn();
        if (result.ok() || !result.status().retryable() ||
            attempt >= attempts)
            return result;
        noteRetry(policy, attempt, what, result.status());
    }
}

} // namespace resil
} // namespace trb

#endif // TRB_RESIL_RETRY_HH
