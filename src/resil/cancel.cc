#include "resil/cancel.hh"

#include <limits>

namespace trb
{
namespace resil
{

void
CancelToken::cancel(const std::string &reason)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (reason_.empty())
            reason_ = reason.empty() ? "cancelled" : reason;
    }
    // The reason is published before the flag so a poller that observes
    // cancelled() == true always reads a complete reason.
    cancelled_.store(true, std::memory_order_release);
}

std::string
CancelToken::reason() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reason_;
}

void
CancelToken::throwIfCancelled() const
{
    if (cancelled())
        throw CancelledError(reason());
}

Deadline
Deadline::after(std::uint64_t ms)
{
    Deadline d;
    d.set_ = true;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(ms);
    return d;
}

bool
Deadline::expired() const
{
    return set_ && std::chrono::steady_clock::now() >= at_;
}

std::int64_t
Deadline::remainingMs() const
{
    if (!set_)
        return std::numeric_limits<std::int64_t>::max() / 1000000;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    at_ - std::chrono::steady_clock::now())
                    .count();
    return left < 0 ? 0 : left;
}

} // namespace resil
} // namespace trb
