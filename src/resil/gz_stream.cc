#include "resil/gz_stream.hh"

#include <zlib.h>

#include <algorithm>

namespace trb
{
namespace resil
{

namespace
{

/** Streaming truncate cut: past the header, inside small fixtures. */
constexpr std::uint64_t kStreamTruncateWindow = 4096;

} // namespace

Status
GzInFile::open(const std::string &path)
{
    close();
    path_ = path;
    status_ = Status{};
    offset_ = 0;
    truncateAt_ = ~std::uint64_t{0};

    FaultInjector &injector = FaultInjector::global();
    if (injector.enabled()) {
        plan_ = injector.plan(path);
        if (injector.shouldFailTransiently(path)) {
            status_ = Status::ioError("injected transient open failure")
                          .at(path);
            return status_;
        }
        if (plan_.truncate)
            truncateAt_ = 20 + plan_.truncateOffsetFor(
                                   kStreamTruncateWindow);
    } else {
        plan_ = FaultPlan{};
        truncateAt_ = ~std::uint64_t{0};
    }

    gzFile f = gzopen(path.c_str(), "rb");
    if (!f) {
        status_ = Status::ioError("cannot open for reading").at(path);
        return status_;
    }
    file_ = f;
    return Status{};
}

int
GzInFile::read(void *buf, unsigned len)
{
    if (!file_) {
        status_ = Status::ioError("read on a closed stream").at(path_);
        return -1;
    }
    if (len == 0)
        return 0;
    // Injected truncation: the stream "ends" at the planned offset.
    if (offset_ >= truncateAt_)
        return 0;
    std::uint64_t remaining = truncateAt_ - offset_;
    unsigned want = static_cast<unsigned>(
        std::min<std::uint64_t>(len, remaining));
    // Injected short reads: deliver at most half of what was asked.
    if (plan_.shortRead && want > 1)
        want = std::max(1u, want / 2);

    int got = gzread(static_cast<gzFile>(file_), buf, want);
    if (got < 0) {
        int errnum = Z_OK;
        const char *msg = gzerror(static_cast<gzFile>(file_), &errnum);
        if (errnum == Z_ERRNO) {
            status_ = Status::ioError(msg ? msg : "read error")
                          .at(path_, offset_);
        } else {
            status_ = Status::corrupt(msg ? msg : "compressed data error")
                          .at(path_, offset_)
                          .rule("gz.stream");
        }
        return -1;
    }
    if (got > 0 && plan_.corrupting())
        plan_.corruptChunk(static_cast<std::uint8_t *>(buf),
                           static_cast<std::size_t>(got), offset_);
    offset_ += static_cast<std::uint64_t>(got);
    return got;
}

int
GzInFile::readFully(void *buf, unsigned len)
{
    unsigned done = 0;
    while (done < len) {
        int got = read(static_cast<std::uint8_t *>(buf) + done,
                       len - done);
        if (got < 0)
            return -1;
        if (got == 0)
            break;
        done += static_cast<unsigned>(got);
    }
    return static_cast<int>(done);
}

void
GzInFile::close()
{
    if (file_) {
        gzclose(static_cast<gzFile>(file_));
        file_ = nullptr;
    }
    truncateAt_ = ~std::uint64_t{0};
}

} // namespace resil
} // namespace trb
