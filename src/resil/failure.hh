/**
 * @file
 * FailureReport -- where a fault-isolated sweep quarantines its
 * casualties instead of dying.
 *
 * Each quarantined trace carries its Status, its suite index and how
 * many attempts were made; the harness logs a one-line summary at the
 * end of the suite and, when TRB_FAILURE_REPORT=<path> is set, writes
 * the whole report as JSON so CI can archive the failure profile as an
 * artifact.  Quarantines bump the resil.quarantines obs counter.
 *
 * harnessExitCode() is what the bench mains return: 0 for a clean run,
 * 3 (sysexits-free, distinct from the tools' 1/2) when any trace was
 * quarantined -- a sweep that lost inputs completes but does not
 * pretend to be whole.
 */

#ifndef TRB_RESIL_FAILURE_HH
#define TRB_RESIL_FAILURE_HH

#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "resil/status.hh"

namespace trb
{
namespace resil
{

/** One quarantined unit of work. */
struct Quarantine
{
    std::string trace;     //!< suite trace name or file path
    std::size_t index = 0; //!< suite index (slot left unwritten)
    unsigned attempts = 1; //!< attempts made before giving up
    Status status;         //!< why it was quarantined
};

/** Thread-safe ledger of quarantined work. */
class FailureReport
{
  public:
    FailureReport() = default;
    FailureReport(const FailureReport &) = delete;
    FailureReport &operator=(const FailureReport &) = delete;

    /** Quarantine one unit (locked; bumps resil.quarantines). */
    void add(Quarantine q);

    bool empty() const;
    std::size_t size() const;

    /** Copy of the entries, in quarantine order. */
    std::vector<Quarantine> entries() const;

    /** Drop everything (tests). */
    void clear();

    /**
     * {"quarantined": N, "traces": [{"trace": ..., "index": ...,
     *  "attempts": ..., "error_class": ..., "message": ...}, ...]}
     */
    void writeJson(std::ostream &os) const;

    /** Multi-line human summary, one quarantined trace per line. */
    std::string summary() const;

    /** The process-wide report the experiment harness feeds. */
    static FailureReport &global();

  private:
    mutable std::mutex mutex_;
    std::vector<Quarantine> entries_;
};

/**
 * Write the global report to TRB_FAILURE_REPORT if that is set (even
 * when empty: an empty report is a positive "nothing quarantined").
 * @return true if a file was written.
 */
bool dumpGlobalReportIfRequested();

/**
 * Harness epilogue: dump the global report if requested, then return 0
 * when it is empty and 3 otherwise (the bench mains' exit code).
 */
int harnessExitCode();

} // namespace resil
} // namespace trb

#endif // TRB_RESIL_FAILURE_HH
