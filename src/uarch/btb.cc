#include "uarch/btb.hh"

#include "common/logging.hh"

namespace trb
{

Btb::Btb(std::size_t entries, unsigned ways) : ways_(ways)
{
    trb_assert(ways >= 1 && entries % ways == 0,
               "BTB entries must divide evenly into ways");
    std::size_t sets = entries / ways;
    trb_assert((sets & (sets - 1)) == 0, "BTB set count must be power of 2");
    setMask_ = sets - 1;
    entries_.assign(entries, Entry{});
}

BtbEntryView
Btb::lookup(Addr pc)
{
    ++lookups_;
    Entry *set = &entries_[setIndex(pc) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == tagOf(pc)) {
            set[w].lru = ++clock_;
            ++hits_;
            return {true, set[w].target, set[w].type};
        }
    }
    return {};
}

void
Btb::update(Addr pc, Addr target, BranchType type)
{
    Entry *set = &entries_[setIndex(pc) * ways_];
    Entry *victim = &set[0];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == tagOf(pc)) {
            victim = &set[w];
            break;
        }
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lru < victim->lru)
            victim = &set[w];
    }
    victim->valid = true;
    victim->tag = tagOf(pc);
    victim->target = target;
    victim->type = type;
    victim->lru = ++clock_;
}

} // namespace trb
