#include "uarch/tage.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace trb
{

TageScL::TageScL(const TageConfig &config) : cfg_(config)
{
    trb_assert(cfg_.numTables >= 2, "TAGE needs at least two tables");
    base_.assign(std::size_t{1} << cfg_.log2BaseEntries, SatCounter(2, 1));
    tables_.assign(cfg_.numTables,
                   std::vector<TaggedEntry>(std::size_t{1}
                                            << cfg_.log2Entries));

    // Geometric history lengths between min and max.
    histLen_.resize(cfg_.numTables);
    double ratio = std::pow(static_cast<double>(cfg_.maxHistory) /
                                cfg_.minHistory,
                            1.0 / (cfg_.numTables - 1));
    double len = cfg_.minHistory;
    for (unsigned t = 0; t < cfg_.numTables; ++t) {
        histLen_[t] = std::max<unsigned>(1, static_cast<unsigned>(len + 0.5));
        if (t > 0 && histLen_[t] <= histLen_[t - 1])
            histLen_[t] = histLen_[t - 1] + 1;
        len *= ratio;
    }

    for (unsigned t = 0; t < cfg_.numTables; ++t) {
        idxFold_.emplace_back(histLen_[t], cfg_.log2Entries);
        tagFold1_.emplace_back(histLen_[t], cfg_.tagBits);
        tagFold2_.emplace_back(histLen_[t], cfg_.tagBits - 1);
    }

    history_.assign(histLen_.back() + 2, 0);
    scTable_.assign(1024, SignedSatCounter(6, 0));
    loopTable_.assign(256, LoopEntry{});
}

std::size_t
TageScL::baseIndex(Addr pc) const
{
    return (pc >> 2) & ((std::size_t{1} << cfg_.log2BaseEntries) - 1);
}

std::size_t
TageScL::taggedIndex(Addr pc, unsigned t) const
{
    std::size_t mask = (std::size_t{1} << cfg_.log2Entries) - 1;
    return ((pc >> 2) ^ (pc >> (2 + cfg_.log2Entries + t)) ^
            idxFold_[t].value()) &
           mask;
}

std::uint16_t
TageScL::taggedTag(Addr pc, unsigned t) const
{
    std::uint32_t mask = (1u << cfg_.tagBits) - 1;
    return static_cast<std::uint16_t>(
        ((pc >> 2) ^ tagFold1_[t].value() ^ (tagFold2_[t].value() << 1)) &
        mask);
}

TageScL::Prediction
TageScL::lookup(Addr pc)
{
    Prediction p;
    p.taken = base_[baseIndex(pc)].taken();
    p.altTaken = p.taken;

    for (int t = static_cast<int>(cfg_.numTables) - 1; t >= 0; --t) {
        std::size_t idx = taggedIndex(pc, static_cast<unsigned>(t));
        const TaggedEntry &e = tables_[static_cast<unsigned>(t)][idx];
        if (e.tag != taggedTag(pc, static_cast<unsigned>(t)))
            continue;
        if (p.provider < 0) {
            p.provider = t;
            p.providerIndex = idx;
        } else {
            p.alt = t;
            p.altIndex = idx;
            break;
        }
    }

    if (p.provider >= 0) {
        const TaggedEntry &prov =
            tables_[static_cast<unsigned>(p.provider)][p.providerIndex];
        bool prov_taken = prov.ctr.taken();
        bool alt_taken =
            p.alt >= 0
                ? tables_[static_cast<unsigned>(p.alt)][p.altIndex]
                      .ctr.taken()
                : base_[baseIndex(pc)].taken();
        p.altTaken = alt_taken;
        p.weak = prov.ctr.confidence() == 0 && prov.useful.value() == 0;
        p.taken = (p.weak && useAltOnNa_.positive()) ? alt_taken
                                                     : prov_taken;
    }
    p.tageTaken = p.taken;
    return p;
}

bool
TageScL::loopPredict(Addr pc, bool &prediction, bool &high_confidence)
{
    const LoopEntry &e = loopTable_[(pc >> 2) % loopTable_.size()];
    std::uint16_t tag = static_cast<std::uint16_t>((pc >> 10) & 0xffff);
    if (!e.valid || e.tag != tag || e.tripCount == 0)
        return false;
    prediction = (e.currentIter + 1) != e.tripCount;
    high_confidence = e.confidence.saturatedHigh();
    return true;
}

void
TageScL::loopUpdate(Addr pc, bool taken)
{
    LoopEntry &e = loopTable_[(pc >> 2) % loopTable_.size()];
    std::uint16_t tag = static_cast<std::uint16_t>((pc >> 10) & 0xffff);
    if (!e.valid || e.tag != tag) {
        // Adopt the slot lazily (no useful bits in the lite version).
        e = LoopEntry{};
        e.valid = true;
        e.tag = tag;
    }
    if (taken) {
        if (e.currentIter < 0xfffe)
            ++e.currentIter;
        return;
    }
    // Loop exit: does the trip count repeat?
    std::uint16_t trips = e.currentIter + 1;
    if (e.tripCount == trips) {
        e.confidence.increment();
    } else {
        e.tripCount = trips;
        e.confidence = SatCounter(3, 0);
    }
    e.currentIter = 0;
}

bool
TageScL::predict(Addr pc)
{
    last_ = lookup(pc);

    if (cfg_.useLoopPredictor) {
        bool loop_pred = false, confident = false;
        if (loopPredict(pc, loop_pred, confident) && confident) {
            last_.loopUsed = true;
            last_.loopPrediction = loop_pred;
            last_.taken = loop_pred;
        }
    }

    if (cfg_.useStatisticalCorrector && !last_.loopUsed) {
        // Consult the corrector when the TAGE prediction is weak.
        std::size_t idx =
            ((pc >> 2) ^ (idxFold_.front().value() * 3)) % scTable_.size();
        last_.scIndex = idx;
        bool provider_weak =
            last_.provider < 0 ||
            tables_[static_cast<unsigned>(last_.provider)]
                    [last_.providerIndex]
                        .ctr.confidence() == 0;
        const SignedSatCounter &sc = scTable_[idx];
        if (provider_weak && std::abs(sc.value()) > 8) {
            last_.scUsed = true;
            last_.taken = sc.positive();
        }
    }

    return last_.taken;
}

void
TageScL::updateHistories(Addr pc, bool taken)
{
    std::uint8_t bit = taken ? 1 : 0;
    (void)pc;
    std::size_t n = history_.size();

    // Evicted bits must be read before the head moves.
    for (unsigned t = 0; t < cfg_.numTables; ++t) {
        unsigned l_idx = idxFold_[t].originalLength();
        std::uint8_t ev =
            history_[(histHead_ + n - (l_idx - 1)) % n];
        idxFold_[t].update(bit, ev);
        tagFold1_[t].update(bit, ev);
        tagFold2_[t].update(bit, ev);
    }
    histHead_ = (histHead_ + 1) % n;
    history_[histHead_] = bit;
}

void
TageScL::update(Addr pc, bool taken)
{
    const Prediction &p = last_;
    bool tage_correct = p.tageTaken == taken;

    if (cfg_.useStatisticalCorrector)
        scTable_[p.scIndex].update(taken);
    if (cfg_.useLoopPredictor)
        loopUpdate(pc, taken);

    if (p.provider >= 0) {
        TaggedEntry &prov =
            tables_[static_cast<unsigned>(p.provider)][p.providerIndex];

        if (p.weak && prov.ctr.taken() != p.altTaken)
            useAltOnNa_.update(p.altTaken == taken);

        prov.ctr.update(taken);
        if (prov.ctr.taken() != p.altTaken)
            prov.useful.update(prov.ctr.taken() == taken);

        if (p.alt < 0 && p.weak)
            base_[baseIndex(pc)].update(taken);
        else if (p.alt >= 0 && p.weak)
            tables_[static_cast<unsigned>(p.alt)][p.altIndex].ctr.update(
                taken);
        ++providerHits_;
    } else {
        base_[baseIndex(pc)].update(taken);
    }

    // Allocate a longer-history entry on a TAGE misprediction.
    if (!tage_correct &&
        p.provider < static_cast<int>(cfg_.numTables) - 1) {
        unsigned start = static_cast<unsigned>(p.provider + 1);
        // Randomise the first candidate table a little (classic TAGE).
        if (start + 1 < cfg_.numTables && rng_.chance(0.33))
            ++start;
        bool allocated = false;
        for (unsigned t = start; t < cfg_.numTables && !allocated; ++t) {
            std::size_t idx = taggedIndex(pc, t);
            TaggedEntry &e = tables_[t][idx];
            if (e.useful.value() == 0) {
                e.tag = taggedTag(pc, t);
                e.ctr = SatCounter(cfg_.ctrBits,
                                   taken ? (1u << (cfg_.ctrBits - 1))
                                         : (1u << (cfg_.ctrBits - 1)) - 1);
                e.useful = SatCounter(2, 0);
                allocated = true;
            }
        }
        if (!allocated) {
            // Pressure: age the usefulness of the candidates.
            for (unsigned t = start; t < cfg_.numTables; ++t)
                tables_[t][taggedIndex(pc, t)].useful.decrement();
        }
    }

    updateHistories(pc, taken);
}

} // namespace trb
