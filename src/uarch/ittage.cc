#include "uarch/ittage.hh"

#include <cmath>

#include "common/logging.hh"

namespace trb
{

Ittage::Ittage(const IttageConfig &config) : cfg_(config)
{
    trb_assert(cfg_.numTables >= 2, "ITTAGE needs at least two tables");
    base_.assign(std::size_t{1} << cfg_.log2BaseEntries, 0);
    tables_.assign(cfg_.numTables,
                   std::vector<Entry>(std::size_t{1} << cfg_.log2Entries));

    histLen_.resize(cfg_.numTables);
    double ratio = std::pow(static_cast<double>(cfg_.maxHistory) /
                                cfg_.minHistory,
                            1.0 / (cfg_.numTables - 1));
    double len = cfg_.minHistory;
    for (unsigned t = 0; t < cfg_.numTables; ++t) {
        histLen_[t] = std::max<unsigned>(1, static_cast<unsigned>(len + 0.5));
        if (t > 0 && histLen_[t] <= histLen_[t - 1])
            histLen_[t] = histLen_[t - 1] + 1;
        len *= ratio;
        idxFold_.emplace_back(histLen_[t], cfg_.log2Entries);
        tagFold_.emplace_back(histLen_[t], cfg_.tagBits);
    }
    history_.assign(histLen_.back() + 2, 0);
}

std::size_t
Ittage::baseIndex(Addr pc) const
{
    return (pc >> 2) & ((std::size_t{1} << cfg_.log2BaseEntries) - 1);
}

std::size_t
Ittage::taggedIndex(Addr pc, unsigned t) const
{
    std::size_t mask = (std::size_t{1} << cfg_.log2Entries) - 1;
    return ((pc >> 2) ^ (pc >> (3 + t)) ^ idxFold_[t].value()) & mask;
}

std::uint16_t
Ittage::taggedTag(Addr pc, unsigned t) const
{
    return static_cast<std::uint16_t>(
        ((pc >> 2) ^ (tagFold_[t].value() * 5)) &
        ((1u << cfg_.tagBits) - 1));
}

Addr
Ittage::predict(Addr pc)
{
    last_ = Prediction{};
    last_.target = base_[baseIndex(pc)];
    for (int t = static_cast<int>(cfg_.numTables) - 1; t >= 0; --t) {
        std::size_t idx = taggedIndex(pc, static_cast<unsigned>(t));
        Entry &e = tables_[static_cast<unsigned>(t)][idx];
        if (e.tag == taggedTag(pc, static_cast<unsigned>(t)) &&
            e.target != 0) {
            last_.provider = t;
            last_.providerIndex = idx;
            last_.target = e.target;
            break;
        }
    }
    return last_.target;
}

void
Ittage::pushHistoryBit(bool bit)
{
    std::size_t n = history_.size();
    for (unsigned t = 0; t < cfg_.numTables; ++t) {
        unsigned len = idxFold_[t].originalLength();
        std::uint8_t ev = history_[(histHead_ + n - (len - 1)) % n];
        idxFold_[t].update(bit, ev);
        tagFold_[t].update(bit, ev);
    }
    histHead_ = (histHead_ + 1) % n;
    history_[histHead_] = bit ? 1 : 0;
}

void
Ittage::update(Addr pc, Addr target)
{
    bool correct = last_.target == target;

    if (last_.provider >= 0) {
        Entry &e = tables_[static_cast<unsigned>(last_.provider)]
                          [last_.providerIndex];
        if (correct) {
            e.confidence.increment();
            e.useful.increment();
        } else {
            if (e.confidence.value() == 0)
                e.target = target;
            else
                e.confidence.decrement();
        }
    }
    base_[baseIndex(pc)] = target;

    if (!correct &&
        last_.provider < static_cast<int>(cfg_.numTables) - 1) {
        unsigned start = static_cast<unsigned>(last_.provider + 1);
        if (start + 1 < cfg_.numTables && rng_.chance(0.33))
            ++start;
        bool allocated = false;
        for (unsigned t = start; t < cfg_.numTables && !allocated; ++t) {
            std::size_t idx = taggedIndex(pc, t);
            Entry &e = tables_[t][idx];
            if (e.useful.value() == 0) {
                e.tag = taggedTag(pc, t);
                e.target = target;
                e.confidence = SatCounter(2, 0);
                allocated = true;
            }
        }
        if (!allocated)
            for (unsigned t = start; t < cfg_.numTables; ++t)
                tables_[t][taggedIndex(pc, t)].useful.decrement();
    }

    // Fold the taken-ness and a hash of the target into the history so
    // distinct targets produce distinct contexts.
    std::uint64_t h = target >> 2;
    h = splitmix64(h);
    pushHistoryBit(true);
    pushHistoryBit(h & 1);
    pushHistoryBit((h >> 1) & 1);
}

} // namespace trb
