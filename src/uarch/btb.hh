/**
 * @file
 * Branch target buffer: set-associative with LRU replacement, storing the
 * branch type next to the target the way modern BTBs do (the type steers
 * the RAS and the indirect predictor).  The paper's configuration is 16K
 * entries.
 */

#ifndef TRB_UARCH_BTB_HH
#define TRB_UARCH_BTB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace trb
{

/** One BTB lookup result. */
struct BtbEntryView
{
    bool hit = false;
    Addr target = 0;
    BranchType type = BranchType::NotBranch;
};

/** Set-associative LRU branch target buffer. */
class Btb
{
  public:
    /** @param entries total entries; @param ways associativity. */
    explicit Btb(std::size_t entries = 16384, unsigned ways = 8);

    /** Look up the branch at @p pc (updates recency on hit). */
    BtbEntryView lookup(Addr pc);

    /** Install or refresh the mapping pc -> (target, type). */
    void update(Addr pc, Addr target, BranchType type);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }

  private:
    struct Entry
    {
        Addr tag = 0;
        Addr target = 0;
        BranchType type = BranchType::NotBranch;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    std::size_t setIndex(Addr pc) const { return (pc >> 2) & setMask_; }
    Addr tagOf(Addr pc) const { return pc >> 2; }

    std::size_t setMask_;
    unsigned ways_;
    std::vector<Entry> entries_;
    std::uint64_t clock_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
};

/**
 * Return address stack with a circular overflow discipline: pushes past
 * the capacity overwrite the oldest entries, pops past empty return 0.
 */
class Ras
{
  public:
    explicit Ras(std::size_t entries = 64) : stack_(entries, 0) {}

    void
    push(Addr ret)
    {
        top_ = (top_ + 1) % stack_.size();
        stack_[top_] = ret;
        if (depth_ < stack_.size())
            ++depth_;
    }

    Addr
    pop()
    {
        if (depth_ == 0)
            return 0;
        Addr ret = stack_[top_];
        top_ = (top_ + stack_.size() - 1) % stack_.size();
        --depth_;
        return ret;
    }

    /** Peek without popping (used by some front-end heuristics). */
    Addr
    top() const
    {
        return depth_ ? stack_[top_] : 0;
    }

    std::size_t depth() const { return depth_; }
    std::size_t capacity() const { return stack_.size(); }

  private:
    std::vector<Addr> stack_;
    std::size_t top_ = 0;
    std::size_t depth_ = 0;
};

} // namespace trb

#endif // TRB_UARCH_BTB_HH
