/**
 * @file
 * Conditional branch direction predictors: the common interface plus the
 * two classic baselines (bimodal, gshare).  The championship-grade
 * TAGE-SC-L-lite predictor lives in tage.hh.
 */

#ifndef TRB_UARCH_DIRECTION_PRED_HH
#define TRB_UARCH_DIRECTION_PRED_HH

#include <cstdint>
#include <vector>

#include "common/counters.hh"
#include "common/types.hh"

namespace trb
{

/** Interface of a conditional-branch direction predictor. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predict the direction of the conditional branch at @p pc. */
    virtual bool predict(Addr pc) = 0;

    /**
     * Train with the resolved outcome.  Implementations fold their
     * speculative history here as well; the trace-driven pipeline never
     * runs a wrong path, so prediction and update alternate per branch.
     */
    virtual void update(Addr pc, bool taken) = 0;

    /** Human-readable predictor name for reports. */
    virtual const char *name() const = 0;
};

/** PC-indexed table of 2-bit counters. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    explicit BimodalPredictor(unsigned log2_entries = 14)
        : mask_((1u << log2_entries) - 1),
          table_(std::size_t{1} << log2_entries, SatCounter(2, 1))
    {}

    bool
    predict(Addr pc) override
    {
        return table_[index(pc)].taken();
    }

    void
    update(Addr pc, bool taken) override
    {
        table_[index(pc)].update(taken);
    }

    const char *name() const override { return "bimodal"; }

  private:
    std::size_t index(Addr pc) const { return (pc >> 2) & mask_; }

    std::uint32_t mask_;
    std::vector<SatCounter> table_;
};

/** Global-history xor PC indexed table of 2-bit counters. */
class GsharePredictor : public DirectionPredictor
{
  public:
    explicit GsharePredictor(unsigned log2_entries = 14,
                             unsigned history_bits = 14)
        : mask_((1u << log2_entries) - 1),
          histMask_((1u << history_bits) - 1),
          table_(std::size_t{1} << log2_entries, SatCounter(2, 1))
    {}

    bool
    predict(Addr pc) override
    {
        return table_[index(pc)].taken();
    }

    void
    update(Addr pc, bool taken) override
    {
        table_[index(pc)].update(taken);
        history_ = ((history_ << 1) | (taken ? 1 : 0)) & histMask_;
    }

    const char *name() const override { return "gshare"; }

  private:
    std::size_t
    index(Addr pc) const
    {
        return ((pc >> 2) ^ history_) & mask_;
    }

    std::uint32_t mask_;
    std::uint32_t histMask_;
    std::uint32_t history_ = 0;
    std::vector<SatCounter> table_;
};

} // namespace trb

#endif // TRB_UARCH_DIRECTION_PRED_HH
