/**
 * @file
 * TAGE-SC-L-lite: a TAGE predictor with geometric history lengths, a loop
 * predictor and a small statistical-corrector table -- the 64KB-class
 * configuration the paper's methodology section names, scaled to the
 * structure (not the bit-exact budget) of Seznec's CBP-5 submission.
 */

#ifndef TRB_UARCH_TAGE_HH
#define TRB_UARCH_TAGE_HH

#include <cstdint>
#include <vector>

#include "common/counters.hh"
#include "common/rng.hh"
#include "uarch/direction_pred.hh"

namespace trb
{

/** Configuration of the TAGE component. */
struct TageConfig
{
    unsigned numTables = 8;         //!< tagged tables
    unsigned log2Entries = 10;      //!< entries per tagged table
    unsigned log2BaseEntries = 14;  //!< bimodal base table
    unsigned minHistory = 4;        //!< shortest geometric history
    unsigned maxHistory = 160;      //!< longest geometric history
    unsigned tagBits = 11;
    unsigned ctrBits = 3;
    bool useLoopPredictor = true;
    bool useStatisticalCorrector = true;
};

/** TAGE with loop predictor and statistical corrector. */
class TageScL : public DirectionPredictor
{
  public:
    explicit TageScL(const TageConfig &config = TageConfig{});

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    const char *name() const override { return "tage-sc-l"; }

    /** Tagged-table hit statistics (for tests/ablation). */
    std::uint64_t providerHits() const { return providerHits_; }

  private:
    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        SatCounter ctr{3, 3};       //!< 3-bit, weakly taken-ish midpoint
        SatCounter useful{2, 0};
    };

    struct LoopEntry
    {
        std::uint16_t tag = 0;
        std::uint16_t tripCount = 0;   //!< learned iteration count
        std::uint16_t currentIter = 0;
        SatCounter confidence{3, 0};
        bool valid = false;
    };

    struct Prediction
    {
        bool taken = false;
        bool altTaken = false;
        int provider = -1;          //!< tagged table index, -1 = base
        int alt = -1;
        std::size_t providerIndex = 0;
        std::size_t altIndex = 0;
        bool weak = false;          //!< newly allocated provider
        bool loopUsed = false;
        bool loopPrediction = false;
        bool scUsed = false;
        std::size_t scIndex = 0;
        bool tageTaken = false;
    };

    std::size_t baseIndex(Addr pc) const;
    std::size_t taggedIndex(Addr pc, unsigned table) const;
    std::uint16_t taggedTag(Addr pc, unsigned table) const;
    Prediction lookup(Addr pc);
    void updateHistories(Addr pc, bool taken);

    bool loopPredict(Addr pc, bool &prediction, bool &high_confidence);
    void loopUpdate(Addr pc, bool taken);

    TageConfig cfg_;
    std::vector<SatCounter> base_;
    std::vector<std::vector<TaggedEntry>> tables_;
    std::vector<unsigned> histLen_;
    std::vector<FoldedHistory> idxFold_;
    std::vector<FoldedHistory> tagFold1_;
    std::vector<FoldedHistory> tagFold2_;

    std::vector<std::uint8_t> history_;   //!< circular global history
    std::size_t histHead_ = 0;

    SignedSatCounter useAltOnNa_{4, 0};
    std::vector<SignedSatCounter> scTable_;
    SignedSatCounter scThreshold_{6, 0};

    std::vector<LoopEntry> loopTable_;

    Prediction last_;
    Rng rng_{0x7a6e};
    std::uint64_t providerHits_ = 0;
};

} // namespace trb

#endif // TRB_UARCH_TAGE_HH
