/**
 * @file
 * ITTAGE: a tagged-geometric indirect branch target predictor (Seznec,
 * JWAC-2), scaled to the 64KB-class setup of the paper's methodology.
 * A direct-mapped last-target base table backs a set of tagged tables
 * with geometrically increasing global (taken/target-bit) history.
 */

#ifndef TRB_UARCH_ITTAGE_HH
#define TRB_UARCH_ITTAGE_HH

#include <cstdint>
#include <vector>

#include "common/counters.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace trb
{

/** Configuration of the ITTAGE predictor. */
struct IttageConfig
{
    unsigned numTables = 5;
    unsigned log2Entries = 11;
    unsigned log2BaseEntries = 13;
    unsigned minHistory = 4;
    unsigned maxHistory = 128;
    unsigned tagBits = 10;
};

/** Indirect-target predictor with the TAGE organisation. */
class Ittage
{
  public:
    explicit Ittage(const IttageConfig &config = IttageConfig{});

    /** Predicted target for the indirect branch at @p pc (0 = none). */
    Addr predict(Addr pc);

    /**
     * Train with the actual target and fold it into the history.  Call
     * once per indirect branch, after predict() -- the trace-driven
     * pipeline never runs a wrong path.
     */
    void update(Addr pc, Addr target);

    /** Fold a conditional/call direction bit into the history. */
    void pushHistoryBit(bool bit);

  private:
    struct Entry
    {
        std::uint16_t tag = 0;
        Addr target = 0;
        SatCounter confidence{2, 0};
        SatCounter useful{1, 0};
    };

    struct Prediction
    {
        Addr target = 0;
        int provider = -1;
        std::size_t providerIndex = 0;
    };

    std::size_t baseIndex(Addr pc) const;
    std::size_t taggedIndex(Addr pc, unsigned t) const;
    std::uint16_t taggedTag(Addr pc, unsigned t) const;

    IttageConfig cfg_;
    std::vector<Addr> base_;
    std::vector<std::vector<Entry>> tables_;
    std::vector<unsigned> histLen_;
    std::vector<FoldedHistory> idxFold_;
    std::vector<FoldedHistory> tagFold_;
    std::vector<std::uint8_t> history_;
    std::size_t histHead_ = 0;

    Prediction last_;
    Rng rng_{0x17746e};
};

} // namespace trb

#endif // TRB_UARCH_ITTAGE_HH
