/**
 * @file
 * Simulation statistics: the numbers the paper's tables and figures are
 * made of -- IPC, branch MPKI split into direction and (taken-branch)
 * target components, per-branch-type mispredictions, and per-level cache
 * MPKIs.
 */

#ifndef TRB_PIPELINE_SIM_STATS_HH
#define TRB_PIPELINE_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "obs/metrics.hh"

namespace trb
{

/** Measurement-phase statistics of one simulation. */
struct SimStats
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;

    std::uint64_t branches = 0;
    std::uint64_t takenBranches = 0;
    std::uint64_t branchMispredicts = 0;   //!< direction or target
    std::uint64_t directionMispredicts = 0;
    std::uint64_t targetMispredicts = 0;   //!< on taken branches

    /** Indexed by BranchType (0..6). */
    std::array<std::uint64_t, 7> typeCount{};
    std::array<std::uint64_t, 7> typeMispredicts{};
    std::array<std::uint64_t, 7> typeTargetMispredicts{};

    std::uint64_t l1iAccesses = 0, l1iMisses = 0;
    std::uint64_t l1dAccesses = 0, l1dMisses = 0;
    std::uint64_t l2Accesses = 0, l2Misses = 0;
    std::uint64_t llcAccesses = 0, llcMisses = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t l1iMshrMerges = 0, l1dMshrMerges = 0;

    /** Dispatches delayed because the ROB slot was still occupied. */
    std::uint64_t robFullStalls = 0;

    double
    ipc() const
    {
        return cycles != 0
                   ? static_cast<double>(instructions) /
                         static_cast<double>(cycles)
                   : 0.0;
    }

    double branchMpki() const { return mpki(branchMispredicts, instructions); }
    double directionMpki() const
    {
        return mpki(directionMispredicts, instructions);
    }
    double targetMpki() const { return mpki(targetMispredicts, instructions); }

    /** Return-target mispredictions per kilo instruction (Fig. 5). */
    double
    returnMpki() const
    {
        return mpki(typeTargetMispredicts[static_cast<int>(
                        BranchType::Return)],
                    instructions);
    }

    double l1iMpki() const { return mpki(l1iMisses, instructions); }
    double l1dMpki() const { return mpki(l1dMisses, instructions); }
    double l2Mpki() const { return mpki(l2Misses, instructions); }
    double llcMpki() const { return mpki(llcMisses, instructions); }

    /** All counters as a StatSet (for reports). */
    StatSet toStatSet() const;

    /**
     * Register every counter (and the derived IPC/MPKI gauges) under
     * @p prefix in a metrics registry, e.g. "<prefix>.core.rob.full_stalls",
     * "<prefix>.cache.l1i.mshr_merges", "<prefix>.ipc".
     */
    void exportTo(obs::MetricsRegistry &reg,
                  const std::string &prefix) const;

    /** Phase arithmetic: measurement = end snapshot - start snapshot. */
    SimStats operator-(const SimStats &base) const;

    /**
     * Flatten every counter into a fixed-order u64 vector -- the exact
     * bits, so a checkpointed cell restores to a bit-identical SimStats.
     * fromBits() is the inverse; it rejects a vector of the wrong length
     * (a manifest written by an older/newer stat layout).
     */
    std::vector<std::uint64_t> toBits() const;
    static bool fromBits(const std::vector<std::uint64_t> &bits,
                         SimStats &out);
};

} // namespace trb

#endif // TRB_PIPELINE_SIM_STATS_HH
