#include "pipeline/sim_stats.hh"

namespace trb
{

StatSet
SimStats::toStatSet() const
{
    StatSet s;
    s.set("instructions", instructions);
    s.set("cycles", cycles);
    s.set("branches", branches);
    s.set("branches.taken", takenBranches);
    s.set("branches.mispredicts", branchMispredicts);
    s.set("branches.direction_mispredicts", directionMispredicts);
    s.set("branches.target_mispredicts", targetMispredicts);
    for (int t = 1; t < 7; ++t) {
        std::string base =
            std::string("branch.") + branchTypeName(static_cast<BranchType>(t));
        s.set(base + ".count", typeCount[t]);
        s.set(base + ".mispredicts", typeMispredicts[t]);
        s.set(base + ".target_mispredicts", typeTargetMispredicts[t]);
    }
    s.set("l1i.accesses", l1iAccesses);
    s.set("l1i.misses", l1iMisses);
    s.set("l1i.mshr_merges", l1iMshrMerges);
    s.set("l1d.accesses", l1dAccesses);
    s.set("l1d.misses", l1dMisses);
    s.set("l1d.mshr_merges", l1dMshrMerges);
    s.set("l2.accesses", l2Accesses);
    s.set("l2.misses", l2Misses);
    s.set("llc.accesses", llcAccesses);
    s.set("llc.misses", llcMisses);
    s.set("prefetch.issued", prefetchesIssued);
    s.set("rob.full_stalls", robFullStalls);
    return s;
}

void
SimStats::exportTo(obs::MetricsRegistry &reg, const std::string &prefix) const
{
    reg.setCounter(prefix + ".instructions", instructions);
    reg.setCounter(prefix + ".cycles", cycles);
    reg.setCounter(prefix + ".core.rob.full_stalls", robFullStalls);
    reg.setCounter(prefix + ".branch.mispredicts", branchMispredicts);
    reg.setCounter(prefix + ".branch.direction_mispredicts",
                   directionMispredicts);
    reg.setCounter(prefix + ".branch.target_mispredicts", targetMispredicts);
    reg.setCounter(prefix + ".cache.l1i.accesses", l1iAccesses);
    reg.setCounter(prefix + ".cache.l1i.misses", l1iMisses);
    reg.setCounter(prefix + ".cache.l1i.mshr_merges", l1iMshrMerges);
    reg.setCounter(prefix + ".cache.l1d.accesses", l1dAccesses);
    reg.setCounter(prefix + ".cache.l1d.misses", l1dMisses);
    reg.setCounter(prefix + ".cache.l1d.mshr_merges", l1dMshrMerges);
    reg.setCounter(prefix + ".cache.l2.accesses", l2Accesses);
    reg.setCounter(prefix + ".cache.l2.misses", l2Misses);
    reg.setCounter(prefix + ".cache.llc.accesses", llcAccesses);
    reg.setCounter(prefix + ".cache.llc.misses", llcMisses);
    reg.setCounter(prefix + ".cache.prefetch.issued", prefetchesIssued);
    reg.setGauge(prefix + ".ipc", ipc());
    reg.setGauge(prefix + ".branch.mpki", branchMpki());
    reg.setGauge(prefix + ".cache.l1i.mpki", l1iMpki());
    reg.setGauge(prefix + ".cache.l1d.mpki", l1dMpki());
    reg.setGauge(prefix + ".cache.l2.mpki", l2Mpki());
    reg.setGauge(prefix + ".cache.llc.mpki", llcMpki());
}

SimStats
SimStats::operator-(const SimStats &base) const
{
    SimStats d = *this;
    d.instructions -= base.instructions;
    d.cycles -= base.cycles;
    d.branches -= base.branches;
    d.takenBranches -= base.takenBranches;
    d.branchMispredicts -= base.branchMispredicts;
    d.directionMispredicts -= base.directionMispredicts;
    d.targetMispredicts -= base.targetMispredicts;
    for (int t = 0; t < 7; ++t) {
        d.typeCount[t] -= base.typeCount[t];
        d.typeMispredicts[t] -= base.typeMispredicts[t];
        d.typeTargetMispredicts[t] -= base.typeTargetMispredicts[t];
    }
    d.l1iAccesses -= base.l1iAccesses;
    d.l1iMisses -= base.l1iMisses;
    d.l1iMshrMerges -= base.l1iMshrMerges;
    d.l1dAccesses -= base.l1dAccesses;
    d.l1dMisses -= base.l1dMisses;
    d.l1dMshrMerges -= base.l1dMshrMerges;
    d.l2Accesses -= base.l2Accesses;
    d.l2Misses -= base.l2Misses;
    d.llcAccesses -= base.llcAccesses;
    d.llcMisses -= base.llcMisses;
    d.prefetchesIssued -= base.prefetchesIssued;
    d.robFullStalls -= base.robFullStalls;
    return d;
}

namespace
{

/**
 * Apply @p fn to every counter of @p stats, in a single fixed order
 * shared by toBits() and fromBits() so the two cannot drift apart.
 */
template <typename Stats, typename Fn>
void
forEachStatField(Stats &stats, Fn &&fn)
{
    fn(stats.instructions);
    fn(stats.cycles);
    fn(stats.branches);
    fn(stats.takenBranches);
    fn(stats.branchMispredicts);
    fn(stats.directionMispredicts);
    fn(stats.targetMispredicts);
    for (int t = 0; t < 7; ++t) {
        fn(stats.typeCount[t]);
        fn(stats.typeMispredicts[t]);
        fn(stats.typeTargetMispredicts[t]);
    }
    fn(stats.l1iAccesses);
    fn(stats.l1iMisses);
    fn(stats.l1iMshrMerges);
    fn(stats.l1dAccesses);
    fn(stats.l1dMisses);
    fn(stats.l1dMshrMerges);
    fn(stats.l2Accesses);
    fn(stats.l2Misses);
    fn(stats.llcAccesses);
    fn(stats.llcMisses);
    fn(stats.prefetchesIssued);
    fn(stats.robFullStalls);
}

} // namespace

std::vector<std::uint64_t>
SimStats::toBits() const
{
    std::vector<std::uint64_t> bits;
    forEachStatField(*this,
                     [&](std::uint64_t v) { bits.push_back(v); });
    return bits;
}

bool
SimStats::fromBits(const std::vector<std::uint64_t> &bits, SimStats &out)
{
    std::size_t expected = 0;
    forEachStatField(out, [&](std::uint64_t &) { ++expected; });
    if (bits.size() != expected)
        return false;
    std::size_t i = 0;
    forEachStatField(out, [&](std::uint64_t &v) { v = bits[i++]; });
    return true;
}

} // namespace trb
