/**
 * @file
 * Core model configuration: pipeline widths and depths, front-end
 * organisation (coupled vs decoupled, branch predictor choice, ideal
 * target prediction for the IPC-1 setup) and the memory hierarchy.
 */

#ifndef TRB_PIPELINE_CORE_PARAMS_HH
#define TRB_PIPELINE_CORE_PARAMS_HH

#include <cstdint>

#include "cache/hierarchy.hh"
#include "trace/branch_deduce.hh"

namespace trb
{

/** Which conditional direction predictor the front-end uses. */
enum class DirPredKind : std::uint8_t
{
    TageScL,
    Gshare,
    Bimodal,
};

/** Parameters of the out-of-order core model. */
struct CoreParams
{
    unsigned fetchWidth = 6;
    unsigned issueWidth = 6;
    unsigned retireWidth = 6;
    unsigned robSize = 320;

    /** Fetch-to-dispatch depth in cycles. */
    unsigned frontendDepth = 8;

    /** Extra cycles after resolution before fetch restarts. */
    unsigned mispredictPenalty = 2;

    /** Redirect cost for decode-resolvable direct-target misses. */
    unsigned decodeRedirectPenalty = 3;

    /** Decoupled (FDIP-style) front-end with FTQ lookahead prefetch. */
    bool decoupledFrontEnd = true;
    unsigned ftqLookahead = 24;    //!< runahead distance in instructions

    /** Ideal branch-target prediction (the IPC-1 ChampSim setup). */
    bool idealTargets = false;

    /** Branch-type deduction rules (patched per paper Section 3.2.2). */
    DeductionRules rules = DeductionRules::Patched;

    DirPredKind dirPred = DirPredKind::TageScL;
    std::size_t btbEntries = 16384;
    unsigned btbWays = 8;
    std::size_t rasEntries = 64;

    HierarchyParams mem;
};

} // namespace trb

#endif // TRB_PIPELINE_CORE_PARAMS_HH
