#include "pipeline/o3core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace trb
{

namespace
{

/** Issue-bandwidth bookkeeping over a sliding cycle window. */
class IssueRing
{
  public:
    explicit IssueRing(unsigned width) : width_(width) {}

    /** First cycle >= @p wanted with a free issue slot (and claim it). */
    Cycle
    claim(Cycle wanted)
    {
        for (;;) {
            Slot &s = slots_[wanted % kSize];
            if (s.stamp != wanted) {
                s.stamp = wanted;
                s.count = 1;
                return wanted;
            }
            if (s.count < width_) {
                ++s.count;
                return wanted;
            }
            ++wanted;
        }
    }

  private:
    static constexpr std::size_t kSize = 8192;

    struct Slot
    {
        Cycle stamp = ~Cycle{0};
        std::uint32_t count = 0;
    };

    unsigned width_;
    std::array<Slot, kSize> slots_{};
};

std::unique_ptr<DirectionPredictor>
makeDirPred(DirPredKind kind)
{
    switch (kind) {
      case DirPredKind::TageScL: return std::make_unique<TageScL>();
      case DirPredKind::Gshare: return std::make_unique<GsharePredictor>();
      case DirPredKind::Bimodal:
        return std::make_unique<BimodalPredictor>();
    }
    return std::make_unique<TageScL>();
}

} // namespace

O3Core::O3Core(const CoreParams &params, InstrPrefetcher *ipref)
    : params_(params), mem_(params.mem), port_(mem_),
      dir_(makeDirPred(params.dirPred)), ittage_(),
      btb_(params.btbEntries, params.btbWays), ras_(params.rasEntries),
      ipref_(ipref)
{
}

SimStats
O3Core::snapshot() const
{
    SimStats s = raw_;
    s.l1iAccesses = mem_.l1iAccesses();
    s.l1iMisses = mem_.l1iMisses();
    s.l1dAccesses = mem_.l1dAccesses();
    s.l1dMisses = mem_.l1dMisses();
    s.l2Accesses = mem_.l2Accesses();
    s.l2Misses = mem_.l2Misses();
    s.llcAccesses = mem_.llcAccesses();
    s.llcMisses = mem_.llcMisses();
    s.prefetchesIssued = mem_.prefetchesIssued();
    s.l1iMshrMerges = mem_.l1iMshrMerges();
    s.l1dMshrMerges = mem_.l1dMshrMerges();
    return s;
}

O3Core::BranchOutcome
O3Core::predictBranch(const ChampSimRecord &rec, BranchType type,
                      bool taken, Addr actual_target)
{
    BranchOutcome out;
    const Addr ip = rec.ip;
    BtbEntryView view = btb_.lookup(ip);

    auto needBtbTarget = [&]() {
        // A taken branch whose target must come from the BTB: a miss or
        // a stale target is a misfetch, resolvable at decode for direct
        // branches (the target is in the instruction bytes).
        if (!params_.idealTargets &&
            !(view.hit && view.target == actual_target)) {
            out.targetMisp = true;
            out.decodeResolvable = true;
        }
    };

    switch (type) {
      case BranchType::Conditional: {
        bool pred_taken = dir_->predict(ip);
        out.directionMisp = pred_taken != taken;
        dir_->update(ip, taken);
        ittage_.pushHistoryBit(taken);
        if (taken && !out.directionMisp)
            needBtbTarget();
        break;
      }
      case BranchType::DirectJump:
        needBtbTarget();
        break;
      case BranchType::DirectCall:
        needBtbTarget();
        ras_.push(ip + 4);
        break;
      case BranchType::IndirectJump:
      case BranchType::IndirectCall: {
        Addr pred = ittage_.predict(ip);
        if (!params_.idealTargets && pred != actual_target)
            out.targetMisp = true;
        ittage_.update(ip, actual_target);
        if (type == BranchType::IndirectCall)
            ras_.push(ip + 4);
        break;
      }
      case BranchType::Return: {
        Addr pred = ras_.pop();
        if (!params_.idealTargets && pred != actual_target)
            out.targetMisp = true;
        break;
      }
      case BranchType::NotBranch:
        break;
    }

    if (taken)
        btb_.update(ip, actual_target, type);
    return out;
}

SimStats
O3Core::run(ChampSimView trace, std::uint64_t warmup)
{
    const Cycle l1i_hit = params_.mem.l1i.latency;
    warmup = std::min<std::uint64_t>(warmup, trace.size());

    std::array<Cycle, 256> reg_ready{};
    std::vector<Cycle> rob_retire(params_.robSize, 0);
    IssueRing issue_ring(params_.issueWidth);

    Cycle fetch_available = 0;
    Cycle last_fetch = 0;
    unsigned fetched_in_cycle = 0;
    Addr cur_line = ~Addr{0};
    Cycle cur_line_ready = 0;

    Cycle last_retire = 0;
    unsigned retired_in_cycle = 0;

    std::size_t la_ptr = 0;
    Addr last_la_line = ~Addr{0};

    SimStats base{};

    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (i == warmup && warmup > 0)
            base = snapshot();

        // Cooperative cancellation: the mask test is the only on-path
        // cost; the relaxed load happens once per poll interval.
        if ((i & (kCancelPollInterval - 1)) == 0 && cancel_ &&
            cancel_->cancelled())
            throw resil::CancelledError(cancel_->reason());

        const ChampSimRecord &rec = trace[i];

        // ---- Fetch. ----
        Cycle f = std::max(fetch_available, last_fetch);
        if (f == last_fetch && fetched_in_cycle >= params_.fetchWidth)
            ++f;
        Addr line = lineAddr(rec.ip);
        if (line != cur_line) {
            AccessResult res =
                mem_.access(AccessKind::Instr, rec.ip, rec.ip, f);
            cur_line = line;
            cur_line_ready =
                f + (res.l1Miss ? res.latency - l1i_hit : 0);
            if (ipref_)
                ipref_->onFetch(rec.ip, !res.l1Miss, f, port_);
        }
        if (cur_line_ready > f)
            f = cur_line_ready;
        if (f != last_fetch)
            fetched_in_cycle = 0;
        last_fetch = f;
        ++fetched_in_cycle;

        // ---- Decoupled front-end: FTQ lookahead prefetch (FDIP). ----
        if (params_.decoupledFrontEnd) {
            std::size_t la_end =
                std::min(i + params_.ftqLookahead, trace.size());
            if (la_ptr <= i)
                la_ptr = i + 1;
            for (; la_ptr < la_end; ++la_ptr) {
                Addr la_line = lineAddr(trace[la_ptr].ip);
                if (la_line != last_la_line) {
                    mem_.prefetchInstr(la_line, f);
                    last_la_line = la_line;
                }
            }
        }

        // ---- Dispatch: front-end depth and ROB occupancy. ----
        Cycle dispatch = f + params_.frontendDepth;
        Cycle rob_slot_free = rob_retire[i % params_.robSize];
        if (rob_slot_free > dispatch) {
            dispatch = rob_slot_free;
            ++raw_.robFullStalls;
        }

        // ---- Register readiness and issue. ----
        Cycle ready = dispatch + 1;
        for (RegId r : rec.srcRegs)
            if (r != 0)
                ready = std::max(ready, reg_ready[r]);
        Cycle issue = issue_ring.claim(ready);

        // ---- Execute. ----
        Cycle complete;
        if (rec.isLoad()) {
            Cycle lat = 0;
            for (Addr a : rec.srcMem) {
                if (a == 0)
                    continue;
                AccessResult res =
                    mem_.access(AccessKind::Load, a, rec.ip, issue + 1);
                lat = std::max(lat, res.latency);
            }
            complete = issue + 1 + lat;
        } else {
            complete = issue + 1;
        }

        for (RegId r : rec.destRegs)
            if (r != 0)
                reg_ready[r] = complete;

        // ---- Branch resolution and redirects. ----
        BranchType br_type = BranchType::NotBranch;
        obs::SquashCause squash = obs::SquashCause::None;
        if (rec.isBranch) {
            BranchType type = deduceBranchType(rec, params_.rules);
            br_type = type;
            bool taken = rec.branchTaken != 0;
            Addr actual_target =
                (taken && i + 1 < trace.size()) ? trace[i + 1].ip : 0;

            ++raw_.branches;
            if (taken)
                ++raw_.takenBranches;
            ++raw_.typeCount[static_cast<int>(type)];

            BranchOutcome out =
                predictBranch(rec, type, taken, actual_target);
            if (out.directionMisp)
                ++raw_.directionMispredicts;
            if (out.targetMisp) {
                ++raw_.targetMispredicts;
                ++raw_.typeTargetMispredicts[static_cast<int>(type)];
            }
            if (out.directionMisp || out.targetMisp) {
                squash = out.directionMisp
                             ? obs::SquashCause::DirectionMispredict
                             : obs::SquashCause::TargetMispredict;
                ++raw_.branchMispredicts;
                ++raw_.typeMispredicts[static_cast<int>(type)];
                Cycle redirect =
                    (out.targetMisp && out.decodeResolvable &&
                     !out.directionMisp)
                        ? f + params_.decodeRedirectPenalty
                        : complete + params_.mispredictPenalty;
                fetch_available = std::max(fetch_available, redirect);
            }
            if (taken)
                fetch_available = std::max(fetch_available, f + 1);
            if (ipref_)
                ipref_->onBranch(rec.ip, type, actual_target, taken, f,
                                 port_);
        }

        // ---- Retire (in order, retire-width per cycle). ----
        Cycle retire = std::max(last_retire, complete + 1);
        if (retire == last_retire &&
            retired_in_cycle >= params_.retireWidth)
            ++retire;
        if (retire != last_retire)
            retired_in_cycle = 0;
        last_retire = retire;
        ++retired_in_cycle;
        rob_retire[i % params_.robSize] = retire;

        // Stores write the hierarchy at retirement (latency off the
        // critical path, misses still counted).
        if (rec.isStore())
            for (Addr a : rec.destMem)
                if (a != 0)
                    mem_.access(AccessKind::Store, a, rec.ip, retire);

        if (tracer_) {
            obs::InstrEvent ev;
            ev.seq = i;
            ev.ip = rec.ip;
            ev.fetch = f;
            ev.dispatch = dispatch;
            ev.issue = issue;
            ev.complete = complete;
            ev.retire = retire;
            ev.branch = br_type;
            ev.squash = squash;
            ev.isLoad = rec.isLoad();
            ev.isStore = rec.isStore();
            tracer_->record(ev);
        }

        ++raw_.instructions;
        raw_.cycles = last_retire;
    }

    return snapshot() - base;
}

} // namespace trb
