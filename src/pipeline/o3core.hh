/**
 * @file
 * The out-of-order core model: a ChampSim-class trace-driven scheduler.
 *
 * The model walks the ChampSim trace once, computing per-instruction
 * fetch, dispatch, issue, completion and retirement cycles under the
 * configured structural constraints:
 *
 *  - branch-predictor-directed fetch with BTB/RAS/ITTAGE/direction
 *    predictors and redirect stalls at decode (direct-target misses) or
 *    execution (direction / indirect-target mispredictions);
 *  - an optional decoupled front-end whose FTQ lookahead issues
 *    fetch-directed L1I prefetches and feeds the pluggable instruction
 *    prefetcher;
 *  - register ready-times for true dependencies (the mechanism through
 *    which the paper's base-update / branch-regs / flag-reg effects
 *    materialise);
 *  - ROB occupancy, fetch/issue/retire widths;
 *  - loads through the latency-aware memory hierarchy, stores writing at
 *    retirement.
 *
 * Like ChampSim, the model derives everything from the 64-byte records:
 * an instruction is a load/store iff it has memory operands and its
 * branch type is deduced from register usage (original or patched rules).
 */

#ifndef TRB_PIPELINE_O3CORE_HH
#define TRB_PIPELINE_O3CORE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "ipref/instr_prefetcher.hh"
#include "obs/pipeline_trace.hh"
#include "resil/cancel.hh"
#include "pipeline/core_params.hh"
#include "pipeline/sim_stats.hh"
#include "trace/branch_deduce.hh"
#include "trace/champsim_trace.hh"
#include "uarch/btb.hh"
#include "uarch/direction_pred.hh"
#include "uarch/ittage.hh"
#include "uarch/tage.hh"

namespace trb
{

/** The core model.  One instance simulates one trace run. */
class O3Core
{
  public:
    /**
     * @param params core configuration
     * @param ipref optional instruction prefetcher (not owned may be
     *              null); receives front-end events during the run
     */
    explicit O3Core(const CoreParams &params,
                    InstrPrefetcher *ipref = nullptr);

    /**
     * Simulate the trace.  Takes a non-owning view, so the record array
     * can live in a ChampSimTrace vector or an mmap'd store artifact;
     * a ChampSimTrace converts implicitly.
     * @param warmup leading instructions excluded from the statistics
     * @return measurement-phase statistics
     */
    SimStats run(ChampSimView trace, std::uint64_t warmup = 0);

    /**
     * Attach (or detach with nullptr) a pipeline event tracer: every
     * retired instruction's lifecycle stamps are recorded into it.  The
     * core only pays a pointer test per instruction when detached.
     */
    void setTracer(obs::PipelineTracer *tracer) { tracer_ = tracer; }

    /**
     * Attach (or detach with nullptr) a cancellation token: run() polls
     * it every kCancelPollInterval retired instructions (one relaxed
     * load on-path) and bails out by throwing resil::CancelledError
     * when it has fired.  Detached, the per-poll cost is one pointer
     * test -- the same pattern as setTracer().  The partial run's
     * statistics are discarded with the exception; cancellation never
     * produces (or memoizes) a truncated result.
     */
    void
    setCancelToken(const resil::CancelToken *token)
    {
        cancel_ = token;
    }

    /** Instructions between cancellation polls (a power of two). */
    static constexpr std::size_t kCancelPollInterval = 4096;

    /** The memory hierarchy (for metrics export and inspection). */
    const MemoryHierarchy &memory() const { return mem_; }

  private:
    /** Port the instruction prefetcher issues fills through. */
    class Port : public PrefetchPort
    {
      public:
        explicit Port(MemoryHierarchy &mem) : mem_(mem) {}

        bool
        issue(Addr addr, Cycle now) override
        {
            return mem_.prefetchInstr(addr, now);
        }

        bool
        present(Addr addr, Cycle now) const override
        {
            return mem_.probeL1I(addr, now);
        }

      private:
        MemoryHierarchy &mem_;
    };

    /** Outcome of predicting one branch at fetch. */
    struct BranchOutcome
    {
        bool directionMisp = false;
        bool targetMisp = false;
        bool decodeResolvable = false;  //!< direct target known at decode
    };

    BranchOutcome predictBranch(const ChampSimRecord &rec, BranchType type,
                                bool taken, Addr actual_target);

    /** Snapshot the raw counters (for warmup subtraction). */
    SimStats snapshot() const;

    CoreParams params_;
    MemoryHierarchy mem_;
    Port port_;
    std::unique_ptr<DirectionPredictor> dir_;
    Ittage ittage_;
    Btb btb_;
    Ras ras_;
    InstrPrefetcher *ipref_;
    obs::PipelineTracer *tracer_ = nullptr;
    const resil::CancelToken *cancel_ = nullptr;

    // Raw cumulative counters (snapshotted at the warmup boundary).
    SimStats raw_;
};

} // namespace trb

#endif // TRB_PIPELINE_O3CORE_HH
