/**
 * @file
 * Experiment harness shared by the bench binaries: suite iteration with
 * per-trace generation (trace-major, so memory stays bounded), the
 * improvement-set sweep each figure needs, and small table/series
 * formatting helpers.
 */

#ifndef TRB_EXPERIMENTS_EXPERIMENT_HH
#define TRB_EXPERIMENTS_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "convert/cvp2champsim.hh"
#include "pipeline/sim_stats.hh"
#include "sim/simulator.hh"
#include "synth/params.hh"

namespace trb
{

/** The named improvement sets of Figures 1 and 2, in plot order. */
struct NamedSet
{
    const char *name;
    ImprovementSet set;
};

/** mem-regs .. All, the nine series the paper's Figure 1 shows. */
const std::vector<NamedSet> &figureOneSets();

/**
 * Iterate a suite trace-major: generate each CVP-1 trace once and hand
 * it to the callback, then discard it.  Honours TRB_SUITE_SCALE by
 * dropping a suffix of the suite.
 */
void forEachTrace(
    const std::vector<TraceSpec> &suite,
    const std::function<void(std::size_t, const TraceSpec &,
                             const CvpTrace &)> &fn);

/** Per-trace outcome of one improvement set vs the original converter. */
struct DeltaSeries
{
    std::string setName;
    std::vector<double> ratio;   //!< improved IPC / baseline IPC

    double geomeanDeltaPercent() const;
    unsigned countAbove(double percent) const;
};

/**
 * Run the full Figure 1/2 sweep: for every trace, simulate the original
 * conversion and each named set, collecting IPC ratios.
 *
 * @param baseline_out optional per-trace baseline stats sink
 */
std::vector<DeltaSeries> runImprovementSweep(
    const std::vector<TraceSpec> &suite, const std::vector<NamedSet> &sets,
    const CoreParams &params, std::vector<SimStats> *baseline_out = nullptr);

/** Fraction of CVP-1 instructions that are writeback (base-update)
 *  loads, the x-axis of Figure 4. */
double writebackLoadFraction(const CvpTrace &trace);

/** Format a value into a fixed-width right-aligned cell. */
std::string cell(double v, int width, int precision);
std::string cell(const std::string &s, int width);

} // namespace trb

#endif // TRB_EXPERIMENTS_EXPERIMENT_HH
