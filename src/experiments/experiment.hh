/**
 * @file
 * Experiment harness shared by the bench binaries: suite iteration with
 * per-trace generation (trace-major, so memory stays bounded), the
 * improvement-set sweep each figure needs, and small table/series
 * formatting helpers.
 *
 * Since PR 2 the harness is parallel: forEachTrace() dispatches one
 * task per trace onto trb::par::ThreadPool::global() (TRB_JOBS threads,
 * default hardware_concurrency) and runImprovementSweep() further
 * splits each trace into one task per improvement set.  Results are
 * deterministic by construction -- every trace is generated from its
 * own spec seed and every result lands in an index-addressed slot, so
 * the output is bit-identical to the serial run (TRB_JOBS=1) regardless
 * of worker count or schedule.  See docs/parallelism.md for the
 * contract callers must follow.
 */

#ifndef TRB_EXPERIMENTS_EXPERIMENT_HH
#define TRB_EXPERIMENTS_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "convert/cvp2champsim.hh"
#include "pipeline/sim_stats.hh"
#include "resil/failure.hh"
#include "sim/simulator.hh"
#include "synth/params.hh"

namespace trb
{

/** The named improvement sets of Figures 1 and 2, in plot order. */
struct NamedSet
{
    const char *name;
    ImprovementSet set;
};

/** mem-regs .. All, the nine series the paper's Figure 1 shows. */
const std::vector<NamedSet> &figureOneSets();

/**
 * Number of suite entries forEachTrace() will visit after applying
 * TRB_SUITE_SCALE -- use it to pre-size the index-addressed result
 * arrays a parallel callback writes into.
 */
std::size_t suiteCount(const std::vector<TraceSpec> &suite);

/**
 * Iterate a suite trace-major: generate each CVP-1 trace once, hand it
 * to the callback, then discard it.  Honours TRB_SUITE_SCALE by
 * dropping a suffix of the suite.
 *
 * Parallelism contract: traces are dispatched onto the global worker
 * pool, so @p fn may run concurrently for *different* indices (each
 * index exactly once).  Callbacks must therefore write their results
 * into per-index slots (pre-size with suiteCount()) rather than
 * appending to shared containers, and must not print in trace order.
 * With TRB_JOBS=1 the callback runs inline in index order -- the exact
 * serial behaviour this harness had before parallelisation.
 *
 * Failure policy (PR 4): a trace that cannot be produced -- fault
 * injection active, I/O failed -- does not kill the suite.  Transient
 * IoErrors are retried with bounded exponential backoff (TRB_RETRIES);
 * anything else quarantines the trace into @p failures (the global
 * FailureReport when null), its callback is skipped, its result slot is
 * left untouched, and the suite continues.  A warning summarising the
 * quarantines is logged at the end.
 */
void forEachTrace(
    const std::vector<TraceSpec> &suite,
    const std::function<void(std::size_t, const TraceSpec &,
                             const CvpTrace &)> &fn,
    resil::FailureReport *failures = nullptr);

/** Per-trace outcome of one improvement set vs the original converter. */
struct DeltaSeries
{
    std::string setName;
    /**
     * improved IPC / baseline IPC per trace; NaN marks a quarantined
     * trace whose cell was never computed.  The aggregate helpers skip
     * non-finite entries.
     */
    std::vector<double> ratio;

    double geomeanDeltaPercent() const;
    unsigned countAbove(double percent) const;
};

/**
 * Run the full Figure 1/2 sweep: for every trace, simulate the original
 * conversion and each named set, collecting IPC ratios.
 *
 * Dispatches one (trace x improvement-set) task per pool slot; the
 * per-trace ratios are merged back in trace order, so the returned
 * series (and @p baseline_out) are bit-identical for every TRB_JOBS
 * value.
 *
 * Failure policy and resume (PR 4): quarantined traces (see
 * forEachTrace()) leave NaN ratios and default baseline stats; the
 * sweep continues.  When TRB_CHECKPOINT=<path> is set, every completed
 * (trace x set) cell is appended to a crash-safe manifest as exact bit
 * patterns, and a rerun with the same manifest resumes from the last
 * completed cell with bit-identical results; a manifest written by a
 * different sweep (signature mismatch) is discarded.
 *
 * @param baseline_out optional per-trace baseline stats sink, resized
 *        to the visited-trace count and filled by trace index
 * @param failures quarantine sink; the global FailureReport when null
 */
std::vector<DeltaSeries> runImprovementSweep(
    const std::vector<TraceSpec> &suite, const std::vector<NamedSet> &sets,
    const CoreParams &params, std::vector<SimStats> *baseline_out = nullptr,
    resil::FailureReport *failures = nullptr);

/** Fraction of CVP-1 instructions that are writeback (base-update)
 *  loads, the x-axis of Figure 4. */
double writebackLoadFraction(const CvpTrace &trace);

/** Format a value into a fixed-width right-aligned cell. */
std::string cell(double v, int width, int precision);
std::string cell(const std::string &s, int width);

} // namespace trb

#endif // TRB_EXPERIMENTS_EXPERIMENT_HH
