#include "experiments/experiment.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "common/env.hh"
#include "common/stats.hh"
#include "obs/metrics.hh"
#include "obs/profile.hh"
#include "par/thread_pool.hh"
#include "synth/generator.hh"

namespace trb
{

const std::vector<NamedSet> &
figureOneSets()
{
    static const std::vector<NamedSet> sets = {
        {"mem-regs", kImpMemRegs},
        {"base-update", kImpBaseUpdate},
        {"mem-footprint", kImpMemFootprint},
        {"call-stack", kImpCallStack},
        {"branch-regs", kImpBranchRegs},
        {"flag-reg", kImpFlagReg},
        {"Memory", kMemoryImps},
        {"Branch", kBranchImps},
        {"All", kAllImps},
    };
    return sets;
}

std::size_t
suiteCount(const std::vector<TraceSpec> &suite)
{
    double scale = suiteScaleFromEnv();
    std::size_t count = std::max<std::size_t>(
        1, static_cast<std::size_t>(scale * double(suite.size()) + 0.5));
    return std::min(count, suite.size());
}

void
forEachTrace(const std::vector<TraceSpec> &suite,
             const std::function<void(std::size_t, const TraceSpec &,
                                      const CvpTrace &)> &fn)
{
    const std::size_t count = suiteCount(suite);
    par::ThreadPool &pool = par::ThreadPool::global();
    obs::SuiteProgress progress("suite", count);
    pool.parallelFor(count, [&](std::size_t i) {
        // Per-worker throughput shows up in the phase profile as
        // worker.<id>; skipped in serial mode so TRB_JOBS=1 reports
        // exactly what the serial harness always reported.
        std::unique_ptr<obs::ScopeTimer> worker_timer;
        if (pool.jobs() > 1)
            worker_timer = std::make_unique<obs::ScopeTimer>(
                "worker." + std::to_string(par::workerId()));
        CvpTrace trace = [&] {
            obs::ScopeTimer timer("generate");
            timer.setItems(suite[i].length);
            TraceGenerator gen(suite[i].params);
            return gen.generate(suite[i].length);
        }();
        if (worker_timer)
            worker_timer->setItems(trace.size());
        fn(i, suite[i], trace);
        progress.step(i, trace.size());
    });
}

double
DeltaSeries::geomeanDeltaPercent() const
{
    return 100.0 * (geomean(ratio) - 1.0);
}

unsigned
DeltaSeries::countAbove(double percent) const
{
    unsigned n = 0;
    for (double r : ratio)
        if (std::fabs(r - 1.0) * 100.0 > percent)
            ++n;
    return n;
}

std::vector<DeltaSeries>
runImprovementSweep(const std::vector<TraceSpec> &suite,
                    const std::vector<NamedSet> &sets,
                    const CoreParams &params,
                    std::vector<SimStats> *baseline_out)
{
    const std::size_t count = suiteCount(suite);
    std::vector<DeltaSeries> series(sets.size());
    for (std::size_t k = 0; k < sets.size(); ++k) {
        series[k].setName = sets[k].name;
        series[k].ratio.resize(count);
    }
    if (baseline_out)
        baseline_out->resize(count);

    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    par::ThreadPool &pool = par::ThreadPool::global();
    forEachTrace(suite, [&](std::size_t i, const TraceSpec &,
                            const CvpTrace &cvp) {
        SimStats base = simulateCvp(cvp, kImpNone, params);
        if (baseline_out)
            (*baseline_out)[i] = base;
        // Buffer this task's gauges and flush them in one batch at task
        // end, so workers contend on the registry once per trace rather
        // than once per metric (micro_components benchmarks the
        // alternatives).
        obs::ThreadMetricsBuffer metrics(reg);
        const std::string trace_tag = "trace" + std::to_string(i);
        metrics.set("sweep.baseline." + trace_tag + ".ipc", base.ipc());
        // One task per (trace x improvement set): the inner loop rides
        // the same work-stealing pool, so idle workers pick up sets of
        // the trace another worker generated.
        pool.parallelFor(sets.size(), [&](std::size_t k) {
            obs::ScopeTimer set_timer(std::string("set.") + sets[k].name);
            set_timer.setItems(cvp.size());
            SimStats s = simulateCvp(cvp, sets[k].set, params);
            series[k].ratio[i] = s.ipc() / base.ipc();
        });
        for (std::size_t k = 0; k < sets.size(); ++k)
            metrics.set("sweep." + series[k].setName + "." + trace_tag +
                            ".ipc_ratio",
                        series[k].ratio[i]);
    });
    // Post-join, single-threaded: the summary gauges land in the
    // registry in series order whatever the task schedule was.
    for (const DeltaSeries &s : series)
        reg.setGauge("sweep." + s.setName + ".geomean_delta_percent",
                     s.geomeanDeltaPercent());
    return series;
}

double
writebackLoadFraction(const CvpTrace &trace)
{
    std::uint64_t wb_loads = 0;
    for (const CvpRecord &rec : trace)
        if (rec.cls == InstClass::Load &&
            Cvp2ChampSim::inferBaseUpdate(rec).kind != BaseUpdateKind::None)
            ++wb_loads;
    return trace.empty() ? 0.0
                         : static_cast<double>(wb_loads) /
                               static_cast<double>(trace.size());
}

std::string
cell(double v, int width, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%*.*f", width, precision, v);
    return buf;
}

std::string
cell(const std::string &s, int width)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%-*s", width, s.c_str());
    return buf;
}

} // namespace trb
