#include "experiments/experiment.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "obs/metrics.hh"
#include "obs/profile.hh"
#include "obs/span.hh"
#include "par/thread_pool.hh"
#include "resil/checkpoint.hh"
#include "resil/fault.hh"
#include "resil/retry.hh"
#include "store/store.hh"
#include "synth/generator.hh"

namespace trb
{

const std::vector<NamedSet> &
figureOneSets()
{
    static const std::vector<NamedSet> sets = {
        {"mem-regs", kImpMemRegs},
        {"base-update", kImpBaseUpdate},
        {"mem-footprint", kImpMemFootprint},
        {"call-stack", kImpCallStack},
        {"branch-regs", kImpBranchRegs},
        {"flag-reg", kImpFlagReg},
        {"Memory", kMemoryImps},
        {"Branch", kBranchImps},
        {"All", kAllImps},
    };
    return sets;
}

std::size_t
suiteCount(const std::vector<TraceSpec> &suite)
{
    double scale = suiteScaleFromEnv();
    std::size_t count = std::max<std::size_t>(
        1, static_cast<std::size_t>(scale * double(suite.size()) + 0.5));
    return std::min(count, suite.size());
}

namespace
{

/**
 * Produce one suite trace, routed through the fault injector: a flaky
 * affliction fails transiently before generation, and a corrupting
 * affliction round-trips the generated trace through its serialised
 * form, damages the bytes, and re-parses -- so synthetic sweeps
 * exercise exactly the validation a file-backed reader would.  Clean
 * traces (and all traces with TRB_FAULT unset) skip the round-trip.
 */
Expected<CvpTrace>
generateTraceWithFaults(const TraceSpec &spec)
{
    resil::FaultInjector &injector = resil::FaultInjector::global();
    if (injector.enabled() && injector.shouldFailTransiently(spec.name))
        return Status::ioError("injected transient failure producing trace")
            .at(spec.name);
    CvpTrace trace = [&] {
        obs::ScopeTimer timer("generate");
        timer.setItems(spec.length);
        TraceGenerator gen(spec.params);
        return gen.generate(spec.length);
    }();
    if (injector.enabled()) {
        resil::FaultPlan plan = injector.plan(spec.name);
        if (plan.corrupting()) {
            std::vector<std::uint8_t> bytes = serializeCvpTrace(trace);
            plan.corruptBuffer(bytes);
            return parseCvpTrace(bytes.data(), bytes.size(), spec.name);
        }
    }
    return trace;
}

} // namespace

void
forEachTrace(const std::vector<TraceSpec> &suite,
             const std::function<void(std::size_t, const TraceSpec &,
                                      const CvpTrace &)> &fn,
             resil::FailureReport *failures)
{
    if (!failures)
        failures = &resil::FailureReport::global();
    const std::size_t count = suiteCount(suite);
    par::ThreadPool &pool = par::ThreadPool::global();
    obs::SuiteProgress progress("suite", count);
    const resil::RetryPolicy policy = resil::RetryPolicy::fromEnv();
    const std::size_t preexisting = failures->size();
    pool.parallelFor(count, [&](std::size_t i) {
        // One timeline span per trace on its worker's lane (generation,
        // retries and the caller's fn all inside it).
        obs::SpanScope trace_span("trace." + suite[i].name, "trace");
        // Per-worker throughput shows up in the phase profile as
        // worker.<id>; skipped in serial mode so TRB_JOBS=1 reports
        // exactly what the serial harness always reported.
        std::unique_ptr<obs::ScopeTimer> worker_timer;
        if (pool.jobs() > 1)
            worker_timer = std::make_unique<obs::ScopeTimer>(
                "worker." + std::to_string(par::workerId()));
        Expected<CvpTrace> trace =
            resil::withRetries(policy, suite[i].name, [&] {
                return generateTraceWithFaults(suite[i]);
            });
        if (!trace.ok()) {
            // Retryable errors were retried to exhaustion; anything
            // else failed on its single attempt.
            unsigned attempts =
                trace.status().retryable() ? policy.maxAttempts : 1;
            trb_warn("quarantining trace ", suite[i].name, ": ",
                     trace.status().toString());
            failures->add(
                {suite[i].name, i, attempts, trace.status()});
            progress.step(i, 0);
            return;
        }
        if (worker_timer)
            worker_timer->setItems(trace.value().size());
        trace_span.setItems(trace.value().size());
        fn(i, suite[i], trace.value());
        progress.step(i, trace.value().size());
    });
    if (failures->size() > preexisting)
        trb_warn("suite completed with quarantines -- ",
                 failures->summary());
}

double
DeltaSeries::geomeanDeltaPercent() const
{
    // Quarantined traces leave NaN slots; aggregate over the rest.
    std::vector<double> finite;
    finite.reserve(ratio.size());
    for (double r : ratio)
        if (std::isfinite(r))
            finite.push_back(r);
    if (finite.empty())
        return 0.0;
    return 100.0 * (geomean(finite) - 1.0);
}

unsigned
DeltaSeries::countAbove(double percent) const
{
    unsigned n = 0;
    for (double r : ratio)
        if (std::isfinite(r) && std::fabs(r - 1.0) * 100.0 > percent)
            ++n;
    return n;
}

namespace
{

/**
 * Identity of a sweep for checkpoint purposes: the visited suite (names
 * and lengths), the improvement sets, and the core configuration.  Two
 * runs with the same signature compute the same cells, so resuming one
 * from the other's manifest is sound; anything else starts fresh.
 */
std::string
sweepSignature(const std::vector<TraceSpec> &suite,
               const std::vector<NamedSet> &sets, const CoreParams &params,
               std::size_t count)
{
    std::string ident = "v1;n" + std::to_string(count) + ";";
    for (std::size_t i = 0; i < count && i < suite.size(); ++i)
        ident += suite[i].name + ":" +
                 std::to_string(suite[i].length) + ";";
    for (const NamedSet &s : sets)
        ident += std::string(s.name) + ";";
    for (unsigned v :
         {params.fetchWidth, params.issueWidth, params.retireWidth,
          params.robSize, params.frontendDepth, params.mispredictPenalty,
          params.decodeRedirectPenalty, params.ftqLookahead,
          static_cast<unsigned>(params.decoupledFrontEnd),
          static_cast<unsigned>(params.idealTargets),
          static_cast<unsigned>(params.rules),
          static_cast<unsigned>(params.dirPred),
          static_cast<unsigned>(params.btbEntries), params.btbWays,
          static_cast<unsigned>(params.rasEntries)})
        ident += std::to_string(v) + ",";
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : ident)
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
bitsDouble(std::uint64_t bits)
{
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

} // namespace

std::vector<DeltaSeries>
runImprovementSweep(const std::vector<TraceSpec> &suite,
                    const std::vector<NamedSet> &sets,
                    const CoreParams &params,
                    std::vector<SimStats> *baseline_out,
                    resil::FailureReport *failures)
{
    const std::size_t count = suiteCount(suite);
    std::vector<DeltaSeries> series(sets.size());
    for (std::size_t k = 0; k < sets.size(); ++k) {
        series[k].setName = sets[k].name;
        series[k].ratio.assign(count,
                               std::numeric_limits<double>::quiet_NaN());
    }
    if (baseline_out)
        baseline_out->assign(count, SimStats{});

    // Resumable sweeps: completed cells come back from the manifest as
    // exact bit patterns instead of being simulated again.  Quarantined
    // cells are never recorded, so a rerun retries (and, fault plans
    // being deterministic, re-quarantines) them.
    std::unique_ptr<resil::Checkpoint> checkpoint = resil::Checkpoint::
        fromEnv(sweepSignature(suite, sets, params, count));

    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    par::ThreadPool &pool = par::ThreadPool::global();
    const bool storing = store::Store::global() != nullptr;
    obs::SpanScope sweep_span("sweep", "sweep");
    forEachTrace(
        suite,
        [&](std::size_t i, const TraceSpec &, const CvpTrace &cvp) {
            const std::string cell_tag = "t" + std::to_string(i);
            // One digest serves this trace's whole row of store
            // lookups (base + every improvement set).
            store::Digest cvp_digest;
            if (storing)
                cvp_digest = store::digestCvpTrace(cvp);
            const store::Digest *digest_ptr =
                storing ? &cvp_digest : nullptr;
            SimStats base;
            bool restored = false;
            if (checkpoint) {
                std::vector<std::uint64_t> bits;
                restored = checkpoint->lookup(cell_tag + ".base", bits) &&
                           SimStats::fromBits(bits, base);
            }
            if (!restored) {
                base = simulate(cvp, {.imps = kImpNone,
                                      .params = params,
                                      .cvpDigest = digest_ptr})
                           .stats;
                if (checkpoint)
                    checkpoint->record(cell_tag + ".base", base.toBits());
            }
            if (baseline_out)
                (*baseline_out)[i] = base;
            // Buffer this task's gauges and flush them in one batch at
            // task end, so workers contend on the registry once per
            // trace rather than once per metric (micro_components
            // benchmarks the alternatives).
            obs::ThreadMetricsBuffer metrics(reg);
            const std::string trace_tag = "trace" + std::to_string(i);
            metrics.set("sweep.baseline." + trace_tag + ".ipc",
                        base.ipc());
            // One task per (trace x improvement set): the inner loop
            // rides the same work-stealing pool, so idle workers pick
            // up sets of the trace another worker generated.
            pool.parallelFor(sets.size(), [&](std::size_t k) {
                const std::string cell =
                    cell_tag + ".s" + std::to_string(k);
                if (checkpoint) {
                    std::vector<std::uint64_t> bits;
                    if (checkpoint->lookup(cell, bits) &&
                        bits.size() == 1) {
                        series[k].ratio[i] = bitsDouble(bits[0]);
                        return;
                    }
                }
                obs::ScopeTimer set_timer(std::string("set.") +
                                          sets[k].name);
                set_timer.setItems(cvp.size());
                SimStats s = simulate(cvp, {.imps = sets[k].set,
                                            .params = params,
                                            .cvpDigest = digest_ptr})
                                 .stats;
                series[k].ratio[i] = s.ipc() / base.ipc();
                if (checkpoint)
                    checkpoint->record(
                        cell, {doubleBits(series[k].ratio[i])});
            });
            for (std::size_t k = 0; k < sets.size(); ++k)
                metrics.set("sweep." + series[k].setName + "." +
                                trace_tag + ".ipc_ratio",
                            series[k].ratio[i]);
        },
        failures);
    // Post-join, single-threaded: the summary gauges land in the
    // registry in series order whatever the task schedule was.
    std::uint64_t swept_items = 0;
    std::vector<std::uint64_t> ratio_bits;
    for (const DeltaSeries &s : series) {
        reg.setGauge("sweep." + s.setName + ".geomean_delta_percent",
                     s.geomeanDeltaPercent());
        for (double r : s.ratio)
            ratio_bits.push_back(doubleBits(r));
        swept_items += s.ratio.size();
    }
    // Bit-exact provenance of the whole result matrix: two runs that
    // computed the same ratios -- whatever the TRB_JOBS schedule --
    // publish the same digest, so a perf diff can also prove the
    // candidate still computes the baseline's numbers.
    reg.setCounter("sweep.ratios_digest",
                   store::digestBytes(ratio_bits.data(),
                                      ratio_bits.size() *
                                          sizeof(std::uint64_t))
                       .lo);
    sweep_span.setItems(swept_items);
    return series;
}

double
writebackLoadFraction(const CvpTrace &trace)
{
    std::uint64_t wb_loads = 0;
    for (const CvpRecord &rec : trace)
        if (rec.cls == InstClass::Load &&
            Cvp2ChampSim::inferBaseUpdate(rec).kind != BaseUpdateKind::None)
            ++wb_loads;
    return trace.empty() ? 0.0
                         : static_cast<double>(wb_loads) /
                               static_cast<double>(trace.size());
}

std::string
cell(double v, int width, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%*.*f", width, precision, v);
    return buf;
}

std::string
cell(const std::string &s, int width)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%-*s", width, s.c_str());
    return buf;
}

} // namespace trb
