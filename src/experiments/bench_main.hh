/**
 * @file
 * The shared main() of every bench binary.
 *
 * Each bench used to open with a hand-rolled title printf and close with
 * the same obs::finish() / resil::harnessExitCode() tail; runBench()
 * owns both, so a bench main is just its experiment body:
 *
 *     int main()
 *     {
 *         return trb::runBench("fig1",
 *             strprintf("Figure N: ... (%zu traces)", suite.size()),
 *             [&] { ... printf rows ... });
 *     }
 *
 * The title is printed first (followed by a blank line, the historical
 * layout), the body runs under a wall-clock timer, and the tail
 * publishes the observability artifacts -- obs::finish(), the
 * BENCH_<name>.json run manifest (the repo's tracked instr/s baseline;
 * see docs/observability.md), and the heartbeat sampler started before
 * the body when TRB_OBS_SAMPLE_MS is set -- then folds any quarantined
 * traces into the exit code.  The printed *stdout* bytes are identical
 * to the pre-runBench binaries regardless of which telemetry is
 * enabled, which is what the determinism CI diffs against.
 */

#ifndef TRB_EXPERIMENTS_BENCH_MAIN_HH
#define TRB_EXPERIMENTS_BENCH_MAIN_HH

#include <functional>
#include <string>

namespace trb
{

/**
 * Run one bench binary: print @p title (skipped when empty), start the
 * env-gated telemetry (sampler, span timeline), execute @p body, then
 * obs::finish(), write BENCH_<name>.json and return
 * resil::harnessExitCode().  @p name is the manifest key -- short,
 * stable, filesystem-safe ("fig1", "tab3").
 */
int runBench(const std::string &name, const std::string &title,
             const std::function<void()> &body);

} // namespace trb

#endif // TRB_EXPERIMENTS_BENCH_MAIN_HH
