/**
 * @file
 * The shared main() of every bench binary.
 *
 * Each bench used to open with a hand-rolled title printf and close with
 * the same obs::finish() / resil::harnessExitCode() tail; runBench()
 * owns both, so a bench main is just its experiment body:
 *
 *     int main()
 *     {
 *         return trb::runBench(
 *             strprintf("Figure N: ... (%zu traces)", suite.size()),
 *             [&] { ... printf rows ... });
 *     }
 *
 * The title is printed first (followed by a blank line, the historical
 * layout), the body runs, and the tail publishes the observability
 * artifacts and folds any quarantined traces into the exit code.  The
 * printed bytes are identical to the pre-runBench binaries, which is
 * what the determinism CI diffs against.
 */

#ifndef TRB_EXPERIMENTS_BENCH_MAIN_HH
#define TRB_EXPERIMENTS_BENCH_MAIN_HH

#include <functional>
#include <string>

namespace trb
{

/**
 * Run one bench binary: print @p title (skipped when empty), execute
 * @p body, then obs::finish() and return resil::harnessExitCode().
 */
int runBench(const std::string &title,
             const std::function<void()> &body);

} // namespace trb

#endif // TRB_EXPERIMENTS_BENCH_MAIN_HH
