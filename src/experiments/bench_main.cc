#include "experiments/bench_main.hh"

#include <cstdio>

#include "obs/metrics.hh"
#include "resil/failure.hh"

namespace trb
{

int
runBench(const std::string &title, const std::function<void()> &body)
{
    if (!title.empty())
        std::printf("%s\n\n", title.c_str());
    body();
    obs::finish();
    return resil::harnessExitCode();
}

} // namespace trb
