#include "experiments/bench_main.hh"

#include <chrono>
#include <cstdio>

#include "obs/bench_record.hh"
#include "obs/metrics.hh"
#include "obs/sampler.hh"
#include "obs/span.hh"
#include "resil/failure.hh"

namespace trb
{

int
runBench(const std::string &name, const std::string &title,
         const std::function<void()> &body)
{
    const auto start = std::chrono::steady_clock::now();
    std::unique_ptr<obs::Sampler> sampler = obs::Sampler::startFromEnv();

    if (!title.empty())
        std::printf("%s\n\n", title.c_str());
    {
        obs::SpanScope span("bench." + name, "bench");
        body();
    }

    // Stop sampling before the manifest so its final line sees the
    // complete registry, and before finish() so the dumps are stable.
    if (sampler)
        sampler->stop();
    obs::finish();

    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    obs::writeBenchRecord(name, wall);
    return resil::harnessExitCode();
}

} // namespace trb
