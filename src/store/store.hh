/**
 * @file
 * trb::store -- a content-addressed on-disk artifact cache
 * (TRB_STORE=<dir>) that memoizes the two expensive pipeline stages
 * across processes:
 *
 *  - converted ChampSim traces, stored as the raw 64-byte record array
 *    and read back zero-copy through an mmap'd ChampSimView;
 *  - simulation results, stored as the exact u64 bit patterns of
 *    SimStats::toBits(), so a cache hit reproduces the miss
 *    byte-for-byte.
 *
 * Keys are canonical strings composed by the simulator facade (CVP
 * content digest + improvement set + converter version for traces, plus
 * core config, warm-up bits and prefetcher id for results); the file
 * name is the digest of the key.  Every artifact carries its key and a
 * payload digest in a fixed 64-byte header, both re-checked on load --
 * an artifact whose magic, key or digest mismatches is *quarantined*
 * (renamed to <file>.bad, classified through the trb::resil taxonomy)
 * and treated as a miss, so a damaged store can slow a run down but
 * never corrupt it.  TRB_FAULT injection is honoured on the load path,
 * exactly like the trace readers.
 *
 * Writes are crash- and race-safe: artifacts are staged to a temporary
 * file and atomically rename(2)d into place, so concurrent processes
 * warming the same store only ever observe whole artifacts.  Loads
 * touch the artifact's mtime, making gc(maxBytes) LRU eviction.
 *
 * Counters: store.{hits,misses,bytes,writes,write_bytes,quarantined,
 * evicted} in the global metrics registry.
 */

#ifndef TRB_STORE_STORE_HH
#define TRB_STORE_STORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "resil/status.hh"
#include "store/digest.hh"
#include "trace/champsim_trace.hh"

namespace trb
{
namespace store
{

/** On-disk artifact kinds. */
enum ArtifactKind : std::uint32_t
{
    kTraceArtifact = 1,      //!< converted ChampSim trace (record array)
    kStatsArtifact = 2,      //!< u64 bit-pattern vector (SimStats::toBits)
    kRegionBbvArtifact = 3,  //!< per-region basic-block vectors (trb::flow)
    kRegionMavArtifact = 4,  //!< per-region memory-access vectors (trb::flow)
};

/** Store format version; bump on any layout change. */
constexpr std::uint32_t kStoreFormatVersion = 1;

/** A read-only mmap of one file.  Move-only; unmaps on destruction. */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile();
    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /**
     * Map @p path read-only.  A missing file is an IoError whose
     * message starts with "no such artifact" (the caller's miss case);
     * anything else is a real I/O failure.
     */
    Status open(const std::string &path);

    const std::uint8_t *data() const { return data_; }
    std::size_t size() const { return size_; }

  private:
    void reset();

    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
};

/**
 * A loaded converted-trace artifact.  Holds either the mmap (zero-copy
 * fast path) or an owned buffer (fault-injected loads); view() stays
 * valid for the handle's lifetime.
 */
class TraceHandle
{
  public:
    ChampSimView view() const
    {
        return {reinterpret_cast<const ChampSimRecord *>(payload_),
                records_};
    }

  private:
    friend class Store;

    MappedFile map_;
    std::vector<std::uint8_t> owned_;
    const std::uint8_t *payload_ = nullptr;
    std::size_t records_ = 0;
};

/** One artifact as listed by ls/verify. */
struct ArtifactInfo
{
    std::string file;          //!< file name inside the store
    std::uint64_t bytes = 0;   //!< whole file size
    std::uint32_t kind = 0;    //!< ArtifactKind (0 when unreadable)
    std::string key;           //!< canonical key (empty when unreadable)
    std::int64_t mtimeNs = 0;  //!< modification time (eviction order)
    Status status;             //!< non-OK when the artifact is damaged
};

/** The content-addressed artifact cache rooted at one directory. */
class Store
{
  public:
    /** Open (creating if needed) the store at @p dir. */
    explicit Store(std::string dir);

    Store(const Store &) = delete;
    Store &operator=(const Store &) = delete;

    /**
     * The process-wide store from TRB_STORE (or the test override);
     * nullptr when no store is configured.  Sized once, at first use.
     */
    static Store *global();

    /**
     * Point global() at @p dir for tests (empty string disables).
     * Replaces the cached instance; only call from single-threaded test
     * set-up.
     */
    static void setDirForTesting(const std::string &dir);

    const std::string &dir() const { return dir_; }

    /**
     * Fetch the converted trace under @p key.  True on hit; false on
     * miss or on a damaged artifact (which is quarantined first).
     */
    bool loadTrace(const std::string &key, TraceHandle &out);

    /** Publish a converted trace under @p key (best-effort). */
    void putTrace(const std::string &key, const ChampSimTrace &trace);

    /** Fetch a u64 bit-pattern artifact (simulation stats). */
    bool loadBits(const std::string &key, std::vector<std::uint64_t> &out);

    /** Publish a u64 bit-pattern artifact under @p key (best-effort). */
    void putBits(const std::string &key,
                 const std::vector<std::uint64_t> &bits);

    /**
     * Kind-explicit u64 bit-pattern fetch, for the non-stats vector
     * artifacts (region BBV/MAV matrices).  @p kind must be a
     * bit-pattern ArtifactKind, never kTraceArtifact.
     */
    bool loadBits(std::uint32_t kind, const std::string &key,
                  std::vector<std::uint64_t> &out);

    /** Kind-explicit u64 bit-pattern publish (best-effort). */
    void putBits(std::uint32_t kind, const std::string &key,
                 const std::vector<std::uint64_t> &bits);

    /** Every artifact in the store, sorted by file name. */
    std::vector<ArtifactInfo> list() const;

    struct GcResult
    {
        std::uint64_t scanned = 0;        //!< artifacts examined
        std::uint64_t totalBytes = 0;     //!< store size before eviction
        std::uint64_t evicted = 0;        //!< artifacts removed
        std::uint64_t evictedBytes = 0;
    };

    /**
     * Evict least-recently-used artifacts (oldest mtime first, file
     * name as the tie-break) until the store is at most @p maxBytes.
     * Stale temporaries and quarantined .bad files are always removed.
     */
    GcResult gc(std::uint64_t maxBytes);

    struct VerifyResult
    {
        std::uint64_t checked = 0;
        std::uint64_t ok = 0;
        std::vector<ArtifactInfo> bad;   //!< quarantined artifacts
    };

    /** Re-digest every artifact; quarantine the damaged ones. */
    VerifyResult verify();

    /** File path an artifact of @p kind under @p key would live at. */
    std::string artifactPath(std::uint32_t kind,
                             const std::string &key) const;

  private:
    bool loadArtifact(std::uint32_t kind, const std::string &key,
                      MappedFile &map, std::vector<std::uint8_t> &owned,
                      const std::uint8_t *&payload,
                      std::size_t &payloadBytes);
    void putArtifact(std::uint32_t kind, const std::string &key,
                     const void *payload, std::size_t payloadBytes);
    void quarantine(const std::string &path, const Status &status);

    std::string dir_;
};

} // namespace store
} // namespace trb

#endif // TRB_STORE_STORE_HH
