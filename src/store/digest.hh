/**
 * @file
 * 128-bit content digests for the artifact store.
 *
 * The store is content-addressed: artifact file names are digests of
 * canonical key strings, and every artifact's payload digest is stored
 * in its header and re-checked on load.  The hash is a fixed, seeded
 * 2x64-bit multiply-rotate-xor construction -- not cryptographic, but
 * stable across processes and platforms (the payloads it hashes are
 * already little-endian on-disk formats), which is the property the
 * cache keys need.  Changing the mixing constants invalidates every
 * store on disk, so treat them like an on-disk format.
 */

#ifndef TRB_STORE_DIGEST_HH
#define TRB_STORE_DIGEST_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "trace/champsim_trace.hh"
#include "trace/cvp_trace.hh"

namespace trb
{
namespace store
{

/** A 128-bit content digest. */
struct Digest
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const Digest &other) const = default;

    /** 32 lower-case hex characters, hi first. */
    std::string hex() const;
};

/** Streaming digest builder. */
class Hasher
{
  public:
    explicit Hasher(std::uint64_t seed = 0);

    /** Absorb @p size bytes. */
    void update(const void *data, std::size_t size);

    /** Finalize (idempotent only if no further update() follows). */
    Digest finish();

  private:
    void absorbWord(std::uint64_t word);

    std::uint64_t a_;
    std::uint64_t b_;
    std::uint64_t length_ = 0;
    std::uint8_t tail_[8] = {};
    std::size_t tailLen_ = 0;
};

/** One-shot digest of a byte buffer. */
Digest digestBytes(const void *data, std::size_t size,
                   std::uint64_t seed = 0);

/** One-shot digest of a string (key canonicalisation). */
Digest digestString(const std::string &text, std::uint64_t seed = 0);

/**
 * Content digest of a CVP-1 trace: hashes the canonical serialised form
 * (the same bytes tryWriteCvpTrace produces), so the digest identifies
 * the trace content regardless of how it was produced.
 */
Digest digestCvpTrace(const CvpTrace &trace);

/** Content digest of a converted trace (the raw 64-byte records). */
Digest digestChampSimTrace(ChampSimView trace);

} // namespace store
} // namespace trb

#endif // TRB_STORE_DIGEST_HH
