#include "store/store.hh"

#include <atomic>
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "obs/metrics.hh"
#include "resil/fault.hh"

namespace fs = std::filesystem;

namespace trb
{
namespace store
{

namespace
{

constexpr char kMagic[8] = {'T', 'R', 'B', 'S', 'T', 'O', 'R', '1'};
constexpr std::size_t kPayloadAlign = 64;

/** The fixed on-disk artifact header.  Exactly 64 bytes. */
struct ArtifactHeader
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t kind;
    std::uint64_t payloadBytes;
    std::uint64_t digestHi;
    std::uint64_t digestLo;
    std::uint32_t keyBytes;
    std::uint32_t payloadOffset;
    std::uint64_t reserved[2];
};
static_assert(sizeof(ArtifactHeader) == 64,
              "artifact header must stay 64 bytes (on-disk format)");

const char *
kindPrefix(std::uint32_t kind)
{
    switch (kind) {
      case kTraceArtifact: return "tr-";
      case kRegionBbvArtifact: return "bv-";
      case kRegionMavArtifact: return "mv-";
      default: return "st-";
    }
}

std::size_t
alignedPayloadOffset(std::size_t key_bytes)
{
    return (sizeof(ArtifactHeader) + key_bytes + kPayloadAlign - 1) /
           kPayloadAlign * kPayloadAlign;
}

/**
 * Full structural + content validation of one artifact image.  @p key
 * is empty when the embedded key is not known in advance (verify);
 * otherwise a key mismatch is a corruption, not a miss -- the file name
 * is the digest of the key, so disagreement means a damaged or
 * misplaced artifact.
 */
Status
validateArtifact(const std::uint8_t *data, std::size_t size,
                 std::uint32_t kind, const std::string &key,
                 std::size_t &payload_off, std::size_t &payload_bytes)
{
    if (size < sizeof(ArtifactHeader))
        return Status::truncated("artifact shorter than its header")
            .rule("store.header");
    ArtifactHeader hdr;
    std::memcpy(&hdr, data, sizeof(hdr));
    if (std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0)
        return Status::badMagic("not a TRB store artifact")
            .rule("store.magic");
    if (hdr.version != kStoreFormatVersion)
        return Status::corrupt("artifact format version " +
                               std::to_string(hdr.version) +
                               " (expected " +
                               std::to_string(kStoreFormatVersion) + ")")
            .rule("store.version");
    if (hdr.kind != kind)
        return Status::corrupt("artifact kind " + std::to_string(hdr.kind) +
                               " under a kind-" + std::to_string(kind) +
                               " name")
            .rule("store.kind");
    if (hdr.payloadOffset < sizeof(ArtifactHeader) + hdr.keyBytes ||
        hdr.payloadOffset > size)
        return Status::corrupt("payload offset out of range")
            .rule("store.offset");
    if (!key.empty()) {
        if (hdr.keyBytes != key.size() ||
            std::memcmp(data + sizeof(ArtifactHeader), key.data(),
                        key.size()) != 0)
            return Status::corrupt("artifact key does not match its name")
                .rule("store.key");
    }
    if (hdr.payloadOffset + hdr.payloadBytes > size)
        return Status::truncated("artifact payload cut short")
            .rule("store.payload");
    if (hdr.payloadOffset + hdr.payloadBytes < size)
        return Status::corrupt("trailing bytes after the payload")
            .rule("store.payload");
    if (kind == kTraceArtifact &&
        hdr.payloadBytes % sizeof(ChampSimRecord) != 0)
        return Status::corrupt("trace payload is not whole records")
            .rule("store.record-size");
    Digest digest = digestBytes(data + hdr.payloadOffset,
                                static_cast<std::size_t>(hdr.payloadBytes));
    if (digest.hi != hdr.digestHi || digest.lo != hdr.digestLo)
        return Status::corrupt("payload digest mismatch")
            .rule("store.digest");
    payload_off = hdr.payloadOffset;
    payload_bytes = static_cast<std::size_t>(hdr.payloadBytes);
    return Status();
}

/** Embedded key of a validated-enough header (verify/ls). */
bool
embeddedKey(const std::uint8_t *data, std::size_t size, std::string &key,
            std::uint32_t &kind)
{
    if (size < sizeof(ArtifactHeader))
        return false;
    ArtifactHeader hdr;
    std::memcpy(&hdr, data, sizeof(hdr));
    if (std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0)
        return false;
    if (sizeof(ArtifactHeader) + hdr.keyBytes > size)
        return false;
    key.assign(reinterpret_cast<const char *>(data) +
                   sizeof(ArtifactHeader),
               hdr.keyBytes);
    kind = hdr.kind;
    return true;
}

std::int64_t
mtimeNanos(const fs::path &path)
{
    std::error_code ec;
    auto t = fs::last_write_time(path, ec);
    if (ec)
        return 0;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               t.time_since_epoch())
        .count();
}

bool
readWholeFile(const std::string &path, std::vector<std::uint8_t> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    in.seekg(0, std::ios::end);
    std::streamoff len = in.tellg();
    if (len < 0)
        return false;
    in.seekg(0);
    out.resize(static_cast<std::size_t>(len));
    if (len > 0)
        in.read(reinterpret_cast<char *>(out.data()), len);
    return static_cast<bool>(in);
}

void
bump(const char *path, std::uint64_t delta = 1)
{
    obs::MetricsRegistry::global().addCounter(path, delta);
}

std::mutex g_global_mutex;
std::unique_ptr<Store> g_global_store;      // NOLINT: process singleton
bool g_global_init = false;                 // NOLINT
std::string g_test_dir;                     // NOLINT
bool g_test_dir_set = false;                // NOLINT

} // namespace

// ---------------------------------------------------------------------
// MappedFile

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile &&other) noexcept
    : data_(other.data_), size_(other.size_)
{
    other.data_ = nullptr;
    other.size_ = 0;
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        reset();
        data_ = other.data_;
        size_ = other.size_;
        other.data_ = nullptr;
        other.size_ = 0;
    }
    return *this;
}

void
MappedFile::reset()
{
    if (data_)
        ::munmap(const_cast<std::uint8_t *>(data_), size_);
    data_ = nullptr;
    size_ = 0;
}

Status
MappedFile::open(const std::string &path)
{
    reset();
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return Status::ioError(std::string("cannot open artifact: ") +
                               std::strerror(errno))
            .at(path);
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        return Status::ioError(std::string("cannot stat artifact: ") +
                               std::strerror(errno))
            .at(path);
    }
    if (st.st_size == 0) {
        ::close(fd);
        return Status::truncated("empty artifact file")
            .at(path)
            .rule("store.header");
    }
    void *mapped = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                          PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (mapped == MAP_FAILED)
        return Status::ioError(std::string("mmap failed: ") +
                               std::strerror(errno))
            .at(path);
    data_ = static_cast<const std::uint8_t *>(mapped);
    size_ = static_cast<std::size_t>(st.st_size);
    return Status();
}

// ---------------------------------------------------------------------
// Store

Store::Store(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        trb_warn("store: cannot create ", dir_, ": ", ec.message());
}

Store *
Store::global()
{
    std::lock_guard<std::mutex> lock(g_global_mutex);
    if (!g_global_init) {
        g_global_init = true;
        std::string dir =
            g_test_dir_set ? g_test_dir : env::str("TRB_STORE");
        if (!dir.empty()) {
            g_global_store = std::make_unique<Store>(dir);
            trb_inform("store: artifact cache at ", dir);
        }
    }
    return g_global_store.get();
}

void
Store::setDirForTesting(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(g_global_mutex);
    g_test_dir = dir;
    g_test_dir_set = true;
    g_global_init = true;
    g_global_store = dir.empty() ? nullptr : std::make_unique<Store>(dir);
}

std::string
Store::artifactPath(std::uint32_t kind, const std::string &key) const
{
    return dir_ + "/" + kindPrefix(kind) + digestString(key).hex() +
           ".trb";
}

void
Store::quarantine(const std::string &path, const Status &status)
{
    trb_warn("store: quarantining damaged artifact ", path, ": ",
             status.toString());
    std::string bad = path + ".bad";
    if (std::rename(path.c_str(), bad.c_str()) != 0)
        std::remove(path.c_str());
    bump("store.quarantined");
}

bool
Store::loadArtifact(std::uint32_t kind, const std::string &key,
                    MappedFile &map, std::vector<std::uint8_t> &owned,
                    const std::uint8_t *&payload,
                    std::size_t &payloadBytes)
{
    std::string path = artifactPath(kind, key);
    if (::access(path.c_str(), F_OK) != 0) {
        bump("store.misses");
        return false;
    }

    const std::uint8_t *data = nullptr;
    std::size_t size = 0;
    resil::FaultInjector &injector = resil::FaultInjector::global();
    if (injector.enabled()) {
        // Fault-injected loads go through an owned buffer so the plan
        // can damage the bytes -- the validation below must catch it.
        std::string name = path.substr(path.rfind('/') + 1);
        if (injector.shouldFailTransiently(name)) {
            bump("store.misses");
            return false;   // a miss re-simulates: always safe
        }
        if (!readWholeFile(path, owned)) {
            bump("store.misses");
            return false;
        }
        resil::FaultPlan plan = injector.plan(name);
        if (plan.corrupting())
            plan.corruptBuffer(owned);
        data = owned.data();
        size = owned.size();
    } else {
        Status mapped = map.open(path);
        if (!mapped.ok()) {
            trb_warn("store: ", mapped.toString());
            bump("store.misses");
            return false;
        }
        data = map.data();
        size = map.size();
    }

    std::size_t off = 0;
    std::size_t bytes = 0;
    Status valid = validateArtifact(data, size, kind, key, off, bytes);
    if (!valid.ok()) {
        quarantine(path, valid.at(path));
        bump("store.misses");
        return false;
    }
    payload = data + off;
    payloadBytes = bytes;
    bump("store.hits");
    bump("store.bytes", bytes);
    // Touch the artifact so gc() evicts in least-recently-used order.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    return true;
}

void
Store::putArtifact(std::uint32_t kind, const std::string &key,
                   const void *payload, std::size_t payloadBytes)
{
    std::size_t off = alignedPayloadOffset(key.size());
    std::vector<std::uint8_t> blob(off + payloadBytes, 0);

    Digest digest = digestBytes(payload, payloadBytes);
    ArtifactHeader hdr = {};
    std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
    hdr.version = kStoreFormatVersion;
    hdr.kind = kind;
    hdr.payloadBytes = payloadBytes;
    hdr.digestHi = digest.hi;
    hdr.digestLo = digest.lo;
    hdr.keyBytes = static_cast<std::uint32_t>(key.size());
    hdr.payloadOffset = static_cast<std::uint32_t>(off);
    std::memcpy(blob.data(), &hdr, sizeof(hdr));
    std::memcpy(blob.data() + sizeof(hdr), key.data(), key.size());
    std::memcpy(blob.data() + off, payload, payloadBytes);

    // Stage-and-rename: concurrent readers (and a crash mid-write) only
    // ever observe whole artifacts.
    static std::atomic<std::uint64_t> seq{0};
    std::string tmp = dir_ + "/.tmp-" + std::to_string(::getpid()) + "-" +
                      std::to_string(seq.fetch_add(1));
    std::FILE *out = std::fopen(tmp.c_str(), "wb");
    if (!out) {
        trb_warn("store: cannot stage artifact in ", dir_, ": ",
                 std::strerror(errno));
        return;
    }
    bool ok = std::fwrite(blob.data(), 1, blob.size(), out) == blob.size();
    ok = (std::fclose(out) == 0) && ok;
    std::string path = artifactPath(kind, key);
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        trb_warn("store: cannot publish artifact ", path, ": ",
                 std::strerror(errno));
        std::remove(tmp.c_str());
        return;
    }
    bump("store.writes");
    bump("store.write_bytes", blob.size());
}

bool
Store::loadTrace(const std::string &key, TraceHandle &out)
{
    const std::uint8_t *payload = nullptr;
    std::size_t bytes = 0;
    if (!loadArtifact(kTraceArtifact, key, out.map_, out.owned_, payload,
                      bytes))
        return false;
    out.payload_ = payload;
    out.records_ = bytes / sizeof(ChampSimRecord);
    return true;
}

void
Store::putTrace(const std::string &key, const ChampSimTrace &trace)
{
    putArtifact(kTraceArtifact, key, trace.data(),
                trace.size() * sizeof(ChampSimRecord));
}

bool
Store::loadBits(const std::string &key, std::vector<std::uint64_t> &out)
{
    return loadBits(kStatsArtifact, key, out);
}

void
Store::putBits(const std::string &key,
               const std::vector<std::uint64_t> &bits)
{
    putBits(kStatsArtifact, key, bits);
}

bool
Store::loadBits(std::uint32_t kind, const std::string &key,
                std::vector<std::uint64_t> &out)
{
    MappedFile map;
    std::vector<std::uint8_t> owned;
    const std::uint8_t *payload = nullptr;
    std::size_t bytes = 0;
    if (!loadArtifact(kind, key, map, owned, payload, bytes))
        return false;
    if (bytes % sizeof(std::uint64_t) != 0) {
        quarantine(artifactPath(kind, key),
                   Status::corrupt("bit-pattern payload is not whole u64s")
                       .rule("store.record-size"));
        return false;
    }
    out.resize(bytes / sizeof(std::uint64_t));
    std::memcpy(out.data(), payload, bytes);
    return true;
}

void
Store::putBits(std::uint32_t kind, const std::string &key,
               const std::vector<std::uint64_t> &bits)
{
    putArtifact(kind, key, bits.data(),
                bits.size() * sizeof(std::uint64_t));
}

std::vector<ArtifactInfo>
Store::list() const
{
    std::vector<ArtifactInfo> out;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        if (!entry.is_regular_file())
            continue;
        std::string name = entry.path().filename().string();
        if (!endsWith(name, ".trb"))
            continue;
        ArtifactInfo info;
        info.file = name;
        info.bytes = static_cast<std::uint64_t>(entry.file_size());
        info.mtimeNs = mtimeNanos(entry.path());
        std::vector<std::uint8_t> head;
        std::ifstream in(entry.path(), std::ios::binary);
        head.resize(4096);
        in.read(reinterpret_cast<char *>(head.data()),
                static_cast<std::streamsize>(head.size()));
        head.resize(static_cast<std::size_t>(in.gcount()));
        if (!embeddedKey(head.data(), head.size(), info.key, info.kind))
            info.status = Status::corrupt("unreadable artifact header")
                              .at(entry.path().string())
                              .rule("store.header");
        out.push_back(std::move(info));
    }
    std::sort(out.begin(), out.end(),
              [](const ArtifactInfo &a, const ArtifactInfo &b) {
                  return a.file < b.file;
              });
    return out;
}

Store::GcResult
Store::gc(std::uint64_t maxBytes)
{
    GcResult result;
    struct Entry
    {
        fs::path path;
        std::uint64_t bytes;
        std::int64_t mtimeNs;
        std::string name;
    };
    std::vector<Entry> entries;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        if (!entry.is_regular_file())
            continue;
        std::string name = entry.path().filename().string();
        if (endsWith(name, ".trb")) {
            entries.push_back({entry.path(),
                               static_cast<std::uint64_t>(
                                   entry.file_size()),
                               mtimeNanos(entry.path()), name});
        } else {
            // Stale temporaries and quarantined artifacts never earn
            // their keep: always collect them.
            fs::remove(entry.path(), ec);
        }
    }
    result.scanned = entries.size();
    for (const Entry &e : entries)
        result.totalBytes += e.bytes;

    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtimeNs != b.mtimeNs ? a.mtimeNs < b.mtimeNs
                                                : a.name < b.name;
              });
    std::uint64_t remaining = result.totalBytes;
    for (const Entry &e : entries) {
        if (remaining <= maxBytes)
            break;
        if (fs::remove(e.path, ec)) {
            remaining -= e.bytes;
            ++result.evicted;
            result.evictedBytes += e.bytes;
        }
    }
    if (result.evicted > 0)
        bump("store.evicted", result.evicted);
    return result;
}

Store::VerifyResult
Store::verify()
{
    VerifyResult result;
    for (ArtifactInfo info : list()) {
        ++result.checked;
        std::string path = dir_ + "/" + info.file;
        std::vector<std::uint8_t> bytes;
        Status status;
        if (!info.status.ok()) {
            status = info.status;
        } else if (!readWholeFile(path, bytes)) {
            status = Status::ioError("cannot read artifact").at(path);
        } else {
            std::size_t off = 0;
            std::size_t plen = 0;
            status = validateArtifact(bytes.data(), bytes.size(),
                                      info.kind, info.key, off, plen);
            // The name is the digest of the key: a mismatch means the
            // artifact was renamed or its key bytes were damaged.
            if (status.ok() &&
                path != artifactPath(info.kind, info.key))
                status = Status::corrupt(
                             "artifact name does not match its key")
                             .at(path)
                             .rule("store.key");
        }
        if (status.ok()) {
            ++result.ok;
        } else {
            quarantine(path, status.at(path));
            info.status = status;
            result.bad.push_back(std::move(info));
        }
    }
    return result;
}

} // namespace store
} // namespace trb
