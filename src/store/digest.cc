#include "store/digest.hh"

#include <cstdio>
#include <cstring>

namespace trb
{
namespace store
{

namespace
{

constexpr std::uint64_t kSeedA = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kSeedB = 0xc2b2ae3d27d4eb4fULL;
constexpr std::uint64_t kMulA = 0x9ddfea08eb382d69ULL;
constexpr std::uint64_t kMulB = 0xff51afd7ed558ccdULL;

std::uint64_t
rotl(std::uint64_t v, unsigned s)
{
    return (v << s) | (v >> (64 - s));
}

/** Murmur3-style finalizer: full avalanche on a 64-bit lane. */
std::uint64_t
fmix(std::uint64_t v)
{
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    v *= 0xc4ceb9fe1a85ec53ULL;
    v ^= v >> 33;
    return v;
}

} // namespace

std::string
Digest::hex() const
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

Hasher::Hasher(std::uint64_t seed) : a_(kSeedA ^ seed), b_(kSeedB + seed) {}

void
Hasher::absorbWord(std::uint64_t word)
{
    a_ = rotl((a_ ^ word) * kMulA, 27) + b_;
    b_ = rotl((b_ + word) * kMulB, 31) ^ a_;
}

void
Hasher::update(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    length_ += size;

    if (tailLen_ > 0) {
        while (tailLen_ < sizeof(tail_) && size > 0) {
            tail_[tailLen_++] = *bytes++;
            --size;
        }
        if (tailLen_ < sizeof(tail_))
            return;
        std::uint64_t word = 0;
        std::memcpy(&word, tail_, sizeof(word));
        absorbWord(word);
        tailLen_ = 0;
    }

    while (size >= sizeof(std::uint64_t)) {
        std::uint64_t word = 0;
        std::memcpy(&word, bytes, sizeof(word));
        absorbWord(word);
        bytes += sizeof(word);
        size -= sizeof(word);
    }

    while (size > 0) {
        tail_[tailLen_++] = *bytes++;
        --size;
    }
}

Digest
Hasher::finish()
{
    std::uint64_t a = a_;
    std::uint64_t b = b_;
    if (tailLen_ > 0) {
        // Zero-padded final word; the absorbed length below keeps a
        // padded tail distinct from genuine trailing zero bytes.
        std::uint8_t padded[8] = {};
        std::memcpy(padded, tail_, tailLen_);
        std::uint64_t word = 0;
        std::memcpy(&word, padded, sizeof(word));
        a = rotl((a ^ word) * kMulA, 27) + b;
        b = rotl((b + word) * kMulB, 31) ^ a;
    }
    a ^= length_;
    b += length_;
    Digest d;
    d.hi = fmix(a + b);
    d.lo = fmix(b ^ rotl(a, 23));
    return d;
}

Digest
digestBytes(const void *data, std::size_t size, std::uint64_t seed)
{
    Hasher h(seed);
    h.update(data, size);
    return h.finish();
}

Digest
digestString(const std::string &text, std::uint64_t seed)
{
    return digestBytes(text.data(), text.size(), seed);
}

Digest
digestCvpTrace(const CvpTrace &trace)
{
    std::vector<std::uint8_t> bytes = serializeCvpTrace(trace);
    return digestBytes(bytes.data(), bytes.size());
}

Digest
digestChampSimTrace(ChampSimView trace)
{
    return digestBytes(trace.data(),
                       trace.size() * sizeof(ChampSimRecord));
}

} // namespace store
} // namespace trb
