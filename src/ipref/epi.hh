/**
 * @file
 * EPI (the Entangling Instruction Prefetcher, Ros & Jimborean, IPC-1
 * winner): each miss line is *entangled* with a source line that was
 * fetched far enough in advance to hide the full miss latency.  When the
 * source is fetched again, the entangled destination is prefetched --
 * just in time by construction.
 */

#ifndef TRB_IPREF_EPI_HH
#define TRB_IPREF_EPI_HH

#include <array>

#include "ipref/instr_prefetcher.hh"

namespace trb
{

/** Entangling instruction prefetcher. */
class EpiPrefetcher : public InstrPrefetcher
{
  public:
    void
    onFetch(Addr ip, bool hit, Cycle now, PrefetchPort &port) override
    {
        Addr line = lineAddr(ip);
        if (line != lastLine_) {
            lastLine_ = line;

            // Record the fetch in the history ring (for entangling).
            history_[histHead_ % history_.size()] = {line, now};
            ++histHead_;

            // Fire the entangled destinations of this source line.
            const Entry &e = table_[index(line)];
            if (e.tag == tagOf(line)) {
                for (unsigned i = 0; i < kDstPerSrc; ++i)
                    if (e.dst[i] != 0)
                        port.issue(e.dst[i], now);
            }
        }

        if (hit)
            return;

        // Entangle: find a source fetched at least kLatency cycles ago.
        Addr source = 0;
        for (std::size_t back = 1; back < history_.size(); ++back) {
            const Fetch &f =
                history_[(histHead_ + history_.size() - 1 - back) %
                         history_.size()];
            if (f.line == 0 || f.line == line)
                continue;
            if (now - f.cycle >= kLatency) {
                source = f.line;
                break;
            }
        }
        if (source == 0)
            return;
        Entry &e = table_[index(source)];
        if (e.tag != tagOf(source)) {
            e.tag = tagOf(source);
            e.dst.fill(0);
        }
        for (unsigned i = 0; i < kDstPerSrc; ++i)
            if (e.dst[i] == line)
                return;
        e.dst[nextSlot_++ % kDstPerSrc] = line;
    }

    const char *name() const override { return "epi"; }

  private:
    static constexpr unsigned kDstPerSrc = 6;
    static constexpr Cycle kLatency = 40;

    struct Fetch
    {
        Addr line = 0;
        Cycle cycle = 0;
    };

    struct Entry
    {
        std::uint32_t tag = 0;
        std::array<Addr, kDstPerSrc> dst{};
    };

    static std::size_t index(Addr line) { return (line >> 6) % 8192; }
    static std::uint32_t
    tagOf(Addr line)
    {
        return static_cast<std::uint32_t>(line >> 6);
    }

    std::array<Entry, 8192> table_{};
    std::array<Fetch, 128> history_{};
    std::size_t histHead_ = 0;
    unsigned nextSlot_ = 0;
    Addr lastLine_ = ~Addr{0};
};

} // namespace trb

#endif // TRB_IPREF_EPI_HH
