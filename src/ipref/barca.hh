/**
 * @file
 * Barça (Branch-Agnostic Region Searching Algorithm, Jiménez et al.,
 * IPC-1): ignore control flow entirely; on a miss, prefetch the
 * surrounding code region on the theory that nearby lines will be needed
 * regardless of which way the branches go.
 */

#ifndef TRB_IPREF_BARCA_HH
#define TRB_IPREF_BARCA_HH

#include "ipref/instr_prefetcher.hh"

namespace trb
{

/** Branch-agnostic region prefetcher. */
class BarcaPrefetcher : public InstrPrefetcher
{
  public:
    explicit BarcaPrefetcher(unsigned ahead = 6, unsigned behind = 2)
        : ahead_(ahead), behind_(behind)
    {}

    void
    onFetch(Addr ip, bool hit, Cycle now, PrefetchPort &port) override
    {
        Addr line = lineAddr(ip);
        if (line == lastLine_)
            return;
        lastLine_ = line;
        if (hit && line != lastRegion_) {
            // Cheap sequential cover on hits.
            port.issue(line + kLineBytes, now);
            return;
        }
        if (!hit) {
            // Miss: search (prefetch) the whole region around it.
            lastRegion_ = line;
            for (unsigned d = 1; d <= ahead_; ++d)
                port.issue(line + d * kLineBytes, now);
            for (unsigned d = 1; d <= behind_; ++d)
                if (line >= d * kLineBytes)
                    port.issue(line - d * kLineBytes, now);
        }
    }

    const char *name() const override { return "barca"; }

  private:
    unsigned ahead_;
    unsigned behind_;
    Addr lastLine_ = ~Addr{0};
    Addr lastRegion_ = ~Addr{0};
};

} // namespace trb

#endif // TRB_IPREF_BARCA_HH
