/**
 * @file
 * Sequential next-line instruction prefetcher: the classic baseline that
 * fetches the next N lines after every demand fetch.
 */

#ifndef TRB_IPREF_NEXT_LINE_HH
#define TRB_IPREF_NEXT_LINE_HH

#include "ipref/instr_prefetcher.hh"

namespace trb
{

/** Prefetch line+1..line+degree on every demand fetch. */
class NextLineInstrPrefetcher : public InstrPrefetcher
{
  public:
    explicit NextLineInstrPrefetcher(unsigned degree = 2)
        : degree_(degree)
    {}

    void
    onFetch(Addr ip, bool /*hit*/, Cycle now, PrefetchPort &port) override
    {
        Addr line = lineAddr(ip);
        if (line == lastLine_)
            return;
        lastLine_ = line;
        for (unsigned d = 1; d <= degree_; ++d)
            port.issue(line + d * kLineBytes, now);
    }

    const char *name() const override { return "next-line"; }

  private:
    unsigned degree_;
    Addr lastLine_ = ~Addr{0};
};

} // namespace trb

#endif // TRB_IPREF_NEXT_LINE_HH
