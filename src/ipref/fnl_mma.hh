/**
 * @file
 * FNL+MMA (Seznec, IPC-1): Footprint Next Line + Multiple Miss Ahead.
 * FNL predicts, per line, whether the *next* line will be needed (so
 * sequential prefetch only spends bandwidth where it historically paid
 * off); MMA records the global miss sequence and, on a miss, replays the
 * next few misses that followed it last time.
 */

#ifndef TRB_IPREF_FNL_MMA_HH
#define TRB_IPREF_FNL_MMA_HH

#include <array>

#include "common/counters.hh"
#include "ipref/instr_prefetcher.hh"

namespace trb
{

/** Footprint-next-line + multiple-miss-ahead instruction prefetcher. */
class FnlMmaPrefetcher : public InstrPrefetcher
{
  public:
    void
    onFetch(Addr ip, bool hit, Cycle now, PrefetchPort &port) override
    {
        Addr line = lineAddr(ip);
        if (line != lastLine_) {
            // FNL training: was the transition sequential?
            if (lastLine_ != ~Addr{0})
                fnl_[index(lastLine_)].update(line ==
                                              lastLine_ + kLineBytes);
            lastLine_ = line;

            // FNL prediction: walk forward while the footprint says yes.
            Addr next = line;
            for (unsigned d = 0; d < kMaxNextLines; ++d) {
                if (!fnl_[index(next)].taken())
                    break;
                next += kLineBytes;
                port.issue(next, now);
            }
        }

        if (hit)
            return;

        // MMA: look up where this miss last appeared in the miss log and
        // replay the misses that followed it.
        std::uint32_t &pos = missIndex_[index(line)];
        if (missLog_[pos % missLog_.size()] == line) {
            for (unsigned a = 1; a <= kMissAhead; ++a) {
                Addr ahead = missLog_[(pos + a) % missLog_.size()];
                if (ahead != 0)
                    port.issue(ahead, now);
            }
        }
        // Append to the log and remember this miss's position.
        missLog_[logHead_ % missLog_.size()] = line;
        pos = logHead_;
        ++logHead_;
    }

    const char *name() const override { return "fnl-mma"; }

  private:
    static constexpr unsigned kMaxNextLines = 4;
    static constexpr unsigned kMissAhead = 6;

    static std::size_t index(Addr line) { return (line >> 6) % 8192; }

    std::array<SatCounter, 8192> fnl_;
    std::array<Addr, 4096> missLog_{};
    std::array<std::uint32_t, 8192> missIndex_{};
    std::uint32_t logHead_ = 0;
    Addr lastLine_ = ~Addr{0};
};

} // namespace trb

#endif // TRB_IPREF_FNL_MMA_HH
