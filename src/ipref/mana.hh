/**
 * @file
 * MANA (Ansari et al., IPC-1): spatial-region instruction prefetching.
 * Code touched shortly after a trigger line clusters into a compact
 * region footprint; MANA records the footprint as a bit vector anchored
 * at the trigger and replays it when the trigger is fetched again.
 */

#ifndef TRB_IPREF_MANA_HH
#define TRB_IPREF_MANA_HH

#include <array>

#include "ipref/instr_prefetcher.hh"

namespace trb
{

/** Spatial-region (footprint) instruction prefetcher. */
class ManaPrefetcher : public InstrPrefetcher
{
  public:
    void
    onFetch(Addr ip, bool hit, Cycle now, PrefetchPort &port) override
    {
        (void)hit;
        Addr line = lineAddr(ip);
        if (line == lastLine_)
            return;
        lastLine_ = line;

        Addr region = line & ~kRegionMask;
        if (region != currentRegion_) {
            // Region change: commit the footprint being recorded and
            // replay the stored footprint of the new region.
            commit();
            currentRegion_ = region;
            recording_ = 0;

            const Entry &e = table_[index(region)];
            if (e.tag == tagOf(region)) {
                for (unsigned b = 0; b < kLinesPerRegion; ++b)
                    if (e.footprint & (1u << b))
                        port.issue(region + b * kLineBytes, now);
            }
        }
        unsigned bit = static_cast<unsigned>((line - region) / kLineBytes);
        recording_ |= 1u << bit;
    }

    const char *name() const override { return "mana"; }

  private:
    static constexpr unsigned kLinesPerRegion = 16;
    static constexpr Addr kRegionMask = kLinesPerRegion * kLineBytes - 1;

    struct Entry
    {
        std::uint32_t tag = 0;
        std::uint32_t footprint = 0;
    };

    static std::size_t index(Addr region) { return (region >> 10) % 4096; }
    static std::uint32_t
    tagOf(Addr region)
    {
        return static_cast<std::uint32_t>(region >> 10);
    }

    void
    commit()
    {
        if (currentRegion_ == ~Addr{0} || recording_ == 0)
            return;
        Entry &e = table_[index(currentRegion_)];
        if (e.tag == tagOf(currentRegion_))
            e.footprint |= recording_;
        else {
            e.tag = tagOf(currentRegion_);
            e.footprint = recording_;
        }
    }

    std::array<Entry, 4096> table_{};
    Addr lastLine_ = ~Addr{0};
    Addr currentRegion_ = ~Addr{0};
    std::uint32_t recording_ = 0;
};

} // namespace trb

#endif // TRB_IPREF_MANA_HH
