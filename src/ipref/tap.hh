/**
 * @file
 * TAP (Temporal Ancestry Prefetcher, Gober et al., IPC-1): a temporal-
 * stream prefetcher over the instruction miss sequence.  The global miss
 * log is the "ancestry"; each miss remembers its position, and a
 * recurrence replays its descendants.
 */

#ifndef TRB_IPREF_TAP_HH
#define TRB_IPREF_TAP_HH

#include <array>

#include "ipref/instr_prefetcher.hh"

namespace trb
{

/** Temporal-ancestry (miss-stream replay) instruction prefetcher. */
class TapPrefetcher : public InstrPrefetcher
{
  public:
    void
    onFetch(Addr ip, bool hit, Cycle now, PrefetchPort &port) override
    {
        if (hit)
            return;
        Addr line = lineAddr(ip);

        // Replay descendants from the last recorded occurrence.
        std::uint32_t &pos = lastPos_[index(line)];
        if (log_[pos % log_.size()] == line) {
            for (unsigned a = 1; a <= kReplayDepth; ++a) {
                Addr desc = log_[(pos + a) % log_.size()];
                if (desc != 0)
                    port.issue(desc, now);
            }
        }

        log_[head_ % log_.size()] = line;
        pos = head_;
        ++head_;
    }

    const char *name() const override { return "tap"; }

  private:
    static constexpr unsigned kReplayDepth = 6;

    static std::size_t index(Addr line) { return (line >> 6) % 16384; }

    std::array<Addr, 8192> log_{};
    std::array<std::uint32_t, 16384> lastPos_{};
    std::uint32_t head_ = 0;
};

} // namespace trb

#endif // TRB_IPREF_TAP_HH
