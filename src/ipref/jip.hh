/**
 * @file
 * JIP (Run-Jump-Run, Gupta/Kalani/Panda, IPC-1): instruction streams
 * alternate sequential "runs" with "jumps" to distant code.  A jump
 * table records, for each miss line, the non-sequential miss line that
 * followed it; prefetching runs sequentially and follows jump pointers.
 */

#ifndef TRB_IPREF_JIP_HH
#define TRB_IPREF_JIP_HH

#include <array>

#include "ipref/instr_prefetcher.hh"

namespace trb
{

/** Jump-pointer instruction prefetcher. */
class JipPrefetcher : public InstrPrefetcher
{
  public:
    void
    onFetch(Addr ip, bool hit, Cycle now, PrefetchPort &port) override
    {
        Addr line = lineAddr(ip);
        if (line == lastLine_)
            return;
        lastLine_ = line;

        // Run: keep a short sequential stream ahead.
        for (unsigned d = 1; d <= kRunDegree; ++d)
            port.issue(line + d * kLineBytes, now);

        // Jump: follow the recorded pointer, then run from there.
        const Entry &e = table_[index(line)];
        if (e.tag == tagOf(line) && e.target != 0) {
            port.issue(e.target, now);
            for (unsigned d = 1; d <= kJumpRunDegree; ++d)
                port.issue(e.target + d * kLineBytes, now);
        }

        if (hit)
            return;

        // Train: a non-sequential miss creates a jump pointer from the
        // previous miss line.
        if (lastMissLine_ != 0 && line != lastMissLine_ + kLineBytes &&
            line != lastMissLine_) {
            Entry &prev = table_[index(lastMissLine_)];
            prev.tag = tagOf(lastMissLine_);
            prev.target = line;
        }
        lastMissLine_ = line;
    }

    const char *name() const override { return "jip"; }

  private:
    static constexpr unsigned kRunDegree = 2;
    static constexpr unsigned kJumpRunDegree = 2;

    struct Entry
    {
        std::uint32_t tag = 0;
        Addr target = 0;
    };

    static std::size_t index(Addr line) { return (line >> 6) % 8192; }
    static std::uint32_t
    tagOf(Addr line)
    {
        return static_cast<std::uint32_t>(line >> 6);
    }

    std::array<Entry, 8192> table_{};
    Addr lastLine_ = ~Addr{0};
    Addr lastMissLine_ = 0;
};

} // namespace trb

#endif // TRB_IPREF_JIP_HH
