/**
 * @file
 * PIPS (Michaud, IPC-1): Prefetching Instructions with Probabilistic
 * Scouts.  A scout starts at the current line and walks the line-
 * successor graph, following only edges whose observed probability is
 * high, issuing prefetches along the way.
 */

#ifndef TRB_IPREF_PIPS_HH
#define TRB_IPREF_PIPS_HH

#include <array>

#include "ipref/instr_prefetcher.hh"

namespace trb
{

/** Probabilistic-scout instruction prefetcher. */
class PipsPrefetcher : public InstrPrefetcher
{
  public:
    void
    onFetch(Addr ip, bool hit, Cycle now, PrefetchPort &port) override
    {
        (void)hit;
        Addr line = lineAddr(ip);
        if (line == lastLine_)
            return;

        // Train the successor edge from the previous line.
        if (lastLine_ != ~Addr{0}) {
            Entry &e = table_[index(lastLine_)];
            if (e.tag != tagOf(lastLine_)) {
                e.tag = tagOf(lastLine_);
                e.successor = line;
                e.confidence = 1;
            } else if (e.successor == line) {
                if (e.confidence < 7)
                    ++e.confidence;
            } else if (e.confidence <= 1) {
                e.successor = line;
                e.confidence = 1;
            } else {
                --e.confidence;
            }
        }
        lastLine_ = line;

        // Scout: follow high-probability successor edges.
        Addr scout = line;
        for (unsigned depth = 0; depth < kScoutDepth; ++depth) {
            const Entry &e = table_[index(scout)];
            if (e.tag != tagOf(scout) || e.confidence < kThreshold)
                break;
            scout = e.successor;
            port.issue(scout, now);
        }
    }

    const char *name() const override { return "pips"; }

  private:
    static constexpr unsigned kScoutDepth = 5;
    static constexpr unsigned kThreshold = 2;

    struct Entry
    {
        std::uint32_t tag = 0;
        Addr successor = 0;
        std::uint8_t confidence = 0;
    };

    static std::size_t index(Addr line) { return (line >> 6) % 16384; }
    static std::uint32_t
    tagOf(Addr line)
    {
        return static_cast<std::uint32_t>(line >> 6);
    }

    std::array<Entry, 16384> table_{};
    Addr lastLine_ = ~Addr{0};
};

} // namespace trb

#endif // TRB_IPREF_PIPS_HH
