#include "ipref/instr_prefetcher.hh"

#include <vector>

#include "ipref/barca.hh"
#include "ipref/djolt.hh"
#include "ipref/epi.hh"
#include "ipref/fnl_mma.hh"
#include "ipref/jip.hh"
#include "ipref/mana.hh"
#include "ipref/next_line.hh"
#include "ipref/pips.hh"
#include "ipref/tap.hh"

namespace trb
{

std::unique_ptr<InstrPrefetcher>
makeInstrPrefetcher(const std::string &name)
{
    if (name == "no")
        return std::make_unique<NoInstrPrefetcher>();
    if (name == "next-line")
        return std::make_unique<NextLineInstrPrefetcher>();
    if (name == "djolt")
        return std::make_unique<DJoltPrefetcher>();
    if (name == "jip")
        return std::make_unique<JipPrefetcher>();
    if (name == "mana")
        return std::make_unique<ManaPrefetcher>();
    if (name == "fnl-mma")
        return std::make_unique<FnlMmaPrefetcher>();
    if (name == "pips")
        return std::make_unique<PipsPrefetcher>();
    if (name == "epi")
        return std::make_unique<EpiPrefetcher>();
    if (name == "barca")
        return std::make_unique<BarcaPrefetcher>();
    if (name == "tap")
        return std::make_unique<TapPrefetcher>();
    return nullptr;
}

const std::vector<std::string> &
ipc1PrefetcherNames()
{
    // The eight IPC-1 submissions the paper re-evaluates (Table 3).
    static const std::vector<std::string> names = {
        "djolt", "jip", "mana", "fnl-mma", "pips", "epi", "barca", "tap"};
    return names;
}

} // namespace trb
