/**
 * @file
 * Instruction-prefetcher interface, as exposed to IPC-1 style L1I
 * prefetchers by the core's front-end.  Implementations observe demand
 * fetches and branch outcomes and issue line prefetches through the
 * PrefetchPort the core provides.
 */

#ifndef TRB_IPREF_INSTR_PREFETCHER_HH
#define TRB_IPREF_INSTR_PREFETCHER_HH

#include <cstdint>
#include <memory>
#include <vector>
#include <string>

#include "common/types.hh"

namespace trb
{

/** Sink for prefetch requests (implemented by the core front-end). */
class PrefetchPort
{
  public:
    virtual ~PrefetchPort() = default;

    /**
     * Request an L1I fill of the line containing @p addr at cycle
     * @p now.  @return true if a fill was started.
     */
    virtual bool issue(Addr addr, Cycle now) = 0;

    /** True if the line is usable in the L1I at cycle @p now. */
    virtual bool present(Addr addr, Cycle now) const = 0;
};

/** Base class of instruction prefetchers (IPC-1 plug-in analogue). */
class InstrPrefetcher
{
  public:
    virtual ~InstrPrefetcher() = default;

    /**
     * A demand instruction fetch of @p ip was performed.
     * @param hit whether the L1I had the line
     */
    virtual void
    onFetch(Addr ip, bool hit, Cycle now, PrefetchPort &port)
    {
        (void)ip;
        (void)hit;
        (void)now;
        (void)port;
    }

    /**
     * A branch at @p ip was fetched with its resolved behaviour
     * (trace-driven front-ends learn branch outcomes immediately).
     */
    virtual void
    onBranch(Addr ip, BranchType type, Addr target, bool taken, Cycle now,
             PrefetchPort &port)
    {
        (void)ip;
        (void)type;
        (void)target;
        (void)taken;
        (void)now;
        (void)port;
    }

    virtual const char *name() const = 0;
};

/** The no-op baseline every speedup in Table 3 is measured against. */
class NoInstrPrefetcher : public InstrPrefetcher
{
  public:
    const char *name() const override { return "no"; }
};

/** Factory: construct an IPC-1 prefetcher by name.
 *
 * Known names: no, next-line, djolt, jip, mana, fnl-mma, pips, epi,
 * barca, tap.  Returns nullptr for unknown names.
 */
std::unique_ptr<InstrPrefetcher> makeInstrPrefetcher(
    const std::string &name);

/** The eight IPC-1 submissions, in the paper's Table 3 order. */
const std::vector<std::string> &ipc1PrefetcherNames();

} // namespace trb

#endif // TRB_IPREF_INSTR_PREFETCHER_HH
