/**
 * @file
 * D-JOLT (Distant Jolt, Nakamura et al., IPC-1): long-range prefetching
 * keyed by the call-path signature.  The insight is that the lines an
 * instruction stream will miss on are a function of *where the program
 * came from* several calls ago, so a signature of recent call targets
 * selects a set of distant miss lines to prefetch ahead of time.
 */

#ifndef TRB_IPREF_DJOLT_HH
#define TRB_IPREF_DJOLT_HH

#include <array>

#include "ipref/instr_prefetcher.hh"

namespace trb
{

/** Call-signature indexed long-range instruction prefetcher. */
class DJoltPrefetcher : public InstrPrefetcher
{
  public:
    void
    onBranch(Addr ip, BranchType type, Addr target, bool taken, Cycle now,
             PrefetchPort &port) override
    {
        (void)ip;
        if (!taken)
            return;
        if (type != BranchType::DirectCall &&
            type != BranchType::IndirectCall && type != BranchType::Return)
            return;

        // The signature is a hash of a fixed window of recent call
        // targets, so recurring call paths reproduce it exactly.
        window_[windowHead_++ % kWindow] = target;
        signature_ = 0;
        for (unsigned i = 0; i < kWindow; ++i)
            signature_ = (signature_ * 0x9e3779b1u) ^
                         static_cast<std::uint32_t>(window_[i] >> 2);
        Entry &e = table_[signature_ % table_.size()];
        if (e.signature == signature_) {
            for (unsigned i = 0; i < kLinesPerEntry; ++i)
                if (e.lines[i] != 0)
                    port.issue(e.lines[i], now);
        }
    }

    void
    onFetch(Addr ip, bool hit, Cycle now, PrefetchPort &/*port*/) override
    {
        (void)now;
        if (hit)
            return;
        // Record this miss against the most recent signature.  An
        // established entry (owned by another signature) ages out via a
        // small hysteresis counter rather than being reset outright.
        Entry &e = table_[signature_ % table_.size()];
        if (e.signature != signature_) {
            if (e.hysteresis > 0) {
                --e.hysteresis;
                return;
            }
            e.signature = signature_;
            e.lines.fill(0);
            e.hysteresis = 2;
            trainFill_ = 0;
        }
        Addr line = lineAddr(ip);
        for (unsigned i = 0; i < kLinesPerEntry; ++i)
            if (e.lines[i] == line)
                return;
        if (trainFill_ < kLinesPerEntry)
            e.lines[trainFill_++] = line;
        else
            e.lines[(line >> 6) % kLinesPerEntry] = line;
    }

    const char *name() const override { return "djolt"; }

  private:
    static constexpr unsigned kLinesPerEntry = 10;

    struct Entry
    {
        std::uint32_t signature = 0;
        std::uint8_t hysteresis = 0;
        std::array<Addr, kLinesPerEntry> lines{};
    };

    static constexpr unsigned kWindow = 4;

    std::array<Entry, 4096> table_{};
    std::array<Addr, kWindow> window_{};
    unsigned windowHead_ = 0;
    std::uint32_t signature_ = 0;
    unsigned trainFill_ = 0;
};

} // namespace trb

#endif // TRB_IPREF_DJOLT_HH
