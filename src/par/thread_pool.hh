/**
 * @file
 * trb::par -- a fixed-size work-stealing thread pool for the experiment
 * harness.
 *
 * Each worker owns a deque of pending tasks: it pushes and pops work at
 * the back (LIFO, cache-friendly for nested loops) and steals from the
 * front of other workers' deques (FIFO, so thieves take the oldest --
 * largest -- chunks).  The thread that calls parallelFor() participates
 * as worker 0, so a pool of N jobs runs exactly N executing threads and
 * `TRB_JOBS=1` spawns no threads at all: the loop body runs inline, in
 * index order, on the caller -- today's exact serial path.
 *
 * Determinism contract: parallelFor() promises only that every index in
 * [0, n) is executed exactly once, on some thread, before it returns.
 * Callers that need schedule-independent results must write results into
 * index-addressed slots (see docs/parallelism.md); the experiment
 * harness does exactly that, which is why its output is bit-identical
 * for any TRB_JOBS value.
 *
 * Exceptions thrown by loop bodies are captured; the first one (in
 * completion order) is rethrown from parallelFor() on the calling thread
 * after every index has run or been abandoned by its thrower.
 */

#ifndef TRB_PAR_THREAD_POOL_HH
#define TRB_PAR_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace trb
{
namespace par
{

/**
 * Worker count from TRB_JOBS; 0 or unset means hardware_concurrency.
 * Always >= 1.
 */
std::size_t jobsFromEnv();

/**
 * Index of the pool thread executing the current code: 0 for the
 * thread driving parallelFor() (the caller), 1..jobs-1 for spawned
 * workers, and 0 for any thread outside a pool context.
 */
std::size_t workerId();

/** Fixed-size work-stealing thread pool. */
class ThreadPool
{
  public:
    /** @param jobs executing threads including the caller (>= 1). */
    explicit ThreadPool(std::size_t jobs = jobsFromEnv());

    /** Drains nothing: pending loops must have completed.  Joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Executing threads, including the calling thread. */
    std::size_t jobs() const { return jobs_; }

    /**
     * Run fn(i) for every i in [0, n), distributed over the pool; the
     * calling thread executes tasks too.  Returns once every index has
     * run.  Nested calls from inside a loop body are allowed (the inner
     * loop's tasks join the same deques).  First exception is rethrown.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Enqueue one detached task: @p fn runs once, on some pool worker,
     * as soon as a worker is free.  Returns immediately -- completion is
     * the task's own business (signal through whatever state it closes
     * over).  With jobs() == 1 the task runs inline on the caller before
     * submit() returns, preserving the TRB_JOBS=1 exact-serial contract.
     *
     * Unlike parallelFor(), nobody waits to rethrow: an escaping
     * exception is logged as a warning and swallowed, so submitters that
     * care must catch inside @p fn.  This is the serving layer's entry
     * point (trb::serve dispatches one accepted request per submit());
     * batch sweeps should keep using parallelFor()/parallelMap().
     */
    void submit(std::function<void()> fn);

    /**
     * Cancellation-aware submit(): when the task is popped for
     * execution, @p cancel is tested first (one relaxed load) -- if it
     * has been set, @p onCancel runs instead of @p fn, so
     * queued-but-unstarted work cancels without burning a worker on it.
     * Work already *running* is not interrupted; long tasks poll their
     * own token cooperatively (see resil/cancel.hh -- the pool takes a
     * raw `const std::atomic<bool> *` so trb_par stays independent of
     * trb_resil; pass `&token.flag()`).  A null @p cancel degrades to
     * the plain submit().  The TRB_JOBS=1 inline path honours the flag
     * too.  @p cancel must outlive the task; closing the flag's owner
     * into @p fn/@p onCancel (e.g. a shared_ptr) is the usual way.
     */
    void submit(std::function<void()> fn,
                const std::atomic<bool> *cancel,
                std::function<void()> onCancel = {});

    /**
     * Map @p items through @p fn in parallel, returning results in
     * input order (index-addressed, so the result is independent of the
     * schedule).
     */
    template <typename T, typename F>
    auto
    parallelMap(const std::vector<T> &items, F fn)
        -> std::vector<decltype(fn(items[0]))>
    {
        std::vector<decltype(fn(items[0]))> out(items.size());
        parallelFor(items.size(),
                    [&](std::size_t i) { out[i] = fn(items[i]); });
        return out;
    }

    /**
     * The process-wide pool, sized by TRB_JOBS at first use.  Bench
     * binaries and the experiment harness share this instance so the
     * machine is never oversubscribed by nested harness calls.
     */
    static ThreadPool &global();

    /**
     * The process-wide pool if it has already been constructed, else
     * nullptr.  Observability code samples through this accessor so
     * that *watching* the pool never *creates* it (a sampler tick
     * before the first parallelFor must not spawn worker threads).
     */
    static ThreadPool *globalIfStarted();

    /**
     * Tasks each worker ran that were taken from another worker's
     * deque, summed over the pool's lifetime.  Relaxed reads: exact
     * once the pool is quiescent, approximate while loops are live --
     * which is fine for the telemetry heartbeat that consumes it.
     */
    std::uint64_t stealCount() const;

    /**
     * Current depth of every worker deque (index = worker id).  Takes
     * each queue lock briefly; depths of different queues are not a
     * consistent cut, which telemetry tolerates.
     */
    std::vector<std::size_t> queueDepths() const;

  private:
    struct ForLoop;

    /** One worker's work-stealing deque. */
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::pair<ForLoop *, std::size_t>> tasks;
        /** Tasks this worker ran that it stole from another deque. */
        std::atomic<std::uint64_t> steals{0};
    };

    void workerLoop(std::size_t id);
    bool tryRunOne(std::size_t id);
    static void runTask(ForLoop *loop, std::size_t index);

    std::size_t jobs_;
    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> threads_;
    std::atomic<std::size_t> submitCursor_{0};   //!< spreads submit()s

    std::mutex sleepMutex_;
    std::condition_variable sleepCv_;
    std::atomic<std::size_t> pending_{0};   //!< queued, not yet popped
    bool stop_ = false;
};

} // namespace par
} // namespace trb

#endif // TRB_PAR_THREAD_POOL_HH
