#include "par/thread_pool.hh"

#include "common/env.hh"
#include "common/logging.hh"

namespace trb
{
namespace par
{

namespace
{

/** Pool-thread index; 0 for the caller and for threads outside pools. */
thread_local std::size_t tl_worker_id = 0;

} // namespace

std::size_t
jobsFromEnv()
{
    std::uint64_t jobs = env::u64("TRB_JOBS", 0);
    if (jobs == 0)
        jobs = std::thread::hardware_concurrency();
    return jobs == 0 ? 1 : static_cast<std::size_t>(jobs);
}

std::size_t
workerId()
{
    return tl_worker_id;
}

/**
 * Book-keeping shared by the tasks of one parallelFor() call.  All
 * completion state is guarded by one mutex so the driving thread cannot
 * destroy the loop while a finishing task still touches it: the final
 * increment of @c completed and the wake-up happen in one critical
 * section, and the driver only returns after observing
 * completed == total under that same mutex.
 */
struct ThreadPool::ForLoop
{
    const std::function<void(std::size_t)> *fn = nullptr;
    std::size_t total = 0;
    std::size_t completed = 0;   //!< guarded by mutex
    std::exception_ptr error;    //!< first failure, guarded by mutex
    std::mutex mutex;
    std::condition_variable done;

    /**
     * Detached (submit()) loops own their function and have no driver
     * blocked on @c done: the finishing task deletes the loop instead
     * of notifying, and an escaping exception is logged, not rethrown.
     */
    std::function<void(std::size_t)> ownedFn;
    bool detached = false;
};

ThreadPool::ThreadPool(std::size_t jobs) : jobs_(jobs == 0 ? 1 : jobs)
{
    queues_.reserve(jobs_);
    for (std::size_t i = 0; i < jobs_; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.reserve(jobs_ - 1);
    for (std::size_t id = 1; id < jobs_; ++id)
        threads_.emplace_back([this, id] { workerLoop(id); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        stop_ = true;
    }
    sleepCv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::runTask(ForLoop *loop, std::size_t index)
{
    std::exception_ptr err;
    try {
        (*loop->fn)(index);
    } catch (...) {
        err = std::current_exception();
    }
    if (err && loop->detached) {
        try {
            std::rethrow_exception(err);
        } catch (const std::exception &e) {
            trb_warn("detached pool task threw: ", e.what());
        } catch (...) {
            trb_warn("detached pool task threw a non-std exception");
        }
    }
    // For driver-owned loops the driver may destroy the ForLoop the
    // moment it observes completed == total, so nothing may touch
    // *loop after the final increment; read the immutable flag first.
    const bool detached = loop->detached;
    bool last = false;
    {
        std::lock_guard<std::mutex> lock(loop->mutex);
        if (err && !loop->error)
            loop->error = err;
        last = ++loop->completed == loop->total;
        if (last && !detached)
            loop->done.notify_all();
    }
    if (last && detached)
        delete loop;
}

bool
ThreadPool::tryRunOne(std::size_t id)
{
    std::pair<ForLoop *, std::size_t> task{nullptr, 0};
    {
        // Own deque first, newest task (LIFO keeps nested loops local).
        WorkerQueue &own = *queues_[id];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = own.tasks.back();
            own.tasks.pop_back();
        }
    }
    if (!task.first) {
        // Steal the oldest task of another worker (FIFO).
        for (std::size_t k = 1; k < jobs_ && !task.first; ++k) {
            WorkerQueue &victim = *queues_[(id + k) % jobs_];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.tasks.empty()) {
                task = victim.tasks.front();
                victim.tasks.pop_front();
            }
        }
        if (task.first)
            queues_[id]->steals.fetch_add(1, std::memory_order_relaxed);
    }
    if (!task.first)
        return false;
    pending_.fetch_sub(1, std::memory_order_relaxed);
    runTask(task.first, task.second);
    return true;
}

void
ThreadPool::workerLoop(std::size_t id)
{
    tl_worker_id = id;
    for (;;) {
        if (tryRunOne(id))
            continue;
        std::unique_lock<std::mutex> lock(sleepMutex_);
        sleepCv_.wait(lock, [this] {
            return stop_ ||
                   pending_.load(std::memory_order_relaxed) > 0;
        });
        if (stop_)
            return;
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (jobs_ == 1) {
        // The exact serial path: inline, in index order, no locking.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    ForLoop loop;
    loop.fn = &fn;
    loop.total = n;

    // Scatter the indices round-robin so every worker starts loaded.
    const std::size_t id = tl_worker_id;
    for (std::size_t q = 0; q < jobs_; ++q) {
        WorkerQueue &queue = *queues_[(id + q) % jobs_];
        std::lock_guard<std::mutex> lock(queue.mutex);
        for (std::size_t i = q; i < n; i += jobs_)
            queue.tasks.emplace_back(&loop, i);
    }
    pending_.fetch_add(n, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
    }
    sleepCv_.notify_all();

    // The driver works too: run (or steal) tasks while any remain; once
    // every task is taken, block until the last executor signals.
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(loop.mutex);
            if (loop.completed == loop.total)
                break;
        }
        if (tryRunOne(id))
            continue;
        std::unique_lock<std::mutex> lock(loop.mutex);
        if (loop.completed == loop.total)
            break;
        loop.done.wait(lock);
    }
    if (loop.error)
        std::rethrow_exception(loop.error);
}

void
ThreadPool::submit(std::function<void()> fn)
{
    if (jobs_ == 1) {
        // The exact serial path: run inline before returning, matching
        // parallelFor()'s TRB_JOBS=1 behaviour.
        try {
            fn();
        } catch (const std::exception &e) {
            trb_warn("detached pool task threw: ", e.what());
        } catch (...) {
            trb_warn("detached pool task threw a non-std exception");
        }
        return;
    }

    auto *loop = new ForLoop;
    loop->ownedFn = [f = std::move(fn)](std::size_t) { f(); };
    loop->fn = &loop->ownedFn;
    loop->total = 1;
    loop->detached = true;

    // Seed the queues round-robin (skipping queue 0, which has no
    // dedicated thread); work stealing rebalances from there.
    const std::size_t cursor =
        submitCursor_.fetch_add(1, std::memory_order_relaxed);
    WorkerQueue &queue = *queues_[1 + cursor % (jobs_ - 1)];
    {
        std::lock_guard<std::mutex> lock(queue.mutex);
        queue.tasks.emplace_back(loop, 0);
    }
    pending_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
    }
    sleepCv_.notify_all();
}

void
ThreadPool::submit(std::function<void()> fn,
                   const std::atomic<bool> *cancel,
                   std::function<void()> onCancel)
{
    if (!cancel) {
        submit(std::move(fn));
        return;
    }
    // The flag is tested when the task is *popped*, not when it is
    // queued: a cancellation that lands while the task waits in a deque
    // still skips the work.
    submit([fn = std::move(fn), cancel,
            onCancel = std::move(onCancel)] {
        if (cancel->load(std::memory_order_relaxed)) {
            if (onCancel)
                onCancel();
            return;
        }
        fn();
    });
}

std::uint64_t
ThreadPool::stealCount() const
{
    std::uint64_t total = 0;
    for (const auto &queue : queues_)
        total += queue->steals.load(std::memory_order_relaxed);
    return total;
}

std::vector<std::size_t>
ThreadPool::queueDepths() const
{
    std::vector<std::size_t> depths;
    depths.reserve(queues_.size());
    for (const auto &queue : queues_) {
        std::lock_guard<std::mutex> lock(queue->mutex);
        depths.push_back(queue->tasks.size());
    }
    return depths;
}

namespace
{

/** Set once the global pool has been constructed. */
std::atomic<ThreadPool *> g_global_pool{nullptr};

} // namespace

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(jobsFromEnv());
    g_global_pool.store(&pool, std::memory_order_release);
    return pool;
}

ThreadPool *
ThreadPool::globalIfStarted()
{
    return g_global_pool.load(std::memory_order_acquire);
}

} // namespace par
} // namespace trb
