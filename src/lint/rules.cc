/**
 * @file
 * The concrete lint rules: one per paper improvement group (Section 3's
 * six conversion-defect classes) plus the structural stream checks.
 *
 * Each rule re-derives the invariant from first principles -- e.g. the
 * footprint rule recomputes the transfer size exactly the way the
 * improved converter does -- so a conversion produced with any defective
 * personality (or by an external tool) is caught without knowing which
 * improvements were enabled.
 */

#include "lint/rule.hh"

#include <algorithm>
#include <array>
#include <sstream>

#include "convert/cvp2champsim.hh"
#include "trace/branch_deduce.hh"

namespace trb
{
namespace lint
{
namespace
{

// ---------------------------------------------------------------------
// Shared helpers.

constexpr std::size_t kRegSpace = 256;   // RegId is uint8_t

bool
isSpecialReg(RegId r)
{
    return r == champsim::kStackPointer || r == champsim::kFlags ||
           r == champsim::kInstructionPointer || r == champsim::kOtherReg;
}

std::string
hex(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

/** True when any µop of the unit reads @p r. */
bool
unitReads(const LintUnit &u, RegId r)
{
    for (unsigned i = 0; i < u.numUops; ++i)
        if (u.uops[i].readsReg(r))
            return true;
    return false;
}

/** True when any µop of the unit writes @p r. */
bool
unitWrites(const LintUnit &u, RegId r)
{
    for (unsigned i = 0; i < u.numUops; ++i)
        if (u.uops[i].writesReg(r))
            return true;
    return false;
}

/**
 * The destination registers a *correct* full conversion materialises for
 * @p rec, in ChampSim register space: branches materialise none (IP/SP
 * own both slots -- the paper's acknowledged X30 limitation), memory
 * records materialise an inferred writeback base plus the first
 * kMaxDst non-base data registers, ALU records the first kMaxDst.
 * Anything beyond is lost to the 64-byte record format, not to a defect.
 */
std::vector<RegId>
expectedMaterializedDsts(const CvpRecord &rec)
{
    std::vector<RegId> out;
    if (isBranch(rec.cls))
        return out;

    unsigned base_index = rec.numDst;   // sentinel: no writeback base
    if (isMem(rec.cls)) {
        BaseUpdateInfo bu = Cvp2ChampSim::inferBaseUpdate(rec);
        if (bu.kind != BaseUpdateKind::None) {
            base_index = bu.dstIndex;
            out.push_back(Cvp2ChampSim::mapReg(bu.baseReg));
        }
    }
    unsigned data_slots = 0;
    for (unsigned i = 0; i < rec.numDst; ++i) {
        if (i == base_index)
            continue;
        RegId m = Cvp2ChampSim::mapReg(rec.dst[i]);
        if (std::find(out.begin(), out.end(), m) != out.end())
            continue;   // converter slots deduplicate
        if (data_slots == champsim::kMaxDst)
            break;      // truncated by the record format
        out.push_back(m);
        ++data_slots;
    }
    return out;
}

// ---------------------------------------------------------------------
// R1: memory destination registers must be exact (paper section 3.1.1).

const RuleInfo kMemDestRegsInfo = {
    "mem-dest-regs",
    "memory records carry exactly the CVP-1 destination registers "
    "(no inserted X0, no dropped data registers)",
    "paper section 3.1.1 (imp_mem-regs)",
    Severity::Error,
    true,
};

class MemDestRegsRule : public Rule
{
  public:
    MemDestRegsRule() : Rule(kMemDestRegsInfo) {}

    void
    check(const LintUnit &u, DiagnosticSink &sink) override
    {
        if (!u.cvp || !isMem(u.cvp->cls))
            return;
        const CvpRecord &rec = *u.cvp;

        std::vector<RegId> expected = expectedMaterializedDsts(rec);
        for (RegId m : expected) {
            if (!unitWrites(u, m)) {
                sink.report(info(), u.index, rec.pc,
                            "destination register " + std::to_string(m) +
                                " recorded in the CVP-1 stream was dropped "
                                "by the conversion",
                            "enable imp_mem-regs (and imp_base-update for "
                            "writeback bases)");
            }
        }

        // Anything written that CVP-1 never listed is spurious: the
        // original converter inserts X0 into destination-less memory
        // instructions, fabricating dependencies through X0.
        for (unsigned i = 0; i < u.numUops; ++i) {
            for (RegId d : u.uops[i].destRegs) {
                if (d == 0 || isSpecialReg(d))
                    continue;
                if (!rec.writesReg(
                        static_cast<RegId>(mapBack(d))))
                    sink.report(
                        info(), u.index, rec.pc,
                        rec.numDst == 0
                            ? "X0 inserted as destination of a "
                              "destination-less memory instruction"
                            : "spurious destination register " +
                                  std::to_string(d) +
                                  " absent from the CVP-1 record",
                        "enable imp_mem-regs");
            }
        }
    }

  private:
    /** Invert Cvp2ChampSim::mapReg (total on its image). */
    static unsigned
    mapBack(RegId m)
    {
        switch (m) {
          case 201: return champsim::kStackPointer - 1;
          case 202: return champsim::kFlags - 1;
          case 203: return champsim::kInstructionPointer - 1;
          case 204: return champsim::kOtherReg - 1;
          default: return static_cast<unsigned>(m) - 1;
        }
    }
};

// ---------------------------------------------------------------------
// R2: base-updates must be split into ALU + mem µops (section 3.1.2).

const RuleInfo kBaseUpdateSplitInfo = {
    "base-update-split",
    "base-updating accesses are split into an ALU µop owning the base "
    "writeback and a memory µop, ordered by pre/post indexing",
    "paper section 3.1.2 (imp_base-update)",
    Severity::Error,
    true,
};

class BaseUpdateSplitRule : public Rule
{
  public:
    BaseUpdateSplitRule() : Rule(kBaseUpdateSplitInfo) {}

    void
    check(const LintUnit &u, DiagnosticSink &sink) override
    {
        if (!u.cvp || !isMem(u.cvp->cls))
            return;
        const CvpRecord &rec = *u.cvp;
        BaseUpdateInfo bu = Cvp2ChampSim::inferBaseUpdate(rec);

        if (bu.kind == BaseUpdateKind::None) {
            if (u.numUops > 1)
                sink.report(info(), u.index, rec.pc,
                            "access without an inferable writeback was "
                            "split into " + std::to_string(u.numUops) +
                                " µops");
            return;
        }

        RegId base = Cvp2ChampSim::mapReg(bu.baseReg);
        if (u.numUops < 2) {
            sink.report(info(), u.index, rec.pc,
                        std::string(bu.kind == BaseUpdateKind::Pre
                                        ? "pre" : "post") +
                            "-index base-update not split: the base "
                            "register resolves at memory latency",
                        "enable imp_base-update");
            return;
        }

        // Pre-index: ALU first (update-then-access); post-index: memory
        // first.  The ALU µop must own the base def and read the old
        // base; the memory µop must not also write it.
        const ChampSimRecord &first = u.uops[0];
        const ChampSimRecord &second = u.uops[1];
        const ChampSimRecord &alu =
            bu.kind == BaseUpdateKind::Pre ? first : second;
        const ChampSimRecord &mem =
            bu.kind == BaseUpdateKind::Pre ? second : first;

        if (mem.numSrcMem() + mem.numDstMem() == 0 ||
            alu.numSrcMem() + alu.numDstMem() != 0) {
            sink.report(info(), u.index, rec.pc,
                        std::string("split µops are mis-ordered for a ") +
                            (bu.kind == BaseUpdateKind::Pre ? "pre"
                                                            : "post") +
                            "-index access");
            return;
        }
        if (!alu.writesReg(base) || !alu.readsReg(base))
            sink.report(info(), u.index, rec.pc,
                        "split ALU µop does not read+write the base "
                        "register " + std::to_string(base));
        if (mem.writesReg(base))
            sink.report(info(), u.index, rec.pc,
                        "memory µop of a split still writes the base "
                        "register " + std::to_string(base));
    }
};

// ---------------------------------------------------------------------
// R3: memory footprint -- second cacheline + DC ZVA alignment (3.1.3).

const RuleInfo kMemFootprintInfo = {
    "mem-footprint",
    "line-crossing accesses carry the second cacheline address and "
    "DC ZVA stores are line-aligned",
    "paper section 3.1.3 (imp_mem-footprint)",
    Severity::Error,
    true,
};

class MemFootprintRule : public Rule
{
  public:
    MemFootprintRule() : Rule(kMemFootprintInfo) {}

    void
    check(const LintUnit &u, DiagnosticSink &sink) override
    {
        if (!u.cvp || !isMem(u.cvp->cls))
            return;
        const CvpRecord &rec = *u.cvp;
        const bool is_load = rec.cls == InstClass::Load;

        // Find the memory µop of the unit.
        const ChampSimRecord *mem = nullptr;
        for (unsigned i = 0; i < u.numUops; ++i) {
            const ChampSimRecord &cs = u.uops[i];
            if ((is_load && cs.isLoad()) || (!is_load && cs.isStore())) {
                mem = &cs;
                break;
            }
        }
        if (!mem) {
            sink.report(info(), u.index, rec.pc,
                        "memory instruction converted without a memory "
                        "operand");
            return;
        }
        Addr ea = is_load ? mem->srcMem[0] : mem->destMem[0];

        // DC ZVA (a whole-line store) is line-aligned by definition.
        if (!is_load && rec.accessSize >= kLineBytes &&
            ea != lineAddr(ea))
            sink.report(info(), u.index, rec.pc,
                        "DC ZVA store address " + hex(ea) +
                            " is not cacheline-aligned",
                        "enable imp_mem-footprint");

        // Transfer size, computed exactly as the improved converter does:
        // bytes-per-register times memory-populated registers.
        BaseUpdateInfo bu = Cvp2ChampSim::inferBaseUpdate(rec);
        unsigned regs;
        if (is_load) {
            regs = rec.numDst;
            if (bu.kind != BaseUpdateKind::None && regs > 0)
                --regs;
        } else {
            regs = rec.numSrc > 1 ? rec.numSrc - 1 : 1;
            if (regs > 2)
                regs = 2;
        }
        if (regs == 0)
            regs = 1;
        std::uint64_t total =
            static_cast<std::uint64_t>(rec.accessSize) * regs;
        if (total == 0)
            return;

        unsigned addrs = is_load ? mem->numSrcMem() : mem->numDstMem();
        bool crosses = lineNum(ea) != lineNum(ea + total - 1);
        if (crosses && addrs < 2) {
            sink.report(info(), u.index, rec.pc,
                        hex(total) + "-byte access at " + hex(ea) +
                            " crosses into line " +
                            hex(lineAddr(ea) + kLineBytes) +
                            " but carries one address",
                        "enable imp_mem-footprint");
        } else if (crosses && addrs >= 2) {
            Addr second = is_load ? mem->srcMem[1] : mem->destMem[1];
            if (second != lineAddr(ea) + kLineBytes)
                sink.report(info(), u.index, rec.pc,
                            "second address " + hex(second) +
                                " is not the next cacheline of " + hex(ea));
        } else if (!crosses && addrs > 1) {
            sink.report(info(), u.index, rec.pc,
                        "access within one line carries " +
                            std::to_string(addrs) + " addresses");
        }
    }
};

// ---------------------------------------------------------------------
// R4: X30 read+write branches are calls, not returns (section 3.2.1).

const RuleInfo kCallReturnInfo = {
    "call-return-class",
    "X30-reading branches that also write deduce as indirect calls; "
    "only write-nothing X30 readers deduce as returns",
    "paper section 3.2.1 (imp_call-stack)",
    Severity::Error,
    true,
};

class CallReturnRule : public Rule
{
  public:
    CallReturnRule() : Rule(kCallReturnInfo) {}

    void
    check(const LintUnit &u, DiagnosticSink &sink) override
    {
        if (!u.cvp || u.cvp->cls != InstClass::UncondIndirectBranch)
            return;
        const CvpRecord &rec = *u.cvp;
        if (u.numUops == 0)
            return;
        BranchType t =
            deduceBranchType(u.uops[0], DeductionRules::Patched);

        const bool reads_x30 = rec.readsReg(aarch64::kLinkReg);
        if (reads_x30 && rec.numDst > 0 && t != BranchType::IndirectCall)
            sink.report(info(), u.index, rec.pc,
                        std::string("X30 read+write branch (BLR X30) "
                                    "deduces as ") +
                            branchTypeName(t) + " instead of IndirectCall",
                        "enable imp_call-stack");
        else if (reads_x30 && rec.numDst == 0 && t != BranchType::Return)
            sink.report(info(), u.index, rec.pc,
                        std::string("X30-reading branch that writes "
                                    "nothing (RET) deduces as ") +
                            branchTypeName(t) + " instead of Return");
        else if (!reads_x30 && rec.writesReg(aarch64::kLinkReg) &&
                 t != BranchType::IndirectCall)
            sink.report(info(), u.index, rec.pc,
                        std::string("X30-writing indirect branch (BLR) "
                                    "deduces as ") +
                            branchTypeName(t) + " instead of IndirectCall");
    }
};

// ---------------------------------------------------------------------
// R5: branch source registers preserved + deduction-consistent (3.2.2).

const RuleInfo kBranchSrcRegsInfo = {
    "branch-src-regs",
    "conditional/indirect branch source registers survive conversion "
    "and the patched deduction agrees with the CVP-1 class",
    "paper section 3.2.2 (imp_branch-regs)",
    Severity::Error,
    true,
};

class BranchSrcRegsRule : public Rule
{
  public:
    BranchSrcRegsRule() : Rule(kBranchSrcRegsInfo) {}

    void
    check(const LintUnit &u, DiagnosticSink &sink) override
    {
        if (!u.cvp || u.numUops == 0)
            return;
        const CvpRecord &rec = *u.cvp;
        if (rec.cls != InstClass::CondBranch &&
            rec.cls != InstClass::UncondIndirectBranch)
            return;
        // Returns drop X30 by design: ChampSim models them through the
        // stack pointer (the RAS idiom), not the link register.
        const bool is_return = rec.cls == InstClass::UncondIndirectBranch &&
                               rec.readsReg(aarch64::kLinkReg) &&
                               rec.numDst == 0;

        if (rec.numSrc > 0 && !is_return) {
            bool preserved = false;
            for (unsigned i = 0; i < rec.numSrc && !preserved; ++i)
                preserved = unitReads(u, Cvp2ChampSim::mapReg(rec.src[i]));
            if (!preserved) {
                if (unitReads(u, champsim::kOtherReg))
                    sink.report(info(), u.index, rec.pc,
                                "branch source registers dropped and "
                                "replaced by the X56 scratch register",
                                "enable imp_branch-regs");
                else if (rec.cls == InstClass::CondBranch &&
                         unitReads(u, champsim::kFlags))
                    sink.report(info(), u.index, rec.pc,
                                "conditional's source registers dropped "
                                "and replaced by the flags register",
                                "enable imp_branch-regs");
                else
                    sink.report(info(), u.index, rec.pc,
                                "branch source registers absent from the "
                                "converted record",
                                "enable imp_branch-regs");
            }
        }

        // Class consistency under the paper's patched deduction rules.
        BranchType t =
            deduceBranchType(u.uops[0], DeductionRules::Patched);
        bool consistent =
            rec.cls == InstClass::CondBranch
                ? t == BranchType::Conditional
                : (t == BranchType::IndirectJump ||
                   t == BranchType::IndirectCall || t == BranchType::Return);
        if (!consistent)
            sink.report(info(), u.index, rec.pc,
                        std::string(instClassName(rec.cls)) +
                            " deduces as " + branchTypeName(t) +
                            " under the patched rules");
    }
};

// ---------------------------------------------------------------------
// R6: destination-less ALU/FP must write the flag register (3.2.3).

const RuleInfo kFlagDestInfo = {
    "flag-dest",
    "destination-less ALU/FP instructions (compares) write the flag "
    "register so flag-reading conditionals have a producer",
    "paper section 3.2.3 (imp_flag-regs)",
    Severity::Error,
    true,
};

class FlagDestRule : public Rule
{
  public:
    FlagDestRule() : Rule(kFlagDestInfo) {}

    void
    check(const LintUnit &u, DiagnosticSink &sink) override
    {
        if (!u.cvp)
            return;
        const CvpRecord &rec = *u.cvp;
        if (rec.cls != InstClass::Alu && rec.cls != InstClass::SlowAlu &&
            rec.cls != InstClass::Fp)
            return;
        if (rec.numDst != 0)
            return;
        if (!unitWrites(u, champsim::kFlags))
            sink.report(info(), u.index, rec.pc,
                        "destination-less " +
                            std::string(instClassName(rec.cls)) +
                            " leaves the flag register unwritten: "
                            "flag-reading conditionals lose their producer",
                        "enable imp_flag-regs");
    }
};

// ---------------------------------------------------------------------
// Structural: taken-branch target consistency (paired).

const RuleInfo kTakenTargetInfo = {
    "taken-target",
    "the record after a taken branch sits at the recorded target",
    "structural (trace continuity)",
    Severity::Error,
    true,
};

class TakenTargetRule : public Rule
{
  public:
    TakenTargetRule() : Rule(kTakenTargetInfo) {}

    void
    check(const LintUnit &u, DiagnosticSink &sink) override
    {
        if (!u.cvp)
            return;
        if (pending_ && u.numUops > 0 && u.uops[0].ip != target_)
            sink.report(info(), pendingIndex_, pendingPc_,
                        "taken branch targets " + hex(target_) +
                            " but the next converted record sits at " +
                            hex(u.uops[0].ip));
        pending_ = isBranch(u.cvp->cls) && u.cvp->taken &&
                   u.cvp->target != 0;
        if (pending_) {
            target_ = u.cvp->target;
            pendingIndex_ = u.index;
            pendingPc_ = u.cvp->pc;
        }
    }

  private:
    bool pending_ = false;
    Addr target_ = 0;
    std::uint64_t pendingIndex_ = 0;
    Addr pendingPc_ = 0;
};

// ---------------------------------------------------------------------
// Structural: def-before-use across the stream (paired).

const RuleInfo kDefBeforeUseInfo = {
    "def-before-use",
    "registers defined in the CVP-1 stream are defined in the converted "
    "stream before the converted stream reads them",
    "structural (dropped-dependency witness)",
    Severity::Error,
    true,
};

class DefBeforeUseRule : public Rule
{
  public:
    DefBeforeUseRule() : Rule(kDefBeforeUseInfo) {}

    void
    check(const LintUnit &u, DiagnosticSink &sink) override
    {
        if (!u.cvp)
            return;
        for (unsigned i = 0; i < u.numUops; ++i) {
            const ChampSimRecord &cs = u.uops[i];
            for (RegId r : cs.srcRegs) {
                if (r == 0 || isSpecialReg(r))
                    continue;
                if (!csDef_[r] && cvpOnly_[r])
                    sink.report(info(), u.index + i, cs.ip,
                                "read of register " + std::to_string(r) +
                                    " whose CVP-1 producer was dropped by "
                                    "the conversion",
                                "enable imp_mem-regs");
            }
            for (RegId r : cs.destRegs) {
                if (r == 0)
                    continue;
                csDef_[r] = true;
                cvpOnly_[r] = false;
            }
        }

        // CVP defs that a correct conversion would have materialised but
        // this unit did not become "cvp-only": later reads witness the
        // dropped dependency.  Defs a correct conversion also loses
        // (branch link registers, beyond-capacity list entries) are
        // exempt.
        std::vector<RegId> expected = expectedMaterializedDsts(*u.cvp);
        for (unsigned i = 0; i < u.cvp->numDst; ++i) {
            RegId m = Cvp2ChampSim::mapReg(u.cvp->dst[i]);
            if (csDef_[m])
                continue;
            if (std::find(expected.begin(), expected.end(), m) !=
                expected.end())
                cvpOnly_[m] = true;
        }
    }

  private:
    std::array<bool, kRegSpace> csDef_ = {};
    std::array<bool, kRegSpace> cvpOnly_ = {};
};

// ---------------------------------------------------------------------
// Structural: PC continuity within fall-through runs.

const RuleInfo kPcTeleportInfo = {
    "pc-teleport",
    "PCs never step backwards or teleport across a fall-through edge "
    "(only taken branches move the PC freely)",
    "structural (basic-block continuity)",
    Severity::Warn,
    false,
};

class PcTeleportRule : public Rule
{
  public:
    explicit PcTeleportRule(const LintLimits &limits)
        : Rule(kPcTeleportInfo), maxGap_(limits.maxFallthroughGap)
    {}

    void
    check(const LintUnit &u, DiagnosticSink &sink) override
    {
        for (unsigned i = 0; i < u.numUops; ++i) {
            const ChampSimRecord &cs = u.uops[i];
            if (havePrev_ && !(prevBranch_ && prevTaken_)) {
                if (cs.ip <= prevIp_)
                    sink.report(info(), u.index + i, cs.ip,
                                "PC steps backwards across a "
                                "fall-through edge (from " +
                                    hex(prevIp_) + ")");
                else if (cs.ip - prevIp_ > maxGap_)
                    sink.report(info(), u.index + i, cs.ip,
                                "PC teleports " + hex(cs.ip - prevIp_) +
                                    " bytes forward across a "
                                    "fall-through edge (from " +
                                    hex(prevIp_) + ")");
            }
            havePrev_ = true;
            prevIp_ = cs.ip;
            prevBranch_ = cs.isBranch != 0;
            prevTaken_ = cs.branchTaken != 0;
        }
    }

  private:
    std::uint64_t maxGap_;
    bool havePrev_ = false;
    Addr prevIp_ = 0;
    bool prevBranch_ = false;
    bool prevTaken_ = false;
};

// ---------------------------------------------------------------------
// Structural: return-address-stack balance.

const RuleInfo kRasBalanceInfo = {
    "ras-balance",
    "deduced returns never outnumber deduced calls beyond the configured "
    "slack (mid-program captures may unwind a few pre-trace frames)",
    "structural (call/return misclassification witness)",
    Severity::Error,
    false,
};

class RasBalanceRule : public Rule
{
  public:
    explicit RasBalanceRule(const LintLimits &limits)
        : Rule(kRasBalanceInfo), slack_(limits.rasSlack)
    {}

    void
    check(const LintUnit &u, DiagnosticSink &sink) override
    {
        (void)sink;
        for (unsigned i = 0; i < u.numUops; ++i) {
            const ChampSimRecord &cs = u.uops[i];
            if (!cs.isBranch)
                continue;
            switch (deduceBranchType(cs, DeductionRules::Patched)) {
              case BranchType::DirectCall:
              case BranchType::IndirectCall:
                ++depth_;
                ++calls_;
                break;
              case BranchType::Return:
                ++returns_;
                if (depth_ > 0) {
                    --depth_;
                } else {
                    ++unmatched_;
                    if (unmatched_ == 1) {
                        firstIndex_ = u.index + i;
                        firstPc_ = cs.ip;
                    }
                }
                break;
              default:
                break;
            }
        }
    }

    void
    finish(DiagnosticSink &sink) override
    {
        if (unmatched_ > slack_)
            sink.report(info(), firstIndex_, firstPc_,
                        std::to_string(unmatched_) +
                            " returns deduced with no matching call (" +
                            std::to_string(calls_) + " calls / " +
                            std::to_string(returns_) +
                            " returns in stream, slack " +
                            std::to_string(slack_) + ")",
                        "enable imp_call-stack");
    }

  private:
    std::uint64_t slack_;
    std::uint64_t depth_ = 0;
    std::uint64_t calls_ = 0;
    std::uint64_t returns_ = 0;
    std::uint64_t unmatched_ = 0;
    std::uint64_t firstIndex_ = 0;
    Addr firstPc_ = 0;
};

// ---------------------------------------------------------------------
// Structural: every branch record must deduce; non-branches must not
// masquerade as branches.

const RuleInfo kBranchDeduceInfo = {
    "branch-deduce",
    "branch records deduce to a branch type under the patched rules; "
    "non-branches never touch the IP or X56 typing registers",
    "structural (deducibility)",
    Severity::Error,
    false,
};

class BranchDeduceRule : public Rule
{
  public:
    BranchDeduceRule() : Rule(kBranchDeduceInfo) {}

    void
    check(const LintUnit &u, DiagnosticSink &sink) override
    {
        for (unsigned i = 0; i < u.numUops; ++i) {
            const ChampSimRecord &cs = u.uops[i];
            if (cs.isBranch > 1 || cs.branchTaken > 1)
                sink.report(info(), u.index + i, cs.ip,
                            "non-boolean is_branch/taken flag bytes");
            if (cs.isBranch) {
                if (deduceBranchType(cs, DeductionRules::Patched) ==
                    BranchType::NotBranch)
                    sink.report(info(), u.index + i, cs.ip,
                                "branch record whose register usage "
                                "deduces to NotBranch (missing IP "
                                "destination)");
            } else {
                if (cs.writesReg(champsim::kInstructionPointer) ||
                    cs.readsReg(champsim::kInstructionPointer))
                    sink.report(info(), u.index + i, cs.ip,
                                "non-branch touches the instruction-"
                                "pointer register");
                if (cs.readsReg(champsim::kOtherReg))
                    sink.report(info(), u.index + i, cs.ip,
                                "non-branch reads the X56 branch-typing "
                                "register");
            }
        }
    }
};

// ---------------------------------------------------------------------
// Whole-program (CFG) rules.  Only the registry entries live here: the
// checkers need the reconstructed CFG and the dataflow solution, so
// their implementations are in src/flow/ (cfg_rules.cc).  Keeping the
// RuleInfo in the catalog gives them the same ids, severities,
// enable/disable handling and JSON rendering as the streaming rules.

const RuleInfo kCfgStaleDefInfo = {
    "cfg-stale-def",
    "every dynamic occurrence of a static µop carries its destination "
    "registers: a dropped def leaves later cross-block reads consuming "
    "a stale value",
    "whole-program (cross-block def-before-use)",
    Severity::Error,
    false,
    true,
};

const RuleInfo kCfgUnreachableInfo = {
    "cfg-unreachable",
    "every executed non-entry block is entered through an observed edge "
    "(fall-through, taken branch, call or return), never only by "
    "teleport",
    "whole-program (unreachable block)",
    Severity::Error,
    false,
    true,
};

const RuleInfo kCfgFallthroughInfo = {
    "cfg-fallthrough",
    "a block leaves through one fall-through point: one exit µop, one "
    "successor PC across all its occurrences",
    "whole-program (inconsistent fall-through)",
    Severity::Error,
    false,
    true,
};

const RuleInfo kCfgCallBalanceInfo = {
    "cfg-call-balance",
    "return targets beyond the RAS slack match an observed call site's "
    "fall-through PC (call and return edges balance in the call graph)",
    "whole-program (call/return-edge imbalance)",
    Severity::Error,
    false,
    true,
};

const RuleInfo kCfgFlagStalenessInfo = {
    "cfg-flag-staleness",
    "flag-reading conditionals have a live flags producer: the flags "
    "write is never dropped upstream and never missing program-wide",
    "whole-program (cross-block flag staleness)",
    Severity::Error,
    false,
    true,
};

} // namespace

// ---------------------------------------------------------------------
// Registry.

const RuleInfo &
alignRuleInfo()
{
    static const RuleInfo info = {
        "align",
        "every CVP-1 record aligns with the converted µops at its PC",
        "structural (conversion alignment)",
        Severity::Error,
        true,
    };
    return info;
}

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = {
        kMemDestRegsInfo,   kBaseUpdateSplitInfo, kMemFootprintInfo,
        kCallReturnInfo,    kBranchSrcRegsInfo,   kFlagDestInfo,
        kTakenTargetInfo,   kDefBeforeUseInfo,    kPcTeleportInfo,
        kRasBalanceInfo,    kBranchDeduceInfo,    kCfgStaleDefInfo,
        kCfgUnreachableInfo, kCfgFallthroughInfo, kCfgCallBalanceInfo,
        kCfgFlagStalenessInfo, alignRuleInfo(),
    };
    return catalog;
}

const RuleInfo *
findRule(const std::string &id)
{
    for (const RuleInfo &info : ruleCatalog())
        if (id == info.id)
            return &info;
    return nullptr;
}

std::vector<std::unique_ptr<Rule>>
makeRules(const std::vector<std::string> &enabled, const LintLimits &limits)
{
    auto wanted = [&](const char *id) {
        if (enabled.empty())
            return true;
        return std::find(enabled.begin(), enabled.end(), id) !=
               enabled.end();
    };

    std::vector<std::unique_ptr<Rule>> rules;
    if (wanted(kMemDestRegsInfo.id))
        rules.push_back(std::make_unique<MemDestRegsRule>());
    if (wanted(kBaseUpdateSplitInfo.id))
        rules.push_back(std::make_unique<BaseUpdateSplitRule>());
    if (wanted(kMemFootprintInfo.id))
        rules.push_back(std::make_unique<MemFootprintRule>());
    if (wanted(kCallReturnInfo.id))
        rules.push_back(std::make_unique<CallReturnRule>());
    if (wanted(kBranchSrcRegsInfo.id))
        rules.push_back(std::make_unique<BranchSrcRegsRule>());
    if (wanted(kFlagDestInfo.id))
        rules.push_back(std::make_unique<FlagDestRule>());
    if (wanted(kTakenTargetInfo.id))
        rules.push_back(std::make_unique<TakenTargetRule>());
    if (wanted(kDefBeforeUseInfo.id))
        rules.push_back(std::make_unique<DefBeforeUseRule>());
    if (wanted(kPcTeleportInfo.id))
        rules.push_back(std::make_unique<PcTeleportRule>(limits));
    if (wanted(kRasBalanceInfo.id))
        rules.push_back(std::make_unique<RasBalanceRule>(limits));
    if (wanted(kBranchDeduceInfo.id))
        rules.push_back(std::make_unique<BranchDeduceRule>());
    return rules;
}

} // namespace lint
} // namespace trb
