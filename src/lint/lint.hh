/**
 * @file
 * trb::lint -- a static checker for converted ChampSim µop streams.
 *
 * The linter proves (or disproves) that a converted trace obeys the
 * invariants a *fully improved* cvp2champsim conversion guarantees --
 * exactly the six defect classes of the paper (Section 3) plus structural
 * sanity (def-before-use, PC continuity, taken-target consistency, RAS
 * balance, branch-type deducibility) -- without running a single simulated
 * cycle.  Two modes:
 *
 *  - paired: the originating CVP-1 stream is available, so the linter
 *    re-aligns each CVP record with the one or two µops it produced and
 *    every rule (including the six paper rules) can run;
 *  - stream-only: just the ChampSim trace; the structural rules run.
 *
 * Entry points: lintConverted() / lintTrace() for whole traces, the
 * streaming Linter class for converters that want to check as they emit,
 * and maybeLintConverted() -- the TRB_LINT=1 hook the experiment harness
 * calls after every conversion so any experiment can self-check its
 * inputs.  Violation totals land in the trb::obs registry as
 * lint.<rule>.violations.
 */

#ifndef TRB_LINT_LINT_HH
#define TRB_LINT_LINT_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "lint/rule.hh"
#include "trace/champsim_trace.hh"
#include "trace/cvp_trace.hh"

namespace trb
{
namespace lint
{

/** Configuration of one lint run. */
struct LintOptions
{
    /** Rule ids to run; empty means every rule. */
    std::vector<std::string> enable;

    /** Rule ids to skip (applied after @p enable). */
    std::vector<std::string> disable;

    /** Structural-rule thresholds. */
    LintLimits limits;

    /**
     * Stored diagnostics per rule; counting always covers the full
     * stream.  0 stores none (counts only).
     */
    std::uint64_t maxDiagnosticsPerRule = 20;

    /**
     * Resolve enable/disable into the rule-id list to instantiate.
     * Returns false and fills @p bad_id when a listed id is unknown.
     */
    bool resolveRules(std::vector<std::string> &out,
                      std::string &bad_id) const;
};

/** Per-rule violation total (full count, not capped). */
struct RuleCount
{
    std::string rule;
    Severity severity = Severity::Error;
    std::uint64_t count = 0;
};

/** Result of one lint run. */
struct LintReport
{
    bool paired = false;             //!< CVP stream was available
    std::uint64_t unitsScanned = 0;  //!< CVP records (paired) or µops
    std::uint64_t uopsScanned = 0;   //!< ChampSim records examined

    /** Stored findings, stream order, capped per rule. */
    std::vector<Diagnostic> diagnostics;

    /** Full per-rule totals, catalog order, only rules that fired. */
    std::vector<RuleCount> counts;

    std::uint64_t errors = 0;    //!< total Error findings
    std::uint64_t warnings = 0;  //!< total Warn findings
    std::uint64_t infos = 0;     //!< total Info findings

    /** Violations = findings at Warn or above. */
    std::uint64_t violations() const { return errors + warnings; }
    bool clean() const { return violations() == 0; }

    /** Total for one rule id (0 when it did not fire). */
    std::uint64_t countFor(const std::string &rule) const;
};

/**
 * Streaming linter: feed converted instructions as they are produced,
 * then finish().  Paired and stream-only units may not be mixed within
 * one run.
 */
class Linter
{
  public:
    explicit Linter(const LintOptions &opts = {});
    ~Linter();

    Linter(const Linter &) = delete;
    Linter &operator=(const Linter &) = delete;

    /** Paired mode: one CVP record and the µops it converted into. */
    void add(const CvpRecord &cvp, const ChampSimRecord *uops, unsigned n);

    /** Stream-only mode: one converted µop. */
    void add(const ChampSimRecord &uop);

    /** Run end-of-stream rules and build the report. */
    LintReport finish();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Lint a ChampSim trace alone (structural rules only). */
LintReport lintTrace(const ChampSimTrace &trace,
                     const LintOptions &opts = {});

/**
 * Lint a converted trace against its originating CVP-1 stream (all
 * rules).  Re-aligns each CVP record with its µops by PC: the converter
 * places split µops at pc and pc+2, and real instruction PCs are 4-byte
 * spaced, so the grouping is unambiguous; records that cannot be aligned
 * are reported under the "align" pseudo-rule.
 */
LintReport lintConverted(const CvpTrace &cvp, const ChampSimTrace &trace,
                         const LintOptions &opts = {});

/** Human-readable report (diagnostics + per-rule totals). */
void writeReportText(std::ostream &os, const LintReport &report,
                     const std::string &name);

/**
 * Machine-readable report object:
 * {"name", "paired", "units", "uops",
 *  "totals": {"errors", "warnings", "infos"},
 *  "rules": {id: {"severity", "count"}, ...},
 *  "diagnostics": [{"rule", "severity", "index", "pc", "message",
 *                   "fix"}, ...]}
 */
void writeReportJson(std::ostream &os, const LintReport &report,
                     const std::string &name);

/** True when TRB_LINT is set to a non-zero/non-empty value (read once). */
bool lintEnabledFromEnv();

/**
 * The self-check hook: when TRB_LINT=1, lint @p trace against @p cvp,
 * fold per-rule totals into the global obs registry
 * (lint.<rule>.violations, lint.streams, lint.streams_dirty) and log a
 * per-stream summary at debug level.  Returns the violation count (0
 * when lint is disabled).  Thread-safe; called by the experiment harness
 * after every conversion.
 */
std::uint64_t maybeLintConverted(const std::string &tag, const CvpTrace &cvp,
                                 const ChampSimTrace &trace);

} // namespace lint
} // namespace trb

#endif // TRB_LINT_LINT_HH
