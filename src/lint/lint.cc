#include "lint/lint.hh"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "common/env.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"

namespace trb
{
namespace lint
{

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Info: return "info";
      case Severity::Warn: return "warn";
      case Severity::Error: return "error";
    }
    return "?";
}

bool
LintOptions::resolveRules(std::vector<std::string> &out,
                          std::string &bad_id) const
{
    for (const std::string &id : enable) {
        if (!findRule(id)) {
            bad_id = id;
            return false;
        }
    }
    for (const std::string &id : disable) {
        if (!findRule(id)) {
            bad_id = id;
            return false;
        }
    }
    out.clear();
    for (const RuleInfo &info : ruleCatalog()) {
        if (info.id == alignRuleInfo().id)
            continue;   // the Linter itself owns the pseudo-rule
        if (info.wholeProgram)
            continue;   // CFG rules run in flow::analyzeTrace(), not here
        bool on = enable.empty() ||
                  std::find(enable.begin(), enable.end(), info.id) !=
                      enable.end();
        if (on && std::find(disable.begin(), disable.end(), info.id) !=
                      disable.end())
            on = false;
        if (on)
            out.push_back(info.id);
    }
    return true;
}

std::uint64_t
LintReport::countFor(const std::string &rule) const
{
    for (const RuleCount &rc : counts)
        if (rc.rule == rule)
            return rc.count;
    return 0;
}

// ---------------------------------------------------------------------
// The diagnostic sink: full counting, capped storage.

namespace
{

class CountingSink : public DiagnosticSink
{
  public:
    explicit CountingSink(std::uint64_t cap) : cap_(cap) {}

    void
    report(const RuleInfo &rule, std::uint64_t index, Addr pc,
           std::string message, std::string fix_hint) override
    {
        std::uint64_t &count = counts_[rule.id];
        ++count;
        switch (rule.severity) {
          case Severity::Error: ++errors_; break;
          case Severity::Warn: ++warnings_; break;
          case Severity::Info: ++infos_; break;
        }
        if (count <= cap_) {
            Diagnostic d;
            d.rule = rule.id;
            d.severity = rule.severity;
            d.index = index;
            d.pc = pc;
            d.message = std::move(message);
            d.fixHint = std::move(fix_hint);
            stored_.push_back(std::move(d));
        }
    }

    void
    fill(LintReport &report) const
    {
        report.diagnostics = stored_;
        report.errors = errors_;
        report.warnings = warnings_;
        report.infos = infos_;
        report.counts.clear();
        for (const RuleInfo &info : ruleCatalog()) {
            auto it = counts_.find(info.id);
            if (it == counts_.end() || it->second == 0)
                continue;
            report.counts.push_back({info.id, info.severity, it->second});
        }
    }

  private:
    std::uint64_t cap_;
    std::vector<Diagnostic> stored_;
    std::unordered_map<std::string, std::uint64_t> counts_;
    std::uint64_t errors_ = 0;
    std::uint64_t warnings_ = 0;
    std::uint64_t infos_ = 0;
};

} // namespace

// ---------------------------------------------------------------------
// Linter.

struct Linter::Impl
{
    explicit Impl(const LintOptions &o)
        : opts(o), sink(o.maxDiagnosticsPerRule)
    {
        std::vector<std::string> enabled;
        std::string bad;
        if (!opts.resolveRules(enabled, bad))
            trb_fatal("unknown lint rule '", bad, "'");
        rules = makeRules(enabled, opts.limits);
    }

    LintOptions opts;
    CountingSink sink;
    std::vector<std::unique_ptr<Rule>> rules;
    std::uint64_t units = 0;
    std::uint64_t uops = 0;
    bool paired = false;
    bool finished = false;
};

Linter::Linter(const LintOptions &opts) : impl_(new Impl(opts))
{
}

Linter::~Linter() = default;

void
Linter::add(const CvpRecord &cvp, const ChampSimRecord *uops, unsigned n)
{
    Impl &im = *impl_;
    trb_assert(!im.finished, "Linter::add after finish");
    im.paired = true;
    LintUnit unit;
    unit.cvp = &cvp;
    unit.uops = uops;
    unit.numUops = n;
    unit.index = im.uops;
    for (auto &rule : im.rules)
        rule->check(unit, im.sink);
    ++im.units;
    im.uops += n;
}

void
Linter::add(const ChampSimRecord &uop)
{
    Impl &im = *impl_;
    trb_assert(!im.finished, "Linter::add after finish");
    LintUnit unit;
    unit.uops = &uop;
    unit.numUops = 1;
    unit.index = im.uops;
    for (auto &rule : im.rules)
        rule->check(unit, im.sink);
    ++im.units;
    ++im.uops;
}

LintReport
Linter::finish()
{
    Impl &im = *impl_;
    trb_assert(!im.finished, "Linter::finish called twice");
    im.finished = true;
    for (auto &rule : im.rules)
        rule->finish(im.sink);
    LintReport report;
    report.paired = im.paired;
    report.unitsScanned = im.units;
    report.uopsScanned = im.uops;
    im.sink.fill(report);
    return report;
}

// ---------------------------------------------------------------------
// Whole-trace entry points.

LintReport
lintTrace(const ChampSimTrace &trace, const LintOptions &opts)
{
    Linter linter(opts);
    for (const ChampSimRecord &cs : trace)
        linter.add(cs);
    return linter.finish();
}

LintReport
lintConverted(const CvpTrace &cvp, const ChampSimTrace &trace,
              const LintOptions &opts)
{
    Linter linter(opts);

    // Alignment diagnostics are collected separately and merged, since
    // the Linter's sink is internal.
    std::vector<Diagnostic> align;
    std::uint64_t align_count = 0;
    auto misalign = [&](std::uint64_t index, Addr pc, std::string msg) {
        ++align_count;
        if (align_count <= opts.maxDiagnosticsPerRule) {
            Diagnostic d;
            d.rule = alignRuleInfo().id;
            d.severity = alignRuleInfo().severity;
            d.index = index;
            d.pc = pc;
            d.message = std::move(msg);
            align.push_back(std::move(d));
        }
    };

    std::size_t j = 0;
    for (std::size_t i = 0; i < cvp.size(); ++i) {
        const CvpRecord &rec = cvp[i];
        if (j >= trace.size()) {
            misalign(j, rec.pc,
                     "converted stream ends before CVP-1 record " +
                         std::to_string(i));
            break;
        }
        if (trace[j].ip != rec.pc) {
            // Resync: scan a short window for the expected PC; µops we
            // jump over are orphans, CVP records we cannot find were
            // dropped by the conversion.
            constexpr std::size_t kResyncWindow = 4;
            std::size_t found = j;
            bool ok = false;
            for (std::size_t w = 1;
                 w <= kResyncWindow && j + w < trace.size(); ++w) {
                if (trace[j + w].ip == rec.pc) {
                    found = j + w;
                    ok = true;
                    break;
                }
            }
            if (ok) {
                misalign(j, rec.pc,
                         std::to_string(found - j) +
                             " converted record(s) at " +
                             std::to_string(j) +
                             " match no CVP-1 record");
                j = found;
            } else {
                misalign(j, rec.pc,
                         "CVP-1 record at pc " + [&] {
                             std::ostringstream os;
                             os << "0x" << std::hex << rec.pc;
                             return os.str();
                         }() + " has no converted record (found ip 0x" +
                             [&] {
                                 std::ostringstream os;
                                 os << std::hex << trace[j].ip;
                                 return os.str();
                             }() + ")");
                continue;   // skip this CVP record, keep j
            }
        }

        // One µop, or two when the converter split a base-update: the
        // second µop sits at pc+2, which no real (4-byte spaced)
        // instruction can occupy.
        unsigned n = 1;
        if (j + 1 < trace.size() && trace[j + 1].ip == rec.pc + 2 &&
            (i + 1 >= cvp.size() || cvp[i + 1].pc != rec.pc + 2))
            n = 2;
        linter.add(rec, &trace[j], n);
        j += n;
    }
    if (j < trace.size())
        misalign(j, trace[j].ip,
                 std::to_string(trace.size() - j) +
                     " trailing converted record(s) match no CVP-1 "
                     "record");

    LintReport report = linter.finish();
    report.paired = true;
    if (align_count > 0) {
        report.diagnostics.insert(report.diagnostics.end(), align.begin(),
                                  align.end());
        report.counts.push_back({alignRuleInfo().id,
                                 alignRuleInfo().severity, align_count});
        report.errors += align_count;
    }
    return report;
}

// ---------------------------------------------------------------------
// Report rendering.

void
writeReportText(std::ostream &os, const LintReport &report,
                const std::string &name)
{
    os << name << ": " << report.unitsScanned << " units, "
       << report.uopsScanned << " uops ("
       << (report.paired ? "paired" : "stream-only") << "): ";
    if (report.clean() && report.infos == 0) {
        os << "clean\n";
        return;
    }
    os << report.errors << " error(s), " << report.warnings
       << " warning(s), " << report.infos << " note(s)\n";
    for (const RuleCount &rc : report.counts)
        os << "  [" << severityName(rc.severity) << "] " << rc.rule << ": "
           << rc.count << " finding(s)\n";
    for (const Diagnostic &d : report.diagnostics) {
        os << "  #" << d.index << " pc=0x" << std::hex << d.pc << std::dec
           << " [" << d.rule << "] " << d.message;
        if (!d.fixHint.empty())
            os << " (fix: " << d.fixHint << ")";
        os << "\n";
    }
}

void
writeReportJson(std::ostream &os, const LintReport &report,
                const std::string &name)
{
    os << "{\"name\": " << obs::jsonQuote(name)
       << ", \"paired\": " << (report.paired ? "true" : "false")
       << ", \"units\": " << report.unitsScanned
       << ", \"uops\": " << report.uopsScanned << ", \"totals\": {"
       << "\"errors\": " << report.errors
       << ", \"warnings\": " << report.warnings
       << ", \"infos\": " << report.infos << "}, \"rules\": {";
    bool first = true;
    for (const RuleCount &rc : report.counts) {
        if (!first)
            os << ", ";
        first = false;
        os << obs::jsonQuote(rc.rule) << ": {\"severity\": "
           << obs::jsonQuote(severityName(rc.severity))
           << ", \"count\": " << rc.count << "}";
    }
    os << "}, \"diagnostics\": [";
    first = true;
    for (const Diagnostic &d : report.diagnostics) {
        if (!first)
            os << ", ";
        first = false;
        std::ostringstream pc;
        pc << "0x" << std::hex << d.pc;
        os << "{\"rule\": " << obs::jsonQuote(d.rule) << ", \"severity\": "
           << obs::jsonQuote(severityName(d.severity))
           << ", \"index\": " << d.index
           << ", \"pc\": " << obs::jsonQuote(pc.str())
           << ", \"message\": " << obs::jsonQuote(d.message)
           << ", \"fix\": " << obs::jsonQuote(d.fixHint) << "}";
    }
    os << "]}";
}

// ---------------------------------------------------------------------
// The TRB_LINT self-check hook.

bool
lintEnabledFromEnv()
{
    static const bool enabled = env::u64("TRB_LINT", 0) != 0;
    return enabled;
}

std::uint64_t
maybeLintConverted(const std::string &tag, const CvpTrace &cvp,
                   const ChampSimTrace &trace)
{
    if (!lintEnabledFromEnv())
        return 0;
    LintOptions opts;
    opts.maxDiagnosticsPerRule = 5;
    LintReport report = lintConverted(cvp, trace, opts);

    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.addCounter("lint.streams");
    if (!report.clean())
        reg.addCounter("lint.streams_dirty");
    for (const RuleCount &rc : report.counts)
        if (rc.severity != Severity::Info)
            reg.addCounter("lint." + rc.rule + ".violations", rc.count);

    trb_debug("lint[", tag, "]: ", report.errors, " error(s), ",
              report.warnings, " warning(s) over ", report.uopsScanned,
              " uops");
    return report.violations();
}

} // namespace lint
} // namespace trb
