/**
 * @file
 * The lint rule interface and registry.
 *
 * A Rule is a stateful linear-scan checker: the Linter feeds it one
 * LintUnit at a time (one originating CVP-1 record together with the one
 * or two ChampSim µops it converted into, or a single µop when no CVP
 * stream is available) and the rule reports Diagnostics through a sink.
 * Rules are constructed fresh per lint run, so they may carry scan state
 * (previous record, def-sets, call-stack balance) without any re-entrancy
 * concerns.
 *
 * The registry (ruleCatalog()) is the authoritative list of rules: ids,
 * default severities, the paper section each rule encodes, and whether the
 * rule needs the originating CVP-1 stream (paired mode) to run.
 */

#ifndef TRB_LINT_RULE_HH
#define TRB_LINT_RULE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lint/diagnostic.hh"
#include "trace/champsim_trace.hh"
#include "trace/cvp_trace.hh"

namespace trb
{
namespace lint
{

/** Static description of one rule (registry entry). */
struct RuleInfo
{
    const char *id;          //!< stable kebab-case identifier
    const char *summary;     //!< one-line description of the invariant
    const char *citation;    //!< paper section / defect class it encodes
    Severity severity;       //!< default severity of its findings
    bool needsCvp;           //!< true: paired (CVP + ChampSim) rules only

    /**
     * True for rules that need the reconstructed whole-program view
     * (CFG + dataflow, trb::flow) rather than a linear scan.  They share
     * the catalog, severities and report machinery, but the streaming
     * Linter skips them; flow::analyzeTrace() runs them.
     */
    bool wholeProgram = false;
};

/** Tunable thresholds of the structural rules. */
struct LintLimits
{
    /**
     * Unmatched returns (returns deduced while the scanned call depth is
     * zero) tolerated before ras-balance reports: a trace captured
     * mid-program legitimately unwinds frames entered before capture.
     */
    std::uint64_t rasSlack = 8;

    /**
     * Largest forward PC step accepted between a non-branch (or
     * not-taken branch) and its successor before pc-teleport reports.
     * Basic blocks are at most a few cachelines apart in any sane
     * layout; converted split µops step by 2, instructions by 4.
     */
    std::uint64_t maxFallthroughGap = 4096;

    /**
     * Largest forward PC step the whole-program CFG builder (trb::flow)
     * accepts as a fall-through *edge*.  Stricter than
     * maxFallthroughGap: an edge claims the two µops are static
     * neighbours, and real code only skips a few conditionally-emitted
     * helper slots (4 bytes each), so one fetch line is generous.
     * Forward steps between this and maxFallthroughGap pass the
     * streaming rule but enter the target block *unexplained* -- the
     * evidence cfg-unreachable is built on.
     */
    std::uint64_t maxContiguousStep = 64;
};

/**
 * One unit of lint work: a converted instruction.  In paired mode, @p cvp
 * points at the originating CVP-1 record and uops[0..numUops) are the
 * ChampSim records it produced (two for a split base-update).  In
 * stream-only mode @p cvp is null and the unit is a single µop.
 */
struct LintUnit
{
    const CvpRecord *cvp = nullptr;
    const ChampSimRecord *uops = nullptr;
    unsigned numUops = 0;
    std::uint64_t index = 0;   //!< µop-stream index of uops[0]
};

/** Where rules deposit their findings. */
class DiagnosticSink
{
  public:
    virtual ~DiagnosticSink() = default;

    /** Report one finding at @p index / @p pc under @p rule. */
    virtual void report(const RuleInfo &rule, std::uint64_t index, Addr pc,
                        std::string message, std::string fix_hint = {}) = 0;
};

/** A stateful linear-scan checker over the converted stream. */
class Rule
{
  public:
    explicit Rule(const RuleInfo &info) : info_(info) {}
    virtual ~Rule() = default;

    Rule(const Rule &) = delete;
    Rule &operator=(const Rule &) = delete;

    const RuleInfo &info() const { return info_; }

    /** Examine one unit; may report through @p sink. */
    virtual void check(const LintUnit &unit, DiagnosticSink &sink) = 0;

    /** Stream end: summary rules (e.g. ras-balance) report here. */
    virtual void finish(DiagnosticSink &sink) { (void)sink; }

  private:
    const RuleInfo &info_;
};

/**
 * The registry: every rule the linter knows, in report order.  The six
 * paper rules come first, then the structural rules, then the pseudo-rule
 * "align" the Linter itself emits when it cannot match a CVP record to
 * the converted stream.
 */
const std::vector<RuleInfo> &ruleCatalog();

/** Registry entry for @p id; null when unknown. */
const RuleInfo *findRule(const std::string &id);

/** The Linter's own alignment pseudo-rule (also in the catalog). */
const RuleInfo &alignRuleInfo();

/**
 * Instantiate fresh rule objects for one lint run.  @p enabled lists rule
 * ids to instantiate; an empty list means every real rule.  Ids are
 * assumed validated (see LintOptions::validate()).
 */
std::vector<std::unique_ptr<Rule>>
makeRules(const std::vector<std::string> &enabled, const LintLimits &limits);

} // namespace lint
} // namespace trb

#endif // TRB_LINT_RULE_HH
