/**
 * @file
 * The trb::lint diagnostic type: one finding of the static trace checker,
 * carrying the rule that fired, a severity, the position in the converted
 * stream (record index and PC) and a human-readable message plus fix hint.
 *
 * Severity semantics follow compiler practice: Error means the stream
 * violates an invariant the fully-improved converter guarantees (a real
 * conversion defect), Warn means the stream is suspicious but a legitimate
 * cause exists (e.g. a trace that starts mid-program), Info is advisory.
 */

#ifndef TRB_LINT_DIAGNOSTIC_HH
#define TRB_LINT_DIAGNOSTIC_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace trb
{
namespace lint
{

/** How severe a finding is; ordered so comparisons work. */
enum class Severity : std::uint8_t
{
    Info = 0,
    Warn = 1,
    Error = 2,
};

/** Lower-case severity name ("error", "warn", "info"). */
const char *severityName(Severity s);

/** One finding of the linter. */
struct Diagnostic
{
    std::string rule;        //!< rule id that fired (e.g. "base-update-split")
    Severity severity = Severity::Error;
    std::uint64_t index = 0; //!< index into the converted (µop) stream
    Addr pc = 0;             //!< PC of the offending record
    std::string message;     //!< what invariant is violated, with evidence
    std::string fixHint;     //!< which converter improvement/action fixes it
};

} // namespace lint
} // namespace trb

#endif // TRB_LINT_DIAGNOSTIC_HH
