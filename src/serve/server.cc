#include "serve/server.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/env.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "sim/simulator.hh"

namespace trb
{
namespace serve
{

namespace
{

obs::MetricsRegistry &
reg()
{
    return obs::MetricsRegistry::global();
}

} // namespace

ServeConfig
ServeConfig::fromEnv()
{
    ServeConfig cfg;
    cfg.socketPath = env::str("TRB_SERVE_SOCKET", cfg.socketPath);
    cfg.queueBound = static_cast<std::size_t>(
        env::u64("TRB_SERVE_QUEUE", cfg.queueBound));
    cfg.quantum = static_cast<std::size_t>(
        env::u64("TRB_SERVE_QUANTUM", cfg.quantum));
    if (cfg.queueBound == 0)
        trb_fatal("TRB_SERVE_QUEUE must be at least 1");
    if (cfg.quantum == 0)
        trb_fatal("TRB_SERVE_QUANTUM must be at least 1");
    return cfg;
}

ServeDaemon::ServeDaemon(ServeConfig cfg, par::ThreadPool *pool)
    : cfg_(std::move(cfg)),
      pool_(pool ? pool : &par::ThreadPool::global()),
      queue_(cfg_.queueBound, cfg_.quantum)
{
    maxInflight_ =
        cfg_.maxInflight ? cfg_.maxInflight : pool_->jobs();
}

ServeDaemon::~ServeDaemon()
{
    stop();
}

double
ServeDaemon::uptimeSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - startTime_)
        .count();
}

Status
ServeDaemon::start()
{
    if (running_)
        return Status::internal("daemon already running")
            .rule("serve.start");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.socketPath.size() >= sizeof(addr.sun_path))
        return Status::ioError("socket path longer than sun_path (" +
                               cfg_.socketPath + ")")
            .at(cfg_.socketPath)
            .rule("serve.socket");
    std::strncpy(addr.sun_path, cfg_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return Status::ioError(std::string("socket: ") +
                               std::strerror(errno))
            .rule("serve.socket");

    // Replace a stale socket file from a crashed predecessor.
    ::unlink(cfg_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        Status st = Status::ioError(std::string("bind: ") +
                                    std::strerror(errno))
                        .at(cfg_.socketPath)
                        .rule("serve.socket");
        ::close(listenFd_);
        listenFd_ = -1;
        return st;
    }
    if (::listen(listenFd_, 64) != 0) {
        Status st = Status::ioError(std::string("listen: ") +
                                    std::strerror(errno))
                        .at(cfg_.socketPath)
                        .rule("serve.socket");
        ::close(listenFd_);
        listenFd_ = -1;
        return st;
    }

    startTime_ = std::chrono::steady_clock::now();
    stopping_ = false;
    running_ = true;
    reg().setGauge("serve.inflight", 0.0);
    reg().setGauge("serve.queue_depth", 0.0);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    dispatchThread_ = std::thread([this] { dispatchLoop(); });
    trb_inform("trace_served listening on ", cfg_.socketPath,
               " (jobs ", pool_->jobs(), ", queue ", cfg_.queueBound,
               ", quantum ", cfg_.quantum, ")");
    return Status{};
}

void
ServeDaemon::stop()
{
    if (!running_)
        return;
    {
        std::lock_guard<std::mutex> lock(dispatchMutex_);
        stopping_ = true;
    }
    dispatchCv_.notify_all();

    // Unblock accept(); on Linux a shutdown listening socket returns
    // EINVAL from accept, which the loop treats as "time to go".
    ::shutdown(listenFd_, SHUT_RDWR);
    acceptThread_.join();

    // The dispatcher answers everything still queued with a typed busy
    // reply, then exits once nothing is inflight.
    dispatchThread_.join();

    // Hang up every connection; the readers see EOF and exit.
    {
        std::lock_guard<std::mutex> lock(connsMutex_);
        for (auto &conn : conns_)
            ::shutdown(conn->fd, SHUT_RDWR);
    }
    {
        std::lock_guard<std::mutex> lock(connsMutex_);
        for (auto &conn : conns_) {
            if (conn->reader.joinable())
                conn->reader.join();
            ::close(conn->fd);
        }
        conns_.clear();
    }

    // Late pushes that raced the dispatcher's drain go unanswered (the
    // peer is gone); discard them so nothing dangles.
    Job job;
    while (queue_.pop(job)) {
    }

    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(cfg_.socketPath.c_str());
    running_ = false;
    trb_inform("trace_served stopped (", served_.load(),
               " requests served)");
}

void
ServeDaemon::reapFinishedConns()
{
    std::lock_guard<std::mutex> lock(connsMutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
        Conn &conn = **it;
        if (conn.done && conn.pendingJobs == 0) {
            conn.reader.join();
            ::close(conn.fd);
            it = conns_.erase(it);
        } else {
            ++it;
        }
    }
}

void
ServeDaemon::acceptLoop()
{
    for (;;) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;   // closed or shut down: stopping
        }
        if (stopping_) {
            ::close(fd);
            return;
        }
        reg().addCounter("serve.connections");
        {
            std::lock_guard<std::mutex> lock(connsMutex_);
            conns_.push_back(std::make_unique<Conn>());
            Conn *conn = conns_.back().get();
            conn->fd = fd;
            conn->client = "conn-" + std::to_string(++connCounter_);
            conn->reader =
                std::thread([this, conn] { readerLoop(conn); });
        }
        reapFinishedConns();
    }
}

void
ServeDaemon::sendReply(Conn *conn, const std::string &payload)
{
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    if (Status st = writeFrame(conn->fd, payload); !st.ok())
        trb_debug("reply to ", conn->client, " failed: ",
                  st.toString());
}

void
ServeDaemon::readerLoop(Conn *conn)
{
    bool violated = false;
    for (;;) {
        std::string payload;
        Status st = readFrame(conn->fd, payload);
        if (!st.ok()) {
            // A framing violation cannot be resynchronised: report it
            // once (best effort) and hang up.  Clean closes and
            // shutdown races stay quiet.
            if (!isCleanClose(st) && !stopping_) {
                trb_debug(conn->client, ": ", st.toString());
                if (st.errorClass() == ErrorClass::CorruptRecord) {
                    sendReply(conn, errorReplyJson("", "", st));
                    violated = true;
                }
            }
            break;
        }

        ServeRequest req;
        st = parseRequest(payload, req);
        if (!st.ok()) {
            reg().addCounter("serve.rejected.malformed");
            // req.op/req.id hold whatever parsed before the failure;
            // a fully undecodable document echoes neither.
            const bool decoded = st.ruleViolated() != "serve.json" &&
                                 st.ruleViolated() != "serve.op";
            sendReply(conn,
                      errorReplyJson(decoded ? opName(req.op) : "",
                                     decoded ? req.id : "", st));
            continue;
        }

        switch (req.op) {
          case Op::Ping:
            sendReply(conn, pingReplyJson(req.id, uptimeSeconds()));
            break;
          case Op::Stats:
            sendReply(conn, statsReplyJson(req.id, uptimeSeconds(),
                                           pool_->jobs(),
                                           cfg_.queueBound,
                                           cfg_.quantum));
            break;
          case Op::Sim: {
            // The request moves into the queue before push() decides
            // its fate; keep the id for the rejection path.
            const std::string id = req.id;
            conn->pendingJobs.fetch_add(1);
            if (!queue_.push(conn->client,
                             Job{conn, std::move(req)})) {
                conn->pendingJobs.fetch_sub(1);
                reg().addCounter("serve.rejected.busy");
                sendReply(conn,
                          errorReplyJson(
                              "sim", id,
                              Status::busy(
                                  "queue full (" +
                                  std::to_string(cfg_.queueBound) +
                                  " requests); back off and resubmit")
                                  .rule("serve.queue-bound")));
                break;
            }
            reg().addCounter("serve.accepted");
            reg().setGauge("serve.queue_depth",
                           static_cast<double>(queue_.depth()));
            // Touch the mutex before notifying so the wake-up cannot
            // slip between the dispatcher's predicate and its wait.
            {
                std::lock_guard<std::mutex> lock(dispatchMutex_);
            }
            dispatchCv_.notify_all();
            break;
          }
        }
    }
    // Hang up so a peer waiting for EOF sees it now rather than at the
    // next reap.  A violated stream is cut outright (any inflight
    // replies are forfeit -- the framing is broken anyway); a cleanly
    // closed one keeps its write side while sims are still pending, so
    // pipelined replies flush to a half-closed peer.
    if (violated || conn->pendingJobs.load() == 0)
        ::shutdown(conn->fd, SHUT_RDWR);
    else
        ::shutdown(conn->fd, SHUT_RD);
    conn->done = true;
}

void
ServeDaemon::dispatchLoop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(dispatchMutex_);
            dispatchCv_.wait(lock, [this] {
                return stopping_.load() ||
                       (queue_.depth() > 0 &&
                        inflight_.load() < maxInflight_);
            });
            if (stopping_)
                break;
        }
        Job job;
        if (!queue_.pop(job))
            continue;
        inflight_.fetch_add(1);
        reg().setGauge("serve.inflight",
                       static_cast<double>(inflight_.load()));
        reg().setGauge("serve.queue_depth",
                       static_cast<double>(queue_.depth()));
        const std::uint64_t seq = seq_.fetch_add(1) + 1;
        pool_->submit([this, job = std::move(job), seq]() mutable {
            runSim(std::move(job), seq);
        });
    }

    // Drain: everything still queued gets a typed shutdown-busy reply.
    Job job;
    while (queue_.pop(job)) {
        sendReply(job.conn,
                  errorReplyJson("sim", job.req.id,
                                 Status::busy("server shutting down")
                                     .rule("serve.shutdown")));
        job.conn->pendingJobs.fetch_sub(1);
    }
    reg().setGauge("serve.queue_depth", 0.0);

    // Wait for inflight simulations to flush their replies.
    std::unique_lock<std::mutex> lock(dispatchMutex_);
    dispatchCv_.wait(lock, [this] { return inflight_.load() == 0; });
}

void
ServeDaemon::runSim(Job job, std::uint64_t seq)
{
    std::string reply;
    Expected<CvpTrace> trace = resolveTrace(job.req);
    if (!trace.ok()) {
        reply = errorReplyJson("sim", job.req.id, trace.status());
    } else {
        try {
            SimResult result =
                simulate(trace.value(),
                         SimRequest{
                             .imps = job.req.imps,
                             .params = job.req.ipc1 ? ipc1Config()
                                                    : modernConfig(),
                             .warmupFraction = job.req.warmupFraction,
                             .useStore = job.req.useStore,
                         });
            reply = simReplyJson(job.req.id, result, seq);
            served_.fetch_add(1);
            reg().addCounter("serve.served");
            reg().addCounter("serve.client." + job.conn->client +
                             ".served");
        } catch (const std::exception &e) {
            reply = errorReplyJson("sim", job.req.id,
                                   Status::internal(e.what()));
        }
    }
    sendReply(job.conn, reply);
    job.conn->pendingJobs.fetch_sub(1);
    reg().setGauge("serve.inflight",
                   static_cast<double>(inflight_.load() - 1));
    // Decrement and notify under the lock: stop() may destroy the
    // daemon as soon as the dispatcher observes inflight == 0, and the
    // dispatcher can only observe it after this critical section ends.
    {
        std::lock_guard<std::mutex> lock(dispatchMutex_);
        inflight_.fetch_sub(1);
        dispatchCv_.notify_all();
    }
}

} // namespace serve
} // namespace trb
