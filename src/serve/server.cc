#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/env.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "sim/simulator.hh"

namespace trb
{
namespace serve
{

namespace
{

obs::MetricsRegistry &
reg()
{
    return obs::MetricsRegistry::global();
}

} // namespace

Status
ServeConfig::validate() const
{
    return validateSocketPath(socketPath);
}

ServeConfig
ServeConfig::fromEnv()
{
    ServeConfig cfg;
    cfg.socketPath = env::str("TRB_SERVE_SOCKET", cfg.socketPath);
    cfg.queueBound = static_cast<std::size_t>(
        env::u64("TRB_SERVE_QUEUE", cfg.queueBound));
    cfg.quantum = static_cast<std::size_t>(
        env::u64("TRB_SERVE_QUANTUM", cfg.quantum));
    cfg.watchdogMs = env::u64("TRB_SERVE_WATCHDOG_MS", cfg.watchdogMs);
    cfg.writeTimeoutMs = env::u64("TRB_SERVE_WRITE_MS",
                                  cfg.writeTimeoutMs);
    if (cfg.queueBound == 0)
        trb_fatal("TRB_SERVE_QUEUE must be at least 1");
    if (cfg.quantum == 0)
        trb_fatal("TRB_SERVE_QUANTUM must be at least 1");
    return cfg;
}

ServeDaemon::ServeDaemon(ServeConfig cfg, par::ThreadPool *pool)
    : cfg_(std::move(cfg)),
      pool_(pool ? pool : &par::ThreadPool::global()),
      queue_(cfg_.queueBound, cfg_.quantum)
{
    maxInflight_ =
        cfg_.maxInflight ? cfg_.maxInflight : pool_->jobs();
}

ServeDaemon::~ServeDaemon()
{
    stop();
}

double
ServeDaemon::uptimeSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - startTime_)
        .count();
}

Status
ServeDaemon::start()
{
    if (running_)
        return Status::internal("daemon already running")
            .rule("serve.start");

    // Validate before touching the filesystem: an over-long path would
    // otherwise be silently truncated by strncpy and bind something
    // other than what the operator asked for.
    if (Status st = cfg_.validate(); !st.ok())
        return st.at(cfg_.socketPath);

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return Status::ioError(std::string("socket: ") +
                               std::strerror(errno))
            .rule("serve.socket");

    // Replace a stale socket file from a crashed predecessor.
    ::unlink(cfg_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        Status st = Status::ioError(std::string("bind: ") +
                                    std::strerror(errno))
                        .at(cfg_.socketPath)
                        .rule("serve.socket");
        ::close(listenFd_);
        listenFd_ = -1;
        return st;
    }
    if (::listen(listenFd_, 64) != 0) {
        Status st = Status::ioError(std::string("listen: ") +
                                    std::strerror(errno))
                        .at(cfg_.socketPath)
                        .rule("serve.socket");
        ::close(listenFd_);
        listenFd_ = -1;
        return st;
    }

    startTime_ = std::chrono::steady_clock::now();
    stopping_ = false;
    running_ = true;
    reg().setGauge("serve.inflight", 0.0);
    reg().setGauge("serve.queue_depth", 0.0);
    reg().setGauge("serve.inflight_age_ms", 0.0);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    dispatchThread_ = std::thread([this] { dispatchLoop(); });
    if (cfg_.watchdogMs > 0)
        watchdogThread_ = std::thread([this] { watchdogLoop(); });
    trb_inform("trace_served listening on ", cfg_.socketPath,
               " (jobs ", pool_->jobs(), ", queue ", cfg_.queueBound,
               ", quantum ", cfg_.quantum, ", watchdog ",
               cfg_.watchdogMs, " ms)");
    return Status{};
}

void
ServeDaemon::stop()
{
    if (!running_)
        return;
    {
        std::lock_guard<std::mutex> lock(dispatchMutex_);
        stopping_ = true;
    }
    {
        std::lock_guard<std::mutex> lock(watchdogMutex_);
    }
    dispatchCv_.notify_all();
    watchdogCv_.notify_all();

    // Unblock accept(); on Linux a shutdown listening socket returns
    // EINVAL from accept, which the loop treats as "time to go".
    ::shutdown(listenFd_, SHUT_RDWR);
    acceptThread_.join();

    // The dispatcher answers everything still queued with a typed busy
    // reply, then exits once nothing is inflight.  The watchdog stays
    // alive until after that wait: it is what cancels deadline-bound
    // work that would otherwise hold shutdown hostage.
    dispatchThread_.join();
    if (watchdogThread_.joinable())
        watchdogThread_.join();

    // Hang up every connection; the readers see EOF and exit.
    {
        std::lock_guard<std::mutex> lock(connsMutex_);
        for (auto &conn : conns_)
            ::shutdown(conn->fd, SHUT_RDWR);
    }
    {
        std::lock_guard<std::mutex> lock(connsMutex_);
        for (auto &conn : conns_) {
            if (conn->reader.joinable())
                conn->reader.join();
            ::close(conn->fd);
        }
        conns_.clear();
    }

    // Late pushes that raced the dispatcher's drain go unanswered (the
    // peer is gone); discard them so nothing dangles.
    Job job;
    while (queue_.pop(job)) {
    }

    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(cfg_.socketPath.c_str());
    running_ = false;
    trb_inform("trace_served stopped (", served_.load(),
               " requests served)");
}

void
ServeDaemon::reapFinishedConns()
{
    std::lock_guard<std::mutex> lock(connsMutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
        Conn &conn = **it;
        if (conn.done && conn.pendingJobs == 0) {
            conn.reader.join();
            ::close(conn.fd);
            it = conns_.erase(it);
        } else {
            ++it;
        }
    }
}

void
ServeDaemon::acceptLoop()
{
    for (;;) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;   // closed or shut down: stopping
        }
        if (stopping_) {
            ::close(fd);
            return;
        }
        reg().addCounter("serve.connections");
        {
            std::lock_guard<std::mutex> lock(connsMutex_);
            conns_.push_back(std::make_unique<Conn>());
            Conn *conn = conns_.back().get();
            conn->fd = fd;
            conn->client = "conn-" + std::to_string(++connCounter_);
            // Resolve chaos once per connection: the plan is a pure
            // function of (spec, seed, lane name), so a test can
            // predict which lanes are afflicted.
            resil::FaultInjector &inj = resil::FaultInjector::global();
            if (inj.enabled()) {
                conn->chaos = inj.plan(conn->client);
                conn->chaosOn = conn->chaos.anyConnFault();
            }
            conn->reader =
                std::thread([this, conn] { readerLoop(conn); });
        }
        reapFinishedConns();
    }
}

void
ServeDaemon::sendReply(Conn *conn, const std::string &payload)
{
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    if (conn->dead.load(std::memory_order_relaxed))
        return;
    WriteOptions opts;
    opts.timeoutMs = static_cast<unsigned>(cfg_.writeTimeoutMs);
    opts.chaos = conn->chaosOn ? &conn->chaos : nullptr;
    opts.frameIndex = conn->framesWritten++;
    if (Status st = writeFrame(conn->fd, payload, opts); !st.ok()) {
        // The peer is unreachable (gone, wedged, or chaos cut the
        // wire): stop writing and release any workers still computing
        // answers nobody can receive.
        conn->dead.store(true);
        if (st.errorClass() == ErrorClass::Timeout)
            reg().addCounter("serve.write.timeout");
        trb_debug("reply to ", conn->client, " failed: ",
                  st.toString());
        cancelConnInflight(conn, "peer " + conn->client +
                                     " unreachable: " + st.message());
    }
}

void
ServeDaemon::cancelConnInflight(Conn *conn, const std::string &why)
{
    std::vector<std::shared_ptr<resil::CancelToken>> fire;
    {
        std::lock_guard<std::mutex> lock(inflightMutex_);
        for (auto &entry : inflightMap_)
            if (entry.second.conn == conn)
                fire.push_back(entry.second.token);
    }
    for (auto &token : fire)
        token->cancel(why);
}

void
ServeDaemon::readerLoop(Conn *conn)
{
    bool violated = false;
    for (;;) {
        std::string payload;
        Status st = readFrame(conn->fd, payload);
        if (!st.ok()) {
            // A framing violation cannot be resynchronised: report it
            // once (best effort) and hang up.  Clean closes and
            // shutdown races stay quiet.
            if (!isCleanClose(st) && !stopping_) {
                trb_debug(conn->client, ": ", st.toString());
                if (st.errorClass() == ErrorClass::CorruptRecord) {
                    sendReply(conn, errorReplyJson("", "", st));
                    violated = true;
                }
            }
            break;
        }

        ServeRequest req;
        st = parseRequest(payload, req);
        if (!st.ok()) {
            reg().addCounter("serve.rejected.malformed");
            // req.op/req.id hold whatever parsed before the failure;
            // a fully undecodable document echoes neither.
            const bool decoded = st.ruleViolated() != "serve.json" &&
                                 st.ruleViolated() != "serve.op";
            sendReply(conn,
                      errorReplyJson(decoded ? opName(req.op) : "",
                                     decoded ? req.id : "", st));
            continue;
        }

        switch (req.op) {
          case Op::Ping:
            sendReply(conn, pingReplyJson(req.id, uptimeSeconds()));
            break;
          case Op::Stats:
            sendReply(conn, statsReplyJson(req.id, uptimeSeconds(),
                                           pool_->jobs(),
                                           cfg_.queueBound,
                                           cfg_.quantum));
            break;
          case Op::Sim: {
            // The request moves into the queue before push() decides
            // its fate; keep the id for the rejection path.
            const std::string id = req.id;
            Job job;
            job.conn = conn;
            job.req = std::move(req);
            job.token = std::make_shared<resil::CancelToken>();
            // The deadline clock starts at admission: queueing time
            // counts against the client's budget.
            if (job.req.deadlineMs > 0)
                job.deadline = resil::Deadline::after(job.req.deadlineMs);
            conn->pendingJobs.fetch_add(1);
            if (!queue_.push(conn->client, std::move(job))) {
                conn->pendingJobs.fetch_sub(1);
                reg().addCounter("serve.rejected.busy");
                sendReply(conn,
                          errorReplyJson(
                              "sim", id,
                              Status::busy(
                                  "queue full (" +
                                  std::to_string(cfg_.queueBound) +
                                  " requests); back off and resubmit")
                                  .rule("serve.queue-bound")));
                break;
            }
            reg().addCounter("serve.accepted");
            reg().setGauge("serve.queue_depth",
                           static_cast<double>(queue_.depth()));
            // Touch the mutex before notifying so the wake-up cannot
            // slip between the dispatcher's predicate and its wait.
            {
                std::lock_guard<std::mutex> lock(dispatchMutex_);
            }
            dispatchCv_.notify_all();
            break;
          }
        }
    }
    // Hang up so a peer waiting for EOF sees it now rather than at the
    // next reap.  A violated stream is cut outright (any inflight
    // replies are forfeit -- the framing is broken anyway); a cleanly
    // closed one keeps its write side while sims are still pending, so
    // pipelined replies flush to a half-closed peer.
    if (violated || conn->pendingJobs.load() == 0)
        ::shutdown(conn->fd, SHUT_RDWR);
    else
        ::shutdown(conn->fd, SHUT_RD);
    conn->done = true;
}

void
ServeDaemon::dispatchLoop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(dispatchMutex_);
            dispatchCv_.wait(lock, [this] {
                return stopping_.load() ||
                       (queue_.depth() > 0 &&
                        inflight_.load() < maxInflight_);
            });
            if (stopping_)
                break;
        }
        Job popped;
        if (!queue_.pop(popped))
            continue;
        reg().setGauge("serve.queue_depth",
                       static_cast<double>(queue_.depth()));
        auto job = std::make_shared<Job>(std::move(popped));

        // A peer already declared dead cannot receive any reply: drop
        // the work instead of computing an answer for nobody.
        if (job->conn->dead.load(std::memory_order_relaxed)) {
            reg().addCounter("serve.dropped.dead");
            job->conn->pendingJobs.fetch_sub(1);
            continue;
        }
        // A deadline that expired while queued is answered without
        // burning a worker.
        if (job->deadline.expired()) {
            reg().addCounter("serve.timeout.queued");
            sendReply(job->conn,
                      errorReplyJson(
                          "sim", job->req.id,
                          Status::timeout(
                              "deadline of " +
                              std::to_string(job->req.deadlineMs) +
                              " ms expired while queued")
                              .rule("serve.deadline")));
            job->conn->pendingJobs.fetch_sub(1);
            continue;
        }

        inflight_.fetch_add(1);
        reg().setGauge("serve.inflight",
                       static_cast<double>(inflight_.load()));
        const std::uint64_t seq = seq_.fetch_add(1) + 1;
        {
            std::lock_guard<std::mutex> lock(inflightMutex_);
            inflightMap_.emplace(
                seq, Inflight{job->conn, job->req.id,
                              std::chrono::steady_clock::now(),
                              job->deadline, job->token, false});
        }
        // The cancel flag is re-tested when a pool worker picks the
        // task up: work cancelled while pool-queued never starts.
        pool_->submit([this, job, seq] { runSim(job, seq); },
                      &job->token->flag(),
                      [this, job, seq] {
                          cancelledBeforeStart(job, seq);
                      });
    }

    // Drain: everything still queued gets a typed shutdown-busy reply.
    Job job;
    while (queue_.pop(job)) {
        sendReply(job.conn,
                  errorReplyJson("sim", job.req.id,
                                 Status::busy("server shutting down")
                                     .rule("serve.shutdown")));
        job.conn->pendingJobs.fetch_sub(1);
    }
    reg().setGauge("serve.queue_depth", 0.0);

    // Wait for inflight simulations to flush their replies.
    std::unique_lock<std::mutex> lock(dispatchMutex_);
    dispatchCv_.wait(lock, [this] { return inflight_.load() == 0; });
}

void
ServeDaemon::runSim(std::shared_ptr<Job> job, std::uint64_t seq)
{
    std::string reply;
    Expected<CvpTrace> trace = resolveTrace(job->req);
    if (!trace.ok()) {
        reply = errorReplyJson("sim", job->req.id, trace.status());
    } else {
        try {
            job->token->throwIfCancelled();
            SimResult result =
                simulate(trace.value(),
                         SimRequest{
                             .imps = job->req.imps,
                             .params = job->req.ipc1 ? ipc1Config()
                                                     : modernConfig(),
                             .warmupFraction = job->req.warmupFraction,
                             .useStore = job->req.useStore,
                             .cancel = job->token.get(),
                         });
            reply = simReplyJson(job->req.id, result, seq);
            served_.fetch_add(1);
            reg().addCounter("serve.served");
            reg().addCounter("serve.client." + job->conn->client +
                             ".served");
        } catch (const resil::CancelledError &e) {
            reg().addCounter("serve.timeout.cancelled");
            reply = errorReplyJson("sim", job->req.id,
                                   Status::timeout(e.what())
                                       .rule("serve.timeout"));
        } catch (const std::exception &e) {
            reply = errorReplyJson("sim", job->req.id,
                                   Status::internal(e.what()));
        }
    }
    finishJob(job, seq, reply);
}

void
ServeDaemon::cancelledBeforeStart(const std::shared_ptr<Job> &job,
                                  std::uint64_t seq)
{
    reg().addCounter("serve.timeout.cancelled");
    finishJob(job, seq,
              errorReplyJson("sim", job->req.id,
                             Status::timeout(job->token->reason())
                                 .rule("serve.timeout")));
}

void
ServeDaemon::finishJob(const std::shared_ptr<Job> &job,
                       std::uint64_t seq, const std::string &reply)
{
    sendReply(job->conn, reply);
    {
        std::lock_guard<std::mutex> lock(inflightMutex_);
        inflightMap_.erase(seq);
    }
    // Registry erase precedes the pendingJobs decrement: a connection
    // is only reaped at pendingJobs == 0, so while a registry entry
    // exists its Conn pointer is alive.
    job->conn->pendingJobs.fetch_sub(1);
    reg().setGauge("serve.inflight",
                   static_cast<double>(inflight_.load() - 1));
    // Decrement and notify under the lock: stop() may destroy the
    // daemon as soon as the dispatcher observes inflight == 0, and the
    // dispatcher can only observe it after this critical section ends.
    {
        std::lock_guard<std::mutex> lock(dispatchMutex_);
        inflight_.fetch_sub(1);
        dispatchCv_.notify_all();
    }
}

void
ServeDaemon::watchdogLoop()
{
    std::unique_lock<std::mutex> lock(watchdogMutex_);
    while (!watchdogCv_.wait_for(
        lock, std::chrono::milliseconds(cfg_.watchdogMs),
        [this] { return stopping_.load(); })) {
        lock.unlock();
        tickWatchdog();
        lock.lock();
    }
}

void
ServeDaemon::tickWatchdog()
{
    // (1) Reap peers that vanished behind a half-closed stream: the
    // reader already exited but sims are still pending.  On a Unix
    // socket POLLHUP means the peer is *fully* gone -- a deliberate
    // half-close (shutdown(SHUT_WR)) keeps its read side open and does
    // not raise it -- so pipelined replies to live half-closed peers
    // keep flowing.
    {
        std::lock_guard<std::mutex> lock(connsMutex_);
        for (auto &conn : conns_) {
            if (conn->dead.load() || !conn->done.load() ||
                conn->pendingJobs.load() == 0)
                continue;
            struct pollfd p = {conn->fd, 0, 0};
            if (::poll(&p, 1, 0) > 0 && (p.revents & POLLHUP)) {
                conn->dead.store(true);
                reg().addCounter("serve.reaped.dead");
                trb_debug(conn->client, ": peer vanished with ",
                          conn->pendingJobs.load(), " pending sims");
            }
        }
    }

    // (2) Walk the dispatched work: gauge the oldest request, collect
    // tokens to fire (expired deadline, or the peer is dead), flag
    // stuck requests once.
    struct Firing
    {
        std::shared_ptr<resil::CancelToken> token;
        std::string reason;
    };
    std::vector<Firing> fire;
    double maxAgeMs = 0.0;
    const auto now = std::chrono::steady_clock::now();
    const double stuckMs = static_cast<double>(cfg_.watchdogMs) * 100.0;
    {
        std::lock_guard<std::mutex> lock(inflightMutex_);
        for (auto &entry : inflightMap_) {
            Inflight &inf = entry.second;
            const double age =
                std::chrono::duration<double, std::milli>(now -
                                                          inf.started)
                    .count();
            maxAgeMs = std::max(maxAgeMs, age);
            if (!inf.stuckLogged && age >= stuckMs) {
                inf.stuckLogged = true;
                reg().addCounter("serve.stuck");
                trb_warn("sim seq ", entry.first, " (",
                         inf.conn->client, ", id \"", inf.id,
                         "\") inflight for ",
                         static_cast<std::uint64_t>(age), " ms");
            }
            if (inf.token->cancelled())
                continue;
            if (inf.conn->dead.load())
                fire.push_back({inf.token, "peer " + inf.conn->client +
                                               " disconnected"});
            else if (inf.deadline.expired())
                fire.push_back(
                    {inf.token,
                     "deadline expired after " +
                         std::to_string(
                             static_cast<std::uint64_t>(age)) +
                         " ms in flight"});
        }
    }
    reg().setGauge("serve.inflight_age_ms", maxAgeMs);
    // Fire outside the registry lock: the cancelled worker's reply
    // path takes inflightMutex_ itself.
    for (Firing &f : fire)
        f.token->cancel(f.reason);

    // (3) Retire fully-drained connections.
    reapFinishedConns();
}

} // namespace serve
} // namespace trb
