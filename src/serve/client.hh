/**
 * @file
 * ServeClient: a blocking connection to a running trace_served, used by
 * tools/trace_client and the serve tests.
 *
 * One client = one connection = one fairness lane on the daemon.  The
 * call() convenience sends one request frame and waits for one reply
 * frame, which matches the protocol's ordering guarantee: replies on a
 * connection arrive in dispatch order, but pipelined sim requests may
 * complete out of submission order, so pipelining callers (the soak
 * test) must pair replies to requests by their "id" tag, not by
 * position.
 *
 * Not thread-safe: one thread per ServeClient (each soak thread opens
 * its own connection, which is also the fair thing to measure).
 */

#ifndef TRB_SERVE_CLIENT_HH
#define TRB_SERVE_CLIENT_HH

#include <string>

#include "resil/status.hh"
#include "serve/protocol.hh"

namespace trb
{
namespace serve
{

/** Blocking client connection to a ServeDaemon socket. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient() { close(); }

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /**
     * Connect to @p socketPath.  BadRequest (rule "serve.socket-path")
     * for a path that cannot fit sun_path, IoError (with errno text)
     * on socket failures, Timeout when @p timeoutMs > 0 and the
     * connection is not established in time (0 blocks indefinitely).
     */
    Status connect(const std::string &socketPath,
                   unsigned timeoutMs = 0);

    /** Hang up; harmless when not connected. */
    void close();

    bool connected() const { return fd_ >= 0; }

    /** @name Raw frame I/O (pipelining callers drive these directly) @{ */
    Status send(const ServeRequest &req);
    Status recv(ServeReply &reply);
    /** @} */

    /**
     * One request, one reply.  The returned Status covers transport
     * only; an error *reply* returns OK with reply.ok == false.
     */
    Status call(const ServeRequest &req, ServeReply &reply);

    /**
     * call() that retries on a `busy` reply with doubling backoff
     * (1 ms, 2 ms, ... capped at 100 ms), up to @p attempts sends.
     * Still OK + reply.ok == false if the last attempt was busy too.
     * With a retry key set, each delay is deterministically jittered.
     */
    Status callRetryBusy(const ServeRequest &req, ServeReply &reply,
                         int attempts = 10);

    /**
     * Stream name keyed into resil::backoffMs' deterministic jitter so
     * a herd of clients rejected together does not retry in lockstep.
     * Empty (the default) keeps the plain doubling schedule; callers
     * pick something client-unique (trace_client uses its pid).
     */
    void setRetryKey(std::string key) { retryKey_ = std::move(key); }

    /** @name Conveniences for the common ops @{ */
    Status ping(ServeReply &reply);
    Status stats(ServeReply &reply);
    /** @} */

  private:
    int fd_ = -1;
    std::string retryKey_;
};

} // namespace serve
} // namespace trb

#endif // TRB_SERVE_CLIENT_HH
