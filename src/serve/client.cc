#include "serve/client.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "resil/retry.hh"

namespace trb
{
namespace serve
{

Status
ServeClient::connect(const std::string &socketPath, unsigned timeoutMs)
{
    close();

    if (Status st = validateSocketPath(socketPath); !st.ok())
        return st.at(socketPath);

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        return Status::ioError(std::string("socket: ") +
                               std::strerror(errno))
            .rule("serve.socket");

    if (timeoutMs == 0) {
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            Status st = Status::ioError(std::string("connect: ") +
                                        std::strerror(errno))
                            .at(socketPath)
                            .rule("serve.socket");
            close();
            return st;
        }
        return Status{};
    }

    // Bounded connect: non-blocking connect, poll for completion, read
    // the verdict out of SO_ERROR, then restore blocking mode.
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS && errno != EAGAIN) {
        Status st = Status::ioError(std::string("connect: ") +
                                    std::strerror(errno))
                        .at(socketPath)
                        .rule("serve.socket");
        close();
        return st;
    }
    if (rc != 0) {
        struct pollfd p = {fd_, POLLOUT, 0};
        int r = ::poll(&p, 1, static_cast<int>(timeoutMs));
        if (r == 0) {
            close();
            return Status::timeout("connect not complete after " +
                                   std::to_string(timeoutMs) + " ms")
                .at(socketPath)
                .rule("serve.connect");
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (r < 0 ||
            ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
            err != 0) {
            Status st = Status::ioError(
                            std::string("connect: ") +
                            std::strerror(err ? err : errno))
                            .at(socketPath)
                            .rule("serve.socket");
            close();
            return st;
        }
    }
    ::fcntl(fd_, F_SETFL, flags);
    return Status{};
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Status
ServeClient::send(const ServeRequest &req)
{
    if (fd_ < 0)
        return Status::ioError("not connected").rule("serve.socket");
    return writeFrame(fd_, requestJson(req));
}

Status
ServeClient::recv(ServeReply &reply)
{
    if (fd_ < 0)
        return Status::ioError("not connected").rule("serve.socket");
    std::string payload;
    if (Status st = readFrame(fd_, payload); !st.ok())
        return st;
    return parseReply(payload, reply);
}

Status
ServeClient::call(const ServeRequest &req, ServeReply &reply)
{
    if (Status st = send(req); !st.ok())
        return st;
    return recv(reply);
}

Status
ServeClient::callRetryBusy(const ServeRequest &req, ServeReply &reply,
                           int attempts)
{
    resil::RetryPolicy policy;
    policy.maxAttempts = attempts < 1 ? 1u
                                      : static_cast<unsigned>(attempts);
    for (int attempt = 1;; ++attempt) {
        if (Status st = call(req, reply); !st.ok())
            return st;
        if (reply.ok ||
            reply.error.errorClass() != ErrorClass::Busy ||
            attempt >= attempts)
            return Status{};
        // An empty retry key keeps the exact doubling schedule; a set
        // one jitters each delay deterministically per key.
        std::this_thread::sleep_for(std::chrono::milliseconds(
            resil::backoffMs(policy, retryKey_,
                             static_cast<unsigned>(attempt))));
    }
}

Status
ServeClient::ping(ServeReply &reply)
{
    ServeRequest req;
    req.op = Op::Ping;
    return call(req, reply);
}

Status
ServeClient::stats(ServeReply &reply)
{
    ServeRequest req;
    req.op = Op::Stats;
    return call(req, reply);
}

} // namespace serve
} // namespace trb
