#include "serve/client.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace trb
{
namespace serve
{

Status
ServeClient::connect(const std::string &socketPath)
{
    close();

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path))
        return Status::ioError("socket path longer than sun_path (" +
                               socketPath + ")")
            .at(socketPath)
            .rule("serve.socket");
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        return Status::ioError(std::string("socket: ") +
                               std::strerror(errno))
            .rule("serve.socket");
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        Status st = Status::ioError(std::string("connect: ") +
                                    std::strerror(errno))
                        .at(socketPath)
                        .rule("serve.socket");
        close();
        return st;
    }
    return Status{};
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Status
ServeClient::send(const ServeRequest &req)
{
    if (fd_ < 0)
        return Status::ioError("not connected").rule("serve.socket");
    return writeFrame(fd_, requestJson(req));
}

Status
ServeClient::recv(ServeReply &reply)
{
    if (fd_ < 0)
        return Status::ioError("not connected").rule("serve.socket");
    std::string payload;
    if (Status st = readFrame(fd_, payload); !st.ok())
        return st;
    return parseReply(payload, reply);
}

Status
ServeClient::call(const ServeRequest &req, ServeReply &reply)
{
    if (Status st = send(req); !st.ok())
        return st;
    return recv(reply);
}

Status
ServeClient::callRetryBusy(const ServeRequest &req, ServeReply &reply,
                           int attempts)
{
    int delayMs = 1;
    for (int attempt = 1;; ++attempt) {
        if (Status st = call(req, reply); !st.ok())
            return st;
        if (reply.ok ||
            reply.error.errorClass() != ErrorClass::Busy ||
            attempt >= attempts)
            return Status{};
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delayMs));
        delayMs = delayMs >= 100 ? 100 : delayMs * 2;
    }
}

Status
ServeClient::ping(ServeReply &reply)
{
    ServeRequest req;
    req.op = Op::Ping;
    return call(req, reply);
}

Status
ServeClient::stats(ServeReply &reply)
{
    ServeRequest req;
    req.op = Op::Stats;
    return call(req, reply);
}

} // namespace serve
} // namespace trb
