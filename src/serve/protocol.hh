/**
 * @file
 * trb::serve wire protocol (schema "trb-serve-v1"): the length-prefixed
 * JSON-lines frames the simulation daemon and its clients exchange over
 * a Unix-domain socket, plus the request/reply document schema.
 *
 * Framing.  One message = one frame:
 *
 *     <LEN>\n<PAYLOAD>\n
 *
 * where LEN is the ASCII decimal byte count of PAYLOAD and PAYLOAD is
 * one JSON document.  LEN is capped at kMaxFrameBytes; a frame whose
 * prefix is not a digit run, or whose announced length exceeds the cap,
 * is unrecoverable (the stream cannot be re-synchronised) and closes
 * the connection.  A malformed *document* inside a well-formed frame is
 * recoverable: the server answers with a typed error reply and keeps
 * the connection open.
 *
 * Documents.  Requests carry an "op" ("sim", "ping", "stats") and an
 * optional client-chosen "id" that every reply echoes.  Errors travel
 * as the trb::resil taxonomy ({"class": "busy", ...}); simulation
 * results travel as the exact SimStats::toBits() u64 bit patterns,
 * hex-encoded so they survive JSON's double-typed numbers -- a reply is
 * bit-identical to a direct simulate() call by construction.  The full
 * field-by-field reference lives in docs/serving.md.
 *
 * Everything here is transport-agnostic except the two frame functions:
 * parsing and rendering work on strings, so tests drive the protocol
 * without a socket.
 */

#ifndef TRB_SERVE_PROTOCOL_HH
#define TRB_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "common/json.hh"
#include "convert/improvements.hh"
#include "pipeline/sim_stats.hh"
#include "resil/fault.hh"
#include "resil/status.hh"
#include "sim/simulator.hh"
#include "trace/cvp_trace.hh"

namespace trb
{
namespace serve
{

/** Wire schema identifier; bump on any incompatible document change. */
constexpr const char *kServeSchema = "trb-serve-v1";

/** Hard cap on one frame's payload (requests and replies). */
constexpr std::size_t kMaxFrameBytes = 4u << 20;

/**
 * @name Framing
 * Blocking frame I/O over a connected stream fd.  Both retry EINTR and
 * short transfers.  readFrame() distinguishes a clean close (EOF on a
 * frame boundary): the returned Status is TruncatedInput with rule
 * "serve.closed" -- test with isCleanClose().
 * @{
 */
Status writeFrame(int fd, const std::string &payload);
Status readFrame(int fd, std::string &payload);

/** Knobs for the daemon-side frame writer. */
struct WriteOptions
{
    /**
     * Per-write readiness bound in ms (poll-based): a peer that stops
     * draining its socket for this long turns the write into a typed
     * Timeout (rule "serve.write") instead of blocking a worker
     * forever.  0 blocks indefinitely (the plain writeFrame()).
     */
    unsigned timeoutMs = 0;

    /**
     * Connection-scoped fault plan (conn-reset / conn-stall /
     * partial-write), or nullptr for a clean wire.  Not owned; must
     * outlive the call.
     */
    const resil::FaultPlan *chaos = nullptr;

    /** 0-based index of this frame on its connection (chaos keying). */
    std::uint64_t frameIndex = 0;
};

/**
 * writeFrame() with write-readiness bounding and deterministic
 * connection chaos.  An injected conn-reset hard-shuts @p fd and
 * reports IoError (rule "serve.chaos"); conn-stall delays the write;
 * partial-write dribbles the frame out in plan-determined chunks
 * (bytes are never corrupted).
 */
Status writeFrame(int fd, const std::string &payload,
                  const WriteOptions &opts);

/** True if @p st is readFrame()'s clean-close condition. */
bool isCleanClose(const Status &st);
/** @} */

/**
 * Typed check that @p path fits sockaddr_un::sun_path (about 107
 * bytes): BadRequest with rule "serve.socket-path" when it does not,
 * instead of the silent truncation strncpy would give.  Shared by the
 * daemon (ServeConfig::validate) and the client's connect().
 */
Status validateSocketPath(const std::string &path);

/** Request operations. */
enum class Op : std::uint8_t
{
    Sim,     //!< run (or answer from the store) one simulation
    Ping,    //!< liveness probe
    Stats,   //!< serve.*/store.* counter snapshot
};

/** Stable wire name of an op ("sim", "ping", "stats"). */
const char *opName(Op op);

/** One parsed request. */
struct ServeRequest
{
    Op op = Op::Ping;

    /** Client-chosen correlation tag, echoed verbatim in the reply. */
    std::string id;

    /**
     * Trace spec (op "sim" only):
     *   "suite:cvp1:<name>"  | "suite:ipc1:<name>"   named suite entry
     *   "preset:<kind>:<seed>"   kind = int|fp|crypto|server|membound
     *   "file:<path>"            CVP-1 trace file (plain or .gz)
     */
    std::string trace;

    /** Dynamic instructions for synthetic specs (ignored for file:). */
    std::uint64_t length = 50000;

    /** Converter improvements (wire: the artifact CLI set names). */
    ImprovementSet imps = kImpNone;

    /** Core configuration: false = modernConfig(), true = ipc1Config(). */
    bool ipc1 = false;

    /** Leading fraction of the converted trace discarded from stats. */
    double warmupFraction = 0.0;

    /** Consult/fill the artifact store for this request. */
    bool useStore = true;

    /**
     * Client deadline in milliseconds from admission (op "sim" only);
     * 0 means unbounded.  A request still queued past its deadline is
     * answered with a typed `timeout` reply without burning a worker;
     * an in-flight one is cancelled and answered `timeout`.
     */
    std::uint64_t deadlineMs = 0;
};

/**
 * Parse one request document.  BadRequest (with rule "serve.<field>")
 * on anything malformed, unknown or out of range; @p out is only
 * meaningful on OK.
 */
Status parseRequest(const std::string &json, ServeRequest &out);

/** Render @p req as a request document (the client side's encoder). */
std::string requestJson(const ServeRequest &req);

/**
 * Materialise the CVP-1 trace a request names: generate the synthetic
 * spec or read the file.  BadRequest on an unparseable spec or unknown
 * suite entry; file errors keep their reader classification
 * (truncated/corrupt/io/bad-magic).
 */
Expected<CvpTrace> resolveTrace(const ServeRequest &req);

/** One parsed reply. */
struct ServeReply
{
    bool ok = false;
    std::string op;
    std::string id;

    /** The typed error of a !ok reply (class, message, rule). */
    Status error;

    /** Dispatch sequence number of a sim reply (daemon-global order). */
    std::uint64_t seq = 0;

    /** Provenance of a sim reply (mirrors SimResult). */
    bool traceFromStore = false;
    bool statsFromStore = false;

    /** Decoded SimStats of a sim reply (exact bits off the wire). */
    SimStats stats;

    /** The whole flattened document (ping/stats consumers). */
    JsonFlat raw;
};

/**
 * Parse one reply document.  The returned Status reports *transport*
 * problems (unparseable JSON, missing fields, a bits vector of the
 * wrong stat-layout length); an error reply parses OK with
 * out.ok == false and the error in out.error.
 */
Status parseReply(const std::string &json, ServeReply &out);

/**
 * @name Reply encoders (the daemon side)
 * errorReplyJson()'s @p op is the wire op name being answered; pass ""
 * when the request was too malformed to decode one (the field is then
 * omitted from the reply).
 * @{
 */
std::string errorReplyJson(const std::string &op, const std::string &id,
                           const Status &st);
std::string pingReplyJson(const std::string &id, double uptimeSeconds);
std::string simReplyJson(const std::string &id, const SimResult &result,
                         std::uint64_t seq);

/**
 * Stats reply: every "serve." / "store." / "resil." counter and gauge
 * of the global metrics registry plus uptime and the serving
 * configuration.
 */
std::string statsReplyJson(const std::string &id, double uptimeSeconds,
                           std::size_t jobs, std::size_t queueBound,
                           std::size_t quantum);
/** @} */

} // namespace serve
} // namespace trb

#endif // TRB_SERVE_PROTOCOL_HH
