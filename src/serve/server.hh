/**
 * @file
 * ServeDaemon: the long-lived multi-tenant simulation server behind
 * tools/trace_served.
 *
 * One daemon = one Unix-domain listening socket + three kinds of
 * threads:
 *
 *  - an accept thread admitting connections ("clients");
 *  - one reader thread per connection, decoding frames.  ping/stats are
 *    answered inline; sim requests are pushed onto a bounded FairQueue
 *    keyed by the connection, and a full queue turns into an immediate
 *    typed `busy` reply (backpressure, never an unbounded backlog);
 *  - a dispatcher thread popping the queue round-robin (so tenants
 *    share the machine fairly) and handing each request to the
 *    trb::par pool via submit(), bounded to the pool's width.
 *
 * Simulation itself is the ordinary simulate() call: warm requests are
 * answered from trb::store transparently, and every reply is
 * bit-identical to a direct simulate() of the same request -- the
 * daemon adds scheduling, never semantics.  Progress is visible as
 * serve.* counters/gauges in the global metrics registry (and over the
 * wire via the stats op).  docs/serving.md is the operator manual.
 *
 * Hostile time.  A fourth thread -- the watchdog -- makes the daemon
 * survive clients that are slow, dead or deadline-bound:
 *
 *  - a request carrying deadline_ms is answered with a typed `timeout`
 *    once the deadline passes: still-queued work is rejected at
 *    dispatch without burning a worker; in-flight work is cancelled
 *    cooperatively through resil::CancelToken (the core model polls
 *    every O3Core::kCancelPollInterval retired records);
 *  - replies are written with a poll-bounded readiness timeout
 *    (TRB_SERVE_WRITE_MS), so one peer that stops draining its socket
 *    cannot wedge a worker; the connection is declared dead and its
 *    in-flight work cancelled;
 *  - the watchdog (every TRB_SERVE_WATCHDOG_MS) fires expired
 *    deadlines, reaps peers that vanished behind a half-closed stream
 *    (POLLHUP), exports the oldest in-flight age as the
 *    serve.inflight_age_ms gauge, and logs/counts stuck requests.
 *
 * Under a configured resil::FaultInjector, connection-scoped fault
 * kinds (conn-reset / conn-stall / partial-write, keyed by the
 * "conn-<n>" lane name) are applied to outgoing frames -- the chaos
 * harness the soak tests drive.
 */

#ifndef TRB_SERVE_SERVER_HH
#define TRB_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "par/thread_pool.hh"
#include "resil/cancel.hh"
#include "resil/fault.hh"
#include "resil/status.hh"
#include "serve/protocol.hh"
#include "serve/queue.hh"

namespace trb
{
namespace serve
{

/** Daemon knobs; fromEnv() reads the TRB_SERVE_* variables. */
struct ServeConfig
{
    /** Listening socket path (beware sun_path's ~100-byte limit). */
    std::string socketPath = "trb_serve.sock";

    /** Queued-but-undispatched sim requests beyond which push -> busy. */
    std::size_t queueBound = 64;

    /** Requests served per client per round-robin turn. */
    std::size_t quantum = 1;

    /** Concurrently dispatched sims; 0 means the pool's job count. */
    std::size_t maxInflight = 0;

    /** Watchdog period in ms; 0 disables the watchdog thread. */
    std::uint64_t watchdogMs = 50;

    /** Per-write peer-readiness bound in ms; 0 blocks indefinitely. */
    std::uint64_t writeTimeoutMs = 5000;

    /**
     * Typed configuration check (today: the socket path must fit
     * sun_path).  start() refuses an invalid config with this Status.
     */
    Status validate() const;

    /**
     * TRB_SERVE_SOCKET / TRB_SERVE_QUEUE / TRB_SERVE_QUANTUM /
     * TRB_SERVE_WATCHDOG_MS / TRB_SERVE_WRITE_MS.
     */
    static ServeConfig fromEnv();
};

/** The serving daemon.  start() to listen, stop() to drain and exit. */
class ServeDaemon
{
  public:
    /**
     * @param cfg  serving knobs
     * @param pool execution pool; nullptr means ThreadPool::global()
     *             (tests inject fixed-width pools to pin TRB_JOBS)
     */
    explicit ServeDaemon(ServeConfig cfg = ServeConfig::fromEnv(),
                         par::ThreadPool *pool = nullptr);

    /** stop()s if still running. */
    ~ServeDaemon();

    ServeDaemon(const ServeDaemon &) = delete;
    ServeDaemon &operator=(const ServeDaemon &) = delete;

    /**
     * Bind the socket and start serving.  IoError (with errno text) if
     * the path cannot be bound; a stale socket file is replaced.
     */
    Status start();

    /**
     * Graceful shutdown: stop accepting, answer every queued request
     * with a typed `busy` ("server shutting down"), wait for inflight
     * simulations to finish and their replies to flush, close every
     * connection, unlink the socket.  Idempotent.
     */
    void stop();

    bool running() const { return running_; }

    const ServeConfig &config() const { return cfg_; }

    /** Sim replies sent over the daemon's lifetime. */
    std::uint64_t served() const { return served_.load(); }

    /** Seconds since start(). */
    double uptimeSeconds() const;

  private:
    /** One accepted connection (= one fairness lane). */
    struct Conn
    {
        int fd = -1;
        std::string client;                //!< lane key, "conn-<n>"
        std::mutex writeMutex;             //!< reader + pool replies
        std::atomic<int> pendingJobs{0};   //!< queued or inflight sims
        std::atomic<bool> done{false};     //!< reader thread exited
        std::atomic<bool> dead{false};     //!< peer unreachable: no
                                           //!< more writes, cancel work
        std::uint64_t framesWritten = 0;   //!< guarded by writeMutex
        resil::FaultPlan chaos;            //!< resolved once at accept
        bool chaosOn = false;              //!< chaos has a conn fault
        std::thread reader;
    };

    /** One admitted sim request waiting for dispatch. */
    struct Job
    {
        Conn *conn = nullptr;
        ServeRequest req;
        std::shared_ptr<resil::CancelToken> token;
        resil::Deadline deadline;   //!< armed at admission
    };

    /** Watchdog's view of one dispatched sim, keyed by seq. */
    struct Inflight
    {
        Conn *conn = nullptr;
        std::string id;
        std::chrono::steady_clock::time_point started;
        resil::Deadline deadline;
        std::shared_ptr<resil::CancelToken> token;
        bool stuckLogged = false;
    };

    void acceptLoop();
    void readerLoop(Conn *conn);
    void dispatchLoop();
    void watchdogLoop();
    void tickWatchdog();
    void runSim(std::shared_ptr<Job> job, std::uint64_t seq);
    void cancelledBeforeStart(const std::shared_ptr<Job> &job,
                              std::uint64_t seq);
    void finishJob(const std::shared_ptr<Job> &job, std::uint64_t seq,
                   const std::string &reply);
    void sendReply(Conn *conn, const std::string &payload);
    void cancelConnInflight(Conn *conn, const std::string &why);
    void reapFinishedConns();

    ServeConfig cfg_;
    par::ThreadPool *pool_;
    std::size_t maxInflight_ = 1;

    int listenFd_ = -1;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::chrono::steady_clock::time_point startTime_;

    std::thread acceptThread_;
    std::thread dispatchThread_;
    std::thread watchdogThread_;

    std::mutex connsMutex_;
    std::list<std::unique_ptr<Conn>> conns_;
    std::uint64_t connCounter_ = 0;   //!< guarded by connsMutex_

    FairQueue<Job> queue_;
    std::mutex dispatchMutex_;
    std::condition_variable dispatchCv_;
    std::atomic<std::size_t> inflight_{0};
    std::atomic<std::uint64_t> seq_{0};
    std::atomic<std::uint64_t> served_{0};

    // Lock order where both are held: conn->writeMutex, then
    // inflightMutex_ (sendReply's failure path cancels the
    // connection's in-flight work).  Nothing takes writeMutex while
    // holding inflightMutex_; the watchdog fires tokens outside it.
    std::mutex inflightMutex_;
    std::map<std::uint64_t, Inflight> inflightMap_;

    std::mutex watchdogMutex_;
    std::condition_variable watchdogCv_;
};

} // namespace serve
} // namespace trb

#endif // TRB_SERVE_SERVER_HH
