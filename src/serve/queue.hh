/**
 * @file
 * A bounded multi-tenant queue with round-robin fairness: the daemon's
 * admission control.
 *
 * Each client gets its own lane; pop() visits lanes in rotation, taking
 * up to @c quantum items from one lane before moving on, so a greedy
 * client that floods hundreds of requests cannot starve a client that
 * submits one.  The bound is global (summed over lanes): a push beyond
 * it fails, and the caller turns that into the typed `busy` reply --
 * backpressure travels to the submitter instead of growing an unbounded
 * heap of parsed requests.
 *
 * Header-only and deliberately dumb: one mutex, no condition variable.
 * The daemon's dispatcher owns the blocking (it sleeps on its own cv
 * and is poked by push()), and the tests drive the queue directly.
 */

#ifndef TRB_SERVE_QUEUE_HH
#define TRB_SERVE_QUEUE_HH

#include <cstddef>
#include <deque>
#include <list>
#include <mutex>
#include <string>
#include <utility>

namespace trb
{
namespace serve
{

/** Bounded per-client-lane queue with round-robin, quantum-based pop. */
template <typename T>
class FairQueue
{
  public:
    /**
     * @param bound   max items across all lanes; pushes beyond it fail
     * @param quantum items taken from one lane before rotating (>= 1)
     */
    explicit FairQueue(std::size_t bound, std::size_t quantum = 1)
        : bound_(bound), quantum_(quantum == 0 ? 1 : quantum)
    {}

    /**
     * Enqueue @p item on @p client's lane.  False when the global bound
     * is reached -- the caller replies `busy` and drops the item.
     */
    bool
    push(const std::string &client, T item)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (size_ >= bound_)
            return false;
        Lane *lane = nullptr;
        for (Lane &l : lanes_)
            if (l.client == client) {
                lane = &l;
                break;
            }
        if (!lane) {
            // New lanes join *behind* the rotation cursor so an
            // arriving client waits at most one full rotation.
            lanes_.push_back(Lane{client, {}});
            lane = &lanes_.back();
            if (lanes_.size() == 1)
                cursor_ = lanes_.begin();
        }
        lane->items.push_back(std::move(item));
        ++size_;
        return true;
    }

    /**
     * Dequeue the next item under the rotation policy.  False when
     * empty.  Lanes drained to empty are erased, so a departed client
     * costs nothing.
     */
    bool
    pop(T &out)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (size_ == 0)
            return false;
        // Find the next non-empty lane from the cursor (lanes are only
        // ever empty transiently here; erase keeps the invariant that
        // persisted lanes hold items).
        while (cursor_->items.empty())
            advance();
        out = std::move(cursor_->items.front());
        cursor_->items.pop_front();
        --size_;
        if (cursor_->items.empty()) {
            cursor_ = lanes_.erase(cursor_);
            if (cursor_ == lanes_.end())
                cursor_ = lanes_.begin();
            taken_ = 0;
        } else if (++taken_ >= quantum_) {
            advance();
        }
        return true;
    }

    /** Items currently queued, across all lanes. */
    std::size_t
    depth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return size_;
    }

    /** Lanes (distinct queued clients) currently held. */
    std::size_t
    lanes() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return lanes_.size();
    }

    std::size_t bound() const { return bound_; }
    std::size_t quantum() const { return quantum_; }

  private:
    struct Lane
    {
        std::string client;
        std::deque<T> items;
    };

    /** Rotate the cursor one lane forward (wrapping), reset quantum. */
    void
    advance()
    {
        if (++cursor_ == lanes_.end())
            cursor_ = lanes_.begin();
        taken_ = 0;
    }

    const std::size_t bound_;
    const std::size_t quantum_;

    mutable std::mutex mutex_;
    std::list<Lane> lanes_;
    typename std::list<Lane>::iterator cursor_ = lanes_.end();
    std::size_t taken_ = 0;    //!< items taken from the cursor lane
    std::size_t size_ = 0;     //!< total queued items
};

} // namespace serve
} // namespace trb

#endif // TRB_SERVE_QUEUE_HH
