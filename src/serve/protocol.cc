#include "serve/protocol.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/metrics.hh"
#include "synth/generator.hh"
#include "synth/suites.hh"

namespace trb
{
namespace serve
{

namespace
{

/**
 * Write all of @p data, retrying EINTR and short writes.  Sockets get
 * MSG_NOSIGNAL (a peer that vanished mid-reply must surface as EPIPE,
 * not kill the daemon); plain fds (test pipes) fall back to write().
 */
Status
writeAll(int fd, const char *data, std::size_t size,
         unsigned timeoutMs = 0)
{
    std::size_t done = 0;
    while (done < size) {
        if (timeoutMs > 0) {
            // Bound write readiness, not the syscall: writes are
            // serialised per connection, so a ready socket accepts at
            // least one byte without blocking.
            struct pollfd p = {fd, POLLOUT, 0};
            int r = ::poll(&p, 1, static_cast<int>(timeoutMs));
            if (r == 0)
                return Status::timeout(
                           "peer not accepting writes after " +
                           std::to_string(timeoutMs) + " ms")
                    .rule("serve.write");
            if (r < 0) {
                if (errno == EINTR)
                    continue;
                return Status::ioError(std::string("poll: ") +
                                       std::strerror(errno))
                    .rule("serve.io");
            }
        }
        ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::ioError(std::string("write: ") +
                                   std::strerror(errno))
                .rule("serve.io");
        }
        done += static_cast<std::size_t>(n);
    }
    return Status{};
}

/**
 * Read exactly @p size bytes.  @p sawAny reports whether anything at
 * all arrived before EOF, so the caller can tell a clean close from a
 * truncated frame.
 */
Status
readAll(int fd, char *data, std::size_t size, bool *sawAny = nullptr)
{
    std::size_t done = 0;
    while (done < size) {
        ssize_t n = ::read(fd, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::ioError(std::string("read: ") +
                                   std::strerror(errno))
                .rule("serve.io");
        }
        if (n == 0)
            return Status::truncated("connection closed mid-frame")
                .rule("serve.frame");
        done += static_cast<std::size_t>(n);
        if (sawAny)
            *sawAny = true;
    }
    return Status{};
}

/** Render a double the way JSON wants it (shortest exact form). */
std::string
jsonNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // %g can emit "nan"/"inf", which JSON rejects; clamp to 0.
    if (!std::strpbrk(buf, "0123456789"))
        return "0";
    return buf;
}

std::string
hexU64(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
    return buf;
}

} // namespace

const char *
opName(Op op)
{
    switch (op) {
      case Op::Sim:
        return "sim";
      case Op::Ping:
        return "ping";
      case Op::Stats:
        return "stats";
    }
    return "unknown";
}

Status
writeFrame(int fd, const std::string &payload)
{
    return writeFrame(fd, payload, WriteOptions{});
}

Status
writeFrame(int fd, const std::string &payload, const WriteOptions &opts)
{
    if (payload.size() > kMaxFrameBytes)
        return Status::internal("frame payload exceeds kMaxFrameBytes")
            .rule("serve.frame-size");
    std::string frame = std::to_string(payload.size());
    frame += '\n';
    frame += payload;
    frame += '\n';

    const resil::FaultPlan *chaos =
        (opts.chaos && opts.chaos->anyConnFault()) ? opts.chaos : nullptr;
    if (!chaos)
        return writeAll(fd, frame.data(), frame.size(), opts.timeoutMs);

    if (chaos->connReset &&
        opts.frameIndex >= chaos->connResetAfterFrames()) {
        // A hard shutdown -- not close() -- so the owner's fd number
        // stays valid until its normal teardown path runs.
        ::shutdown(fd, SHUT_RDWR);
        return Status::ioError("injected conn-reset")
            .rule("serve.chaos");
    }
    if (chaos->connStall)
        std::this_thread::sleep_for(std::chrono::milliseconds(
            chaos->connStallMsFor(opts.frameIndex)));
    std::size_t chunk = frame.size();
    if (chaos->partialWrite)
        chunk = chaos->partialWriteChunkFor(opts.frameIndex);
    for (std::size_t done = 0; done < frame.size();) {
        std::size_t n = std::min(chunk, frame.size() - done);
        if (Status st = writeAll(fd, frame.data() + done, n,
                                 opts.timeoutMs);
            !st.ok())
            return st;
        done += n;
    }
    return Status{};
}

Status
validateSocketPath(const std::string &path)
{
    constexpr std::size_t cap = sizeof(sockaddr_un{}.sun_path) - 1;
    if (path.empty())
        return Status::badRequest("socket path is empty")
            .rule("serve.socket-path");
    if (path.size() > cap)
        return Status::badRequest(
                   "socket path is " + std::to_string(path.size()) +
                   " bytes; sun_path holds at most " +
                   std::to_string(cap))
            .rule("serve.socket-path");
    return Status{};
}

Status
readFrame(int fd, std::string &payload)
{
    // Length prefix: a short ASCII digit run ended by '\n'.  Read it
    // byte-wise -- at most 8 iterations, and it keeps the fd free of
    // any buffering state between frames.
    char digits[9];
    std::size_t ndigits = 0;
    for (;;) {
        char c = 0;
        bool sawAny = false;
        Status st = readAll(fd, &c, 1, &sawAny);
        if (!st.ok()) {
            if (st.errorClass() == ErrorClass::TruncatedInput &&
                !sawAny && ndigits == 0)
                return Status::truncated("connection closed")
                    .rule("serve.closed");
            return st;
        }
        if (c == '\n')
            break;
        if (c < '0' || c > '9' || ndigits == sizeof(digits) - 1)
            return Status::corrupt("malformed frame length prefix")
                .rule("serve.frame");
        digits[ndigits++] = c;
    }
    if (ndigits == 0)
        return Status::corrupt("empty frame length prefix")
            .rule("serve.frame");
    digits[ndigits] = '\0';
    std::size_t len = static_cast<std::size_t>(
        std::strtoull(digits, nullptr, 10));
    if (len > kMaxFrameBytes)
        return Status::corrupt("frame length exceeds the 4 MiB cap")
            .rule("serve.frame-size");

    payload.resize(len);
    if (len > 0)
        if (Status st = readAll(fd, payload.data(), len); !st.ok())
            return st;
    char nl = 0;
    if (Status st = readAll(fd, &nl, 1); !st.ok())
        return st;
    if (nl != '\n')
        return Status::corrupt("frame payload not newline-terminated")
            .rule("serve.frame");
    return Status{};
}

bool
isCleanClose(const Status &st)
{
    return st.errorClass() == ErrorClass::TruncatedInput &&
           st.ruleViolated() == "serve.closed";
}

Status
parseRequest(const std::string &json, ServeRequest &out)
{
    JsonFlat doc;
    std::string err;
    if (!parseJson(json, doc, &err))
        return Status::badRequest("malformed JSON: " + err)
            .rule("serve.json");

    out = ServeRequest{};
    out.id = doc.str("id");

    const std::string op = doc.str("op");
    if (op == "ping")
        out.op = Op::Ping;
    else if (op == "stats")
        out.op = Op::Stats;
    else if (op == "sim")
        out.op = Op::Sim;
    else
        return Status::badRequest(
                   op.empty() ? "missing \"op\" field"
                              : "unknown op \"" + op + "\"")
            .rule("serve.op");

    if (out.op != Op::Sim)
        return Status{};

    out.trace = doc.str("trace");
    if (out.trace.empty())
        return Status::badRequest("op \"sim\" requires a \"trace\" spec")
            .rule("serve.trace");

    double length = doc.number("length", 50000);
    if (length < 1000 || length > 1e12 ||
        length != static_cast<double>(
                      static_cast<std::uint64_t>(length)))
        return Status::badRequest(
                   "\"length\" must be an integer in [1000, 1e12]")
            .rule("serve.length");
    out.length = static_cast<std::uint64_t>(length);

    const std::string imps = doc.str("imps", "No_imp");
    if (!parseImprovementSet(imps, out.imps))
        return Status::badRequest("unknown improvement set \"" + imps +
                                  "\"")
            .rule("serve.imps");

    const std::string config = doc.str("config", "modern");
    if (config == "modern")
        out.ipc1 = false;
    else if (config == "ipc1")
        out.ipc1 = true;
    else
        return Status::badRequest("unknown config \"" + config +
                                  "\" (want \"modern\" or \"ipc1\")")
            .rule("serve.config");

    out.warmupFraction = doc.number("warmup_fraction", 0.0);
    if (!(out.warmupFraction >= 0.0) || out.warmupFraction >= 1.0)
        return Status::badRequest(
                   "\"warmup_fraction\" must be in [0, 1)")
            .rule("serve.warmup");

    out.useStore = doc.number("use_store", 1.0) != 0.0;

    double deadline = doc.number("deadline_ms", 0.0);
    if (deadline < 0 || deadline > 1e9 ||
        deadline != static_cast<double>(
                        static_cast<std::uint64_t>(deadline)))
        return Status::badRequest(
                   "\"deadline_ms\" must be an integer in [0, 1e9]")
            .rule("serve.deadline");
    out.deadlineMs = static_cast<std::uint64_t>(deadline);
    return Status{};
}

std::string
requestJson(const ServeRequest &req)
{
    std::string s = "{\"op\": ";
    s += obs::jsonQuote(opName(req.op));
    if (!req.id.empty())
        s += ", \"id\": " + obs::jsonQuote(req.id);
    if (req.op == Op::Sim) {
        s += ", \"trace\": " + obs::jsonQuote(req.trace);
        s += ", \"length\": " + std::to_string(req.length);
        s += ", \"imps\": " + obs::jsonQuote(improvementSetName(req.imps));
        s += ", \"config\": ";
        s += req.ipc1 ? "\"ipc1\"" : "\"modern\"";
        s += ", \"warmup_fraction\": " + jsonNumber(req.warmupFraction);
        s += ", \"use_store\": ";
        s += req.useStore ? "true" : "false";
        if (req.deadlineMs > 0)
            s += ", \"deadline_ms\": " + std::to_string(req.deadlineMs);
    }
    s += "}";
    return s;
}

namespace
{

/** "suite:cvp1:server_017"-style spec -> generated suite trace. */
Expected<CvpTrace>
resolveSuiteTrace(const std::string &suite, const std::string &name,
                  std::uint64_t length)
{
    std::vector<TraceSpec> specs;
    if (suite == "cvp1")
        specs = cvp1PublicSuite(length);
    else if (suite == "ipc1")
        specs = ipc1Suite(length);
    else
        return Status::badRequest("unknown suite \"" + suite +
                                  "\" (want cvp1 or ipc1)")
            .rule("serve.trace");
    for (const TraceSpec &spec : specs)
        if (spec.name == name)
            return TraceGenerator(spec.params).generate(spec.length);
    return Status::badRequest("no trace \"" + name + "\" in the " +
                              suite + " suite")
        .rule("serve.trace");
}

/** "preset:server:7"-style spec -> generated preset trace. */
Expected<CvpTrace>
resolvePresetTrace(const std::string &kind, const std::string &seedStr,
                   std::uint64_t length)
{
    char *end = nullptr;
    std::uint64_t seed = std::strtoull(seedStr.c_str(), &end, 10);
    if (end == seedStr.c_str() || *end != '\0')
        return Status::badRequest("preset seed \"" + seedStr +
                                  "\" is not an integer")
            .rule("serve.trace");
    WorkloadParams params;
    if (kind == "int")
        params = computeIntParams(seed);
    else if (kind == "fp")
        params = computeFpParams(seed);
    else if (kind == "crypto")
        params = cryptoParams(seed);
    else if (kind == "server")
        params = serverParams(seed);
    else if (kind == "membound")
        params = memoryBoundParams(seed);
    else
        return Status::badRequest(
                   "unknown preset \"" + kind +
                   "\" (want int/fp/crypto/server/membound)")
            .rule("serve.trace");
    return TraceGenerator(params).generate(length);
}

} // namespace

Expected<CvpTrace>
resolveTrace(const ServeRequest &req)
{
    const std::string &spec = req.trace;
    std::size_t colon = spec.find(':');
    const std::string scheme = spec.substr(0, colon);
    if (scheme == "file" && colon != std::string::npos)
        return tryReadCvpTrace(spec.substr(colon + 1));
    if (scheme == "suite" || scheme == "preset") {
        std::size_t colon2 = spec.find(':', colon + 1);
        if (colon2 != std::string::npos) {
            const std::string mid =
                spec.substr(colon + 1, colon2 - colon - 1);
            const std::string leaf = spec.substr(colon2 + 1);
            return scheme == "suite"
                       ? resolveSuiteTrace(mid, leaf, req.length)
                       : resolvePresetTrace(mid, leaf, req.length);
        }
    }
    return Status::badRequest(
               "unparseable trace spec \"" + spec +
               "\" (want suite:<suite>:<name>, preset:<kind>:<seed> "
               "or file:<path>)")
        .rule("serve.trace");
}

std::string
errorReplyJson(const std::string &op, const std::string &id,
               const Status &st)
{
    std::string s = "{\"ok\": false";
    if (!op.empty())
        s += ", \"op\": " + obs::jsonQuote(op);
    if (!id.empty())
        s += ", \"id\": " + obs::jsonQuote(id);
    s += ", \"error\": {\"class\": ";
    s += obs::jsonQuote(errorClassName(st.errorClass()));
    s += ", \"message\": " + obs::jsonQuote(st.message());
    if (!st.ruleViolated().empty())
        s += ", \"rule\": " + obs::jsonQuote(st.ruleViolated());
    s += "}}";
    return s;
}

std::string
pingReplyJson(const std::string &id, double uptimeSeconds)
{
    std::string s = "{\"ok\": true, \"op\": \"ping\"";
    if (!id.empty())
        s += ", \"id\": " + obs::jsonQuote(id);
    s += ", \"schema\": ";
    s += obs::jsonQuote(kServeSchema);
    s += ", \"uptime_s\": " + jsonNumber(uptimeSeconds);
    s += "}";
    return s;
}

std::string
simReplyJson(const std::string &id, const SimResult &result,
             std::uint64_t seq)
{
    std::string s = "{\"ok\": true, \"op\": \"sim\"";
    if (!id.empty())
        s += ", \"id\": " + obs::jsonQuote(id);
    s += ", \"seq\": " + std::to_string(seq);
    s += ", \"trace_from_store\": ";
    s += result.traceFromStore ? "true" : "false";
    s += ", \"stats_from_store\": ";
    s += result.statsFromStore ? "true" : "false";
    // Convenience doubles for humans and dashboards; "bits" below is
    // the authoritative, exact payload.
    s += ", \"ipc\": " + jsonNumber(result.stats.ipc());
    s += ", \"instructions\": " +
         std::to_string(result.stats.instructions);
    s += ", \"cycles\": " + std::to_string(result.stats.cycles);
    s += ", \"bits\": [";
    const std::vector<std::uint64_t> bits = result.stats.toBits();
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (i)
            s += ", ";
        s += obs::jsonQuote(hexU64(bits[i]));
    }
    s += "]}";
    return s;
}

std::string
statsReplyJson(const std::string &id, double uptimeSeconds,
               std::size_t jobs, std::size_t queueBound,
               std::size_t quantum)
{
    auto servedPath = [](const std::string &path) {
        return path.rfind("serve.", 0) == 0 ||
               path.rfind("store.", 0) == 0 ||
               path.rfind("resil.", 0) == 0;
    };
    obs::MetricsRegistry::Snapshot snap =
        obs::MetricsRegistry::global().snapshot();

    std::string s = "{\"ok\": true, \"op\": \"stats\"";
    if (!id.empty())
        s += ", \"id\": " + obs::jsonQuote(id);
    s += ", \"schema\": ";
    s += obs::jsonQuote(kServeSchema);
    s += ", \"uptime_s\": " + jsonNumber(uptimeSeconds);
    s += ", \"jobs\": " + std::to_string(jobs);
    s += ", \"queue_bound\": " + std::to_string(queueBound);
    s += ", \"quantum\": " + std::to_string(quantum);
    s += ", \"counters\": {";
    bool first = true;
    for (const auto &entry : snap.counters) {
        if (!servedPath(entry.path))
            continue;
        if (!first)
            s += ", ";
        first = false;
        s += obs::jsonQuote(entry.path) + ": " +
             std::to_string(entry.value);
    }
    s += "}, \"gauges\": {";
    first = true;
    for (const auto &entry : snap.gauges) {
        if (!servedPath(entry.path))
            continue;
        if (!first)
            s += ", ";
        first = false;
        s += obs::jsonQuote(entry.path) + ": " + jsonNumber(entry.value);
    }
    s += "}}";
    return s;
}

namespace
{

/** Rebuild a Status from its wire rendering (class/message/rule). */
Status
statusFromWire(const std::string &cls, const std::string &message,
               const std::string &rule)
{
    Status st;
    if (cls == "truncated_input")
        st = Status::truncated(message);
    else if (cls == "corrupt_record")
        st = Status::corrupt(message);
    else if (cls == "io_error")
        st = Status::ioError(message);
    else if (cls == "bad_magic")
        st = Status::badMagic(message);
    else if (cls == "bad_request")
        st = Status::badRequest(message);
    else if (cls == "busy")
        st = Status::busy(message);
    else if (cls == "timeout")
        st = Status::timeout(message);
    else
        st = Status::internal(message);
    if (!rule.empty())
        st.rule(rule);
    return st;
}

} // namespace

Status
parseReply(const std::string &json, ServeReply &out)
{
    out = ServeReply{};
    std::string err;
    if (!parseJson(json, out.raw, &err))
        return Status::corrupt("malformed reply JSON: " + err)
            .rule("serve.reply");

    if (!out.raw.hasNumber("ok"))
        return Status::corrupt("reply lacks an \"ok\" field")
            .rule("serve.reply");
    out.ok = out.raw.number("ok") != 0.0;
    out.op = out.raw.str("op");
    out.id = out.raw.str("id");

    if (!out.ok) {
        out.error = statusFromWire(out.raw.str("error/class"),
                                   out.raw.str("error/message"),
                                   out.raw.str("error/rule"));
        if (out.error.ok())
            return Status::corrupt(
                       "error reply lacks an \"error\" object")
                .rule("serve.reply");
        return Status{};
    }

    if (out.op != "sim")
        return Status{};

    out.seq = static_cast<std::uint64_t>(out.raw.number("seq"));
    out.traceFromStore = out.raw.number("trace_from_store") != 0.0;
    out.statsFromStore = out.raw.number("stats_from_store") != 0.0;

    std::vector<std::uint64_t> bits;
    for (std::size_t i = 0;; ++i) {
        const std::string path = "bits/" + std::to_string(i);
        auto it = out.raw.strings.find(path);
        if (it == out.raw.strings.end())
            break;
        char *end = nullptr;
        bits.push_back(std::strtoull(it->second.c_str(), &end, 16));
        if (end == it->second.c_str() || *end != '\0')
            return Status::corrupt("non-hex stat bits at " + path)
                .rule("serve.bits");
    }
    if (!SimStats::fromBits(bits, out.stats))
        return Status::corrupt(
                   "sim reply bits do not match this build's stat "
                   "layout")
            .rule("serve.bits");
    return Status{};
}

} // namespace serve
} // namespace trb
