#include "convert/improvements.hh"

namespace trb
{

bool
parseImprovementSet(const std::string &name, ImprovementSet &out)
{
    if (name == "No_imp") {
        out = kImpNone;
    } else if (name == "All_imps") {
        out = kAllImps;
    } else if (name == "Memory_imps") {
        out = kMemoryImps;
    } else if (name == "Branch_imps") {
        out = kBranchImps;
    } else if (name == "IPC1_imps") {
        out = kIpc1Imps;
    } else if (name == "imp_mem-regs") {
        out = kImpMemRegs;
    } else if (name == "imp_base-update") {
        out = kImpBaseUpdate;
    } else if (name == "imp_mem-footprint") {
        out = kImpMemFootprint;
    } else if (name == "imp_call-stack") {
        out = kImpCallStack;
    } else if (name == "imp_branch-regs") {
        out = kImpBranchRegs;
    } else if (name == "imp_flag-regs" || name == "imp_flag-reg") {
        out = kImpFlagReg;
    } else {
        return false;
    }
    return true;
}

std::string
improvementSetName(ImprovementSet set)
{
    switch (set) {
      case kImpNone: return "No_imp";
      case kAllImps: return "All_imps";
      case kMemoryImps: return "Memory_imps";
      case kBranchImps: return "Branch_imps";
      case kIpc1Imps: return "IPC1_imps";
      case kImpMemRegs: return "imp_mem-regs";
      case kImpBaseUpdate: return "imp_base-update";
      case kImpMemFootprint: return "imp_mem-footprint";
      case kImpCallStack: return "imp_call-stack";
      case kImpBranchRegs: return "imp_branch-regs";
      case kImpFlagReg: return "imp_flag-regs";
      default: break;
    }
    std::string s = "imps(";
    if (set & kImpMemRegs)
        s += "mem-regs,";
    if (set & kImpBaseUpdate)
        s += "base-update,";
    if (set & kImpMemFootprint)
        s += "mem-footprint,";
    if (set & kImpCallStack)
        s += "call-stack,";
    if (set & kImpBranchRegs)
        s += "branch-regs,";
    if (set & kImpFlagReg)
        s += "flag-regs,";
    if (s.back() == ',')
        s.pop_back();
    return s + ")";
}

} // namespace trb
