#include "convert/cvp2champsim.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace trb
{

Cvp2ChampSim::Cvp2ChampSim(ImprovementSet imps) : imps_(imps)
{
}

void
Cvp2ChampSim::reset()
{
    stats_ = ConvStats{};
    for (auto &v : regVal_)
        v = 0;
}

RegId
Cvp2ChampSim::mapReg(RegId cvp_reg)
{
    RegId m = static_cast<RegId>(cvp_reg + 1);
    switch (m) {
      case champsim::kStackPointer: return 201;
      case champsim::kFlags: return 202;
      case champsim::kInstructionPointer: return 203;
      case champsim::kOtherReg: return 204;
      default: return m;
    }
}

BaseUpdateInfo
Cvp2ChampSim::inferBaseUpdate(const CvpRecord &rec)
{
    BaseUpdateInfo info;
    if (!isMem(rec.cls))
        return info;
    for (unsigned d = 0; d < rec.numDst; ++d) {
        if (!rec.readsReg(rec.dst[d]))
            continue;   // not a base candidate: written but never read
        std::uint64_t v = rec.dstValue[d];
        if (v == rec.ea) {
            info.kind = BaseUpdateKind::Pre;
            info.baseReg = rec.dst[d];
            info.dstIndex = d;
            return info;
        }
        auto diff = static_cast<std::int64_t>(v - rec.ea);
        if (diff != 0 && diff >= -kMaxImmediate && diff <= kMaxImmediate) {
            info.kind = BaseUpdateKind::Post;
            info.baseReg = rec.dst[d];
            info.dstIndex = d;
            return info;
        }
        // A self-loading register whose value lands far from the address
        // (a pointer chase) is not a writeback: keep looking.
    }
    return info;
}

ChampSimTrace
Cvp2ChampSim::convert(const CvpTrace &in)
{
    ChampSimTrace out;
    out.reserve(in.size() + in.size() / 8);
    for (const CvpRecord &rec : in)
        convertOne(rec, out);
    return out;
}

void
Cvp2ChampSim::convertOne(const CvpRecord &rec, ChampSimTrace &out)
{
    ++stats_.cvpInstructions;
    std::size_t before = out.size();

    if (isBranch(rec.cls))
        convertBranch(rec, out);
    else if (isMem(rec.cls))
        convertMem(rec, out);
    else
        convertAlu(rec, out);

    stats_.champsimInstructions += out.size() - before;

    // Track architectural values for the inference side table.
    for (unsigned i = 0; i < rec.numDst; ++i)
        regVal_[rec.dst[i] % aarch64::kNumRegs] = rec.dstValue[i];
}

void
Cvp2ChampSim::convertBranch(const CvpRecord &rec, ChampSimTrace &out)
{
    ChampSimRecord cs;
    cs.ip = rec.pc;
    cs.isBranch = 1;
    cs.branchTaken = rec.taken ? 1 : 0;

    auto addCvpSources = [&](bool &added_any) {
        added_any = false;
        for (unsigned i = 0; i < rec.numSrc; ++i) {
            if (!cs.addSrcReg(mapReg(rec.src[i])))
                ++stats_.truncatedSrcRegs;
            else
                added_any = true;
        }
    };

    switch (rec.cls) {
      case InstClass::CondBranch: {
        cs.addDstReg(champsim::kInstructionPointer);
        cs.addSrcReg(champsim::kInstructionPointer);
        if (has(kImpBranchRegs) && rec.numSrc > 0) {
            // CBZ/TBZ-style: depend on the real producer, not on flags.
            bool any = false;
            addCvpSources(any);
            if (any)
                ++stats_.branchSrcsPreserved;
        } else {
            cs.addSrcReg(champsim::kFlags);
        }
        break;
      }

      case InstClass::UncondDirectBranch: {
        if (rec.writesReg(aarch64::kLinkReg)) {
            // BL: direct call.
            cs.addSrcReg(champsim::kInstructionPointer);
            cs.addSrcReg(champsim::kStackPointer);
            cs.addDstReg(champsim::kInstructionPointer);
            cs.addDstReg(champsim::kStackPointer);
            // X30 cannot also be written: both ChampSim destination
            // slots are taken (the paper's acknowledged limitation).
        } else {
            // B: direct jump.
            cs.addSrcReg(champsim::kInstructionPointer);
            cs.addDstReg(champsim::kInstructionPointer);
        }
        break;
      }

      case InstClass::UncondIndirectBranch: {
        bool reads_x30 = rec.readsReg(aarch64::kLinkReg);
        bool writes_x30 = rec.writesReg(aarch64::kLinkReg);
        bool is_return = has(kImpCallStack)
                             ? (reads_x30 && rec.numDst == 0)
                             : reads_x30;
        if (is_return) {
            // RET: reads SP, writes SP+IP.
            cs.addSrcReg(champsim::kStackPointer);
            cs.addDstReg(champsim::kInstructionPointer);
            cs.addDstReg(champsim::kStackPointer);
            ++stats_.returnsKept;
            if (!has(kImpCallStack) && writes_x30)
                ++stats_.callsMisclassified;   // BLR X30 broken
        } else if (writes_x30) {
            // BLR: indirect call -- reads SP+something, writes SP+IP.
            cs.addSrcReg(champsim::kStackPointer);
            cs.addDstReg(champsim::kInstructionPointer);
            cs.addDstReg(champsim::kStackPointer);
            if (has(kImpBranchRegs)) {
                bool any = false;
                addCvpSources(any);
                if (any)
                    ++stats_.branchSrcsPreserved;
                else
                    cs.addSrcReg(champsim::kOtherReg);
            } else {
                cs.addSrcReg(champsim::kOtherReg);
            }
            if (reads_x30 && has(kImpCallStack))
                ++stats_.callsReclassified;
        } else {
            // BR: indirect jump -- writes IP, reads something else.
            cs.addDstReg(champsim::kInstructionPointer);
            if (has(kImpBranchRegs) && rec.numSrc > 0) {
                bool any = false;
                addCvpSources(any);
                if (any)
                    ++stats_.branchSrcsPreserved;
                else
                    cs.addSrcReg(champsim::kOtherReg);
            } else {
                cs.addSrcReg(champsim::kOtherReg);
            }
        }
        break;
      }

      default:
        trb_panic("non-branch class in convertBranch");
    }

    out.push_back(cs);
}

void
Cvp2ChampSim::convertMem(const CvpRecord &rec, ChampSimTrace &out)
{
    const bool is_load = rec.cls == InstClass::Load;

    // Addressing-mode inference feeds both base-update and mem-footprint.
    BaseUpdateInfo bu;
    if (has(kImpBaseUpdate) || has(kImpMemFootprint))
        bu = inferBaseUpdate(rec);

    // ---- Destination and source register lists. ----
    ChampSimRecord mem;
    mem.ip = rec.pc;

    if (has(kImpMemRegs)) {
        for (unsigned i = 0; i < rec.numSrc; ++i)
            if (!mem.addSrcReg(mapReg(rec.src[i])))
                ++stats_.truncatedSrcRegs;
        for (unsigned i = 0; i < rec.numDst; ++i) {
            if (has(kImpBaseUpdate) && bu.kind != BaseUpdateKind::None &&
                i == bu.dstIndex)
                continue;   // the split ALU micro-op owns the base
            if (!mem.addDstReg(mapReg(rec.dst[i])))
                ++stats_.truncatedDstRegs;
        }
    } else {
        // Original behaviour: one destination at most; extra CVP-1
        // destinations leak into the source list; destination-less
        // memory instructions are given X0.
        for (unsigned i = 0; i < rec.numSrc; ++i)
            if (!mem.addSrcReg(mapReg(rec.src[i])))
                ++stats_.truncatedSrcRegs;
        if (rec.numDst == 0) {
            mem.addDstReg(mapReg(0));
            ++stats_.x0InsertedMem;
        } else {
            // Only the first CVP-1 destination survives; the rest are
            // simply lost, so dependencies through them disappear (the
            // paper's Section 3.1.1 defect).
            bool keep_first = true;
            for (unsigned i = 0; i < rec.numDst; ++i) {
                bool owned_by_split = has(kImpBaseUpdate) &&
                                      bu.kind != BaseUpdateKind::None &&
                                      i == bu.dstIndex;
                if (owned_by_split)
                    continue;
                if (keep_first) {
                    mem.addDstReg(mapReg(rec.dst[i]));
                    keep_first = false;
                } else {
                    ++stats_.droppedDstRegs;
                }
            }
        }
    }

    // ---- Memory addresses. ----
    Addr ea = rec.ea;
    if (has(kImpMemFootprint) && !is_load && rec.accessSize >= kLineBytes) {
        // DC ZVA zeroes one naturally-aligned line by definition.
        if (ea != lineAddr(ea))
            ++stats_.zvaAligned;
        ea = lineAddr(ea);
    }
    if (is_load)
        mem.addSrcMem(ea);
    else
        mem.addDstMem(ea);

    if (has(kImpMemFootprint))
        applyFootprint(rec, bu, mem);

    // ---- Base-update split. ----
    if (has(kImpBaseUpdate) && bu.kind != BaseUpdateKind::None) {
        ChampSimRecord alu;
        RegId base = mapReg(bu.baseReg);
        alu.addSrcReg(base);
        alu.addDstReg(base);
        ++stats_.splitMicroOps;
        if (bu.kind == BaseUpdateKind::Pre) {
            // Update-then-access: the ALU gets the CVP-1 PC.
            alu.ip = rec.pc;
            mem.ip = rec.pc + 2;
            ++stats_.baseUpdatePre;
            out.push_back(alu);
            out.push_back(mem);
        } else {
            // Access-then-update.
            alu.ip = rec.pc + 2;
            ++stats_.baseUpdatePost;
            out.push_back(mem);
            out.push_back(alu);
        }
        return;
    }

    out.push_back(mem);
}

void
Cvp2ChampSim::applyFootprint(const CvpRecord &rec, const BaseUpdateInfo &bu,
                             ChampSimRecord &cs)
{
    const bool is_load = rec.cls == InstClass::Load;

    // Transfer size: bytes-per-register times memory-populated registers,
    // which excludes an inferred writeback base.
    unsigned regs;
    if (is_load) {
        regs = rec.numDst;
        if (bu.kind != BaseUpdateKind::None && regs > 0)
            --regs;
    } else {
        // Stores list the base and the data registers as sources.
        regs = rec.numSrc > 1 ? rec.numSrc - 1 : 1;
        if (regs > 2)
            regs = 2;
    }
    if (regs == 0)
        regs = 1;   // prefetch: the line is still touched

    Addr ea = is_load ? cs.srcMem[0] : cs.destMem[0];
    std::uint64_t total = static_cast<std::uint64_t>(rec.accessSize) * regs;
    if (total == 0)
        return;
    if (lineNum(ea) == lineNum(ea + total - 1))
        return;

    Addr second = lineAddr(ea) + kLineBytes;
    bool ok = is_load ? cs.addSrcMem(second) : cs.addDstMem(second);
    if (ok)
        ++stats_.lineCrossing;
}

void
Cvp2ChampSim::convertAlu(const CvpRecord &rec, ChampSimTrace &out)
{
    ChampSimRecord cs;
    cs.ip = rec.pc;
    for (unsigned i = 0; i < rec.numSrc; ++i)
        if (!cs.addSrcReg(mapReg(rec.src[i])))
            ++stats_.truncatedSrcRegs;
    for (unsigned i = 0; i < rec.numDst; ++i)
        if (!cs.addDstReg(mapReg(rec.dst[i])))
            ++stats_.truncatedDstRegs;
    if (rec.numDst == 0 && has(kImpFlagReg) &&
        (rec.cls == InstClass::Alu || rec.cls == InstClass::SlowAlu ||
         rec.cls == InstClass::Fp)) {
        // Compares and flag-setting arithmetic: make the dependency from
        // conditional branches through the flag register real.
        cs.addDstReg(champsim::kFlags);
        ++stats_.flagDstsAdded;
    }
    out.push_back(cs);
}

} // namespace trb
