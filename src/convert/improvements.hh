/**
 * @file
 * The six trace-conversion improvements of the paper (its Table 1), as a
 * bitmask plus the named sets the artifact's CLI exposes (No_imp,
 * Memory_imps, Branch_imps, All_imps, and the individual imp_* names).
 */

#ifndef TRB_CONVERT_IMPROVEMENTS_HH
#define TRB_CONVERT_IMPROVEMENTS_HH

#include <string>

namespace trb
{

/** Bitmask of converter improvements. */
enum Improvement : unsigned
{
    kImpNone = 0,

    /** Keep all (and only) the CVP-1 destination registers of memory
     *  instructions; stop inserting X0 into destination-less ones. */
    kImpMemRegs = 1u << 0,

    /** Split base-updating memory instructions into an ALU and a memory
     *  micro-op so the base register resolves at ALU latency. */
    kImpBaseUpdate = 1u << 1,

    /** Emit the second cacheline address of line-crossing accesses and
     *  align DC ZVA stores. */
    kImpMemFootprint = 1u << 2,

    /** Only classify X30-reading branches that write nothing as returns;
     *  X30 read+write branches are calls. */
    kImpCallStack = 1u << 3,

    /** Preserve the CVP-1 source registers of branches (requires the
     *  patched ChampSim branch deduction rules). */
    kImpBranchRegs = 1u << 4,

    /** Give destination-less ALU/FP instructions the flag register as a
     *  destination so flag-reading conditionals depend on them. */
    kImpFlagReg = 1u << 5,
};

using ImprovementSet = unsigned;

constexpr ImprovementSet kMemoryImps =
    kImpMemRegs | kImpBaseUpdate | kImpMemFootprint;
constexpr ImprovementSet kBranchImps =
    kImpCallStack | kImpBranchRegs | kImpFlagReg;
constexpr ImprovementSet kAllImps = kMemoryImps | kBranchImps;

/** All-improvements minus mem-footprint: the set used to re-rank IPC-1
 *  (the IPC-1 ChampSim cannot execute multi-source memory records). */
constexpr ImprovementSet kIpc1Imps = kAllImps & ~kImpMemFootprint;

/**
 * Parse an improvement name as the artifact CLI spells them:
 * "No_imp", "All_imps", "Memory_imps", "Branch_imps", "IPC1_imps",
 * "imp_mem-regs", "imp_base-update", "imp_mem-footprint",
 * "imp_call-stack", "imp_branch-regs", "imp_flag-regs".
 *
 * Returns true and fills @p out on success.
 */
bool parseImprovementSet(const std::string &name, ImprovementSet &out);

/** Canonical printable name for one of the sets above (best effort). */
std::string improvementSetName(ImprovementSet set);

} // namespace trb

#endif // TRB_CONVERT_IMPROVEMENTS_HH
