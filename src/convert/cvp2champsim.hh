/**
 * @file
 * The cvp2champsim converter: CVP-1 records in, ChampSim records out.
 *
 * Two personalities live in one class, selected by the ImprovementSet:
 * with no improvements it faithfully reproduces the *original* converter,
 * including its studied defects --
 *   - every non-branch gets at most one destination register, with X0
 *     inserted into destination-less memory instructions;
 *   - the remaining CVP-1 destinations are silently dropped, so the
 *     dependencies through them vanish;
 *   - any X30-reading unconditional branch is classified as a return,
 *     even when it also writes X30 (an indirect call);
 *   - branch source registers are replaced by the x86 special registers
 *     ChampSim deduces types from (X56 for "reads something else");
 *   - one memory address per instruction, whatever the real footprint --
 * and with improvements enabled it applies the paper's fixes
 * individually or in the Table 1 groups.
 *
 * The converter is streaming (convertOne) and carries the same
 * register-value tracking side table the CVP-2 trace reader uses for
 * addressing-mode inference.
 */

#ifndef TRB_CONVERT_CVP2CHAMPSIM_HH
#define TRB_CONVERT_CVP2CHAMPSIM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "convert/improvements.hh"
#include "trace/champsim_trace.hh"
#include "trace/cvp_trace.hh"

namespace trb
{

/**
 * Conversion algorithm version, part of every stored converted-trace
 * artifact's key.  Bump whenever a change alters the records any
 * (trace, ImprovementSet) pair converts to, or stale store artifacts
 * will silently serve the old conversion.
 */
constexpr unsigned kConverterVersion = 1;

/** Outcome of the addressing-mode inference heuristic. */
enum class BaseUpdateKind : std::uint8_t
{
    None,       //!< no writeback inferred
    Pre,        //!< base written before the access (new base == EA)
    Post,       //!< base written after the access (|new base - EA| <= imm)
};

/** Result of inferring a memory record's addressing behaviour. */
struct BaseUpdateInfo
{
    BaseUpdateKind kind = BaseUpdateKind::None;
    RegId baseReg = 0;          //!< CVP-1 register number
    unsigned dstIndex = 0;      //!< index of the base in the dst list
};

/** Conversion statistics (per converter instance, cumulative). */
struct ConvStats
{
    std::uint64_t cvpInstructions = 0;
    std::uint64_t champsimInstructions = 0;

    std::uint64_t x0InsertedMem = 0;      //!< original-converter artefact
    std::uint64_t droppedDstRegs = 0;     //!< extra dsts lost (original)
    std::uint64_t truncatedSrcRegs = 0;   //!< >4 sources capped
    std::uint64_t truncatedDstRegs = 0;   //!< >2 destinations capped

    std::uint64_t baseUpdatePre = 0;
    std::uint64_t baseUpdatePost = 0;
    std::uint64_t splitMicroOps = 0;      //!< extra records from splits

    std::uint64_t lineCrossing = 0;       //!< second address emitted
    std::uint64_t zvaAligned = 0;

    std::uint64_t returnsKept = 0;
    std::uint64_t callsReclassified = 0;  //!< X30 read+write fixed (imp)
    std::uint64_t callsMisclassified = 0; //!< ...or left broken (orig)
    std::uint64_t branchSrcsPreserved = 0;
    std::uint64_t flagDstsAdded = 0;
};

/**
 * Streaming CVP-1 to ChampSim converter.
 *
 * One CVP-1 instruction yields one ChampSim record, or two when the
 * base-update improvement splits it (ALU at pc / memory at pc+2, ordered
 * by pre/post indexing).
 */
class Cvp2ChampSim
{
  public:
    explicit Cvp2ChampSim(ImprovementSet imps);

    /** Convert one record, appending one or two records to @p out. */
    void convertOne(const CvpRecord &rec, ChampSimTrace &out);

    /** Convert a whole trace. */
    ChampSimTrace convert(const CvpTrace &in);

    /** Reset register tracking and statistics. */
    void reset();

    const ConvStats &stats() const { return stats_; }
    ImprovementSet improvements() const { return imps_; }

    /**
     * Map a CVP-1 register number into the ChampSim register space:
     * shifted up by one (0 is ChampSim's empty slot) and steered around
     * the special registers ChampSim deduces branch types from.
     */
    static RegId mapReg(RegId cvp_reg);

    /**
     * The addressing-mode inference heuristic (public for tests):
     * a register appearing as both source and destination whose written
     * value equals the effective address is a pre-index base; one whose
     * written value lands within an immediate's reach of the effective
     * address is a post-index base; everything else (e.g. a pointer
     * chase loading into its own address register) is not a writeback.
     */
    static BaseUpdateInfo inferBaseUpdate(const CvpRecord &rec);

    /** Largest |new base - EA| accepted as a post-index immediate. */
    static constexpr std::int64_t kMaxImmediate = 4096;

  private:
    void convertBranch(const CvpRecord &rec, ChampSimTrace &out);
    void convertMem(const CvpRecord &rec, ChampSimTrace &out);
    void convertAlu(const CvpRecord &rec, ChampSimTrace &out);

    /** Append the second cacheline address when the access crosses. */
    void applyFootprint(const CvpRecord &rec, const BaseUpdateInfo &bu,
                        ChampSimRecord &cs);

    bool has(Improvement i) const { return (imps_ & i) != 0; }

    ImprovementSet imps_;
    ConvStats stats_;
    std::uint64_t regVal_[aarch64::kNumRegs] = {};
};

} // namespace trb

#endif // TRB_CONVERT_CVP2CHAMPSIM_HH
