#include "cache/hierarchy.hh"

#include "common/logging.hh"

namespace trb
{

MemoryHierarchy::MemoryHierarchy(const HierarchyParams &params)
    : params_(params), l1i_(params.l1i), l1d_(params.l1d), l2_(params.l2),
      llc_(params.llc)
{
    if (params.l1dIpStride)
        l1dPrefetcher_ = std::make_unique<IpStridePrefetcher>();
    if (params.l2NextLine)
        l2Prefetcher_ = std::make_unique<NextLinePrefetcher>();
}

void
MemoryHierarchy::cleanInflight(std::unordered_map<Addr, Cycle> &map,
                               Cycle now)
{
    // Lazily bound the in-flight set: completed fills can go.
    if (map.size() < 4096)
        return;
    for (auto it = map.begin(); it != map.end();) {
        if (it->second <= now)
            it = map.erase(it);
        else
            ++it;
    }
}

Cycle
MemoryHierarchy::walkShared(Addr addr, bool write, bool demand,
                            bool prefetched)
{
    Addr line = lineAddr(addr);
    Addr victim = 0;

    bool l2_hit;
    if (demand) {
        ++l2Acc_;
        l2_hit = l2_.access(line, false);
        if (!l2_hit)
            ++l2Miss_;
    } else {
        l2_hit = l2_.probe(line);
    }

    // The L2 next-line prefetcher observes all L2 demand traffic (hits
    // included, or a marching stream would only ever run one line ahead).
    if (demand && l2Prefetcher_) {
        pfScratch_.clear();
        l2Prefetcher_->observe(0, addr, l2_hit, pfScratch_);
        for (Addr cand : pfScratch_) {
            if (!l2_.probe(cand) && !llc_.probe(cand)) {
                ++pfIssued_;
                // Next-line fill: bring into L2 (and LLC) quietly.
                llc_.insert(cand, false, true, victim);
                l2_.insert(cand, false, true, victim);
            }
        }
    }

    if (l2_hit)
        return params_.l2.latency;

    Cycle lat = params_.l2.latency;
    if (demand) {
        ++llcAcc_;
        if (llc_.access(line, false)) {
            l2_.insert(line, false, prefetched, victim);
            return lat + params_.llc.latency;
        }
        ++llcMiss_;
    } else if (llc_.probe(line)) {
        l2_.insert(line, false, prefetched, victim);
        return lat + params_.llc.latency;
    }

    // DRAM.
    llc_.insert(line, write, prefetched, victim);
    l2_.insert(line, false, prefetched, victim);
    return lat + params_.llc.latency + params_.dramLatency;
}

Cycle
MemoryHierarchy::fillL1(Cache &l1, std::unordered_map<Addr, Cycle> &inflight,
                        Addr addr, bool write, bool demand, bool prefetched,
                        Cycle now)
{
    Addr line = lineAddr(addr);

    // MSHR-style merge with an outstanding fill.
    auto it = inflight.find(line);
    if (it != inflight.end()) {
        if (it->second > now)
            return it->second - now;
        inflight.erase(it);
        // The fill completed: the line is in the tag array already.
        return 0;
    }

    Cycle beyond = walkShared(addr, write, demand, prefetched);
    Addr victim = 0;
    l1.insert(line, write, prefetched, victim);
    if (victim != 0)
        inflight.erase(victim);
    inflight[line] = now + beyond;
    cleanInflight(inflight, now);
    return beyond;
}

namespace
{

/** Classify a beyond-L1 delay into the level that provided the data. */
unsigned
levelOf(Cycle beyond, const HierarchyParams &p)
{
    if (beyond == 0)
        return 1;
    if (beyond <= p.l2.latency)
        return 2;
    if (beyond <= p.l2.latency + p.llc.latency)
        return 3;
    return 4;
}

} // namespace

AccessResult
MemoryHierarchy::access(AccessKind kind, Addr addr, Addr ip, Cycle now)
{
    AccessResult res;
    Addr line = lineAddr(addr);

    if (kind == AccessKind::Instr) {
        ++l1iAcc_;
        res.latency = params_.l1i.latency;
        if (l1i_.access(line, false)) {
            // Tag hit, but the fill may still be in flight (a late
            // prefetch or an MSHR merge): pay the remaining time and
            // count it as a demand miss.
            auto it = inflightI_.find(line);
            if (it != inflightI_.end()) {
                if (it->second > now) {
                    res.latency += it->second - now;
                    res.l1Miss = true;
                    ++l1iMiss_;
                    ++l1iMshrMerge_;
                    res.level = levelOf(it->second - now, params_);
                } else {
                    inflightI_.erase(it);
                }
            }
            return res;
        }
        ++l1iMiss_;
        res.l1Miss = true;
        Cycle beyond =
            fillL1(l1i_, inflightI_, addr, false, true, false, now);
        res.latency += beyond;
        res.level = levelOf(beyond, params_);
        return res;
    }

    bool write = kind == AccessKind::Store;
    ++l1dAcc_;
    res.latency = params_.l1d.latency;
    bool hit = l1d_.access(line, write);
    if (hit) {
        auto it = inflightD_.find(line);
        if (it != inflightD_.end()) {
            if (it->second > now) {
                res.latency += it->second - now;
                res.l1Miss = true;
                ++l1dMiss_;
                ++l1dMshrMerge_;
                res.level = levelOf(it->second - now, params_);
            } else {
                inflightD_.erase(it);
            }
        }
    } else {
        ++l1dMiss_;
        res.l1Miss = true;
        Cycle beyond =
            fillL1(l1d_, inflightD_, addr, write, true, false, now);
        res.latency += beyond;
        res.level = levelOf(beyond, params_);
    }

    // Train the L1D prefetcher on every demand access.
    if (l1dPrefetcher_) {
        pfScratch_.clear();
        l1dPrefetcher_->observe(ip, addr, hit, pfScratch_);
        // Move candidates out: prefetchData reuses the scratch vector.
        std::vector<Addr> cands;
        cands.swap(pfScratch_);
        for (Addr cand : cands)
            prefetchData(cand, now);
    }
    return res;
}

bool
MemoryHierarchy::prefetchInstr(Addr addr, Cycle now)
{
    Addr line = lineAddr(addr);
    if (l1i_.probe(line))
        return false;
    auto it = inflightI_.find(line);
    if (it != inflightI_.end() && it->second > now)
        return false;
    ++pfIssued_;
    fillL1(l1i_, inflightI_, addr, false, false, true, now);
    return true;
}

bool
MemoryHierarchy::prefetchData(Addr addr, Cycle now)
{
    Addr line = lineAddr(addr);
    if (l1d_.probe(line))
        return false;
    auto it = inflightD_.find(line);
    if (it != inflightD_.end() && it->second > now)
        return false;
    ++pfIssued_;
    fillL1(l1d_, inflightD_, addr, false, false, true, now);
    return true;
}

bool
MemoryHierarchy::probeL1I(Addr addr, Cycle now) const
{
    Addr line = lineAddr(addr);
    if (l1i_.probe(line)) {
        auto it = inflightI_.find(line);
        return it == inflightI_.end() || it->second <= now;
    }
    return false;
}

void
MemoryHierarchy::report(StatSet &stats) const
{
    stats.set("l1i.accesses", l1iAcc_);
    stats.set("l1i.misses", l1iMiss_);
    stats.set("l1i.mshr_merges", l1iMshrMerge_);
    stats.set("l1d.accesses", l1dAcc_);
    stats.set("l1d.misses", l1dMiss_);
    stats.set("l1d.mshr_merges", l1dMshrMerge_);
    stats.set("l2.accesses", l2Acc_);
    stats.set("l2.misses", l2Miss_);
    stats.set("llc.accesses", llcAcc_);
    stats.set("llc.misses", llcMiss_);
    stats.set("prefetch.issued", pfIssued_);
}

void
MemoryHierarchy::exportMetrics(obs::MetricsRegistry &reg,
                               const std::string &prefix) const
{
    StatSet stats;
    report(stats);
    for (const auto &[name, value] : stats.entries())
        reg.setCounter(prefix + "." + name, value);
}

} // namespace trb
