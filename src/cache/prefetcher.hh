/**
 * @file
 * Data prefetchers: the IP-stride prefetcher at the L1D and the next-line
 * prefetcher at the L2 -- the paper's stand-in for the Icelake-style
 * prefetching setup.  Prefetch candidates are returned to the hierarchy,
 * which performs the fills with proper latency accounting.
 */

#ifndef TRB_CACHE_PREFETCHER_HH
#define TRB_CACHE_PREFETCHER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace trb
{

/** Interface of a data prefetcher attached to one cache level. */
class DataPrefetcher
{
  public:
    virtual ~DataPrefetcher() = default;

    /**
     * Observe a demand access and append prefetch candidates.
     * @param ip instruction address of the memory instruction
     * @param addr byte address accessed
     * @param hit whether the demand access hit this level
     * @param out candidate line-aligned prefetch addresses
     */
    virtual void observe(Addr ip, Addr addr, bool hit,
                         std::vector<Addr> &out) = 0;

    virtual const char *name() const = 0;
};

/** Classic per-IP stride detector with confidence and degree. */
class IpStridePrefetcher : public DataPrefetcher
{
  public:
    explicit IpStridePrefetcher(unsigned degree = 3) : degree_(degree) {}

    void
    observe(Addr ip, Addr addr, bool /*hit*/,
            std::vector<Addr> &out) override
    {
        Entry &e = table_[(ip >> 2) % table_.size()];
        Addr tag = ip >> 2;
        if (e.tag != tag) {
            e = Entry{};
            e.tag = tag;
            e.lastAddr = addr;
            return;
        }
        std::int64_t stride = static_cast<std::int64_t>(addr) -
                              static_cast<std::int64_t>(e.lastAddr);
        if (stride != 0 && stride == e.stride) {
            if (e.confidence < 3)
                ++e.confidence;
        } else if (stride != 0) {
            e.stride = stride;
            e.confidence = e.confidence > 0 ? e.confidence - 1 : 0;
        }
        e.lastAddr = addr;
        if (e.confidence >= 2 && e.stride != 0) {
            Addr next = addr;
            for (unsigned d = 0; d < degree_; ++d) {
                next = static_cast<Addr>(
                    static_cast<std::int64_t>(next) + e.stride);
                out.push_back(lineAddr(next));
            }
        }
    }

    const char *name() const override { return "ip-stride"; }

  private:
    struct Entry
    {
        Addr tag = 0;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
    };

    unsigned degree_;
    std::array<Entry, 1024> table_{};
};

/** Fetch line + 1 on every demand access. */
class NextLinePrefetcher : public DataPrefetcher
{
  public:
    void
    observe(Addr /*ip*/, Addr addr, bool /*hit*/,
            std::vector<Addr> &out) override
    {
        out.push_back(lineAddr(addr) + kLineBytes);
    }

    const char *name() const override { return "next-line"; }
};

} // namespace trb

#endif // TRB_CACHE_PREFETCHER_HH
