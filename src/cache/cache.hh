/**
 * @file
 * A set-associative cache tag array with pluggable replacement (LRU or
 * SRRIP).  Purely structural: hit/miss/insert/evict bookkeeping; the
 * hierarchy (hierarchy.hh) owns latencies and miss handling.
 */

#ifndef TRB_CACHE_CACHE_HH
#define TRB_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace trb
{

/** Replacement policies available to Cache. */
enum class ReplPolicy : std::uint8_t
{
    Lru,
    Srrip,
};

/** Structural parameters of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::size_t sizeBytes = 32 * 1024;
    unsigned ways = 8;
    Cycle latency = 4;              //!< added cycles when this level hits
    ReplPolicy policy = ReplPolicy::Lru;
};

/** Tag-array cache with LRU/SRRIP replacement. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Demand access to the line containing @p addr.
     * @return true on hit (recency/RRPV updated).
     */
    bool access(Addr addr, bool write);

    /** True if the line is present (no replacement state update). */
    bool probe(Addr addr) const;

    /**
     * Insert the line containing @p addr.
     * @param prefetched marks SRRIP distant-reuse insertion
     * @param[out] victim line address evicted (0 if none/invalid)
     * @return true if a dirty victim was evicted (writeback needed)
     */
    bool insert(Addr addr, bool write, bool prefetched, Addr &victim);

    /** Invalidate the line if present; returns true if it was dirty. */
    bool invalidate(Addr addr);

    const CacheParams &params() const { return params_; }
    std::size_t numSets() const { return sets_; }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t insertions() const { return insertions_; }
    std::uint64_t writebacks() const { return writebacks_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;      //!< recency stamp (LRU)
        std::uint8_t rrpv = 3;      //!< re-reference prediction (SRRIP)
    };

    std::size_t setOf(Addr addr) const { return lineNum(addr) & setMask_; }
    Addr tagOf(Addr addr) const { return lineNum(addr); }
    Line *find(Addr addr);
    const Line *find(Addr addr) const;
    Line &pickVictim(std::size_t set);

    CacheParams params_;
    std::size_t sets_;
    std::size_t setMask_;
    std::vector<Line> lines_;
    std::uint64_t clock_ = 0;

    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t insertions_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace trb

#endif // TRB_CACHE_CACHE_HH
