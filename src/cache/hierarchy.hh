/**
 * @file
 * The four-level memory hierarchy (L1I, L1D, shared L2, LLC, DRAM) with
 * latency-aware miss handling: a miss starts an in-flight fill that
 * becomes usable at now + latency, and demand accesses that land on an
 * in-flight line pay only the remaining time (an MSHR-hit).  Data
 * prefetchers (ip-stride at L1D, next-line at L2) and the instruction
 * prefetcher hook issue non-demand fills through the same machinery.
 */

#ifndef TRB_CACHE_HIERARCHY_HH
#define TRB_CACHE_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "cache/prefetcher.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "obs/metrics.hh"

namespace trb
{

/** Parameters of the whole hierarchy. */
struct HierarchyParams
{
    CacheParams l1i{"L1I", 32 * 1024, 8, 4, ReplPolicy::Lru};
    CacheParams l1d{"L1D", 48 * 1024, 12, 5, ReplPolicy::Lru};
    CacheParams l2{"L2", 512 * 1024, 8, 10, ReplPolicy::Lru};
    CacheParams llc{"LLC", 2 * 1024 * 1024, 16, 24, ReplPolicy::Srrip};
    Cycle dramLatency = 180;
    bool l1dIpStride = true;    //!< the paper's Icelake-like L1D prefetch
    bool l2NextLine = true;     //!< ... and its L2 next-line companion
};

/** What a demand access is. */
enum class AccessKind : std::uint8_t
{
    Instr,
    Load,
    Store,
};

/** Demand access outcome. */
struct AccessResult
{
    Cycle latency = 0;      //!< cycles until the data is usable
    unsigned level = 1;     //!< 1..3 = cache level that hit, 4 = DRAM
    bool l1Miss = false;
};

/** The memory hierarchy. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyParams &params);

    /** Demand access at cycle @p now. @p ip trains data prefetchers. */
    AccessResult access(AccessKind kind, Addr addr, Addr ip, Cycle now);

    /**
     * Instruction prefetch into the L1I (for instruction prefetchers).
     * @return true if a fill was started (not already present/in-flight).
     */
    bool prefetchInstr(Addr addr, Cycle now);

    /** Data prefetch into the L1D (exposed for completeness/tests). */
    bool prefetchData(Addr addr, Cycle now);

    /** True if the line is in the L1I or its fill has completed. */
    bool probeL1I(Addr addr, Cycle now) const;

    /// @name Demand statistics (misses are per-level demand misses).
    /// @{
    std::uint64_t l1iAccesses() const { return l1iAcc_; }
    std::uint64_t l1iMisses() const { return l1iMiss_; }
    std::uint64_t l1dAccesses() const { return l1dAcc_; }
    std::uint64_t l1dMisses() const { return l1dMiss_; }
    std::uint64_t l2Accesses() const { return l2Acc_; }
    std::uint64_t l2Misses() const { return l2Miss_; }
    std::uint64_t llcAccesses() const { return llcAcc_; }
    std::uint64_t llcMisses() const { return llcMiss_; }
    std::uint64_t prefetchesIssued() const { return pfIssued_; }
    /** Demand accesses that merged with an in-flight L1I fill. */
    std::uint64_t l1iMshrMerges() const { return l1iMshrMerge_; }
    /** Demand accesses that merged with an in-flight L1D fill. */
    std::uint64_t l1dMshrMerges() const { return l1dMshrMerge_; }
    /// @}

    /** Dump every counter into a StatSet. */
    void report(StatSet &stats) const;

    /**
     * Register every hierarchy counter under @p prefix in a metrics
     * registry ("<prefix>.l1i.accesses", "<prefix>.l1i.mshr_merges", ...).
     */
    void exportMetrics(obs::MetricsRegistry &reg,
                       const std::string &prefix = "cache") const;

  private:
    /**
     * Walk the shared levels (L2, LLC, DRAM) for a line that missed an
     * L1.  Counts demand statistics when @p demand and fills the shared
     * levels on the way back.
     * @return cumulative latency beyond the L1 access.
     */
    Cycle walkShared(Addr addr, bool write, bool demand, bool prefetched);

    /** Start or join an in-flight fill; returns data-ready delay. */
    Cycle fillL1(Cache &l1, std::unordered_map<Addr, Cycle> &inflight,
                 Addr addr, bool write, bool demand, bool prefetched,
                 Cycle now);

    static void cleanInflight(std::unordered_map<Addr, Cycle> &map,
                              Cycle now);

    HierarchyParams params_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Cache llc_;

    std::unordered_map<Addr, Cycle> inflightI_;
    std::unordered_map<Addr, Cycle> inflightD_;

    std::unique_ptr<DataPrefetcher> l1dPrefetcher_;
    std::unique_ptr<DataPrefetcher> l2Prefetcher_;
    std::vector<Addr> pfScratch_;

    std::uint64_t l1iAcc_ = 0, l1iMiss_ = 0, l1iMshrMerge_ = 0;
    std::uint64_t l1dAcc_ = 0, l1dMiss_ = 0, l1dMshrMerge_ = 0;
    std::uint64_t l2Acc_ = 0, l2Miss_ = 0;
    std::uint64_t llcAcc_ = 0, llcMiss_ = 0;
    std::uint64_t pfIssued_ = 0;
};

} // namespace trb

#endif // TRB_CACHE_HIERARCHY_HH
