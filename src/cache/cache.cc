#include "cache/cache.hh"

#include "common/logging.hh"

namespace trb
{

Cache::Cache(const CacheParams &params) : params_(params)
{
    std::size_t lines = params.sizeBytes / kLineBytes;
    trb_assert(params.ways >= 1 && lines % params.ways == 0,
               "cache lines must divide into ways: ", params.name);
    sets_ = lines / params.ways;
    trb_assert((sets_ & (sets_ - 1)) == 0,
               "cache set count must be a power of two: ", params.name);
    setMask_ = sets_ - 1;
    lines_.assign(lines, Line{});
}

Cache::Line *
Cache::find(Addr addr)
{
    Line *set = &lines_[setOf(addr) * params_.ways];
    for (unsigned w = 0; w < params_.ways; ++w)
        if (set[w].valid && set[w].tag == tagOf(addr))
            return &set[w];
    return nullptr;
}

const Cache::Line *
Cache::find(Addr addr) const
{
    const Line *set = &lines_[setOf(addr) * params_.ways];
    for (unsigned w = 0; w < params_.ways; ++w)
        if (set[w].valid && set[w].tag == tagOf(addr))
            return &set[w];
    return nullptr;
}

bool
Cache::access(Addr addr, bool write)
{
    ++accesses_;
    Line *line = find(addr);
    if (!line) {
        ++misses_;
        return false;
    }
    line->lru = ++clock_;
    line->rrpv = 0;
    line->dirty |= write;
    return true;
}

bool
Cache::probe(Addr addr) const
{
    return find(addr) != nullptr;
}

Cache::Line &
Cache::pickVictim(std::size_t set)
{
    Line *ways = &lines_[set * params_.ways];
    for (unsigned w = 0; w < params_.ways; ++w)
        if (!ways[w].valid)
            return ways[w];

    if (params_.policy == ReplPolicy::Lru) {
        Line *victim = &ways[0];
        for (unsigned w = 1; w < params_.ways; ++w)
            if (ways[w].lru < victim->lru)
                victim = &ways[w];
        return *victim;
    }

    // SRRIP: evict the first line with maximal RRPV, aging as needed.
    for (;;) {
        for (unsigned w = 0; w < params_.ways; ++w)
            if (ways[w].rrpv >= 3)
                return ways[w];
        for (unsigned w = 0; w < params_.ways; ++w)
            ++ways[w].rrpv;
    }
}

bool
Cache::insert(Addr addr, bool write, bool prefetched, Addr &victim)
{
    victim = 0;
    Line *existing = find(addr);
    if (existing) {
        existing->dirty |= write;
        return false;
    }
    ++insertions_;
    Line &line = pickVictim(setOf(addr));
    bool dirty_evict = line.valid && line.dirty;
    if (line.valid)
        victim = line.tag * kLineBytes;
    if (dirty_evict)
        ++writebacks_;
    line.valid = true;
    line.tag = tagOf(addr);
    line.dirty = write;
    line.lru = ++clock_;
    line.rrpv = prefetched ? 3 : 2;
    return dirty_evict;
}

bool
Cache::invalidate(Addr addr)
{
    Line *line = find(addr);
    if (!line)
        return false;
    bool dirty = line->dirty;
    line->valid = false;
    line->dirty = false;
    return dirty;
}

} // namespace trb
