#include "obs/metrics.hh"

#include "common/env.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "obs/profile.hh"
#include "obs/span.hh"

namespace trb
{
namespace obs
{

std::uint64_t &
MetricsRegistry::counterLocked(const std::string &path)
{
    auto it = counterIndex_.find(path);
    if (it == counterIndex_.end()) {
        it = counterIndex_.emplace(path, counters_.size()).first;
        counters_.push_back({path, 0});
    }
    return counters_[it->second].value;
}

double &
MetricsRegistry::gaugeLocked(const std::string &path)
{
    auto it = gaugeIndex_.find(path);
    if (it == gaugeIndex_.end()) {
        it = gaugeIndex_.emplace(path, gauges_.size()).first;
        gauges_.push_back({path, 0.0});
    }
    return gauges_[it->second].value;
}

std::uint64_t &
MetricsRegistry::counter(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counterLocked(path);
}

double &
MetricsRegistry::gauge(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return gaugeLocked(path);
}

Histogram &
MetricsRegistry::histogram(const std::string &path,
                           std::uint64_t bucket_width,
                           std::size_t num_buckets)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histogramIndex_.find(path);
    if (it == histogramIndex_.end()) {
        it = histogramIndex_.emplace(path, histograms_.size()).first;
        histograms_.push_back({path, Histogram(bucket_width, num_buckets)});
    }
    return histograms_[it->second].hist;
}

void
MetricsRegistry::setCounter(const std::string &path, std::uint64_t v)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counterLocked(path) = v;
}

void
MetricsRegistry::setGauge(const std::string &path, double v)
{
    std::lock_guard<std::mutex> lock(mutex_);
    gaugeLocked(path) = v;
}

void
MetricsRegistry::addCounter(const std::string &path, std::uint64_t delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counterLocked(path) += delta;
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counterIndex_.find(path);
    return it == counterIndex_.end() ? 0 : counters_[it->second].value;
}

double
MetricsRegistry::gaugeValue(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gaugeIndex_.find(path);
    return it == gaugeIndex_.end() ? 0.0 : gauges_[it->second].value;
}

bool
MetricsRegistry::empty() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    counterIndex_.clear();
    gaugeIndex_.clear();
    histogramIndex_.clear();
}

MetricsRegistry::Snapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    snap.counters.assign(counters_.begin(), counters_.end());
    snap.gauges.assign(gauges_.begin(), gauges_.end());
    snap.histograms.assign(histograms_.begin(), histograms_.end());
    return snap;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

namespace
{

/** Shortest decimal that round-trips a double. */
std::string
jsonDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    const Snapshot snap = snapshot();
    os << "{\n  \"counters\": {";
    const char *sep = "";
    for (const CounterEntry &c : snap.counters) {
        os << sep << "\n    " << jsonQuote(c.path) << ": " << c.value;
        sep = ",";
    }
    os << (snap.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
    sep = "";
    for (const GaugeEntry &g : snap.gauges) {
        os << sep << "\n    " << jsonQuote(g.path) << ": "
           << jsonDouble(g.value);
        sep = ",";
    }
    os << (snap.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
    sep = "";
    for (const HistogramEntry &h : snap.histograms) {
        os << sep << "\n    " << jsonQuote(h.path) << ": {"
           << "\"bucket_width\": " << h.hist.bucketWidth()
           << ", \"total\": " << h.hist.total()
           << ", \"mean\": " << jsonDouble(h.hist.meanValue())
           << ", \"p50\": " << h.hist.percentile(50)
           << ", \"p95\": " << h.hist.percentile(95)
           << ", \"p99\": " << h.hist.percentile(99) << ", \"buckets\": [";
        const char *bsep = "";
        for (std::uint64_t b : h.hist.buckets()) {
            os << bsep << b;
            bsep = ", ";
        }
        os << "]}";
        sep = ",";
    }
    os << (snap.histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

void
MetricsRegistry::writeCsv(std::ostream &os) const
{
    const Snapshot snap = snapshot();
    os << "kind,path,value\n";
    for (const CounterEntry &c : snap.counters)
        os << "counter," << c.path << "," << c.value << "\n";
    for (const GaugeEntry &g : snap.gauges)
        os << "gauge," << g.path << "," << jsonDouble(g.value) << "\n";
    for (const HistogramEntry &h : snap.histograms) {
        os << "histogram," << h.path << ".total," << h.hist.total() << "\n";
        os << "histogram," << h.path << ".mean,"
           << jsonDouble(h.hist.meanValue()) << "\n";
        os << "histogram," << h.path << ".p50," << h.hist.percentile(50)
           << "\n";
        os << "histogram," << h.path << ".p95," << h.hist.percentile(95)
           << "\n";
        os << "histogram," << h.path << ".p99," << h.hist.percentile(99)
           << "\n";
    }
}

std::string
MetricsRegistry::toJson() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

std::string
MetricsRegistry::toCsv() const
{
    std::ostringstream os;
    writeCsv(os);
    return os.str();
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

// ---- ShardedMetricsRegistry ----

MetricsRegistry &
ShardedMetricsRegistry::shard(const std::string &path)
{
    return shards_[std::hash<std::string>{}(path) % kShards];
}

const MetricsRegistry &
ShardedMetricsRegistry::shard(const std::string &path) const
{
    return shards_[std::hash<std::string>{}(path) % kShards];
}

void
ShardedMetricsRegistry::addCounter(const std::string &path,
                                   std::uint64_t delta)
{
    shard(path).addCounter(path, delta);
}

void
ShardedMetricsRegistry::setGauge(const std::string &path, double v)
{
    shard(path).setGauge(path, v);
}

std::uint64_t
ShardedMetricsRegistry::counterValue(const std::string &path) const
{
    return shard(path).counterValue(path);
}

double
ShardedMetricsRegistry::gaugeValue(const std::string &path) const
{
    return shard(path).gaugeValue(path);
}

void
ShardedMetricsRegistry::mergeInto(MetricsRegistry &target) const
{
    for (const MetricsRegistry &s : shards_) {
        const MetricsRegistry::Snapshot snap = s.snapshot();
        for (const MetricsRegistry::CounterEntry &c : snap.counters)
            target.addCounter(c.path, c.value);
        for (const MetricsRegistry::GaugeEntry &g : snap.gauges)
            target.setGauge(g.path, g.value);
    }
}

// ---- ThreadMetricsBuffer ----

void
ThreadMetricsBuffer::add(const std::string &path, std::uint64_t delta)
{
    auto it = counterIndex_.find(path);
    if (it == counterIndex_.end()) {
        counterIndex_.emplace(path, counters_.size());
        counters_.emplace_back(path, delta);
        return;
    }
    counters_[it->second].second += delta;
}

void
ThreadMetricsBuffer::set(const std::string &path, double v)
{
    auto it = gaugeIndex_.find(path);
    if (it == gaugeIndex_.end()) {
        gaugeIndex_.emplace(path, gauges_.size());
        gauges_.emplace_back(path, v);
        return;
    }
    gauges_[it->second].second = v;
}

void
ThreadMetricsBuffer::flush()
{
    for (const auto &[path, delta] : counters_)
        target_.addCounter(path, delta);
    for (const auto &[path, v] : gauges_)
        target_.setGauge(path, v);
    counters_.clear();
    gauges_.clear();
    counterIndex_.clear();
    gaugeIndex_.clear();
}

// ---- process-end export ----

namespace
{

bool
writeFile(const char *env, const std::string &text, const char *what)
{
    const char *path = trb::env::raw(env);
    if (!path || !*path)
        return false;
    std::ofstream out(path);
    if (!out) {
        trb_warn("obs: cannot open ", path, " for ", what, " dump");
        return false;
    }
    out << text;
    trb_inform("obs: wrote ", what, " metrics to ", path);
    return true;
}

} // namespace

bool
dumpIfRequested()
{
    const MetricsRegistry &reg = MetricsRegistry::global();
    bool wrote = writeFile("TRB_OBS_JSON", reg.toJson(), "JSON");
    wrote |= writeFile("TRB_OBS_CSV", reg.toCsv(), "CSV");

    // The merged span/pipeline timeline, if spans were collected.
    const char *spans_path = trb::env::raw("TRB_OBS_SPANS");
    if (spans_path && *spans_path) {
        std::ofstream out(spans_path);
        if (!out) {
            trb_warn("obs: cannot open ", spans_path, " for the span trace");
        } else {
            SpanTimeline::global().writeChromeTrace(out);
            trb_inform("obs: wrote span timeline to ", spans_path);
            wrote = true;
        }
    }
    return wrote;
}

namespace
{
bool g_finished = false;
} // namespace

namespace detail
{

void
resetFinishForTests()
{
    g_finished = false;
}

} // namespace detail

bool
finish()
{
    if (g_finished)
        return false;
    g_finished = true;
    PhaseProfile &phases = PhaseProfile::global();
    if (!phases.empty()) {
        phases.exportTo(MetricsRegistry::global(), "phase");
        if (logEnabled(LogLevel::Info))
            trb_inform("phase profile:\n", phases.report("  "));
    }
    return dumpIfRequested();
}

} // namespace obs
} // namespace trb
