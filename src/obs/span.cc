#include "obs/span.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ostream>

#include "common/env.hh"
#include "obs/metrics.hh"
#include "obs/pipeline_trace.hh"
#include "par/thread_pool.hh"

namespace trb
{
namespace obs
{

namespace
{

/** Per-thread nesting depth of live SpanScopes. */
thread_local std::uint32_t tl_span_depth = 0;

/** -1 = not yet read, else 0/1. */
std::atomic<int> g_spans_enabled{-1};

std::chrono::steady_clock::time_point
epoch()
{
    static const auto t0 = std::chrono::steady_clock::now();
    return t0;
}

} // namespace

bool
SpanTimeline::enabled()
{
    int state = g_spans_enabled.load(std::memory_order_relaxed);
    if (state < 0) {
        const char *path = env::raw("TRB_OBS_SPANS");
        state = (path && *path) ? 1 : 0;
        g_spans_enabled.store(state, std::memory_order_relaxed);
    }
    return state != 0;
}

void
SpanTimeline::setEnabledForTests(int on)
{
    g_spans_enabled.store(on < 0 ? -1 : (on ? 1 : 0),
                          std::memory_order_relaxed);
}

double
SpanTimeline::nowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch())
        .count();
}

void
SpanTimeline::record(SpanEvent ev)
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(std::move(ev));
}

std::size_t
SpanTimeline::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_.size();
}

std::vector<SpanEvent>
SpanTimeline::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

void
SpanTimeline::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.clear();
}

namespace
{

void
writeProcessName(std::ostream &os, const char *&sep, unsigned long long pid,
                 const std::string &name)
{
    os << sep << "\n  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
       << pid << ", \"tid\": 0, \"args\": {\"name\": "
       << jsonQuote(name) << "}}";
    sep = ",";
}

void
writeInstrSlice(std::ostream &os, const char *&sep, const char *name,
                unsigned long long pid, const InstrEvent &ev,
                std::uint64_t begin, std::uint64_t end)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\": \"%s\", \"ph\": \"X\", \"ts\": %llu, "
                  "\"dur\": %llu, \"pid\": %llu, \"tid\": %llu, "
                  "\"args\": {\"seq\": %llu, \"ip\": \"0x%llx\"}}",
                  sep, name, static_cast<unsigned long long>(begin),
                  static_cast<unsigned long long>(
                      end > begin ? end - begin : 1),
                  pid, static_cast<unsigned long long>(ev.seq % 64),
                  static_cast<unsigned long long>(ev.seq),
                  static_cast<unsigned long long>(ev.ip));
    os << buf;
    sep = ",";
}

} // namespace

void
SpanTimeline::writeChromeTrace(std::ostream &os, bool merge_pipeline) const
{
    const std::vector<SpanEvent> spans = snapshot();
    os << "{\"traceEvents\": [";
    const char *sep = "";
    writeProcessName(os, sep, 0, "trb spans (wall-clock us, tid = worker)");
    for (const SpanEvent &s : spans) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s\n  {\"name\": %s, \"ph\": \"X\", \"ts\": %.3f, "
                      "\"dur\": %.3f, \"pid\": 0, \"tid\": %u, ",
                      sep, jsonQuote(s.name).c_str(), s.startUs,
                      s.durUs > 0.0 ? s.durUs : 0.001, s.worker);
        os << buf << "\"cat\": " << jsonQuote(s.category)
           << ", \"args\": {\"depth\": " << s.depth;
        if (s.items)
            os << ", \"items\": " << s.items;
        os << "}}";
        sep = ",";
    }
    if (merge_pipeline) {
        for (const auto &[worker, events] :
             PipelineTracer::collectAllThreads()) {
            if (events.empty())
                continue;
            const unsigned long long pid = 1 + worker;
            writeProcessName(os, sep, pid,
                             "pipeline worker " + std::to_string(worker) +
                                 " (cycles)");
            for (const InstrEvent &ev : events) {
                writeInstrSlice(os, sep, "frontend", pid, ev, ev.fetch,
                                ev.dispatch);
                writeInstrSlice(os, sep, "wait", pid, ev, ev.dispatch,
                                ev.issue);
                writeInstrSlice(os, sep, "execute", pid, ev, ev.issue,
                                ev.complete);
                writeInstrSlice(os, sep, "commit", pid, ev, ev.complete,
                                ev.retire);
            }
        }
    }
    os << "\n]}\n";
}

SpanTimeline &
SpanTimeline::global()
{
    static SpanTimeline timeline;
    return timeline;
}

SpanScope::SpanScope(std::string name, std::string category,
                     std::uint64_t items)
    : active_(SpanTimeline::enabled()), name_(std::move(name)),
      category_(std::move(category)), items_(items)
{
    if (active_) {
        startUs_ = SpanTimeline::nowUs();
        ++tl_span_depth;
    }
}

SpanScope::~SpanScope()
{
    if (!active_)
        return;
    --tl_span_depth;
    SpanEvent ev;
    ev.name = std::move(name_);
    ev.category = std::move(category_);
    ev.startUs = startUs_;
    ev.durUs = SpanTimeline::nowUs() - startUs_;
    ev.worker = static_cast<std::uint32_t>(par::workerId());
    ev.depth = tl_span_depth;
    ev.items = items_;
    SpanTimeline::global().record(std::move(ev));
}

} // namespace obs
} // namespace trb
