#include "obs/sampler.hh"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#ifdef __linux__
#include <unistd.h>
#endif

#include "common/env.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/profile.hh"
#include "par/thread_pool.hh"

namespace trb
{
namespace obs
{

Sampler::Options
Sampler::optionsFromEnv()
{
    Options opts;
    opts.periodMs = env::u64("TRB_OBS_SAMPLE_MS", 0);
    opts.path = env::str("TRB_OBS_SAMPLE_PATH", "obs_samples.jsonl");
    return opts;
}

std::unique_ptr<Sampler>
Sampler::startFromEnv()
{
    Options opts = optionsFromEnv();
    if (opts.periodMs == 0)
        return nullptr;
    return std::make_unique<Sampler>(opts);
}

Sampler::Sampler(const Options &opts)
    : periodMs_(opts.periodMs), start_(std::chrono::steady_clock::now())
{
    if (!opts.path.empty()) {
        file_.open(opts.path, std::ios::trunc);
        if (!file_)
            trb_warn("obs: cannot open ", opts.path,
                     " for metric samples; sampling to nowhere");
    }
    if (periodMs_ > 0)
        thread_ = std::thread([this] { heartbeat(); });
}

Sampler::~Sampler()
{
    stop();
}

void
Sampler::heartbeat()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
        if (wake_.wait_for(lock, std::chrono::milliseconds(periodMs_),
                           [this] { return stopping_; }))
            break;
        // Sample without the lock so stop() is never delayed by a slow
        // snapshot; stop() only joins, it does not touch the file until
        // the thread is gone.
        lock.unlock();
        if (file_) {
            sampleOnce(file_);
            file_.flush();
        }
        lock.lock();
    }
}

void
Sampler::stop()
{
    if (stopped_)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    if (thread_.joinable())
        thread_.join();
    // Final sample so even the shortest enabled run produces one line.
    if (file_) {
        sampleOnce(file_);
        file_.flush();
    }
    stopped_ = true;
}

std::uint64_t
Sampler::processRssKb()
{
#ifdef __linux__
    std::FILE *statm = std::fopen("/proc/self/statm", "r");
    if (!statm)
        return 0;
    std::uint64_t total_pages = 0, resident_pages = 0;
    const int fields = std::fscanf(statm, "%" SCNu64 " %" SCNu64,
                                   &total_pages, &resident_pages);
    std::fclose(statm);
    if (fields != 2)
        return 0;
    const long page = sysconf(_SC_PAGESIZE);
    return resident_pages * static_cast<std::uint64_t>(page > 0 ? page : 4096)
           / 1024;
#else
    return 0;
#endif
}

void
Sampler::sampleOnce(std::ostream &os)
{
    const double t = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count();

    // Rolling throughput: items accumulated by the phase profile since
    // the previous tick, over the wall time between the ticks.
    const std::uint64_t items = PhaseProfile::global().totalItems();
    double rate = 0.0;
    if (t > lastSampleSeconds_ && items >= lastItems_)
        rate = static_cast<double>(items - lastItems_) /
               (t - lastSampleSeconds_);
    lastItems_ = items;
    lastSampleSeconds_ = t;

    char head[160];
    std::snprintf(head, sizeof(head),
                  "{\"schema\": \"trb-sample-v1\", \"t\": %.6f, "
                  "\"rss_kb\": %llu, \"items_per_sec\": %.1f",
                  t, static_cast<unsigned long long>(processRssKb()), rate);
    os << head;

    // Pool telemetry -- but never construct the pool just to watch it.
    if (const par::ThreadPool *pool = par::ThreadPool::globalIfStarted()) {
        os << ", \"jobs\": " << pool->jobs() << ", \"steals\": "
           << pool->stealCount() << ", \"queue_depth\": [";
        const char *sep = "";
        for (std::size_t depth : pool->queueDepths()) {
            os << sep << depth;
            sep = ", ";
        }
        os << "]";
    }

    const MetricsRegistry::Snapshot snap =
        MetricsRegistry::global().snapshot();
    os << ", \"counters\": {";
    const char *sep = "";
    for (const MetricsRegistry::CounterEntry &c : snap.counters) {
        os << sep << jsonQuote(c.path) << ": " << c.value;
        sep = ", ";
    }
    os << "}, \"gauges\": {";
    sep = "";
    for (const MetricsRegistry::GaugeEntry &g : snap.gauges) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", g.value);
        os << sep << jsonQuote(g.path) << ": " << buf;
        sep = ", ";
    }
    os << "}}\n";
    ++samples_;
}

} // namespace obs
} // namespace trb
