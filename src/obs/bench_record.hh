/**
 * @file
 * BENCH run manifests: every bench binary ends its run by writing a
 * schema-versioned BENCH_<name>.json record -- wall-clock and items/s
 * per phase, the full metrics registry (counters and gauges, which
 * carry the SimStats digests and store hit/miss counts), the trb::env
 * fingerprint (every registered TRB_* variable that was set), hostname
 * and git SHA -- the repo's tracked instr/s baseline.
 *
 * The record is what tools/trace_perf diffs: two manifests from the
 * same bench at different commits answer "did this change make the
 * simulator slower, and in which phase".  Schema evolution is
 * append-only; bump kBenchSchema when a field changes meaning.
 *
 * TRB_OBS_BENCH_DIR picks the output directory (default: the working
 * directory); set it to "0" or "off" to suppress the file entirely.
 */

#ifndef TRB_OBS_BENCH_RECORD_HH
#define TRB_OBS_BENCH_RECORD_HH

#include <iosfwd>
#include <string>

namespace trb
{
namespace obs
{

class MetricsRegistry;
class PhaseProfile;

/** The manifest schema identifier ("trb-bench-v1"). */
extern const char *const kBenchSchema;

/**
 * Render the manifest JSON for @p bench_name from explicit sources
 * (tests pass private registries; runBench passes the globals).
 * @p wall_seconds is the whole-process wall time the caller measured.
 */
void renderBenchRecord(std::ostream &os, const std::string &bench_name,
                       double wall_seconds, const MetricsRegistry &reg,
                       const PhaseProfile &phases);

/**
 * Resolve the BENCH_<name>.json path for @p bench_name under
 * TRB_OBS_BENCH_DIR; empty string when disabled.
 */
std::string benchRecordPath(const std::string &bench_name);

/**
 * Write the global registries' manifest to benchRecordPath(); logs the
 * destination at info level.  @return true if a file was written.
 */
bool writeBenchRecord(const std::string &bench_name, double wall_seconds);

} // namespace obs
} // namespace trb

#endif // TRB_OBS_BENCH_RECORD_HH
