/**
 * @file
 * Pipeline event tracer: a bounded ring buffer of per-instruction
 * lifecycle records (fetch / dispatch / issue / complete / retire cycle
 * stamps, squash cause) that O3Core emits when a tracer is attached.
 *
 * The tracer is off the hot path when disabled: the core guards the
 * emission with a single null-pointer check, so untraced simulations pay
 * nothing measurable.  When tracing, the ring keeps the most recent
 * TRB_TRACE_BUF records (default 65536), which is the window every
 * exporter renders:
 *
 *  - writeChromeTrace(): Chrome trace_event JSON (load into
 *    chrome://tracing or Perfetto; one lane per ROB-slot-like track,
 *    one slice per pipeline stage);
 *  - renderLaneView(): gem5-O3PipeView-style text lanes for a PC range
 *    (see examples/pipeline_viewer.cpp).
 */

#ifndef TRB_OBS_PIPELINE_TRACE_HH
#define TRB_OBS_PIPELINE_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace trb
{
namespace obs
{

/** Why the front-end was redirected at this instruction, if it was. */
enum class SquashCause : std::uint8_t
{
    None = 0,
    DirectionMispredict,   //!< conditional predicted the wrong way
    TargetMispredict,      //!< BTB/ITTAGE/RAS produced the wrong target
};

/** Human-readable name of a squash cause. */
const char *squashCauseName(SquashCause c);

/** One instruction's trip through the pipeline. */
struct InstrEvent
{
    std::uint64_t seq = 0;   //!< position in the trace
    Addr ip = 0;
    Cycle fetch = 0;
    Cycle dispatch = 0;
    Cycle issue = 0;
    Cycle complete = 0;
    Cycle retire = 0;
    BranchType branch = BranchType::NotBranch;
    SquashCause squash = SquashCause::None;
    bool isLoad = false;
    bool isStore = false;
};

/** Bounded ring buffer of instruction lifecycle records. */
class PipelineTracer
{
  public:
    /** TRB_TRACE_BUF, clamped to >= 1. */
    static std::size_t capacityFromEnv(std::size_t def = 65536);

    /** @param capacity ring size in records (>= 1). */
    explicit PipelineTracer(std::size_t capacity = capacityFromEnv());

    /** Record one retired instruction (overwrites the oldest). */
    void
    record(const InstrEvent &ev)
    {
        ring_[recorded_ % ring_.size()] = ev;
        ++recorded_;
    }

    std::size_t capacity() const { return ring_.size(); }

    /**
     * The calling thread's own ring (created on first use, capacity
     * from TRB_TRACE_BUF).  Parallel harness code attaches this to its
     * core so concurrent simulations never share a buffer: each worker
     * records into its private ring, and a task that wants the events
     * clears the ring before the run and collects events() after it --
     * the ring outlives tasks, not threads.
     */
    static PipelineTracer &thisThread();

    /**
     * The held events of every live thread's thisThread() ring, keyed
     * by the pool worker id the ring was first used on.  Only rings
     * still alive are visited (pool workers live until process end, so
     * in practice that is all of them); the span timeline merges these
     * into its Chrome trace as per-worker instruction lanes.  Callers
     * must not race this against concurrent record() on other threads
     * -- obs::finish() runs post-join, which is the intended site.
     */
    static std::vector<std::pair<std::size_t, std::vector<InstrEvent>>>
    collectAllThreads();

    /** Total records ever pushed (>= size() once wrapped). */
    std::uint64_t recorded() const { return recorded_; }

    /** Records currently held. */
    std::size_t
    size() const
    {
        return recorded_ < ring_.size()
                   ? static_cast<std::size_t>(recorded_)
                   : ring_.size();
    }

    void clear();

    /** The held records, oldest first. */
    std::vector<InstrEvent> events() const;

    /** Chrome trace_event JSON ({"traceEvents": [...]}). */
    void writeChromeTrace(std::ostream &os) const;

  private:
    std::vector<InstrEvent> ring_;
    std::uint64_t recorded_ = 0;
};

/**
 * Render a gem5-O3PipeView-style text lane view of @p events restricted
 * to instructions whose ip lies in [lo, hi] (lo = 0, hi = ~0 shows all).
 *
 * One line per instruction: seq, ip, kind, then a timeline of stage
 * letters (f=fetch, d=dispatch, i=issue, c=complete, r=retire) on a
 * cycle axis relative to the first shown fetch, squash causes flagged.
 *
 * @param max_instrs cap on rendered lines (0 = no cap)
 */
std::string renderLaneView(const std::vector<InstrEvent> &events,
                           Addr lo = 0, Addr hi = ~Addr{0},
                           std::size_t max_instrs = 0);

} // namespace obs
} // namespace trb

#endif // TRB_OBS_PIPELINE_TRACE_HH
