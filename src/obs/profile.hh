/**
 * @file
 * Phase profiling: RAII wall-clock scope timers accumulating into named
 * phases ("generate", "convert", "simulate", "set.All", "worker.3") plus
 * a suite progress reporter, so every experiment can answer "which stage
 * of the run dominates?" and report instructions/second per stage.
 *
 * The experiment harness times its stages automatically; bench binaries
 * surface the accumulated table via obs::finish().  Profiling costs two
 * steady_clock reads plus one short lock per scope, negligible against
 * the thousands of simulated instructions each scope covers.
 *
 * Thread safety: PhaseProfile::add() and SuiteProgress::step() are safe
 * from concurrent pool workers (the parallel harness times every task);
 * under TRB_JOBS>1 the *first-seen order* of phases depends on the
 * schedule, but the accumulated seconds/calls/items per phase do not.
 */

#ifndef TRB_OBS_PROFILE_HH
#define TRB_OBS_PROFILE_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>

namespace trb
{
namespace obs
{

class MetricsRegistry;

/** Accumulated wall-time (and item throughput) per named phase. */
class PhaseProfile
{
  public:
    struct Entry
    {
        std::string name;
        double seconds = 0.0;
        std::uint64_t calls = 0;
        std::uint64_t items = 0;   //!< e.g. instructions processed

        double
        itemsPerSecond() const
        {
            return seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
        }
    };

    /** Fold one timed scope into @p phase (locked, any thread). */
    void add(const std::string &phase, double seconds,
             std::uint64_t items = 0);

    /**
     * All phases in first-seen order.  Not synchronised against
     * writers: only use once concurrent scopes have quiesced.
     */
    const std::deque<Entry> &entries() const { return entries_; }

    /** Accumulated seconds of a phase; 0 if absent. */
    double seconds(const std::string &phase) const;

    /**
     * Sum of items across phases, excluding the per-worker "worker.N"
     * lanes (those re-count the items of the phases that ran on them).
     * The sampler's rolling items/second rate differentiates this.
     */
    std::uint64_t totalItems() const;

    bool empty() const;

    void clear();

    /**
     * Render a table: phase, wall seconds, share of the total, calls,
     * and items/second where items were recorded.
     */
    std::string report(const std::string &prefix = "") const;

    /**
     * Export as gauges/counters under @p prefix:
     * <prefix>.<phase>.seconds, .calls, .items, .items_per_second.
     */
    void exportTo(MetricsRegistry &reg, const std::string &prefix) const;

    /** The process-wide profile the harness and benches share. */
    static PhaseProfile &global();

  private:
    mutable std::mutex mutex_;
    std::deque<Entry> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

/**
 * RAII wall-clock timer: accumulates its lifetime into a phase of the
 * global (or a given) PhaseProfile on destruction.
 *
 * When the span timeline is enabled (TRB_OBS_SPANS), every scope on the
 * *global* profile also lands in the timeline as a "phase"-category
 * span on its worker's lane, so the phase table and the Chrome trace
 * describe the same scopes.  A scope on a private profile (tests) stays
 * out of the timeline.
 */
class ScopeTimer
{
  public:
    explicit ScopeTimer(std::string phase)
        : ScopeTimer(PhaseProfile::global(), std::move(phase))
    {}

    ScopeTimer(PhaseProfile &profile, std::string phase)
        : profile_(profile), phase_(std::move(phase)),
          start_(std::chrono::steady_clock::now())
    {}

    ScopeTimer(const ScopeTimer &) = delete;
    ScopeTimer &operator=(const ScopeTimer &) = delete;

    /** Attach an item count (e.g. instructions) for throughput. */
    void setItems(std::uint64_t items) { items_ = items; }
    void addItems(std::uint64_t items) { items_ += items; }

    /** Seconds elapsed so far. */
    double
    elapsed() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    ~ScopeTimer();

  private:
    PhaseProfile &profile_;
    std::string phase_;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t items_ = 0;
};

/**
 * Suite progress reporter: live progress on stderr while a suite runs,
 * per-trace detail at debug level, and an end-of-suite wall-time /
 * instructions-per-second summary at info level.  step() is safe from
 * concurrent pool workers.
 *
 * The live output adapts to where stderr goes (at info level and up):
 * on a terminal each step redraws one carriage-return progress line; on
 * anything else -- CI logs, redirected files -- it emits a sparse
 * line-per-milestone (about every 10% of the suite, always the last
 * step), so captured logs never accumulate control-character noise.
 * Nothing is ever written to stdout, which stays byte-identical.
 */
class SuiteProgress
{
  public:
    /** How step() renders progress on stderr. */
    enum class Style
    {
        Live,     //!< carriage-return redraw (stderr is a terminal)
        Sparse,   //!< one plain line per ~10% milestone
        Silent,   //!< nothing per step (log level below info)
    };

    /** Style for the current process: tty detection + log level. */
    static Style styleFromEnvironment();

    SuiteProgress(std::string what, std::size_t total);

    /** @param style override the auto-detected rendering (tests). */
    SuiteProgress(std::string what, std::size_t total, Style style);

    ~SuiteProgress();

    SuiteProgress(const SuiteProgress &) = delete;
    SuiteProgress &operator=(const SuiteProgress &) = delete;

    /** One unit of work done (0-based @p index), @p items processed. */
    void step(std::size_t index, std::uint64_t items = 0);

  private:
    std::mutex mutex_;
    std::string what_;
    std::size_t total_;
    Style style_;
    std::size_t stride_;   //!< sparse-mode milestone interval
    std::size_t done_ = 0;
    std::uint64_t items_ = 0;
    std::chrono::steady_clock::time_point start_;
};

} // namespace obs
} // namespace trb

#endif // TRB_OBS_PROFILE_HH
