/**
 * @file
 * Metrics registry: hierarchical counters, gauges and histograms
 * registered by component path ("core.rob.full_stalls",
 * "cache.l1i.mshr_merges"), with JSON and CSV exporters so every bench
 * binary can dump machine-readable results next to its human tables.
 *
 * Paths are dotted strings; the registry keeps insertion order so the
 * exported files read top-down the way components registered them.
 * Counter and gauge accessors return references that stay valid for the
 * registry's lifetime, so hot paths look a metric up once and increment
 * through the reference.
 *
 * TRB_OBS_JSON=<path> / TRB_OBS_CSV=<path> make obs::finish() (called by
 * the bench mains) write the global registry out at process end.
 */

#ifndef TRB_OBS_METRICS_HH
#define TRB_OBS_METRICS_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <unordered_map>

#include "common/stats.hh"

namespace trb
{
namespace obs
{

/** Hierarchical registry of counters, gauges and histograms. */
class MetricsRegistry
{
  public:
    /** A named uint64 counter entry. */
    struct CounterEntry
    {
        std::string path;
        std::uint64_t value = 0;
    };

    /** A named double gauge entry (ratios, rates, seconds). */
    struct GaugeEntry
    {
        std::string path;
        double value = 0.0;
    };

    /** A named histogram entry. */
    struct HistogramEntry
    {
        std::string path;
        Histogram hist;
    };

    /** Reference to the counter at @p path, created at 0 if absent. */
    std::uint64_t &counter(const std::string &path);

    /** Reference to the gauge at @p path, created at 0.0 if absent. */
    double &gauge(const std::string &path);

    /**
     * Reference to the histogram at @p path; created with the given
     * shape if absent (the shape of an existing histogram wins).
     */
    Histogram &histogram(const std::string &path,
                         std::uint64_t bucket_width = 1,
                         std::size_t num_buckets = 32);

    /** Set-style conveniences for one-shot exports. */
    void setCounter(const std::string &path, std::uint64_t v)
    {
        counter(path) = v;
    }
    void setGauge(const std::string &path, double v) { gauge(path) = v; }

    /** Value of a counter; 0 if absent (does not create). */
    std::uint64_t counterValue(const std::string &path) const;

    /** Value of a gauge; 0.0 if absent (does not create). */
    double gaugeValue(const std::string &path) const;

    const std::deque<CounterEntry> &counters() const { return counters_; }
    const std::deque<GaugeEntry> &gauges() const { return gauges_; }
    const std::deque<HistogramEntry> &histograms() const
    {
        return histograms_;
    }

    bool
    empty() const
    {
        return counters_.empty() && gauges_.empty() && histograms_.empty();
    }

    /** Drop every metric (tests; fresh runs in one process). */
    void clear();

    /**
     * Write the registry as one JSON object:
     * {"counters": {path: value, ...}, "gauges": {...},
     *  "histograms": {path: {bucket_width, total, mean, p50, p99,
     *                        buckets: [...]}, ...}}
     */
    void writeJson(std::ostream &os) const;

    /** Write "kind,path,value" CSV rows (histograms flattened). */
    void writeCsv(std::ostream &os) const;

    std::string toJson() const;
    std::string toCsv() const;

    /** The process-wide registry the simulator components feed. */
    static MetricsRegistry &global();

  private:
    std::deque<CounterEntry> counters_;
    std::deque<GaugeEntry> gauges_;
    std::deque<HistogramEntry> histograms_;
    std::unordered_map<std::string, std::size_t> counterIndex_;
    std::unordered_map<std::string, std::size_t> gaugeIndex_;
    std::unordered_map<std::string, std::size_t> histogramIndex_;
};

/** Escape a string for embedding in a JSON document (adds quotes). */
std::string jsonQuote(const std::string &s);

/**
 * Export accumulated phase wall-times into the global registry, log the
 * phase report (at info level) and honour TRB_OBS_JSON / TRB_OBS_CSV.
 * Every bench main calls this once before exiting.
 * @return true if at least one file was written.
 */
bool finish();

/** Just the env-gated dump half of finish(). */
bool dumpIfRequested();

} // namespace obs
} // namespace trb

#endif // TRB_OBS_METRICS_HH
