/**
 * @file
 * Metrics registry: hierarchical counters, gauges and histograms
 * registered by component path ("core.rob.full_stalls",
 * "cache.l1i.mshr_merges"), with JSON and CSV exporters so every bench
 * binary can dump machine-readable results next to its human tables.
 *
 * Paths are dotted strings; the registry keeps insertion order so the
 * exported files read top-down the way components registered them.
 * Counter and gauge accessors return references that stay valid for the
 * registry's lifetime, so hot paths look a metric up once and increment
 * through the reference.
 *
 * Thread safety: registration (counter()/gauge()/histogram() lookup or
 * creation) and the whole-value mutators (setCounter()/setGauge()/
 * addCounter()) are safe to call concurrently; exports take a consistent
 * snapshot under the same lock, so a late worker can never race the
 * at-exit dump.  Mutating *through a cached reference* is lock-free and
 * therefore only safe while a single thread owns that path -- parallel
 * harness code routes hot updates through a ThreadMetricsBuffer (one
 * buffer per task, flushed at task end) or a ShardedMetricsRegistry
 * instead; micro_components benchmarks both strategies.
 *
 * TRB_OBS_JSON=<path> / TRB_OBS_CSV=<path> make obs::finish() (called by
 * the bench mains) write the global registry out at process end.
 */

#ifndef TRB_OBS_METRICS_HH
#define TRB_OBS_METRICS_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"

namespace trb
{
namespace obs
{

/** Hierarchical registry of counters, gauges and histograms. */
class MetricsRegistry
{
  public:
    /** A named uint64 counter entry. */
    struct CounterEntry
    {
        std::string path;
        std::uint64_t value = 0;
    };

    /** A named double gauge entry (ratios, rates, seconds). */
    struct GaugeEntry
    {
        std::string path;
        double value = 0.0;
    };

    /** A named histogram entry. */
    struct HistogramEntry
    {
        std::string path;
        Histogram hist;
    };

    /**
     * A consistent copy of every metric, taken under the registry lock.
     * This is what the exporters render, so a concurrent writer can
     * never tear a dump.
     */
    struct Snapshot
    {
        std::vector<CounterEntry> counters;
        std::vector<GaugeEntry> gauges;
        std::vector<HistogramEntry> histograms;
    };

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Reference to the counter at @p path, created at 0 if absent.
     * Registration is thread-safe and the reference stays valid for the
     * registry's lifetime; increments through the reference are
     * unsynchronised (single-writer paths only).
     */
    std::uint64_t &counter(const std::string &path);

    /** Reference to the gauge at @p path, created at 0.0 if absent. */
    double &gauge(const std::string &path);

    /**
     * Reference to the histogram at @p path; created with the given
     * shape if absent (the shape of an existing histogram wins).
     */
    Histogram &histogram(const std::string &path,
                         std::uint64_t bucket_width = 1,
                         std::size_t num_buckets = 32);

    /** Set-style conveniences; fully locked, safe from any thread. */
    void setCounter(const std::string &path, std::uint64_t v);
    void setGauge(const std::string &path, double v);

    /** Locked add: safe for concurrent updates of the same path. */
    void addCounter(const std::string &path, std::uint64_t delta = 1);

    /** Value of a counter; 0 if absent (does not create). */
    std::uint64_t counterValue(const std::string &path) const;

    /** Value of a gauge; 0.0 if absent (does not create). */
    double gaugeValue(const std::string &path) const;

    /**
     * Direct views of the entries, in insertion order.  Not
     * synchronised against writers: only use once concurrent updates
     * have quiesced (tests, post-join reporting); use snapshot()
     * otherwise.
     */
    const std::deque<CounterEntry> &counters() const { return counters_; }
    const std::deque<GaugeEntry> &gauges() const { return gauges_; }
    const std::deque<HistogramEntry> &histograms() const
    {
        return histograms_;
    }

    bool empty() const;

    /** Drop every metric (tests; fresh runs in one process). */
    void clear();

    /** Copy every metric under the lock. */
    Snapshot snapshot() const;

    /**
     * Write the registry as one JSON object:
     * {"counters": {path: value, ...}, "gauges": {...},
     *  "histograms": {path: {bucket_width, total, mean, p50, p95, p99,
     *                        buckets: [...]}, ...}}
     * Renders a snapshot(), so it is safe against concurrent writers.
     */
    void writeJson(std::ostream &os) const;

    /** Write "kind,path,value" CSV rows (histograms flattened). */
    void writeCsv(std::ostream &os) const;

    std::string toJson() const;
    std::string toCsv() const;

    /** The process-wide registry the simulator components feed. */
    static MetricsRegistry &global();

  private:
    std::uint64_t &counterLocked(const std::string &path);
    double &gaugeLocked(const std::string &path);

    mutable std::mutex mutex_;
    std::deque<CounterEntry> counters_;
    std::deque<GaugeEntry> gauges_;
    std::deque<HistogramEntry> histograms_;
    std::unordered_map<std::string, std::size_t> counterIndex_;
    std::unordered_map<std::string, std::size_t> gaugeIndex_;
    std::unordered_map<std::string, std::size_t> histogramIndex_;
};

/**
 * Concurrency strategy 1: a registry split into independently locked
 * shards, routed by path hash.  Concurrent updates of *different* paths
 * mostly hit different shards, so contention drops roughly by the shard
 * count; updates of the same path serialise on one shard lock but stay
 * correct.  mergeInto() folds the shards back into a plain registry
 * (shard-major, insertion order within a shard) for export.
 */
class ShardedMetricsRegistry
{
  public:
    static constexpr std::size_t kShards = 16;

    /** Locked add on the owning shard. */
    void addCounter(const std::string &path, std::uint64_t delta = 1);

    /** Locked set on the owning shard. */
    void setGauge(const std::string &path, double v);

    /** Sum of a counter across shards (it lives in exactly one). */
    std::uint64_t counterValue(const std::string &path) const;
    double gaugeValue(const std::string &path) const;

    /** Fold every shard's entries into @p target (locked adds/sets). */
    void mergeInto(MetricsRegistry &target) const;

  private:
    MetricsRegistry &shard(const std::string &path);
    const MetricsRegistry &shard(const std::string &path) const;

    MetricsRegistry shards_[kShards];
};

/**
 * Concurrency strategy 2: a per-task (or per-thread) buffer of metric
 * updates, flushed into a shared registry in one batch.  The hot path
 * touches only thread-local memory; the shared lock is taken once per
 * flush instead of once per update.  Destruction flushes, so the
 * natural usage is one stack-allocated buffer per parallel task:
 *
 *     par::ThreadPool::global().parallelFor(n, [&](std::size_t i) {
 *         ThreadMetricsBuffer buf(obs::MetricsRegistry::global());
 *         buf.add("sweep.traces", 1);
 *         buf.set("sweep.trace" + std::to_string(i) + ".ipc", ipc);
 *     });   // flushed at task end
 */
class ThreadMetricsBuffer
{
  public:
    explicit ThreadMetricsBuffer(MetricsRegistry &target)
        : target_(target)
    {}

    ThreadMetricsBuffer(const ThreadMetricsBuffer &) = delete;
    ThreadMetricsBuffer &operator=(const ThreadMetricsBuffer &) = delete;

    ~ThreadMetricsBuffer() { flush(); }

    /** Buffer a counter delta (folded locally until flush). */
    void add(const std::string &path, std::uint64_t delta = 1);

    /** Buffer a gauge set (last local write wins at flush). */
    void set(const std::string &path, double v);

    /** Apply every buffered update to the target registry and reset. */
    void flush();

  private:
    MetricsRegistry &target_;
    std::vector<std::pair<std::string, std::uint64_t>> counters_;
    std::vector<std::pair<std::string, double>> gauges_;
    std::unordered_map<std::string, std::size_t> counterIndex_;
    std::unordered_map<std::string, std::size_t> gaugeIndex_;
};

/** Escape a string for embedding in a JSON document (adds quotes). */
std::string jsonQuote(const std::string &s);

/**
 * Export accumulated phase wall-times into the global registry, log the
 * phase report (at info level) and honour TRB_OBS_JSON / TRB_OBS_CSV /
 * TRB_OBS_SPANS (the merged Chrome trace).  Every bench main calls this
 * before exiting; calling it again is a no-op -- the exports happen
 * exactly once per process, so layered teardown paths (a bench's own
 * finish plus a library destructor, say) cannot double-export phases or
 * truncate an already-written dump.
 * @return true if at least one file was written by *this* call.
 */
bool finish();

/** Just the env-gated dump half of finish(). */
bool dumpIfRequested();

namespace detail
{
/** Re-arm finish() so a test can exercise it repeatedly. */
void resetFinishForTests();
} // namespace detail

} // namespace obs
} // namespace trb

#endif // TRB_OBS_METRICS_HH
