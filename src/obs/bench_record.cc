#include "obs/bench_record.hh"

#include <cstdio>
#include <fstream>
#include <ostream>

#ifdef __linux__
#include <unistd.h>
#endif

#include "common/env.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/profile.hh"
#include "par/thread_pool.hh"

#ifndef TRB_GIT_SHA
#define TRB_GIT_SHA "unknown"
#endif

namespace trb
{
namespace obs
{

const char *const kBenchSchema = "trb-bench-v1";

namespace
{

std::string
hostname()
{
#ifdef __linux__
    char buf[256] = {};
    if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0])
        return buf;
#endif
    return "unknown";
}

std::string
jsonDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
renderBenchRecord(std::ostream &os, const std::string &bench_name,
                  double wall_seconds, const MetricsRegistry &reg,
                  const PhaseProfile &phases)
{
    os << "{\n";
    os << "  \"schema\": " << jsonQuote(kBenchSchema) << ",\n";
    os << "  \"bench\": " << jsonQuote(bench_name) << ",\n";
    os << "  \"host\": " << jsonQuote(hostname()) << ",\n";
    os << "  \"git_sha\": " << jsonQuote(TRB_GIT_SHA) << ",\n";
    os << "  \"wall_seconds\": " << jsonDouble(wall_seconds) << ",\n";

    // Worker-pool shape, if a pool was ever started.
    if (const par::ThreadPool *pool = par::ThreadPool::globalIfStarted())
        os << "  \"jobs\": " << pool->jobs() << ",\n  \"steals\": "
           << pool->stealCount() << ",\n";

    // The trb::env fingerprint: every registered knob that was set for
    // this run, so a manifest is reproducible from its own contents.
    os << "  \"env\": {";
    const char *sep = "";
    for (const env::VarInfo &var : env::registry()) {
        const char *value = env::raw(var.name);
        if (!value)
            continue;
        os << sep << "\n    " << jsonQuote(var.name) << ": "
           << jsonQuote(value);
        sep = ",";
    }
    os << (*sep ? "\n  " : "") << "},\n";

    // Per-phase wall time and throughput: the per-metric provenance a
    // perf diff gates on.  "worker.N" lanes are included (they carry
    // per-worker instr/s) but excluded from the totals below.
    os << "  \"phases\": {";
    sep = "";
    std::uint64_t total_items = 0;
    double phase_seconds = 0.0;
    for (const PhaseProfile::Entry &e : phases.entries()) {
        os << sep << "\n    " << jsonQuote(e.name) << ": {\"seconds\": "
           << jsonDouble(e.seconds) << ", \"calls\": " << e.calls
           << ", \"items\": " << e.items << ", \"items_per_second\": "
           << jsonDouble(e.itemsPerSecond()) << "}";
        sep = ",";
        if (e.name.rfind("worker.", 0) != 0) {
            total_items += e.items;
            phase_seconds += e.seconds;
        }
    }
    os << (*sep ? "\n  " : "") << "},\n";

    os << "  \"totals\": {\"items\": " << total_items
       << ", \"phase_seconds\": " << jsonDouble(phase_seconds)
       << ", \"items_per_second\": "
       << jsonDouble(wall_seconds > 0.0
                         ? static_cast<double>(total_items) / wall_seconds
                         : 0.0)
       << "},\n";

    // Store effectiveness, derived from the registry counters.
    const std::uint64_t hits = reg.counterValue("store.hits");
    const std::uint64_t misses = reg.counterValue("store.misses");
    os << "  \"store\": {\"hits\": " << hits << ", \"misses\": " << misses
       << ", \"hit_rate\": "
       << jsonDouble(hits + misses
                         ? static_cast<double>(hits) /
                               static_cast<double>(hits + misses)
                         : 0.0)
       << "},\n";

    // The full registry: counters carry the sweep digests (bit-exact
    // result provenance), gauges the per-trace IPCs and phase exports.
    const MetricsRegistry::Snapshot snap = reg.snapshot();
    os << "  \"counters\": {";
    sep = "";
    for (const MetricsRegistry::CounterEntry &c : snap.counters) {
        os << sep << "\n    " << jsonQuote(c.path) << ": " << c.value;
        sep = ",";
    }
    os << (*sep ? "\n  " : "") << "},\n  \"gauges\": {";
    sep = "";
    for (const MetricsRegistry::GaugeEntry &g : snap.gauges) {
        os << sep << "\n    " << jsonQuote(g.path) << ": "
           << jsonDouble(g.value);
        sep = ",";
    }
    os << (*sep ? "\n  " : "") << "}\n}\n";
}

std::string
benchRecordPath(const std::string &bench_name)
{
    std::string dir = env::str("TRB_OBS_BENCH_DIR", ".");
    if (dir == "0" || dir == "off" || dir == "none")
        return "";
    if (!dir.empty() && dir.back() != '/')
        dir += '/';
    return dir + "BENCH_" + bench_name + ".json";
}

bool
writeBenchRecord(const std::string &bench_name, double wall_seconds)
{
    const std::string path = benchRecordPath(bench_name);
    if (path.empty())
        return false;
    std::ofstream out(path);
    if (!out) {
        trb_warn("obs: cannot open ", path, " for the bench record");
        return false;
    }
    renderBenchRecord(out, bench_name, wall_seconds,
                      MetricsRegistry::global(), PhaseProfile::global());
    trb_inform("obs: wrote bench record to ", path);
    return true;
}

} // namespace obs
} // namespace trb
