#include "obs/profile.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#ifdef __linux__
#include <unistd.h>
#endif

#include "common/logging.hh"
#include "common/stats.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "par/thread_pool.hh"

namespace trb
{
namespace obs
{

void
PhaseProfile::add(const std::string &phase, double seconds,
                  std::uint64_t items)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(phase);
    if (it == index_.end()) {
        it = index_.emplace(phase, entries_.size()).first;
        entries_.push_back({phase, 0.0, 0, 0});
    }
    Entry &e = entries_[it->second];
    e.seconds += seconds;
    ++e.calls;
    e.items += items;
}

double
PhaseProfile::seconds(const std::string &phase) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(phase);
    return it == index_.end() ? 0.0 : entries_[it->second].seconds;
}

std::uint64_t
PhaseProfile::totalItems() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const Entry &e : entries_)
        if (e.name.rfind("worker.", 0) != 0)
            total += e.items;
    return total;
}

bool
PhaseProfile::empty() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.empty();
}

void
PhaseProfile::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    index_.clear();
}

std::string
PhaseProfile::report(const std::string &prefix) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    double total = 0.0;
    for (const Entry &e : entries_)
        total += e.seconds;

    std::ostringstream os;
    for (const Entry &e : entries_) {
        os << prefix << e.name << " " << fmtDouble(e.seconds, 3) << "s ("
           << fmtDouble(total > 0.0 ? 100.0 * e.seconds / total : 0.0, 1)
           << "%) " << e.calls << " calls";
        if (e.items)
            os << " " << fmtDouble(e.itemsPerSecond() / 1e6, 2)
               << " Mitems/s";
        os << "\n";
    }
    return os.str();
}

void
PhaseProfile::exportTo(MetricsRegistry &reg, const std::string &prefix) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry &e : entries_) {
        const std::string base = prefix + "." + e.name;
        reg.setGauge(base + ".seconds", e.seconds);
        reg.setCounter(base + ".calls", e.calls);
        if (e.items) {
            reg.setCounter(base + ".items", e.items);
            reg.setGauge(base + ".items_per_second", e.itemsPerSecond());
        }
    }
}

PhaseProfile &
PhaseProfile::global()
{
    static PhaseProfile profile;
    return profile;
}

ScopeTimer::~ScopeTimer()
{
    const double secs = elapsed();
    profile_.add(phase_, secs, items_);
    if (&profile_ == &PhaseProfile::global() && SpanTimeline::enabled()) {
        SpanEvent ev;
        ev.name = std::move(phase_);
        ev.category = "phase";
        ev.durUs = secs * 1e6;
        ev.startUs = SpanTimeline::nowUs() - ev.durUs;
        ev.worker = static_cast<std::uint32_t>(par::workerId());
        ev.items = items_;
        SpanTimeline::global().record(std::move(ev));
    }
}

SuiteProgress::Style
SuiteProgress::styleFromEnvironment()
{
    if (!logEnabled(LogLevel::Info))
        return Style::Silent;
#ifdef __linux__
    if (isatty(fileno(stderr)))
        return Style::Live;
#endif
    return Style::Sparse;
}

SuiteProgress::SuiteProgress(std::string what, std::size_t total)
    : SuiteProgress(std::move(what), total, styleFromEnvironment())
{
}

SuiteProgress::SuiteProgress(std::string what, std::size_t total,
                             Style style)
    : what_(std::move(what)), total_(total), style_(style),
      stride_(std::max<std::size_t>(1, total / 10)),
      start_(std::chrono::steady_clock::now())
{
}

void
SuiteProgress::step(std::size_t index, std::uint64_t items)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    items_ += items;
    if (style_ == Style::Live) {
        std::fprintf(stderr, "\r%s: %zu/%zu (%3.0f%%)", what_.c_str(),
                     done_, total_,
                     total_ ? 100.0 * double(done_) / double(total_) : 100.0);
        std::fflush(stderr);
    } else if (style_ == Style::Sparse &&
               (done_ % stride_ == 0 || done_ == total_)) {
        trb_inform(what_, ": ", done_, "/", total_, " (",
                   fmtDouble(total_ ? 100.0 * double(done_) /
                                          double(total_)
                                    : 100.0, 0),
                   "%)");
    }
    if (logEnabled(LogLevel::Debug)) {
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
        trb_debug(what_, ": ", index + 1, "/", total_, " done in ",
                  fmtDouble(secs, 2), "s");
    }
}

SuiteProgress::~SuiteProgress()
{
    if (style_ == Style::Live && done_ > 0) {
        // Erase the carriage-return progress line before the summary.
        std::fputs("\r\033[2K", stderr);
        std::fflush(stderr);
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    std::ostringstream os;
    os << what_ << ": " << done_ << "/" << total_ << " traces in "
       << fmtDouble(secs, 2) << "s";
    if (items_ && secs > 0.0)
        os << " (" << fmtDouble(double(items_) / secs / 1e6, 2)
           << " Minstr/s)";
    trb_inform(os.str());
}

} // namespace obs
} // namespace trb
