#include "obs/profile.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/stats.hh"
#include "obs/metrics.hh"

namespace trb
{
namespace obs
{

void
PhaseProfile::add(const std::string &phase, double seconds,
                  std::uint64_t items)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(phase);
    if (it == index_.end()) {
        it = index_.emplace(phase, entries_.size()).first;
        entries_.push_back({phase, 0.0, 0, 0});
    }
    Entry &e = entries_[it->second];
    e.seconds += seconds;
    ++e.calls;
    e.items += items;
}

double
PhaseProfile::seconds(const std::string &phase) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(phase);
    return it == index_.end() ? 0.0 : entries_[it->second].seconds;
}

bool
PhaseProfile::empty() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.empty();
}

void
PhaseProfile::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    index_.clear();
}

std::string
PhaseProfile::report(const std::string &prefix) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    double total = 0.0;
    for (const Entry &e : entries_)
        total += e.seconds;

    std::ostringstream os;
    for (const Entry &e : entries_) {
        os << prefix << e.name << " " << fmtDouble(e.seconds, 3) << "s ("
           << fmtDouble(total > 0.0 ? 100.0 * e.seconds / total : 0.0, 1)
           << "%) " << e.calls << " calls";
        if (e.items)
            os << " " << fmtDouble(e.itemsPerSecond() / 1e6, 2)
               << " Mitems/s";
        os << "\n";
    }
    return os.str();
}

void
PhaseProfile::exportTo(MetricsRegistry &reg, const std::string &prefix) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry &e : entries_) {
        const std::string base = prefix + "." + e.name;
        reg.setGauge(base + ".seconds", e.seconds);
        reg.setCounter(base + ".calls", e.calls);
        if (e.items) {
            reg.setCounter(base + ".items", e.items);
            reg.setGauge(base + ".items_per_second", e.itemsPerSecond());
        }
    }
}

PhaseProfile &
PhaseProfile::global()
{
    static PhaseProfile profile;
    return profile;
}

SuiteProgress::SuiteProgress(std::string what, std::size_t total)
    : what_(std::move(what)), total_(total),
      start_(std::chrono::steady_clock::now())
{
}

void
SuiteProgress::step(std::size_t index, std::uint64_t items)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    items_ += items;
    if (logEnabled(LogLevel::Debug)) {
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
        trb_debug(what_, ": ", index + 1, "/", total_, " done in ",
                  fmtDouble(secs, 2), "s");
    }
}

SuiteProgress::~SuiteProgress()
{
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    std::ostringstream os;
    os << what_ << ": " << done_ << "/" << total_ << " traces in "
       << fmtDouble(secs, 2) << "s";
    if (items_ && secs > 0.0)
        os << " (" << fmtDouble(double(items_) / secs / 1e6, 2)
           << " Minstr/s)";
    trb_inform(os.str());
}

} // namespace obs
} // namespace trb
