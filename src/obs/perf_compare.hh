/**
 * @file
 * Perf-regression comparison over BENCH run manifests: diff a baseline
 * and a candidate trb-bench-v1 record metric-by-metric, apply per-metric
 * noise thresholds, and produce a verdict table.  This is the library
 * half of tools/trace_perf; it works on parsed JsonFlat documents so
 * tests can drive it without touching the filesystem.
 *
 * Gating policy: throughput metrics -- every numeric path ending in
 * "items_per_second" -- are *gated*: a drop beyond the threshold is a
 * regression.  Wall-clock paths ("wall_seconds", ".../seconds") are
 * reported for context but never gate, since process wall time folds in
 * startup noise the throughput numbers already exclude.  A metric
 * present on only one side is reported but never gates either (phases
 * come and go across commits; a perf gate should not block a rename).
 */

#ifndef TRB_OBS_PERF_COMPARE_HH
#define TRB_OBS_PERF_COMPARE_HH

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace trb
{

struct JsonFlat;

namespace obs
{

/** Comparison knobs (CLI flags map straight onto these). */
struct PerfCompareOptions
{
    /** Noise threshold in percent; a gated metric regresses when it
     *  drops by more than this. */
    double thresholdPercent = 5.0;

    /** Per-metric overrides of thresholdPercent, keyed by flat path. */
    std::map<std::string, double> perMetricThresholdPercent;

    /** Effective threshold for @p metric. */
    double thresholdFor(const std::string &metric) const;
};

/** One compared metric. */
struct PerfDelta
{
    std::string metric;          //!< flat path, e.g. "totals/items_per_second"
    double base = 0.0;
    double candidate = 0.0;
    double deltaPercent = 0.0;   //!< (candidate - base) / base * 100
    double thresholdPercent = 0.0;
    bool gated = false;          //!< counts toward the verdict
    bool regression = false;     //!< gated and dropped past the threshold
};

/** The full verdict. */
struct PerfCompareResult
{
    std::vector<PerfDelta> deltas;        //!< gated first, then context rows
    std::vector<std::string> missing;     //!< paths on one side only
    std::string error;                    //!< non-empty: records not comparable
    bool regression = false;              //!< any gated metric regressed

    bool ok() const { return error.empty() && !regression; }
};

/**
 * Compare two parsed trb-bench-v1 records.  Sets @c error (and nothing
 * else) when the schemas disagree or the baseline has no gated metric
 * at all -- an empty gate would vacuously pass forever.
 */
PerfCompareResult comparePerfRecords(const JsonFlat &base,
                                     const JsonFlat &candidate,
                                     const PerfCompareOptions &opts);

/** Render the verdict table (aligned columns, one metric per row). */
void renderPerfTable(std::ostream &os, const PerfCompareResult &result);

} // namespace obs
} // namespace trb

#endif // TRB_OBS_PERF_COMPARE_HH
