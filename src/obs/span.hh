/**
 * @file
 * Unified span timeline: hierarchical wall-clock spans (sweep -> trace
 * -> convert/simulate stages) recorded from any thread, merged with the
 * per-thread PipelineTracer rings into a single Chrome trace_event file
 * with one lane per pool worker.
 *
 * Spans answer "where did the wall-clock go, on which worker, for which
 * trace" in one trace-viewer load; the pipeline rings add the
 * per-instruction cycle detail underneath.  The two clock domains are
 * kept apart by Chrome pid: pid 0 carries the wall-clock spans
 * (microseconds since process start, tid = worker id), pid 1+w carries
 * worker w's instruction ring on its cycle axis.
 *
 * Enabled by TRB_OBS_SPANS=<path>; obs::finish() writes the merged file
 * there.  When the variable is unset every SpanScope constructor reduces
 * to one cached boolean test and records nothing -- the timeline is off
 * the hot path exactly the way a detached PipelineTracer is.
 *
 * Thread safety: record() appends under a mutex (spans are coarse --
 * one per trace or stage, never per instruction); the depth used for
 * hierarchy rendering is tracked per thread, so nesting is meaningful
 * within a worker lane and concurrent lanes never interleave depths.
 */

#ifndef TRB_OBS_SPAN_HH
#define TRB_OBS_SPAN_HH

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace trb
{
namespace obs
{

/** One completed wall-clock span. */
struct SpanEvent
{
    std::string name;        //!< "trace.srv_0", "set.All", "sweep"
    std::string category;    //!< "bench", "sweep", "trace", "phase"
    double startUs = 0.0;    //!< microseconds since process start
    double durUs = 0.0;
    std::uint32_t worker = 0;   //!< pool lane (par::workerId())
    std::uint32_t depth = 0;    //!< nesting depth on its thread
    std::uint64_t items = 0;    //!< e.g. instructions covered
};

/** Process-wide collector of completed spans. */
class SpanTimeline
{
  public:
    SpanTimeline() = default;
    SpanTimeline(const SpanTimeline &) = delete;
    SpanTimeline &operator=(const SpanTimeline &) = delete;

    /**
     * True when span collection is on (TRB_OBS_SPANS set).  Cached
     * after the first call; the test override below refreshes it.
     */
    static bool enabled();

    /** Force the enabled flag (tests); pass -1 to re-read the env. */
    static void setEnabledForTests(int on);

    /** Microseconds since the process-wide span epoch. */
    static double nowUs();

    /** Append one completed span (locked, any thread). */
    void record(SpanEvent ev);

    /** Number of spans held. */
    std::size_t size() const;

    /** Copy of every span, in completion order. */
    std::vector<SpanEvent> snapshot() const;

    void clear();

    /**
     * Write the merged Chrome trace: the held spans as "X" slices on
     * pid 0 (tid = worker lane), plus -- when @p merge_pipeline -- each
     * live thread's PipelineTracer ring as instruction slices on
     * pid 1+worker, and process_name metadata labelling every pid.
     */
    void writeChromeTrace(std::ostream &os,
                          bool merge_pipeline = true) const;

    /** The process-wide timeline obs::finish() dumps. */
    static SpanTimeline &global();

  private:
    mutable std::mutex mutex_;
    std::vector<SpanEvent> spans_;
};

/**
 * RAII span: records its lifetime into the global timeline (current
 * worker lane, per-thread nesting depth).  A disabled timeline makes
 * construction and destruction test one cached boolean each.
 */
class SpanScope
{
  public:
    SpanScope(std::string name, std::string category,
              std::uint64_t items = 0);
    ~SpanScope();

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    /** Attach an item count (e.g. instructions) after the fact. */
    void setItems(std::uint64_t items) { items_ = items; }

  private:
    bool active_;
    std::string name_;
    std::string category_;
    std::uint64_t items_;
    double startUs_ = 0.0;
};

} // namespace obs
} // namespace trb

#endif // TRB_OBS_SPAN_HH
