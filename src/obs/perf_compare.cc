#include "obs/perf_compare.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <set>

#include "common/json.hh"

namespace trb
{
namespace obs
{

namespace
{

/** Throughput metrics gate; wall-time rows are context only. */
bool
isGatedMetric(const std::string &path)
{
    return path.ends_with("items_per_second");
}

bool
isContextMetric(const std::string &path)
{
    return path == "wall_seconds" || path.ends_with("/seconds") ||
           path.ends_with("phase_seconds");
}

} // namespace

double
PerfCompareOptions::thresholdFor(const std::string &metric) const
{
    auto it = perMetricThresholdPercent.find(metric);
    return it == perMetricThresholdPercent.end() ? thresholdPercent
                                                 : it->second;
}

PerfCompareResult
comparePerfRecords(const JsonFlat &base, const JsonFlat &candidate,
                   const PerfCompareOptions &opts)
{
    PerfCompareResult result;

    const std::string base_schema = base.str("schema");
    const std::string cand_schema = candidate.str("schema");
    if (base_schema.empty() || cand_schema.empty()) {
        result.error = "not a bench record: missing \"schema\" field";
        return result;
    }
    if (base_schema != cand_schema) {
        result.error = "schema mismatch: baseline is " + base_schema +
                       ", candidate is " + cand_schema;
        return result;
    }

    std::set<std::string> paths;
    for (const auto &[path, value] : base.numbers)
        paths.insert(path);
    for (const auto &[path, value] : candidate.numbers)
        paths.insert(path);

    std::vector<PerfDelta> context;
    std::size_t gated_compared = 0;
    for (const std::string &path : paths) {
        const bool gated = isGatedMetric(path);
        if (!gated && !isContextMetric(path))
            continue;
        if (!base.hasNumber(path) || !candidate.hasNumber(path)) {
            result.missing.push_back(path);
            continue;
        }

        PerfDelta d;
        d.metric = path;
        d.base = base.number(path);
        d.candidate = candidate.number(path);
        d.deltaPercent = d.base != 0.0
                             ? (d.candidate - d.base) / d.base * 100.0
                             : 0.0;
        d.thresholdPercent = opts.thresholdFor(path);
        d.gated = gated;
        // Throughput: lower is worse.  A zero baseline can't regress
        // (nothing ran through that phase on the baseline either).
        d.regression = gated && d.base > 0.0 &&
                       d.deltaPercent < -d.thresholdPercent;
        if (gated) {
            ++gated_compared;
            result.regression |= d.regression;
            result.deltas.push_back(std::move(d));
        } else {
            context.push_back(std::move(d));
        }
    }
    result.deltas.insert(result.deltas.end(),
                         std::make_move_iterator(context.begin()),
                         std::make_move_iterator(context.end()));

    if (gated_compared == 0)
        result.error = "no throughput (items_per_second) metric shared by "
                       "both records; the gate would be vacuous";
    return result;
}

void
renderPerfTable(std::ostream &os, const PerfCompareResult &result)
{
    if (!result.error.empty()) {
        os << "error: " << result.error << "\n";
        return;
    }

    std::size_t width = 6;
    for (const PerfDelta &d : result.deltas)
        width = std::max(width, d.metric.size());

    char line[256];
    std::snprintf(line, sizeof(line), "%-*s %14s %14s %9s %7s  %s\n",
                  static_cast<int>(width), "metric", "baseline",
                  "candidate", "delta", "thresh", "verdict");
    os << line;
    for (const PerfDelta &d : result.deltas) {
        const char *verdict = !d.gated        ? "info"
                              : d.regression  ? "REGRESSION"
                                              : "ok";
        std::snprintf(line, sizeof(line),
                      "%-*s %14.6g %14.6g %+8.2f%% %6.2f%%  %s\n",
                      static_cast<int>(width), d.metric.c_str(), d.base,
                      d.candidate, d.deltaPercent, d.thresholdPercent,
                      verdict);
        os << line;
    }
    for (const std::string &path : result.missing)
        os << "  (skipped " << path << ": present on one side only)\n";
    os << (result.regression ? "verdict: REGRESSION\n" : "verdict: ok\n");
}

} // namespace obs
} // namespace trb
