/**
 * @file
 * Time-series sampler: a background heartbeat thread that periodically
 * snapshots the global MetricsRegistry plus process RSS, the worker
 * pool's queue depths and steal counts, and a rolling items/second rate
 * into JSONL -- one self-contained JSON object per line, the streaming
 * metrics surface a serving daemon can forward over a socket while a
 * run is still in flight.
 *
 * Off by default: TRB_OBS_SAMPLE_MS=<period> turns it on (the bench
 * mains call Sampler::startFromEnv()), TRB_OBS_SAMPLE_PATH picks the
 * output file (default obs_samples.jsonl).  The sampler only ever
 * *reads* shared state -- registry snapshots under the registry lock,
 * relaxed pool counters -- so enabling it cannot perturb simulation
 * results; it can only interleave extra reads.
 *
 * stop() (and destruction) takes a final sample before joining, so an
 * enabled run always emits at least one line however short it was.
 */

#ifndef TRB_OBS_SAMPLER_HH
#define TRB_OBS_SAMPLER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace trb
{
namespace obs
{

/** Background JSONL metrics sampler. */
class Sampler
{
  public:
    struct Options
    {
        std::uint64_t periodMs = 0;    //!< 0 = disabled
        std::string path;              //!< JSONL output file
    };

    /** TRB_OBS_SAMPLE_MS / TRB_OBS_SAMPLE_PATH. */
    static Options optionsFromEnv();

    /**
     * Start a sampler if TRB_OBS_SAMPLE_MS is a positive period;
     * nullptr (and no thread, no file) otherwise.
     */
    static std::unique_ptr<Sampler> startFromEnv();

    /** Open @p opts.path and start the heartbeat thread. */
    explicit Sampler(const Options &opts);

    /** stop()s if still running. */
    ~Sampler();

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /**
     * Take a final sample, flush, and join the heartbeat.  Idempotent;
     * called by the destructor if the owner forgets.
     */
    void stop();

    /** Samples written so far (including the final one after stop()). */
    std::uint64_t samplesTaken() const { return samples_; }

    /**
     * Append one sample line to @p os: {"schema": "trb-sample-v1",
     * "t": seconds-since-start, "rss_kb": ..., "steals": ...,
     * "queue_depth": [...], "items_per_sec": rolling rate,
     * "counters": {...}, "gauges": {...}}.  Public so tests (and a
     * future serving daemon) can drive sampling without the thread.
     */
    void sampleOnce(std::ostream &os);

    /** Resident set size in KiB; 0 where /proc is unavailable. */
    static std::uint64_t processRssKb();

  private:
    void heartbeat();

    std::ofstream file_;
    std::uint64_t periodMs_;
    std::uint64_t samples_ = 0;
    std::chrono::steady_clock::time_point start_;

    // Rolling items/second state (previous tick's totals).
    double lastSampleSeconds_ = 0.0;
    std::uint64_t lastItems_ = 0;

    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
    bool stopped_ = false;
    std::thread thread_;
};

} // namespace obs
} // namespace trb

#endif // TRB_OBS_SAMPLER_HH
