#include "obs/pipeline_trace.hh"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/env.hh"
#include "par/thread_pool.hh"

namespace trb
{
namespace obs
{

const char *
squashCauseName(SquashCause c)
{
    switch (c) {
      case SquashCause::None: return "none";
      case SquashCause::DirectionMispredict: return "direction";
      case SquashCause::TargetMispredict: return "target";
    }
    return "?";
}

PipelineTracer::PipelineTracer(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1))
{
}

std::size_t
PipelineTracer::capacityFromEnv(std::size_t def)
{
    return std::max<std::uint64_t>(env::u64("TRB_TRACE_BUF", def), 1);
}

namespace
{

/**
 * Registry of live per-thread rings, so the span timeline can render
 * every worker's lane.  Entries register on a thread's first
 * thisThread() call (recording the pool worker id active at that
 * moment) and unregister when the thread exits.
 */
struct TracerRegistry
{
    std::mutex mutex;
    std::vector<std::pair<std::size_t, PipelineTracer *>> tracers;

    static TracerRegistry &
    instance()
    {
        // Intentionally leaked: worker threads unregister from their
        // thread_local destructors while the process-wide ThreadPool
        // joins them during static destruction, which can run after
        // a function-local static registry would have been destroyed.
        // The pointer stays reachable, so leak checkers are quiet.
        static TracerRegistry *reg = new TracerRegistry;
        return *reg;
    }
};

/** Thread-local holder tying registration to thread lifetime. */
struct RegisteredTracer
{
    PipelineTracer tracer;

    RegisteredTracer()
    {
        TracerRegistry &reg = TracerRegistry::instance();
        std::lock_guard<std::mutex> lock(reg.mutex);
        reg.tracers.emplace_back(par::workerId(), &tracer);
    }

    ~RegisteredTracer()
    {
        TracerRegistry &reg = TracerRegistry::instance();
        std::lock_guard<std::mutex> lock(reg.mutex);
        for (auto it = reg.tracers.begin(); it != reg.tracers.end(); ++it) {
            if (it->second == &tracer) {
                reg.tracers.erase(it);
                break;
            }
        }
    }
};

} // namespace

PipelineTracer &
PipelineTracer::thisThread()
{
    thread_local RegisteredTracer holder;
    return holder.tracer;
}

std::vector<std::pair<std::size_t, std::vector<InstrEvent>>>
PipelineTracer::collectAllThreads()
{
    TracerRegistry &reg = TracerRegistry::instance();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<std::pair<std::size_t, std::vector<InstrEvent>>> out;
    out.reserve(reg.tracers.size());
    for (const auto &[worker, tracer] : reg.tracers)
        out.emplace_back(worker, tracer->events());
    return out;
}

void
PipelineTracer::clear()
{
    recorded_ = 0;
}

std::vector<InstrEvent>
PipelineTracer::events() const
{
    std::vector<InstrEvent> out;
    const std::size_t n = size();
    out.reserve(n);
    const std::uint64_t first = recorded_ - n;
    for (std::uint64_t i = first; i < recorded_; ++i)
        out.push_back(ring_[i % ring_.size()]);
    return out;
}

namespace
{

/** One Chrome "complete" slice; durations are padded to 1 cycle so
 *  zero-length stages stay visible in the viewer. */
void
writeSlice(std::ostream &os, const char *&sep, const char *name,
           const InstrEvent &ev, Cycle begin, Cycle end)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\": \"%s\", \"ph\": \"X\", \"ts\": %llu, "
                  "\"dur\": %llu, \"pid\": 0, \"tid\": %llu, "
                  "\"args\": {\"seq\": %llu, \"ip\": \"0x%llx\"}}",
                  sep, name,
                  static_cast<unsigned long long>(begin),
                  static_cast<unsigned long long>(
                      end > begin ? end - begin : 1),
                  static_cast<unsigned long long>(ev.seq % 64),
                  static_cast<unsigned long long>(ev.seq),
                  static_cast<unsigned long long>(ev.ip));
    os << buf;
    sep = ",";
}

} // namespace

void
PipelineTracer::writeChromeTrace(std::ostream &os) const
{
    os << "{\"traceEvents\": [";
    const char *sep = "";
    for (const InstrEvent &ev : events()) {
        writeSlice(os, sep, "frontend", ev, ev.fetch, ev.dispatch);
        writeSlice(os, sep, "wait", ev, ev.dispatch, ev.issue);
        writeSlice(os, sep, "execute", ev, ev.issue, ev.complete);
        writeSlice(os, sep, "commit", ev, ev.complete, ev.retire);
        if (ev.squash != SquashCause::None) {
            char buf[192];
            std::snprintf(buf, sizeof(buf),
                          "%s\n  {\"name\": \"squash:%s\", \"ph\": \"i\", "
                          "\"ts\": %llu, \"pid\": 0, \"tid\": %llu, "
                          "\"s\": \"t\"}",
                          sep, squashCauseName(ev.squash),
                          static_cast<unsigned long long>(ev.complete),
                          static_cast<unsigned long long>(ev.seq % 64));
            os << buf;
        }
    }
    os << "\n]}\n";
}

namespace
{

/** Lane width: stamps past this many cycles clamp to the last column. */
constexpr std::size_t kLaneWidth = 48;

const char *
kindTag(const InstrEvent &ev)
{
    if (ev.branch != BranchType::NotBranch)
        return "br ";
    if (ev.isLoad)
        return "ld ";
    if (ev.isStore)
        return "st ";
    return "   ";
}

} // namespace

std::string
renderLaneView(const std::vector<InstrEvent> &events, Addr lo, Addr hi,
               std::size_t max_instrs)
{
    std::ostringstream os;
    os << "      seq          ip  kind  lane (f=fetch d=dispatch i=issue "
          "c=complete r=retire, cycles from fetch)\n";

    std::size_t shown = 0;
    for (const InstrEvent &ev : events) {
        if (ev.ip < lo || ev.ip > hi)
            continue;
        if (max_instrs && shown >= max_instrs) {
            os << "... (" << max_instrs << "-instruction cap reached)\n";
            break;
        }
        ++shown;

        std::string lane(kLaneWidth, '.');
        auto put = [&](Cycle stamp, char letter) {
            std::size_t col = static_cast<std::size_t>(
                stamp >= ev.fetch ? stamp - ev.fetch : 0);
            if (col >= kLaneWidth) {
                col = kLaneWidth - 1;
                lane[col - 1] = '>';
            }
            lane[col] = letter;
        };
        put(ev.fetch, 'f');
        put(ev.dispatch, 'd');
        put(ev.issue, 'i');
        put(ev.complete, 'c');
        put(ev.retire, 'r');

        char head[64];
        std::snprintf(head, sizeof(head), "%9llu  0x%08llx  %s  [",
                      static_cast<unsigned long long>(ev.seq),
                      static_cast<unsigned long long>(ev.ip),
                      kindTag(ev));
        os << head << lane << "]";
        if (ev.branch != BranchType::NotBranch)
            os << " " << branchTypeName(ev.branch);
        if (ev.squash != SquashCause::None)
            os << " squash=" << squashCauseName(ev.squash);
        os << "\n";
    }
    if (shown == 0)
        os << "(no traced instructions in the requested PC range)\n";
    return os.str();
}

} // namespace obs
} // namespace trb
