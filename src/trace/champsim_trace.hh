/**
 * @file
 * The ChampSim trace format: the fixed 64-byte input_instr record the
 * paper's Section 3 describes (ip 8 B, is_branch 1 B, taken 1 B, 2x1 B
 * destination registers, 4x1 B source registers, 2x8 B destination memory
 * addresses, 4x8 B source memory addresses), plus file I/O and in-memory
 * traces.
 *
 * There is deliberately no operation-type field: ChampSim calls an
 * instruction a load/store if it has memory sources/destinations and
 * deduces the branch type from the x86 special registers -- see
 * branch_deduce.hh.
 */

#ifndef TRB_TRACE_CHAMPSIM_TRACE_HH
#define TRB_TRACE_CHAMPSIM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "resil/status.hh"

namespace trb
{

/**
 * One 64-byte ChampSim trace record.  Register slot value 0 means "empty";
 * memory slot value 0 means "no access".
 */
struct ChampSimRecord
{
    std::uint64_t ip = 0;
    std::uint8_t isBranch = 0;
    std::uint8_t branchTaken = 0;
    std::uint8_t destRegs[champsim::kMaxDst] = {};
    std::uint8_t srcRegs[champsim::kMaxSrc] = {};
    std::uint64_t destMem[champsim::kMaxMemDst] = {};
    std::uint64_t srcMem[champsim::kMaxMemSrc] = {};

    /** Append a destination register; returns false when slots are full. */
    bool
    addDstReg(RegId r)
    {
        for (auto &slot : destRegs) {
            if (slot == r)
                return true;
            if (slot == 0) {
                slot = r;
                return true;
            }
        }
        return false;
    }

    /** Append a source register; returns false when slots are full. */
    bool
    addSrcReg(RegId r)
    {
        for (auto &slot : srcRegs) {
            if (slot == r)
                return true;
            if (slot == 0) {
                slot = r;
                return true;
            }
        }
        return false;
    }

    /** Append a memory source address; returns false when slots are full. */
    bool
    addSrcMem(Addr a)
    {
        for (auto &slot : srcMem) {
            if (slot == 0) {
                slot = a;
                return true;
            }
        }
        return false;
    }

    /** Append a memory destination address. */
    bool
    addDstMem(Addr a)
    {
        for (auto &slot : destMem) {
            if (slot == 0) {
                slot = a;
                return true;
            }
        }
        return false;
    }

    bool
    readsReg(RegId r) const
    {
        for (auto s : srcRegs)
            if (s == r)
                return true;
        return false;
    }

    bool
    writesReg(RegId r) const
    {
        for (auto d : destRegs)
            if (d == r)
                return true;
        return false;
    }

    /** Number of populated memory source slots. */
    unsigned
    numSrcMem() const
    {
        unsigned n = 0;
        for (auto a : srcMem)
            if (a != 0)
                ++n;
        return n;
    }

    /** Number of populated memory destination slots. */
    unsigned
    numDstMem() const
    {
        unsigned n = 0;
        for (auto a : destMem)
            if (a != 0)
                ++n;
        return n;
    }

    /** ChampSim's definition of a load: has a memory source. */
    bool isLoad() const { return numSrcMem() > 0; }
    /** ChampSim's definition of a store: has a memory destination. */
    bool isStore() const { return numDstMem() > 0; }

    bool operator==(const ChampSimRecord &other) const = default;
};

static_assert(sizeof(ChampSimRecord) == 64,
              "ChampSim input_instr must be exactly 64 bytes");

/** A whole ChampSim trace held in memory. */
using ChampSimTrace = std::vector<ChampSimRecord>;

/**
 * A non-owning view of a ChampSim trace: the contiguous record array
 * the core model walks.  Converts implicitly from ChampSimTrace, and is
 * how the artifact store serves converted traces zero-copy out of an
 * mmap'd file -- the viewed storage must outlive the view.
 */
class ChampSimView
{
  public:
    ChampSimView() = default;
    ChampSimView(const ChampSimRecord *data, std::size_t count)
        : data_(data), count_(count)
    {
    }
    ChampSimView(const ChampSimTrace &trace)   // NOLINT: implicit by design
        : data_(trace.data()), count_(trace.size())
    {
    }

    const ChampSimRecord &operator[](std::size_t i) const
    {
        return data_[i];
    }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    const ChampSimRecord *data() const { return data_; }
    const ChampSimRecord *begin() const { return data_; }
    const ChampSimRecord *end() const { return data_ + count_; }

  private:
    const ChampSimRecord *data_ = nullptr;
    std::size_t count_ = 0;
};

/**
 * Write a trace to @p path (".gz" suffix selects compression); returns
 * a Status instead of dying, with gzwrite AND gzclose both checked --
 * a flush failure at close is a real data loss, not a detail.
 */
Status tryWriteChampSimTrace(const std::string &path,
                             const ChampSimTrace &trace);

/**
 * Read a ChampSim trace (raw or gz) with rich diagnostics: a partial
 * final record is TruncatedInput carrying the byte offset and record
 * index, stream-level zlib failures map to CorruptRecord/IoError.
 */
Expected<ChampSimTrace> tryReadChampSimTrace(const std::string &path);

/** Write a trace to @p path; fatal on any error (legacy wrapper). */
void writeChampSimTrace(const std::string &path, const ChampSimTrace &trace);

/** Read a ChampSim trace (raw or gz); fatal on any error (legacy). */
ChampSimTrace readChampSimTrace(const std::string &path);

} // namespace trb

#endif // TRB_TRACE_CHAMPSIM_TRACE_HH
