#include "trace/branch_deduce.hh"

namespace trb
{

RegUsage
regUsage(const ChampSimRecord &rec)
{
    RegUsage u;
    for (RegId r : rec.srcRegs) {
        if (r == 0)
            continue;
        if (r == champsim::kStackPointer)
            u.readsSp = true;
        else if (r == champsim::kInstructionPointer)
            u.readsIp = true;
        else if (r == champsim::kFlags)
            u.readsFlags = true;
        else
            u.readsOther = true;
    }
    for (RegId r : rec.destRegs) {
        if (r == 0)
            continue;
        if (r == champsim::kStackPointer)
            u.writesSp = true;
        else if (r == champsim::kInstructionPointer)
            u.writesIp = true;
    }
    return u;
}

BranchType
deduceBranchType(const RegUsage &u, DeductionRules rules)
{
    if (!u.writesIp)
        return BranchType::NotBranch;

    const bool patched = rules == DeductionRules::Patched;

    // Rule evaluation order mirrors ChampSim: the indirect-jump check runs
    // before the conditional check, which is why the paper has to add the
    // !readsIp condition once conditionals may read non-flag registers.
    if (u.readsIp && !u.readsSp && !u.writesSp && !u.readsFlags &&
        !u.readsOther)
        return BranchType::DirectJump;

    if (!u.readsSp && !u.writesSp && !u.readsFlags && u.readsOther &&
        (!patched || !u.readsIp))
        return BranchType::IndirectJump;

    if (u.readsIp && !u.readsSp && !u.writesSp &&
        (patched ? (u.readsFlags || u.readsOther)
                 : (u.readsFlags && !u.readsOther)))
        return BranchType::Conditional;

    if (u.readsIp && u.readsSp && u.writesSp && !u.readsOther)
        return BranchType::DirectCall;

    if (!u.readsIp && u.readsSp && u.writesSp && u.readsOther)
        return BranchType::IndirectCall;

    if (!u.readsIp && u.readsSp && u.writesSp && !u.readsOther)
        return BranchType::Return;

    // Unrecognised register patterns behave like an always-taken direct
    // jump, the least surprising fallback for a trace-driven front-end.
    return BranchType::DirectJump;
}

BranchType
deduceBranchType(const ChampSimRecord &rec, DeductionRules rules)
{
    if (!rec.isBranch)
        return BranchType::NotBranch;
    return deduceBranchType(regUsage(rec), rules);
}

} // namespace trb
