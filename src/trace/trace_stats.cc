#include "trace/trace_stats.hh"

#include <sstream>
#include <unordered_set>

namespace trb
{

CvpTraceStats
characterizeCvp(const CvpTrace &trace)
{
    CvpTraceStats s;
    std::unordered_set<Addr> pcs;
    for (const CvpRecord &rec : trace) {
        ++s.instructions;
        ++s.perClass[static_cast<std::size_t>(rec.cls)];
        pcs.insert(rec.pc);
        if (isBranch(rec.cls)) {
            ++s.branches;
            if (rec.taken)
                ++s.takenBranches;
            if (rec.readsReg(aarch64::kLinkReg))
                ++s.branchesReadingX30;
            if (rec.writesReg(aarch64::kLinkReg))
                ++s.branchesWritingX30;
            bool gpr_src = false;
            for (unsigned i = 0; i < rec.numSrc; ++i)
                if (rec.src[i] != aarch64::kLinkReg &&
                    rec.src[i] != aarch64::kSp)
                    gpr_src = true;
            if (gpr_src)
                ++s.branchesWithGprSources;
        } else if (isMem(rec.cls)) {
            if (rec.cls == InstClass::Load)
                ++s.loads;
            else
                ++s.stores;
            ++s.dstCountHist[rec.numDst];
            if (rec.numDst == 0)
                ++s.memNoDst;
            if (rec.numDst >= 2)
                ++s.memMultiDst;
            if (rec.accessSize > 0 &&
                lineNum(rec.ea) != lineNum(rec.ea + rec.accessSize - 1))
                ++s.lineCrossing;
        } else if (rec.cls == InstClass::Alu ||
                   rec.cls == InstClass::SlowAlu ||
                   rec.cls == InstClass::Fp) {
            if (rec.numDst == 0)
                ++s.aluNoDst;
        }
    }
    s.staticPcs = pcs.size();
    return s;
}

std::string
CvpTraceStats::report() const
{
    std::ostringstream os;
    os << "instructions " << instructions << "\n";
    for (std::size_t c = 0; c < perClass.size(); ++c) {
        if (perClass[c] == 0)
            continue;
        os << "class." << instClassName(static_cast<InstClass>(c)) << " "
           << perClass[c] << "\n";
    }
    os << "static_pcs " << staticPcs << "\n"
       << "branches " << branches << "\n"
       << "branches.taken " << takenBranches << "\n"
       << "branches.reading_x30 " << branchesReadingX30 << "\n"
       << "branches.writing_x30 " << branchesWritingX30 << "\n"
       << "branches.gpr_sources " << branchesWithGprSources << "\n"
       << "loads " << loads << "\n"
       << "stores " << stores << "\n"
       << "mem.no_dst " << memNoDst << "\n"
       << "mem.multi_dst " << memMultiDst << "\n"
       << "mem.line_crossing " << lineCrossing << "\n"
       << "alu.no_dst " << aluNoDst << "\n";
    for (std::size_t i = 0; i < dstCountHist.size(); ++i)
        os << "mem.dst_count." << i << " " << dstCountHist[i] << "\n";
    return os.str();
}

ChampSimTraceStats
characterizeChampSim(const ChampSimTrace &trace, DeductionRules rules)
{
    ChampSimTraceStats s;
    std::unordered_set<Addr> pcs;
    for (const ChampSimRecord &rec : trace) {
        ++s.instructions;
        pcs.insert(rec.ip);
        if (rec.isBranch) {
            ++s.branches;
            if (rec.branchTaken)
                ++s.takenBranches;
            ++s.perBranchType[
                static_cast<std::size_t>(deduceBranchType(rec, rules))];
        }
        if (rec.isLoad())
            ++s.loads;
        if (rec.isStore())
            ++s.stores;
        if (rec.numSrcMem() > 1 || rec.numDstMem() > 1)
            ++s.multiLineAccesses;
    }
    s.staticPcs = pcs.size();
    return s;
}

std::string
ChampSimTraceStats::report() const
{
    std::ostringstream os;
    os << "instructions " << instructions << "\n"
       << "static_pcs " << staticPcs << "\n"
       << "branches " << branches << "\n"
       << "branches.taken " << takenBranches << "\n";
    for (std::size_t t = 0; t < perBranchType.size(); ++t) {
        if (perBranchType[t] == 0)
            continue;
        os << "branch." << branchTypeName(static_cast<BranchType>(t)) << " "
           << perBranchType[t] << "\n";
    }
    os << "loads " << loads << "\n"
       << "stores " << stores << "\n"
       << "mem.multi_line " << multiLineAccesses << "\n";
    return os.str();
}

} // namespace trb
