/**
 * @file
 * ChampSim branch-type deduction.
 *
 * ChampSim traces carry no branch-type field; the simulator deduces the
 * type from how the instruction uses the x86 stack-pointer, flags and
 * instruction-pointer registers.  This header implements both rule sets:
 *
 *  - the *original* rules shipped with ChampSim, and
 *  - the *patched* rules the paper introduces in Section 3.2.2 so that
 *    conditional branches may read general-purpose registers instead of
 *    flags (required by the branch-regs improvement):
 *      1. a conditional branch reads flags OR other registers, and
 *      2. an indirect jump additionally must NOT read the instruction
 *         pointer (x86 indirect branches are absolute).
 */

#ifndef TRB_TRACE_BRANCH_DEDUCE_HH
#define TRB_TRACE_BRANCH_DEDUCE_HH

#include "common/types.hh"
#include "trace/champsim_trace.hh"

namespace trb
{

/** Which deduction rule set to apply. */
enum class DeductionRules
{
    Original,   //!< rules in ChampSim at the time of the original converter
    Patched,    //!< rules after the paper's Section 3.2.2 modifications
};

/** The register-usage facts deduction operates on. */
struct RegUsage
{
    bool readsSp = false;
    bool writesSp = false;
    bool readsIp = false;
    bool writesIp = false;
    bool readsFlags = false;
    bool readsOther = false;
};

/** Extract the deduction-relevant register usage from a record. */
RegUsage regUsage(const ChampSimRecord &rec);

/** Deduce the branch type from register usage under a rule set. */
BranchType deduceBranchType(const RegUsage &usage, DeductionRules rules);

/** Convenience overload on a whole record. */
BranchType deduceBranchType(const ChampSimRecord &rec, DeductionRules rules);

} // namespace trb

#endif // TRB_TRACE_BRANCH_DEDUCE_HH
