/**
 * @file
 * The CVP-1 trace format: in-memory record, binary serialisation, and
 * file readers/writers (zlib-backed, so plain and .gz files both work).
 *
 * The on-disk layout is our reconstruction of the public CVP-1 trace
 * reader's variable-length record:
 *
 *   u64  pc
 *   u8   instruction class (InstClass)
 *   [branches]  u8 taken, u64 target
 *   [loads/stores]  u64 effective address, u8 per-register access size
 *   u8   #source regs,      that many u8 reg ids
 *   u8   #destination regs, that many u8 reg ids, then that many u64
 *        output values (the architectural value written to each
 *        destination register -- the property CVP-1 traces are famous for)
 *
 * A 16-byte file header ("TRB1CVP\0", format version, instruction count)
 * precedes the records; the real Qualcomm traces are headerless, but since
 * both producers and consumers of this format live in this repository a
 * header buys cheap integrity checking.
 */

#ifndef TRB_TRACE_CVP_TRACE_HH
#define TRB_TRACE_CVP_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "resil/gz_stream.hh"
#include "resil/status.hh"

namespace trb
{

/** Maximum source registers a CVP-1 record can carry (CASP reaches 5). */
constexpr unsigned kMaxCvpSrc = 8;
/** Maximum destination registers a CVP-1 record can carry (0..3 typical). */
constexpr unsigned kMaxCvpDst = 4;

/**
 * One dynamic instruction as recorded by the CVP-1 tracer.
 *
 * Note what is *absent* -- addressing mode, opcode, special-purpose
 * registers (flags), exact footprint of multi-register loads -- because
 * those absences are exactly what the improved converter has to infer
 * around.
 */
struct CvpRecord
{
    Addr pc = 0;
    InstClass cls = InstClass::Alu;

    /** Branch fields; only meaningful when isBranch(cls). */
    bool taken = false;
    Addr target = 0;

    /** Memory fields; only meaningful when isMem(cls). */
    Addr ea = 0;
    std::uint8_t accessSize = 0;   //!< bytes transferred per register

    std::uint8_t numSrc = 0;
    RegId src[kMaxCvpSrc] = {};

    std::uint8_t numDst = 0;
    RegId dst[kMaxCvpDst] = {};
    std::uint64_t dstValue[kMaxCvpDst] = {};

    /** Append a source register (silently drops past kMaxCvpSrc). */
    void
    addSrc(RegId r)
    {
        if (numSrc < kMaxCvpSrc)
            src[numSrc++] = r;
    }

    /** Append a destination register with its output value. */
    void
    addDst(RegId r, std::uint64_t value)
    {
        if (numDst < kMaxCvpDst) {
            dst[numDst] = r;
            dstValue[numDst] = value;
            ++numDst;
        }
    }

    /** True if @p r appears among the source registers. */
    bool
    readsReg(RegId r) const
    {
        for (unsigned i = 0; i < numSrc; ++i)
            if (src[i] == r)
                return true;
        return false;
    }

    /** True if @p r appears among the destination registers. */
    bool
    writesReg(RegId r) const
    {
        for (unsigned i = 0; i < numDst; ++i)
            if (dst[i] == r)
                return true;
        return false;
    }

    bool operator==(const CvpRecord &other) const;
};

/** A whole CVP-1 trace held in memory. */
using CvpTrace = std::vector<CvpRecord>;

/** Serialise a single record, appending to @p out. */
void serializeCvpRecord(const CvpRecord &rec, std::vector<std::uint8_t> &out);

/** Why a single-record deserialisation stopped. */
enum class CvpParse : std::uint8_t
{
    Ok,       //!< record parsed, offset advanced
    NeedMore, //!< ran off the end of @p data -- truncated or refill
    BadData,  //!< bytes present but violate a format rule
};

/**
 * Deserialise a single record from @p data at @p offset (advanced past
 * the record on Ok).  Distinguishes "not enough bytes" from "bytes that
 * cannot be a record" so callers can classify truncation vs corruption.
 */
CvpParse deserializeCvpRecordEx(const std::uint8_t *data, std::size_t size,
                                std::size_t &offset, CvpRecord &rec);

/**
 * Deserialise a single record from @p data at @p offset (advanced past the
 * record).  Returns false on truncated input.
 */
bool deserializeCvpRecord(const std::uint8_t *data, std::size_t size,
                          std::size_t &offset, CvpRecord &rec);

/** Serialise a whole trace (header + records) to an in-memory buffer. */
std::vector<std::uint8_t> serializeCvpTrace(const CvpTrace &trace);

/**
 * Parse a whole serialised trace from memory.  Validates the magic,
 * version, header count against records present, and rejects trailing
 * bytes -- so any corruption of the buffer is detected.  @p name labels
 * diagnostics (a file path or a synthetic trace name).
 */
Expected<CvpTrace> parseCvpTrace(const std::uint8_t *data, std::size_t size,
                                 const std::string &name);

/**
 * Write a trace to @p path; ".gz" selects compression.  Both gzwrite
 * and gzclose are checked: a flush failure at close is data loss.
 */
Status tryWriteCvpTrace(const std::string &path, const CvpTrace &trace);

/**
 * Read a trace written by writeCvpTrace() with rich diagnostics (byte
 * offset, record index, violated rule) instead of dying.
 */
Expected<CvpTrace> tryReadCvpTrace(const std::string &path);

/** Write a trace to @p path; fatal on any error (legacy wrapper). */
void writeCvpTrace(const std::string &path, const CvpTrace &trace);

/** Read a trace written by writeCvpTrace(); fatal on malformed input. */
CvpTrace readCvpTrace(const std::string &path);

/**
 * Streaming reader over a CVP-1 trace file, for consumers that do not want
 * the whole trace in memory (the converter CLI uses this).
 *
 * Two modes: the legacy path-taking constructor keeps its fatal-on-error
 * contract, while default-construct + open() reports a Status and next()
 * returns false with status() set on malformed input.
 */
class CvpTraceReader
{
  public:
    /** Non-fatal mode: construct empty, then open(). */
    CvpTraceReader() = default;
    /** Legacy fatal mode: dies on any open/format error. */
    explicit CvpTraceReader(const std::string &path);
    ~CvpTraceReader() = default;

    CvpTraceReader(const CvpTraceReader &) = delete;
    CvpTraceReader &operator=(const CvpTraceReader &) = delete;

    /** Open @p path and validate the header; non-fatal. */
    Status open(const std::string &path);

    /** Instruction count promised by the header. */
    std::uint64_t count() const { return count_; }

    /** Records delivered so far. */
    std::uint64_t delivered() const { return delivered_; }

    /**
     * Fetch the next record; false at end of trace or on error.  In
     * non-fatal mode check status() to tell the two apart; in legacy
     * mode errors are fatal.
     */
    bool next(CvpRecord &rec);

    /**
     * After next() has returned false cleanly, verify nothing trails
     * the promised records.  OK in all other error cases too (the
     * earlier error stands).
     */
    Status finish();

    /** The error that stopped next(); OK at a clean end of trace. */
    const Status &status() const { return status_; }

  private:
    Status fill();

    resil::GzInFile in_;
    std::vector<std::uint8_t> buffer_;
    std::size_t pos_ = 0;
    std::uint64_t bufferBase_ = 0; //!< file offset of buffer_[0]
    bool eof_ = false;
    bool fatal_ = false;           //!< legacy mode: die instead of report
    std::uint64_t count_ = 0;
    std::uint64_t delivered_ = 0;
    Status status_;
};

} // namespace trb

#endif // TRB_TRACE_CVP_TRACE_HH
