/**
 * @file
 * The CVP-1 trace format: in-memory record, binary serialisation, and
 * file readers/writers (zlib-backed, so plain and .gz files both work).
 *
 * The on-disk layout is our reconstruction of the public CVP-1 trace
 * reader's variable-length record:
 *
 *   u64  pc
 *   u8   instruction class (InstClass)
 *   [branches]  u8 taken, u64 target
 *   [loads/stores]  u64 effective address, u8 per-register access size
 *   u8   #source regs,      that many u8 reg ids
 *   u8   #destination regs, that many u8 reg ids, then that many u64
 *        output values (the architectural value written to each
 *        destination register -- the property CVP-1 traces are famous for)
 *
 * A 16-byte file header ("TRB1CVP\0", format version, instruction count)
 * precedes the records; the real Qualcomm traces are headerless, but since
 * both producers and consumers of this format live in this repository a
 * header buys cheap integrity checking.
 */

#ifndef TRB_TRACE_CVP_TRACE_HH
#define TRB_TRACE_CVP_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace trb
{

/** Maximum source registers a CVP-1 record can carry (CASP reaches 5). */
constexpr unsigned kMaxCvpSrc = 8;
/** Maximum destination registers a CVP-1 record can carry (0..3 typical). */
constexpr unsigned kMaxCvpDst = 4;

/**
 * One dynamic instruction as recorded by the CVP-1 tracer.
 *
 * Note what is *absent* -- addressing mode, opcode, special-purpose
 * registers (flags), exact footprint of multi-register loads -- because
 * those absences are exactly what the improved converter has to infer
 * around.
 */
struct CvpRecord
{
    Addr pc = 0;
    InstClass cls = InstClass::Alu;

    /** Branch fields; only meaningful when isBranch(cls). */
    bool taken = false;
    Addr target = 0;

    /** Memory fields; only meaningful when isMem(cls). */
    Addr ea = 0;
    std::uint8_t accessSize = 0;   //!< bytes transferred per register

    std::uint8_t numSrc = 0;
    RegId src[kMaxCvpSrc] = {};

    std::uint8_t numDst = 0;
    RegId dst[kMaxCvpDst] = {};
    std::uint64_t dstValue[kMaxCvpDst] = {};

    /** Append a source register (silently drops past kMaxCvpSrc). */
    void
    addSrc(RegId r)
    {
        if (numSrc < kMaxCvpSrc)
            src[numSrc++] = r;
    }

    /** Append a destination register with its output value. */
    void
    addDst(RegId r, std::uint64_t value)
    {
        if (numDst < kMaxCvpDst) {
            dst[numDst] = r;
            dstValue[numDst] = value;
            ++numDst;
        }
    }

    /** True if @p r appears among the source registers. */
    bool
    readsReg(RegId r) const
    {
        for (unsigned i = 0; i < numSrc; ++i)
            if (src[i] == r)
                return true;
        return false;
    }

    /** True if @p r appears among the destination registers. */
    bool
    writesReg(RegId r) const
    {
        for (unsigned i = 0; i < numDst; ++i)
            if (dst[i] == r)
                return true;
        return false;
    }

    bool operator==(const CvpRecord &other) const;
};

/** A whole CVP-1 trace held in memory. */
using CvpTrace = std::vector<CvpRecord>;

/** Serialise a single record, appending to @p out. */
void serializeCvpRecord(const CvpRecord &rec, std::vector<std::uint8_t> &out);

/**
 * Deserialise a single record from @p data at @p offset (advanced past the
 * record).  Returns false on truncated input.
 */
bool deserializeCvpRecord(const std::uint8_t *data, std::size_t size,
                          std::size_t &offset, CvpRecord &rec);

/** Write a trace to @p path; a ".gz" suffix selects compression. */
void writeCvpTrace(const std::string &path, const CvpTrace &trace);

/** Read a trace written by writeCvpTrace(); fatal on malformed input. */
CvpTrace readCvpTrace(const std::string &path);

/**
 * Streaming reader over a CVP-1 trace file, for consumers that do not want
 * the whole trace in memory (the converter CLI uses this).
 */
class CvpTraceReader
{
  public:
    explicit CvpTraceReader(const std::string &path);
    ~CvpTraceReader();

    CvpTraceReader(const CvpTraceReader &) = delete;
    CvpTraceReader &operator=(const CvpTraceReader &) = delete;

    /** Instruction count promised by the header. */
    std::uint64_t count() const { return count_; }

    /** Fetch the next record; false at end of trace. */
    bool next(CvpRecord &rec);

  private:
    void fill();

    void *file_ = nullptr;          //!< gzFile, kept opaque here
    std::vector<std::uint8_t> buffer_;
    std::size_t pos_ = 0;
    bool eof_ = false;
    std::uint64_t count_ = 0;
    std::uint64_t delivered_ = 0;
};

} // namespace trb

#endif // TRB_TRACE_CVP_TRACE_HH
