#include "trace/champsim_trace.hh"

#include <zlib.h>

#include "common/logging.hh"

namespace trb
{

void
writeChampSimTrace(const std::string &path, const ChampSimTrace &trace)
{
    bool compress = path.size() > 3 &&
                    path.compare(path.size() - 3, 3, ".gz") == 0;
    gzFile f = gzopen(path.c_str(), compress ? "wb6" : "wbT");
    if (!f)
        trb_fatal("cannot open ChampSim trace for writing: ", path);
    constexpr std::size_t chunk = 16384;
    for (std::size_t i = 0; i < trace.size(); i += chunk) {
        std::size_t n = std::min(chunk, trace.size() - i);
        if (gzwrite(f, trace.data() + i,
                    static_cast<unsigned>(n * sizeof(ChampSimRecord))) <= 0) {
            gzclose(f);
            trb_fatal("write error on ChampSim trace: ", path);
        }
    }
    gzclose(f);
}

ChampSimTrace
readChampSimTrace(const std::string &path)
{
    gzFile f = gzopen(path.c_str(), "rb");
    if (!f)
        trb_fatal("cannot open ChampSim trace for reading: ", path);
    ChampSimTrace trace;
    ChampSimRecord rec;
    for (;;) {
        int got = gzread(f, &rec, sizeof(rec));
        if (got == 0)
            break;
        if (got < 0) {
            gzclose(f);
            trb_fatal("read error on ChampSim trace: ", path);
        }
        if (static_cast<std::size_t>(got) != sizeof(rec)) {
            gzclose(f);
            trb_fatal("truncated ChampSim trace (", got,
                      " trailing bytes): ", path);
        }
        trace.push_back(rec);
    }
    gzclose(f);
    return trace;
}

} // namespace trb
