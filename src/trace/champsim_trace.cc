#include "trace/champsim_trace.hh"

#include <zlib.h>

#include "common/logging.hh"
#include "common/strings.hh"
#include "resil/gz_stream.hh"

namespace trb
{

Status
tryWriteChampSimTrace(const std::string &path, const ChampSimTrace &trace)
{
    bool compress = endsWith(path, ".gz");
    gzFile f = gzopen(path.c_str(), compress ? "wb6" : "wbT");
    if (!f)
        return Status::ioError("cannot open ChampSim trace for writing")
            .at(path);
    constexpr std::size_t chunk = 16384;
    for (std::size_t i = 0; i < trace.size(); i += chunk) {
        std::size_t n = std::min(chunk, trace.size() - i);
        if (gzwrite(f, trace.data() + i,
                    static_cast<unsigned>(n * sizeof(ChampSimRecord))) <= 0) {
            gzclose(f);
            return Status::ioError("write error on ChampSim trace")
                .at(path, i * sizeof(ChampSimRecord), i);
        }
    }
    if (gzclose(f) != Z_OK)
        return Status::ioError("close/flush error on ChampSim trace")
            .at(path, trace.size() * sizeof(ChampSimRecord));
    return Status{};
}

Expected<ChampSimTrace>
tryReadChampSimTrace(const std::string &path)
{
    resil::GzInFile in;
    if (Status st = in.open(path); !st.ok())
        return st;
    ChampSimTrace trace;
    ChampSimRecord rec;
    for (;;) {
        std::uint64_t at = in.offset();
        int got = in.readFully(&rec, sizeof(rec));
        if (got < 0)
            return Status(in.status()).at(path, at, trace.size());
        if (got == 0)
            break;
        if (static_cast<std::size_t>(got) != sizeof(rec))
            return Status::truncated(
                       "ChampSim trace ended mid-record (" +
                       std::to_string(got) + " trailing bytes)")
                .at(path, at, trace.size())
                .rule("champsim.record-size");
        trace.push_back(rec);
    }
    return trace;
}

void
writeChampSimTrace(const std::string &path, const ChampSimTrace &trace)
{
    Status st = tryWriteChampSimTrace(path, trace);
    if (!st.ok())
        trb_fatal(st.toString());
}

ChampSimTrace
readChampSimTrace(const std::string &path)
{
    Expected<ChampSimTrace> trace = tryReadChampSimTrace(path);
    if (!trace.ok())
        trb_fatal(trace.status().toString());
    return std::move(trace).value();
}

} // namespace trb
