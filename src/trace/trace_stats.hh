/**
 * @file
 * Trace characterisation: static/dynamic instruction mixes, register-list
 * shapes and branch-class breakdowns for CVP-1 and ChampSim traces.  Used
 * by the trace_inspector example and by tests that pin the synthetic
 * generator's output distribution.
 */

#ifndef TRB_TRACE_TRACE_STATS_HH
#define TRB_TRACE_TRACE_STATS_HH

#include <array>
#include <cstdint>
#include <string>

#include "trace/branch_deduce.hh"
#include "trace/champsim_trace.hh"
#include "trace/cvp_trace.hh"

namespace trb
{

/** Dynamic characterisation of a CVP-1 trace. */
struct CvpTraceStats
{
    std::uint64_t instructions = 0;
    std::array<std::uint64_t, 9> perClass{};   //!< indexed by InstClass

    std::uint64_t branches = 0;
    std::uint64_t takenBranches = 0;
    std::uint64_t branchesReadingX30 = 0;
    std::uint64_t branchesWritingX30 = 0;
    std::uint64_t branchesWithGprSources = 0;

    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::array<std::uint64_t, kMaxCvpDst + 1> dstCountHist{};
    std::uint64_t memNoDst = 0;        //!< prefetches / plain stores
    std::uint64_t memMultiDst = 0;     //!< LDP / base-update / vector loads
    std::uint64_t lineCrossing = 0;    //!< naive single-access estimate
    std::uint64_t aluNoDst = 0;        //!< compares etc. (flag-reg targets)

    std::uint64_t staticPcs = 0;       //!< distinct instruction addresses

    std::string report() const;
};

/** Characterise an in-memory CVP-1 trace. */
CvpTraceStats characterizeCvp(const CvpTrace &trace);

/** Dynamic characterisation of a ChampSim trace. */
struct ChampSimTraceStats
{
    std::uint64_t instructions = 0;
    std::uint64_t branches = 0;
    std::uint64_t takenBranches = 0;
    std::array<std::uint64_t, 7> perBranchType{};  //!< indexed by BranchType
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t multiLineAccesses = 0;   //!< >1 populated memory slot
    std::uint64_t staticPcs = 0;

    std::string report() const;
};

/** Characterise an in-memory ChampSim trace under a rule set. */
ChampSimTraceStats characterizeChampSim(const ChampSimTrace &trace,
                                        DeductionRules rules);

} // namespace trb

#endif // TRB_TRACE_TRACE_STATS_HH
