#include "trace/cvp_trace.hh"

#include <zlib.h>

#include <cstring>

#include "common/logging.hh"

namespace trb
{

namespace
{

constexpr char kMagic[8] = {'T', 'R', 'B', '1', 'C', 'V', 'P', '\0'};
constexpr std::uint32_t kVersion = 1;

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

bool
getU64(const std::uint8_t *data, std::size_t size, std::size_t &offset,
       std::uint64_t &v)
{
    if (offset + 8 > size)
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(data[offset + i]) << (8 * i);
    offset += 8;
    return true;
}

bool
getU8(const std::uint8_t *data, std::size_t size, std::size_t &offset,
      std::uint8_t &v)
{
    if (offset + 1 > size)
        return false;
    v = data[offset++];
    return true;
}

/** Open for writing; ".gz" suffix selects compression, else transparent. */
gzFile
openForWrite(const std::string &path)
{
    bool compress = path.size() > 3 &&
                    path.compare(path.size() - 3, 3, ".gz") == 0;
    gzFile f = gzopen(path.c_str(), compress ? "wb6" : "wbT");
    if (!f)
        trb_fatal("cannot open trace file for writing: ", path);
    return f;
}

} // namespace

bool
CvpRecord::operator==(const CvpRecord &other) const
{
    if (pc != other.pc || cls != other.cls || numSrc != other.numSrc ||
        numDst != other.numDst)
        return false;
    if (isBranch(cls) && (taken != other.taken || target != other.target))
        return false;
    if (isMem(cls) && (ea != other.ea || accessSize != other.accessSize))
        return false;
    for (unsigned i = 0; i < numSrc; ++i)
        if (src[i] != other.src[i])
            return false;
    for (unsigned i = 0; i < numDst; ++i)
        if (dst[i] != other.dst[i] || dstValue[i] != other.dstValue[i])
            return false;
    return true;
}

void
serializeCvpRecord(const CvpRecord &rec, std::vector<std::uint8_t> &out)
{
    putU64(out, rec.pc);
    out.push_back(static_cast<std::uint8_t>(rec.cls));
    if (isBranch(rec.cls)) {
        out.push_back(rec.taken ? 1 : 0);
        putU64(out, rec.target);
    }
    if (isMem(rec.cls)) {
        putU64(out, rec.ea);
        out.push_back(rec.accessSize);
    }
    trb_assert(rec.numSrc <= kMaxCvpSrc, "too many sources");
    out.push_back(rec.numSrc);
    for (unsigned i = 0; i < rec.numSrc; ++i)
        out.push_back(rec.src[i]);
    trb_assert(rec.numDst <= kMaxCvpDst, "too many destinations");
    out.push_back(rec.numDst);
    for (unsigned i = 0; i < rec.numDst; ++i)
        out.push_back(rec.dst[i]);
    for (unsigned i = 0; i < rec.numDst; ++i)
        putU64(out, rec.dstValue[i]);
}

bool
deserializeCvpRecord(const std::uint8_t *data, std::size_t size,
                     std::size_t &offset, CvpRecord &rec)
{
    std::size_t at = offset;
    rec = CvpRecord{};
    std::uint8_t byte = 0;
    if (!getU64(data, size, at, rec.pc) || !getU8(data, size, at, byte))
        return false;
    if (byte > static_cast<std::uint8_t>(InstClass::Undef))
        return false;
    rec.cls = static_cast<InstClass>(byte);
    if (isBranch(rec.cls)) {
        if (!getU8(data, size, at, byte))
            return false;
        rec.taken = byte != 0;
        if (!getU64(data, size, at, rec.target))
            return false;
    }
    if (isMem(rec.cls)) {
        if (!getU64(data, size, at, rec.ea) ||
            !getU8(data, size, at, rec.accessSize))
            return false;
    }
    if (!getU8(data, size, at, rec.numSrc) || rec.numSrc > kMaxCvpSrc)
        return false;
    for (unsigned i = 0; i < rec.numSrc; ++i)
        if (!getU8(data, size, at, rec.src[i]))
            return false;
    if (!getU8(data, size, at, rec.numDst) || rec.numDst > kMaxCvpDst)
        return false;
    for (unsigned i = 0; i < rec.numDst; ++i)
        if (!getU8(data, size, at, rec.dst[i]))
            return false;
    for (unsigned i = 0; i < rec.numDst; ++i)
        if (!getU64(data, size, at, rec.dstValue[i]))
            return false;
    offset = at;
    return true;
}

void
writeCvpTrace(const std::string &path, const CvpTrace &trace)
{
    gzFile f = openForWrite(path);
    std::vector<std::uint8_t> buf;
    buf.reserve(1u << 20);
    buf.insert(buf.end(), kMagic, kMagic + sizeof(kMagic));
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(kVersion >> (8 * i)));
    putU64(buf, trace.size());
    for (const CvpRecord &rec : trace) {
        serializeCvpRecord(rec, buf);
        if (buf.size() >= (1u << 20)) {
            if (gzwrite(f, buf.data(), static_cast<unsigned>(buf.size())) <=
                0) {
                gzclose(f);
                trb_fatal("write error on trace file: ", path);
            }
            buf.clear();
        }
    }
    if (!buf.empty() &&
        gzwrite(f, buf.data(), static_cast<unsigned>(buf.size())) <= 0) {
        gzclose(f);
        trb_fatal("write error on trace file: ", path);
    }
    gzclose(f);
}

CvpTrace
readCvpTrace(const std::string &path)
{
    CvpTraceReader reader(path);
    CvpTrace trace;
    trace.reserve(reader.count());
    CvpRecord rec;
    while (reader.next(rec))
        trace.push_back(rec);
    return trace;
}

CvpTraceReader::CvpTraceReader(const std::string &path)
{
    gzFile f = gzopen(path.c_str(), "rb");
    if (!f)
        trb_fatal("cannot open trace file for reading: ", path);
    file_ = f;
    buffer_.resize(1u << 20);
    buffer_.clear();
    fill();
    // Header: magic, version, count.
    if (buffer_.size() < 20 ||
        std::memcmp(buffer_.data(), kMagic, sizeof(kMagic)) != 0)
        trb_fatal("not a TraceRebase CVP-1 trace: ", path);
    std::uint32_t version = 0;
    for (int i = 0; i < 4; ++i)
        version |= static_cast<std::uint32_t>(buffer_[8 + i]) << (8 * i);
    if (version != kVersion)
        trb_fatal("unsupported CVP-1 trace version ", version, " in ", path);
    pos_ = 12;
    std::size_t at = pos_;
    if (!getU64(buffer_.data(), buffer_.size(), at, count_))
        trb_fatal("truncated CVP-1 trace header: ", path);
    pos_ = at;
}

CvpTraceReader::~CvpTraceReader()
{
    if (file_)
        gzclose(static_cast<gzFile>(file_));
}

void
CvpTraceReader::fill()
{
    if (eof_)
        return;
    // Compact consumed bytes, then top the buffer up to capacity.
    if (pos_ > 0) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    std::size_t old = buffer_.size();
    std::size_t want = (1u << 20) - old;
    buffer_.resize(old + want);
    int got = gzread(static_cast<gzFile>(file_), buffer_.data() + old,
                     static_cast<unsigned>(want));
    if (got < 0)
        trb_fatal("read error on CVP-1 trace");
    buffer_.resize(old + static_cast<std::size_t>(got));
    if (static_cast<std::size_t>(got) < want)
        eof_ = true;
}

bool
CvpTraceReader::next(CvpRecord &rec)
{
    if (delivered_ >= count_)
        return false;
    std::size_t at = pos_;
    if (!deserializeCvpRecord(buffer_.data(), buffer_.size(), at, rec)) {
        fill();
        at = pos_;
        if (!deserializeCvpRecord(buffer_.data(), buffer_.size(), at, rec))
            trb_fatal("truncated CVP-1 trace: expected ", count_,
                      " records, got ", delivered_);
    }
    pos_ = at;
    ++delivered_;
    return true;
}

} // namespace trb
