#include "trace/cvp_trace.hh"

#include <zlib.h>

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "common/strings.hh"

namespace trb
{

namespace
{

constexpr char kMagic[8] = {'T', 'R', 'B', '1', 'C', 'V', 'P', '\0'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 20;

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

bool
getU64(const std::uint8_t *data, std::size_t size, std::size_t &offset,
       std::uint64_t &v)
{
    if (offset + 8 > size)
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(data[offset + i]) << (8 * i);
    offset += 8;
    return true;
}

bool
getU8(const std::uint8_t *data, std::size_t size, std::size_t &offset,
      std::uint8_t &v)
{
    if (offset + 1 > size)
        return false;
    v = data[offset++];
    return true;
}

/**
 * Validate the 20-byte header (magic, version, count) shared by the
 * in-memory parser and the streaming reader.  @p name labels
 * diagnostics.  @p have is how many bytes @p data holds -- in the
 * streaming case possibly fewer than the whole file.
 */
Status
checkCvpHeader(const std::uint8_t *data, std::size_t have,
               const std::string &name, std::uint64_t &count)
{
    if (have >= sizeof(kMagic) &&
        std::memcmp(data, kMagic, sizeof(kMagic)) != 0)
        return Status::badMagic("not a TraceRebase CVP-1 trace")
            .at(name, 0)
            .rule("cvp.magic");
    if (have < kHeaderBytes)
        return Status::truncated("CVP-1 header is " +
                                 std::to_string(have) +
                                 " bytes, need 20")
            .at(name, have)
            .rule("cvp.header");
    std::uint32_t version = 0;
    for (int i = 0; i < 4; ++i)
        version |= static_cast<std::uint32_t>(data[8 + i]) << (8 * i);
    if (version != kVersion)
        return Status::corrupt("unsupported CVP-1 trace version " +
                               std::to_string(version))
            .at(name, 8)
            .rule("cvp.version");
    std::size_t at = 12;
    getU64(data, have, at, count);
    return Status{};
}

} // namespace

bool
CvpRecord::operator==(const CvpRecord &other) const
{
    if (pc != other.pc || cls != other.cls || numSrc != other.numSrc ||
        numDst != other.numDst)
        return false;
    if (isBranch(cls) && (taken != other.taken || target != other.target))
        return false;
    if (isMem(cls) && (ea != other.ea || accessSize != other.accessSize))
        return false;
    for (unsigned i = 0; i < numSrc; ++i)
        if (src[i] != other.src[i])
            return false;
    for (unsigned i = 0; i < numDst; ++i)
        if (dst[i] != other.dst[i] || dstValue[i] != other.dstValue[i])
            return false;
    return true;
}

void
serializeCvpRecord(const CvpRecord &rec, std::vector<std::uint8_t> &out)
{
    putU64(out, rec.pc);
    out.push_back(static_cast<std::uint8_t>(rec.cls));
    if (isBranch(rec.cls)) {
        out.push_back(rec.taken ? 1 : 0);
        putU64(out, rec.target);
    }
    if (isMem(rec.cls)) {
        putU64(out, rec.ea);
        out.push_back(rec.accessSize);
    }
    trb_assert(rec.numSrc <= kMaxCvpSrc, "too many sources");
    out.push_back(rec.numSrc);
    for (unsigned i = 0; i < rec.numSrc; ++i)
        out.push_back(rec.src[i]);
    trb_assert(rec.numDst <= kMaxCvpDst, "too many destinations");
    out.push_back(rec.numDst);
    for (unsigned i = 0; i < rec.numDst; ++i)
        out.push_back(rec.dst[i]);
    for (unsigned i = 0; i < rec.numDst; ++i)
        putU64(out, rec.dstValue[i]);
}

CvpParse
deserializeCvpRecordEx(const std::uint8_t *data, std::size_t size,
                       std::size_t &offset, CvpRecord &rec)
{
    std::size_t at = offset;
    rec = CvpRecord{};
    std::uint8_t byte = 0;
    if (!getU64(data, size, at, rec.pc) || !getU8(data, size, at, byte))
        return CvpParse::NeedMore;
    if (byte > static_cast<std::uint8_t>(InstClass::Undef))
        return CvpParse::BadData;
    rec.cls = static_cast<InstClass>(byte);
    if (isBranch(rec.cls)) {
        if (!getU8(data, size, at, byte))
            return CvpParse::NeedMore;
        rec.taken = byte != 0;
        if (!getU64(data, size, at, rec.target))
            return CvpParse::NeedMore;
    }
    if (isMem(rec.cls)) {
        if (!getU64(data, size, at, rec.ea) ||
            !getU8(data, size, at, rec.accessSize))
            return CvpParse::NeedMore;
    }
    if (!getU8(data, size, at, rec.numSrc))
        return CvpParse::NeedMore;
    if (rec.numSrc > kMaxCvpSrc)
        return CvpParse::BadData;
    for (unsigned i = 0; i < rec.numSrc; ++i)
        if (!getU8(data, size, at, rec.src[i]))
            return CvpParse::NeedMore;
    if (!getU8(data, size, at, rec.numDst))
        return CvpParse::NeedMore;
    if (rec.numDst > kMaxCvpDst)
        return CvpParse::BadData;
    for (unsigned i = 0; i < rec.numDst; ++i)
        if (!getU8(data, size, at, rec.dst[i]))
            return CvpParse::NeedMore;
    for (unsigned i = 0; i < rec.numDst; ++i)
        if (!getU64(data, size, at, rec.dstValue[i]))
            return CvpParse::NeedMore;
    offset = at;
    return CvpParse::Ok;
}

bool
deserializeCvpRecord(const std::uint8_t *data, std::size_t size,
                     std::size_t &offset, CvpRecord &rec)
{
    return deserializeCvpRecordEx(data, size, offset, rec) == CvpParse::Ok;
}

std::vector<std::uint8_t>
serializeCvpTrace(const CvpTrace &trace)
{
    std::vector<std::uint8_t> buf;
    buf.reserve(kHeaderBytes + trace.size() * 32);
    buf.insert(buf.end(), kMagic, kMagic + sizeof(kMagic));
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(kVersion >> (8 * i)));
    putU64(buf, trace.size());
    for (const CvpRecord &rec : trace)
        serializeCvpRecord(rec, buf);
    return buf;
}

Expected<CvpTrace>
parseCvpTrace(const std::uint8_t *data, std::size_t size,
              const std::string &name)
{
    std::uint64_t count = 0;
    if (Status st = checkCvpHeader(data, size, name, count); !st.ok())
        return st;
    CvpTrace trace;
    trace.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(count, 1u << 22)));
    std::size_t at = kHeaderBytes;
    for (std::uint64_t i = 0; i < count; ++i) {
        CvpRecord rec;
        switch (deserializeCvpRecordEx(data, size, at, rec)) {
          case CvpParse::Ok:
            trace.push_back(rec);
            break;
          case CvpParse::NeedMore:
            return Status::truncated(
                       "CVP-1 trace ended mid-record: expected " +
                       std::to_string(count) + " records, got " +
                       std::to_string(i))
                .at(name, at, i)
                .rule("cvp.record-truncated");
          case CvpParse::BadData:
            return Status::corrupt("malformed CVP-1 record")
                .at(name, at, i)
                .rule("cvp.record");
        }
    }
    if (at != size)
        return Status::corrupt(std::to_string(size - at) +
                               " trailing bytes after final record")
            .at(name, at, count)
            .rule("cvp.trailing");
    return trace;
}

Status
tryWriteCvpTrace(const std::string &path, const CvpTrace &trace)
{
    gzFile f = gzopen(path.c_str(),
                      endsWith(path, ".gz") ? "wb6" : "wbT");
    if (!f)
        return Status::ioError("cannot open trace file for writing")
            .at(path);
    std::vector<std::uint8_t> buf;
    buf.reserve(1u << 20);
    buf.insert(buf.end(), kMagic, kMagic + sizeof(kMagic));
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(kVersion >> (8 * i)));
    putU64(buf, trace.size());
    std::uint64_t written = 0;
    for (const CvpRecord &rec : trace) {
        serializeCvpRecord(rec, buf);
        if (buf.size() >= (1u << 20)) {
            if (gzwrite(f, buf.data(), static_cast<unsigned>(buf.size())) <=
                0) {
                gzclose(f);
                return Status::ioError("write error on trace file")
                    .at(path, written);
            }
            written += buf.size();
            buf.clear();
        }
    }
    if (!buf.empty() &&
        gzwrite(f, buf.data(), static_cast<unsigned>(buf.size())) <= 0) {
        gzclose(f);
        return Status::ioError("write error on trace file")
            .at(path, written);
    }
    written += buf.size();
    if (gzclose(f) != Z_OK)
        return Status::ioError("close/flush error on trace file")
            .at(path, written);
    return Status{};
}

Expected<CvpTrace>
tryReadCvpTrace(const std::string &path)
{
    CvpTraceReader reader;
    if (Status st = reader.open(path); !st.ok())
        return st;
    CvpTrace trace;
    trace.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(reader.count(), 1u << 22)));
    CvpRecord rec;
    while (reader.next(rec))
        trace.push_back(rec);
    if (!reader.status().ok())
        return reader.status();
    if (Status st = reader.finish(); !st.ok())
        return st;
    return trace;
}

void
writeCvpTrace(const std::string &path, const CvpTrace &trace)
{
    Status st = tryWriteCvpTrace(path, trace);
    if (!st.ok())
        trb_fatal(st.toString());
}

CvpTrace
readCvpTrace(const std::string &path)
{
    Expected<CvpTrace> trace = tryReadCvpTrace(path);
    if (!trace.ok())
        trb_fatal(trace.status().toString());
    return std::move(trace).value();
}

CvpTraceReader::CvpTraceReader(const std::string &path)
{
    fatal_ = true;
    Status st = open(path);
    if (!st.ok())
        trb_fatal(st.toString());
}

Status
CvpTraceReader::open(const std::string &path)
{
    buffer_.clear();
    pos_ = 0;
    bufferBase_ = 0;
    eof_ = false;
    count_ = 0;
    delivered_ = 0;
    status_ = Status{};
    if (Status st = in_.open(path); !st.ok())
        return st;
    if (Status st = fill(); !st.ok())
        return st;
    if (Status st = checkCvpHeader(buffer_.data(), buffer_.size(), path,
                                   count_);
        !st.ok())
        return st;
    pos_ = kHeaderBytes;
    return Status{};
}

Status
CvpTraceReader::fill()
{
    if (eof_)
        return Status{};
    // Compact consumed bytes, then top the buffer up to capacity.
    if (pos_ > 0) {
        bufferBase_ += pos_;
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    std::size_t old = buffer_.size();
    std::size_t want = (1u << 20) - old;
    buffer_.resize(old + want);
    int got = in_.readFully(buffer_.data() + old,
                            static_cast<unsigned>(want));
    if (got < 0) {
        buffer_.resize(old);
        return in_.status();
    }
    buffer_.resize(old + static_cast<std::size_t>(got));
    if (static_cast<std::size_t>(got) < want)
        eof_ = true;
    return Status{};
}

bool
CvpTraceReader::next(CvpRecord &rec)
{
    if (!status_.ok() || delivered_ >= count_)
        return false;
    std::size_t at = pos_;
    CvpParse parsed =
        deserializeCvpRecordEx(buffer_.data(), buffer_.size(), at, rec);
    if (parsed == CvpParse::NeedMore && !eof_) {
        if (Status st = fill(); !st.ok()) {
            status_ = st;
            if (fatal_)
                trb_fatal(status_.toString());
            return false;
        }
        at = pos_;
        parsed =
            deserializeCvpRecordEx(buffer_.data(), buffer_.size(), at, rec);
    }
    if (parsed == CvpParse::NeedMore) {
        status_ = Status::truncated(
                      "CVP-1 trace ended mid-record: expected " +
                      std::to_string(count_) + " records, got " +
                      std::to_string(delivered_))
                      .at(in_.path(), bufferBase_ + pos_, delivered_)
                      .rule("cvp.record-truncated");
        if (fatal_)
            trb_fatal(status_.toString());
        return false;
    }
    if (parsed == CvpParse::BadData) {
        status_ = Status::corrupt("malformed CVP-1 record")
                      .at(in_.path(), bufferBase_ + pos_, delivered_)
                      .rule("cvp.record");
        if (fatal_)
            trb_fatal(status_.toString());
        return false;
    }
    pos_ = at;
    ++delivered_;
    return true;
}

Status
CvpTraceReader::finish()
{
    if (!status_.ok() || delivered_ < count_)
        return Status{};
    if (pos_ >= buffer_.size() && !eof_) {
        if (Status st = fill(); !st.ok())
            return st;
    }
    if (pos_ < buffer_.size())
        return Status::corrupt(std::to_string(buffer_.size() - pos_) +
                               "+ trailing bytes after final record")
            .at(in_.path(), bufferBase_ + pos_, delivered_)
            .rule("cvp.trailing");
    return Status{};
}

} // namespace trb
