#include "flow/analyze.hh"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

#include "flow/rules.hh"
#include "obs/metrics.hh"
#include "obs/profile.hh"
#include "store/store.hh"

namespace trb
{
namespace flow
{

namespace
{

/**
 * Collects the whole-program findings: full per-rule totals, stored
 * diagnostics capped per rule, for merging into the streaming
 * LintReport (same convention as the Linter's internal sink).
 */
class CfgSink : public lint::DiagnosticSink
{
  public:
    explicit CfgSink(std::uint64_t cap) : cap_(cap) {}

    void
    report(const lint::RuleInfo &rule, std::uint64_t index, Addr pc,
           std::string message, std::string fix_hint) override
    {
        Tally &tally = tallies_[rule.id];
        tally.severity = rule.severity;
        ++tally.count;
        if (tally.stored >= cap_)
            return;
        ++tally.stored;
        lint::Diagnostic d;
        d.rule = rule.id;
        d.severity = rule.severity;
        d.index = index;
        d.pc = pc;
        d.message = std::move(message);
        d.fixHint = std::move(fix_hint);
        diagnostics_.push_back(std::move(d));
    }

    /** Fold everything into @p report, keeping counts in catalog order. */
    void
    mergeInto(lint::LintReport &report) const
    {
        for (const lint::Diagnostic &d : diagnostics_)
            report.diagnostics.push_back(d);
        for (const lint::RuleInfo &info : lint::ruleCatalog()) {
            auto it = tallies_.find(info.id);
            if (it == tallies_.end())
                continue;
            report.counts.push_back(
                {it->first, it->second.severity, it->second.count});
            switch (it->second.severity) {
              case lint::Severity::Error:
                report.errors += it->second.count;
                break;
              case lint::Severity::Warn:
                report.warnings += it->second.count;
                break;
              case lint::Severity::Info:
                report.infos += it->second.count;
                break;
            }
            obs::MetricsRegistry::global().addCounter(
                "flow." + it->first + ".violations", it->second.count);
        }
    }

  private:
    struct Tally
    {
        lint::Severity severity = lint::Severity::Error;
        std::uint64_t count = 0;
        std::uint64_t stored = 0;
    };

    std::uint64_t cap_;
    std::map<std::string, Tally> tallies_;
    std::vector<lint::Diagnostic> diagnostics_;
};

/** Whole-program rule ids selected by the run's enable/disable lists. */
std::vector<std::string>
resolveCfgRules(const lint::LintOptions &opts)
{
    std::vector<std::string> ids;
    for (const std::string &id : wholeProgramRuleIds()) {
        if (!opts.enable.empty() &&
            std::find(opts.enable.begin(), opts.enable.end(), id) ==
                opts.enable.end())
            continue;
        if (std::find(opts.disable.begin(), opts.disable.end(), id) !=
            opts.disable.end())
            continue;
        ids.push_back(id);
    }
    return ids;
}

/** Regions via the store when enabled, rebuilding on any miss. */
void
resolveRegions(FlowResult &result, const ChampSimTrace &trace,
               const std::string &digest_hex, const FlowOptions &opts)
{
    if (opts.regionUops == 0)
        return;
    obs::ScopeTimer timer("analyze.regions");
    store::Store *cache =
        opts.useStore ? store::Store::global() : nullptr;
    if (cache != nullptr) {
        std::vector<std::uint64_t> bbv_bits;
        std::vector<std::uint64_t> mav_bits;
        if (cache->loadBits(store::kRegionBbvArtifact,
                            bbvKey(digest_hex, opts.regionUops),
                            bbv_bits) &&
            cache->loadBits(store::kRegionMavArtifact,
                            mavKey(digest_hex, opts.regionUops),
                            mav_bits) &&
            result.regions.fromBits(bbv_bits, mav_bits)) {
            result.regionsFromStore = true;
            return;
        }
    }
    result.regions =
        buildRegions(trace, result.cfg, opts.regionUops);
    if (cache != nullptr) {
        cache->putBits(store::kRegionBbvArtifact,
                       bbvKey(digest_hex, opts.regionUops),
                       result.regions.bbvBits());
        cache->putBits(store::kRegionMavArtifact,
                       mavKey(digest_hex, opts.regionUops),
                       result.regions.mavBits());
    }
}

/** The shared tail: CFG, dataflow, whole-program rules, regions. */
void
analyzeTail(FlowResult &result, const ChampSimTrace &trace,
            const std::string &digest_hex, const FlowOptions &opts)
{
    {
        obs::ScopeTimer timer("analyze.cfg");
        result.cfg =
            buildCfg(trace, opts.lint.limits.maxContiguousStep);
    }
    {
        obs::ScopeTimer timer("analyze.dataflow");
        result.dataflow = solveDataflow(result.cfg);
    }
    {
        obs::ScopeTimer timer("analyze.rules");
        CfgSink sink(opts.lint.maxDiagnosticsPerRule);
        runCfgRules(result.cfg, result.dataflow, opts.lint.limits,
                    resolveCfgRules(opts.lint), sink);
        sink.mergeInto(result.report);
    }
    resolveRegions(result, trace, digest_hex, opts);

    obs::MetricsRegistry &metrics = obs::MetricsRegistry::global();
    metrics.addCounter("flow.analyses");
    metrics.addCounter("flow.blocks", result.cfg.blocks.size());
    metrics.addCounter("flow.edges", result.cfg.edges.size());
    metrics.addCounter("flow.teleports", result.cfg.teleports);
    metrics.addCounter("flow.regions", result.regions.numRegions);
    metrics.addCounter("flow.chains", result.dataflow.chains.size());
}

} // namespace

FlowResult
analyzeTrace(const ChampSimTrace &trace, const FlowOptions &opts)
{
    FlowResult result;
    {
        obs::ScopeTimer timer("analyze.lint");
        result.report = lint::lintTrace(trace, opts.lint);
    }
    analyzeTail(result, trace,
                store::digestChampSimTrace(trace).hex(), opts);
    return result;
}

FlowResult
analyzeConverted(const CvpTrace &cvp, const ChampSimTrace &trace,
                 const FlowOptions &opts)
{
    FlowResult result;
    {
        obs::ScopeTimer timer("analyze.lint");
        result.report = lint::lintConverted(cvp, trace, opts.lint);
    }
    analyzeTail(result, trace, store::digestCvpTrace(cvp).hex(), opts);
    return result;
}

void
writeAnalysisJson(std::ostream &os, const FlowResult &result,
                  const std::string &name)
{
    std::ostringstream report;
    lint::writeReportJson(report, result.report, name);
    std::string body = report.str();
    body.pop_back();   // re-open the report object to append our keys
    os << body << ", \"cfg\": {\"blocks\": " << result.cfg.blocks.size()
       << ", \"edges\": " << result.cfg.edges.size()
       << ", \"teleports\": " << result.cfg.teleports
       << ", \"entry_pc\": \"0x" << std::hex
       << (result.cfg.blocks.empty()
               ? 0
               : result.cfg.blocks[result.cfg.entryBlock].start)
       << std::dec << "\", \"chains\": " << result.dataflow.chains.size()
       << ", \"chain_links\": " << result.dataflow.chainLinks
       << "}, \"regions\": {\"count\": " << result.regions.numRegions
       << ", \"uops\": " << result.regions.regionUops
       << ", \"blocks\": " << result.regions.blockPcs.size()
       << ", \"from_store\": "
       << (result.regionsFromStore ? "true" : "false") << "}}";
}

void
writeAnalysisText(std::ostream &os, const FlowResult &result,
                  const std::string &name)
{
    lint::writeReportText(os, result.report, name);
    os << "  cfg: " << result.cfg.blocks.size() << " block(s), "
       << result.cfg.edges.size() << " edge(s), " << result.cfg.teleports
       << " teleport(s), " << result.dataflow.chains.size()
       << " def-use chain(s) / " << result.dataflow.chainLinks
       << " link(s)\n"
       << "  regions: " << result.regions.numRegions << " x "
       << result.regions.regionUops << " µops over "
       << result.regions.blockPcs.size() << " block(s)"
       << (result.regionsFromStore ? " [store]" : "") << "\n";
}

} // namespace flow
} // namespace trb
