/**
 * @file
 * trb::flow -- whole-program CFG reconstruction over converted µop
 * streams.
 *
 * One linear pass over a ChampSim trace recovers the static control-flow
 * graph the dynamic stream is an unrolling of: basic blocks keyed by
 * their first PC (leaders are the trace entry, every record following a
 * branch, and every fall-through discontinuity), edges from observed
 * taken-branch targets plus contiguous static fall-through, with call
 * and return edges classified through the patched deduction rules.
 *
 * The same pass collects the whole-program facts the CFG lint rules
 * need and a streaming scan cannot see:
 *
 *  - a canonical register signature per static PC (the union of source
 *    and destination registers over every dynamic occurrence), so an
 *    occurrence that *drops* a destination is a witnessed stale
 *    definition, reported when a later block reads the register;
 *  - per-block entry provenance (edge-explained vs teleported), the
 *    unreachable-block evidence;
 *  - per-block fall-through exit points, the inconsistent-fall-through
 *    evidence;
 *  - the call-site fall-through set versus observed return targets, the
 *    call/return-edge balance evidence;
 *  - per-block dynamic memory summaries (load/store mix, stride
 *    classes, cacheline footprint) for the region signatures.
 *
 * Blocks, edges and facts are all in stream-discovery order, so the
 * whole structure is deterministic for a given trace regardless of
 * TRB_JOBS (the builder itself is single-threaded per trace).
 */

#ifndef TRB_FLOW_CFG_HH
#define TRB_FLOW_CFG_HH

#include <bitset>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hh"
#include "trace/champsim_trace.hh"

namespace trb
{
namespace flow
{

/** How an observed block-to-block transition is explained. */
enum class EdgeKind : std::uint8_t
{
    Fallthrough,   //!< contiguous static successor (+2 split / +4 instr)
    Taken,         //!< taken jump or conditional
    Call,          //!< taken branch deduced DirectCall/IndirectCall
    Return,        //!< taken branch deduced Return
};

/** Stable lower-case name of an edge kind. */
const char *edgeKindName(EdgeKind kind);

/** Register space of the canonical per-PC signatures (RegId is u8). */
constexpr std::size_t kRegSpace = 256;

/** Per-block cacheline sets saturate here (footprint stays bounded). */
constexpr std::size_t kFootprintCap = 4096;

/** Canonical signature of one static µop PC (union over occurrences). */
struct PcSig
{
    std::bitset<kRegSpace> dsts;
    std::bitset<kRegSpace> srcs;
    bool isBranch = false;
    std::uint64_t occurrences = 0;
};

/** Dynamic memory behaviour of one block, accumulated over the run. */
struct BlockMemSummary
{
    std::uint64_t loads = 0;        //!< µops with a memory source
    std::uint64_t stores = 0;       //!< µops with a memory destination
    std::uint64_t strideZero = 0;   //!< same address as last visit of pc
    std::uint64_t strideUnit = 0;   //!< |delta| <= 64 (next line/element)
    std::uint64_t stridePage = 0;   //!< |delta| <= 4096 (strided)
    std::uint64_t strideFar = 0;    //!< larger jumps (irregular)
    std::uint64_t lines = 0;        //!< distinct cachelines touched
    bool linesSaturated = false;    //!< true: capped at kFootprintCap
};

/** One reconstructed basic block. */
struct BasicBlock
{
    Addr start = 0;                //!< leader PC (block key)
    Addr end = 0;                  //!< last µop PC (longest occurrence)
    std::uint32_t numUops = 0;     //!< µops in the longest occurrence
    std::vector<Addr> memberPcs;   //!< µop PCs of the longest occurrence

    std::uint64_t execCount = 0;   //!< dynamic entries
    std::uint64_t uopCount = 0;    //!< dynamic µops attributed

    bool endsInBranch = false;     //!< longest occurrence ends in a branch
    BranchType terminator = BranchType::NotBranch;

    std::uint64_t entries = 0;           //!< occurrences entered mid-stream
    std::uint64_t explainedEntries = 0;  //!< entries through an edge

    BlockMemSummary mem;
};

/** One CFG edge with its dynamic traversal count. */
struct Edge
{
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    EdgeKind kind = EdgeKind::Fallthrough;
    std::uint64_t count = 0;
};

/** A cross-block read of a register whose definition was dropped. */
struct StaleRead
{
    Addr usePc = 0;
    Addr defPc = 0;             //!< PC whose canonical def went missing
    std::uint64_t useIndex = 0; //!< µop-stream index of the read
    RegId reg = 0;
    std::uint32_t useBlock = 0;
    std::uint32_t defBlock = 0;
};

/** One observed non-taken exit point of a block. */
struct FallthroughExit
{
    Addr exitPc = 0;     //!< last µop of the occurrence
    Addr targetPc = 0;   //!< PC the stream continued at
    std::uint64_t count = 0;
    bool contiguous = false;  //!< +2/+4 step (an edge) vs teleport
};

/** Dynamic statistics of one observed return-target PC. */
struct ReturnTarget
{
    Addr target = 0;
    std::uint64_t count = 0;
    std::uint64_t firstIndex = 0;  //!< stream index of the first return
    Addr firstPc = 0;              //!< PC of the first returning µop
};

/** The reconstructed whole-program view. */
struct Cfg
{
    std::vector<BasicBlock> blocks;   //!< discovery order
    std::vector<Edge> edges;

    /** Edge indices leaving / entering each block (parallel to blocks). */
    std::vector<std::vector<std::uint32_t>> succs;
    std::vector<std::vector<std::uint32_t>> preds;

    /** Leader PC -> block index. */
    std::unordered_map<Addr, std::uint32_t> blockAt;

    /** Canonical per-PC signatures (every executed µop PC). */
    std::unordered_map<Addr, PcSig> pcSigs;

    std::uint32_t entryBlock = 0;     //!< block of the first record
    std::uint64_t teleports = 0;      //!< transitions no edge explains

    /** Stream index of each block's first occurrence (warm-start test). */
    std::vector<std::uint64_t> firstSeen;

    // -- facts for the whole-program lint rules ------------------------
    std::vector<StaleRead> staleReads;       //!< non-flags registers
    std::vector<StaleRead> staleFlagReads;   //!< the flags register
    std::vector<std::vector<FallthroughExit>> fallExits;  //!< per block
    std::unordered_set<Addr> callSiteReturnPcs;  //!< call µop PC + 4
    std::vector<ReturnTarget> returnTargets;
    std::uint64_t flagsDefs = 0;       //!< dynamic flags-writing µops
    std::uint64_t flagsReads = 0;      //!< dynamic flags-reading µops
    std::uint64_t firstFlagsDefIndex = 0;  //!< valid when flagsDefs > 0

    /** Convenience: is @p pc a block leader? */
    bool isLeader(Addr pc) const { return blockAt.count(pc) != 0; }
};

/**
 * Largest forward PC step accepted as a static fall-through by default
 * (see lint::LintLimits::maxContiguousStep, which overrides it).
 */
constexpr std::uint64_t kMaxContiguousStep = 64;

/**
 * Reconstruct the CFG and whole-program facts from one trace.  A
 * forward PC step of at most @p maxContiguousStep across a non-taken
 * transition is a fall-through edge; anything else is a teleport.
 */
Cfg buildCfg(ChampSimView trace,
             std::uint64_t maxContiguousStep = kMaxContiguousStep);

} // namespace flow
} // namespace trb

#endif // TRB_FLOW_CFG_HH
