/**
 * @file
 * The whole-program lint rules: the checks a linear scan cannot make
 * because their evidence spans basic blocks.
 *
 * These rules live in the trb::lint catalog (same ids, severities,
 * Diagnostic type and report machinery as the streaming rules, marked
 * RuleInfo::wholeProgram) but run here, over the reconstructed Cfg and
 * its Dataflow solution, instead of inside the streaming Linter:
 *
 *  - cfg-stale-def:      a dynamic occurrence dropped a destination its
 *                        static µop canonically writes, and a later
 *                        *different* block read the register;
 *  - cfg-unreachable:    a non-entry block every one of whose entries
 *                        was a teleport (no fall-through, taken, call
 *                        or return edge ever explained it);
 *  - cfg-fallthrough:    a block with more than one fall-through exit
 *                        point or more than one fall-through successor;
 *  - cfg-call-balance:   more dynamic returns to never-a-call-site
 *                        targets than the RAS warm-up slack allows;
 *  - cfg-flag-staleness: a cross-block flags read whose producer
 *                        dropped the flags destination, or a
 *                        flags-reading block no flags definition
 *                        reaches (modulo the warm-start exemption).
 */

#ifndef TRB_FLOW_RULES_HH
#define TRB_FLOW_RULES_HH

#include <string>
#include <vector>

#include "flow/cfg.hh"
#include "flow/dataflow.hh"
#include "lint/rule.hh"

namespace trb
{
namespace flow
{

/** Catalog-order ids of the whole-program rules. */
std::vector<std::string> wholeProgramRuleIds();

/**
 * Run the whole-program rules over @p cfg / @p df, reporting through
 * @p sink.  @p enabled lists the rule ids to run (whole-program ids
 * only; ids are assumed validated against the catalog).
 */
void runCfgRules(const Cfg &cfg, const Dataflow &df,
                 const lint::LintLimits &limits,
                 const std::vector<std::string> &enabled,
                 lint::DiagnosticSink &sink);

} // namespace flow
} // namespace trb

#endif // TRB_FLOW_RULES_HH
