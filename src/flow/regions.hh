/**
 * @file
 * trb::flow region signatures: fixed-length execution regions projected
 * onto two matrices, the classic SimPoint-style inputs for phase
 * detection and sampled simulation --
 *
 *  - the basic-block vector (BBV): regions x blocks, each cell the
 *    number of µops the region spent in that block (columns are block
 *    start PCs, ascending, so the matrix is trace-content-addressed and
 *    independent of block discovery order);
 *  - the memory-access vector (MAV): regions x kMavFeatures dynamic
 *    memory features (load/store mix, footprint, stride classes).
 *
 * Both serialize to flat u64 vectors with a magic/version header and
 * round-trip bit-identically through the trb::store bit-pattern
 * artifact kinds (kRegionBbvArtifact / kRegionMavArtifact), keyed by
 * the trace's content digest, the analyzer format version and the
 * region length.  Building is a single linear pass over the trace, so
 * the result is deterministic for a given (trace, regionUops) pair at
 * any TRB_JOBS.
 */

#ifndef TRB_FLOW_REGIONS_HH
#define TRB_FLOW_REGIONS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "flow/cfg.hh"

namespace trb
{
namespace flow
{

/** Bump on any change to region semantics or serialization layout. */
constexpr std::uint32_t kFlowFormatVersion = 1;

/** MAV feature count and column meanings. */
enum MavFeature : std::size_t
{
    kMavLoads = 0,          //!< µops with a memory source
    kMavStores,             //!< µops with a memory destination
    kMavUniqueLines,        //!< distinct cachelines touched in the region
    kMavNewLines,           //!< lines never touched by an earlier region
    kMavUniquePages,        //!< distinct 4 KiB pages touched
    kMavStrideZero,         //!< same address as the PC's previous access
    kMavStrideUnit,         //!< |delta| <= one cacheline
    kMavStridePage,         //!< |delta| <= one page
    kMavStrideFar,          //!< larger deltas (irregular)
    kMavExtraAccesses,      //!< memory operands beyond the first per µop
    kMavFeatures,           //!< column count
};

/** The two per-region matrices (rows = regions, see file comment). */
struct RegionSignatures
{
    std::uint64_t regionUops = 0;   //!< region length (µops); last is partial
    std::uint64_t numRegions = 0;
    std::vector<Addr> blockPcs;     //!< BBV columns: block starts, ascending
    std::vector<std::uint64_t> bbv; //!< row-major, numRegions x blockPcs
    std::vector<std::uint64_t> mav; //!< row-major, numRegions x kMavFeatures

    bool empty() const { return numRegions == 0; }

    std::uint64_t bbvAt(std::uint64_t region, std::size_t col) const
    {
        return bbv[region * blockPcs.size() + col];
    }
    std::uint64_t mavAt(std::uint64_t region, std::size_t feature) const
    {
        return mav[region * kMavFeatures + feature];
    }

    /** Serialize to / parse from the store's u64 bit-pattern payloads. */
    std::vector<std::uint64_t> bbvBits() const;
    std::vector<std::uint64_t> mavBits() const;

    /**
     * Rebuild from the two payloads.  False (and *this unchanged) when
     * either header or the cross-checked dimensions are inconsistent.
     */
    bool fromBits(const std::vector<std::uint64_t> &bbv_bits,
                  const std::vector<std::uint64_t> &mav_bits);
};

/** Store keys for the two artifacts of (trace digest, region length). */
std::string bbvKey(const std::string &traceDigestHex,
                   std::uint64_t regionUops);
std::string mavKey(const std::string &traceDigestHex,
                   std::uint64_t regionUops);

/**
 * Build both matrices in one pass over @p trace.  @p cfg must be the
 * CFG reconstructed from the same trace (its leader set attributes each
 * µop to a block).  @p regionUops of 0 disables region building.
 */
RegionSignatures buildRegions(ChampSimView trace, const Cfg &cfg,
                              std::uint64_t regionUops);

} // namespace flow
} // namespace trb

#endif // TRB_FLOW_REGIONS_HH
