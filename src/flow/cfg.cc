#include "flow/cfg.hh"

#include <array>
#include <map>
#include <tuple>

#include "trace/branch_deduce.hh"

namespace trb
{
namespace flow
{

const char *
edgeKindName(EdgeKind kind)
{
    switch (kind) {
      case EdgeKind::Fallthrough: return "fallthrough";
      case EdgeKind::Taken: return "taken";
      case EdgeKind::Call: return "call";
      case EdgeKind::Return: return "return";
    }
    return "?";
}

namespace
{

/** Pending stale-definition state of one register. */
struct StaleState
{
    bool pending = false;
    Addr defPc = 0;
    std::uint32_t defBlock = 0;
};

} // namespace

Cfg
buildCfg(ChampSimView trace, std::uint64_t maxContiguousStep)
{
    // Real instructions are 4-byte spaced and the converter parks the
    // second µop of a base-update split at pc+2, but conditionally
    // emitted helper µops can skip a slot or two -- so contiguity is a
    // small forward window, not an exact step.
    auto contiguousStep = [maxContiguousStep](Addr from, Addr to) {
        return to > from && to - from <= maxContiguousStep;
    };

    Cfg cfg;
    if (trace.empty())
        return cfg;

    // Pass 1: canonical per-PC signatures (union over occurrences) and
    // the leader set.  A record leads a block when it is the trace
    // entry, follows any branch, or follows a fall-through
    // discontinuity (the teleport case -- it still starts a block, just
    // one with no explaining edge).
    std::unordered_set<Addr> leaders;
    leaders.insert(trace[0].ip);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const ChampSimRecord &rec = trace[i];
        PcSig &sig = cfg.pcSigs[rec.ip];
        ++sig.occurrences;
        sig.isBranch = sig.isBranch || rec.isBranch != 0;
        for (RegId d : rec.destRegs)
            if (d != 0)
                sig.dsts.set(d);
        for (RegId s : rec.srcRegs)
            if (s != 0)
                sig.srcs.set(s);
        if (i + 1 < trace.size() &&
            (rec.isBranch != 0 ||
             !contiguousStep(rec.ip, trace[i + 1].ip)))
            leaders.insert(trace[i + 1].ip);
    }

    // Pass 2: blocks, edges, and the whole-program facts.
    std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint8_t>,
             std::uint32_t>
        edgeIndex;
    std::unordered_map<Addr, std::uint32_t> returnIndex;
    std::unordered_map<Addr, Addr> lastEa;   // per memory PC, for strides
    std::vector<std::unordered_set<Addr>> blockLines;
    std::array<StaleState, kRegSpace> stale = {};

    auto blockIndex = [&](Addr pc, std::uint64_t index) {
        auto it = cfg.blockAt.find(pc);
        if (it != cfg.blockAt.end())
            return it->second;
        auto idx = static_cast<std::uint32_t>(cfg.blocks.size());
        cfg.blockAt.emplace(pc, idx);
        BasicBlock block;
        block.start = pc;
        block.end = pc;
        cfg.blocks.push_back(std::move(block));
        cfg.firstSeen.push_back(index);
        cfg.fallExits.emplace_back();
        cfg.succs.emplace_back();
        cfg.preds.emplace_back();
        blockLines.emplace_back();
        return idx;
    };

    auto addEdge = [&](std::uint32_t from, std::uint32_t to,
                       EdgeKind kind) {
        auto key = std::make_tuple(from, to,
                                   static_cast<std::uint8_t>(kind));
        auto it = edgeIndex.find(key);
        if (it == edgeIndex.end()) {
            auto idx = static_cast<std::uint32_t>(cfg.edges.size());
            cfg.edges.push_back({from, to, kind, 1});
            cfg.succs[from].push_back(idx);
            cfg.preds[to].push_back(idx);
            edgeIndex.emplace(key, idx);
        } else {
            ++cfg.edges[it->second].count;
        }
    };

    auto addFallExit = [&](std::uint32_t from, Addr exitPc, Addr targetPc,
                           bool contiguous) {
        for (FallthroughExit &exit : cfg.fallExits[from]) {
            if (exit.exitPc == exitPc && exit.targetPc == targetPc) {
                ++exit.count;
                return;
            }
        }
        cfg.fallExits[from].push_back({exitPc, targetPc, 1, contiguous});
    };

    std::uint32_t cur = 0;
    std::vector<Addr> occPcs;
    occPcs.reserve(64);

    auto endOccurrence = [&](const ChampSimRecord &last) {
        BasicBlock &block = cfg.blocks[cur];
        if (occPcs.size() > block.memberPcs.size()) {
            block.memberPcs = occPcs;
            block.numUops = static_cast<std::uint32_t>(occPcs.size());
            block.end = occPcs.back();
            block.endsInBranch = last.isBranch != 0;
            block.terminator =
                deduceBranchType(last, DeductionRules::Patched);
        }
    };

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const ChampSimRecord &rec = trace[i];

        if (i == 0) {
            cur = blockIndex(rec.ip, 0);
            cfg.entryBlock = cur;
            ++cfg.blocks[cur].execCount;
        } else if (leaders.count(rec.ip) != 0) {
            const ChampSimRecord &prev = trace[i - 1];
            endOccurrence(prev);

            std::uint32_t from = cur;
            std::uint32_t to = blockIndex(rec.ip, i);
            ++cfg.blocks[to].entries;

            bool explained = false;
            EdgeKind kind = EdgeKind::Fallthrough;
            if (prev.isBranch != 0 && prev.branchTaken != 0) {
                BranchType t =
                    deduceBranchType(prev, DeductionRules::Patched);
                if (t == BranchType::DirectCall ||
                    t == BranchType::IndirectCall) {
                    kind = EdgeKind::Call;
                    cfg.callSiteReturnPcs.insert(prev.ip + 4);
                } else if (t == BranchType::Return) {
                    kind = EdgeKind::Return;
                    auto [it, fresh] = returnIndex.try_emplace(
                        rec.ip,
                        static_cast<std::uint32_t>(
                            cfg.returnTargets.size()));
                    if (fresh)
                        cfg.returnTargets.push_back(
                            {rec.ip, 0, i - 1, prev.ip});
                    ++cfg.returnTargets[it->second].count;
                } else {
                    kind = EdgeKind::Taken;
                }
                explained = true;
            } else {
                bool contiguous = contiguousStep(prev.ip, rec.ip);
                addFallExit(from, prev.ip, rec.ip, contiguous);
                if (contiguous) {
                    kind = EdgeKind::Fallthrough;
                    explained = true;
                } else {
                    ++cfg.teleports;
                }
            }
            if (explained) {
                addEdge(from, to, kind);
                ++cfg.blocks[to].explainedEntries;
            }
            cur = to;
            ++cfg.blocks[to].execCount;
            occPcs.clear();
        }

        BasicBlock &block = cfg.blocks[cur];
        ++block.uopCount;
        occPcs.push_back(rec.ip);

        // -- memory summary --------------------------------------------
        const bool is_load = rec.isLoad();
        const bool is_store = rec.isStore();
        if (is_load)
            ++block.mem.loads;
        if (is_store)
            ++block.mem.stores;
        if (is_load || is_store) {
            Addr ea = rec.srcMem[0] != 0 ? rec.srcMem[0] : rec.destMem[0];
            auto [it, fresh] = lastEa.try_emplace(rec.ip, ea);
            if (!fresh) {
                Addr prev_ea = it->second;
                std::uint64_t delta =
                    ea > prev_ea ? ea - prev_ea : prev_ea - ea;
                if (delta == 0)
                    ++block.mem.strideZero;
                else if (delta <= kLineBytes)
                    ++block.mem.strideUnit;
                else if (delta <= 4096)
                    ++block.mem.stridePage;
                else
                    ++block.mem.strideFar;
                it->second = ea;
            }
            std::unordered_set<Addr> &lines = blockLines[cur];
            if (!block.mem.linesSaturated) {
                for (Addr a : rec.srcMem)
                    if (a != 0)
                        lines.insert(lineAddr(a));
                for (Addr a : rec.destMem)
                    if (a != 0)
                        lines.insert(lineAddr(a));
                if (lines.size() > kFootprintCap)
                    block.mem.linesSaturated = true;
            }
        }

        // -- stale-definition tracking ---------------------------------
        // Reads first: a read of a register whose canonical producer
        // dropped its destination at an earlier occurrence, observed in
        // a *different* block, is the cross-block stale-def witness.
        for (RegId r : rec.srcRegs) {
            if (r == 0)
                continue;
            StaleState &st = stale[r];
            if (st.pending && st.defBlock != cur) {
                StaleRead ev;
                ev.usePc = rec.ip;
                ev.defPc = st.defPc;
                ev.useIndex = i;
                ev.reg = r;
                ev.useBlock = cur;
                ev.defBlock = st.defBlock;
                if (r == champsim::kFlags)
                    cfg.staleFlagReads.push_back(ev);
                else
                    cfg.staleReads.push_back(ev);
                st.pending = false;
            }
        }
        // Then the defs: every canonical destination of this PC either
        // materialises (freshening the register) or was dropped by this
        // occurrence (staling it).  A drop with both destination slots
        // occupied is ChampSim-format truncation (the record physically
        // holds two destinations), tolerated like the converter's
        // truncatedDstRegs counter; a drop with a slot *free* has no
        // such excuse and is the witnessed defect.
        const PcSig &sig = cfg.pcSigs[rec.ip];
        if (sig.dsts.any()) {
            unsigned ndst = 0;
            for (RegId d : rec.destRegs)
                if (d != 0)
                    ++ndst;
            for (std::size_t r = 1; r < kRegSpace; ++r) {
                if (!sig.dsts.test(r))
                    continue;
                StaleState &st = stale[r];
                if (rec.writesReg(static_cast<RegId>(r))) {
                    st.pending = false;
                } else if (ndst < champsim::kMaxDst) {
                    st.pending = true;
                    st.defPc = rec.ip;
                    st.defBlock = cur;
                }
            }
        }

        // -- flags statistics ------------------------------------------
        if (rec.writesReg(champsim::kFlags)) {
            if (cfg.flagsDefs == 0)
                cfg.firstFlagsDefIndex = i;
            ++cfg.flagsDefs;
        }
        if (rec.readsReg(champsim::kFlags))
            ++cfg.flagsReads;
    }
    endOccurrence(trace[trace.size() - 1]);

    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        BlockMemSummary &mem = cfg.blocks[b].mem;
        mem.lines = blockLines[b].size();
    }
    return cfg;
}

} // namespace flow
} // namespace trb
