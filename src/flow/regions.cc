#include "flow/regions.hh"

#include <algorithm>
#include <unordered_set>

namespace trb
{
namespace flow
{

namespace
{

// "trbfbbv1" / "trbfmav1" as little-endian u64 literals.
constexpr std::uint64_t kBbvMagic = 0x3176626266627274ULL;
constexpr std::uint64_t kMavMagic = 0x3176616d66627274ULL;

/** Header layout shared by both payloads (5 words). */
constexpr std::size_t kHeaderWords = 5;

constexpr Addr kPageShift = 12;

} // namespace

std::vector<std::uint64_t>
RegionSignatures::bbvBits() const
{
    std::vector<std::uint64_t> bits;
    bits.reserve(kHeaderWords + blockPcs.size() + bbv.size());
    bits.push_back(kBbvMagic);
    bits.push_back(kFlowFormatVersion);
    bits.push_back(regionUops);
    bits.push_back(numRegions);
    bits.push_back(blockPcs.size());
    bits.insert(bits.end(), blockPcs.begin(), blockPcs.end());
    bits.insert(bits.end(), bbv.begin(), bbv.end());
    return bits;
}

std::vector<std::uint64_t>
RegionSignatures::mavBits() const
{
    std::vector<std::uint64_t> bits;
    bits.reserve(kHeaderWords + mav.size());
    bits.push_back(kMavMagic);
    bits.push_back(kFlowFormatVersion);
    bits.push_back(regionUops);
    bits.push_back(numRegions);
    bits.push_back(kMavFeatures);
    bits.insert(bits.end(), mav.begin(), mav.end());
    return bits;
}

bool
RegionSignatures::fromBits(const std::vector<std::uint64_t> &bbv_bits,
                           const std::vector<std::uint64_t> &mav_bits)
{
    if (bbv_bits.size() < kHeaderWords || mav_bits.size() < kHeaderWords)
        return false;
    if (bbv_bits[0] != kBbvMagic || mav_bits[0] != kMavMagic)
        return false;
    if (bbv_bits[1] != kFlowFormatVersion ||
        mav_bits[1] != kFlowFormatVersion)
        return false;
    const std::uint64_t rlen = bbv_bits[2];
    const std::uint64_t regions = bbv_bits[3];
    const std::uint64_t blocks = bbv_bits[4];
    if (mav_bits[2] != rlen || mav_bits[3] != regions ||
        mav_bits[4] != kMavFeatures)
        return false;
    if (bbv_bits.size() != kHeaderWords + blocks + regions * blocks)
        return false;
    if (mav_bits.size() != kHeaderWords + regions * kMavFeatures)
        return false;

    regionUops = rlen;
    numRegions = regions;
    blockPcs.assign(bbv_bits.begin() + kHeaderWords,
                    bbv_bits.begin() +
                        static_cast<std::ptrdiff_t>(kHeaderWords + blocks));
    bbv.assign(bbv_bits.begin() +
                   static_cast<std::ptrdiff_t>(kHeaderWords + blocks),
               bbv_bits.end());
    mav.assign(mav_bits.begin() + kHeaderWords, mav_bits.end());
    return true;
}

std::string
bbvKey(const std::string &traceDigestHex, std::uint64_t regionUops)
{
    return "flow-bbv;v=" + std::to_string(kFlowFormatVersion) +
           ";trace=" + traceDigestHex +
           ";rlen=" + std::to_string(regionUops);
}

std::string
mavKey(const std::string &traceDigestHex, std::uint64_t regionUops)
{
    return "flow-mav;v=" + std::to_string(kFlowFormatVersion) +
           ";trace=" + traceDigestHex +
           ";rlen=" + std::to_string(regionUops);
}

RegionSignatures
buildRegions(ChampSimView trace, const Cfg &cfg, std::uint64_t regionUops)
{
    RegionSignatures sig;
    sig.regionUops = regionUops;
    if (regionUops == 0 || trace.empty() || cfg.blocks.empty())
        return sig;

    // BBV columns: block start PCs ascending, independent of discovery
    // order, so identical traces always produce identical matrices.
    sig.blockPcs.reserve(cfg.blocks.size());
    for (const BasicBlock &block : cfg.blocks)
        sig.blockPcs.push_back(block.start);
    std::sort(sig.blockPcs.begin(), sig.blockPcs.end());
    std::unordered_map<Addr, std::size_t> colOf;
    colOf.reserve(sig.blockPcs.size());
    for (std::size_t c = 0; c < sig.blockPcs.size(); ++c)
        colOf.emplace(sig.blockPcs[c], c);

    const std::size_t ncols = sig.blockPcs.size();
    std::vector<std::uint64_t> bbvRow(ncols, 0);
    std::vector<std::uint64_t> mavRow(kMavFeatures, 0);
    std::unordered_set<Addr> regionLines;
    std::unordered_set<Addr> regionPages;
    std::unordered_set<Addr> seenLines;       // across the whole trace
    std::unordered_map<Addr, Addr> lastEa;    // per-PC stride continuation

    std::size_t curCol = 0;
    std::uint64_t inRegion = 0;

    auto flushRegion = [&]() {
        mavRow[kMavUniqueLines] = regionLines.size();
        mavRow[kMavUniquePages] = regionPages.size();
        sig.bbv.insert(sig.bbv.end(), bbvRow.begin(), bbvRow.end());
        sig.mav.insert(sig.mav.end(), mavRow.begin(), mavRow.end());
        ++sig.numRegions;
        std::fill(bbvRow.begin(), bbvRow.end(), 0);
        std::fill(mavRow.begin(), mavRow.end(), 0);
        regionLines.clear();
        regionPages.clear();
        inRegion = 0;
    };

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const ChampSimRecord &rec = trace[i];
        auto leader = cfg.blockAt.find(rec.ip);
        if (leader != cfg.blockAt.end())
            curCol = colOf.find(cfg.blocks[leader->second].start)->second;
        ++bbvRow[curCol];
        ++inRegion;

        if (rec.isLoad())
            ++mavRow[kMavLoads];
        if (rec.isStore())
            ++mavRow[kMavStores];

        std::uint64_t slots = 0;
        Addr firstEa = 0;
        for (Addr a : rec.srcMem) {
            if (a == 0)
                continue;
            if (firstEa == 0)
                firstEa = a;
            ++slots;
            if (seenLines.insert(lineAddr(a)).second)
                ++mavRow[kMavNewLines];
            regionLines.insert(lineAddr(a));
            regionPages.insert(a >> kPageShift);
        }
        for (Addr a : rec.destMem) {
            if (a == 0)
                continue;
            if (firstEa == 0)
                firstEa = a;
            ++slots;
            if (seenLines.insert(lineAddr(a)).second)
                ++mavRow[kMavNewLines];
            regionLines.insert(lineAddr(a));
            regionPages.insert(a >> kPageShift);
        }
        if (slots > 1)
            mavRow[kMavExtraAccesses] += slots - 1;
        if (firstEa != 0) {
            auto [it, fresh] = lastEa.try_emplace(rec.ip, firstEa);
            if (!fresh) {
                Addr prev = it->second;
                std::uint64_t delta =
                    firstEa > prev ? firstEa - prev : prev - firstEa;
                if (delta == 0)
                    ++mavRow[kMavStrideZero];
                else if (delta <= kLineBytes)
                    ++mavRow[kMavStrideUnit];
                else if (delta <= (Addr{1} << kPageShift))
                    ++mavRow[kMavStridePage];
                else
                    ++mavRow[kMavStrideFar];
                it->second = firstEa;
            }
        }

        if (inRegion == regionUops)
            flushRegion();
    }
    if (inRegion != 0)
        flushRegion();   // the trailing partial region
    return sig;
}

} // namespace flow
} // namespace trb
