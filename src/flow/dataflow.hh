/**
 * @file
 * trb::flow -- the classic worklist dataflow engine over a reconstructed
 * CFG.
 *
 * Two textbook problems, solved to a fixpoint with block-level transfer
 * functions built from the canonical per-PC register signatures:
 *
 *  - reaching definitions at definition-site granularity (one site per
 *    block x register, the downward-exposed def), forward may-analysis;
 *    def-use chains fall out as "upward-exposed use  x  reaching sites
 *    of its register";
 *  - liveness (backward may-analysis): liveIn = use | (liveOut - def).
 *
 * The instruction-pointer pseudo-register is excluded from the def-use
 * chain enumeration -- every branch writes it and every conditional
 * reads it, so its chains are control flow, not dataflow -- but it still
 * participates in the bit-level solutions.
 *
 * Everything is deterministic: blocks are processed from a worklist
 * seeded in block-discovery order, and the fixpoint is order-independent
 * (may-analyses over a join semilattice).
 */

#ifndef TRB_FLOW_DATAFLOW_HH
#define TRB_FLOW_DATAFLOW_HH

#include <bitset>
#include <cstdint>
#include <vector>

#include "flow/cfg.hh"

namespace trb
{
namespace flow
{

/** One reaching-definition site: the last def of @p reg in @p block. */
struct DefSite
{
    std::uint32_t block = 0;
    RegId reg = 0;
    Addr pc = 0;        //!< µop PC of the defining occurrence
};

/** One upward-exposed use and the definition sites reaching it. */
struct UseSite
{
    std::uint32_t block = 0;
    RegId reg = 0;
    Addr pc = 0;        //!< first µop in the block reading the register
    std::vector<std::uint32_t> defs;   //!< indices into Dataflow::defSites
};

/** The dataflow solution (all vectors parallel to Cfg::blocks). */
struct Dataflow
{
    /** Registers the block defines (downward-exposed). */
    std::vector<std::bitset<kRegSpace>> gen;

    /** Registers read before any in-block definition. */
    std::vector<std::bitset<kRegSpace>> upExposed;

    /** Liveness solution. */
    std::vector<std::bitset<kRegSpace>> liveIn;
    std::vector<std::bitset<kRegSpace>> liveOut;

    /** Register r has *some* definition reaching the block entry. */
    std::vector<std::bitset<kRegSpace>> reachAnyIn;

    /** All definition sites, block-discovery order. */
    std::vector<DefSite> defSites;

    /** Def-use chains (IP excluded; see file comment). */
    std::vector<UseSite> chains;

    std::uint64_t chainLinks = 0;    //!< total def->use links
    std::uint64_t iterations = 0;    //!< worklist pops until fixpoint
};

/** Solve both problems over @p cfg. */
Dataflow solveDataflow(const Cfg &cfg);

} // namespace flow
} // namespace trb

#endif // TRB_FLOW_DATAFLOW_HH
