#include "flow/rules.hh"

#include <algorithm>
#include <set>
#include <sstream>

namespace trb
{
namespace flow
{

namespace
{

std::string
hex(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

bool
wants(const std::vector<std::string> &enabled, const char *id)
{
    return std::find(enabled.begin(), enabled.end(), id) != enabled.end();
}

const lint::RuleInfo &
infoOf(const char *id)
{
    const lint::RuleInfo *info = lint::findRule(id);
    // The flow rules are registered unconditionally in the lint catalog;
    // a miss here is a programming error, not a data condition.
    return *info;
}

// ---------------------------------------------------------------------
// cfg-stale-def: a dropped canonical destination consumed cross-block.

void
checkStaleDefs(const Cfg &cfg, lint::DiagnosticSink &sink)
{
    const lint::RuleInfo &info = infoOf("cfg-stale-def");
    for (const StaleRead &ev : cfg.staleReads) {
        // The IP pseudo-register is control flow (branch-deduce
        // territory), not a dataflow value.
        if (ev.reg == champsim::kInstructionPointer)
            continue;
        sink.report(info, ev.useIndex, ev.usePc,
                    "reads r" + std::to_string(ev.reg) +
                        " whose producer at " + hex(ev.defPc) +
                        " (block " + hex(cfg.blocks[ev.defBlock].start) +
                        ") dropped the destination at its last "
                        "occurrence -- the value observed here is stale",
                    "emit the full destination-register set on every "
                    "dynamic occurrence of the producing µop");
    }
}

// ---------------------------------------------------------------------
// cfg-unreachable: blocks only ever entered by teleport.

void
checkUnreachable(const Cfg &cfg, lint::DiagnosticSink &sink)
{
    const lint::RuleInfo &info = infoOf("cfg-unreachable");
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        const BasicBlock &block = cfg.blocks[b];
        if (b == cfg.entryBlock || block.entries == 0 ||
            block.explainedEntries != 0)
            continue;
        sink.report(info, cfg.firstSeen[b], block.start,
                    "block entered " + std::to_string(block.entries) +
                        " time(s), never through a fall-through, taken, "
                        "call or return edge -- it is unreachable in the "
                        "reconstructed CFG",
                    "the stream teleports into this block; check the "
                    "converter's branch-target and fall-through "
                    "emission around its predecessors");
    }
}

// ---------------------------------------------------------------------
// cfg-fallthrough: one fall-through exit point, one successor.

void
checkFallthrough(const Cfg &cfg, lint::DiagnosticSink &sink)
{
    const lint::RuleInfo &info = infoOf("cfg-fallthrough");
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        const std::vector<FallthroughExit> &exits = cfg.fallExits[b];
        if (exits.size() < 2)
            continue;
        // A base-update split parks its second µop at pc+2, so exits
        // within one 4-byte instruction slot are the same exit point.
        std::set<Addr> exitSlots;
        std::set<Addr> targets;
        for (const FallthroughExit &exit : exits) {
            exitSlots.insert(exit.exitPc & ~Addr{3});
            targets.insert(exit.targetPc);
        }
        if (exitSlots.size() < 2 && targets.size() < 2)
            continue;
        const FallthroughExit &first = exits.front();
        std::ostringstream msg;
        msg << "block " << hex(cfg.blocks[b].start)
            << " falls through inconsistently: " << exitSlots.size()
            << " exit point(s), " << targets.size()
            << " successor PC(s) (first " << hex(first.exitPc) << " -> "
            << hex(first.targetPc) << ", also ";
        const FallthroughExit &other = exits[1];
        msg << hex(other.exitPc) << " -> " << hex(other.targetPc) << ")";
        sink.report(info, cfg.firstSeen[b], cfg.blocks[b].start, msg.str(),
                    "a static block has exactly one not-taken successor; "
                    "diverging targets mean dropped or misplaced µops");
    }
}

// ---------------------------------------------------------------------
// cfg-call-balance: returns to PCs that are never a call site's
// fall-through, beyond the warm-up slack.

void
checkCallBalance(const Cfg &cfg, const lint::LintLimits &limits,
                 lint::DiagnosticSink &sink)
{
    const lint::RuleInfo &info = infoOf("cfg-call-balance");
    std::uint64_t unmatched = 0;
    const ReturnTarget *first = nullptr;
    std::uint64_t distinct = 0;
    for (const ReturnTarget &rt : cfg.returnTargets) {
        if (cfg.callSiteReturnPcs.count(rt.target) != 0)
            continue;
        unmatched += rt.count;
        ++distinct;
        if (first == nullptr || rt.firstIndex < first->firstIndex)
            first = &rt;
    }
    if (unmatched <= limits.rasSlack || first == nullptr)
        return;
    sink.report(info, first->firstIndex, first->firstPc,
                std::to_string(unmatched) + " return(s) to " +
                    std::to_string(distinct) +
                    " target(s) that are never an observed call site's "
                    "fall-through (first returns to " +
                    hex(first->target) + "); a trace captured "
                    "mid-program unwinds at most " +
                    std::to_string(limits.rasSlack) + " frame(s)",
                "call and return edges must pair up: check the "
                "converter's call-site PC+4 convention");
}

// ---------------------------------------------------------------------
// cfg-flag-staleness: dropped flags definitions consumed cross-block,
// and flags-reading blocks no definition reaches.

void
checkFlagStaleness(const Cfg &cfg, const Dataflow &df,
                   lint::DiagnosticSink &sink)
{
    const lint::RuleInfo &info = infoOf("cfg-flag-staleness");
    for (const StaleRead &ev : cfg.staleFlagReads)
        sink.report(info, ev.useIndex, ev.usePc,
                    "reads the flags whose producer at " + hex(ev.defPc) +
                        " dropped its flags destination at the last "
                        "occurrence -- the condition evaluated here is "
                        "stale",
                    "flag-writing µops must carry the flags destination "
                    "on every dynamic occurrence");

    for (const UseSite &use : df.chains) {
        if (use.reg != champsim::kFlags || !use.defs.empty())
            continue;
        if (cfg.flagsDefs == 0) {
            sink.report(info, cfg.firstSeen[use.block], use.pc,
                        "reads the flags but no µop in the whole trace "
                        "ever writes them",
                        "conditional branches need a flags producer; "
                        "check the converter's flag-register emission");
            continue;
        }
        // Warm-start exemption: a block whose first occurrence predates
        // every flags definition legitimately consumes pre-trace state.
        if (cfg.firstSeen[use.block] <= cfg.firstFlagsDefIndex)
            continue;
        sink.report(info, cfg.firstSeen[use.block], use.pc,
                    "block " + hex(cfg.blocks[use.block].start) +
                        " reads the flags but no flags definition "
                        "reaches it along any reconstructed path",
                    "a reachable flags producer must dominate every "
                    "flag-reading conditional; check the CFG around "
                    "this block's predecessors");
    }
}

} // namespace

std::vector<std::string>
wholeProgramRuleIds()
{
    std::vector<std::string> ids;
    for (const lint::RuleInfo &info : lint::ruleCatalog())
        if (info.wholeProgram)
            ids.emplace_back(info.id);
    return ids;
}

void
runCfgRules(const Cfg &cfg, const Dataflow &df,
            const lint::LintLimits &limits,
            const std::vector<std::string> &enabled,
            lint::DiagnosticSink &sink)
{
    if (wants(enabled, "cfg-stale-def"))
        checkStaleDefs(cfg, sink);
    if (wants(enabled, "cfg-unreachable"))
        checkUnreachable(cfg, sink);
    if (wants(enabled, "cfg-fallthrough"))
        checkFallthrough(cfg, sink);
    if (wants(enabled, "cfg-call-balance"))
        checkCallBalance(cfg, limits, sink);
    if (wants(enabled, "cfg-flag-staleness"))
        checkFlagStaleness(cfg, df, sink);
}

} // namespace flow
} // namespace trb
