/**
 * @file
 * trb::flow -- the whole-program trace analyzer facade.
 *
 * One call runs the full static-analysis pipeline over a converted
 * trace:
 *
 *   1. the streaming lint rules (the linear-scan Linter, unchanged);
 *   2. CFG reconstruction (flow/cfg.hh);
 *   3. the worklist dataflow solution (flow/dataflow.hh);
 *   4. the whole-program lint rules (flow/rules.hh), merged into the
 *      same LintReport -- one report, streaming and CFG findings side
 *      by side, rendered by the existing writeReportText/Json;
 *   5. the region signatures (flow/regions.hh), cached through
 *      trb::store when enabled (keyed by trace content digest +
 *      analyzer version + region length, so a warm store serves them
 *      back bit-identically with store.misses == 0).
 *
 * Observability: phases analyze.{lint,cfg,dataflow,rules,regions} in
 * the trb::obs profile, counters flow.{analyses,blocks,edges,
 * teleports,regions,chains} and flow.<rule>.violations in the global
 * registry.  Everything is deterministic per trace at any TRB_JOBS.
 */

#ifndef TRB_FLOW_ANALYZE_HH
#define TRB_FLOW_ANALYZE_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "flow/cfg.hh"
#include "flow/dataflow.hh"
#include "flow/regions.hh"
#include "lint/lint.hh"

namespace trb
{
namespace flow
{

/** Configuration of one whole-program analysis. */
struct FlowOptions
{
    /** Streaming + whole-program rule selection, limits and caps. */
    lint::LintOptions lint;

    /** Region length in µops; 0 skips the region signatures. */
    std::uint64_t regionUops = 10000;

    /**
     * Serve/publish region artifacts through Store::global() (a no-op
     * when no TRB_STORE is configured, exactly like the simulator).
     */
    bool useStore = true;

    /** Tag used in reports and logs. */
    std::string name;
};

/** Everything the analyzer learned about one trace. */
struct FlowResult
{
    /** Streaming findings plus the whole-program findings. */
    lint::LintReport report;

    Cfg cfg;
    Dataflow dataflow;
    RegionSignatures regions;

    /** True when both region artifacts came out of the store. */
    bool regionsFromStore = false;
};

/** Analyze a ChampSim trace alone (stream-only lint rules). */
FlowResult analyzeTrace(const ChampSimTrace &trace,
                        const FlowOptions &opts = {});

/** Analyze a converted trace against its originating CVP-1 stream. */
FlowResult analyzeConverted(const CvpTrace &cvp, const ChampSimTrace &trace,
                            const FlowOptions &opts = {});

/**
 * Machine-readable analysis object: the writeReportJson object plus
 * "cfg": {"blocks", "edges", "teleports", "entry_pc", "chains",
 * "chain_links"} and "regions": {"count", "uops", "blocks",
 * "from_store"}.
 */
void writeAnalysisJson(std::ostream &os, const FlowResult &result,
                       const std::string &name);

/** Human-readable analysis summary (report + CFG/region footer). */
void writeAnalysisText(std::ostream &os, const FlowResult &result,
                       const std::string &name);

} // namespace flow
} // namespace trb

#endif // TRB_FLOW_ANALYZE_HH
