#include "flow/dataflow.hh"

#include <array>
#include <deque>
#include <utility>

namespace trb
{
namespace flow
{

namespace
{

/** Word count of a bitset over @p bits dynamic bits. */
std::size_t
wordsFor(std::size_t bits)
{
    return (bits + 63) / 64;
}

void
setBit(std::vector<std::uint64_t> &words, std::size_t bit)
{
    words[bit / 64] |= std::uint64_t{1} << (bit % 64);
}

bool
testBit(const std::vector<std::uint64_t> &words, std::size_t bit)
{
    return (words[bit / 64] >> (bit % 64)) & 1;
}

/** dst |= src; returns true when dst changed. */
bool
orInto(std::vector<std::uint64_t> &dst,
       const std::vector<std::uint64_t> &src)
{
    bool changed = false;
    for (std::size_t w = 0; w < dst.size(); ++w) {
        std::uint64_t next = dst[w] | src[w];
        if (next != dst[w]) {
            dst[w] = next;
            changed = true;
        }
    }
    return changed;
}

} // namespace

Dataflow
solveDataflow(const Cfg &cfg)
{
    Dataflow df;
    const std::size_t nblocks = cfg.blocks.size();
    df.gen.resize(nblocks);
    df.upExposed.resize(nblocks);
    df.liveIn.resize(nblocks);
    df.liveOut.resize(nblocks);
    df.reachAnyIn.resize(nblocks);
    if (nblocks == 0)
        return df;

    // Block-local facts from the canonical signatures: downward-exposed
    // defs (last def PC per register) and upward-exposed uses (first
    // read PC per register before any in-block def).
    std::vector<std::vector<std::pair<RegId, Addr>>> blockDefs(nblocks);
    std::vector<std::vector<std::pair<RegId, Addr>>> blockUses(nblocks);
    for (std::size_t b = 0; b < nblocks; ++b) {
        std::bitset<kRegSpace> written;
        std::array<Addr, kRegSpace> lastDef = {};
        for (Addr pc : cfg.blocks[b].memberPcs) {
            auto it = cfg.pcSigs.find(pc);
            if (it == cfg.pcSigs.end())
                continue;
            const PcSig &sig = it->second;
            if (sig.srcs.any()) {
                for (std::size_t r = 1; r < kRegSpace; ++r) {
                    if (!sig.srcs.test(r) || written.test(r) ||
                        df.upExposed[b].test(r))
                        continue;
                    df.upExposed[b].set(r);
                    blockUses[b].emplace_back(static_cast<RegId>(r), pc);
                }
            }
            if (sig.dsts.any()) {
                for (std::size_t r = 1; r < kRegSpace; ++r) {
                    if (!sig.dsts.test(r))
                        continue;
                    written.set(r);
                    lastDef[r] = pc;
                }
            }
        }
        df.gen[b] = written;
        for (std::size_t r = 1; r < kRegSpace; ++r)
            if (written.test(r))
                blockDefs[b].emplace_back(static_cast<RegId>(r),
                                          lastDef[r]);
    }

    // Number the definition sites and build per-block gen/kill masks.
    std::array<std::vector<std::uint32_t>, kRegSpace> sitesOf;
    std::vector<std::vector<std::uint32_t>> blockSites(nblocks);
    for (std::size_t b = 0; b < nblocks; ++b) {
        for (auto [reg, pc] : blockDefs[b]) {
            auto site = static_cast<std::uint32_t>(df.defSites.size());
            df.defSites.push_back({static_cast<std::uint32_t>(b), reg, pc});
            sitesOf[reg].push_back(site);
            blockSites[b].push_back(site);
        }
    }
    const std::size_t nsites = df.defSites.size();
    const std::size_t words = wordsFor(nsites);

    std::vector<std::vector<std::uint64_t>> genMask(
        nblocks, std::vector<std::uint64_t>(words, 0));
    std::vector<std::vector<std::uint64_t>> keepMask(
        nblocks, std::vector<std::uint64_t>(words, ~std::uint64_t{0}));
    for (std::size_t b = 0; b < nblocks; ++b) {
        for (std::uint32_t site : blockSites[b])
            setBit(genMask[b], site);
        // Kill every other site of each register this block defines.
        for (auto [reg, pc] : blockDefs[b]) {
            (void)pc;
            for (std::uint32_t site : sitesOf[reg])
                keepMask[b][site / 64] &=
                    ~(std::uint64_t{1} << (site % 64));
        }
        for (std::uint32_t site : blockSites[b])
            setBit(keepMask[b], site);   // own defs survive (they are gen)
    }

    // Forward worklist: REACH_out = (REACH_in & keep) | gen,
    // REACH_in = union of predecessors' REACH_out.
    std::vector<std::vector<std::uint64_t>> reachIn(
        nblocks, std::vector<std::uint64_t>(words, 0));
    std::vector<std::vector<std::uint64_t>> reachOut(
        nblocks, std::vector<std::uint64_t>(words, 0));
    std::deque<std::uint32_t> work;
    std::vector<bool> queued(nblocks, false);
    for (std::size_t b = 0; b < nblocks; ++b) {
        work.push_back(static_cast<std::uint32_t>(b));
        queued[b] = true;
    }
    while (!work.empty()) {
        std::uint32_t b = work.front();
        work.pop_front();
        queued[b] = false;
        ++df.iterations;
        for (std::uint32_t e : cfg.preds[b])
            orInto(reachIn[b], reachOut[cfg.edges[e].from]);
        std::vector<std::uint64_t> out(words);
        for (std::size_t w = 0; w < words; ++w)
            out[w] = (reachIn[b][w] & keepMask[b][w]) | genMask[b][w];
        if (out != reachOut[b]) {
            reachOut[b] = std::move(out);
            for (std::uint32_t e : cfg.succs[b]) {
                std::uint32_t to = cfg.edges[e].to;
                if (!queued[to]) {
                    queued[to] = true;
                    work.push_back(to);
                }
            }
        }
    }

    // Backward worklist: liveIn = use | (liveOut - def).
    for (std::size_t b = 0; b < nblocks; ++b) {
        work.push_back(static_cast<std::uint32_t>(b));
        queued[b] = true;
    }
    while (!work.empty()) {
        std::uint32_t b = work.front();
        work.pop_front();
        queued[b] = false;
        ++df.iterations;
        for (std::uint32_t e : cfg.succs[b])
            df.liveOut[b] |= df.liveIn[cfg.edges[e].to];
        std::bitset<kRegSpace> in =
            df.upExposed[b] | (df.liveOut[b] & ~df.gen[b]);
        if (in != df.liveIn[b]) {
            df.liveIn[b] = in;
            for (std::uint32_t e : cfg.preds[b]) {
                std::uint32_t from = cfg.edges[e].from;
                if (!queued[from]) {
                    queued[from] = true;
                    work.push_back(from);
                }
            }
        }
    }

    // Summaries: any-def-reaches per register, and the def-use chains.
    for (std::size_t b = 0; b < nblocks; ++b) {
        for (std::size_t r = 1; r < kRegSpace; ++r) {
            if (sitesOf[r].empty())
                continue;
            for (std::uint32_t site : sitesOf[r]) {
                if (testBit(reachIn[b], site)) {
                    df.reachAnyIn[b].set(r);
                    break;
                }
            }
        }
        for (auto [reg, pc] : blockUses[b]) {
            if (reg == champsim::kInstructionPointer)
                continue;
            UseSite use;
            use.block = static_cast<std::uint32_t>(b);
            use.reg = reg;
            use.pc = pc;
            for (std::uint32_t site : sitesOf[reg])
                if (testBit(reachIn[b], site))
                    use.defs.push_back(site);
            df.chainLinks += use.defs.size();
            df.chains.push_back(std::move(use));
        }
    }
    return df;
}

} // namespace flow
} // namespace trb
