#include "common/logging.hh"

#include "common/env.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace trb
{

namespace
{

/** -1 until first read: then the parsed TRB_LOG (or an override). */
std::atomic<int> g_log_level{-1};

} // namespace

LogLevel
parseLogLevel(const char *text, LogLevel def)
{
    if (!text || !*text)
        return def;
    if (text[0] >= '0' && text[0] <= '9' && text[1] == '\0') {
        int v = text[0] - '0';
        return v > static_cast<int>(LogLevel::Trace) ? LogLevel::Trace
                                                     : static_cast<LogLevel>(v);
    }
    if (!std::strcmp(text, "silent") || !std::strcmp(text, "none"))
        return LogLevel::Silent;
    if (!std::strcmp(text, "warn") || !std::strcmp(text, "warning"))
        return LogLevel::Warn;
    if (!std::strcmp(text, "info"))
        return LogLevel::Info;
    if (!std::strcmp(text, "debug"))
        return LogLevel::Debug;
    if (!std::strcmp(text, "trace"))
        return LogLevel::Trace;
    std::fprintf(stderr, "warn: TRB_LOG='%s' not recognised; using default\n",
                 text);
    return def;
}

LogLevel
logLevel()
{
    int level = g_log_level.load(std::memory_order_relaxed);
    if (level < 0) {
        level = static_cast<int>(parseLogLevel(env::raw("TRB_LOG")));
        g_log_level.store(level, std::memory_order_relaxed);
    }
    return static_cast<LogLevel>(level);
}

void
setLogLevel(LogLevel level)
{
    g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail
} // namespace trb
