/**
 * @file
 * trb::env -- the one place the process environment is consulted.
 *
 * Every TRB_* runtime knob is declared in a central registry (name plus
 * one-line summary) and read through the typed accessors below; an
 * accessor passed an unregistered name dies immediately, so a new knob
 * cannot sneak in without a registry entry.  The registry is what keeps
 * docs/env-vars.md honest: `trace_lint --selftest` and the env unit
 * tests fail when a registered variable is missing from that table.
 *
 * The legacy experiment-scaling helpers (traceLengthFromEnv,
 * suiteScaleFromEnv) live on top of the typed accessors and keep their
 * historical validation.
 */

#ifndef TRB_COMMON_ENV_HH
#define TRB_COMMON_ENV_HH

#include <cstdint>
#include <string>
#include <vector>

namespace trb
{
namespace env
{

/** One registered environment variable. */
struct VarInfo
{
    const char *name;      //!< "TRB_..."
    const char *summary;   //!< one line, for --selftest / diagnostics
};

/** Every TRB_* variable the tree reads, in stable (alphabetical) order. */
const std::vector<VarInfo> &registry();

/** True if @p name is a registered variable. */
bool isRegistered(const char *name);

/**
 * Raw value of a *registered* variable; nullptr when unset.  Fatal on an
 * unregistered name -- register the knob (and document it in
 * docs/env-vars.md) first.
 */
const char *raw(const char *name);

/** Integer variable with a default; fatal on a malformed value. */
std::uint64_t u64(const char *name, std::uint64_t def);

/** Floating-point variable with a default; fatal on a malformed value. */
double number(const char *name, double def);

/** String variable with a default (unset and empty both yield @p def). */
std::string str(const char *name, const std::string &def = "");

/** Boolean knob: set to a non-empty, non-"0" value. */
bool flag(const char *name);

} // namespace env

/** Instructions per synthetic trace for experiments (TRB_TRACE_LEN). */
std::uint64_t traceLengthFromEnv(std::uint64_t def = 50000);

/** Fraction (0,1] of a suite to run (TRB_SUITE_SCALE). */
double suiteScaleFromEnv(double def = 1.0);

} // namespace trb

#endif // TRB_COMMON_ENV_HH
