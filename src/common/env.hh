/**
 * @file
 * Environment-variable driven experiment scaling.  Every bench binary
 * honours TRB_TRACE_LEN (instructions per synthetic trace) and
 * TRB_SUITE_SCALE (fraction of the suite to run) so the paper-sized
 * experiment is reachable without a rebuild.
 */

#ifndef TRB_COMMON_ENV_HH
#define TRB_COMMON_ENV_HH

#include <cstdint>
#include <string>

namespace trb
{

/** Integer environment variable with a default. */
std::uint64_t envU64(const char *name, std::uint64_t def);

/** Floating-point environment variable with a default. */
double envDouble(const char *name, double def);

/** Instructions per synthetic trace for experiments (TRB_TRACE_LEN). */
std::uint64_t traceLengthFromEnv(std::uint64_t def = 50000);

/** Fraction (0,1] of a suite to run (TRB_SUITE_SCALE). */
double suiteScaleFromEnv(double def = 1.0);

} // namespace trb

#endif // TRB_COMMON_ENV_HH
