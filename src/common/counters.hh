/**
 * @file
 * Predictor building blocks: saturating counters and folded global-history
 * shift registers, shared by the direction, indirect and data-prefetch
 * predictors.
 */

#ifndef TRB_COMMON_COUNTERS_HH
#define TRB_COMMON_COUNTERS_HH

#include <cstdint>

#include "common/logging.hh"

namespace trb
{

/**
 * An n-bit saturating up/down counter.  Counts in [0, 2^bits - 1];
 * taken() reports the upper half.
 */
class SatCounter
{
  public:
    explicit SatCounter(unsigned bits = 2, unsigned initial = 0)
        : max_((1u << bits) - 1), value_(initial)
    {
        trb_assert(bits >= 1 && bits <= 8, "SatCounter bits out of range");
        trb_assert(initial <= max_, "SatCounter initial value too large");
    }

    void increment() { if (value_ < max_) ++value_; }
    void decrement() { if (value_ > 0) --value_; }
    void update(bool up) { up ? increment() : decrement(); }

    /** Reset to weakly-not-taken / weakly-taken midpoints. */
    void resetWeak(bool taken) { value_ = taken ? (max_ / 2 + 1) : max_ / 2; }

    unsigned value() const { return value_; }
    unsigned max() const { return max_; }
    bool taken() const { return value_ > max_ / 2; }
    bool saturatedHigh() const { return value_ == max_; }
    bool saturatedLow() const { return value_ == 0; }

    /** Confidence: distance from the midpoint, 0 = weakest. */
    unsigned
    confidence() const
    {
        unsigned mid = max_ / 2;
        return value_ > mid ? value_ - mid - 1 : mid - value_;
    }

  private:
    unsigned max_;
    unsigned value_;
};

/**
 * A signed saturating counter in [-2^(bits-1), 2^(bits-1) - 1], as used by
 * TAGE's usefulness counters and the statistical corrector.
 */
class SignedSatCounter
{
  public:
    explicit SignedSatCounter(unsigned bits = 3, int initial = 0)
        : min_(-(1 << (bits - 1))), max_((1 << (bits - 1)) - 1),
          value_(initial)
    {
        trb_assert(bits >= 2 && bits <= 16, "SignedSatCounter bits");
    }

    void
    update(bool up)
    {
        if (up && value_ < max_)
            ++value_;
        else if (!up && value_ > min_)
            --value_;
    }

    int value() const { return value_; }
    bool positive() const { return value_ >= 0; }
    int min() const { return min_; }
    int max() const { return max_; }

  private:
    int min_;
    int max_;
    int value_;
};

/**
 * A long global history register folded into fixed-width hashes, the
 * classic TAGE mechanism: maintain the full history as a bit deque and
 * incremental folded images for index and tag computation.
 */
class FoldedHistory
{
  public:
    FoldedHistory() = default;

    /**
     * @param original_length history bits consumed
     * @param compressed_length width of the folded image
     */
    FoldedHistory(unsigned original_length, unsigned compressed_length)
        : origLen_(original_length), compLen_(compressed_length),
          outPoint_(original_length % compressed_length)
    {
        trb_assert(compLen_ >= 1 && compLen_ <= 32, "folded width");
    }

    /**
     * Shift a new bit in and the oldest bit (provided by the caller from
     * the full history buffer) out.
     */
    void
    update(bool new_bit, bool evicted_bit)
    {
        comp_ = (comp_ << 1) | (new_bit ? 1u : 0u);
        comp_ ^= (evicted_bit ? 1u : 0u) << outPoint_;
        comp_ ^= comp_ >> compLen_;
        comp_ &= (1u << compLen_) - 1u;
    }

    std::uint32_t value() const { return comp_; }
    unsigned originalLength() const { return origLen_; }

  private:
    unsigned origLen_ = 0;
    unsigned compLen_ = 1;
    unsigned outPoint_ = 0;
    std::uint32_t comp_ = 0;
};

} // namespace trb

#endif // TRB_COMMON_COUNTERS_HH
