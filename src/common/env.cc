#include "common/env.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace trb
{
namespace env
{

const std::vector<VarInfo> &
registry()
{
    // Alphabetical; every entry must have a row in docs/env-vars.md
    // (enforced by `trace_lint --selftest` and tests/test_common.cc).
    static const std::vector<VarInfo> vars = {
        {"TRB_CHECKPOINT", "crash-safe sweep manifest path (resume)"},
        {"TRB_FAILURE_REPORT", "write the quarantine report JSON here"},
        {"TRB_FAULT", "deterministic fault injection spec (kind:rate,...)"},
        {"TRB_FAULT_SEED", "seed for the fault-injection draw"},
        {"TRB_JOBS", "worker threads; 1 = exact serial path"},
        {"TRB_LINT", "lint every conversion before simulating it"},
        {"TRB_LOG", "log level: silent/warn/info/debug/trace or 0-4"},
        {"TRB_OBS_BENCH_DIR", "BENCH_<name>.json manifest directory"
                              " (default .; 0/off disables)"},
        {"TRB_OBS_CSV", "write the metrics registry as CSV here at exit"},
        {"TRB_OBS_JSON", "write the metrics registry as JSON here at exit"},
        {"TRB_OBS_SAMPLE_MS", "metrics sampler heartbeat period in ms"
                              " (0/unset: off)"},
        {"TRB_OBS_SAMPLE_PATH", "sampler JSONL output file"},
        {"TRB_OBS_SPANS", "write the merged span/pipeline Chrome trace"
                          " here at exit"},
        {"TRB_PIPE_JSON", "write a Chrome trace of the pipeline here"},
        {"TRB_RETRIES", "attempts for transient I/O failures"},
        {"TRB_SERVE_DEADLINE_MS", "trace_client default per-request"
                                  " deadline in ms (0/unset: none)"},
        {"TRB_SERVE_QUANTUM", "requests served per client per"
                              " round-robin turn"},
        {"TRB_SERVE_QUEUE", "daemon queue bound; beyond it requests get"
                            " a typed busy reply"},
        {"TRB_SERVE_SOCKET", "trace_served Unix-domain socket path"},
        {"TRB_SERVE_WATCHDOG_MS", "daemon deadline/dead-client sweep"
                                  " period in ms (0: watchdog off)"},
        {"TRB_SERVE_WRITE_MS", "daemon per-reply peer-readiness bound"
                               " in ms (0: block indefinitely)"},
        {"TRB_STORE", "content-addressed artifact cache directory"},
        {"TRB_SUITE_SCALE", "fraction (0,1] of each trace suite to run"},
        {"TRB_TRACE_BUF", "pipeline event tracer ring capacity"},
        {"TRB_TRACE_LEN", "instructions per synthetic trace"},
    };
    return vars;
}

bool
isRegistered(const char *name)
{
    for (const VarInfo &var : registry())
        if (std::strcmp(var.name, name) == 0)
            return true;
    return false;
}

const char *
raw(const char *name)
{
    if (!isRegistered(name))
        trb_fatal("environment variable ", name,
                  " is not in the trb::env registry -- add it to "
                  "common/env.cc and docs/env-vars.md");
    return std::getenv(name);
}

std::uint64_t
u64(const char *name, std::uint64_t def)
{
    const char *value = raw(name);
    if (!value || !*value)
        return def;
    char *end = nullptr;
    std::uint64_t parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0')
        trb_fatal("environment variable ", name, "='", value,
                  "' is not an integer");
    return parsed;
}

double
number(const char *name, double def)
{
    const char *value = raw(name);
    if (!value || !*value)
        return def;
    char *end = nullptr;
    double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0')
        trb_fatal("environment variable ", name, "='", value,
                  "' is not a number");
    return parsed;
}

std::string
str(const char *name, const std::string &def)
{
    const char *value = raw(name);
    if (!value || !*value)
        return def;
    return value;
}

bool
flag(const char *name)
{
    const char *value = raw(name);
    return value && *value && std::strcmp(value, "0") != 0;
}

} // namespace env

std::uint64_t
traceLengthFromEnv(std::uint64_t def)
{
    std::uint64_t len = env::u64("TRB_TRACE_LEN", def);
    if (len < 1000)
        trb_fatal("TRB_TRACE_LEN must be at least 1000, got ", len);
    return len;
}

double
suiteScaleFromEnv(double def)
{
    double scale = env::number("TRB_SUITE_SCALE", def);
    if (scale <= 0.0 || scale > 1.0)
        trb_fatal("TRB_SUITE_SCALE must be in (0, 1], got ", scale);
    return scale;
}

} // namespace trb
