#include "common/env.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace trb
{

std::uint64_t
envU64(const char *name, std::uint64_t def)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return def;
    char *end = nullptr;
    std::uint64_t parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0')
        trb_fatal("environment variable ", name, "='", value,
                  "' is not an integer");
    return parsed;
}

double
envDouble(const char *name, double def)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return def;
    char *end = nullptr;
    double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0')
        trb_fatal("environment variable ", name, "='", value,
                  "' is not a number");
    return parsed;
}

std::uint64_t
traceLengthFromEnv(std::uint64_t def)
{
    std::uint64_t len = envU64("TRB_TRACE_LEN", def);
    if (len < 1000)
        trb_fatal("TRB_TRACE_LEN must be at least 1000, got ", len);
    return len;
}

double
suiteScaleFromEnv(double def)
{
    double scale = envDouble("TRB_SUITE_SCALE", def);
    if (scale <= 0.0 || scale > 1.0)
        trb_fatal("TRB_SUITE_SCALE must be in (0, 1], got ", scale);
    return scale;
}

} // namespace trb
