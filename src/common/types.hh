/**
 * @file
 * Fundamental types and architectural constants shared by every TraceRebase
 * module: addresses, register identifiers, the CVP-1 instruction class
 * enumeration and the special ChampSim (x86) register numbers the converter
 * manipulates.
 */

#ifndef TRB_COMMON_TYPES_HH
#define TRB_COMMON_TYPES_HH

#include <cstdint>
#include <string>

namespace trb
{

/** A byte address in the simulated (traced) address space. */
using Addr = std::uint64_t;

/** A cycle count. */
using Cycle = std::uint64_t;

/** An architectural register identifier as stored in trace records. */
using RegId = std::uint8_t;

/** Cacheline size used throughout (CVP-1 / ChampSim convention). */
constexpr unsigned kLineBytes = 64;

/** Extract the cacheline (block) address of a byte address. */
constexpr Addr
lineAddr(Addr a)
{
    return a & ~static_cast<Addr>(kLineBytes - 1);
}

/** Cacheline index (block number) of a byte address. */
constexpr Addr
lineNum(Addr a)
{
    return a / kLineBytes;
}

/**
 * Instruction classes as encoded in the CVP-1 trace format.
 *
 * The numeric values mirror the enumeration in the public CVP-1 trace
 * reader so that the binary format stays compatible with our
 * re-implementation of it.
 */
enum class InstClass : std::uint8_t
{
    Alu = 0,
    Load = 1,
    Store = 2,
    CondBranch = 3,
    UncondDirectBranch = 4,
    UncondIndirectBranch = 5,
    Fp = 6,
    SlowAlu = 7,
    Undef = 8,
};

/** Human-readable name of a CVP-1 instruction class. */
const char *instClassName(InstClass c);

/** True for the three CVP-1 branch classes. */
constexpr bool
isBranch(InstClass c)
{
    return c == InstClass::CondBranch || c == InstClass::UncondDirectBranch ||
           c == InstClass::UncondIndirectBranch;
}

/** True for loads and stores. */
constexpr bool
isMem(InstClass c)
{
    return c == InstClass::Load || c == InstClass::Store;
}

/**
 * Aarch64 register-space constants used by the CVP-1 traces.
 *
 * CVP-1 traces only record general purpose registers (and SIMD registers in
 * a disjoint range); special purpose registers such as the flags are absent,
 * which is precisely the gap the flag-reg improvement patches.
 */
namespace aarch64
{

/** The link register: calls write it, returns read it. */
constexpr RegId kLinkReg = 30;

/** Stack pointer register number as recorded in CVP-1 traces. */
constexpr RegId kSp = 31;

/** First SIMD/FP register (V0) in the CVP-1 flat register space. */
constexpr RegId kVecBase = 32;

/** Number of registers representable in the CVP-1 flat register space. */
constexpr unsigned kNumRegs = 64;

} // namespace aarch64

/**
 * ChampSim (x86) special register numbers.
 *
 * ChampSim deduces branch types from these registers; the converter
 * therefore writes them into the converted records.  Values follow the
 * ChampSim source (REG_STACK_POINTER = 6, REG_FLAGS = 25,
 * REG_INSTRUCTION_POINTER = 26).  Register 56 is the scratch "reads
 * something else" register the original converter used for indirect
 * branches (the paper calls it X56).
 */
namespace champsim
{

constexpr RegId kStackPointer = 6;
constexpr RegId kFlags = 25;
constexpr RegId kInstructionPointer = 26;
constexpr RegId kOtherReg = 56;

/** Maximum destination registers in a ChampSim trace record. */
constexpr unsigned kMaxDst = 2;
/** Maximum source registers in a ChampSim trace record. */
constexpr unsigned kMaxSrc = 4;
/** Maximum destination memory operands in a ChampSim trace record. */
constexpr unsigned kMaxMemDst = 2;
/** Maximum source memory operands in a ChampSim trace record. */
constexpr unsigned kMaxMemSrc = 4;

} // namespace champsim

/**
 * Branch types distinguished by ChampSim (deduced from register usage).
 */
enum class BranchType : std::uint8_t
{
    NotBranch = 0,
    DirectJump,
    IndirectJump,
    Conditional,
    DirectCall,
    IndirectCall,
    Return,
};

/** Human-readable name of a deduced branch type. */
const char *branchTypeName(BranchType t);

} // namespace trb

#endif // TRB_COMMON_TYPES_HH
