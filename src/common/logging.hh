/**
 * @file
 * Minimal gem5-style logging and error-exit helpers.
 *
 * panic() is for internal invariant violations (a TraceRebase bug);
 * fatal() is for user errors (bad file, bad configuration); warn(),
 * inform() and debug() report conditions without stopping and are
 * filtered by a runtime log level (TRB_LOG environment variable:
 * silent|warn|info|debug|trace or 0..4, default info).
 */

#ifndef TRB_COMMON_LOGGING_HH
#define TRB_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace trb
{

/** Runtime verbosity of warn/inform/debug reporting. */
enum class LogLevel : int
{
    Silent = 0,   //!< nothing but panic/fatal
    Warn = 1,     //!< trb_warn
    Info = 2,     //!< + trb_inform (the default)
    Debug = 3,    //!< + trb_debug
    Trace = 4,    //!< + per-event firehose (reserved for tracers)
};

/** Active log level: TRB_LOG at first use unless overridden. */
LogLevel logLevel();

/** Override the active log level (tests, embedding tools). */
void setLogLevel(LogLevel level);

/** True if messages of @p level should be emitted. */
inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <= static_cast<int>(logLevel());
}

/** Parse a TRB_LOG value; falls back to @p def on empty/unknown. */
LogLevel parseLogLevel(const char *text, LogLevel def = LogLevel::Info);

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Concatenate a parameter pack into one string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Abort with a message: something that should never happen happened. */
#define trb_panic(...) \
    ::trb::detail::panicImpl(__FILE__, __LINE__, \
                             ::trb::detail::concat(__VA_ARGS__))

/** Exit with a message: the user asked for something impossible. */
#define trb_fatal(...) \
    ::trb::detail::fatalImpl(__FILE__, __LINE__, \
                             ::trb::detail::concat(__VA_ARGS__))

/** Report a suspicious-but-survivable condition to stderr. */
#define trb_warn(...) \
    do { \
        if (::trb::logEnabled(::trb::LogLevel::Warn)) \
            ::trb::detail::warnImpl(::trb::detail::concat(__VA_ARGS__)); \
    } while (0)

/** Report normal operating status to stderr. */
#define trb_inform(...) \
    do { \
        if (::trb::logEnabled(::trb::LogLevel::Info)) \
            ::trb::detail::informImpl(::trb::detail::concat(__VA_ARGS__)); \
    } while (0)

/** Report developer-facing detail to stderr (TRB_LOG=debug). */
#define trb_debug(...) \
    do { \
        if (::trb::logEnabled(::trb::LogLevel::Debug)) \
            ::trb::detail::debugImpl(::trb::detail::concat(__VA_ARGS__)); \
    } while (0)

/** Panic unless a simulator invariant holds. */
#define trb_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            trb_panic("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

} // namespace trb

#endif // TRB_COMMON_LOGGING_HH
