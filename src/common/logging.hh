/**
 * @file
 * Minimal gem5-style logging and error-exit helpers.
 *
 * panic() is for internal invariant violations (a TraceRebase bug);
 * fatal() is for user errors (bad file, bad configuration); warn() and
 * inform() report conditions without stopping.
 */

#ifndef TRB_COMMON_LOGGING_HH
#define TRB_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace trb
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Concatenate a parameter pack into one string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Abort with a message: something that should never happen happened. */
#define trb_panic(...) \
    ::trb::detail::panicImpl(__FILE__, __LINE__, \
                             ::trb::detail::concat(__VA_ARGS__))

/** Exit with a message: the user asked for something impossible. */
#define trb_fatal(...) \
    ::trb::detail::fatalImpl(__FILE__, __LINE__, \
                             ::trb::detail::concat(__VA_ARGS__))

/** Report a suspicious-but-survivable condition to stderr. */
#define trb_warn(...) \
    ::trb::detail::warnImpl(::trb::detail::concat(__VA_ARGS__))

/** Report normal operating status to stderr. */
#define trb_inform(...) \
    ::trb::detail::informImpl(::trb::detail::concat(__VA_ARGS__))

/** Panic unless a simulator invariant holds. */
#define trb_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            trb_panic("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

} // namespace trb

#endif // TRB_COMMON_LOGGING_HH
