#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace trb
{

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        trb_assert(v > 0.0, "geomean needs positive values, got ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

std::vector<double>
finiteValues(const std::vector<double> &values)
{
    std::vector<double> out;
    out.reserve(values.size());
    for (double v : values)
        if (std::isfinite(v))
            out.push_back(v);
    return out;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    auto hi = std::min(lo + 1, values.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double
mpki(std::uint64_t events, std::uint64_t instructions)
{
    if (instructions == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(events) /
           static_cast<double>(instructions);
}

std::string
fmtDouble(double v, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other.entries_)
        add(name, value);
}

std::string
StatSet::report(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[name, value] : entries_)
        os << prefix << name << " " << value << "\n";
    return os.str();
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return 0;
    p = std::min(std::max(p, 0.0), 100.0);
    // Nearest rank: the smallest k with cumulative(k) >= ceil(p% * n).
    auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(total_)));
    rank = std::max<std::uint64_t>(rank, 1);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        cum += counts_[b];
        if (cum >= rank)
            return static_cast<std::uint64_t>(b) * width_;
    }
    return static_cast<std::uint64_t>(counts_.size() - 1) * width_;
}

std::string
Histogram::report(const std::string &prefix) const
{
    std::ostringstream os;
    const std::size_t overflow = counts_.size() - 1;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        if (counts_[b] == 0)
            continue;
        std::uint64_t lo = static_cast<std::uint64_t>(b) * width_;
        os << prefix << "[" << lo << ", ";
        if (b == overflow)
            os << "inf";
        else
            os << lo + width_;
        os << ") " << counts_[b] << " "
           << fmtDouble(total_ ? 100.0 * double(counts_[b]) / double(total_)
                               : 0.0, 1)
           << "%\n";
    }
    os << prefix << "total " << total_ << " mean "
       << fmtDouble(meanValue()) << " p50 " << percentile(50) << " p99 "
       << percentile(99) << "\n";
    return os.str();
}

} // namespace trb
