#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace trb
{

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        trb_assert(v > 0.0, "geomean needs positive values, got ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    auto hi = std::min(lo + 1, values.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double
mpki(std::uint64_t events, std::uint64_t instructions)
{
    if (instructions == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(events) /
           static_cast<double>(instructions);
}

std::string
fmtDouble(double v, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other.entries_)
        add(name, value);
}

std::string
StatSet::report(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[name, value] : entries_)
        os << prefix << name << " " << value << "\n";
    return os.str();
}

} // namespace trb
