/**
 * @file
 * Small statistics toolkit: named scalar counters, ratio formatting,
 * histograms, and the aggregate helpers (geometric mean, percentiles) the
 * experiment harness uses to reproduce the paper's figures.
 */

#ifndef TRB_COMMON_STATS_HH
#define TRB_COMMON_STATS_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace trb
{

/** Geometric mean of a vector of positive values; 0 if empty. */
double geomean(const std::vector<double> &values);

/**
 * Copy with the non-finite entries dropped.  Quarantined traces leave
 * NaN in their index-addressed result slots; aggregate over
 * finiteValues(slots) so a fault-isolated run still produces a number.
 */
std::vector<double> finiteValues(const std::vector<double> &values);

/** Arithmetic mean; 0 if empty. */
double mean(const std::vector<double> &values);

/** p-th percentile (0..100) by nearest-rank on a copy; 0 if empty. */
double percentile(std::vector<double> values, double p);

/** Misses-per-kilo-instruction helper. */
double mpki(std::uint64_t events, std::uint64_t instructions);

/** Format a double with fixed precision into a string. */
std::string fmtDouble(double v, int precision = 2);

/**
 * A bag of named scalar statistics with insertion-ordered printing.
 *
 * Simulation components register counters by name; the simulator facade
 * merges component bags into one report.  Hot paths should obtain a
 * counter() reference once and increment through it, bypassing the hash
 * lookup entirely.
 */
class StatSet
{
  public:
    /**
     * Reference to a named counter, created at 0 if absent.
     *
     * The reference stays valid for the lifetime of the StatSet (entries
     * live in a deque), so components can cache it and increment per
     * cycle without re-hashing the name.
     */
    std::uint64_t &
    counter(const std::string &name)
    {
        auto it = index_.find(name);
        if (it == index_.end()) {
            it = index_.emplace(name, entries_.size()).first;
            entries_.emplace_back(name, 0);
        }
        return entries_[it->second].second;
    }

    /** Add (or create) a named counter. */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counter(name) += delta;
    }

    /** Set a named counter to an absolute value. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counter(name) = value;
    }

    /** Value of a counter; 0 if absent. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = index_.find(name);
        return it == index_.end() ? 0 : entries_[it->second].second;
    }

    /** All counters in insertion order. */
    const std::deque<std::pair<std::string, std::uint64_t>> &
    entries() const
    {
        return entries_;
    }

    /** Merge another set into this one (summing same-named counters). */
    void merge(const StatSet &other);

    /** Render as "name value" lines. */
    std::string report(const std::string &prefix = "") const;

  private:
    std::deque<std::pair<std::string, std::uint64_t>> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

/**
 * Fixed-bucket histogram over uint64 samples (linear buckets plus an
 * overflow bucket), for distributions like dependency distance or
 * miss latency.
 */
class Histogram
{
  public:
    Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
        : width_(bucket_width ? bucket_width : 1),
          counts_(num_buckets + 1, 0)
    {}

    void
    sample(std::uint64_t value, std::uint64_t count = 1)
    {
        std::size_t b = value / width_;
        if (b >= counts_.size() - 1)
            b = counts_.size() - 1;
        counts_[b] += count;
        total_ += count;
        sum_ += value * count;
    }

    std::uint64_t total() const { return total_; }
    double
    meanValue() const
    {
        return total_ ? static_cast<double>(sum_) /
                            static_cast<double>(total_)
                      : 0.0;
    }
    const std::vector<std::uint64_t> &buckets() const { return counts_; }
    std::uint64_t bucketWidth() const { return width_; }

    /**
     * p-th percentile (0..100) by nearest rank over the buckets.
     *
     * Returns the lower edge of the bucket holding the p-th ranked
     * sample (the overflow bucket reports its lower edge, i.e. the
     * histogram range); 0 if no samples.
     */
    std::uint64_t percentile(double p) const;

    /**
     * Render a bucket table: one "[lo, hi) count share" row per
     * non-empty bucket plus a summary line (total, mean, p50, p99).
     */
    std::string report(const std::string &prefix = "") const;

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
};

} // namespace trb

#endif // TRB_COMMON_STATS_HH
