#include "common/json.hh"

#include <cctype>
#include <cstdlib>

namespace trb
{

double
JsonFlat::number(const std::string &path, double def) const
{
    auto it = numbers.find(path);
    return it == numbers.end() ? def : it->second;
}

bool
JsonFlat::hasNumber(const std::string &path) const
{
    return numbers.find(path) != numbers.end();
}

std::string
JsonFlat::str(const std::string &path, const std::string &def) const
{
    auto it = strings.find(path);
    return it == strings.end() ? def : it->second;
}

namespace
{

/** Recursive-descent reader flattening into a JsonFlat. */
struct Reader
{
    const std::string &text;
    std::size_t pos = 0;
    JsonFlat &out;
    std::string error;

    Reader(const std::string &t, JsonFlat &o) : text(t), out(o) {}

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        return pos < text.size() ? text[pos] : '\0';
    }

    bool
    fail(const std::string &what)
    {
        if (error.empty())
            error = what + " at byte " + std::to_string(pos);
        return false;
    }

    bool
    expect(char c)
    {
        if (peek() != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    /** True if the next bytes are the literal @p word; consumes them. */
    bool
    literal(const char *word)
    {
        skipWs();
        std::size_t n = 0;
        while (word[n]) {
            if (pos + n >= text.size() || text[pos + n] != word[n])
                return false;
            ++n;
        }
        pos += n;
        return true;
    }

    bool
    parseString(std::string &s)
    {
        if (!expect('"'))
            return false;
        s.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                s.push_back(c);
                continue;
            }
            if (pos >= text.size())
                return fail("unterminated escape");
            char esc = text[pos++];
            switch (esc) {
              case 'n': s.push_back('\n'); break;
              case 't': s.push_back('\t'); break;
              case 'r': s.push_back('\r'); break;
              case 'b': s.push_back('\b'); break;
              case 'f': s.push_back('\f'); break;
              case 'u':
                // Pass the four hex digits through verbatim; the
                // documents we read never emit multi-byte escapes for
                // anything we assert on.
                s.push_back('\\');
                s.push_back('u');
                break;
              default: s.push_back(esc); break;
            }
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos;   // closing quote
        return true;
    }

    bool
    parseValue(const std::string &path)
    {
        char c = peek();
        if (c == '{') {
            ++pos;
            if (peek() == '}') {
                ++pos;
                return true;
            }
            do {
                std::string key;
                if (!parseString(key) || !expect(':'))
                    return false;
                if (!parseValue(path.empty() ? key : path + "/" + key))
                    return false;
                c = peek();
                if (c == ',') {
                    ++pos;
                    continue;
                }
                break;
            } while (true);
            return expect('}');
        }
        if (c == '[') {
            ++pos;
            if (peek() == ']') {
                ++pos;
                return true;
            }
            std::size_t i = 0;
            do {
                if (!parseValue(path + "/" + std::to_string(i++)))
                    return false;
                c = peek();
                if (c == ',') {
                    ++pos;
                    continue;
                }
                break;
            } while (true);
            return expect(']');
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out.strings[path] = s;
            return true;
        }
        if (literal("true")) {
            out.numbers[path] = 1.0;
            return true;
        }
        if (literal("false")) {
            out.numbers[path] = 0.0;
            return true;
        }
        if (literal("null"))
            return true;
        // Number.
        std::size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
                text[pos] == 'e' || text[pos] == 'E'))
            ++pos;
        if (pos == start)
            return fail("expected a value");
        const std::string tok = text.substr(start, pos - start);
        char *end = nullptr;
        double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            return fail("malformed number '" + tok + "'");
        out.numbers[path] = v;
        return true;
    }
};

} // namespace

bool
parseJson(const std::string &text, JsonFlat &out, std::string *error)
{
    out = JsonFlat{};
    Reader reader(text, out);
    bool ok = reader.parseValue("");
    reader.skipWs();
    if (ok && reader.pos != text.size())
        ok = reader.fail("trailing garbage");
    if (!ok && error)
        *error = reader.error;
    return ok;
}

} // namespace trb
