/**
 * @file
 * Deterministic pseudo-random number generation for synthetic workload
 * construction.  SplitMix64 for seeding, xoshiro256** for the stream; both
 * are tiny, fast and reproducible across platforms, which matters because
 * trace generation must be bit-identical given a seed.
 */

#ifndef TRB_COMMON_RNG_HH
#define TRB_COMMON_RNG_HH

#include <cstdint>

#include "common/logging.hh"

namespace trb
{

/** One SplitMix64 step: used to expand a single seed into xoshiro state. */
constexpr std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** generator with convenience helpers for ranges, booleans
 * with a probability, and weighted choices.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitmix64(sm);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        trb_assert(bound != 0, "Rng::below(0)");
        // Lemire-style multiply-shift; bias is negligible for our bounds.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        trb_assert(lo <= hi, "Rng::range lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** True with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Pick an index according to a table of non-negative weights.
     * A zero-total table picks index 0.
     */
    template <typename Container>
    std::size_t
    weighted(const Container &weights)
    {
        double total = 0.0;
        for (double w : weights)
            total += w;
        if (total <= 0.0)
            return 0;
        double x = uniform() * total;
        std::size_t i = 0;
        for (double w : weights) {
            if (x < w)
                return i;
            x -= w;
            ++i;
        }
        return weights.size() - 1;
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace trb

#endif // TRB_COMMON_RNG_HH
