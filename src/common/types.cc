#include "common/types.hh"

namespace trb
{

const char *
instClassName(InstClass c)
{
    switch (c) {
      case InstClass::Alu: return "alu";
      case InstClass::Load: return "load";
      case InstClass::Store: return "store";
      case InstClass::CondBranch: return "cond-branch";
      case InstClass::UncondDirectBranch: return "uncond-direct";
      case InstClass::UncondIndirectBranch: return "uncond-indirect";
      case InstClass::Fp: return "fp";
      case InstClass::SlowAlu: return "slow-alu";
      case InstClass::Undef: return "undef";
    }
    return "invalid";
}

const char *
branchTypeName(BranchType t)
{
    switch (t) {
      case BranchType::NotBranch: return "not-branch";
      case BranchType::DirectJump: return "direct-jump";
      case BranchType::IndirectJump: return "indirect-jump";
      case BranchType::Conditional: return "conditional";
      case BranchType::DirectCall: return "direct-call";
      case BranchType::IndirectCall: return "indirect-call";
      case BranchType::Return: return "return";
    }
    return "invalid";
}

} // namespace trb
