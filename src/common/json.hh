/**
 * @file
 * A minimal JSON reader for the documents this repository itself emits
 * (metrics dumps, BENCH_* run manifests, sampler JSONL lines): objects,
 * arrays, strings, numbers, booleans and null.
 *
 * The reader flattens the document into two maps keyed by "/"-joined
 * paths -- numbers (booleans fold to 0/1) and strings -- which is the
 * shape every consumer here wants: trace_perf diffs numeric metrics by
 * path, and the tests assert on a handful of known keys.  It is not a
 * general-purpose parser (no \uXXXX decoding beyond a byte passthrough,
 * no duplicate-key detection) and must only be pointed at trusted,
 * self-produced documents.
 */

#ifndef TRB_COMMON_JSON_HH
#define TRB_COMMON_JSON_HH

#include <map>
#include <string>

namespace trb
{

/** A JSON document flattened to path -> scalar maps. */
struct JsonFlat
{
    /** Numeric leaves (plus booleans as 0/1), by "/"-joined path. */
    std::map<std::string, double> numbers;
    /** String leaves, by "/"-joined path. */
    std::map<std::string, std::string> strings;

    /** Value of a numeric leaf, or @p def when absent. */
    double number(const std::string &path, double def = 0.0) const;

    /** True if a numeric leaf exists at @p path. */
    bool hasNumber(const std::string &path) const;

    /** Value of a string leaf, or @p def when absent. */
    std::string str(const std::string &path,
                    const std::string &def = "") const;
};

/**
 * Parse @p text into @p out.  Returns false (and sets @p error when
 * given) on malformed input or trailing garbage; @p out may then hold a
 * partial flattening and must be discarded.
 */
bool parseJson(const std::string &text, JsonFlat &out,
               std::string *error = nullptr);

} // namespace trb

#endif // TRB_COMMON_JSON_HH
