/**
 * @file
 * Tiny string helpers shared across the tree.  Kept header-only: the
 * callers are hot-path-free (file-name sniffing, diagnostics) and the
 * helpers are one-liners.
 */

#ifndef TRB_COMMON_STRINGS_HH
#define TRB_COMMON_STRINGS_HH

#include <cstdarg>
#include <cstdio>
#include <string>
#include <string_view>

namespace trb
{

/** printf into a std::string (bench titles, diagnostics). */
inline std::string
#if defined(__GNUC__)
    __attribute__((format(printf, 1, 2)))
#endif
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (needed > 0) {
        // One slot for the terminator vsnprintf insists on writing,
        // trimmed off after the fact.
        out.resize(static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args);
        out.pop_back();
    }
    va_end(args);
    return out;
}

/**
 * True if @p text ends with @p suffix.  Safe for any lengths -- the
 * hand-rolled `compare(size() - 3, ...)` idiom this replaces silently
 * required the caller to pre-check the length.
 */
constexpr bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace trb

#endif // TRB_COMMON_STRINGS_HH
