/**
 * @file
 * Tiny string helpers shared across the tree.  Kept header-only: the
 * callers are hot-path-free (file-name sniffing, diagnostics) and the
 * helpers are one-liners.
 */

#ifndef TRB_COMMON_STRINGS_HH
#define TRB_COMMON_STRINGS_HH

#include <string_view>

namespace trb
{

/**
 * True if @p text ends with @p suffix.  Safe for any lengths -- the
 * hand-rolled `compare(size() - 3, ...)` idiom this replaces silently
 * required the caller to pre-check the length.
 */
constexpr bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace trb

#endif // TRB_COMMON_STRINGS_HH
