/**
 * @file
 * Unit tests for the trace formats: CVP-1 (de)serialisation round-trips,
 * ChampSim record layout and file I/O, and exhaustive checks of the
 * branch-type deduction rules (original vs patched).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.hh"
#include "trace/branch_deduce.hh"
#include "trace/champsim_trace.hh"
#include "trace/cvp_trace.hh"
#include "trace/trace_stats.hh"

namespace trb
{
namespace
{

namespace fs = std::filesystem;

std::string
tempPath(const std::string &name)
{
    return (fs::temp_directory_path() / name).string();
}

CvpRecord
randomCvpRecord(Rng &rng)
{
    CvpRecord rec;
    rec.pc = rng.next();
    rec.cls = static_cast<InstClass>(rng.below(9));
    if (isBranch(rec.cls)) {
        rec.taken = rng.chance(0.5);
        rec.target = rng.next();
    }
    if (isMem(rec.cls)) {
        rec.ea = rng.next();
        rec.accessSize = static_cast<std::uint8_t>(1u << rng.below(4));
    }
    unsigned nsrc = static_cast<unsigned>(rng.below(kMaxCvpSrc + 1));
    for (unsigned i = 0; i < nsrc; ++i)
        rec.addSrc(static_cast<RegId>(rng.below(aarch64::kNumRegs)));
    unsigned ndst = static_cast<unsigned>(rng.below(kMaxCvpDst + 1));
    for (unsigned i = 0; i < ndst; ++i)
        rec.addDst(static_cast<RegId>(rng.below(aarch64::kNumRegs)),
                   rng.next());
    return rec;
}

TEST(CvpRecord, AddHelpersRespectLimits)
{
    CvpRecord rec;
    for (unsigned i = 0; i < kMaxCvpSrc + 3; ++i)
        rec.addSrc(static_cast<RegId>(i + 1));
    EXPECT_EQ(rec.numSrc, kMaxCvpSrc);
    for (unsigned i = 0; i < kMaxCvpDst + 3; ++i)
        rec.addDst(static_cast<RegId>(i + 1), i);
    EXPECT_EQ(rec.numDst, kMaxCvpDst);
    EXPECT_TRUE(rec.readsReg(1));
    EXPECT_FALSE(rec.readsReg(60));
    EXPECT_TRUE(rec.writesReg(2));
    EXPECT_FALSE(rec.writesReg(60));
}

TEST(CvpSerialize, SingleRecordRoundTrip)
{
    Rng rng(101);
    for (int i = 0; i < 500; ++i) {
        CvpRecord rec = randomCvpRecord(rng);
        std::vector<std::uint8_t> buf;
        serializeCvpRecord(rec, buf);
        CvpRecord back;
        std::size_t off = 0;
        ASSERT_TRUE(deserializeCvpRecord(buf.data(), buf.size(), off, back));
        EXPECT_EQ(off, buf.size());
        EXPECT_TRUE(rec == back);
    }
}

TEST(CvpSerialize, TruncatedInputRejected)
{
    Rng rng(103);
    CvpRecord rec = randomCvpRecord(rng);
    std::vector<std::uint8_t> buf;
    serializeCvpRecord(rec, buf);
    for (std::size_t cut = 0; cut < buf.size(); ++cut) {
        CvpRecord back;
        std::size_t off = 0;
        EXPECT_FALSE(deserializeCvpRecord(buf.data(), cut, off, back))
            << "cut=" << cut;
        EXPECT_EQ(off, 0u);
    }
}

TEST(CvpSerialize, GarbageClassRejected)
{
    std::vector<std::uint8_t> buf(9, 0);
    buf[8] = 200;   // invalid class byte
    CvpRecord back;
    std::size_t off = 0;
    EXPECT_FALSE(deserializeCvpRecord(buf.data(), buf.size(), off, back));
}

class CvpFileRoundTrip : public ::testing::TestWithParam<const char *>
{};

TEST_P(CvpFileRoundTrip, WholeTrace)
{
    Rng rng(107);
    CvpTrace trace;
    for (int i = 0; i < 3000; ++i)
        trace.push_back(randomCvpRecord(rng));
    std::string path = tempPath(std::string("trb_cvp_rt") + GetParam());
    writeCvpTrace(path, trace);
    CvpTrace back = readCvpTrace(path);
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        ASSERT_TRUE(trace[i] == back[i]) << "record " << i;

    // Streaming reader agrees.
    CvpTraceReader reader(path);
    EXPECT_EQ(reader.count(), trace.size());
    CvpRecord rec;
    std::size_t n = 0;
    while (reader.next(rec))
        ++n;
    EXPECT_EQ(n, trace.size());
    fs::remove(path);
}

INSTANTIATE_TEST_SUITE_P(RawAndGz, CvpFileRoundTrip,
                         ::testing::Values(".bin", ".gz"));

TEST(CvpFile, EmptyTraceRoundTrips)
{
    std::string path = tempPath("trb_cvp_empty.bin");
    writeCvpTrace(path, {});
    EXPECT_TRUE(readCvpTrace(path).empty());
    fs::remove(path);
}

TEST(ChampSimRecord, LayoutIs64Bytes)
{
    EXPECT_EQ(sizeof(ChampSimRecord), 64u);
    EXPECT_EQ(offsetof(ChampSimRecord, ip), 0u);
    EXPECT_EQ(offsetof(ChampSimRecord, isBranch), 8u);
    EXPECT_EQ(offsetof(ChampSimRecord, branchTaken), 9u);
    EXPECT_EQ(offsetof(ChampSimRecord, destRegs), 10u);
    EXPECT_EQ(offsetof(ChampSimRecord, srcRegs), 12u);
    EXPECT_EQ(offsetof(ChampSimRecord, destMem), 16u);
    EXPECT_EQ(offsetof(ChampSimRecord, srcMem), 32u);
}

TEST(ChampSimRecord, SlotHelpers)
{
    ChampSimRecord rec;
    EXPECT_TRUE(rec.addSrcReg(5));
    EXPECT_TRUE(rec.addSrcReg(5));   // duplicate collapses
    EXPECT_TRUE(rec.addSrcReg(6));
    EXPECT_TRUE(rec.addSrcReg(7));
    EXPECT_TRUE(rec.addSrcReg(8));
    EXPECT_FALSE(rec.addSrcReg(9));  // full
    EXPECT_TRUE(rec.readsReg(5));
    EXPECT_FALSE(rec.readsReg(9));

    EXPECT_TRUE(rec.addDstReg(3));
    EXPECT_TRUE(rec.addDstReg(4));
    EXPECT_FALSE(rec.addDstReg(5));
    EXPECT_TRUE(rec.writesReg(3));

    EXPECT_FALSE(rec.isLoad());
    EXPECT_TRUE(rec.addSrcMem(0x1000));
    EXPECT_TRUE(rec.isLoad());
    EXPECT_EQ(rec.numSrcMem(), 1u);
    EXPECT_TRUE(rec.addDstMem(0x2000));
    EXPECT_TRUE(rec.isStore());
}

TEST(ChampSimFile, RoundTripRawAndGz)
{
    Rng rng(109);
    ChampSimTrace trace;
    for (int i = 0; i < 5000; ++i) {
        ChampSimRecord rec;
        rec.ip = rng.next();
        rec.isBranch = rng.chance(0.1);
        rec.branchTaken = rec.isBranch && rng.chance(0.5);
        if (rng.chance(0.3))
            rec.addSrcMem(rng.next());
        if (rng.chance(0.1))
            rec.addDstMem(rng.next());
        rec.addDstReg(static_cast<RegId>(1 + rng.below(50)));
        trace.push_back(rec);
    }
    for (const char *suffix : {".bin", ".gz"}) {
        std::string path = tempPath(std::string("trb_cs_rt") + suffix);
        writeChampSimTrace(path, trace);
        ChampSimTrace back = readChampSimTrace(path);
        ASSERT_EQ(back.size(), trace.size());
        for (std::size_t i = 0; i < trace.size(); ++i)
            ASSERT_TRUE(trace[i] == back[i]);
        fs::remove(path);
    }
}

// ---------------------------------------------------------------------
// Branch deduction.

/** Build a record from usage flags using representative registers. */
ChampSimRecord
recordFromUsage(const RegUsage &u)
{
    ChampSimRecord rec;
    rec.isBranch = 1;
    if (u.readsSp)
        rec.addSrcReg(champsim::kStackPointer);
    if (u.readsIp)
        rec.addSrcReg(champsim::kInstructionPointer);
    if (u.readsFlags)
        rec.addSrcReg(champsim::kFlags);
    if (u.readsOther)
        rec.addSrcReg(champsim::kOtherReg);
    if (u.writesSp)
        rec.addDstReg(champsim::kStackPointer);
    if (u.writesIp)
        rec.addDstReg(champsim::kInstructionPointer);
    return rec;
}

TEST(BranchDeduce, RegUsageExtraction)
{
    ChampSimRecord rec;
    rec.addSrcReg(champsim::kStackPointer);
    rec.addSrcReg(champsim::kFlags);
    rec.addSrcReg(33);
    rec.addDstReg(champsim::kInstructionPointer);
    RegUsage u = regUsage(rec);
    EXPECT_TRUE(u.readsSp);
    EXPECT_TRUE(u.readsFlags);
    EXPECT_TRUE(u.readsOther);
    EXPECT_FALSE(u.readsIp);
    EXPECT_TRUE(u.writesIp);
    EXPECT_FALSE(u.writesSp);
}

TEST(BranchDeduce, CanonicalEncodings)
{
    struct Case
    {
        RegUsage u;
        BranchType original;
        BranchType patched;
    };
    const Case cases[] = {
        // B: reads+writes IP only.
        {{false, false, true, true, false, false},
         BranchType::DirectJump, BranchType::DirectJump},
        // BR Xn: writes IP, reads other.
        {{false, false, false, true, false, true},
         BranchType::IndirectJump, BranchType::IndirectJump},
        // B.cond: reads+writes IP, reads flags.
        {{false, false, true, true, true, false},
         BranchType::Conditional, BranchType::Conditional},
        // CBZ-style after branch-regs: reads+writes IP, reads other.
        // Original rules misclassify it as an indirect jump.
        {{false, false, true, true, false, true},
         BranchType::IndirectJump, BranchType::Conditional},
        // CALL: reads SP+IP, writes SP+IP.
        {{true, true, true, true, false, false},
         BranchType::DirectCall, BranchType::DirectCall},
        // Indirect CALL: reads SP+other, writes SP+IP.
        {{true, true, false, true, false, true},
         BranchType::IndirectCall, BranchType::IndirectCall},
        // RET: reads SP, writes SP+IP.
        {{true, true, false, true, false, false},
         BranchType::Return, BranchType::Return},
    };
    for (const Case &c : cases) {
        EXPECT_EQ(deduceBranchType(c.u, DeductionRules::Original),
                  c.original);
        EXPECT_EQ(deduceBranchType(c.u, DeductionRules::Patched),
                  c.patched);
        // Record-level overload agrees with the flag-level one.
        EXPECT_EQ(deduceBranchType(recordFromUsage(c.u),
                                   DeductionRules::Original),
                  c.original);
        EXPECT_EQ(deduceBranchType(recordFromUsage(c.u),
                                   DeductionRules::Patched),
                  c.patched);
    }
}

TEST(BranchDeduce, NonBranchNeverTyped)
{
    ChampSimRecord rec;
    rec.addSrcReg(champsim::kFlags);
    EXPECT_EQ(deduceBranchType(rec, DeductionRules::Original),
              BranchType::NotBranch);
    RegUsage u;   // writesIp false
    u.readsIp = true;
    EXPECT_EQ(deduceBranchType(u, DeductionRules::Patched),
              BranchType::NotBranch);
}

/** Exhaustive sweep over all 64 usage combinations (writesIp forced). */
class DeduceSweep : public ::testing::TestWithParam<int>
{};

TEST_P(DeduceSweep, PatchedOnlyReclassifiesTheTwoDocumentedCases)
{
    int bits = GetParam();
    RegUsage u;
    u.readsSp = bits & 1;
    u.writesSp = bits & 2;
    u.readsIp = bits & 4;
    u.readsFlags = bits & 8;
    u.readsOther = bits & 16;
    u.writesIp = true;

    BranchType orig = deduceBranchType(u, DeductionRules::Original);
    BranchType pat = deduceBranchType(u, DeductionRules::Patched);
    if (orig != pat) {
        // The paper's two §3.2.2 modifications only move branches that
        // read IP and other registers (no SP involvement) from
        // indirect-jump/fallback into conditional.
        EXPECT_TRUE(u.readsIp && u.readsOther && !u.readsSp && !u.writesSp)
            << "bits=" << bits;
        EXPECT_EQ(pat, BranchType::Conditional);
    }
}

INSTANTIATE_TEST_SUITE_P(AllUsageCombos, DeduceSweep,
                         ::testing::Range(0, 32));

TEST(TraceStats, ChampSimCharacterization)
{
    ChampSimTrace trace;
    ChampSimRecord ld;
    ld.ip = 0x100;
    ld.addSrcMem(0x1000);
    ld.addSrcMem(0x1040);
    trace.push_back(ld);
    ChampSimRecord br = recordFromUsage(
        {false, false, true, true, true, false});
    br.ip = 0x104;
    br.branchTaken = 1;
    trace.push_back(br);
    trace.push_back(br);

    auto s = characterizeChampSim(trace, DeductionRules::Patched);
    EXPECT_EQ(s.instructions, 3u);
    EXPECT_EQ(s.loads, 1u);
    EXPECT_EQ(s.multiLineAccesses, 1u);
    EXPECT_EQ(s.branches, 2u);
    EXPECT_EQ(s.takenBranches, 2u);
    EXPECT_EQ(s.staticPcs, 2u);
    EXPECT_EQ(
        s.perBranchType[static_cast<int>(BranchType::Conditional)], 2u);
}

} // namespace
} // namespace trb
