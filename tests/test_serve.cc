/**
 * @file
 * Tests for trb::serve: frame round-trips, typed rejection of malformed
 * requests, FairQueue rotation and bounds, end-to-end fairness between
 * greedy clients, backpressure at the queue bound, graceful-shutdown
 * drain, and the headline soak -- hundreds of concurrent mixed
 * cold/warm requests whose replies are bit-identical to direct
 * simulate() calls, at pool widths 1 and 8.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/metrics.hh"
#include "resil/fault.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/queue.hh"
#include "serve/server.hh"
#include "sim/simulator.hh"
#include "store/store.hh"
#include "synth/generator.hh"
#include "synth/params.hh"

namespace fs = std::filesystem;

namespace trb
{
namespace
{

using serve::FairQueue;
using serve::Op;
using serve::ServeClient;
using serve::ServeConfig;
using serve::ServeDaemon;
using serve::ServeReply;
using serve::ServeRequest;

std::uint64_t
counter(const char *path)
{
    return obs::MetricsRegistry::global().counterValue(path);
}

/** A socket path short enough for sun_path, unique per test. */
std::string
testSocketPath()
{
    return "/tmp/trb_serve_" + std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()
               ->current_test_info()
               ->name() +
           ".sock";
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

class FramingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_));
    }

    void
    TearDown() override
    {
        if (fds_[0] >= 0)
            ::close(fds_[0]);
        if (fds_[1] >= 0)
            ::close(fds_[1]);
    }

    int fds_[2] = {-1, -1};
};

TEST_F(FramingTest, RoundTripsPayloads)
{
    for (const std::string &payload :
         {std::string(""), std::string("{}"),
          std::string("{\"op\": \"ping\"}"), std::string(4096, 'x')}) {
        ASSERT_TRUE(serve::writeFrame(fds_[0], payload).ok());
        std::string got;
        ASSERT_TRUE(serve::readFrame(fds_[1], got).ok());
        EXPECT_EQ(payload, got);
    }
}

TEST_F(FramingTest, BackToBackFramesStayAligned)
{
    ASSERT_TRUE(serve::writeFrame(fds_[0], "first").ok());
    ASSERT_TRUE(serve::writeFrame(fds_[0], "second").ok());
    std::string a, b;
    ASSERT_TRUE(serve::readFrame(fds_[1], a).ok());
    ASSERT_TRUE(serve::readFrame(fds_[1], b).ok());
    EXPECT_EQ("first", a);
    EXPECT_EQ("second", b);
}

TEST_F(FramingTest, RejectsOversizedWrites)
{
    std::string huge(serve::kMaxFrameBytes + 1, 'x');
    Status st = serve::writeFrame(fds_[0], huge);
    EXPECT_EQ(ErrorClass::Internal, st.errorClass());
}

TEST_F(FramingTest, RejectsGarbagePrefix)
{
    ASSERT_EQ(3, ::write(fds_[0], "xx\n", 3));
    std::string got;
    Status st = serve::readFrame(fds_[1], got);
    EXPECT_EQ(ErrorClass::CorruptRecord, st.errorClass());
    EXPECT_EQ("serve.frame", st.ruleViolated());
}

TEST_F(FramingTest, RejectsOversizedAnnouncedLength)
{
    ASSERT_LT(0, ::write(fds_[0], "99999999\n", 9));
    std::string got;
    Status st = serve::readFrame(fds_[1], got);
    EXPECT_EQ(ErrorClass::CorruptRecord, st.errorClass());
    EXPECT_EQ("serve.frame-size", st.ruleViolated());
}

TEST_F(FramingTest, DistinguishesCleanCloseFromTruncation)
{
    ::close(fds_[0]);
    fds_[0] = -1;
    std::string got;
    Status st = serve::readFrame(fds_[1], got);
    EXPECT_TRUE(serve::isCleanClose(st));

    // A half-written frame is *not* a clean close.
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_));
    ASSERT_EQ(5, ::write(fds_[0], "10\nab", 5));
    ::close(fds_[0]);
    fds_[0] = -1;
    st = serve::readFrame(fds_[1], got);
    EXPECT_EQ(ErrorClass::TruncatedInput, st.errorClass());
    EXPECT_FALSE(serve::isCleanClose(st));
}

// ---------------------------------------------------------------------
// Request/reply documents
// ---------------------------------------------------------------------

TEST(ServeProtocol, RequestRoundTripsThroughJson)
{
    ServeRequest req;
    req.op = Op::Sim;
    req.id = "soak-3-17";
    req.trace = "suite:cvp1:server_017";
    req.length = 20000;
    req.imps = kAllImps;
    req.ipc1 = true;
    req.warmupFraction = 0.5;
    req.useStore = false;

    ServeRequest back;
    ASSERT_TRUE(serve::parseRequest(serve::requestJson(req), back).ok());
    EXPECT_EQ(Op::Sim, back.op);
    EXPECT_EQ(req.id, back.id);
    EXPECT_EQ(req.trace, back.trace);
    EXPECT_EQ(req.length, back.length);
    EXPECT_EQ(req.imps, back.imps);
    EXPECT_EQ(req.ipc1, back.ipc1);
    EXPECT_EQ(req.warmupFraction, back.warmupFraction);
    EXPECT_EQ(req.useStore, back.useStore);
}

TEST(ServeProtocol, DefaultsApplyToMinimalSimRequest)
{
    ServeRequest req;
    ASSERT_TRUE(
        serve::parseRequest(
            "{\"op\": \"sim\", \"trace\": \"preset:int:1\"}", req)
            .ok());
    EXPECT_EQ(std::uint64_t{50000}, req.length);
    EXPECT_EQ(ImprovementSet{kImpNone}, req.imps);
    EXPECT_FALSE(req.ipc1);
    EXPECT_EQ(0.0, req.warmupFraction);
    EXPECT_TRUE(req.useStore);
}

TEST(ServeProtocol, RejectsMalformedRequestsWithTypedErrors)
{
    const struct
    {
        const char *json;
        const char *rule;
    } cases[] = {
        {"not json at all", "serve.json"},
        {"{\"op\": \"fly\"}", "serve.op"},
        {"{}", "serve.op"},
        {"{\"op\": \"sim\"}", "serve.trace"},
        {"{\"op\": \"sim\", \"trace\": \"preset:int:1\", "
         "\"length\": 10}",
         "serve.length"},
        {"{\"op\": \"sim\", \"trace\": \"preset:int:1\", "
         "\"imps\": \"Every_imp\"}",
         "serve.imps"},
        {"{\"op\": \"sim\", \"trace\": \"preset:int:1\", "
         "\"config\": \"ancient\"}",
         "serve.config"},
        {"{\"op\": \"sim\", \"trace\": \"preset:int:1\", "
         "\"warmup_fraction\": 1.5}",
         "serve.warmup"},
    };
    for (const auto &c : cases) {
        ServeRequest req;
        Status st = serve::parseRequest(c.json, req);
        EXPECT_EQ(ErrorClass::BadRequest, st.errorClass()) << c.json;
        EXPECT_EQ(c.rule, st.ruleViolated()) << c.json;
    }
}

TEST(ServeProtocol, DeadlineRoundTripsAndRejectsGarbage)
{
    ServeRequest req;
    req.op = Op::Sim;
    req.trace = "preset:int:5";
    req.deadlineMs = 750;
    std::string doc = serve::requestJson(req);
    EXPECT_NE(doc.find("\"deadline_ms\""), std::string::npos);
    ServeRequest back;
    ASSERT_TRUE(serve::parseRequest(doc, back).ok());
    EXPECT_EQ(std::uint64_t{750}, back.deadlineMs);

    // Zero means unbounded, is the default, and stays off the wire.
    req.deadlineMs = 0;
    EXPECT_EQ(serve::requestJson(req).find("deadline_ms"),
              std::string::npos);
    ServeRequest none;
    ASSERT_TRUE(serve::parseRequest(
                    "{\"op\": \"sim\", \"trace\": \"preset:int:5\"}",
                    none)
                    .ok());
    EXPECT_EQ(std::uint64_t{0}, none.deadlineMs);

    const char *bad[] = {
        "{\"op\": \"sim\", \"trace\": \"preset:int:5\", "
        "\"deadline_ms\": -1}",
        "{\"op\": \"sim\", \"trace\": \"preset:int:5\", "
        "\"deadline_ms\": 1.5}",
        "{\"op\": \"sim\", \"trace\": \"preset:int:5\", "
        "\"deadline_ms\": 2000000000}",
    };
    for (const char *doc2 : bad) {
        ServeRequest r;
        Status st = serve::parseRequest(doc2, r);
        ASSERT_FALSE(st.ok()) << doc2;
        EXPECT_EQ(ErrorClass::BadRequest, st.errorClass()) << doc2;
        EXPECT_EQ("serve.deadline", st.ruleViolated()) << doc2;
    }
}

TEST(ServeProtocol, ValidateSocketPathTypesTheFailure)
{
    EXPECT_TRUE(serve::validateSocketPath("/tmp/ok.sock").ok());

    for (const std::string &path :
         {std::string(), std::string(300, 'p')}) {
        Status st = serve::validateSocketPath(path);
        ASSERT_FALSE(st.ok()) << path.size();
        EXPECT_EQ(ErrorClass::BadRequest, st.errorClass());
        EXPECT_EQ("serve.socket-path", st.ruleViolated());
    }

    // The boundary: sun_path must hold the path plus its NUL.
    const std::size_t cap = sizeof(sockaddr_un{}.sun_path) - 1;
    EXPECT_TRUE(serve::validateSocketPath(std::string(cap, 'p')).ok());
    EXPECT_FALSE(
        serve::validateSocketPath(std::string(cap + 1, 'p')).ok());
}

TEST(ServeProtocol, ResolveTraceRejectsUnknownSpecs)
{
    const char *bad[] = {
        "nocolon",
        "suite:cvp1:not_a_trace",
        "suite:ipc2:client_001",
        "preset:quantum:1",
        "preset:int:notanumber",
    };
    for (const char *spec : bad) {
        ServeRequest req;
        req.trace = spec;
        req.length = 1000;
        Expected<CvpTrace> trace = serve::resolveTrace(req);
        ASSERT_FALSE(trace.ok()) << spec;
        EXPECT_EQ(ErrorClass::BadRequest, trace.status().errorClass())
            << spec;
    }
}

TEST(ServeProtocol, SimReplyCarriesExactStatBits)
{
    CvpTrace cvp = TraceGenerator(computeIntParams(11)).generate(2000);
    SimResult direct = simulate(cvp, SimRequest{.useStore = false});

    ServeReply reply;
    ASSERT_TRUE(
        serve::parseReply(serve::simReplyJson("tag", direct, 42), reply)
            .ok());
    EXPECT_TRUE(reply.ok);
    EXPECT_EQ("sim", reply.op);
    EXPECT_EQ("tag", reply.id);
    EXPECT_EQ(std::uint64_t{42}, reply.seq);
    EXPECT_EQ(direct.stats.toBits(), reply.stats.toBits());
}

TEST(ServeProtocol, ErrorReplyRoundTripsTheTaxonomy)
{
    std::string json = serve::errorReplyJson(
        "sim", "id9",
        Status::busy("queue full").rule("serve.queue-bound"));
    ServeReply reply;
    ASSERT_TRUE(serve::parseReply(json, reply).ok());
    EXPECT_FALSE(reply.ok);
    EXPECT_EQ("sim", reply.op);
    EXPECT_EQ("id9", reply.id);
    EXPECT_EQ(ErrorClass::Busy, reply.error.errorClass());
    EXPECT_EQ("serve.queue-bound", reply.error.ruleViolated());
    EXPECT_TRUE(reply.error.retryable());
}

// ---------------------------------------------------------------------
// FairQueue
// ---------------------------------------------------------------------

TEST(FairQueueTest, RotatesBetweenClients)
{
    FairQueue<int> q(16, 1);
    // Greedy client a queues 3 before b queues 2.
    ASSERT_TRUE(q.push("a", 1));
    ASSERT_TRUE(q.push("a", 2));
    ASSERT_TRUE(q.push("a", 3));
    ASSERT_TRUE(q.push("b", 10));
    ASSERT_TRUE(q.push("b", 20));

    std::vector<int> order;
    int item = 0;
    while (q.pop(item))
        order.push_back(item);
    EXPECT_EQ((std::vector<int>{1, 10, 2, 20, 3}), order);
    EXPECT_EQ(0u, q.depth());
    EXPECT_EQ(0u, q.lanes());
}

TEST(FairQueueTest, QuantumTakesRunsBeforeRotating)
{
    FairQueue<int> q(16, 2);
    for (int i = 1; i <= 4; ++i)
        ASSERT_TRUE(q.push("a", i));
    ASSERT_TRUE(q.push("b", 10));
    ASSERT_TRUE(q.push("b", 20));

    std::vector<int> order;
    int item = 0;
    while (q.pop(item))
        order.push_back(item);
    EXPECT_EQ((std::vector<int>{1, 2, 10, 20, 3, 4}), order);
}

TEST(FairQueueTest, BoundRejectsAndDrainRestores)
{
    FairQueue<int> q(2, 1);
    EXPECT_TRUE(q.push("a", 1));
    EXPECT_TRUE(q.push("b", 2));
    EXPECT_FALSE(q.push("a", 3));
    EXPECT_FALSE(q.push("c", 4));
    EXPECT_EQ(2u, q.depth());

    int item = 0;
    EXPECT_TRUE(q.pop(item));
    EXPECT_TRUE(q.push("c", 4));
    EXPECT_TRUE(q.pop(item));
    EXPECT_TRUE(q.pop(item));
    EXPECT_FALSE(q.pop(item));
}

TEST(FairQueueTest, LateClientWaitsAtMostOneRotation)
{
    FairQueue<int> q(16, 1);
    ASSERT_TRUE(q.push("a", 1));
    ASSERT_TRUE(q.push("a", 2));
    int item = 0;
    ASSERT_TRUE(q.pop(item));
    EXPECT_EQ(1, item);
    ASSERT_TRUE(q.push("b", 10));
    ASSERT_TRUE(q.pop(item));
    EXPECT_EQ(2, item);
    ASSERT_TRUE(q.pop(item));
    EXPECT_EQ(10, item);
}

// ---------------------------------------------------------------------
// End-to-end daemon
// ---------------------------------------------------------------------

/** Daemon + socket + per-test store directory scaffolding. */
class ServeDaemonTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        storeDir_ = std::string(TRB_BUILD_DIR) + "/store_test/serve_" +
                    ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name();
        fs::remove_all(storeDir_);
        socketPath_ = testSocketPath();
    }

    void
    TearDown() override
    {
        store::Store::setDirForTesting("");
        fs::remove_all(storeDir_);
        ::unlink(socketPath_.c_str());
    }

    ServeConfig
    config()
    {
        ServeConfig cfg;
        cfg.socketPath = socketPath_;
        return cfg;
    }

    std::string storeDir_;
    std::string socketPath_;
};

TEST_F(ServeDaemonTest, PingAndStatsAnswerInline)
{
    par::ThreadPool pool(2);
    ServeDaemon daemon(config(), &pool);
    ASSERT_TRUE(daemon.start().ok());

    ServeClient client;
    ASSERT_TRUE(client.connect(socketPath_).ok());
    ServeReply reply;
    ASSERT_TRUE(client.ping(reply).ok());
    EXPECT_TRUE(reply.ok);
    EXPECT_EQ("trb-serve-v1", reply.raw.str("schema"));

    ASSERT_TRUE(client.stats(reply).ok());
    EXPECT_TRUE(reply.ok);
    EXPECT_EQ(2.0, reply.raw.number("jobs"));
    EXPECT_EQ(64.0, reply.raw.number("queue_bound"));
    daemon.stop();
    EXPECT_FALSE(fs::exists(socketPath_));
}

/** Connect a raw fd to @p path (bypasses ServeClient's encoder). */
int
rawConnect(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  path.c_str());
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

TEST_F(ServeDaemonTest, MalformedRequestGetsTypedReplyAndKeepsConn)
{
    par::ThreadPool pool(2);
    ServeDaemon daemon(config(), &pool);
    ASSERT_TRUE(daemon.start().ok());

    const std::uint64_t before = counter("serve.rejected.malformed");

    int fd = rawConnect(socketPath_);
    ASSERT_GE(fd, 0);

    // Garbage documents in valid frames: each gets a typed bad_request
    // reply and the connection stays open for the next one.
    const char *garbage[] = {
        "this is not json",
        "{\"op\": \"warp\"}",
        "{\"op\": \"sim\"}",
    };
    for (const char *doc : garbage) {
        ASSERT_TRUE(serve::writeFrame(fd, doc).ok());
        std::string payload;
        ASSERT_TRUE(serve::readFrame(fd, payload).ok());
        ServeReply reply;
        ASSERT_TRUE(serve::parseReply(payload, reply).ok()) << payload;
        EXPECT_FALSE(reply.ok);
        EXPECT_EQ(ErrorClass::BadRequest, reply.error.errorClass())
            << doc;
    }
    EXPECT_EQ(before + 3, counter("serve.rejected.malformed"));

    // The same connection still serves well-formed requests.
    ASSERT_TRUE(serve::writeFrame(fd, "{\"op\": \"ping\"}").ok());
    std::string payload;
    ASSERT_TRUE(serve::readFrame(fd, payload).ok());
    ServeReply reply;
    ASSERT_TRUE(serve::parseReply(payload, reply).ok());
    EXPECT_TRUE(reply.ok);

    // A framing violation, by contrast, hangs the connection up.
    ASSERT_EQ(3, ::write(fd, "zz\n", 3));
    Status st;
    for (;;) {
        st = serve::readFrame(fd, payload);
        if (!st.ok())
            break;   // the daemon's parting error reply, then close
    }
    ::close(fd);
    daemon.stop();
}

TEST_F(ServeDaemonTest, SimMatchesDirectSimulateColdAndWarm)
{
    store::Store::setDirForTesting(storeDir_);
    par::ThreadPool pool(2);
    ServeDaemon daemon(config(), &pool);
    ASSERT_TRUE(daemon.start().ok());

    ServeRequest req;
    req.op = Op::Sim;
    req.trace = "preset:int:5";
    req.length = 2000;
    req.imps = kAllImps;
    req.id = "cold";

    ServeClient client;
    ASSERT_TRUE(client.connect(socketPath_).ok());
    ServeReply cold;
    ASSERT_TRUE(client.call(req, cold).ok());
    ASSERT_TRUE(cold.ok) << cold.error.toString();
    EXPECT_FALSE(cold.statsFromStore);

    req.id = "warm";
    ServeReply warm;
    ASSERT_TRUE(client.call(req, warm).ok());
    ASSERT_TRUE(warm.ok) << warm.error.toString();
    EXPECT_TRUE(warm.statsFromStore);

    CvpTrace cvp = TraceGenerator(computeIntParams(5)).generate(2000);
    SimResult direct = simulate(
        cvp, SimRequest{.imps = kAllImps, .useStore = false});
    EXPECT_EQ(direct.stats.toBits(), cold.stats.toBits());
    EXPECT_EQ(direct.stats.toBits(), warm.stats.toBits());
    daemon.stop();
}

TEST_F(ServeDaemonTest, BackpressureRepliesBusyAtQueueBound)
{
    ServeConfig cfg = config();
    cfg.queueBound = 1;
    cfg.maxInflight = 1;
    par::ThreadPool pool(2);
    ServeDaemon daemon(cfg, &pool);
    ASSERT_TRUE(daemon.start().ok());

    const std::uint64_t busyBefore = counter("serve.rejected.busy");

    // Pipeline more sims than bound + inflight can hold; the excess
    // must come back as typed busy replies, nothing lost.
    const int kSent = 8;
    ServeClient client;
    ASSERT_TRUE(client.connect(socketPath_).ok());
    for (int i = 0; i < kSent; ++i) {
        ServeRequest req;
        req.op = Op::Sim;
        req.trace = "preset:int:9";
        req.length = 20000;   // slow enough to keep the queue full
        req.useStore = false;
        req.id = "req-" + std::to_string(i);
        ASSERT_TRUE(client.send(req).ok());
    }

    int okCount = 0, busyCount = 0;
    std::set<std::string> ids;
    for (int i = 0; i < kSent; ++i) {
        ServeReply reply;
        ASSERT_TRUE(client.recv(reply).ok());
        EXPECT_TRUE(ids.insert(reply.id).second)
            << "duplicate reply for " << reply.id;
        if (reply.ok) {
            ++okCount;
        } else {
            ASSERT_EQ(ErrorClass::Busy, reply.error.errorClass())
                << reply.error.toString();
            EXPECT_EQ("serve.queue-bound", reply.error.ruleViolated());
            ++busyCount;
        }
    }
    EXPECT_EQ(kSent, okCount + busyCount);
    EXPECT_EQ(static_cast<std::size_t>(kSent), ids.size());
    EXPECT_GE(busyCount, 1);
    EXPECT_GE(okCount, 1);
    EXPECT_GE(counter("serve.rejected.busy"), busyBefore + 1);
    daemon.stop();
}

TEST_F(ServeDaemonTest, FairnessTwoGreedyClientsBothProgress)
{
    ServeConfig cfg = config();
    cfg.maxInflight = 1;   // serialize dispatch so rotation is visible
    par::ThreadPool pool(2);
    ServeDaemon daemon(cfg, &pool);
    ASSERT_TRUE(daemon.start().ok());

    const int kEach = 6;
    auto drive = [&](std::vector<std::uint64_t> &seqs) {
        ServeClient client;
        ASSERT_TRUE(client.connect(socketPath_).ok());
        for (int i = 0; i < kEach; ++i) {
            ServeRequest req;
            req.op = Op::Sim;
            req.trace = "preset:int:3";
            req.length = 20000;
            req.useStore = false;
            req.id = std::to_string(i);
            ASSERT_TRUE(client.send(req).ok());
        }
        for (int i = 0; i < kEach; ++i) {
            ServeReply reply;
            ASSERT_TRUE(client.recv(reply).ok());
            ASSERT_TRUE(reply.ok) << reply.error.toString();
            seqs.push_back(reply.seq);
        }
    };

    std::vector<std::uint64_t> seqA, seqB;
    std::thread ta([&] { drive(seqA); });
    std::thread tb([&] { drive(seqB); });
    ta.join();
    tb.join();

    ASSERT_EQ(static_cast<std::size_t>(kEach), seqA.size());
    ASSERT_EQ(static_cast<std::size_t>(kEach), seqB.size());

    // Round-robin dispatch means neither client's backlog finishes
    // before the other's begins: the dispatch sequences interleave.
    const std::uint64_t aMax =
        *std::max_element(seqA.begin(), seqA.end());
    const std::uint64_t bMax =
        *std::max_element(seqB.begin(), seqB.end());
    const std::uint64_t aMin =
        *std::min_element(seqA.begin(), seqA.end());
    const std::uint64_t bMin =
        *std::min_element(seqB.begin(), seqB.end());
    EXPECT_LT(aMin, bMax);
    EXPECT_LT(bMin, aMax);
    daemon.stop();
}

TEST_F(ServeDaemonTest, StopDrainsQueuedRequestsWithTypedBusy)
{
    ServeConfig cfg = config();
    cfg.maxInflight = 1;
    cfg.queueBound = 64;
    par::ThreadPool pool(2);
    ServeDaemon daemon(cfg, &pool);
    ASSERT_TRUE(daemon.start().ok());

    ServeClient client;
    ASSERT_TRUE(client.connect(socketPath_).ok());
    for (int i = 0; i < 4; ++i) {
        ServeRequest req;
        req.op = Op::Sim;
        req.trace = "preset:int:2";
        req.length = 20000;
        req.useStore = false;
        req.id = std::to_string(i);
        ASSERT_TRUE(client.send(req).ok());
    }

    // A trailing ping pins down the race with stop(): the reader
    // answers it inline only after it has queued all four sims, so
    // once the pong arrives the backlog is really in the daemon.
    ServeRequest ping;
    ping.op = Op::Ping;
    ASSERT_TRUE(client.send(ping).ok());

    int answered = 0;
    for (bool pong = false; !pong;) {
        ServeReply reply;
        ASSERT_TRUE(client.recv(reply).ok());
        if (reply.op == "ping")
            pong = true;
        else
            ++answered;
    }
    daemon.stop();

    // Every queued request is answered before the daemon hangs up:
    // by a result or by a typed shutdown busy.
    for (; answered < 4; ++answered) {
        ServeReply reply;
        ASSERT_TRUE(client.recv(reply).ok());
        EXPECT_EQ("sim", reply.op);
        if (!reply.ok)
            EXPECT_EQ(ErrorClass::Busy, reply.error.errorClass());
    }
    EXPECT_EQ(4, answered);
}

// ---------------------------------------------------------------------
// Hostile time: deadlines, cancellation, dead clients
// ---------------------------------------------------------------------

TEST_F(ServeDaemonTest, StartRejectsOversizedSocketPathTyped)
{
    ServeConfig cfg = config();
    cfg.socketPath = "/tmp/" + std::string(200, 'x') + ".sock";
    par::ThreadPool pool(1);
    ServeDaemon daemon(cfg, &pool);
    Status st = daemon.start();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(ErrorClass::BadRequest, st.errorClass());
    EXPECT_EQ("serve.socket-path", st.ruleViolated());
    daemon.stop();   // must be a harmless no-op after a failed start
}

TEST_F(ServeDaemonTest, QueuedPastDeadlineGetsTypedTimeout)
{
    ServeConfig cfg = config();
    cfg.maxInflight = 1;
    cfg.watchdogMs = 10;
    par::ThreadPool pool(2);
    ServeDaemon daemon(cfg, &pool);
    ASSERT_TRUE(daemon.start().ok());

    const std::uint64_t timedBefore = counter("serve.timeout.queued") +
                                      counter("serve.timeout.cancelled");

    ServeClient client;
    ASSERT_TRUE(client.connect(socketPath_).ok());

    // The first request holds the single inflight slot for tens of
    // milliseconds...
    ServeRequest slow;
    slow.op = Op::Sim;
    slow.trace = "preset:int:9";
    slow.length = 20000;
    slow.useStore = false;
    slow.id = "slow";
    ASSERT_TRUE(client.send(slow).ok());

    // ...so the 1 ms deadline on the second expires while it queues,
    // and the daemon must answer it typed without simulating anything.
    ServeRequest doomed = slow;
    doomed.id = "doomed";
    doomed.deadlineMs = 1;
    ASSERT_TRUE(client.send(doomed).ok());

    std::map<std::string, ServeReply> replies;
    for (int i = 0; i < 2; ++i) {
        ServeReply r;
        ASSERT_TRUE(client.recv(r).ok());
        replies[r.id] = r;
    }
    ASSERT_EQ(2u, replies.size());
    EXPECT_TRUE(replies["slow"].ok)
        << replies["slow"].error.toString();
    const ServeReply &timedOut = replies["doomed"];
    ASSERT_FALSE(timedOut.ok);
    EXPECT_EQ(ErrorClass::Timeout, timedOut.error.errorClass());
    EXPECT_TRUE(timedOut.error.retryable());
    EXPECT_GE(counter("serve.timeout.queued") +
                  counter("serve.timeout.cancelled"),
              timedBefore + 1);
    daemon.stop();
}

TEST_F(ServeDaemonTest, InflightPastDeadlineIsCancelledMidSim)
{
    ServeConfig cfg = config();
    cfg.watchdogMs = 5;
    par::ThreadPool pool(2);
    ServeDaemon daemon(cfg, &pool);
    ASSERT_TRUE(daemon.start().ok());

    const std::uint64_t timedBefore = counter("serve.timeout.queued") +
                                      counter("serve.timeout.cancelled");

    // Hundreds of milliseconds of work against a 1 ms budget: the
    // watchdog fires the token and the core's poll aborts the run --
    // the reply must arrive in watchdog time, not simulation time.
    ServeClient client;
    ASSERT_TRUE(client.connect(socketPath_).ok());
    ServeRequest req;
    req.op = Op::Sim;
    req.trace = "preset:server:4";
    req.length = 500000;
    req.useStore = false;
    req.deadlineMs = 1;
    req.id = "doomed";
    ServeReply reply;
    ASSERT_TRUE(client.call(req, reply).ok());
    ASSERT_FALSE(reply.ok);
    EXPECT_EQ(ErrorClass::Timeout, reply.error.errorClass());
    EXPECT_TRUE(reply.error.retryable());
    EXPECT_GE(counter("serve.timeout.queued") +
                  counter("serve.timeout.cancelled"),
              timedBefore + 1);
    daemon.stop();
}

TEST_F(ServeDaemonTest, DeadClientIsReapedAndInflightCancelled)
{
    ServeConfig cfg = config();
    cfg.watchdogMs = 10;
    par::ThreadPool pool(2);
    ServeDaemon daemon(cfg, &pool);
    ASSERT_TRUE(daemon.start().ok());

    const std::uint64_t reapedBefore = counter("serve.reaped.dead");

    {
        ServeClient victim;
        ASSERT_TRUE(victim.connect(socketPath_).ok());
        ServeRequest req;
        req.op = Op::Sim;
        req.trace = "preset:membound:6";
        req.length = 500000;
        req.useStore = false;
        req.id = "abandoned";
        ASSERT_TRUE(victim.send(req).ok());
        // Give the daemon a moment to dispatch the request...
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }   // ...then vanish without ever reading the reply.

    // The watchdog notices the hangup, cancels the in-flight work and
    // reaps the connection instead of simulating half a million
    // records for nobody.
    auto &reg = obs::MetricsRegistry::global();
    bool drained = false;
    for (int spin = 0; spin < 2000 && !drained; ++spin) {
        drained = counter("serve.reaped.dead") > reapedBefore &&
                  reg.gaugeValue("serve.inflight") == 0.0;
        if (!drained)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(drained);

    // The daemon is unharmed: a new client still gets served.
    ServeClient after;
    ASSERT_TRUE(after.connect(socketPath_).ok());
    ServeRequest req;
    req.op = Op::Sim;
    req.trace = "preset:int:5";
    req.length = 2000;
    req.useStore = false;
    req.id = "alive";
    ServeReply reply;
    ASSERT_TRUE(after.call(req, reply).ok());
    EXPECT_TRUE(reply.ok) << reply.error.toString();
    daemon.stop();
}

// ---------------------------------------------------------------------
// Soak
// ---------------------------------------------------------------------

/** One spec of the soak mix, with its precomputed direct-sim bits. */
struct SoakSpec
{
    std::string trace;
    std::uint64_t length = 2000;
    ImprovementSet imps = kImpNone;
    std::vector<std::uint64_t> bits;
};

/**
 * Build the soak mix: distinct (preset, imps) combos, half primed into
 * the store (warm), half cold.  Expected bits come from direct
 * simulate() calls -- the daemon must match them exactly.
 */
std::vector<SoakSpec>
makeSoakSpecs()
{
    std::vector<SoakSpec> specs;
    const char *presets[] = {"int", "fp", "crypto", "server",
                             "membound"};
    const ImprovementSet impSets[] = {kImpNone, kAllImps};
    for (std::size_t p = 0; p < std::size(presets); ++p)
        for (ImprovementSet imps : impSets) {
            SoakSpec spec;
            spec.trace = std::string("preset:") + presets[p] + ":" +
                         std::to_string(p + 1);
            spec.imps = imps;
            specs.push_back(std::move(spec));
        }
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SoakSpec &spec = specs[i];
        ServeRequest req;
        req.trace = spec.trace;
        req.length = spec.length;
        Expected<CvpTrace> cvp = serve::resolveTrace(req);
        EXPECT_TRUE(cvp.ok()) << spec.trace;
        // Even specs prime the store (warm for the daemon); odd ones
        // compute store-free (cold for the daemon).
        SimResult direct = simulate(
            cvp.value(),
            SimRequest{.imps = spec.imps, .useStore = i % 2 == 0});
        spec.bits = direct.stats.toBits();
    }
    return specs;
}

/**
 * The soak body: @p threads concurrent clients, each running
 * @p perThread requests round-robin over the spec mix with
 * busy-retries, against a daemon on @p pool.  Asserts zero lost or
 * duplicated replies, every reply bit-identical to direct simulate(),
 * unique dispatch sequence numbers, and (when @p wantBusy) that the
 * bounded queue pushed back at least once.
 */
void
runSoak(ServeConfig cfg, par::ThreadPool &pool, int threads,
        int perThread, bool wantBusy, const std::string &storeDir)
{
    store::Store::setDirForTesting(storeDir);
    std::vector<SoakSpec> specs = makeSoakSpecs();

    ServeDaemon daemon(cfg, &pool);
    ASSERT_TRUE(daemon.start().ok());
    const std::uint64_t busyBefore = counter("serve.rejected.busy");
    const std::uint64_t servedBefore = counter("serve.served");

    std::atomic<int> failures{0};
    std::atomic<std::uint64_t> mismatches{0};
    std::mutex seqMutex;
    std::set<std::uint64_t> seqs;

    auto worker = [&](int tid) {
        ServeClient client;
        if (!client.connect(cfg.socketPath).ok()) {
            failures.fetch_add(perThread);
            return;
        }
        for (int i = 0; i < perThread; ++i) {
            const SoakSpec &spec =
                specs[(tid + i) % specs.size()];
            ServeRequest req;
            req.op = Op::Sim;
            req.trace = spec.trace;
            req.length = spec.length;
            req.imps = spec.imps;
            req.id = std::to_string(tid) + "-" + std::to_string(i);
            ServeReply reply;
            Status st = client.callRetryBusy(req, reply, 200);
            if (!st.ok() || !reply.ok || reply.id != req.id) {
                failures.fetch_add(1);
                continue;
            }
            if (reply.stats.toBits() != spec.bits)
                mismatches.fetch_add(1);
            std::lock_guard<std::mutex> lock(seqMutex);
            if (!seqs.insert(reply.seq).second)
                failures.fetch_add(1);
        }
    };

    std::vector<std::thread> clients;
    clients.reserve(threads);
    for (int t = 0; t < threads; ++t)
        clients.emplace_back(worker, t);
    for (std::thread &t : clients)
        t.join();

    const int total = threads * perThread;
    EXPECT_EQ(0, failures.load());
    EXPECT_EQ(0u, mismatches.load());
    EXPECT_EQ(static_cast<std::size_t>(total), seqs.size());
    EXPECT_EQ(servedBefore + static_cast<std::uint64_t>(total),
              counter("serve.served"));
    if (wantBusy)
        EXPECT_GT(counter("serve.rejected.busy"), busyBefore);
    daemon.stop();
}

TEST_F(ServeDaemonTest, SoakConcurrentMixedColdWarmJobs8)
{
    ServeConfig cfg = config();
    cfg.queueBound = 2;    // small bound: backpressure must engage
    cfg.maxInflight = 2;
    par::ThreadPool pool(8);
    runSoak(cfg, pool, /*threads=*/16, /*perThread=*/15,
            /*wantBusy=*/true, storeDir_);
}

TEST_F(ServeDaemonTest, SoakSerialPoolMatchesJobs1)
{
    ServeConfig cfg = config();
    cfg.queueBound = 32;
    par::ThreadPool pool(1);
    runSoak(cfg, pool, /*threads=*/4, /*perThread=*/8,
            /*wantBusy=*/false, storeDir_);
}

// ---------------------------------------------------------------------
// Chaos: socket-level faults plus a mid-soak daemon restart
// ---------------------------------------------------------------------

/** Disable the global fault injector on scope exit. */
struct ChaosGuard
{
    ~ChaosGuard() { resil::FaultInjector::global().disable(); }
};

/**
 * The hostile-time headline: reply wires suffer injected hard resets,
 * per-frame stalls and dribbled writes; a third of the requests race a
 * 1 ms deadline; and midway through, the daemon is stopped and a fresh
 * one takes over the same socket.  Clients treat every transport error
 * as "reconnect and resend".  The invariants: each request the client
 * sees answered is answered exactly once and for the right id, every
 * successful answer is bit-identical to direct simulate(), every
 * unsuccessful one is a *typed* timeout/busy -- and no request is lost
 * outright.
 */
TEST_F(ServeDaemonTest, ChaosSoakSurvivesSocketFaultsAndRestart)
{
    ChaosGuard guard;
    store::Store::setDirForTesting(storeDir_);
    std::vector<SoakSpec> specs = makeSoakSpecs();

    auto chaosSpec = resil::FaultSpec::parse(
        "conn-reset:0.4,conn-stall:0.4,partial-write:0.6");
    ASSERT_TRUE(chaosSpec.ok()) << chaosSpec.status().toString();
    resil::FaultInjector::global().configure(chaosSpec.value(), 11);

    ServeConfig cfg = config();
    cfg.queueBound = 32;
    cfg.watchdogMs = 10;
    cfg.writeTimeoutMs = 2000;
    par::ThreadPool pool(4);

    auto daemon = std::make_unique<ServeDaemon>(cfg, &pool);
    ASSERT_TRUE(daemon->start().ok());

    std::atomic<bool> stop{false};
    std::atomic<bool> restarted{false};
    std::atomic<int> successes{0}, timeouts{0}, lost{0};
    std::atomic<int> successAfterRestart{0};
    std::atomic<std::uint64_t> mismatches{0}, crossedReplies{0};

    auto worker = [&](int tid) {
        ServeClient client;
        bool connected = false;
        for (int i = 1; !stop.load(); ++i) {
            const SoakSpec &s = specs[(tid + i) % specs.size()];
            ServeRequest req;
            req.op = Op::Sim;
            req.trace = s.trace;
            req.length = s.length;
            req.imps = s.imps;
            req.id = std::to_string(tid) + "-" + std::to_string(i);
            if (i % 3 == 0)
                req.deadlineMs = 1;   // a third race a 1 ms deadline
            bool answered = false;
            for (int attempt = 0; attempt < 80 && !answered;
                 ++attempt) {
                if (!connected) {
                    client.close();
                    connected =
                        client.connect(cfg.socketPath, 200).ok();
                    if (!connected) {   // daemon mid-restart
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(10));
                        continue;
                    }
                }
                ServeReply reply;
                if (!client.call(req, reply).ok()) {
                    // Chaos (or the restart) killed the wire; the
                    // contract is reconnect-and-resend.
                    connected = false;
                    continue;
                }
                if (reply.id != req.id) {
                    ++crossedReplies;
                    connected = false;
                    break;
                }
                if (reply.ok) {
                    if (reply.stats.toBits() != s.bits)
                        ++mismatches;
                    ++successes;
                    if (restarted.load())
                        ++successAfterRestart;
                    answered = true;
                } else if (reply.error.errorClass() ==
                           ErrorClass::Timeout) {
                    ++timeouts;   // typed; expected for 1 ms budgets
                    answered = true;
                } else if (reply.error.errorClass() ==
                           ErrorClass::Busy) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(2));
                } else {
                    ADD_FAILURE() << reply.error.toString();
                    answered = true;
                }
            }
            if (!answered)
                ++lost;
        }
    };

    std::vector<std::thread> clients;
    for (int t = 0; t < 6; ++t)
        clients.emplace_back(worker, t);

    // Let the soak run, then yank the daemon out from under it and
    // bring up a fresh one on the same socket.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    daemon->stop();
    daemon = std::make_unique<ServeDaemon>(cfg, &pool);
    ASSERT_TRUE(daemon->start().ok());
    restarted.store(true);

    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    stop.store(true);
    for (std::thread &t : clients)
        t.join();

    EXPECT_EQ(0u, mismatches.load());
    EXPECT_EQ(0u, crossedReplies.load());
    EXPECT_EQ(0, lost.load());
    EXPECT_GT(successes.load(), 0);
    EXPECT_GT(successAfterRestart.load(), 0);
    daemon->stop();
}

} // namespace
} // namespace trb
