/**
 * @file
 * Tests for the telemetry layer added on top of the metrics registry:
 * the JSON reader (common/json), BENCH run manifests, the time-series
 * sampler, the unified span timeline, the perf-regression comparator
 * behind tools/trace_perf, worker-pool telemetry counters, and the
 * tty-aware SuiteProgress rendering styles.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "obs/bench_record.hh"
#include "obs/metrics.hh"
#include "obs/perf_compare.hh"
#include "obs/profile.hh"
#include "obs/sampler.hh"
#include "obs/span.hh"
#include "par/thread_pool.hh"

namespace trb
{
namespace
{

/** RAII guard restoring the ambient log level after a test. */
struct LogLevelGuard
{
    LogLevel saved = logLevel();
    ~LogLevelGuard() { setLogLevel(saved); }
};

/** RAII guard: set (or clear) one env var, restore the old value. */
struct EnvGuard
{
    std::string name;
    std::string saved;
    bool wasSet;

    EnvGuard(const char *n, const char *value) : name(n)
    {
        const char *old = getenv(n);
        wasSet = old != nullptr;
        if (wasSet)
            saved = old;
        if (value)
            setenv(n, value, 1);
        else
            unsetenv(n);
    }

    ~EnvGuard()
    {
        if (wasSet)
            setenv(name.c_str(), saved.c_str(), 1);
        else
            unsetenv(name.c_str());
    }
};

// ---- common/json ----

TEST(JsonFlat, ParsesScalarsObjectsAndArrays)
{
    JsonFlat doc;
    std::string error;
    ASSERT_TRUE(parseJson(R"({
        "schema": "trb-bench-v1",
        "wall_seconds": 1.5,
        "ok": true, "off": false, "nothing": null,
        "totals": {"items": 1000, "items_per_second": 2.5e3},
        "queue": [3, 1, 2],
        "name": "a \"quoted\"\nstring"
    })",
                          doc, &error))
        << error;
    EXPECT_EQ(doc.str("schema"), "trb-bench-v1");
    EXPECT_DOUBLE_EQ(doc.number("wall_seconds"), 1.5);
    EXPECT_DOUBLE_EQ(doc.number("ok"), 1.0);
    EXPECT_DOUBLE_EQ(doc.number("off"), 0.0);
    EXPECT_DOUBLE_EQ(doc.number("totals/items"), 1000.0);
    EXPECT_DOUBLE_EQ(doc.number("totals/items_per_second"), 2500.0);
    EXPECT_DOUBLE_EQ(doc.number("queue/0"), 3.0);
    EXPECT_DOUBLE_EQ(doc.number("queue/2"), 2.0);
    EXPECT_EQ(doc.str("name"), "a \"quoted\"\nstring");
    EXPECT_TRUE(doc.hasNumber("totals/items"));
    EXPECT_FALSE(doc.hasNumber("totals/absent"));
    EXPECT_DOUBLE_EQ(doc.number("totals/absent", -1.0), -1.0);
}

TEST(JsonFlat, RejectsMalformedAndTrailingGarbage)
{
    JsonFlat doc;
    std::string error;
    EXPECT_FALSE(parseJson("{\"a\": }", doc, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseJson("{\"a\": 1} trailing", doc, &error));
    EXPECT_FALSE(parseJson("", doc, &error));
    EXPECT_FALSE(parseJson("{\"a\": 1", doc, &error));
}

TEST(JsonFlat, RoundTripsTheMetricsExporter)
{
    obs::MetricsRegistry reg;
    reg.setCounter("a.count", 42);
    reg.setGauge("b.rate", 0.125);
    Histogram &h = reg.histogram("c.lat", 2, 4);
    h.sample(1, 3);
    h.sample(5, 1);

    JsonFlat doc;
    std::string error;
    ASSERT_TRUE(parseJson(reg.toJson(), doc, &error)) << error;
    EXPECT_DOUBLE_EQ(doc.number("counters/a.count"), 42.0);
    EXPECT_DOUBLE_EQ(doc.number("gauges/b.rate"), 0.125);
    EXPECT_DOUBLE_EQ(doc.number("histograms/c.lat/total"), 4.0);
    EXPECT_TRUE(doc.hasNumber("histograms/c.lat/p95"));
}

// ---- BENCH run manifests ----

TEST(BenchRecord, RendersSchemaPhasesTotalsAndStore)
{
    obs::MetricsRegistry reg;
    reg.setCounter("store.hits", 3);
    reg.setCounter("store.misses", 1);
    reg.setGauge("sweep.All.geomean_delta_percent", -2.5);

    obs::PhaseProfile phases;
    phases.add("simulate", 2.0, 1000);
    phases.add("convert", 1.0, 500);
    phases.add("worker.1", 3.0, 1500);   // excluded from the totals

    std::ostringstream os;
    obs::renderBenchRecord(os, "unit", 3.0, reg, phases);

    JsonFlat doc;
    std::string error;
    ASSERT_TRUE(parseJson(os.str(), doc, &error)) << error << "\n"
                                                  << os.str();
    EXPECT_EQ(doc.str("schema"), obs::kBenchSchema);
    EXPECT_EQ(doc.str("bench"), "unit");
    EXPECT_FALSE(doc.str("host").empty());
    EXPECT_FALSE(doc.str("git_sha").empty());
    EXPECT_DOUBLE_EQ(doc.number("wall_seconds"), 3.0);
    EXPECT_DOUBLE_EQ(doc.number("phases/simulate/seconds"), 2.0);
    EXPECT_DOUBLE_EQ(doc.number("phases/simulate/items_per_second"),
                     500.0);
    EXPECT_DOUBLE_EQ(doc.number("phases/worker.1/items"), 1500.0);
    EXPECT_DOUBLE_EQ(doc.number("totals/items"), 1500.0);
    EXPECT_DOUBLE_EQ(doc.number("totals/items_per_second"), 500.0);
    EXPECT_DOUBLE_EQ(doc.number("store/hits"), 3.0);
    EXPECT_DOUBLE_EQ(doc.number("store/hit_rate"), 0.75);
    EXPECT_DOUBLE_EQ(
        doc.number("gauges/sweep.All.geomean_delta_percent"), -2.5);
}

TEST(BenchRecord, EnvFingerprintListsOnlySetVars)
{
    EnvGuard len("TRB_TRACE_LEN", "12345");
    EnvGuard scale("TRB_SUITE_SCALE", nullptr);

    obs::MetricsRegistry reg;
    obs::PhaseProfile phases;
    std::ostringstream os;
    obs::renderBenchRecord(os, "unit", 1.0, reg, phases);

    JsonFlat doc;
    std::string error;
    ASSERT_TRUE(parseJson(os.str(), doc, &error)) << error;
    EXPECT_EQ(doc.str("env/TRB_TRACE_LEN"), "12345");
    EXPECT_EQ(doc.str("env/TRB_SUITE_SCALE", "<unset>"), "<unset>");
}

TEST(BenchRecord, PathHonoursBenchDir)
{
    {
        EnvGuard dir("TRB_OBS_BENCH_DIR", nullptr);
        EXPECT_EQ(obs::benchRecordPath("fig1"), "./BENCH_fig1.json");
    }
    {
        EnvGuard dir("TRB_OBS_BENCH_DIR", "/tmp/records");
        EXPECT_EQ(obs::benchRecordPath("fig1"),
                  "/tmp/records/BENCH_fig1.json");
    }
    {
        EnvGuard dir("TRB_OBS_BENCH_DIR", "0");
        EXPECT_EQ(obs::benchRecordPath("fig1"), "");
    }
    {
        EnvGuard dir("TRB_OBS_BENCH_DIR", "off");
        EXPECT_EQ(obs::benchRecordPath("fig1"), "");
    }
}

// ---- the time-series sampler ----

TEST(Sampler, DirectDriveEmitsParseableSamples)
{
    obs::Sampler::Options opts;   // periodMs 0: no thread, no file
    obs::Sampler sampler(opts);

    obs::MetricsRegistry::global().setCounter("telemetry.test.count", 7);
    std::ostringstream os;
    sampler.sampleOnce(os);
    sampler.sampleOnce(os);
    EXPECT_EQ(sampler.samplesTaken(), 2u);

    std::istringstream lines(os.str());
    std::string line;
    std::size_t parsed = 0;
    while (std::getline(lines, line)) {
        JsonFlat doc;
        std::string error;
        ASSERT_TRUE(parseJson(line, doc, &error)) << error << "\n" << line;
        EXPECT_EQ(doc.str("schema"), "trb-sample-v1");
        EXPECT_GE(doc.number("t"), 0.0);
#ifdef __linux__
        EXPECT_GT(doc.number("rss_kb"), 0.0);
#endif
        EXPECT_DOUBLE_EQ(doc.number("counters/telemetry.test.count"),
                         7.0);
        ++parsed;
    }
    EXPECT_EQ(parsed, 2u);
}

TEST(Sampler, HeartbeatWritesJsonlAndStopIsIdempotent)
{
    const std::string path =
        testing::TempDir() + "trb_sampler_test.jsonl";
    obs::Sampler::Options opts;
    opts.periodMs = 2;
    opts.path = path;
    {
        obs::Sampler sampler(opts);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        sampler.stop();
        const std::uint64_t after_stop = sampler.samplesTaken();
        EXPECT_GE(after_stop, 1u);   // final sample at minimum
        sampler.stop();              // second stop: no-op
        EXPECT_EQ(sampler.samplesTaken(), after_stop);
    }   // destructor after stop(): also a no-op

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::size_t parsed = 0;
    while (std::getline(in, line)) {
        JsonFlat doc;
        std::string error;
        ASSERT_TRUE(parseJson(line, doc, &error)) << error << "\n" << line;
        EXPECT_EQ(doc.str("schema"), "trb-sample-v1");
        ++parsed;
    }
    EXPECT_GE(parsed, 1u);
    std::remove(path.c_str());
}

TEST(Sampler, RssIsPlausible)
{
#ifdef __linux__
    const std::uint64_t rss = obs::Sampler::processRssKb();
    EXPECT_GT(rss, 1024u);            // a C++ test binary exceeds 1 MiB
    EXPECT_LT(rss, 64u * 1024 * 1024);   // ... and stays under 64 GiB
#endif
}

TEST(Sampler, StartFromEnvIsOffByDefault)
{
    EnvGuard ms("TRB_OBS_SAMPLE_MS", nullptr);
    EXPECT_EQ(obs::Sampler::startFromEnv(), nullptr);
}

// ---- the span timeline ----

/** RAII guard: force span collection on/off, re-read env afterwards. */
struct SpanEnableGuard
{
    explicit SpanEnableGuard(bool on)
    {
        obs::SpanTimeline::setEnabledForTests(on ? 1 : 0);
    }
    ~SpanEnableGuard()
    {
        obs::SpanTimeline::global().clear();
        obs::SpanTimeline::setEnabledForTests(-1);
    }
};

TEST(SpanTimeline, DisabledScopesRecordNothing)
{
    SpanEnableGuard guard(false);
    obs::SpanTimeline::global().clear();
    {
        obs::SpanScope outer("outer", "bench");
        obs::SpanScope inner("inner", "trace");
    }
    EXPECT_EQ(obs::SpanTimeline::global().size(), 0u);
}

TEST(SpanTimeline, RecordsNestedScopesWithDepth)
{
    SpanEnableGuard guard(true);
    obs::SpanTimeline::global().clear();
    {
        obs::SpanScope outer("outer", "bench");
        {
            obs::SpanScope inner("inner", "trace", 250);
        }
    }
    const std::vector<obs::SpanEvent> spans =
        obs::SpanTimeline::global().snapshot();
    ASSERT_EQ(spans.size(), 2u);
    // Completion order: inner closes first.
    EXPECT_EQ(spans[0].name, "inner");
    EXPECT_EQ(spans[0].depth, 1u);
    EXPECT_EQ(spans[0].items, 250u);
    EXPECT_EQ(spans[1].name, "outer");
    EXPECT_EQ(spans[1].depth, 0u);
    EXPECT_GE(spans[1].durUs, spans[0].durUs);
}

TEST(SpanTimeline, GlobalScopeTimersLandInTheTimeline)
{
    SpanEnableGuard guard(true);
    obs::SpanTimeline::global().clear();
    {
        obs::ScopeTimer timer("telemetry.phase");
        timer.setItems(10);
    }
    const std::vector<obs::SpanEvent> spans =
        obs::SpanTimeline::global().snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "telemetry.phase");
    EXPECT_EQ(spans[0].category, "phase");
    EXPECT_EQ(spans[0].items, 10u);

    // A private-profile timer stays out of the shared timeline.
    obs::PhaseProfile profile;
    {
        obs::ScopeTimer timer(profile, "private.phase");
    }
    EXPECT_EQ(obs::SpanTimeline::global().size(), 1u);
}

TEST(SpanTimeline, ChromeTraceIsValidJsonWithWorkerLanes)
{
    SpanEnableGuard guard(true);
    obs::SpanTimeline::global().clear();
    {
        obs::SpanScope sweep("sweep", "sweep");
        obs::SpanScope trace("trace.t0", "trace", 1000);
    }
    std::ostringstream os;
    obs::SpanTimeline::global().writeChromeTrace(os);
    const std::string json = os.str();

    JsonFlat doc;
    std::string error;
    ASSERT_TRUE(parseJson(json, doc, &error)) << error << "\n" << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"trace.t0\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
    // Wall-clock spans live on pid 0.
    EXPECT_DOUBLE_EQ(doc.number("traceEvents/1/pid", -1.0), 0.0);
}

// ---- the perf comparator ----

std::string
benchJson(double items_per_second, double wall,
          const char *schema = "trb-bench-v1")
{
    std::ostringstream os;
    os << "{\"schema\": \"" << schema << "\", \"bench\": \"unit\", "
       << "\"wall_seconds\": " << wall << ", \"totals\": {\"items\": "
       << items_per_second * wall << ", \"items_per_second\": "
       << items_per_second << "}, \"phases\": {\"simulate\": "
       << "{\"seconds\": " << wall << ", \"items_per_second\": "
       << items_per_second << "}}}";
    return os.str();
}

JsonFlat
parsedBench(const std::string &text)
{
    JsonFlat doc;
    std::string error;
    EXPECT_TRUE(parseJson(text, doc, &error)) << error;
    return doc;
}

TEST(PerfCompare, IdenticalRecordsPass)
{
    const JsonFlat rec = parsedBench(benchJson(1e6, 2.0));
    const obs::PerfCompareResult result =
        obs::comparePerfRecords(rec, rec, {});
    EXPECT_TRUE(result.ok()) << result.error;
    EXPECT_FALSE(result.regression);
    ASSERT_FALSE(result.deltas.empty());
    for (const obs::PerfDelta &d : result.deltas)
        EXPECT_DOUBLE_EQ(d.deltaPercent, 0.0);
}

TEST(PerfCompare, TenPercentDropIsFlaggedAtDefaultThreshold)
{
    const JsonFlat base = parsedBench(benchJson(1e6, 2.0));
    const JsonFlat cand = parsedBench(benchJson(0.9e6, 2.2));
    const obs::PerfCompareResult result =
        obs::comparePerfRecords(base, cand, {});
    EXPECT_TRUE(result.error.empty()) << result.error;
    EXPECT_TRUE(result.regression);

    bool found = false;
    for (const obs::PerfDelta &d : result.deltas)
        if (d.metric == "totals/items_per_second") {
            found = true;
            EXPECT_TRUE(d.gated);
            EXPECT_TRUE(d.regression);
            EXPECT_NEAR(d.deltaPercent, -10.0, 0.01);
        }
    EXPECT_TRUE(found);

    std::ostringstream os;
    obs::renderPerfTable(os, result);
    EXPECT_NE(os.str().find("REGRESSION"), std::string::npos);
}

TEST(PerfCompare, SmallDriftStaysInsideTheNoiseBand)
{
    const JsonFlat base = parsedBench(benchJson(1e6, 2.0));
    const JsonFlat cand = parsedBench(benchJson(0.97e6, 2.0));
    const obs::PerfCompareResult result =
        obs::comparePerfRecords(base, cand, {});
    EXPECT_TRUE(result.ok()) << result.error;
}

TEST(PerfCompare, PerMetricThresholdOverridesTheGlobal)
{
    const JsonFlat base = parsedBench(benchJson(1e6, 2.0));
    const JsonFlat cand = parsedBench(benchJson(0.97e6, 2.0));
    obs::PerfCompareOptions opts;
    opts.perMetricThresholdPercent["totals/items_per_second"] = 2.0;
    const obs::PerfCompareResult result =
        obs::comparePerfRecords(base, cand, opts);
    EXPECT_TRUE(result.regression);
    // Only the overridden metric regresses; the phase rate keeps the
    // 5% default and a 3% drop passes there.
    for (const obs::PerfDelta &d : result.deltas) {
        if (d.metric == "phases/simulate/items_per_second") {
            EXPECT_FALSE(d.regression);
        }
    }
}

TEST(PerfCompare, ImprovementsAndWallTimeNeverGate)
{
    const JsonFlat base = parsedBench(benchJson(1e6, 2.0));
    // Throughput doubled, wall time tripled: still a pass -- wall
    // clock is context, throughput gates and only on drops.
    const JsonFlat cand = parsedBench(benchJson(2e6, 6.0));
    const obs::PerfCompareResult result =
        obs::comparePerfRecords(base, cand, {});
    EXPECT_TRUE(result.ok()) << result.error;
    for (const obs::PerfDelta &d : result.deltas) {
        if (d.metric == "wall_seconds") {
            EXPECT_FALSE(d.gated);
        }
    }
}

TEST(PerfCompare, SchemaMismatchIsAnError)
{
    const JsonFlat base = parsedBench(benchJson(1e6, 2.0));
    const JsonFlat cand =
        parsedBench(benchJson(1e6, 2.0, "trb-bench-v999"));
    const obs::PerfCompareResult result =
        obs::comparePerfRecords(base, cand, {});
    EXPECT_FALSE(result.error.empty());
    EXPECT_FALSE(result.ok());
}

TEST(PerfCompare, VacuousGateIsAnError)
{
    const JsonFlat empty = parsedBench(
        "{\"schema\": \"trb-bench-v1\", \"wall_seconds\": 1.0}");
    const obs::PerfCompareResult result =
        obs::comparePerfRecords(empty, empty, {});
    EXPECT_FALSE(result.error.empty());
}

TEST(PerfCompare, OneSidedMetricsAreReportedNotGated)
{
    const JsonFlat base = parsedBench(benchJson(1e6, 2.0));
    JsonFlat cand = parsedBench(benchJson(1e6, 2.0));
    cand.numbers["phases/newstage/items_per_second"] = 5e5;
    const obs::PerfCompareResult result =
        obs::comparePerfRecords(base, cand, {});
    EXPECT_TRUE(result.ok()) << result.error;
    ASSERT_EQ(result.missing.size(), 1u);
    EXPECT_EQ(result.missing[0], "phases/newstage/items_per_second");
}

// ---- worker-pool telemetry and flush-on-exception ----

TEST(ThreadPoolTelemetry, QueueDepthsMatchJobsAndDrainToZero)
{
    par::ThreadPool pool(4);
    EXPECT_EQ(pool.queueDepths().size(), 4u);
    std::atomic<std::size_t> ran{0};
    pool.parallelFor(64, [&](std::size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 64u);
    for (std::size_t depth : pool.queueDepths())
        EXPECT_EQ(depth, 0u);
}

TEST(ThreadPoolTelemetry, UnevenWorkProducesSteals)
{
    par::ThreadPool pool(4);
    // Front-loaded work: worker 0 seeds everything, thieves must steal.
    std::atomic<std::size_t> ran{0};
    pool.parallelFor(256, [&](std::size_t i) {
        volatile double sink = 0;
        for (std::size_t k = 0; k < (i % 7) * 1000; ++k)
            sink = sink + 1.0;
        ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 256u);
    // Steals are schedule-dependent; with 4 threads and 256 tasks at
    // least one steal is overwhelmingly likely, but assert only the
    // invariant: the counter never exceeds the tasks run.
    EXPECT_LE(pool.stealCount(), 256u);
}

TEST(ThreadPoolTelemetry, GlobalIfStartedSeesTheGlobalPool)
{
    par::ThreadPool &pool = par::ThreadPool::global();
    EXPECT_EQ(par::ThreadPool::globalIfStarted(), &pool);
}

TEST(ThreadMetricsBuffer, FlushesOnExceptionUnderParallelism)
{
    obs::MetricsRegistry reg;
    par::ThreadPool pool(4);
    constexpr std::size_t kTasks = 100;
    bool threw = false;
    try {
        pool.parallelFor(kTasks, [&](std::size_t i) {
            obs::ThreadMetricsBuffer buf(reg);
            buf.add("telemetry.increments", 1);
            if (i == 37)
                throw std::runtime_error("injected task failure");
        });
    } catch (const std::runtime_error &) {
        threw = true;
    }
    EXPECT_TRUE(threw);
    // The throwing task's buffer flushed during unwinding; nothing was
    // lost and nothing double-counted.
    EXPECT_EQ(reg.counterValue("telemetry.increments"), kTasks);
}

// ---- SuiteProgress rendering styles ----

TEST(SuiteProgress, SparseStyleEmitsMilestoneLinesWithoutCr)
{
    LogLevelGuard guard;
    setLogLevel(LogLevel::Info);
    testing::internal::CaptureStderr();
    {
        obs::SuiteProgress progress("sparse-suite", 20,
                                    obs::SuiteProgress::Style::Sparse);
        for (std::size_t i = 0; i < 20; ++i)
            progress.step(i, 100);
    }
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(err.find('\r'), std::string::npos);
    EXPECT_EQ(err.find("\033"), std::string::npos);
    // total/10 stride: milestones at 2,4,...,20 plus the summary line.
    std::size_t lines = 0;
    for (char c : err)
        lines += c == '\n';
    EXPECT_EQ(lines, 11u);
    EXPECT_NE(err.find("sparse-suite: 20/20"), std::string::npos);
}

TEST(SuiteProgress, LiveStyleRedrawsWithCarriageReturns)
{
    LogLevelGuard guard;
    setLogLevel(LogLevel::Info);
    testing::internal::CaptureStderr();
    {
        obs::SuiteProgress progress("live-suite", 4,
                                    obs::SuiteProgress::Style::Live);
        for (std::size_t i = 0; i < 4; ++i)
            progress.step(i, 100);
    }
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find('\r'), std::string::npos);
    EXPECT_NE(err.find("live-suite: 4/4 (100%)"), std::string::npos);
    // The destructor erased the progress line before the summary.
    EXPECT_NE(err.find("\033[2K"), std::string::npos);
}

TEST(SuiteProgress, SilentStyleOnlySummarises)
{
    LogLevelGuard guard;
    setLogLevel(LogLevel::Info);
    testing::internal::CaptureStderr();
    {
        obs::SuiteProgress progress("silent-suite", 8,
                                    obs::SuiteProgress::Style::Silent);
        for (std::size_t i = 0; i < 8; ++i)
            progress.step(i, 100);
    }
    const std::string err = testing::internal::GetCapturedStderr();
    std::size_t lines = 0;
    for (char c : err)
        lines += c == '\n';
    EXPECT_EQ(lines, 1u);   // just the end-of-suite summary
}

TEST(SuiteProgress, StyleFromEnvironmentIsSparseWhenNotATty)
{
    LogLevelGuard guard;
    setLogLevel(LogLevel::Info);
    // Capture redirects stderr to a file, so it is never a terminal
    // here whatever ctest or a developer shell did with the fds.
    testing::internal::CaptureStderr();
    const obs::SuiteProgress::Style at_info =
        obs::SuiteProgress::styleFromEnvironment();
    setLogLevel(LogLevel::Warn);
    const obs::SuiteProgress::Style at_warn =
        obs::SuiteProgress::styleFromEnvironment();
    testing::internal::GetCapturedStderr();
    EXPECT_EQ(at_info, obs::SuiteProgress::Style::Sparse);
    EXPECT_EQ(at_warn, obs::SuiteProgress::Style::Silent);
}

} // namespace
} // namespace trb
