/**
 * @file
 * Tests for the synthetic workload generator.  The heart of the file is
 * the value-consistency property suite: the improved converter infers
 * addressing modes from output register values, so the generator must
 * emit traces where those inferences are exactly decidable.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "synth/generator.hh"
#include "synth/suites.hh"
#include "trace/trace_stats.hh"

namespace trb
{
namespace
{

WorkloadParams
smallParams(std::uint64_t seed)
{
    WorkloadParams p;
    p.seed = seed;
    p.numFunctions = 8;
    p.blocksPerFunction = 5;
    p.instsPerBlock = 6;
    return p;
}

TEST(SynthProgram, DeterministicBySeed)
{
    SynthProgram a = SynthProgram::build(smallParams(5));
    SynthProgram b = SynthProgram::build(smallParams(5));
    ASSERT_EQ(a.functions.size(), b.functions.size());
    for (std::size_t f = 0; f < a.functions.size(); ++f) {
        EXPECT_EQ(a.functions[f].entry, b.functions[f].entry);
        ASSERT_EQ(a.functions[f].blocks.size(),
                  b.functions[f].blocks.size());
    }
}

TEST(SynthProgram, AddressesAreDisjointAndOrdered)
{
    SynthProgram prog = SynthProgram::build(smallParams(7));
    Addr prev_end = 0;
    for (const Function &fn : prog.functions) {
        EXPECT_GE(fn.entry, prev_end);
        for (const Block &blk : fn.blocks) {
            Addr pc = blk.firstPc;
            for (const StaticInst &si : blk.insts) {
                EXPECT_EQ(si.pc, pc);
                pc += 4 * si.pcSlots;
            }
            if (blk.term.kind != TermKind::FallThrough) {
                if (blk.term.needsMat) {
                    EXPECT_EQ(blk.term.matPc, pc);
                    pc += 4;
                }
                EXPECT_EQ(blk.term.pc, pc);
                pc += 4;
            }
            prev_end = pc;
        }
    }
}

TEST(SynthProgram, MainNeverCallable)
{
    // Function 0 loops forever, so nothing may call it.
    WorkloadParams p = serverParams(3);
    p.numFunctions = 30;
    SynthProgram prog = SynthProgram::build(p);
    for (const Function &fn : prog.functions) {
        for (const Block &blk : fn.blocks) {
            if (blk.term.kind == TermKind::CallDirect) {
                EXPECT_NE(blk.term.calleeFn, 0u);
            }
            if (blk.term.kind == TermKind::CallIndirect ||
                blk.term.kind == TermKind::CallIndirectX30) {
                for (auto c : blk.term.candidates) {
                    EXPECT_NE(c, 0u);
                }
            }
        }
    }
    EXPECT_EQ(prog.functions[0].blocks.back().term.kind, TermKind::Jump);
    EXPECT_EQ(prog.functions[0].blocks.back().term.targetBlock, 0u);
}

TEST(Generator, ExactLengthAndDeterminism)
{
    TraceGenerator g1(smallParams(11));
    TraceGenerator g2(smallParams(11));
    CvpTrace a = g1.generate(20000);
    CvpTrace b = g2.generate(20000);
    ASSERT_EQ(a.size(), 20000u);
    ASSERT_EQ(b.size(), 20000u);
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_TRUE(a[i] == b[i]) << "instruction " << i;
}

TEST(Generator, DifferentSeedsDiffer)
{
    CvpTrace a = TraceGenerator(smallParams(1)).generate(5000);
    CvpTrace b = TraceGenerator(smallParams(2)).generate(5000);
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = !(a[i] == b[i]);
    EXPECT_TRUE(differs);
}

/**
 * The core invariant: every memory record whose destination list contains
 * its own base (source) register writes either exactly the effective
 * address (pre-index) or the effective address plus a small immediate
 * (post-index) to it -- unless it is a pointer-chase load.
 */
TEST(Generator, BaseUpdateValueConsistency)
{
    WorkloadParams p = smallParams(13);
    p.baseUpdateFrac = 0.5;
    p.pointerChaseFrac = 0.0;
    TraceGenerator gen(p);
    CvpTrace trace = gen.generate(40000);

    std::uint64_t pre = 0, post = 0;
    for (const CvpRecord &rec : trace) {
        if (!isMem(rec.cls))
            continue;
        for (unsigned d = 0; d < rec.numDst; ++d) {
            if (!rec.readsReg(rec.dst[d]))
                continue;
            std::uint64_t v = rec.dstValue[d];
            if (v == rec.ea) {
                ++pre;
            } else {
                std::int64_t diff = static_cast<std::int64_t>(v - rec.ea);
                // Post-index immediates stay small except at footprint
                // wrap-around, which is rare.
                if (diff >= -4096 && diff <= 4096)
                    ++post;
            }
        }
    }
    EXPECT_GT(pre, 100u);
    EXPECT_GT(post, 100u);
}

TEST(Generator, ReturnsAlwaysMatchCallSites)
{
    // The generator asserts link-register consistency internally; a
    // successful long run over a call-heavy program is the test.
    WorkloadParams p = serverParams(17);
    p.numFunctions = 40;
    p.blrX30Frac = 0.5;
    CvpTrace trace = TraceGenerator(p).generate(60000);
    ASSERT_EQ(trace.size(), 60000u);

    // Returns jump to the instruction after some earlier call.
    std::set<Addr> ret_sites;
    for (const CvpRecord &rec : trace)
        if (isBranch(rec.cls) && rec.writesReg(aarch64::kLinkReg))
            ret_sites.insert(rec.pc + 4);
    std::uint64_t returns = 0;
    for (const CvpRecord &rec : trace) {
        if (rec.cls == InstClass::UncondIndirectBranch &&
            rec.readsReg(aarch64::kLinkReg) && rec.numDst == 0) {
            ++returns;
            EXPECT_TRUE(ret_sites.count(rec.target))
                << "return to unseen site " << std::hex << rec.target;
        }
    }
    EXPECT_GT(returns, 500u);
}

TEST(Generator, BlrX30TracesContainTheBugTrigger)
{
    WorkloadParams p = serverParams(19);
    p.numFunctions = 40;
    p.blrX30Frac = 0.8;
    p.indirectCallFrac = 0.5;
    CvpTrace trace = TraceGenerator(p).generate(50000);
    std::uint64_t triggers = 0;
    for (const CvpRecord &rec : trace)
        if (isBranch(rec.cls) && rec.readsReg(aarch64::kLinkReg) &&
            rec.writesReg(aarch64::kLinkReg))
            ++triggers;
    EXPECT_GT(triggers, 100u);

    WorkloadParams q = serverParams(19);
    q.numFunctions = 40;
    q.blrX30Frac = 0.0;
    CvpTrace clean = TraceGenerator(q).generate(50000);
    for (const CvpRecord &rec : clean)
        EXPECT_FALSE(isBranch(rec.cls) &&
                     rec.readsReg(aarch64::kLinkReg) &&
                     rec.writesReg(aarch64::kLinkReg));
}

TEST(Generator, ConditionalBranchStylesBothPresent)
{
    WorkloadParams p = smallParams(23);
    p.condRegFrac = 0.5;
    CvpTrace trace = TraceGenerator(p).generate(40000);
    std::uint64_t with_src = 0, without_src = 0;
    for (const CvpRecord &rec : trace) {
        if (rec.cls != InstClass::CondBranch)
            continue;
        if (rec.numSrc > 0)
            ++with_src;
        else
            ++without_src;
    }
    EXPECT_GT(with_src, 100u);
    EXPECT_GT(without_src, 100u);
}

TEST(Generator, FlagSettingCompriesHaveNoDestination)
{
    WorkloadParams p = smallParams(29);
    p.fracCmp = 0.2;
    CvpTrace trace = TraceGenerator(p).generate(30000);
    auto stats = characterizeCvp(trace);
    EXPECT_GT(stats.aluNoDst, 1000u);
}

TEST(Generator, MemShapesAppear)
{
    WorkloadParams p = smallParams(31);
    p.numFunctions = 24;
    p.instsPerBlock = 10;
    p.loadPairFrac = 0.15;
    p.vecLoadFrac = 0.05;
    p.prefetchFrac = 0.05;
    p.dczvaFrac = 0.05;
    p.unalignedFrac = 0.15;
    CvpTrace trace = TraceGenerator(p).generate(60000);
    auto stats = characterizeCvp(trace);
    EXPECT_GT(stats.memNoDst, 200u);       // prefetches + plain stores
    EXPECT_GT(stats.memMultiDst, 200u);    // pairs / wb / vector
    EXPECT_GT(stats.lineCrossing, 50u);    // engineered split accesses

    // DC ZVA stores: size 64, always aligned.
    std::uint64_t zva = 0;
    for (const CvpRecord &rec : trace) {
        if (rec.cls == InstClass::Store && rec.accessSize == 64) {
            ++zva;
            EXPECT_EQ(rec.ea % kLineBytes, 0u);
        }
    }
    EXPECT_GT(zva, 4u);
}

TEST(Generator, PointerChaseProducesDependentLoads)
{
    WorkloadParams p = memoryBoundParams(37);
    CvpTrace trace = TraceGenerator(p).generate(30000);
    std::uint64_t chase = 0;
    for (const CvpRecord &rec : trace) {
        if (rec.cls != InstClass::Load || rec.numDst != 1)
            continue;
        if (rec.numSrc == 1 && rec.src[0] == rec.dst[0]) {
            ++chase;
            // The loaded value is the next pointer: some later load of
            // this register uses it as an address.  Spot-check a few.
        }
    }
    EXPECT_GT(chase, 300u);
}

TEST(Generator, TraceIsClassWellFormed)
{
    CvpTrace trace = TraceGenerator(computeIntParams(41)).generate(30000);
    for (const CvpRecord &rec : trace) {
        if (isBranch(rec.cls)) {
            EXPECT_NE(rec.target, 0u);
            if (rec.cls != InstClass::CondBranch) {
                EXPECT_TRUE(rec.taken);
            }
        }
        if (isMem(rec.cls)) {
            EXPECT_NE(rec.ea, 0u);
            EXPECT_GT(rec.accessSize, 0u);
        }
        EXPECT_LE(rec.numSrc, kMaxCvpSrc);
        EXPECT_LE(rec.numDst, kMaxCvpDst);
        for (unsigned i = 0; i < rec.numSrc; ++i)
            EXPECT_LT(rec.src[i], aarch64::kNumRegs);
        for (unsigned i = 0; i < rec.numDst; ++i)
            EXPECT_LT(rec.dst[i], aarch64::kNumRegs);
    }
}

TEST(Generator, TakenBranchTargetsMatchNextPc)
{
    // Control-flow consistency: a taken branch's target is the next
    // record's PC; a non-branch record is followed by a higher PC in the
    // same region or a gap (reserved helper slots).
    CvpTrace trace = TraceGenerator(computeIntParams(43)).generate(30000);
    for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
        const CvpRecord &rec = trace[i];
        if (isBranch(rec.cls) && rec.taken) {
            EXPECT_EQ(trace[i + 1].pc, rec.target) << "at " << i;
        }
    }
}

TEST(Suites, PublicSuiteShape)
{
    auto suite = cvp1PublicSuite(10000);
    EXPECT_EQ(suite.size(), 135u);
    std::map<std::string, int> prefixes;
    std::set<std::string> names;
    int blr = 0;
    for (const TraceSpec &spec : suite) {
        EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
        EXPECT_EQ(spec.length, 10000u);
        ++prefixes[spec.name.substr(0, spec.name.rfind('_'))];
        if (spec.params.blrX30Frac > 0)
            ++blr;
    }
    EXPECT_EQ(prefixes["compute_int"], 35);
    EXPECT_EQ(prefixes["compute_fp"], 30);
    EXPECT_EQ(prefixes["crypto"], 5);
    EXPECT_EQ(prefixes["srv"], 65);
    EXPECT_EQ(blr, 14);
}

TEST(Suites, Ipc1SuiteShape)
{
    auto suite = ipc1Suite(5000);
    EXPECT_EQ(suite.size(), 50u);
    EXPECT_EQ(suite.front().name, "client_001");
    EXPECT_EQ(suite.back().name, "spec_x264_001");
    std::set<std::string> names;
    for (const TraceSpec &spec : suite)
        EXPECT_TRUE(names.insert(spec.name).second);
}

TEST(Suites, SuiteTracesGenerate)
{
    // Every preset must actually generate without tripping internal
    // invariants (link-register consistency asserts inside).
    auto pub = cvp1PublicSuite(3000);
    for (std::size_t i = 0; i < pub.size(); i += 13) {
        CvpTrace t = TraceGenerator(pub[i].params).generate(3000);
        EXPECT_EQ(t.size(), 3000u) << pub[i].name;
    }
    auto ipc = ipc1Suite(3000);
    for (std::size_t i = 0; i < ipc.size(); i += 7) {
        CvpTrace t = TraceGenerator(ipc[i].params).generate(3000);
        EXPECT_EQ(t.size(), 3000u) << ipc[i].name;
    }
}

} // namespace
} // namespace trb
