/**
 * @file
 * trb::par thread pool: shutdown, exception propagation, exactly-once
 * index coverage under contention, nested loops, and the determinism
 * contract of the parallel experiment harness (parallel sweep output is
 * bit-identical to the inline serial path that TRB_JOBS=1 runs).  The
 * MetricsConcurrency suite hammers the three trb::obs write strategies
 * from pool workers and is the intended target of the ThreadSanitizer
 * CI job.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "experiments/experiment.hh"
#include "obs/metrics.hh"
#include "par/thread_pool.hh"
#include "synth/generator.hh"
#include "synth/suites.hh"

namespace trb
{
namespace
{

TEST(ThreadPool, JobsFromEnvParsesTrbJobs)
{
    setenv("TRB_JOBS", "3", 1);
    EXPECT_EQ(par::jobsFromEnv(), 3u);
    setenv("TRB_JOBS", "0", 1);
    EXPECT_GE(par::jobsFromEnv(), 1u);   // 0 means hardware_concurrency
    unsetenv("TRB_JOBS");
    EXPECT_GE(par::jobsFromEnv(), 1u);
}

TEST(ThreadPool, ConstructDestroyIdle)
{
    // Shutdown must not hang or leak even when no work was submitted.
    for (int round = 0; round < 4; ++round)
        for (std::size_t jobs : {1u, 2u, 5u, 8u}) {
            par::ThreadPool pool(jobs);
            EXPECT_EQ(pool.jobs(), jobs);
        }
}

TEST(ThreadPool, ShutdownAfterWork)
{
    std::atomic<std::size_t> ran{0};
    {
        par::ThreadPool pool(4);
        pool.parallelFor(64, [&](std::size_t) { ++ran; });
    }   // destructor joins here
    EXPECT_EQ(ran.load(), 64u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnceUnderContention)
{
    par::ThreadPool pool(8);
    constexpr std::size_t n = 20000;
    std::vector<std::atomic<unsigned>> counts(n);
    pool.parallelFor(n, [&](std::size_t i) {
        // Uneven task cost so fast workers drain their own deque and
        // have to steal from slow ones.
        volatile unsigned spin = static_cast<unsigned>(i % 97);
        while (spin > 0)
            spin = spin - 1;
        counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(counts[i].load(), 1u) << "index " << i;
}

TEST(ThreadPool, SerialPoolRunsInlineInOrder)
{
    par::ThreadPool pool(1);
    std::vector<std::size_t> order;   // no lock needed: single thread
    const auto caller = std::this_thread::get_id();
    pool.parallelFor(100, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 100u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, NestedLoopsShareTheDeques)
{
    par::ThreadPool pool(6);
    std::atomic<std::size_t> ran{0};
    pool.parallelFor(8, [&](std::size_t) {
        pool.parallelFor(8, [&](std::size_t) {
            ran.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(ran.load(), 64u);
}

TEST(ThreadPool, FirstExceptionPropagatesAndPoolSurvives)
{
    par::ThreadPool pool(4);
    std::atomic<std::size_t> ran{0};
    auto boom = [&](std::size_t i) {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (i % 10 == 3)
            throw std::runtime_error("index " + std::to_string(i));
    };
    EXPECT_THROW(pool.parallelFor(100, boom), std::runtime_error);
    // Every index was still attempted exactly once...
    EXPECT_EQ(ran.load(), 100u);
    // ...and the pool is reusable afterwards.
    std::atomic<std::size_t> again{0};
    pool.parallelFor(50, [&](std::size_t) { ++again; });
    EXPECT_EQ(again.load(), 50u);
}

TEST(ThreadPool, CancellableSubmitRunsFnWhenFlagUnset)
{
    // Both the inline (jobs == 1) and threaded paths must run fn when
    // the cancel flag never fires, and never run onCancel.
    for (std::size_t jobs : {1u, 4u}) {
        par::ThreadPool pool(jobs);
        std::atomic<bool> cancel{false};
        std::atomic<int> ran{0}, cancelled{0};
        for (int i = 0; i < 32; ++i)
            pool.submit([&] { ++ran; }, &cancel, [&] { ++cancelled; });
        for (int spin = 0; ran.load() < 32 && spin < 2000; ++spin)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        EXPECT_EQ(ran.load(), 32) << "jobs=" << jobs;
        EXPECT_EQ(cancelled.load(), 0) << "jobs=" << jobs;
    }
}

TEST(ThreadPool, CancellableSubmitRunsOnCancelWhenFlagSet)
{
    // A pre-fired flag means fn must never start: onCancel runs instead,
    // on both the inline and threaded paths.
    for (std::size_t jobs : {1u, 4u}) {
        par::ThreadPool pool(jobs);
        std::atomic<bool> cancel{true};
        std::atomic<int> ran{0}, cancelled{0};
        for (int i = 0; i < 32; ++i)
            pool.submit([&] { ++ran; }, &cancel, [&] { ++cancelled; });
        for (int spin = 0; cancelled.load() < 32 && spin < 2000; ++spin)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        EXPECT_EQ(ran.load(), 0) << "jobs=" << jobs;
        EXPECT_EQ(cancelled.load(), 32) << "jobs=" << jobs;
    }
}

TEST(ThreadPool, CancellableSubmitWithNullFlagDegradesToPlain)
{
    par::ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; }, nullptr, [] { FAIL(); });
    for (int spin = 0; ran.load() < 1 && spin < 2000; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ParallelMapKeepsInputOrder)
{
    par::ThreadPool pool(8);
    std::vector<int> in(500);
    std::iota(in.begin(), in.end(), 0);
    auto out = pool.parallelMap(in, [](int v) { return v * v; });
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ThreadPool, SuiteGenerationIsReentrant)
{
    // Suite builders are called from inside pool tasks by the harness;
    // concurrent calls must agree with a serial call.
    auto reference = cvp1PublicSuite(1000);
    par::ThreadPool pool(8);
    pool.parallelFor(16, [&](std::size_t) {
        auto suite = cvp1PublicSuite(1000);
        ASSERT_EQ(suite.size(), reference.size());
        for (std::size_t i = 0; i < suite.size(); ++i) {
            EXPECT_EQ(suite[i].name, reference[i].name);
            EXPECT_EQ(suite[i].length, reference[i].length);
        }
    });
}

/**
 * The Figure 1/2 sweep must be bit-identical for every TRB_JOBS value.
 * TRB_JOBS=1 runs the loop bodies inline in index order -- exactly the
 * hand-written serial reference below -- so comparing the parallel
 * sweep (TRB_JOBS=8) against it in one process is the 1-vs-8
 * comparison.
 */
TEST(Determinism, SweepBitIdenticalToSerialReference)
{
    // Sized before the global pool's first use in this process; under
    // ctest each gtest case is its own process, so this reliably runs
    // the sweep on eight workers.
    setenv("TRB_JOBS", "8", 1);

    auto full = cvp1PublicSuite(2500);
    std::vector<TraceSpec> suite(full.begin(), full.begin() + 12);
    const auto &sets = figureOneSets();
    CoreParams params = modernConfig();

    std::vector<SimStats> baseline;
    auto series = runImprovementSweep(suite, sets, params, &baseline);
    ASSERT_EQ(series.size(), sets.size());
    ASSERT_EQ(baseline.size(), suite.size());

    for (std::size_t i = 0; i < suite.size(); ++i) {
        CvpTrace cvp =
            TraceGenerator(suite[i].params).generate(suite[i].length);
        SimStats base = simulate(cvp, {.imps = kImpNone,
                                       .params = params}).stats;
        // Bitwise equality, not EXPECT_NEAR: the parallel run must
        // reproduce the serial doubles exactly.
        EXPECT_EQ(baseline[i].cycles, base.cycles);
        EXPECT_EQ(baseline[i].ipc(), base.ipc());
        for (std::size_t k = 0; k < sets.size(); ++k) {
            SimStats s = simulate(cvp, {.imps = sets[k].set,
                                        .params = params}).stats;
            ASSERT_EQ(series[k].ratio.size(), suite.size());
            EXPECT_EQ(series[k].ratio[i], s.ipc() / base.ipc())
                << sets[k].name << " trace " << i;
        }
    }
    unsetenv("TRB_JOBS");
}

// --- Concurrent metrics updates (ThreadSanitizer targets). ---

TEST(MetricsConcurrency, LockedRegistryCountsEveryAdd)
{
    obs::MetricsRegistry reg;
    par::ThreadPool pool(8);
    pool.parallelFor(4000, [&](std::size_t i) {
        reg.addCounter("shared.hits");
        reg.addCounter("lane." + std::to_string(i % 4) + ".hits");
        reg.setGauge("last.index", static_cast<double>(i));
    });
    EXPECT_EQ(reg.counterValue("shared.hits"), 4000u);
    std::uint64_t lanes = 0;
    for (int l = 0; l < 4; ++l)
        lanes += reg.counterValue("lane." + std::to_string(l) + ".hits");
    EXPECT_EQ(lanes, 4000u);
}

TEST(MetricsConcurrency, SnapshotIsConsistentDuringWrites)
{
    obs::MetricsRegistry reg;
    reg.addCounter("probe", 0);
    par::ThreadPool pool(8);
    pool.parallelFor(2000, [&](std::size_t i) {
        if (i % 4 == 0) {
            auto snap = reg.snapshot();   // must not tear or race
            ASSERT_GE(snap.counters.size(), 1u);
        } else {
            reg.addCounter("probe");
        }
    });
    EXPECT_EQ(reg.counterValue("probe"), 1500u);
}

TEST(MetricsConcurrency, ShardedRegistryCountsEveryAdd)
{
    obs::ShardedMetricsRegistry sharded;
    par::ThreadPool pool(8);
    pool.parallelFor(4000, [&](std::size_t i) {
        sharded.addCounter("shared.hits");
        sharded.addCounter("path." + std::to_string(i % 32));
    });
    EXPECT_EQ(sharded.counterValue("shared.hits"), 4000u);

    obs::MetricsRegistry folded;
    sharded.mergeInto(folded);
    EXPECT_EQ(folded.counterValue("shared.hits"), 4000u);
    std::uint64_t spread = 0;
    for (int p = 0; p < 32; ++p)
        spread += folded.counterValue("path." + std::to_string(p));
    EXPECT_EQ(spread, 4000u);
}

TEST(MetricsConcurrency, ThreadBuffersFoldLocallyAndFlushOnce)
{
    obs::MetricsRegistry reg;
    par::ThreadPool pool(8);
    pool.parallelFor(64, [&](std::size_t i) {
        obs::ThreadMetricsBuffer buffer(reg);
        for (int k = 0; k < 100; ++k)
            buffer.add("buffered.hits");
        buffer.set("task." + std::to_string(i) + ".done", 1.0);
        // Destructor flushes the folded batch in one locked pass.
    });
    EXPECT_EQ(reg.counterValue("buffered.hits"), 6400u);
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_EQ(reg.gaugeValue("task." + std::to_string(i) + ".done"),
                  1.0);
}

} // namespace
} // namespace trb
