/**
 * @file
 * Unit tests for the common toolkit: RNG determinism and distribution,
 * statistics helpers, saturating counters and folded histories.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "common/counters.hh"
#include "common/env.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/strings.hh"
#include "common/types.hh"

namespace trb
{
namespace
{

TEST(Strings, EndsWith)
{
    EXPECT_TRUE(endsWith("trace.cvp.gz", ".gz"));
    EXPECT_TRUE(endsWith(".gz", ".gz"));
    EXPECT_TRUE(endsWith("anything", ""));
    EXPECT_TRUE(endsWith("", ""));

    EXPECT_FALSE(endsWith("trace.cvp", ".gz"));
    EXPECT_FALSE(endsWith("gz", ".gz"));          // shorter than the suffix
    EXPECT_FALSE(endsWith("trace.gz.txt", ".gz"));
    EXPECT_FALSE(endsWith("", ".gz"));

    static_assert(endsWith("a.champsimtrace.gz", ".gz"));
    static_assert(!endsWith("a.champsimtrace", ".gz"));
}

TEST(Types, LineHelpers)
{
    EXPECT_EQ(lineAddr(0), 0u);
    EXPECT_EQ(lineAddr(63), 0u);
    EXPECT_EQ(lineAddr(64), 64u);
    EXPECT_EQ(lineAddr(0x12345), 0x12340u);
    EXPECT_EQ(lineNum(127), 1u);
    EXPECT_EQ(lineNum(128), 2u);
}

TEST(Types, ClassPredicates)
{
    EXPECT_TRUE(isBranch(InstClass::CondBranch));
    EXPECT_TRUE(isBranch(InstClass::UncondDirectBranch));
    EXPECT_TRUE(isBranch(InstClass::UncondIndirectBranch));
    EXPECT_FALSE(isBranch(InstClass::Load));
    EXPECT_TRUE(isMem(InstClass::Load));
    EXPECT_TRUE(isMem(InstClass::Store));
    EXPECT_FALSE(isMem(InstClass::Alu));
    EXPECT_FALSE(isMem(InstClass::Fp));
}

TEST(Types, NamesAreDistinct)
{
    std::set<std::string> names;
    for (int c = 0; c <= static_cast<int>(InstClass::Undef); ++c)
        names.insert(instClassName(static_cast<InstClass>(c)));
    EXPECT_EQ(names.size(), 9u);

    std::set<std::string> bnames;
    for (int t = 0; t <= static_cast<int>(BranchType::Return); ++t)
        bnames.insert(branchTypeName(static_cast<BranchType>(t)));
    EXPECT_EQ(bnames.size(), 7u);
}

TEST(Rng, DeterministicBySeed)
{
    Rng a(42), b(42), c(43);
    bool differs = false;
    for (int i = 0; i < 100; ++i) {
        auto va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.range(3, 5);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, WeightedChoices)
{
    Rng rng(17);
    std::vector<double> w{1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 20000; ++i)
        ++counts[rng.weighted(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Stats, MeanAndPercentile)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 50), 3.0);
}

TEST(Stats, Mpki)
{
    EXPECT_DOUBLE_EQ(mpki(5, 1000), 5.0);
    EXPECT_DOUBLE_EQ(mpki(1, 0), 0.0);
    EXPECT_DOUBLE_EQ(mpki(0, 123456), 0.0);
}

TEST(Stats, StatSetAccumulatesAndMerges)
{
    StatSet a;
    a.add("x");
    a.add("x", 4);
    a.set("y", 10);
    EXPECT_EQ(a.get("x"), 5u);
    EXPECT_EQ(a.get("y"), 10u);
    EXPECT_EQ(a.get("absent"), 0u);

    StatSet b;
    b.add("x", 2);
    b.add("z", 7);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 7u);
    EXPECT_EQ(a.get("z"), 7u);

    std::string rep = a.report("pre.");
    EXPECT_NE(rep.find("pre.x 7"), std::string::npos);
}

TEST(Stats, StatSetCounterHandleStaysValid)
{
    // Hot paths cache the counter() reference; it must survive the set
    // growing by thousands of later registrations (deque-backed storage).
    StatSet s;
    std::uint64_t &hot = s.counter("hot.path");
    for (int i = 0; i < 4000; ++i)
        s.add("other." + std::to_string(i));
    hot += 42;
    ++hot;
    EXPECT_EQ(s.get("hot.path"), 43u);
    // Insertion order preserved: the cached counter registered first.
    EXPECT_EQ(s.entries().front().first, "hot.path");
}

TEST(Stats, HistogramBuckets)
{
    Histogram h(10, 4);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    h.sample(1000);   // overflow bucket
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.buckets()[4], 1u);
}

TEST(SatCounter, SaturatesBothEnds)
{
    SatCounter c(2, 0);
    EXPECT_TRUE(c.saturatedLow());
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_TRUE(c.saturatedHigh());
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.taken());
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_FALSE(c.taken());
}

TEST(SatCounter, WeakResets)
{
    SatCounter c(3);
    c.resetWeak(true);
    EXPECT_TRUE(c.taken());
    EXPECT_EQ(c.confidence(), 0u);
    c.resetWeak(false);
    EXPECT_FALSE(c.taken());
    EXPECT_EQ(c.confidence(), 0u);
}

TEST(SignedSatCounter, Saturates)
{
    SignedSatCounter c(3);
    for (int i = 0; i < 20; ++i)
        c.update(true);
    EXPECT_EQ(c.value(), 3);
    for (int i = 0; i < 20; ++i)
        c.update(false);
    EXPECT_EQ(c.value(), -4);
    EXPECT_FALSE(c.positive());
}

TEST(FoldedHistory, DeterministicAndBounded)
{
    // Identical bit streams fold identically; different streams diverge;
    // the fold always fits in the compressed width.
    constexpr unsigned orig = 13, comp = 5;
    auto run = [](std::uint64_t seed) {
        FoldedHistory fh(orig, comp);
        std::vector<bool> hist(orig, false);
        Rng rng(seed);
        for (int step = 0; step < 500; ++step) {
            bool bit = rng.chance(0.5);
            bool evicted = hist.back();
            hist.pop_back();
            hist.insert(hist.begin(), bit);
            fh.update(bit, evicted);
            if (fh.value() >= (1u << comp))
                return ~0u;   // out of range: fail below
        }
        return fh.value();
    };
    EXPECT_EQ(run(23), run(23));
    EXPECT_LT(run(23), 1u << comp);
    EXPECT_NE(run(23), run(29));
}

TEST(FoldedHistory, ZeroHistoryFoldsToZero)
{
    FoldedHistory fh(16, 8);
    for (int i = 0; i < 100; ++i)
        fh.update(false, false);
    EXPECT_EQ(fh.value(), 0u);
}

TEST(Env, DefaultsWhenUnset)
{
    unsetenv("TRB_TRACE_LEN");
    unsetenv("TRB_SUITE_SCALE");
    EXPECT_EQ(env::u64("TRB_TRACE_LEN", 7), 7u);
    EXPECT_DOUBLE_EQ(env::number("TRB_SUITE_SCALE", 0.5), 0.5);
    EXPECT_EQ(env::str("TRB_STORE", "fallback"), "fallback");
    EXPECT_FALSE(env::flag("TRB_LINT"));
}

TEST(Env, ParsesValues)
{
    setenv("TRB_TRACE_LEN", "123", 1);
    EXPECT_EQ(env::u64("TRB_TRACE_LEN", 7), 123u);
    unsetenv("TRB_TRACE_LEN");
    setenv("TRB_SUITE_SCALE", "0.25", 1);
    EXPECT_DOUBLE_EQ(env::number("TRB_SUITE_SCALE", 0.5), 0.25);
    unsetenv("TRB_SUITE_SCALE");
    setenv("TRB_LINT", "1", 1);
    EXPECT_TRUE(env::flag("TRB_LINT"));
    setenv("TRB_LINT", "0", 1);
    EXPECT_FALSE(env::flag("TRB_LINT"));
    unsetenv("TRB_LINT");
}

TEST(Env, RegistryIsSortedAndQueryable)
{
    const auto &vars = env::registry();
    ASSERT_FALSE(vars.empty());
    for (std::size_t i = 1; i < vars.size(); ++i)
        EXPECT_LT(std::string(vars[i - 1].name), std::string(vars[i].name))
            << "registry must stay alphabetical";
    for (const auto &var : vars) {
        EXPECT_TRUE(env::isRegistered(var.name)) << var.name;
        EXPECT_NE(var.summary[0], '\0') << var.name;
    }
    EXPECT_FALSE(env::isRegistered("TRB_NOT_A_REAL_KNOB"));
}

TEST(Env, EveryRegisteredVarIsDocumented)
{
    // docs/env-vars.md is the user-facing contract; a knob that is
    // registered but undocumented fails here and in trace_lint
    // --selftest.
    std::ifstream in(std::string(TRB_SOURCE_DIR) + "/docs/env-vars.md");
    ASSERT_TRUE(in.good()) << "docs/env-vars.md missing";
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string docs = ss.str();
    for (const auto &var : env::registry())
        EXPECT_NE(docs.find(var.name), std::string::npos)
            << var.name << " is registered but not in docs/env-vars.md";
}

} // namespace
} // namespace trb
