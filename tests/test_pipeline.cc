/**
 * @file
 * Tests for the out-of-order core model: IPC bounds under synthetic
 * instruction sequences, dependency serialisation, branch-misprediction
 * penalties, the decoupled front-end, and the mechanisms the paper's
 * improvements act through (base-register latency, late branch
 * resolution).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "obs/pipeline_trace.hh"
#include "pipeline/o3core.hh"
#include "sim/simulator.hh"
#include "synth/generator.hh"

namespace trb
{
namespace
{

CoreParams
quietParams()
{
    CoreParams p = modernConfig();
    p.decoupledFrontEnd = false;
    p.mem.l1dIpStride = false;
    p.mem.l2NextLine = false;
    return p;
}

/** n independent single-cycle ALU instructions (L1I-resident loop). */
ChampSimTrace
independentAlus(std::size_t n)
{
    ChampSimTrace t;
    for (std::size_t i = 0; i < n; ++i) {
        ChampSimRecord r;
        r.ip = 0x400000 + 4 * (i % 1024);
        r.addDstReg(static_cast<RegId>(10 + (i % 8)));
        t.push_back(r);
    }
    return t;
}

/** n ALU instructions forming one serial dependency chain. */
ChampSimTrace
dependentChain(std::size_t n)
{
    ChampSimTrace t;
    for (std::size_t i = 0; i < n; ++i) {
        ChampSimRecord r;
        r.ip = 0x400000 + 4 * (i % 1024);
        r.addSrcReg(10);
        r.addDstReg(10);
        t.push_back(r);
    }
    return t;
}

TEST(O3Core, IndependentAlusReachIssueWidth)
{
    CoreParams p = quietParams();
    O3Core core(p);
    SimStats s = core.run(independentAlus(30000), 5000);
    EXPECT_GT(s.ipc(), p.issueWidth * 0.8);
    EXPECT_LE(s.ipc(), p.issueWidth + 0.01);
}

TEST(O3Core, DependentChainRunsAtOneIpc)
{
    O3Core core(quietParams());
    SimStats s = core.run(dependentChain(30000), 5000);
    EXPECT_NEAR(s.ipc(), 1.0, 0.05);
}

TEST(O3Core, FetchWidthBoundsEvenWithWideIssue)
{
    CoreParams p = quietParams();
    p.fetchWidth = 2;
    O3Core core(p);
    SimStats s = core.run(independentAlus(30000), 5000);
    EXPECT_LE(s.ipc(), 2.01);
    EXPECT_GT(s.ipc(), 1.7);
}

TEST(O3Core, RobLimitsOverlapAcrossLongLoads)
{
    // Loads that miss to DRAM: with a tiny ROB the core cannot overlap
    // them, so IPC collapses relative to a big ROB.
    auto make = [](std::size_t n) {
        ChampSimTrace t;
        for (std::size_t i = 0; i < n; ++i) {
            ChampSimRecord r;
            r.ip = 0x400000 + 4 * (i % 64);
            r.addSrcMem(0x10000000 + 64 * (i * 7919 % 100000));
            r.addDstReg(static_cast<RegId>(10 + (i % 4)));
            t.push_back(r);
        }
        return t;
    };
    CoreParams big = quietParams();
    big.robSize = 512;
    CoreParams small = quietParams();
    small.robSize = 16;
    SimStats s_big = O3Core(big).run(make(20000));
    SimStats s_small = O3Core(small).run(make(20000));
    EXPECT_GT(s_big.ipc(), 2.0 * s_small.ipc());
}

/** Conditional branch record (reads flags). */
ChampSimRecord
condBranch(Addr ip, bool taken)
{
    ChampSimRecord r;
    r.ip = ip;
    r.isBranch = 1;
    r.branchTaken = taken;
    r.addSrcReg(champsim::kInstructionPointer);
    r.addSrcReg(champsim::kFlags);
    r.addDstReg(champsim::kInstructionPointer);
    return r;
}

TEST(O3Core, PredictableBranchesAreCheap)
{
    // Always-taken loop branch: TAGE learns it, IPC stays high.
    ChampSimTrace t;
    for (int rep = 0; rep < 4000; ++rep) {
        for (int i = 0; i < 7; ++i) {
            ChampSimRecord r;
            r.ip = 0x400000 + 4u * i;
            r.addDstReg(static_cast<RegId>(10 + i));
            t.push_back(r);
        }
        t.push_back(condBranch(0x400000 + 28, true));
    }
    O3Core core(quietParams());
    SimStats s = core.run(t, 8000);
    EXPECT_LT(s.branchMpki(), 3.0);
    EXPECT_GT(s.ipc(), 2.0);
}

TEST(O3Core, RandomBranchesPayThePenalty)
{
    Rng rng(3);
    auto make = [&rng](bool random) {
        ChampSimTrace t;
        Rng local(7);
        for (int rep = 0; rep < 6000; ++rep) {
            for (int i = 0; i < 5; ++i) {
                ChampSimRecord r;
                r.ip = 0x400000 + 4u * i;
                r.addDstReg(static_cast<RegId>(10 + i));
                t.push_back(r);
            }
            bool taken = random ? local.chance(0.5) : true;
            t.push_back(condBranch(0x400000 + 20, taken));
            // Model both fall-through and taken landing on same next ip.
        }
        return t;
    };
    SimStats easy = O3Core(quietParams()).run(make(false), 6000);
    SimStats hard = O3Core(quietParams()).run(make(true), 6000);
    EXPECT_GT(hard.directionMpki(), 30.0);
    EXPECT_LT(easy.directionMpki(), 3.0);
    EXPECT_GT(easy.ipc(), 1.5 * hard.ipc());
}

TEST(O3Core, LateResolvingBranchHurtsMore)
{
    // The branch-regs/flag-reg mechanism: a mispredicting branch that
    // depends on a DRAM-missing load resolves late, so the penalty is
    // exposed; an input-free branch resolves early.
    Rng rng(11);
    auto make = [](bool dependent, Rng &r) {
        ChampSimTrace t;
        for (int rep = 0; rep < 5000; ++rep) {
            ChampSimRecord ld;
            ld.ip = 0x400000;
            ld.addSrcMem(0x20000000 + 64 * ((rep * 7919) % 200000));
            ld.addDstReg(33);
            t.push_back(ld);
            ChampSimRecord br = condBranch(0x400004, r.chance(0.5));
            if (dependent) {
                // Replace the flags source with the load's output.
                br.srcRegs[1] = 33;
            }
            t.push_back(br);
        }
        return t;
    };
    Rng r1(5), r2(5);
    CoreParams p = quietParams();
    p.rules = DeductionRules::Patched;
    SimStats fast = O3Core(p).run(make(false, r1), 5000);
    SimStats slow = O3Core(p).run(make(true, r2), 5000);
    // Same branch outcomes, same mispredictions -- only resolution time
    // differs.
    EXPECT_NEAR(static_cast<double>(slow.directionMispredicts),
                static_cast<double>(fast.directionMispredicts),
                fast.directionMispredicts * 0.05 + 10);
    EXPECT_GT(fast.ipc(), 1.3 * slow.ipc());
}

TEST(O3Core, BaseUpdateSplitRestoresMlp)
{
    // The base-update mechanism: a pointer-increment load chain.  When
    // the base register is a destination of the load (resolves at memory
    // latency), iterations serialise; when an ALU micro-op carries the
    // base, misses overlap.
    auto make = [](bool split) {
        ChampSimTrace t;
        Addr addr = 0x30000000;
        for (int i = 0; i < 8000; ++i) {
            if (split) {
                ChampSimRecord alu;
                alu.ip = 0x400000;
                alu.addSrcReg(40);
                alu.addDstReg(40);
                t.push_back(alu);
                ChampSimRecord ld;
                ld.ip = 0x400002;
                ld.addSrcReg(40);
                ld.addDstReg(41);
                ld.addSrcMem(addr);
                t.push_back(ld);
            } else {
                ChampSimRecord ld;
                ld.ip = 0x400000;
                ld.addSrcReg(40);
                ld.addDstReg(41);
                ld.addDstReg(40);
                ld.addSrcMem(addr);
                t.push_back(ld);
            }
            addr += 4096;   // defeat prefetchers and caches
        }
        return t;
    };
    SimStats fused = O3Core(quietParams()).run(make(false), 4000);
    SimStats split = O3Core(quietParams()).run(make(true), 4000);
    EXPECT_GT(split.ipc(), 3.0 * fused.ipc());
}

TEST(O3Core, ReturnPredictionViaRas)
{
    // call ... ret pairs: the RAS must predict return targets, so the
    // target MPKI stays near zero.
    ChampSimTrace t;
    for (int rep = 0; rep < 3000; ++rep) {
        ChampSimRecord call;
        call.ip = 0x400000;
        call.isBranch = 1;
        call.branchTaken = 1;
        call.addSrcReg(champsim::kInstructionPointer);
        call.addSrcReg(champsim::kStackPointer);
        call.addDstReg(champsim::kInstructionPointer);
        call.addDstReg(champsim::kStackPointer);
        t.push_back(call);

        ChampSimRecord body;
        body.ip = 0x500000;
        body.addDstReg(12);
        t.push_back(body);

        ChampSimRecord ret;
        ret.ip = 0x500004;
        ret.isBranch = 1;
        ret.branchTaken = 1;
        ret.addSrcReg(champsim::kStackPointer);
        ret.addDstReg(champsim::kInstructionPointer);
        ret.addDstReg(champsim::kStackPointer);
        t.push_back(ret);

        ChampSimRecord after;
        after.ip = 0x400004;
        after.addDstReg(13);
        t.push_back(after);
    }
    O3Core core(quietParams());
    SimStats s = core.run(t, 4000);
    EXPECT_LT(s.returnMpki(), 1.0);
}

TEST(O3Core, IdealTargetsSuppressTargetMisses)
{
    // Polymorphic indirect jumps: with ideal targets there are no target
    // mispredictions at all (the IPC-1 configuration).
    Rng rng(13);
    ChampSimTrace t;
    Addr targets[3] = {0x400010, 0x400020, 0x400030};
    for (int rep = 0; rep < 5000; ++rep) {
        ChampSimRecord br;
        br.ip = 0x400000;
        br.isBranch = 1;
        br.branchTaken = 1;
        br.addSrcReg(60);
        br.addDstReg(champsim::kInstructionPointer);
        t.push_back(br);
        ChampSimRecord body;
        body.ip = targets[rng.below(3)];
        body.addDstReg(14);
        t.push_back(body);
    }
    CoreParams real = quietParams();
    CoreParams ideal = quietParams();
    ideal.idealTargets = true;
    SimStats s_real = O3Core(real).run(t, 5000);
    SimStats s_ideal = O3Core(ideal).run(t, 5000);
    EXPECT_GT(s_real.targetMpki(), 20.0);
    EXPECT_EQ(s_ideal.targetMispredicts, 0u);
    EXPECT_GT(s_ideal.ipc(), s_real.ipc());
}

TEST(O3Core, DecoupledFrontEndPrefetchesBigFootprints)
{
    // A large sequential instruction footprint: FDIP lookahead turns
    // most L1I misses into timely prefetches.
    ChampSimTrace t;
    for (int i = 0; i < 60000; ++i) {
        ChampSimRecord r;
        r.ip = 0x400000 + 4u * static_cast<Addr>(i % 30000);   // 120 KiB
        r.addDstReg(static_cast<RegId>(10 + (i % 8)));
        t.push_back(r);
    }
    CoreParams coupled = quietParams();
    CoreParams fdip = quietParams();
    fdip.decoupledFrontEnd = true;
    SimStats s_coupled = O3Core(coupled).run(t, 30000);
    SimStats s_fdip = O3Core(fdip).run(t, 30000);
    EXPECT_GT(s_fdip.ipc(), 1.2 * s_coupled.ipc());
}

TEST(O3Core, WarmupExcludedFromStats)
{
    ChampSimTrace t = independentAlus(20000);
    O3Core a(quietParams()), b(quietParams());
    SimStats full = a.run(t, 0);
    SimStats half = b.run(t, 10000);
    EXPECT_EQ(full.instructions, 20000u);
    EXPECT_EQ(half.instructions, 10000u);
    EXPECT_LT(half.cycles, full.cycles);
}

TEST(O3Core, StoresCountInDataCacheStats)
{
    ChampSimTrace t;
    for (int i = 0; i < 1000; ++i) {
        ChampSimRecord st;
        st.ip = 0x400000;
        st.addSrcReg(11);
        st.addDstMem(0x40000000 + 64 * i);
        t.push_back(st);
    }
    O3Core core(quietParams());
    SimStats s = core.run(t);
    EXPECT_EQ(s.l1dAccesses, 1000u);
    EXPECT_GT(s.l1dMisses, 900u);
}

TEST(O3Core, TracedStampsAreOrderedAndRetireMonotonic)
{
    // A realistic mix (branches, loads, misses) through the tracer: every
    // instruction's stamps must respect pipeline order, and retirement is
    // in-order, so retire stamps never go backwards across the sequence.
    TraceGenerator gen(serverParams(17));
    CvpTrace cvp = gen.generate(8000);
    Cvp2ChampSim conv(kAllImps);
    ChampSimTrace trace = conv.convert(cvp);

    obs::PipelineTracer tracer(trace.size());
    O3Core core(modernConfig());
    core.setTracer(&tracer);
    core.run(trace);

    ASSERT_EQ(tracer.recorded(), trace.size());
    auto events = tracer.events();
    ASSERT_EQ(events.size(), trace.size());

    Cycle last_retire = 0;
    for (const obs::InstrEvent &ev : events) {
        EXPECT_LE(ev.fetch, ev.dispatch) << "seq " << ev.seq;
        EXPECT_LE(ev.dispatch, ev.issue) << "seq " << ev.seq;
        EXPECT_LE(ev.issue, ev.complete) << "seq " << ev.seq;
        EXPECT_LE(ev.complete, ev.retire) << "seq " << ev.seq;
        EXPECT_GE(ev.retire, last_retire)
            << "retire went backwards at seq " << ev.seq;
        last_retire = ev.retire;
    }
}

TEST(O3Core, TinyRobCountsFullStalls)
{
    CoreParams p = quietParams();
    p.robSize = 8;
    O3Core core(p);
    SimStats s = core.run(dependentChain(5000));
    EXPECT_GT(s.robFullStalls, 0u);
    EXPECT_EQ(s.toStatSet().get("rob.full_stalls"), s.robFullStalls);
}

TEST(Simulator, ConfigsDiffer)
{
    CoreParams m = modernConfig();
    CoreParams i = ipc1Config();
    EXPECT_TRUE(m.decoupledFrontEnd);
    EXPECT_FALSE(i.decoupledFrontEnd);
    EXPECT_FALSE(m.idealTargets);
    EXPECT_TRUE(i.idealTargets);
    EXPECT_EQ(m.rules, DeductionRules::Patched);
}

TEST(Simulator, EndToEndDeterminism)
{
    TraceGenerator gen(computeIntParams(123));
    CvpTrace cvp = gen.generate(20000);
    SimStats a = simulate(cvp, {.imps = kAllImps}).stats;
    SimStats b = simulate(cvp, {.imps = kAllImps}).stats;
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
}

} // namespace
} // namespace trb
