/**
 * @file
 * Tests for trb::flow: CFG reconstruction over hand-built µop streams,
 * the worklist dataflow solution, the whole-program lint rules against
 * the committed cfg_* fixtures (which the streaming linter must pass),
 * streaming/whole-program agreement on the dirty No_imp fixtures, and
 * the region-signature matrices including their bit-identical round
 * trip through the artifact store.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <initializer_list>
#include <set>
#include <string>
#include <utility>

#include "convert/cvp2champsim.hh"
#include "flow/analyze.hh"
#include "flow/rules.hh"
#include "lint/lint.hh"
#include "obs/metrics.hh"
#include "store/store.hh"
#include "synth/generator.hh"
#include "trace/champsim_trace.hh"

namespace trb
{
namespace
{

using flow::Cfg;
using flow::Dataflow;
using flow::EdgeKind;
using flow::FlowOptions;
using flow::FlowResult;

// ---------------------------------------------------------------------
// Record factories (same shapes as tools/make_lint_testdata.cc).

ChampSimRecord
alu(Addr pc, RegId dst, std::initializer_list<RegId> srcs)
{
    ChampSimRecord rec;
    rec.ip = pc;
    if (dst != 0)
        rec.addDstReg(dst);
    for (RegId s : srcs)
        rec.addSrcReg(s);
    return rec;
}

ChampSimRecord
condBr(Addr pc, bool taken, RegId condReg)
{
    ChampSimRecord rec;
    rec.ip = pc;
    rec.isBranch = 1;
    rec.branchTaken = taken ? 1 : 0;
    rec.addDstReg(champsim::kInstructionPointer);
    rec.addSrcReg(champsim::kInstructionPointer);
    rec.addSrcReg(condReg);
    return rec;
}

ChampSimRecord
load(Addr pc, RegId dst, Addr ea)
{
    ChampSimRecord rec = alu(pc, dst, {});
    rec.addSrcMem(ea);
    return rec;
}

/** A -> B -> C -> A taken-branch loop, @p iters times. */
ChampSimTrace
loopTrace(int iters)
{
    ChampSimTrace t;
    for (int i = 0; i < iters; ++i) {
        t.push_back(alu(0x1000, 7, {8}));
        t.push_back(load(0x1004, 8, 0x80000 + 64 * Addr(i)));
        t.push_back(condBr(0x1008, true, 7));
        t.push_back(alu(0x2000, 9, {7}));
        t.push_back(condBr(0x2004, true, 9));
        t.push_back(alu(0x3000, 10, {9}));
        t.push_back(condBr(0x3004, true, 10));
    }
    return t;
}

std::string
fixturePath(const std::string &name)
{
    return std::string(TRB_SOURCE_DIR) + "/tests/data/lint/" + name;
}

// ---------------------------------------------------------------------
// CFG reconstruction.

TEST(Cfg, LoopBlocksAndEdges)
{
    Cfg cfg = flow::buildCfg(loopTrace(10));

    ASSERT_EQ(cfg.blocks.size(), 3u);
    EXPECT_EQ(cfg.entryBlock, 0u);
    EXPECT_EQ(cfg.blocks[0].start, 0x1000u);
    EXPECT_EQ(cfg.blocks[0].end, 0x1008u);
    EXPECT_EQ(cfg.blocks[0].numUops, 3u);
    EXPECT_TRUE(cfg.blocks[0].endsInBranch);
    EXPECT_EQ(cfg.blocks[0].terminator, BranchType::Conditional);
    EXPECT_EQ(cfg.blocks[0].execCount, 10u);
    EXPECT_EQ(cfg.blocks[0].uopCount, 30u);

    // Three taken edges, each traversed every iteration (A's re-entry
    // edge 9 times), no teleports, every non-entry entry explained.
    ASSERT_EQ(cfg.edges.size(), 3u);
    for (const flow::Edge &e : cfg.edges)
        EXPECT_EQ(e.kind, EdgeKind::Taken);
    EXPECT_EQ(cfg.teleports, 0u);
    for (std::size_t b = 1; b < cfg.blocks.size(); ++b)
        EXPECT_EQ(cfg.blocks[b].entries, cfg.blocks[b].explainedEntries);
}

TEST(Cfg, MemorySummaryAndSignatures)
{
    Cfg cfg = flow::buildCfg(loopTrace(10));

    const flow::BasicBlock &a = cfg.blocks[0];
    EXPECT_EQ(a.mem.loads, 10u);
    EXPECT_EQ(a.mem.stores, 0u);
    EXPECT_EQ(a.mem.strideUnit, 9u);   // 64-byte stride, 9 revisits
    EXPECT_EQ(a.mem.lines, 10u);

    const flow::PcSig &sig = cfg.pcSigs.at(0x1008);
    EXPECT_TRUE(sig.isBranch);
    EXPECT_TRUE(sig.srcs.test(7));
    EXPECT_TRUE(sig.dsts.test(champsim::kInstructionPointer));
    EXPECT_EQ(sig.occurrences, 10u);
}

TEST(Cfg, FallthroughSplitsBlocks)
{
    // A non-taken branch ends the block; the successor is a new block
    // entered through a fall-through edge.
    ChampSimTrace t;
    for (int i = 0; i < 5; ++i) {
        t.push_back(alu(0x1000, 7, {}));
        t.push_back(condBr(0x1004, false, 7));
        t.push_back(alu(0x1008, 8, {7}));
        t.push_back(condBr(0x100c, true, 8));
    }
    Cfg cfg = flow::buildCfg(t);

    ASSERT_EQ(cfg.blocks.size(), 2u);
    ASSERT_EQ(cfg.edges.size(), 2u);
    EXPECT_EQ(cfg.edges[0].kind, EdgeKind::Fallthrough);
    EXPECT_EQ(cfg.edges[1].kind, EdgeKind::Taken);
    EXPECT_EQ(cfg.teleports, 0u);
    ASSERT_EQ(cfg.fallExits[0].size(), 1u);
    EXPECT_EQ(cfg.fallExits[0][0].targetPc, 0x1008u);
    EXPECT_TRUE(cfg.fallExits[0][0].contiguous);
}

TEST(Cfg, TeleportEntryIsUnexplained)
{
    // A 256-byte forward skip: inside the streaming window, far beyond
    // the static-neighbour window -- a teleport, not an edge.
    ChampSimTrace t;
    for (int i = 0; i < 5; ++i) {
        t.push_back(alu(0x1000, 7, {}));
        t.push_back(alu(0x1100, 8, {7}));
        t.push_back(condBr(0x1104, true, 8));
    }
    Cfg cfg = flow::buildCfg(t);

    ASSERT_EQ(cfg.blocks.size(), 2u);
    EXPECT_EQ(cfg.teleports, 5u);
    const flow::BasicBlock &d = cfg.blocks[1];
    EXPECT_EQ(d.entries, 5u);
    EXPECT_EQ(d.explainedEntries, 0u);
}

// ---------------------------------------------------------------------
// Dataflow.

TEST(Dataflow, ReachingDefsAndLiveness)
{
    Cfg cfg = flow::buildCfg(loopTrace(10));
    Dataflow df = flow::solveDataflow(cfg);

    ASSERT_EQ(df.gen.size(), 3u);
    // A defines r7/r8, C's use of r9 makes it live out of B, and B's
    // def of r9 reaches C's entry.
    EXPECT_TRUE(df.gen[0].test(7));
    EXPECT_TRUE(df.gen[0].test(8));
    EXPECT_TRUE(df.upExposed[1].test(7));
    EXPECT_TRUE(df.liveOut[1].test(9));
    EXPECT_TRUE(df.reachAnyIn[2].test(9));
    EXPECT_GT(df.iterations, 0u);
}

TEST(Dataflow, DefUseChainsLinkAcrossBlocks)
{
    Cfg cfg = flow::buildCfg(loopTrace(10));
    Dataflow df = flow::solveDataflow(cfg);

    // B's upward-exposed read of r7 at 0x2000 must chain to A's def
    // site at 0x1000 (the loop edge makes it reach).
    const flow::UseSite *use = nullptr;
    for (const flow::UseSite &u : df.chains)
        if (u.reg == 7 && u.pc == 0x2000)
            use = &u;
    ASSERT_NE(use, nullptr);
    ASSERT_EQ(use->defs.size(), 1u);
    const flow::DefSite &def = df.defSites[use->defs[0]];
    EXPECT_EQ(def.pc, 0x1000u);
    EXPECT_EQ(def.reg, 7);
}

// ---------------------------------------------------------------------
// Whole-program rules: catalog wiring.

TEST(CfgRules, CatalogMarksWholeProgramRules)
{
    std::vector<std::string> ids = flow::wholeProgramRuleIds();
    ASSERT_EQ(ids.size(), 5u);
    for (const std::string &id : ids) {
        const lint::RuleInfo *info = lint::findRule(id);
        ASSERT_NE(info, nullptr) << id;
        EXPECT_TRUE(info->wholeProgram) << id;
        EXPECT_FALSE(info->needsCvp) << id;
    }
    // The streaming linter must skip them even on an explicit enable.
    lint::LintOptions opts;
    opts.enable = ids;
    std::vector<std::string> resolved;
    std::string bad;
    ASSERT_TRUE(opts.resolveRules(resolved, bad));
    EXPECT_TRUE(resolved.empty());
}

// ---------------------------------------------------------------------
// Whole-program rules: the committed fixtures.  Each seeds exactly one
// CFG defect; the streaming linter must pass every one of them (at
// warn-and-above) while the analyzer flags exactly the intended rule.

struct FixtureCase
{
    const char *file;
    const char *rule;
};

class CfgFixture : public ::testing::TestWithParam<FixtureCase>
{
};

TEST_P(CfgFixture, StreamingPassesAnalyzerFlags)
{
    const FixtureCase &fc = GetParam();
    auto trace = tryReadChampSimTrace(fixturePath(fc.file));
    ASSERT_TRUE(trace.ok()) << trace.status().message();

    lint::LintReport streaming = lint::lintTrace(trace.value());
    EXPECT_EQ(streaming.violations(), 0u)
        << fc.file << " must be invisible to the linear scan";

    FlowOptions opts;
    opts.useStore = false;
    FlowResult result = flow::analyzeTrace(trace.value(), opts);
    EXPECT_GT(result.report.countFor(fc.rule), 0u);
    for (const lint::RuleCount &rc : result.report.counts)
        EXPECT_EQ(rc.rule, fc.rule)
            << fc.file << " fired an unintended rule";
    ASSERT_FALSE(result.report.diagnostics.empty());
    EXPECT_EQ(result.report.diagnostics[0].rule, fc.rule);
}

INSTANTIATE_TEST_SUITE_P(
    Seeded, CfgFixture,
    ::testing::Values(
        FixtureCase{"cfg_staledef.champsimtrace.gz", "cfg-stale-def"},
        FixtureCase{"cfg_unreachable.champsimtrace.gz", "cfg-unreachable"},
        FixtureCase{"cfg_fallthrough.champsimtrace.gz", "cfg-fallthrough"},
        FixtureCase{"cfg_callimb.champsimtrace.gz", "cfg-call-balance"},
        FixtureCase{"cfg_staleflags.champsimtrace.gz",
                    "cfg-flag-staleness"}),
    [](const auto &info) {
        std::string name = info.param.rule;
        std::replace(name.begin(), name.end(), '-', '_');
        return name;
    });

TEST(CfgRules, StaleDefReportsUseSite)
{
    auto trace =
        tryReadChampSimTrace(fixturePath("cfg_staledef.champsimtrace.gz"));
    ASSERT_TRUE(trace.ok());
    FlowOptions opts;
    opts.useStore = false;
    FlowResult result = flow::analyzeTrace(trace.value(), opts);
    ASSERT_EQ(result.report.countFor("cfg-stale-def"), 2u);
    for (const lint::Diagnostic &d : result.report.diagnostics)
        EXPECT_EQ(d.pc, 0x3000u);   // the cross-block read, not the def
}

// ---------------------------------------------------------------------
// Streaming/whole-program agreement: every diagnostic the linear scan
// finds on the dirty fixtures must also be in the analyzer's report,
// same rule at the same PC (the analyzer runs the same streaming pass).

TEST(Agreement, AnalyzerSubsumesStreamingFindings)
{
    for (const char *name :
         {"srv_small.No_imp.champsimtrace.gz",
          "int_small.No_imp.champsimtrace.gz",
          "mem_small.No_imp.champsimtrace.gz"}) {
        auto trace = tryReadChampSimTrace(fixturePath(name));
        ASSERT_TRUE(trace.ok()) << name;

        lint::LintReport streaming = lint::lintTrace(trace.value());
        FlowOptions opts;
        opts.useStore = false;
        opts.regionUops = 0;
        FlowResult whole = flow::analyzeTrace(trace.value(), opts);

        std::set<std::pair<std::string, Addr>> found;
        for (const lint::Diagnostic &d : whole.report.diagnostics)
            found.emplace(d.rule, d.pc);
        for (const lint::Diagnostic &d : streaming.diagnostics)
            EXPECT_TRUE(found.count({d.rule, d.pc}) != 0)
                << name << ": " << d.rule << " at " << d.pc;
        for (const lint::RuleCount &rc : streaming.counts)
            EXPECT_EQ(whole.report.countFor(rc.rule), rc.count)
                << name << ": " << rc.rule;
    }
}

// ---------------------------------------------------------------------
// Clean conversions stay clean under the whole-program pass.

TEST(Analyze, FullyImprovedConversionsAreClean)
{
    for (WorkloadParams params :
         {computeIntParams(7), serverParams(3)}) {
        CvpTrace cvp = TraceGenerator(params).generate(20000);
        ChampSimTrace cs = Cvp2ChampSim(ImprovementSet{kAllImps}).convert(cvp);

        FlowOptions opts;
        opts.useStore = false;
        FlowResult result = flow::analyzeConverted(cvp, cs, opts);
        EXPECT_TRUE(result.report.paired);
        EXPECT_EQ(result.report.violations(), 0u);
        EXPECT_EQ(result.cfg.teleports, 0u);
        EXPECT_GT(result.cfg.blocks.size(), 1u);
        EXPECT_FALSE(result.regions.empty());
    }
}

// ---------------------------------------------------------------------
// Region signatures.

TEST(Regions, RowsSumToRegionLength)
{
    ChampSimTrace t = loopTrace(100);   // 700 µops
    Cfg cfg = flow::buildCfg(t);
    flow::RegionSignatures regions = flow::buildRegions(t, cfg, 100);

    ASSERT_EQ(regions.numRegions, 7u);
    ASSERT_EQ(regions.blockPcs.size(), 3u);
    EXPECT_TRUE(std::is_sorted(regions.blockPcs.begin(),
                               regions.blockPcs.end()));
    for (std::uint64_t r = 0; r < regions.numRegions; ++r) {
        std::uint64_t uops = 0;
        for (std::size_t c = 0; c < regions.blockPcs.size(); ++c)
            uops += regions.bbvAt(r, c);
        EXPECT_EQ(uops, 100u);
        EXPECT_EQ(regions.mavAt(r, flow::kMavStores), 0u);
        EXPECT_GT(regions.mavAt(r, flow::kMavLoads), 0u);
    }
    // Every line is new in its first region and the loop never revisits.
    EXPECT_EQ(regions.mavAt(0, flow::kMavNewLines),
              regions.mavAt(0, flow::kMavUniqueLines));
}

TEST(Regions, BitsRoundTrip)
{
    ChampSimTrace t = loopTrace(50);
    Cfg cfg = flow::buildCfg(t);
    flow::RegionSignatures regions = flow::buildRegions(t, cfg, 64);

    flow::RegionSignatures back;
    ASSERT_TRUE(back.fromBits(regions.bbvBits(), regions.mavBits()));
    EXPECT_EQ(back.regionUops, regions.regionUops);
    EXPECT_EQ(back.numRegions, regions.numRegions);
    EXPECT_EQ(back.blockPcs, regions.blockPcs);
    EXPECT_EQ(back.bbv, regions.bbv);
    EXPECT_EQ(back.mav, regions.mav);

    // Tampered headers are rejected without touching the destination.
    std::vector<std::uint64_t> bad = regions.bbvBits();
    bad[0] ^= 1;
    flow::RegionSignatures untouched;
    EXPECT_FALSE(untouched.fromBits(bad, regions.mavBits()));
    EXPECT_EQ(untouched.numRegions, 0u);
}

TEST(Regions, DeterministicAcrossRebuilds)
{
    ChampSimTrace t = loopTrace(80);
    Cfg cfg = flow::buildCfg(t);
    flow::RegionSignatures a = flow::buildRegions(t, cfg, 128);
    flow::RegionSignatures b = flow::buildRegions(t, cfg, 128);
    EXPECT_EQ(a.bbvBits(), b.bbvBits());
    EXPECT_EQ(a.mavBits(), b.mavBits());
}

// ---------------------------------------------------------------------
// Store round trip: a warm analysis serves both region artifacts from
// the store, bit-identically, with zero misses.

TEST(Regions, WarmStoreServesRegions)
{
    std::string dir = std::string(TRB_BUILD_DIR) + "/flow_store_test";
    std::filesystem::remove_all(dir);
    store::Store::setDirForTesting(dir);

    ChampSimTrace t = loopTrace(60);
    FlowOptions opts;
    opts.regionUops = 100;

    FlowResult cold = flow::analyzeTrace(t, opts);
    EXPECT_FALSE(cold.regionsFromStore);

    auto &metrics = obs::MetricsRegistry::global();
    std::uint64_t missesBefore = metrics.counterValue("store.misses");
    FlowResult warm = flow::analyzeTrace(t, opts);
    EXPECT_TRUE(warm.regionsFromStore);
    EXPECT_EQ(metrics.counterValue("store.misses"), missesBefore);
    EXPECT_EQ(warm.regions.bbvBits(), cold.regions.bbvBits());
    EXPECT_EQ(warm.regions.mavBits(), cold.regions.mavBits());

    store::Store::setDirForTesting("");
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace trb
