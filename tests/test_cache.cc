/**
 * @file
 * Tests for the cache substrate: tag-array behaviour under both
 * replacement policies, hierarchy latency composition, MSHR-style
 * in-flight merging, and the data prefetchers.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "cache/prefetcher.hh"

namespace trb
{
namespace
{

CacheParams
tiny(const char *name, std::size_t bytes, unsigned ways,
     ReplPolicy policy = ReplPolicy::Lru)
{
    CacheParams p;
    p.name = name;
    p.sizeBytes = bytes;
    p.ways = ways;
    p.policy = policy;
    return p;
}

TEST(Cache, HitAfterInsert)
{
    Cache c(tiny("t", 4096, 4));
    Addr victim = 0;
    EXPECT_FALSE(c.access(0x1000, false));
    c.insert(0x1000, false, false, victim);
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x103f, false));   // same line
    EXPECT_FALSE(c.access(0x1040, false));  // next line
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_EQ(c.accesses(), 4u);
}

TEST(Cache, LruEviction)
{
    // 4 sets x 2 ways; lines mapping to set 0 stride by 4*64.
    Cache c(tiny("t", 8 * 64, 2));
    ASSERT_EQ(c.numSets(), 4u);
    Addr stride = 4 * 64;
    Addr victim = 0;
    c.insert(0x0, false, false, victim);
    c.insert(stride, false, false, victim);
    EXPECT_TRUE(c.access(0x0, false));      // refresh line 0
    c.insert(2 * stride, false, false, victim);
    EXPECT_EQ(victim, stride);              // LRU was the middle one
    EXPECT_TRUE(c.probe(0x0));
    EXPECT_FALSE(c.probe(stride));
}

TEST(Cache, DirtyWritebackSignalled)
{
    Cache c(tiny("t", 2 * 64, 1));
    Addr victim = 0;
    c.insert(0x0, true, false, victim);     // dirty line, set 0
    bool wb = c.insert(2 * 64, false, false, victim);   // same set
    EXPECT_TRUE(wb);
    EXPECT_EQ(victim, 0u);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, WriteMarksDirty)
{
    Cache c(tiny("t", 2 * 64, 1));
    Addr victim = 0;
    c.insert(0x0, false, false, victim);
    EXPECT_TRUE(c.access(0x0, true));       // write hit dirties the line
    EXPECT_TRUE(c.insert(2 * 64, false, false, victim));
}

TEST(Cache, SrripPrefetchInsertedDistant)
{
    // SRRIP: prefetched lines insert at distant RRPV and get evicted
    // before demand lines that have been reused.
    Cache c(tiny("t", 4 * 64, 4, ReplPolicy::Srrip));
    Addr victim = 0;
    c.insert(0 * 4 * 64, false, false, victim);
    c.access(0, false);                     // promote to RRPV 0
    c.insert(1 * 4 * 64, false, true, victim);   // prefetch: RRPV 3
    c.insert(2 * 4 * 64, false, false, victim);
    c.insert(3 * 4 * 64, false, false, victim);
    c.insert(4 * 4 * 64, false, false, victim);  // needs a victim
    EXPECT_EQ(victim, 1u * 4 * 64);         // the prefetched line goes
    EXPECT_TRUE(c.probe(0));
}

TEST(Cache, InvalidateReportsDirty)
{
    Cache c(tiny("t", 4096, 4));
    Addr victim = 0;
    c.insert(0x1000, true, false, victim);
    EXPECT_TRUE(c.invalidate(0x1000));
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_FALSE(c.invalidate(0x1000));
}

// ---------------------------------------------------------------------

HierarchyParams
smallHierarchy()
{
    HierarchyParams p;
    p.l1i = tiny("L1I", 4 * 1024, 4);
    p.l1i.latency = 4;
    p.l1d = tiny("L1D", 4 * 1024, 4);
    p.l1d.latency = 5;
    p.l2 = tiny("L2", 32 * 1024, 8);
    p.l2.latency = 10;
    p.llc = tiny("LLC", 256 * 1024, 16);
    p.llc.latency = 24;
    p.dramLatency = 180;
    p.l1dIpStride = false;
    p.l2NextLine = false;
    return p;
}

TEST(Hierarchy, LatencyComposition)
{
    MemoryHierarchy mh(smallHierarchy());
    // Cold: DRAM.
    auto r1 = mh.access(AccessKind::Load, 0x100000, 0x400000, 0);
    EXPECT_EQ(r1.latency, 5u + 10 + 24 + 180);
    EXPECT_EQ(r1.level, 4u);
    // Warm L1.
    auto r2 = mh.access(AccessKind::Load, 0x100000, 0x400000, 1000);
    EXPECT_EQ(r2.latency, 5u);
    EXPECT_EQ(r2.level, 1u);
    EXPECT_EQ(mh.l1dMisses(), 1u);
    EXPECT_EQ(mh.l2Misses(), 1u);
    EXPECT_EQ(mh.llcMisses(), 1u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    auto p = smallHierarchy();
    MemoryHierarchy mh(p);
    // Fill well past L1D capacity (4KB = 64 lines) but within L2.
    for (Addr a = 0; a < 256; ++a)
        mh.access(AccessKind::Load, 0x200000 + a * 64, 0x400000,
                  a * 1000);
    // The first line fell out of L1D but sits in L2.
    auto r = mh.access(AccessKind::Load, 0x200000, 0x400000, 10000000);
    EXPECT_EQ(r.latency, 5u + 10);
    EXPECT_EQ(r.level, 2u);
}

TEST(Hierarchy, InflightMergePaysRemainingLatency)
{
    MemoryHierarchy mh(smallHierarchy());
    auto r1 = mh.access(AccessKind::Load, 0x300000, 0x400000, 100);
    ASSERT_GT(r1.latency, 100u);
    // A second access 50 cycles later merges with the outstanding fill.
    auto r2 = mh.access(AccessKind::Load, 0x300040 - 64, 0x400004, 150);
    EXPECT_EQ(r2.latency, 5u + (100 + (r1.latency - 5) - 150));
    // Long after completion: plain hit.
    auto r3 = mh.access(AccessKind::Load, 0x300000, 0x400000, 100000);
    EXPECT_EQ(r3.latency, 5u);
}

TEST(Hierarchy, InstrAndDataPathsSeparate)
{
    MemoryHierarchy mh(smallHierarchy());
    mh.access(AccessKind::Instr, 0x400000, 0, 0);
    EXPECT_EQ(mh.l1iMisses(), 1u);
    EXPECT_EQ(mh.l1dMisses(), 0u);
    auto r = mh.access(AccessKind::Instr, 0x400000, 0, 100000);
    EXPECT_EQ(r.latency, 4u);
    // The same line as data: L1D misses but L2 has it.
    auto rd = mh.access(AccessKind::Load, 0x400000, 0x1234, 200000);
    EXPECT_EQ(rd.latency, 5u + 10);
}

TEST(Hierarchy, InstrPrefetchHidesLatency)
{
    MemoryHierarchy mh(smallHierarchy());
    EXPECT_TRUE(mh.prefetchInstr(0x500000, 0));
    EXPECT_FALSE(mh.prefetchInstr(0x500000, 1));   // already in flight
    // Early demand: still pays the remaining fill time.
    auto r_early = mh.access(AccessKind::Instr, 0x500000, 0, 10);
    EXPECT_LT(r_early.latency, 4u + 10 + 24 + 180);
    // After the fill completes the line is a plain hit.
    auto r = mh.access(AccessKind::Instr, 0x500040 - 64, 0, 100000);
    EXPECT_EQ(r.latency, 4u);
    EXPECT_EQ(mh.l1iMisses(), 1u);   // the early demand still missed tags
}

TEST(Hierarchy, ProbeL1IRespectsInflight)
{
    MemoryHierarchy mh(smallHierarchy());
    EXPECT_FALSE(mh.probeL1I(0x600000, 0));
    mh.prefetchInstr(0x600000, 0);
    EXPECT_FALSE(mh.probeL1I(0x600000, 1));        // still in flight
    EXPECT_TRUE(mh.probeL1I(0x600000, 100000));    // fill done
}

TEST(Hierarchy, IpStridePrefetcherCutsMisses)
{
    auto base_params = smallHierarchy();
    MemoryHierarchy plain(base_params);
    auto pf_params = smallHierarchy();
    pf_params.l1dIpStride = true;
    MemoryHierarchy pf(pf_params);

    // One load instruction striding by 64B through 4 MiB.
    Cycle now = 0;
    for (Addr i = 0; i < 4096; ++i) {
        plain.access(AccessKind::Load, 0x1000000 + i * 64, 0x400100, now);
        pf.access(AccessKind::Load, 0x1000000 + i * 64, 0x400100, now);
        now += 300;   // far enough apart for fills to land
    }
    EXPECT_GT(pf.prefetchesIssued(), 1000u);
    EXPECT_LT(pf.l1dMisses(), plain.l1dMisses() / 4);
}

TEST(Hierarchy, NextLineHelpsSequentialInstrFootprint)
{
    auto base_params = smallHierarchy();
    MemoryHierarchy plain(base_params);
    auto pf_params = smallHierarchy();
    pf_params.l2NextLine = true;
    MemoryHierarchy pf(pf_params);

    // Loads marching sequentially through memory: next-line at L2 turns
    // most L2 misses into L2 hits.
    Cycle now = 0;
    for (Addr i = 0; i < 4096; ++i) {
        plain.access(AccessKind::Load, 0x2000000 + i * 64, 0x400200, now);
        pf.access(AccessKind::Load, 0x2000000 + i * 64, 0x400200, now);
        now += 300;
    }
    EXPECT_LT(pf.l2Misses(), plain.l2Misses() / 2);
}

TEST(Hierarchy, ReportContainsAllCounters)
{
    MemoryHierarchy mh(smallHierarchy());
    mh.access(AccessKind::Load, 0x1000, 0x400000, 0);
    StatSet stats;
    mh.report(stats);
    EXPECT_EQ(stats.get("l1d.accesses"), 1u);
    EXPECT_EQ(stats.get("l1d.misses"), 1u);
    EXPECT_EQ(stats.get("l2.misses"), 1u);
    EXPECT_EQ(stats.get("llc.misses"), 1u);
}

TEST(IpStride, DetectsStrideAfterConfidence)
{
    IpStridePrefetcher pf(2);
    std::vector<Addr> out;
    for (int i = 0; i < 3; ++i) {
        out.clear();
        pf.observe(0x400100, 0x1000 + i * 256, false, out);
    }
    EXPECT_TRUE(out.empty());   // confidence still building
    out.clear();
    pf.observe(0x400100, 0x1000 + 3 * 256, false, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], lineAddr(0x1000 + 4 * 256));
    EXPECT_EQ(out[1], lineAddr(0x1000 + 5 * 256));
}

TEST(IpStride, NoPrefetchOnRandom)
{
    IpStridePrefetcher pf(2);
    std::vector<Addr> out;
    Addr addrs[] = {0x1000, 0x9000, 0x3000, 0xf000, 0x2000, 0xb000};
    for (Addr a : addrs)
        pf.observe(0x400100, a, false, out);
    EXPECT_TRUE(out.empty());
}

TEST(NextLine, AlwaysNextLine)
{
    NextLinePrefetcher pf;
    std::vector<Addr> out;
    pf.observe(0, 0x1234, true, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], lineAddr(0x1234) + 64);
}

} // namespace
} // namespace trb
