/**
 * @file
 * Integration tests: the experiment harness plumbing, and -- most
 * importantly -- the paper's headline directional results on a reduced
 * suite.  These are the assertions that would catch a regression that
 * flipped the sign of an improvement.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>

#include "experiments/experiment.hh"
#include "synth/generator.hh"
#include "synth/suites.hh"

namespace trb
{
namespace
{

/** A reduced public suite: every 9th trace, short, for test runtime. */
std::vector<TraceSpec>
reducedSuite(std::uint64_t length)
{
    auto full = cvp1PublicSuite(length);
    std::vector<TraceSpec> out;
    for (std::size_t i = 0; i < full.size(); i += 9)
        out.push_back(full[i]);
    return out;
}

TEST(Harness, FigureOneSetsCoverTable1)
{
    const auto &sets = figureOneSets();
    ASSERT_EQ(sets.size(), 9u);
    EXPECT_EQ(sets[0].set, kImpMemRegs);
    EXPECT_EQ(sets.back().set, kAllImps);
    // The groups are the unions of their members.
    EXPECT_EQ(kMemoryImps,
              kImpMemRegs | kImpBaseUpdate | kImpMemFootprint);
    EXPECT_EQ(kBranchImps, kImpCallStack | kImpBranchRegs | kImpFlagReg);
    EXPECT_EQ(kAllImps, kMemoryImps | kBranchImps);
    EXPECT_EQ(kIpc1Imps, kAllImps & ~kImpMemFootprint);
}

TEST(Harness, ForEachTraceHonoursScale)
{
    auto suite = reducedSuite(2000);
    setenv("TRB_SUITE_SCALE", "0.5", 1);
    // Atomic: the harness may invoke the callback from several
    // workers when TRB_JOBS > 1.
    std::atomic<std::size_t> seen{0};
    forEachTrace(suite, [&](std::size_t i, const TraceSpec &spec,
                            const CvpTrace &t) {
        EXPECT_EQ(spec.name, suite[i].name);
        EXPECT_EQ(t.size(), 2000u);
        ++seen;
    });
    unsetenv("TRB_SUITE_SCALE");
    EXPECT_EQ(seen, (suite.size() + 1) / 2);
}

TEST(Harness, DeltaSeriesMath)
{
    DeltaSeries s;
    s.ratio = {1.10, 0.90, 1.02};
    EXPECT_NEAR(s.geomeanDeltaPercent(),
                100.0 * (std::cbrt(1.10 * 0.90 * 1.02) - 1.0), 1e-9);
    EXPECT_EQ(s.countAbove(5.0), 2u);
    EXPECT_EQ(s.countAbove(15.0), 0u);
}

TEST(Harness, WritebackLoadFraction)
{
    CvpTrace t;
    CvpRecord wb;
    wb.cls = InstClass::Load;
    wb.ea = 0x1000;
    wb.accessSize = 8;
    wb.addSrc(0);
    wb.addDst(0, 0x1000);   // pre-index
    wb.addDst(1, 0xdead);
    CvpRecord plain;
    plain.cls = InstClass::Load;
    plain.ea = 0x2000;
    plain.accessSize = 8;
    plain.addSrc(0);
    plain.addDst(1, 0xbeef);
    CvpRecord alu;
    alu.cls = InstClass::Alu;
    alu.addDst(2, 1);
    t = {wb, plain, alu, alu};
    EXPECT_DOUBLE_EQ(writebackLoadFraction(t), 0.25);
}

/**
 * The paper's Figure 1 signs, on a 15-trace sub-suite.  Thresholds are
 * loose -- the point is the direction, not the calibration.
 */
TEST(PaperDirections, FigureOneSigns)
{
    auto suite = reducedSuite(30000);
    auto series = runImprovementSweep(suite, figureOneSets(),
                                      modernConfig());
    auto find = [&](const char *name) -> const DeltaSeries & {
        for (const auto &s : series)
            if (s.setName == name)
                return s;
        static DeltaSeries empty;
        return empty;
    };
    // Memory improvements help or are neutral.
    EXPECT_GT(find("base-update").geomeanDeltaPercent(), 0.5);
    EXPECT_NEAR(find("mem-regs").geomeanDeltaPercent(), 0.0, 1.0);
    EXPECT_NEAR(find("mem-footprint").geomeanDeltaPercent(), 0.0, 2.0);
    // Branch dependency restoration costs IPC.
    EXPECT_LT(find("flag-reg").geomeanDeltaPercent(), -1.0);
    EXPECT_LT(find("branch-regs").geomeanDeltaPercent(), -0.5);
    EXPECT_GE(find("call-stack").geomeanDeltaPercent(), 0.0);
    // Groups follow their members.
    EXPECT_GT(find("Memory").geomeanDeltaPercent(), 0.0);
    EXPECT_LT(find("Branch").geomeanDeltaPercent(), -1.0);
}

TEST(PaperDirections, CallStackFixesReturnMpkiOnBlrTraces)
{
    // srv_3 is a BLR-X30 trace by construction.
    auto full = cvp1PublicSuite(40000);
    const TraceSpec *spec = nullptr;
    for (const auto &s : full)
        if (s.name == "srv_3")
            spec = &s;
    ASSERT_NE(spec, nullptr);
    ASSERT_GT(spec->params.blrX30Frac, 0.0);

    TraceGenerator gen(spec->params);
    CvpTrace cvp = gen.generate(spec->length);
    SimStats orig = simulate(cvp, {.imps = kImpNone}).stats;
    SimStats fixed = simulate(cvp, {.imps = kImpCallStack}).stats;
    EXPECT_GT(orig.returnMpki(), 5.0);
    EXPECT_LT(fixed.returnMpki(), orig.returnMpki() / 10.0);
    EXPECT_GT(fixed.ipc(), orig.ipc());
}

TEST(PaperDirections, BaseUpdateShrinksMpkisViaInflation)
{
    // The paper's Section 4.3 side effect: splitting inflates the
    // instruction count, so per-kilo-instruction rates drop slightly.
    auto suite = reducedSuite(30000);
    std::atomic<std::size_t> checked{0};
    forEachTrace(suite, [&](std::size_t, const TraceSpec &,
                            const CvpTrace &cvp) {
        Cvp2ChampSim conv(kImpBaseUpdate);
        ChampSimTrace out = conv.convert(cvp);
        EXPECT_GE(out.size(), cvp.size());
        ++checked;
    });
    EXPECT_GT(checked, 10u);
}

} // namespace
} // namespace trb
