/**
 * @file
 * Tests for trb::store and the SimRequest store integration: key and
 * digest stability across Store instances, artifact round-trips,
 * quarantine of damaged artifacts (including TRB_FAULT-injected damage),
 * LRU eviction, and the headline contract -- simulate() results are
 * bit-identical whether the store is cold, warm, or disabled.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "convert/improvements.hh"
#include "obs/metrics.hh"
#include "resil/fault.hh"
#include "sim/simulator.hh"
#include "store/digest.hh"
#include "store/store.hh"
#include "synth/generator.hh"

namespace fs = std::filesystem;

namespace trb
{
namespace
{

std::uint64_t
counter(const char *path)
{
    return obs::MetricsRegistry::global().counterValue(path);
}

/** A fresh store directory under the build tree, wiped per test. */
class StoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::string(TRB_BUILD_DIR) + "/store_test/" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        store::Store::setDirForTesting("");
        resil::FaultInjector::global().disable();
        fs::remove_all(dir_);
    }

    std::string dir_;
};

ChampSimTrace
makeTrace(std::size_t n, std::uint64_t seed)
{
    ChampSimTrace trace(n);
    std::uint64_t x = seed;
    for (std::size_t i = 0; i < n; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        trace[i].ip = 0x400000 + 4 * i;
        trace[i].isBranch = (x >> 60) == 0;
        trace[i].srcRegs[0] = static_cast<std::uint8_t>(1 + (x % 30));
        trace[i].srcMem[0] = (x >> 8) & ~std::uint64_t{7};
    }
    return trace;
}

TEST(StoreDigest, StableAcrossCallsAndChunkings)
{
    const std::string text = "the digest is an on-disk format";
    store::Digest one = store::digestString(text);
    EXPECT_EQ(one, store::digestString(text));

    store::Hasher h;
    h.update(text.data(), 5);
    h.update(text.data() + 5, 3);
    h.update(text.data() + 8, text.size() - 8);
    EXPECT_EQ(h.finish(), one) << "chunking must not change the digest";

    EXPECT_NE(one, store::digestString(text + "."));
    EXPECT_NE(one, store::digestString(text, /*seed=*/1));
    EXPECT_EQ(one.hex().size(), 32u);
}

TEST(StoreDigest, PinnedGoldenValue)
{
    // The digest addresses artifacts on disk: if this value moves, every
    // existing store silently misses.  Bump kStoreFormatVersion (and
    // this constant) when changing the hash on purpose.
    EXPECT_EQ(store::digestString("trb-store-golden").hex(),
              "f62a14b08300ae0e72a63b473d4c23d4");
}

TEST_F(StoreTest, TraceRoundTripAcrossInstances)
{
    ChampSimTrace trace = makeTrace(1000, 7);
    const std::string key = "trace;conv=1;imps=0x0;cvp=deadbeef";

    std::uint64_t hits = counter("store.hits");
    std::uint64_t misses = counter("store.misses");
    {
        store::Store writer(dir_);
        store::TraceHandle h;
        EXPECT_FALSE(writer.loadTrace(key, h));
        writer.putTrace(key, trace);
    }
    EXPECT_EQ(counter("store.misses"), misses + 1);

    // A second instance (a stand-in for a second process) must serve
    // the identical records back.
    store::Store reader(dir_);
    store::TraceHandle h;
    ASSERT_TRUE(reader.loadTrace(key, h));
    EXPECT_EQ(counter("store.hits"), hits + 1);
    ASSERT_EQ(h.view().size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        ASSERT_EQ(h.view()[i], trace[i]) << "record " << i;
}

TEST_F(StoreTest, BitsRoundTrip)
{
    std::vector<std::uint64_t> bits = {0, 1, ~std::uint64_t{0},
                                       0x123456789abcdef0ULL};
    store::Store st(dir_);
    st.putBits("stats;sim=1;src=x", bits);
    std::vector<std::uint64_t> back;
    ASSERT_TRUE(st.loadBits("stats;sim=1;src=x", back));
    EXPECT_EQ(back, bits);
    EXPECT_FALSE(st.loadBits("stats;sim=1;src=y", back));
}

TEST_F(StoreTest, KeysMapToStablePaths)
{
    store::Store a(dir_);
    store::Store b(dir_);
    const std::string key = "stats;sim=1;src=whatever";
    EXPECT_EQ(a.artifactPath(store::kStatsArtifact, key),
              b.artifactPath(store::kStatsArtifact, key));
    EXPECT_NE(a.artifactPath(store::kStatsArtifact, key),
              a.artifactPath(store::kTraceArtifact, key));
    EXPECT_NE(a.artifactPath(store::kStatsArtifact, key),
              a.artifactPath(store::kStatsArtifact, key + "!"));
}

TEST_F(StoreTest, CorruptPayloadIsQuarantined)
{
    store::Store st(dir_);
    ChampSimTrace trace = makeTrace(256, 3);
    const std::string key = "trace;conv=1;imps=0x1;cvp=feed";
    st.putTrace(key, trace);

    // Flip one payload byte behind the store's back.
    std::string path = st.artifactPath(store::kTraceArtifact, key);
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(128);
        char c = 0;
        f.seekg(128);
        f.get(c);
        f.seekp(128);
        f.put(static_cast<char>(c ^ 0x40));
    }

    std::uint64_t quarantined = counter("store.quarantined");
    store::TraceHandle h;
    EXPECT_FALSE(st.loadTrace(key, h));
    EXPECT_EQ(counter("store.quarantined"), quarantined + 1);
    EXPECT_FALSE(fs::exists(path)) << "damaged artifact left in place";
    EXPECT_TRUE(fs::exists(path + ".bad"));

    // The slot is reusable after quarantine.
    st.putTrace(key, trace);
    EXPECT_TRUE(st.loadTrace(key, h));
}

TEST_F(StoreTest, TruncatedArtifactIsQuarantined)
{
    store::Store st(dir_);
    st.putBits("k", {1, 2, 3, 4});
    std::string path = st.artifactPath(store::kStatsArtifact, "k");
    fs::resize_file(path, fs::file_size(path) - 8);
    std::vector<std::uint64_t> back;
    EXPECT_FALSE(st.loadBits("k", back));
    EXPECT_TRUE(fs::exists(path + ".bad"));
}

TEST_F(StoreTest, MisfiledArtifactIsQuarantined)
{
    // An artifact renamed under another key's path carries the wrong
    // embedded key: that is corruption, not a hit.
    store::Store st(dir_);
    st.putBits("key-one", {42});
    fs::rename(st.artifactPath(store::kStatsArtifact, "key-one"),
               st.artifactPath(store::kStatsArtifact, "key-two"));
    std::vector<std::uint64_t> back;
    EXPECT_FALSE(st.loadBits("key-two", back));
    EXPECT_TRUE(fs::exists(
        st.artifactPath(store::kStatsArtifact, "key-two") + ".bad"));
}

TEST_F(StoreTest, FaultInjectionDamageIsCaught)
{
    store::Store st(dir_);
    ChampSimTrace trace = makeTrace(512, 11);
    st.putTrace("k", trace);

    // Afflict every stream with bit flips: the store's load path must
    // route through the injector and catch the damage via the digest.
    resil::FaultSpec spec;
    spec.rate[static_cast<unsigned>(resil::FaultKind::BitFlip)] = 1.0;
    resil::FaultInjector::global().configure(spec, /*seed=*/1234);

    store::TraceHandle h;
    EXPECT_FALSE(st.loadTrace("k", h));

    resil::FaultInjector::global().disable();
    // The artifact was quarantined; a clean rerun repopulates.
    st.putTrace("k", trace);
    EXPECT_TRUE(st.loadTrace("k", h));
}

TEST_F(StoreTest, GcEvictsLeastRecentlyUsedFirst)
{
    store::Store st(dir_);
    st.putBits("old", std::vector<std::uint64_t>(64, 1));
    st.putBits("mid", std::vector<std::uint64_t>(64, 2));
    st.putBits("new", std::vector<std::uint64_t>(64, 3));

    auto age = [&](const char *key, int hours) {
        fs::last_write_time(
            st.artifactPath(store::kStatsArtifact, key),
            fs::file_time_type::clock::now() -
                std::chrono::hours(hours));
    };
    age("old", 3);
    age("mid", 2);
    age("new", 1);

    // A stale temporary and a quarantined file must always be removed.
    { std::ofstream(dir_ + "/.tmp-1234-0") << "half-written"; }
    { std::ofstream(dir_ + "/tr-junk.trb.bad") << "quarantined"; }

    auto one = fs::file_size(st.artifactPath(store::kStatsArtifact,
                                             "old"));
    store::Store::GcResult gc = st.gc(2 * one);
    EXPECT_EQ(gc.scanned, 3u);
    EXPECT_EQ(gc.totalBytes, 3 * one);
    EXPECT_EQ(gc.evicted, 1u);
    EXPECT_EQ(gc.evictedBytes, one);

    std::vector<std::uint64_t> back;
    EXPECT_FALSE(st.loadBits("old", back)) << "oldest must go first";
    EXPECT_TRUE(st.loadBits("mid", back));
    EXPECT_TRUE(st.loadBits("new", back));
    EXPECT_FALSE(fs::exists(dir_ + "/.tmp-1234-0"));
    EXPECT_FALSE(fs::exists(dir_ + "/tr-junk.trb.bad"));
}

TEST_F(StoreTest, LoadRefreshesEvictionRank)
{
    store::Store st(dir_);
    st.putBits("a", std::vector<std::uint64_t>(64, 1));
    st.putBits("b", std::vector<std::uint64_t>(64, 2));
    for (const char *key : {"a", "b"})
        fs::last_write_time(
            st.artifactPath(store::kStatsArtifact, key),
            fs::file_time_type::clock::now() - std::chrono::hours(2));

    std::vector<std::uint64_t> back;
    ASSERT_TRUE(st.loadBits("a", back));   // touches a's mtime

    auto one = fs::file_size(st.artifactPath(store::kStatsArtifact,
                                             "a"));
    st.gc(one);
    EXPECT_TRUE(st.loadBits("a", back)) << "recently used must survive";
    EXPECT_FALSE(st.loadBits("b", back));
}

TEST_F(StoreTest, VerifyFlagsAndQuarantinesDamage)
{
    store::Store st(dir_);
    st.putBits("good", {1, 2});
    st.putBits("bad", {3, 4});
    std::string path = st.artifactPath(store::kStatsArtifact, "bad");
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(-1, std::ios::end);
        f.put('\x7f');
    }
    store::Store::VerifyResult v = st.verify();
    EXPECT_EQ(v.checked, 2u);
    EXPECT_EQ(v.ok, 1u);
    ASSERT_EQ(v.bad.size(), 1u);
    EXPECT_FALSE(v.bad[0].status.ok());
    EXPECT_TRUE(fs::exists(path + ".bad"));

    store::Store::VerifyResult clean = st.verify();
    EXPECT_EQ(clean.checked, 1u);
    EXPECT_EQ(clean.ok, 1u);
}

TEST_F(StoreTest, ListReportsKindsAndKeys)
{
    store::Store st(dir_);
    st.putTrace("tkey", makeTrace(16, 1));
    st.putBits("skey", {9});
    std::vector<store::ArtifactInfo> all = st.list();
    ASSERT_EQ(all.size(), 2u);
    bool saw_trace = false, saw_stats = false;
    for (const store::ArtifactInfo &info : all) {
        EXPECT_TRUE(info.status.ok());
        if (info.kind == store::kTraceArtifact) {
            saw_trace = true;
            EXPECT_EQ(info.key, "tkey");
        } else if (info.kind == store::kStatsArtifact) {
            saw_stats = true;
            EXPECT_EQ(info.key, "skey");
        }
    }
    EXPECT_TRUE(saw_trace);
    EXPECT_TRUE(saw_stats);
}

/** The headline contract: cold, warm and disabled runs are identical. */
TEST_F(StoreTest, SimulateBitIdenticalColdWarmDisabled)
{
    CvpTrace cvp = TraceGenerator(serverParams(21)).generate(6000);

    store::Store::setDirForTesting("");
    SimResult off = simulate(cvp, {.imps = kAllImps});
    EXPECT_FALSE(off.traceFromStore);
    EXPECT_FALSE(off.statsFromStore);

    store::Store::setDirForTesting(dir_);
    SimResult cold = simulate(cvp, {.imps = kAllImps});
    EXPECT_FALSE(cold.traceFromStore);
    EXPECT_FALSE(cold.statsFromStore);

    SimResult warm = simulate(cvp, {.imps = kAllImps});
    EXPECT_FALSE(warm.traceFromStore) << "stats hit short-circuits";
    EXPECT_TRUE(warm.statsFromStore);

    EXPECT_EQ(off.stats.toBits(), cold.stats.toBits());
    EXPECT_EQ(off.stats.toBits(), warm.stats.toBits());

    // A different warm-up reuses the converted trace but not the stats.
    SimResult trace_hit =
        simulate(cvp, {.imps = kAllImps, .warmupFraction = 0.5});
    EXPECT_TRUE(trace_hit.traceFromStore);
    EXPECT_FALSE(trace_hit.statsFromStore);
    SimResult trace_hit_warm =
        simulate(cvp, {.imps = kAllImps, .warmupFraction = 0.5});
    EXPECT_TRUE(trace_hit_warm.statsFromStore);
    EXPECT_EQ(trace_hit.stats.toBits(), trace_hit_warm.stats.toBits());

    // useStore=false bypasses the (warm) store and still agrees.
    SimResult bypass = simulate(cvp, {.imps = kAllImps,
                                      .useStore = false});
    EXPECT_FALSE(bypass.statsFromStore);
    EXPECT_EQ(bypass.stats.toBits(), warm.stats.toBits());
}

TEST_F(StoreTest, SimulateKeySeparatesConfigurations)
{
    CvpTrace cvp = TraceGenerator(serverParams(5)).generate(4000);
    store::Store::setDirForTesting(dir_);

    SimResult modern = simulate(cvp, {.imps = kImpNone});
    SimResult ipc1 = simulate(cvp, {.imps = kImpNone,
                                    .params = ipc1Config()});
    EXPECT_FALSE(ipc1.statsFromStore)
        << "different CoreParams must never share a result";
    EXPECT_NE(modern.stats.toBits(), ipc1.stats.toBits());

    SimResult other_imps = simulate(cvp, {.imps = kImpCallStack});
    EXPECT_FALSE(other_imps.statsFromStore);
    EXPECT_FALSE(other_imps.traceFromStore)
        << "different improvements convert differently";
}

TEST_F(StoreTest, SimulateCorruptStoreFallsBack)
{
    CvpTrace cvp = TraceGenerator(serverParams(9)).generate(4000);
    store::Store::setDirForTesting(dir_);
    SimResult cold = simulate(cvp, {.imps = kImpNone});

    // Damage every artifact in the store.
    for (const auto &entry : fs::directory_iterator(dir_)) {
        std::fstream f(entry.path(),
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(70);
        f.put('\x55');
    }
    SimResult fallback = simulate(cvp, {.imps = kImpNone});
    EXPECT_FALSE(fallback.statsFromStore);
    EXPECT_EQ(cold.stats.toBits(), fallback.stats.toBits());

    // The quarantine repopulated the store; now it hits again.
    SimResult warm = simulate(cvp, {.imps = kImpNone});
    EXPECT_TRUE(warm.statsFromStore);
}

// The deprecated wrappers stay pinned here until removal: they must
// forward exactly.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST_F(StoreTest, DeprecatedWrappersForward)
{
    store::Store::setDirForTesting("");
    CvpTrace cvp = TraceGenerator(serverParams(2)).generate(3000);
    SimStats via_wrapper = simulateCvp(cvp, kImpNone, modernConfig());
    SimStats via_request = simulate(cvp, {.imps = kImpNone}).stats;
    EXPECT_EQ(via_wrapper.toBits(), via_request.toBits());

    ChampSimTrace trace = Cvp2ChampSim(kImpNone).convert(cvp);
    SimStats cs_wrapper = simulateChampSim(trace, modernConfig(), 0.25);
    SimStats cs_request = simulate(ChampSimView(trace),
                                   {.warmupFraction = 0.25})
                              .stats;
    EXPECT_EQ(cs_wrapper.toBits(), cs_request.toBits());
}
#pragma GCC diagnostic pop

} // namespace
} // namespace trb
