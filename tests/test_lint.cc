/**
 * @file
 * Tests for trb::lint: every rule is tripped exactly once by a hand-built
 * adversarial unit (golden diagnostics), fully improved conversions of
 * whole synthetic traces are clean, and disabling any single converter
 * improvement trips the rule that encodes it.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "convert/cvp2champsim.hh"
#include "lint/lint.hh"
#include "synth/generator.hh"
#include "synth/suites.hh"

namespace trb
{
namespace
{

using lint::LintOptions;
using lint::LintReport;
using lint::Severity;

// ---------------------------------------------------------------------
// CVP-1 record factories (the paper's running examples).

/** LDR X1, [X0, #12]! -- pre-index writeback load. */
CvpRecord
ldrPreIndex(Addr pc = 0x1000, Addr base = 0x8000)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::Load;
    rec.ea = base + 12;
    rec.accessSize = 8;
    rec.addSrc(0);
    rec.addDst(0, base + 12);
    rec.addDst(1, 0xdeadbeef);
    return rec;
}

/** LDP X1, X2, [X0] -- load pair, no writeback. */
CvpRecord
ldpNoWb(Addr pc = 0x1000, Addr base = 0x8000)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::Load;
    rec.ea = base;
    rec.accessSize = 8;
    rec.addSrc(0);
    rec.addDst(1, 0x1111);
    rec.addDst(2, 0x2222);
    return rec;
}

/** PRFM [X0] -- prefetch load, no destination register. */
CvpRecord
prefetchLoad(Addr pc = 0x1000)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::Load;
    rec.ea = 0x9000;
    rec.accessSize = 8;
    rec.addSrc(0);
    return rec;
}

/** CMP X1, X2 -- ALU with no destination (sets flags). */
CvpRecord
cmpRecord(Addr pc = 0x1000)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::Alu;
    rec.addSrc(1);
    rec.addSrc(2);
    return rec;
}

/** Plain ALU: ADD X3, X1, X2. */
CvpRecord
aluRecord(Addr pc, RegId dst, RegId s0, RegId s1)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::Alu;
    rec.addSrc(s0);
    rec.addSrc(s1);
    rec.addDst(dst, 0x42);
    return rec;
}

/** CBZ X5, target. */
CvpRecord
cbzRecord(Addr pc = 0x1000, bool taken = false)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::CondBranch;
    rec.taken = taken;
    rec.target = 0x2000;
    rec.addSrc(5);
    return rec;
}

/** BLR X30 -- indirect call through the link register. */
CvpRecord
blrX30(Addr pc = 0x1000)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::UncondIndirectBranch;
    rec.taken = true;
    rec.target = 0x3000;
    rec.addSrc(aarch64::kLinkReg);
    rec.addDst(aarch64::kLinkReg, pc + 4);
    return rec;
}

/** RET -- reads X30, writes nothing. */
CvpRecord
retRecord(Addr pc = 0x1000, Addr target = 0x4000)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::UncondIndirectBranch;
    rec.taken = true;
    rec.target = target;
    rec.addSrc(aarch64::kLinkReg);
    return rec;
}

/** Lint one CVP record against its conversion under @p imps. */
LintReport
lintOneWith(ImprovementSet imps, const CvpRecord &rec,
            const LintOptions &opts = {})
{
    Cvp2ChampSim conv(imps);
    ChampSimTrace out;
    conv.convertOne(rec, out);
    lint::Linter linter(opts);
    linter.add(rec, out.data(), static_cast<unsigned>(out.size()));
    return linter.finish();
}

/** The diagnostics a report stored for one rule. */
std::vector<lint::Diagnostic>
diagsFor(const LintReport &report, const std::string &rule)
{
    std::vector<lint::Diagnostic> out;
    for (const auto &d : report.diagnostics)
        if (d.rule == rule)
            out.push_back(d);
    return out;
}

// ---------------------------------------------------------------------
// Catalog sanity.

TEST(LintCatalog, RulesAreWellFormed)
{
    const auto &catalog = lint::ruleCatalog();
    EXPECT_GE(catalog.size(), 12u);
    for (const auto &info : catalog) {
        EXPECT_NE(info.id, nullptr);
        EXPECT_NE(lint::findRule(info.id), nullptr);
        EXPECT_STRNE(info.summary, "");
        EXPECT_STRNE(info.citation, "");
    }
    EXPECT_EQ(lint::findRule("no-such-rule"), nullptr);
}

TEST(LintCatalog, ResolveRulesRejectsUnknownIds)
{
    LintOptions opts;
    opts.disable = {"definitely-not-a-rule"};
    std::vector<std::string> resolved;
    std::string bad;
    EXPECT_FALSE(opts.resolveRules(resolved, bad));
    EXPECT_EQ(bad, "definitely-not-a-rule");

    opts.disable = {"flag-dest"};
    ASSERT_TRUE(opts.resolveRules(resolved, bad));
    for (const auto &id : resolved)
        EXPECT_NE(id, "flag-dest");
}

// ---------------------------------------------------------------------
// R1 mem-dest-regs (paper 3.1.1).

TEST(LintRules, MemDestRegsCatchesInsertedX0)
{
    LintReport report = lintOneWith(kImpNone, prefetchLoad());
    auto diags = diagsFor(report, "mem-dest-regs");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].severity, Severity::Error);
    EXPECT_EQ(diags[0].pc, 0x1000u);
    EXPECT_NE(diags[0].message.find("X0 inserted"), std::string::npos);
    EXPECT_NE(diags[0].fixHint.find("imp_mem-regs"), std::string::npos);
}

TEST(LintRules, MemDestRegsCatchesDroppedDataRegister)
{
    // The original converter keeps only the first destination of LDP.
    LintReport report = lintOneWith(kImpNone, ldpNoWb());
    auto diags = diagsFor(report, "mem-dest-regs");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("dropped"), std::string::npos);
}

TEST(LintRules, MemDestRegsCleanWhenImproved)
{
    EXPECT_EQ(lintOneWith(kAllImps, prefetchLoad()).countFor("mem-dest-regs"),
              0u);
    EXPECT_EQ(lintOneWith(kAllImps, ldpNoWb()).countFor("mem-dest-regs"),
              0u);
}

// ---------------------------------------------------------------------
// R2 base-update-split (paper 3.1.2).

TEST(LintRules, BaseUpdateSplitCatchesUnsplitWriteback)
{
    LintReport report = lintOneWith(kImpNone, ldrPreIndex());
    auto diags = diagsFor(report, "base-update-split");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("not split"), std::string::npos);
    EXPECT_NE(diags[0].fixHint.find("imp_base-update"), std::string::npos);
}

TEST(LintRules, BaseUpdateSplitCatchesMisorderedSplit)
{
    // Convert correctly, then swap the two µops: pre-index must be
    // ALU-then-memory.
    CvpRecord rec = ldrPreIndex();
    Cvp2ChampSim conv(kAllImps);
    ChampSimTrace out;
    conv.convertOne(rec, out);
    ASSERT_EQ(out.size(), 2u);
    std::swap(out[0], out[1]);

    lint::Linter linter;
    linter.add(rec, out.data(), 2);
    LintReport report = linter.finish();
    ASSERT_EQ(report.countFor("base-update-split"), 1u);
    EXPECT_NE(diagsFor(report, "base-update-split")[0].message.find(
                  "mis-ordered"),
              std::string::npos);
}

TEST(LintRules, BaseUpdateSplitCleanWhenImproved)
{
    EXPECT_EQ(
        lintOneWith(kAllImps, ldrPreIndex()).countFor("base-update-split"),
        0u);
}

// ---------------------------------------------------------------------
// R3 mem-footprint (paper 3.1.3).

TEST(LintRules, MemFootprintCatchesMissingSecondLine)
{
    // 8-byte load at line offset 60: crosses into the next cacheline.
    CvpRecord rec;
    rec.pc = 0x1000;
    rec.cls = InstClass::Load;
    rec.ea = 0x803c;
    rec.accessSize = 8;
    rec.addSrc(0);
    rec.addDst(1, 0x1111);

    LintReport report = lintOneWith(kImpNone, rec);
    auto diags = diagsFor(report, "mem-footprint");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("crosses"), std::string::npos);
    EXPECT_EQ(lintOneWith(kAllImps, rec).countFor("mem-footprint"), 0u);
}

TEST(LintRules, MemFootprintCatchesUnalignedZva)
{
    // DC ZVA: a 64-byte store the original converter leaves unaligned.
    CvpRecord rec;
    rec.pc = 0x1000;
    rec.cls = InstClass::Store;
    rec.ea = 0x8010;
    rec.accessSize = 64;
    rec.addSrc(0);

    LintReport report = lintOneWith(kImpNone, rec);
    auto diags = diagsFor(report, "mem-footprint");
    ASSERT_GE(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("not cacheline-aligned"),
              std::string::npos);
    EXPECT_EQ(lintOneWith(kAllImps, rec).countFor("mem-footprint"), 0u);
}

// ---------------------------------------------------------------------
// R4 call-return-class (paper 3.2.1).

TEST(LintRules, CallReturnCatchesBlrX30AsReturn)
{
    LintReport report = lintOneWith(kImpNone, blrX30());
    auto diags = diagsFor(report, "call-return-class");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("IndirectCall"), std::string::npos);
    EXPECT_NE(diags[0].fixHint.find("imp_call-stack"), std::string::npos);
}

TEST(LintRules, CallReturnCleanWhenImproved)
{
    EXPECT_EQ(
        lintOneWith(kAllImps, blrX30()).countFor("call-return-class"), 0u);
    EXPECT_EQ(
        lintOneWith(kAllImps, retRecord()).countFor("call-return-class"),
        0u);
}

// ---------------------------------------------------------------------
// R5 branch-src-regs (paper 3.2.2).

TEST(LintRules, BranchSrcRegsCatchesFlagSubstitution)
{
    // The original converter replaces a conditional's GPR sources with
    // the flags register.
    LintReport report = lintOneWith(kImpNone, cbzRecord());
    auto diags = diagsFor(report, "branch-src-regs");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("flags register"), std::string::npos);
    EXPECT_EQ(
        lintOneWith(kAllImps, cbzRecord()).countFor("branch-src-regs"),
        0u);
}

TEST(LintRules, BranchSrcRegsCatchesX56Substitution)
{
    // BR X7: an indirect jump whose GPR source becomes the X56 scratch
    // register under the original converter.
    CvpRecord rec;
    rec.pc = 0x1000;
    rec.cls = InstClass::UncondIndirectBranch;
    rec.taken = true;
    rec.target = 0x3000;
    rec.addSrc(7);

    LintReport report = lintOneWith(kImpNone, rec);
    auto diags = diagsFor(report, "branch-src-regs");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("X56"), std::string::npos);
    EXPECT_EQ(lintOneWith(kAllImps, rec).countFor("branch-src-regs"), 0u);
}

// ---------------------------------------------------------------------
// R6 flag-dest (paper 3.2.3).

TEST(LintRules, FlagDestCatchesDanglingCompare)
{
    LintReport report = lintOneWith(kImpNone, cmpRecord());
    auto diags = diagsFor(report, "flag-dest");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("flag register"), std::string::npos);
    EXPECT_NE(diags[0].fixHint.find("imp_flag-regs"), std::string::npos);
    EXPECT_EQ(lintOneWith(kAllImps, cmpRecord()).countFor("flag-dest"), 0u);
}

// ---------------------------------------------------------------------
// Structural rules.

TEST(LintRules, TakenTargetCatchesDivergingSuccessor)
{
    Cvp2ChampSim conv(kAllImps);
    CvpRecord br = cbzRecord(0x1000, true);   // taken, target 0x2000
    CvpRecord next = aluRecord(0x3000, 3, 1, 2);
    ChampSimTrace a, b;
    conv.convertOne(br, a);
    conv.convertOne(next, b);

    lint::Linter linter;
    linter.add(br, a.data(), static_cast<unsigned>(a.size()));
    linter.add(next, b.data(), static_cast<unsigned>(b.size()));
    LintReport report = linter.finish();
    auto diags = diagsFor(report, "taken-target");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].pc, 0x1000u);
    EXPECT_NE(diags[0].message.find("0x2000"), std::string::npos);
}

TEST(LintRules, DefBeforeUseCatchesReadOfDroppedProducer)
{
    // LDP's second destination (X2 -> champsim 3) is dropped by the
    // original converter; a later ADD reading X2 witnesses the loss.
    Cvp2ChampSim conv(kImpNone);
    CvpRecord ldp = ldpNoWb(0x1000);
    CvpRecord add = aluRecord(0x1004, 3, 2, 1);
    ChampSimTrace a, b;
    conv.convertOne(ldp, a);
    conv.convertOne(add, b);

    LintOptions opts;
    opts.enable = {"def-before-use"};   // isolate from mem-dest-regs
    lint::Linter linter(opts);
    linter.add(ldp, a.data(), static_cast<unsigned>(a.size()));
    linter.add(add, b.data(), static_cast<unsigned>(b.size()));
    LintReport report = linter.finish();
    auto diags = diagsFor(report, "def-before-use");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("dropped"), std::string::npos);
}

TEST(LintRules, PcTeleportCatchesBackwardsFallthrough)
{
    ChampSimRecord a, b;
    a.ip = 0x1000;
    b.ip = 0x900;   // backwards with no taken branch in between

    lint::Linter linter;
    linter.add(a);
    linter.add(b);
    LintReport report = linter.finish();
    auto diags = diagsFor(report, "pc-teleport");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].severity, Severity::Warn);
    EXPECT_NE(diags[0].message.find("backwards"), std::string::npos);
}

TEST(LintRules, PcTeleportAllowsTakenBranchesAndSmallGaps)
{
    ChampSimRecord br;
    br.ip = 0x1000;
    br.isBranch = 1;
    br.branchTaken = 1;
    ChampSimRecord far;
    far.ip = 0x90000;
    ChampSimRecord near;
    near.ip = 0x90040;   // padded fall-through gap, well under the limit

    lint::Linter linter;
    linter.add(br);
    linter.add(far);
    linter.add(near);
    EXPECT_EQ(linter.finish().countFor("pc-teleport"), 0u);
}

TEST(LintRules, RasBalanceCatchesUnmatchedReturns)
{
    // More unmatched returns than the slack allows, no calls at all.
    lint::LintOptions opts;
    opts.enable = {"ras-balance"};
    opts.limits.rasSlack = 2;
    Cvp2ChampSim conv(kAllImps);
    lint::Linter linter(opts);
    for (unsigned i = 0; i < 4; ++i) {
        CvpRecord ret = retRecord(0x1000 + 4 * i, 0x2000);
        ChampSimTrace out;
        conv.convertOne(ret, out);
        linter.add(ret, out.data(), static_cast<unsigned>(out.size()));
    }
    LintReport report = linter.finish();
    auto diags = diagsFor(report, "ras-balance");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("no matching call"), std::string::npos);
}

TEST(LintRules, RasBalanceToleratesSlackAndBalancedStreams)
{
    lint::LintOptions opts;
    opts.limits.rasSlack = 4;
    Cvp2ChampSim conv(kAllImps);
    lint::Linter linter(opts);
    for (unsigned i = 0; i < 3; ++i) {
        CvpRecord ret = retRecord(0x1000 + 4 * i, 0x2000);
        ChampSimTrace out;
        conv.convertOne(ret, out);
        linter.add(ret, out.data(), static_cast<unsigned>(out.size()));
    }
    EXPECT_EQ(linter.finish().countFor("ras-balance"), 0u);
}

TEST(LintRules, BranchDeduceCatchesUndeducibleBranch)
{
    ChampSimRecord cs;
    cs.ip = 0x1000;
    cs.isBranch = 1;
    cs.branchTaken = 1;   // no IP destination: deduces NotBranch

    lint::Linter linter;
    linter.add(cs);
    LintReport report = linter.finish();
    auto diags = diagsFor(report, "branch-deduce");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("NotBranch"), std::string::npos);
}

TEST(LintRules, BranchDeduceCatchesNonBranchTouchingIp)
{
    ChampSimRecord cs;
    cs.ip = 0x1000;
    cs.addDstReg(champsim::kInstructionPointer);

    lint::Linter linter;
    linter.add(cs);
    EXPECT_EQ(linter.finish().countFor("branch-deduce"), 1u);
}

// ---------------------------------------------------------------------
// Alignment pseudo-rule.

TEST(LintAlign, ReportsTruncatedConversion)
{
    CvpTrace cvp = {aluRecord(0x1000, 3, 1, 2), aluRecord(0x1004, 4, 3, 1)};
    Cvp2ChampSim conv(kAllImps);
    ChampSimTrace cs;
    conv.convertOne(cvp[0], cs);   // second record never converted

    LintReport report = lint::lintConverted(cvp, cs);
    EXPECT_GE(report.countFor("align"), 1u);
    EXPECT_FALSE(report.clean());
}

TEST(LintAlign, ReportsOrphanUops)
{
    CvpTrace cvp = {aluRecord(0x1000, 3, 1, 2)};
    Cvp2ChampSim conv(kAllImps);
    ChampSimTrace cs;
    conv.convertOne(cvp[0], cs);
    ChampSimRecord orphan;
    orphan.ip = 0x5000;
    cs.push_back(orphan);

    LintReport report = lint::lintConverted(cvp, cs);
    EXPECT_EQ(report.countFor("align"), 1u);
}

// ---------------------------------------------------------------------
// Whole-trace properties: clean conversions are clean, and disabling any
// single improvement trips exactly the rule that encodes it.

CvpTrace
adversarialWorkload()
{
    WorkloadParams params = serverParams(7);
    params.baseUpdateFrac = 0.1;   // plenty of writeback accesses
    params.blrX30Frac = 0.4;       // and X30-read-write calls
    return TraceGenerator(params).generate(30000);
}

TEST(LintWholeTrace, FullyImprovedConversionIsClean)
{
    CvpTrace cvp = adversarialWorkload();
    ChampSimTrace cs = Cvp2ChampSim(kAllImps).convert(cvp);
    LintReport report = lint::lintConverted(cvp, cs);
    EXPECT_TRUE(report.clean())
        << "first rule: "
        << (report.counts.empty() ? "-" : report.counts[0].rule);
    EXPECT_EQ(report.unitsScanned, cvp.size());
    EXPECT_EQ(report.uopsScanned, cs.size());
    EXPECT_TRUE(report.paired);
}

TEST(LintWholeTrace, DisablingEachImprovementTripsItsRule)
{
    const struct
    {
        ImprovementSet imp;
        const char *rule;
    } cases[] = {
        {kImpMemRegs, "mem-dest-regs"},
        {kImpBaseUpdate, "base-update-split"},
        {kImpMemFootprint, "mem-footprint"},
        {kImpCallStack, "call-return-class"},
        {kImpBranchRegs, "branch-src-regs"},
        {kImpFlagReg, "flag-dest"},
    };

    CvpTrace cvp = adversarialWorkload();
    for (const auto &c : cases) {
        ChampSimTrace cs = Cvp2ChampSim(kAllImps & ~c.imp).convert(cvp);
        LintReport report = lint::lintConverted(cvp, cs);
        EXPECT_GT(report.countFor(c.rule), 0u)
            << "disabling " << c.rule << "'s improvement went undetected";
    }
}

TEST(LintWholeTrace, UnimprovedConversionTripsEveryPaperRule)
{
    CvpTrace cvp = adversarialWorkload();
    ChampSimTrace cs = Cvp2ChampSim(kImpNone).convert(cvp);
    LintReport report = lint::lintConverted(cvp, cs);
    for (const char *rule :
         {"mem-dest-regs", "base-update-split", "mem-footprint",
          "call-return-class", "branch-src-regs", "flag-dest"})
        EXPECT_GT(report.countFor(rule), 0u) << rule;
}

// ---------------------------------------------------------------------
// Options, caps and report shape.

TEST(LintOptionsTest, DisableSuppressesARule)
{
    LintOptions opts;
    opts.disable = {"flag-dest"};
    LintReport report = lintOneWith(kImpNone, cmpRecord(), opts);
    EXPECT_EQ(report.countFor("flag-dest"), 0u);
}

TEST(LintOptionsTest, EnableRestrictsToListedRules)
{
    LintOptions opts;
    opts.enable = {"flag-dest"};
    LintReport report = lintOneWith(kImpNone, prefetchLoad(), opts);
    EXPECT_EQ(report.countFor("mem-dest-regs"), 0u);
}

TEST(LintOptionsTest, DiagnosticCapKeepsFullCounts)
{
    LintOptions opts;
    opts.maxDiagnosticsPerRule = 1;
    Cvp2ChampSim conv(kImpNone);
    lint::Linter linter(opts);
    std::vector<std::pair<CvpRecord, ChampSimTrace>> units;
    for (unsigned i = 0; i < 3; ++i) {
        units.emplace_back(cmpRecord(0x1000 + 4 * i), ChampSimTrace{});
        conv.convertOne(units.back().first, units.back().second);
    }
    for (auto &[rec, out] : units)
        linter.add(rec, out.data(), static_cast<unsigned>(out.size()));
    LintReport report = linter.finish();
    EXPECT_EQ(report.countFor("flag-dest"), 3u);
    EXPECT_EQ(diagsFor(report, "flag-dest").size(), 1u);
}

TEST(LintReportTest, TextAndJsonRendering)
{
    LintReport report = lintOneWith(kImpNone, cmpRecord());
    ASSERT_FALSE(report.clean());

    std::ostringstream text;
    lint::writeReportText(text, report, "unit");
    EXPECT_NE(text.str().find("flag-dest"), std::string::npos);
    EXPECT_NE(text.str().find("fix:"), std::string::npos);

    std::ostringstream json;
    lint::writeReportJson(json, report, "unit");
    EXPECT_NE(json.str().find("\"name\": \"unit\""), std::string::npos);
    EXPECT_NE(json.str().find("\"rules\": {\"flag-dest\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"totals\""), std::string::npos);
    EXPECT_NE(json.str().find("\"diagnostics\""), std::string::npos);
}

TEST(LintReportTest, SeverityNames)
{
    EXPECT_STREQ(lint::severityName(Severity::Error), "error");
    EXPECT_STREQ(lint::severityName(Severity::Warn), "warn");
    EXPECT_STREQ(lint::severityName(Severity::Info), "info");
}

} // namespace
} // namespace trb
