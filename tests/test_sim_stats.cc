/**
 * @file
 * Tests for the SimStats reporting plumbing: derived metrics, the
 * StatSet export and the warmup snapshot arithmetic.
 */

#include <gtest/gtest.h>

#include "pipeline/sim_stats.hh"

namespace trb
{
namespace
{

SimStats
sample()
{
    SimStats s;
    s.instructions = 10000;
    s.cycles = 5000;
    s.branches = 1500;
    s.takenBranches = 900;
    s.branchMispredicts = 60;
    s.directionMispredicts = 40;
    s.targetMispredicts = 20;
    s.typeCount[static_cast<int>(BranchType::Return)] = 100;
    s.typeTargetMispredicts[static_cast<int>(BranchType::Return)] = 5;
    s.l1iAccesses = 3000;
    s.l1iMisses = 90;
    s.l1dAccesses = 2500;
    s.l1dMisses = 250;
    s.l2Accesses = 340;
    s.l2Misses = 120;
    s.llcAccesses = 120;
    s.llcMisses = 30;
    s.prefetchesIssued = 77;
    return s;
}

TEST(SimStats, DerivedMetrics)
{
    SimStats s = sample();
    EXPECT_DOUBLE_EQ(s.ipc(), 2.0);
    EXPECT_DOUBLE_EQ(s.branchMpki(), 6.0);
    EXPECT_DOUBLE_EQ(s.directionMpki(), 4.0);
    EXPECT_DOUBLE_EQ(s.targetMpki(), 2.0);
    EXPECT_DOUBLE_EQ(s.returnMpki(), 0.5);
    EXPECT_DOUBLE_EQ(s.l1iMpki(), 9.0);
    EXPECT_DOUBLE_EQ(s.l1dMpki(), 25.0);
    EXPECT_DOUBLE_EQ(s.l2Mpki(), 12.0);
    EXPECT_DOUBLE_EQ(s.llcMpki(), 3.0);

    SimStats zero;
    EXPECT_DOUBLE_EQ(zero.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(zero.branchMpki(), 0.0);
}

TEST(SimStats, ToStatSetRoundTrip)
{
    StatSet set = sample().toStatSet();
    EXPECT_EQ(set.get("instructions"), 10000u);
    EXPECT_EQ(set.get("cycles"), 5000u);
    EXPECT_EQ(set.get("branches.mispredicts"), 60u);
    EXPECT_EQ(set.get("branch.return.count"), 100u);
    EXPECT_EQ(set.get("branch.return.target_mispredicts"), 5u);
    EXPECT_EQ(set.get("l1d.misses"), 250u);
    EXPECT_EQ(set.get("prefetch.issued"), 77u);
    // The report renders every counter.
    std::string report = set.report("sim.");
    EXPECT_NE(report.find("sim.instructions 10000"), std::string::npos);
    EXPECT_NE(report.find("sim.llc.misses 30"), std::string::npos);
}

TEST(SimStats, SnapshotSubtraction)
{
    SimStats end = sample();
    SimStats base = sample();
    base.instructions = 4000;
    base.cycles = 1000;
    base.branchMispredicts = 10;
    base.l1dMisses = 100;
    base.typeTargetMispredicts[static_cast<int>(BranchType::Return)] = 2;

    SimStats d = end - base;
    EXPECT_EQ(d.instructions, 6000u);
    EXPECT_EQ(d.cycles, 4000u);
    EXPECT_EQ(d.branchMispredicts, 50u);
    EXPECT_EQ(d.l1dMisses, 150u);
    EXPECT_EQ(
        d.typeTargetMispredicts[static_cast<int>(BranchType::Return)], 3u);
    EXPECT_DOUBLE_EQ(d.ipc(), 1.5);
}

} // namespace
} // namespace trb
