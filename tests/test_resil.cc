/**
 * @file
 * Tests for trb::resil: the Status/Expected error model, deterministic
 * fault injection, retry/backoff, quarantine-and-continue sweeps,
 * checkpoint/resume bit-identity, and the CLI tools' exit-code contract
 * on the committed corrupt fixtures under tests/data/resil/.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/experiment.hh"
#include "obs/metrics.hh"
#include "resil/cancel.hh"
#include "resil/checkpoint.hh"
#include "resil/fault.hh"
#include "resil/gz_stream.hh"
#include "resil/retry.hh"
#include "synth/generator.hh"
#include "synth/suites.hh"
#include "trace/champsim_trace.hh"
#include "trace/cvp_trace.hh"

namespace trb
{
namespace
{

namespace fs = std::filesystem;

std::string
tempPath(const std::string &name)
{
    return (fs::temp_directory_path() / name).string();
}

std::string
fixture(const std::string &name)
{
    return std::string(TRB_SOURCE_DIR "/tests/data/resil/") + name;
}

/** Run a shell command, discard its output, return the exit code. */
int
runTool(const std::string &cmd)
{
    int rc = std::system((cmd + " >/dev/null 2>&1").c_str());
    EXPECT_TRUE(WIFEXITED(rc)) << cmd << " did not exit cleanly";
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

/** RAII: whatever a test configures, the injector ends up off. */
struct InjectorGuard
{
    ~InjectorGuard() { resil::FaultInjector::global().disable(); }
};

/** A tiny deterministic trace for serialisation-level tests. */
CvpTrace
smallTrace(std::size_t n)
{
    TraceGenerator gen(serverParams(11));
    return gen.generate(n);
}

TEST(Status, DefaultIsOkAndFactoriesClassify)
{
    Status ok;
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.errorClass(), ErrorClass::Ok);
    EXPECT_EQ(ok.toString(), "ok");

    EXPECT_EQ(Status::truncated("t").errorClass(),
              ErrorClass::TruncatedInput);
    EXPECT_EQ(Status::corrupt("c").errorClass(), ErrorClass::CorruptRecord);
    EXPECT_EQ(Status::ioError("i").errorClass(), ErrorClass::IoError);
    EXPECT_EQ(Status::badMagic("m").errorClass(), ErrorClass::BadMagic);
    EXPECT_EQ(Status::internal("b").errorClass(), ErrorClass::Internal);

    EXPECT_TRUE(Status::ioError("i").retryable());
    EXPECT_FALSE(Status::corrupt("c").retryable());
    EXPECT_FALSE(Status::truncated("t").retryable());
}

TEST(Status, DiagnosticsRenderInToString)
{
    Status st = Status::corrupt("invalid class byte")
                    .at("/tmp/x.cvp.gz", 123, 4)
                    .rule("cvp.record");
    EXPECT_EQ(st.errorClass(), ErrorClass::CorruptRecord);
    EXPECT_EQ(st.path(), "/tmp/x.cvp.gz");
    EXPECT_EQ(st.byteOffset(), 123u);
    EXPECT_EQ(st.recordIndex(), 4u);
    EXPECT_EQ(st.ruleViolated(), "cvp.record");
    std::string s = st.toString();
    EXPECT_NE(s.find("corrupt_record"), std::string::npos);
    EXPECT_NE(s.find("invalid class byte"), std::string::npos);
    EXPECT_NE(s.find("byte 123"), std::string::npos);
    EXPECT_NE(s.find("record 4"), std::string::npos);
    EXPECT_NE(s.find("rule cvp.record"), std::string::npos);
}

TEST(Status, ErrorsBumpClassCounters)
{
    auto &reg = obs::MetricsRegistry::global();
    std::uint64_t before = reg.counterValue("resil.errors.bad_magic");
    Status st = Status::badMagic("nope");
    EXPECT_EQ(reg.counterValue("resil.errors.bad_magic"), before + 1);
}

TEST(Expected, HoldsValueOrStatus)
{
    Expected<int> good(7);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 7);
    EXPECT_TRUE(good.status().ok());

    Expected<int> bad(Status::truncated("short"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().errorClass(), ErrorClass::TruncatedInput);
}

TEST(Fixtures, CleanTracesParse)
{
    Expected<CvpTrace> cvp = tryReadCvpTrace(fixture("clean.cvp.gz"));
    ASSERT_TRUE(cvp.ok()) << cvp.status().toString();
    EXPECT_EQ(cvp.value().size(), 400u);

    Expected<ChampSimTrace> cs =
        tryReadChampSimTrace(fixture("clean.champsimtrace.gz"));
    ASSERT_TRUE(cs.ok()) << cs.status().toString();
    EXPECT_EQ(cs.value().size(), 100u);
}

TEST(Fixtures, TruncatedCvpIsTruncatedInput)
{
    Expected<CvpTrace> r = tryReadCvpTrace(fixture("truncated.cvp.gz"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().errorClass(), ErrorClass::TruncatedInput);
    EXPECT_NE(r.status().recordIndex(), kNoPosition);
    EXPECT_NE(r.status().byteOffset(), kNoPosition);
}

TEST(Fixtures, BadMagicCvpIsBadMagic)
{
    Expected<CvpTrace> r = tryReadCvpTrace(fixture("badmagic.cvp.gz"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().errorClass(), ErrorClass::BadMagic);
    EXPECT_EQ(r.status().ruleViolated(), "cvp.magic");
}

TEST(Fixtures, BadVersionCvpIsCorrupt)
{
    Expected<CvpTrace> r = tryReadCvpTrace(fixture("badversion.cvp.gz"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().errorClass(), ErrorClass::CorruptRecord);
    EXPECT_EQ(r.status().ruleViolated(), "cvp.version");
}

TEST(Fixtures, GarbageTailCvpIsCorrupt)
{
    Expected<CvpTrace> r = tryReadCvpTrace(fixture("garbage_tail.cvp.gz"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().errorClass(), ErrorClass::CorruptRecord);
    EXPECT_EQ(r.status().ruleViolated(), "cvp.trailing");
}

TEST(Fixtures, TruncatedChampSimCarriesPosition)
{
    Expected<ChampSimTrace> r =
        tryReadChampSimTrace(fixture("truncated.champsimtrace.gz"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().errorClass(), ErrorClass::TruncatedInput);
    EXPECT_EQ(r.status().recordIndex(), 41u);
    EXPECT_EQ(r.status().byteOffset(), 41u * 64u);
}

TEST(Fixtures, MissingFileIsIoError)
{
    Expected<CvpTrace> r = tryReadCvpTrace(fixture("does-not-exist.cvp.gz"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().errorClass(), ErrorClass::IoError);
    EXPECT_TRUE(r.status().retryable());
}

TEST(TraceWrite, UnwritablePathIsIoError)
{
    Status st = tryWriteCvpTrace("/nonexistent-dir-trb/x.cvp.gz",
                                 smallTrace(10));
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.errorClass(), ErrorClass::IoError);

    Status cs = tryWriteChampSimTrace("/nonexistent-dir-trb/x.champsim.gz",
                                      ChampSimTrace(4));
    ASSERT_FALSE(cs.ok());
    EXPECT_EQ(cs.errorClass(), ErrorClass::IoError);
}

TEST(FaultSpec, ParsesAndValidates)
{
    auto spec = resil::FaultSpec::parse(
        "truncate:0.1,bitflip:0.05,garbage:0.5,short-read:1.0,flaky:0.25");
    ASSERT_TRUE(spec.ok()) << spec.status().toString();
    using resil::FaultKind;
    EXPECT_DOUBLE_EQ(
        spec.value().rate[static_cast<unsigned>(FaultKind::Truncate)], 0.1);
    EXPECT_DOUBLE_EQ(
        spec.value().rate[static_cast<unsigned>(FaultKind::ShortRead)], 1.0);
    EXPECT_TRUE(spec.value().any());

    EXPECT_FALSE(resil::FaultSpec::parse("truncate:1.5").ok());
    EXPECT_FALSE(resil::FaultSpec::parse("frobnicate:0.5").ok());
    EXPECT_FALSE(resil::FaultSpec::parse("truncate").ok());
    auto empty = resil::FaultSpec::parse("");
    ASSERT_TRUE(empty.ok());
    EXPECT_FALSE(empty.value().any());
}

TEST(FaultPlan, DeterministicPerNameAndSeed)
{
    InjectorGuard guard;
    auto &injector = resil::FaultInjector::global();
    auto spec = resil::FaultSpec::parse("truncate:0.5,bitflip:0.5").value();
    injector.configure(spec, 1234);

    resil::FaultPlan a = injector.plan("trace-a");
    resil::FaultPlan b = injector.plan("trace-a");
    EXPECT_EQ(a.truncate, b.truncate);
    EXPECT_EQ(a.bitflip, b.bitflip);
    EXPECT_EQ(a.seed, b.seed);

    // A rate-0.5 spec over many names afflicts some and spares others.
    unsigned afflicted = 0;
    for (int i = 0; i < 64; ++i)
        if (injector.plan("trace-" + std::to_string(i)).truncate)
            ++afflicted;
    EXPECT_GT(afflicted, 8u);
    EXPECT_LT(afflicted, 56u);

    // A different seed draws a different afflicted set (with 64 names
    // the chance of an identical draw is negligible).
    injector.configure(spec, 99);
    unsigned differs = 0;
    for (int i = 0; i < 64; ++i) {
        injector.configure(spec, 1234);
        bool first = injector.plan("trace-" + std::to_string(i)).truncate;
        injector.configure(spec, 99);
        if (injector.plan("trace-" + std::to_string(i)).truncate != first)
            ++differs;
    }
    EXPECT_GT(differs, 0u);
}

TEST(FaultPlan, CorruptBufferBreaksParsing)
{
    InjectorGuard guard;
    auto &injector = resil::FaultInjector::global();
    CvpTrace trace = smallTrace(300);
    std::vector<std::uint8_t> clean = serializeCvpTrace(trace);

    injector.configure(resil::FaultSpec::parse("truncate:1.0").value(), 5);
    std::vector<std::uint8_t> bytes = clean;
    injector.plan("t").corruptBuffer(bytes);
    EXPECT_LT(bytes.size(), clean.size());
    Expected<CvpTrace> r = parseCvpTrace(bytes.data(), bytes.size(), "t");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().errorClass(), ErrorClass::TruncatedInput);

    injector.configure(resil::FaultSpec::parse("garbage:1.0").value(), 5);
    bytes = clean;
    injector.plan("t").corruptBuffer(bytes);
    EXPECT_EQ(bytes.size(), clean.size());
    EXPECT_NE(bytes, clean);
    EXPECT_FALSE(parseCvpTrace(bytes.data(), bytes.size(), "t").ok());

    // The same plan applied twice produces byte-identical damage.
    std::vector<std::uint8_t> again = clean;
    injector.plan("t").corruptBuffer(again);
    EXPECT_EQ(bytes, again);
}

TEST(GzStream, ShortReadsAreHarmless)
{
    InjectorGuard guard;
    CvpTrace trace = smallTrace(500);
    std::string path = tempPath("trb_resil_shortread.cvp.gz");
    ASSERT_TRUE(tryWriteCvpTrace(path, trace).ok());

    resil::FaultInjector::global().configure(
        resil::FaultSpec::parse("short-read:1.0").value(), 3);
    Expected<CvpTrace> r = tryReadCvpTrace(path);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r.value(), trace);
    std::remove(path.c_str());
}

TEST(GzStream, InjectedTruncationTruncates)
{
    InjectorGuard guard;
    CvpTrace trace = smallTrace(2000);
    std::string path = tempPath("trb_resil_trunc.cvp.gz");
    ASSERT_TRUE(tryWriteCvpTrace(path, trace).ok());

    resil::FaultInjector::global().configure(
        resil::FaultSpec::parse("truncate:1.0").value(), 3);
    Expected<CvpTrace> r = tryReadCvpTrace(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().errorClass(), ErrorClass::TruncatedInput);
    std::remove(path.c_str());
}

TEST(Retry, TransientFailuresSucceedWithinBudget)
{
    InjectorGuard guard;
    auto &injector = resil::FaultInjector::global();
    injector.configure(resil::FaultSpec::parse("flaky:1.0").value(), 21);
    injector.resetAttempts();

    auto &reg = obs::MetricsRegistry::global();
    std::uint64_t retries_before = reg.counterValue("resil.retries");

    resil::RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.baseDelayMs = 1;
    policy.maxDelayMs = 2;
    Expected<int> r = resil::withRetries(policy, "flaky-item", [&] {
        if (injector.shouldFailTransiently("flaky-item"))
            return Expected<int>(
                Status::ioError("injected transient").at("flaky-item"));
        return Expected<int>(42);
    });
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r.value(), 42);
    EXPECT_GT(reg.counterValue("resil.retries"), retries_before);
}

TEST(Retry, ExhaustedBudgetReturnsLastError)
{
    InjectorGuard guard;
    auto &injector = resil::FaultInjector::global();
    injector.configure(resil::FaultSpec::parse("flaky:1.0").value(), 21);
    injector.resetAttempts();

    resil::RetryPolicy policy;
    policy.maxAttempts = 1;   // no retries at all
    Expected<int> r = resil::withRetries(policy, "flaky-item", [&] {
        if (injector.shouldFailTransiently("flaky-item"))
            return Expected<int>(
                Status::ioError("injected transient").at("flaky-item"));
        return Expected<int>(42);
    });
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().errorClass(), ErrorClass::IoError);
}

TEST(Retry, NonRetryableFailsImmediately)
{
    resil::RetryPolicy policy;
    policy.maxAttempts = 5;
    int calls = 0;
    Expected<int> r = resil::withRetries(policy, "corrupt-item", [&] {
        ++calls;
        return Expected<int>(Status::corrupt("structurally broken"));
    });
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(calls, 1);

    EXPECT_EQ(resil::backoffMs(policy, 1), 1u);
    EXPECT_EQ(resil::backoffMs(policy, 2), 2u);
    EXPECT_EQ(resil::backoffMs(policy, 3), 4u);
    EXPECT_EQ(resil::backoffMs(policy, 20), policy.maxDelayMs);
}

TEST(Retry, JitteredBackoffIsDeterministicPerStream)
{
    resil::RetryPolicy policy;

    // An empty stream keeps the exact plain schedule.
    for (unsigned n = 1; n <= 20; ++n)
        EXPECT_EQ(resil::backoffMs(policy, "", n),
                  resil::backoffMs(policy, n));

    // Jitter is a pure function of (stream, attempt): same inputs,
    // same delay, every time.
    for (unsigned n = 1; n <= 20; ++n)
        EXPECT_EQ(resil::backoffMs(policy, "worker-1", n),
                  resil::backoffMs(policy, "worker-1", n));

    // Always within [delay/2, delay] of the plain schedule.
    for (unsigned n = 2; n <= 20; ++n) {
        const unsigned plain = resil::backoffMs(policy, n);
        const unsigned jittered =
            resil::backoffMs(policy, "worker-1", n);
        EXPECT_GE(jittered, plain / 2) << "attempt " << n;
        EXPECT_LE(jittered, plain) << "attempt " << n;
    }

    // Distinct streams draw distinct schedules (no retry lockstep):
    // over attempts 3..20 at least one delay must differ.
    bool diverged = false;
    for (unsigned n = 3; n <= 20 && !diverged; ++n)
        diverged = resil::backoffMs(policy, "worker-1", n) !=
                   resil::backoffMs(policy, "worker-2", n);
    EXPECT_TRUE(diverged);
}

TEST(Status, TimeoutClassIsRetryableAndNamed)
{
    Status st = Status::timeout("deadline of 5 ms expired");
    EXPECT_EQ(st.errorClass(), ErrorClass::Timeout);
    EXPECT_TRUE(st.retryable());
    EXPECT_STREQ(errorClassName(ErrorClass::Timeout), "timeout");
    EXPECT_NE(st.toString().find("timeout"), std::string::npos);

    auto &reg = obs::MetricsRegistry::global();
    std::uint64_t before = reg.counterValue("resil.errors.timeout");
    Status again = Status::timeout("again");
    EXPECT_FALSE(again.ok());
    EXPECT_EQ(reg.counterValue("resil.errors.timeout"), before + 1);
}

TEST(Cancel, TokenLatchesOnceAndDeadlineUsesSteadyClock)
{
    resil::CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_NO_THROW(token.throwIfCancelled());

    token.cancel("first reason");
    token.cancel("second reason");   // first reason wins
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), "first reason");
    EXPECT_TRUE(token.flag().load());
    try {
        token.throwIfCancelled();
        FAIL() << "throwIfCancelled did not throw";
    } catch (const resil::CancelledError &e) {
        EXPECT_STREQ(e.what(), "first reason");
    }

    resil::Deadline none;
    EXPECT_FALSE(none.valid());
    EXPECT_FALSE(none.expired());
    EXPECT_GT(none.remainingMs(), 1'000'000'000);

    resil::Deadline soon = resil::Deadline::after(0);
    EXPECT_TRUE(soon.valid());
    EXPECT_TRUE(soon.expired());
    EXPECT_EQ(soon.remainingMs(), 0);

    resil::Deadline later = resil::Deadline::after(60'000);
    EXPECT_TRUE(later.valid());
    EXPECT_FALSE(later.expired());
    EXPECT_GT(later.remainingMs(), 0);
    EXPECT_LE(later.remainingMs(), 60'000);
}

TEST(FaultPlan, ConnFaultKindsResolveDeterministically)
{
    InjectorGuard guard;
    auto &injector = resil::FaultInjector::global();
    auto spec = resil::FaultSpec::parse(
        "conn-reset:0.5,conn-stall:0.5,partial-write:0.5");
    ASSERT_TRUE(spec.ok()) << spec.status().toString();
    injector.configure(spec.value(), 42);

    // Conn kinds never damage trace byte streams.
    resil::FaultPlan tracePlan = injector.plan("some-trace.cvp.gz");
    EXPECT_FALSE(tracePlan.corrupting());
    EXPECT_FALSE(tracePlan.shortRead);

    // Deterministic per lane name, with both afflicted and spared
    // lanes at rate 0.5 over 64 names.
    unsigned afflicted = 0;
    for (int i = 0; i < 64; ++i) {
        const std::string lane = "conn-" + std::to_string(i + 1);
        resil::FaultPlan a = injector.plan(lane);
        resil::FaultPlan b = injector.plan(lane);
        EXPECT_EQ(a.connReset, b.connReset);
        EXPECT_EQ(a.connStall, b.connStall);
        EXPECT_EQ(a.partialWrite, b.partialWrite);
        EXPECT_EQ(a.anyConnFault(), b.anyConnFault());
        if (a.anyConnFault())
            ++afflicted;
        // Parameters stay in their documented ranges and are stable.
        if (a.connReset) {
            EXPECT_GE(a.connResetAfterFrames(), 1u);
            EXPECT_LE(a.connResetAfterFrames(), 4u);
            EXPECT_EQ(a.connResetAfterFrames(),
                      b.connResetAfterFrames());
        }
        if (a.connStall)
            for (std::uint64_t f = 0; f < 4; ++f) {
                EXPECT_GE(a.connStallMsFor(f), 1u);
                EXPECT_LE(a.connStallMsFor(f), 16u);
                EXPECT_EQ(a.connStallMsFor(f), b.connStallMsFor(f));
            }
        if (a.partialWrite)
            for (std::uint64_t f = 0; f < 4; ++f) {
                EXPECT_GE(a.partialWriteChunkFor(f), 1u);
                EXPECT_LE(a.partialWriteChunkFor(f), 7u);
                EXPECT_EQ(a.partialWriteChunkFor(f),
                          b.partialWriteChunkFor(f));
            }
    }
    EXPECT_GT(afflicted, 8u);
    EXPECT_LT(afflicted, 64u);
}

TEST(FailureReport, JsonAndSummary)
{
    resil::FailureReport report;
    EXPECT_TRUE(report.empty());
    report.add({"srv_0", 3, 2,
                Status::truncated("cut short").at("srv_0", 999, 12)});
    report.add({"int_1", 5, 1, Status::badMagic("wrong header")});
    EXPECT_EQ(report.size(), 2u);

    std::ostringstream os;
    report.writeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"quarantined\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"trace\": \"srv_0\""), std::string::npos);
    EXPECT_NE(json.find("\"error_class\": \"truncated_input\""),
              std::string::npos);
    EXPECT_NE(json.find("\"byte_offset\": 999"), std::string::npos);
    EXPECT_NE(json.find("\"error_class\": \"bad_magic\""),
              std::string::npos);

    std::string summary = report.summary();
    EXPECT_NE(summary.find("2 trace(s) quarantined"), std::string::npos);
    EXPECT_NE(summary.find("srv_0"), std::string::npos);

    report.clear();
    EXPECT_TRUE(report.empty());
}

/** A reduced public suite for harness-level tests. */
std::vector<TraceSpec>
reducedSuite(std::uint64_t length, std::size_t stride = 9)
{
    auto full = cvp1PublicSuite(length);
    std::vector<TraceSpec> out;
    for (std::size_t i = 0; i < full.size(); i += stride)
        out.push_back(full[i]);
    return out;
}

TEST(Harness, QuarantineAndContinue)
{
    InjectorGuard guard;
    auto &injector = resil::FaultInjector::global();
    auto suite = reducedSuite(1200);
    auto spec = resil::FaultSpec::parse("truncate:0.5").value();

    // Pick a seed whose deterministic draw afflicts some traces but not
    // all, so both policy arms execute.
    std::uint64_t seed = 1;
    std::vector<bool> afflicted;
    for (; seed < 100; ++seed) {
        injector.configure(spec, seed);
        afflicted.clear();
        std::size_t hit = 0;
        for (const TraceSpec &s : suite) {
            afflicted.push_back(injector.plan(s.name).truncate);
            hit += afflicted.back();
        }
        if (hit > 0 && hit < suite.size())
            break;
    }
    ASSERT_LT(seed, 100u);

    resil::FailureReport report;
    std::vector<char> visited(suite.size(), 0);
    forEachTrace(
        suite,
        [&](std::size_t i, const TraceSpec &, const CvpTrace &trace) {
            visited[i] = 1;
            EXPECT_EQ(trace.size(), 1200u);
        },
        &report);

    // Exactly the afflicted traces were quarantined; the rest ran.
    EXPECT_EQ(report.size(),
              static_cast<std::size_t>(
                  std::count(afflicted.begin(), afflicted.end(), true)));
    std::vector<char> quarantined(suite.size(), 0);
    for (const resil::Quarantine &q : report.entries()) {
        ASSERT_LT(q.index, suite.size());
        quarantined[q.index] = 1;
        EXPECT_EQ(q.trace, suite[q.index].name);
        EXPECT_EQ(q.status.errorClass(), ErrorClass::TruncatedInput);
    }
    for (std::size_t i = 0; i < suite.size(); ++i) {
        EXPECT_EQ(static_cast<bool>(afflicted[i]),
                  static_cast<bool>(quarantined[i]))
            << suite[i].name;
        EXPECT_NE(visited[i], quarantined[i]) << suite[i].name;
    }
}

TEST(Harness, SweepSparesCleanTracesBitIdentically)
{
    InjectorGuard guard;
    auto &injector = resil::FaultInjector::global();
    auto suite = reducedSuite(1000, 12);
    std::vector<NamedSet> sets(figureOneSets().begin(),
                               figureOneSets().begin() + 2);
    CoreParams params;

    injector.disable();
    resil::FailureReport clean_report;
    std::vector<SimStats> clean_base;
    auto clean = runImprovementSweep(suite, sets, params, &clean_base,
                                     &clean_report);
    EXPECT_TRUE(clean_report.empty());

    auto spec = resil::FaultSpec::parse("truncate:0.5").value();
    std::uint64_t seed = 1;
    std::vector<bool> afflicted;
    for (; seed < 100; ++seed) {
        injector.configure(spec, seed);
        afflicted.clear();
        std::size_t hit = 0;
        for (const TraceSpec &s : suite) {
            afflicted.push_back(injector.plan(s.name).truncate);
            hit += afflicted.back();
        }
        if (hit > 0 && hit < suite.size())
            break;
    }
    ASSERT_LT(seed, 100u);

    resil::FailureReport report;
    std::vector<SimStats> faulted_base;
    auto faulted =
        runImprovementSweep(suite, sets, params, &faulted_base, &report);
    EXPECT_FALSE(report.empty());

    ASSERT_EQ(faulted.size(), clean.size());
    for (std::size_t k = 0; k < faulted.size(); ++k) {
        ASSERT_EQ(faulted[k].ratio.size(), suite.size());
        for (std::size_t i = 0; i < suite.size(); ++i) {
            if (afflicted[i]) {
                EXPECT_TRUE(std::isnan(faulted[k].ratio[i]))
                    << suite[i].name;
            } else {
                // Bit-identical, not approximately equal.
                EXPECT_EQ(std::memcmp(&faulted[k].ratio[i],
                                      &clean[k].ratio[i], sizeof(double)),
                          0)
                    << suite[i].name;
            }
        }
        // Aggregates skip the NaN slots instead of poisoning.
        EXPECT_TRUE(std::isfinite(faulted[k].geomeanDeltaPercent()));
    }
    for (std::size_t i = 0; i < suite.size(); ++i)
        if (!afflicted[i])
            EXPECT_EQ(faulted_base[i].cycles, clean_base[i].cycles);
}

TEST(SimStats, BitsRoundTrip)
{
    SimStats s;
    s.instructions = 123456;
    s.cycles = 654321;
    s.branchMispredicts = 42;
    s.typeCount[3] = 7;
    s.typeTargetMispredicts[6] = 9;
    s.llcMisses = 1;
    s.robFullStalls = ~std::uint64_t{0};

    std::vector<std::uint64_t> bits = s.toBits();
    SimStats back;
    ASSERT_TRUE(SimStats::fromBits(bits, back));
    EXPECT_EQ(back.instructions, s.instructions);
    EXPECT_EQ(back.cycles, s.cycles);
    EXPECT_EQ(back.branchMispredicts, s.branchMispredicts);
    EXPECT_EQ(back.typeCount[3], 7u);
    EXPECT_EQ(back.typeTargetMispredicts[6], 9u);
    EXPECT_EQ(back.robFullStalls, ~std::uint64_t{0});
    EXPECT_EQ(back.toBits(), bits);

    bits.pop_back();
    EXPECT_FALSE(SimStats::fromBits(bits, back));
}

TEST(Checkpoint, RecordAndResume)
{
    std::string path = tempPath("trb_resil_ckpt.jsonl");
    std::remove(path.c_str());
    {
        auto ckpt = resil::Checkpoint::open(path, "sig-a");
        ASSERT_NE(ckpt, nullptr);
        EXPECT_EQ(ckpt->loadedCells(), 0u);
        ckpt->record("t0.base", {1, 2, 3});
        ckpt->record("t0.s0", {0x3ff0000000000000ULL});
    }
    {
        auto ckpt = resil::Checkpoint::open(path, "sig-a");
        ASSERT_NE(ckpt, nullptr);
        EXPECT_EQ(ckpt->loadedCells(), 2u);
        std::vector<std::uint64_t> bits;
        ASSERT_TRUE(ckpt->lookup("t0.base", bits));
        EXPECT_EQ(bits, (std::vector<std::uint64_t>{1, 2, 3}));
        ASSERT_TRUE(ckpt->lookup("t0.s0", bits));
        EXPECT_EQ(bits, std::vector<std::uint64_t>{0x3ff0000000000000ULL});
        EXPECT_FALSE(ckpt->lookup("t9.base", bits));
    }
    // A different signature discards the manifest instead of resuming.
    {
        auto ckpt = resil::Checkpoint::open(path, "sig-b");
        ASSERT_NE(ckpt, nullptr);
        EXPECT_EQ(ckpt->loadedCells(), 0u);
    }
    std::remove(path.c_str());
}

TEST(Checkpoint, PartialTrailingLineIgnored)
{
    std::string path = tempPath("trb_resil_ckpt_partial.jsonl");
    std::remove(path.c_str());
    {
        auto ckpt = resil::Checkpoint::open(path, "sig");
        ASSERT_NE(ckpt, nullptr);
        ckpt->record("a", {10});
        ckpt->record("b", {20});
    }
    // Simulate a SIGKILL mid-append: a half-written final line.
    {
        std::ofstream out(path, std::ios::app);
        out << "{\"cell\": \"c\", \"bi";
    }
    auto ckpt = resil::Checkpoint::open(path, "sig");
    ASSERT_NE(ckpt, nullptr);
    EXPECT_EQ(ckpt->loadedCells(), 2u);
    std::vector<std::uint64_t> bits;
    EXPECT_TRUE(ckpt->lookup("b", bits));
    EXPECT_FALSE(ckpt->lookup("c", bits));
    std::remove(path.c_str());
}

TEST(Checkpoint, SweepResumesBitIdentically)
{
    auto suite = reducedSuite(1000, 15);
    std::vector<NamedSet> sets(figureOneSets().begin(),
                               figureOneSets().begin() + 2);
    CoreParams params;
    std::string path = tempPath("trb_resil_sweep_ckpt.jsonl");
    std::remove(path.c_str());

    resil::Checkpoint::setPathForTesting(path);
    auto full = runImprovementSweep(suite, sets, params);

    // Simulate a kill partway through: keep the header and the first
    // three completed cells, drop the rest.
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_GT(lines.size(), 4u);
    {
        std::ofstream out(path, std::ios::trunc);
        for (std::size_t i = 0; i < 4; ++i)
            out << lines[i] << "\n";
    }

    auto &reg = obs::MetricsRegistry::global();
    std::uint64_t resumed_before = reg.counterValue("resil.resumed_cells");
    auto resumed = runImprovementSweep(suite, sets, params);
    resil::Checkpoint::setPathForTesting("");
    EXPECT_GT(reg.counterValue("resil.resumed_cells"), resumed_before);

    ASSERT_EQ(resumed.size(), full.size());
    for (std::size_t k = 0; k < full.size(); ++k) {
        ASSERT_EQ(resumed[k].ratio.size(), full[k].ratio.size());
        for (std::size_t i = 0; i < full[k].ratio.size(); ++i)
            EXPECT_EQ(std::memcmp(&resumed[k].ratio[i], &full[k].ratio[i],
                                  sizeof(double)),
                      0)
                << "set " << k << " trace " << i;
    }
    std::remove(path.c_str());
}

TEST(ToolExitCodes, TraceLint)
{
    const std::string lint = TRB_BUILD_DIR "/tools/trace_lint";
    // Structural findings are expected on the hand-built clean fixture;
    // --fail-on=none isolates the I/O contract from the rule verdict.
    EXPECT_EQ(runTool(lint + " --fail-on=none " +
                      fixture("clean.champsimtrace.gz")),
              0);
    EXPECT_EQ(runTool(lint + " --fail-on=none " +
                      fixture("truncated.champsimtrace.gz")),
              2);
    EXPECT_EQ(runTool(lint + " --fail-on=none " +
                      fixture("no-such-file.champsimtrace.gz")),
              2);
    EXPECT_EQ(runTool(lint + " --fail-on=none --cvp " +
                      fixture("badmagic.cvp.gz") + " " +
                      fixture("clean.champsimtrace.gz")),
              2);
    EXPECT_EQ(runTool(lint), 2);   // usage
}

TEST(ToolExitCodes, Cvp2ChampSim)
{
    const std::string tool = TRB_BUILD_DIR "/examples/cvp2champsim_tool";
    std::string out = tempPath("trb_resil_tool_out.champsimtrace.gz");
    EXPECT_EQ(runTool(tool + " -t " + fixture("clean.cvp.gz") + " -o " +
                      out),
              0);
    EXPECT_EQ(runTool(tool + " -t " + fixture("truncated.cvp.gz") +
                      " -o " + out),
              2);
    EXPECT_EQ(runTool(tool + " -t " + fixture("badmagic.cvp.gz") + " -o " +
                      out),
              2);
    EXPECT_EQ(runTool(tool + " -t " + fixture("garbage_tail.cvp.gz") +
                      " -o " + out),
              2);
    EXPECT_EQ(runTool(tool + " -t " + fixture("no-such.cvp.gz") + " -o " +
                      out),
              2);
    EXPECT_EQ(runTool(tool), 1);   // usage
    std::remove(out.c_str());
}

} // namespace
} // namespace trb
