/**
 * @file
 * Tests for the IPC-1 instruction prefetchers: factory coverage, and a
 * parameterised effectiveness sweep -- every prefetcher must cut L1I
 * misses on a large recurring instruction footprint and speed up a
 * front-end-bound synthetic server workload under the IPC-1 setup.
 */

#include <gtest/gtest.h>

#include "convert/cvp2champsim.hh"
#include "ipref/instr_prefetcher.hh"
#include "pipeline/o3core.hh"
#include "sim/simulator.hh"
#include "synth/generator.hh"

namespace trb
{
namespace
{

TEST(Factory, KnownNamesConstruct)
{
    for (const char *name :
         {"no", "next-line", "djolt", "jip", "mana", "fnl-mma", "pips",
          "epi", "barca", "tap"}) {
        auto pf = makeInstrPrefetcher(name);
        ASSERT_NE(pf, nullptr) << name;
        EXPECT_STREQ(pf->name(), name);
    }
    EXPECT_EQ(makeInstrPrefetcher("bogus"), nullptr);
}

TEST(Factory, Ipc1ListHasTheEightSubmissions)
{
    EXPECT_EQ(ipc1PrefetcherNames().size(), 8u);
}

/** A front-end-bound ChampSim trace: a large looping code footprint. */
ChampSimTrace
bigFootprintTrace(std::size_t n)
{
    // 4000 lines = 256 KiB of code looped repeatedly: far beyond the
    // 32 KiB L1I, entirely regular -- every prefetcher should shine.
    ChampSimTrace t;
    for (std::size_t i = 0; i < n; ++i) {
        ChampSimRecord r;
        r.ip = 0x400000 + 4 * (i % 64000);
        r.addDstReg(static_cast<RegId>(10 + (i % 8)));
        t.push_back(r);
    }
    return t;
}

class PrefetcherSweep : public ::testing::TestWithParam<const char *>
{};

TEST_P(PrefetcherSweep, HelpsOnRecurringFootprint)
{
    // Four traversals of a 256 KiB code loop: enough for confidence-
    // based prefetchers to train.  D-JOLT keys off calls and is covered
    // by the server-workload test instead.
    if (std::string(GetParam()) == "djolt")
        GTEST_SKIP() << "djolt needs call edges; covered below";
    CoreParams p = ipc1Config();
    O3Core baseline(p);
    SimStats base = baseline.run(bigFootprintTrace(256000), 192000);

    auto pf = makeInstrPrefetcher(GetParam());
    ASSERT_NE(pf, nullptr);
    O3Core core(p, pf.get());
    SimStats s = core.run(bigFootprintTrace(256000), 192000);

    // A late-but-useful prefetch still counts as a demand miss (the
    // MSHR-merge convention), so judge by IPC, with the MPKI cut as an
    // alternative for long-lead prefetchers.
    EXPECT_GT(s.prefetchesIssued, 1000u) << GetParam();
    EXPECT_TRUE(s.ipc() > base.ipc() * 1.05 ||
                s.l1iMpki() < base.l1iMpki() * 0.7)
        << GetParam() << ": ipc " << s.ipc() << " vs " << base.ipc()
        << ", mpki " << s.l1iMpki() << " vs " << base.l1iMpki();
}

TEST_P(PrefetcherSweep, SpeedsUpSyntheticServerWorkload)
{
    WorkloadParams wp = serverParams(7);
    wp.numFunctions = 600;
    wp.indirectRandomFrac = 0.0;   // deterministic dispatch rotation
    wp.condRandomFrac = 0.0;
    CvpTrace cvp = TraceGenerator(wp).generate(120000);
    Cvp2ChampSim conv(kIpc1Imps);
    ChampSimTrace trace = conv.convert(cvp);

    CoreParams p = ipc1Config();
    SimStats base = simulate(ChampSimView(trace),
                             {.params = p, .warmupFraction = 0.5})
                        .stats;
    ASSERT_GT(base.l1iMpki(), 5.0);   // genuinely front-end bound

    auto pf = makeInstrPrefetcher(GetParam());
    SimStats s = simulate(ChampSimView(trace),
                          {.params = p,
                           .warmupFraction = 0.5,
                           .ipref = pf.get()})
                     .stats;
    EXPECT_GT(s.ipc(), base.ipc() * 1.005) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllEight, PrefetcherSweep,
                         ::testing::Values("next-line", "djolt", "jip",
                                           "mana", "fnl-mma", "pips",
                                           "epi", "barca", "tap"));

TEST(NoPrefetcher, IsInert)
{
    CoreParams p = ipc1Config();
    O3Core plain(p);
    SimStats a = plain.run(bigFootprintTrace(50000));
    NoInstrPrefetcher no;
    O3Core with(p, &no);
    SimStats b = with.run(bigFootprintTrace(50000));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.prefetchesIssued, b.prefetchesIssued);
}

} // namespace
} // namespace trb
